package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// numGradCheck verifies a layer's analytic gradients (input and
// parameters) against central finite differences of the scalar
// pseudo-loss L = Σᵢ wᵢ·outᵢ for random w.
func numGradCheck(t *testing.T, layer Layer, inShape []int, seed int64, avoidKinks bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(inShape...)
	for i := range x.Data() {
		v := rng.NormFloat64()
		if avoidKinks {
			// Keep values away from activation kinks / pooling ties.
			for math.Abs(v) < 0.05 {
				v = rng.NormFloat64()
			}
		}
		x.Data()[i] = v
	}

	out := layer.Forward(x, true)
	w := tensor.New(out.Shape()...)
	for i := range w.Data() {
		w.Data()[i] = rng.NormFloat64()
	}
	loss := func() float64 {
		o := layer.Forward(x, false)
		s := 0.0
		for i, v := range o.Data() {
			s += w.Data()[i] * v
		}
		return s
	}

	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	// Re-run forward in train mode so caches match the weight values,
	// then backprop the pseudo-loss gradient.
	layer.Forward(x, true)
	dx := layer.Backward(w.Clone())

	const h = 1e-5
	const tol = 2e-4
	relErr := func(a, b float64) float64 {
		den := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
		return math.Abs(a-b) / den
	}

	// Input gradient.
	xd := x.Data()
	for i := 0; i < len(xd); i += 1 + len(xd)/40 { // sample up to ~40 coords
		orig := xd[i]
		xd[i] = orig + h
		lp := loss()
		xd[i] = orig - h
		lm := loss()
		xd[i] = orig
		num := (lp - lm) / (2 * h)
		if e := relErr(num, dx.Data()[i]); e > tol {
			t.Errorf("%s: input grad[%d] analytic %.6g vs numeric %.6g (rel %.2g)",
				layer.Name(), i, dx.Data()[i], num, e)
			return
		}
	}

	// Parameter gradients.
	for _, p := range layer.Params() {
		wd := p.W.Data()
		gd := p.G.Data()
		for i := 0; i < len(wd); i += 1 + len(wd)/40 {
			orig := wd[i]
			wd[i] = orig + h
			lp := loss()
			wd[i] = orig - h
			lm := loss()
			wd[i] = orig
			num := (lp - lm) / (2 * h)
			if e := relErr(num, gd[i]); e > tol {
				t.Errorf("%s: %s grad[%d] analytic %.6g vs numeric %.6g (rel %.2g)",
					layer.Name(), p.Name, i, gd[i], num, e)
				return
			}
		}
	}
}

func TestGradDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	numGradCheck(t, NewDense(7, 5, rng), []int{7}, 2, false)
}

func TestGradConv1D(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	numGradCheck(t, NewConv1D(3, 4, 5, rng), []int{20, 3}, 4, false)
}

func TestGradConv1DKernelEqualsInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	numGradCheck(t, NewConv1D(2, 3, 8, rng), []int{8, 2}, 6, false)
}

func TestGradMaxPool(t *testing.T) {
	numGradCheck(t, NewMaxPool1D(2), []int{10, 3}, 7, true)
	numGradCheck(t, NewMaxPool1D(3), []int{10, 2}, 8, true) // partial tail window
}

func TestGradReLU(t *testing.T) {
	numGradCheck(t, NewReLU(), []int{12}, 9, true)
}

func TestGradSigmoid(t *testing.T) {
	numGradCheck(t, NewSigmoid(), []int{6}, 10, false)
}

func TestGradTanh(t *testing.T) {
	numGradCheck(t, NewTanh(), []int{6}, 11, false)
}

func TestGradFlatten(t *testing.T) {
	numGradCheck(t, NewFlatten(), []int{4, 3}, 12, false)
}

func TestGradLSTM(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	numGradCheck(t, NewLSTM(3, 4, rng), []int{9, 3}, 14, false)
}

func TestGradConvLSTM(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	numGradCheck(t, NewConvLSTM(5, 3, 3, rng), []int{7, 5}, 16, false)
}

func TestGradBranch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	b := NewBranch(
		[][2]int{{0, 3}, {3, 6}, {6, 9}},
		[][]Layer{
			{NewConv1D(3, 4, 3, rng), NewMaxPool1D(2)},
			{NewConv1D(3, 4, 3, rng), NewMaxPool1D(2)},
			{NewConv1D(3, 4, 3, rng), NewMaxPool1D(2)},
		},
	)
	numGradCheck(t, b, []int{12, 9}, 18, true)
}

func TestGradBranchWithActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	b := NewBranch(
		[][2]int{{0, 2}, {2, 5}},
		[][]Layer{
			{NewConv1D(2, 3, 3, rng), NewReLU(), NewMaxPool1D(2)},
			{NewDenseOverTime(t, rng)},
		},
	)
	numGradCheck(t, b, []int{10, 5}, 20, true)
}

// NewDenseOverTime builds an LSTM for branch composition testing.
func NewDenseOverTime(t *testing.T, rng *rand.Rand) Layer {
	t.Helper()
	return NewLSTM(3, 2, rng)
}

// Full-network gradient check through the paper's architecture shape.
func TestGradFullCNNStack(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	branch := func() []Layer {
		return []Layer{NewConv1D(3, 4, 3, rng), NewMaxPool1D(2), NewReLU()}
	}
	net := NewNetwork(
		NewBranch([][2]int{{0, 3}, {3, 6}, {6, 9}},
			[][]Layer{branch(), branch(), branch()}),
		NewDense(4*5*3, 8, rng),
		NewReLU(),
		NewDense(8, 1, rng),
		NewSigmoid(),
	)
	// Wrap the whole network as a single pseudo-layer.
	numGradCheck(t, &netAsLayer{net}, []int{12, 9}, 22, true)
}

type netAsLayer struct{ n *Network }

func (a *netAsLayer) Name() string { return "network" }
func (a *netAsLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return a.n.Forward(x, train)
}
func (a *netAsLayer) Backward(g *tensor.Tensor) *tensor.Tensor { return a.n.Backward(g) }
func (a *netAsLayer) Params() []*Param                         { return a.n.Params() }
func (a *netAsLayer) OutShape(in []int) ([]int, error) {
	shape := in
	var err error
	for _, l := range a.n.Layers {
		if shape, err = l.OutShape(shape); err != nil {
			return nil, err
		}
	}
	return shape, nil
}

// Loss gradient check: WeightedBCE's ∂L/∂p.
func TestGradWeightedBCE(t *testing.T) {
	loss := NewWeightedBCE(0.6, 7.5)
	const h = 1e-7
	for _, y := range []int{0, 1} {
		for _, p := range []float64{0.05, 0.3, 0.5, 0.9, 0.99} {
			num := (loss.Loss(p+h, y) - loss.Loss(p-h, y)) / (2 * h)
			got := loss.Grad(p, y).Data()[0]
			if math.Abs(num-got)/math.Max(1, math.Abs(num)) > 1e-5 {
				t.Errorf("BCE grad at p=%g y=%d: analytic %g vs numeric %g", p, y, got, num)
			}
		}
	}
}
