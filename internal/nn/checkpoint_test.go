package nn

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fitRun rebuilds the toy problem, network and trainer from scratch
// with a fixed seed and runs Fit; every call sees an identical world,
// so two uninterrupted runs are bit-identical by construction and an
// interrupted+resumed run must be too.
func fitRun(t *testing.T, cfg TrainConfig) (*Network, *History, error) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	train := toyProblem(160, rng)
	val := toyProblem(48, rng)
	net := toyNet(rng)
	tr := NewTrainer(net, NewAdam(0.01), cfg, rng)
	hist, err := tr.Fit(train, val)
	return net, hist, err
}

func weightsOf(net *Network) [][]float64 { return net.Snapshot() }

func sameWeights(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

var errKill = errors.New("simulated crash")

func TestCheckpointResumeBitIdentical(t *testing.T) {
	const epochs = 10
	base := TrainConfig{Epochs: epochs, Patience: epochs, BatchSize: 16}

	// Reference: one uninterrupted run, no checkpointing.
	refNet, refHist, err := fitRun(t, base)
	if err != nil {
		t.Fatal(err)
	}

	for _, every := range []int{1, 3} {
		for _, killAt := range []int{0, 4, epochs - 2} {
			path := filepath.Join(t.TempDir(), "train.ckpt")
			// Interrupted run: crash right after epoch killAt.
			cfg := base
			cfg.Checkpoint = &Checkpointer{Path: path, Every: every}
			cfg.AfterEpoch = func(epoch int, _, _ float64) error {
				if epoch == killAt {
					return errKill
				}
				return nil
			}
			if _, _, err := fitRun(t, cfg); !errors.Is(err, errKill) {
				t.Fatalf("every=%d killAt=%d: kill not delivered: %v", every, killAt, err)
			}

			// Resumed run: same config, no kill.
			cfg.AfterEpoch = nil
			net, hist, err := fitRun(t, cfg)
			if err != nil {
				t.Fatalf("every=%d killAt=%d: resume failed: %v", every, killAt, err)
			}
			if !sameWeights(weightsOf(net), weightsOf(refNet)) {
				t.Fatalf("every=%d killAt=%d: resumed weights differ from uninterrupted run", every, killAt)
			}
			if !reflect.DeepEqual(hist, refHist) {
				t.Fatalf("every=%d killAt=%d: resumed history differs:\n got %+v\nwant %+v",
					every, killAt, hist, refHist)
			}
		}
	}
}

func TestCheckpointDoneShortCircuits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "train.ckpt")
	cfg := TrainConfig{Epochs: 6, Patience: 6, BatchSize: 16,
		Checkpoint: &Checkpointer{Path: path}}
	net1, hist1, err := fitRun(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Rerunning against the finished checkpoint must not retrain: it
	// restores the recorded best weights and history immediately.
	net2, hist2, err := fitRun(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sameWeights(weightsOf(net1), weightsOf(net2)) {
		t.Fatal("done-checkpoint rerun produced different weights")
	}
	if !reflect.DeepEqual(hist1, hist2) {
		t.Fatalf("done-checkpoint rerun produced different history: %+v vs %+v", hist1, hist2)
	}
}

func TestCheckpointCorruptionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "train.ckpt")
	cfg := TrainConfig{Epochs: 3, Patience: 3, BatchSize: 16,
		Checkpoint: &Checkpointer{Path: path},
		AfterEpoch: func(epoch int, _, _ float64) error {
			if epoch == 1 {
				return errKill
			}
			return nil
		}}
	if _, _, err := fitRun(t, cfg); !errors.Is(err, errKill) {
		t.Fatal("kill not delivered")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg.AfterEpoch = nil

	corrupt := func(name string, mut []byte) {
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := fitRun(t, cfg); err == nil {
			t.Fatalf("%s checkpoint resumed without error", name)
		}
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	corrupt("bit-flipped", flipped)
	corrupt("truncated", raw[:len(raw)-7])
	corrupt("bad-magic", append([]byte("XXXX"), raw[4:]...))

	// And the pristine bytes still resume fine.
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fitRun(t, cfg); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}
}

// plainOptimizer implements only Optimizer — checkpointing must refuse
// it rather than silently produce unresumable state.
type plainOptimizer struct{}

func (plainOptimizer) Step(params []*Param, scale float64) {}

func TestCheckpointRequiresCheckpointableOptimizer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := toyProblem(10, rng)
	cfg := TrainConfig{Epochs: 1, Checkpoint: &Checkpointer{Path: filepath.Join(t.TempDir(), "c")}}
	tr := NewTrainer(toyNet(rng), plainOptimizer{}, cfg, rng)
	if _, err := tr.Fit(train, train); err == nil {
		t.Fatal("non-checkpointable optimizer accepted with checkpointing on")
	}
}

// poisonOptimizer is a deterministic divergence source: above the
// benign learning rate it writes NaN into every weight (an exploded
// step); at or below it, it takes a plain gradient step. It implements
// Checkpointable and LRScaler so the trainer's rollback machinery is
// exercised end to end.
type poisonOptimizer struct {
	LR, Benign float64
}

func (p *poisonOptimizer) Step(params []*Param, scale float64) {
	for _, pr := range params {
		wd, gd := pr.W.Data(), pr.G.Data()
		for i := range wd {
			if p.LR > p.Benign {
				wd[i] = math.NaN()
			} else {
				wd[i] -= p.LR * gd[i] * scale
			}
		}
	}
}

func (p *poisonOptimizer) ScaleLR(f float64) { p.LR *= f }

func (p *poisonOptimizer) State(params []*Param) OptimizerState {
	return OptimizerState{Kind: "poison", LR: p.LR, Moments: [][][]float64{}}
}

func (p *poisonOptimizer) SetState(params []*Param, st OptimizerState) error {
	p.LR = st.LR
	return nil
}

func TestDivergenceRollbackRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	train := toyProblem(80, rng)
	val := toyProblem(24, rng)
	net := toyNet(rng)
	// Two halvings bring 0.04 under the benign rate: epochs 0 and 1
	// diverge and roll back, the rest train normally.
	opt := &poisonOptimizer{LR: 0.04, Benign: 0.0105}
	tr := NewTrainer(net, opt, TrainConfig{Epochs: 6, Patience: 6, BatchSize: 16}, rng)
	hist, err := tr.Fit(train, val)
	if err != nil {
		t.Fatal(err)
	}
	if hist.Rollbacks != 2 {
		t.Fatalf("Rollbacks = %d, want 2", hist.Rollbacks)
	}
	if opt.LR > opt.Benign {
		t.Fatalf("learning rate %g not backed off below %g", opt.LR, opt.Benign)
	}
	for _, w := range net.Snapshot() {
		for _, v := range w {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite weight survived rollback")
			}
		}
	}
	// The diverged epochs are on the record, and best-epoch bookkeeping
	// skipped them (a NaN val loss can never be "best").
	if len(hist.ValLoss) != 6 {
		t.Fatalf("history has %d epochs, want 6", len(hist.ValLoss))
	}
	if !math.IsNaN(hist.ValLoss[0]) {
		t.Fatalf("first epoch val loss %g, want NaN on the record", hist.ValLoss[0])
	}
	if math.IsNaN(hist.ValLoss[hist.BestEpoch]) {
		t.Fatal("a NaN epoch was recorded as best")
	}
}

func TestDivergenceAbortsWithStructuredError(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	train := toyProblem(60, rng)
	val := toyProblem(20, rng)
	net := toyNet(rng)
	// Benign rate unreachable within MaxRollbacks halvings: abort.
	opt := &poisonOptimizer{LR: 1, Benign: 1e-9}
	tr := NewTrainer(net, opt, TrainConfig{Epochs: 50, Patience: 50, BatchSize: 16, MaxRollbacks: 3}, rng)
	_, err := tr.Fit(train, val)
	var de *DivergedError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DivergedError", err)
	}
	if de.Rollbacks != 4 {
		t.Fatalf("Rollbacks = %d, want 4 (MaxRollbacks+1)", de.Rollbacks)
	}
	if de.Epoch != 3 {
		t.Fatalf("aborting epoch = %d, want 3", de.Epoch)
	}
	if !math.IsNaN(de.ValLoss) {
		t.Fatalf("ValLoss = %g, want NaN", de.ValLoss)
	}
}

func TestExplodingFiniteLossDiverges(t *testing.T) {
	// The absolute bound catches finite-but-exploding losses too.
	if !diverged(1e7, 1e6) {
		t.Fatal("1e7 accepted against a 1e6 bound")
	}
	if diverged(1e7, -1) {
		t.Fatal("absolute bound not disabled by negative MaxLoss")
	}
	if !diverged(math.Inf(1), -1) || !diverged(math.NaN(), -1) {
		t.Fatal("non-finite loss accepted with bound disabled")
	}
}

func TestCheckpointAtomicWriteLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "train.ckpt")
	cfg := TrainConfig{Epochs: 3, Patience: 3, BatchSize: 16,
		Checkpoint: &Checkpointer{Path: path}}
	if _, _, err := fitRun(t, cfg); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "train.ckpt" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("checkpoint dir holds %v, want only train.ckpt", names)
	}
}
