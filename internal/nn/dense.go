package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Dense is a fully connected layer y = W·x + b over 1-D inputs.
type Dense struct {
	In, Out int
	Weight  *Param // [Out × In]
	Bias    *Param // [Out]

	x     *tensor.Tensor // forward cache
	y, dx *tensor.Tensor // scratch, reused across calls
}

// NewDense returns a Glorot-initialised fully connected layer.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In:     in,
		Out:    out,
		Weight: newParam("dense.w", out, in),
		Bias:   newParam("dense.b", out),
	}
	glorotInit(d.Weight.W, in, out, rng)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense(%d→%d)", d.In, d.Out) }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// OutShape implements Layer.
func (d *Dense) OutShape(in []int) ([]int, error) {
	if len(in) != 1 || in[0] != d.In {
		return nil, fmt.Errorf("nn: %s cannot take input %v", d.Name(), in)
	}
	return []int{d.Out}, nil
}

// badInput and badGrad keep checkShape's argument allocations (Sprintf
// name, shape literal) off the fast paths.
//
//fallvet:cold panic-guard: allocates only to format the failing-shape report
func (d *Dense) badInput(x *tensor.Tensor) {
	checkShape(d.Name(), x.Shape(), []int{d.In})
}

//fallvet:cold panic-guard: allocates only to format the failing-shape report
func (d *Dense) badGrad(grad *tensor.Tensor) {
	checkShape(d.Name()+" grad", grad.Shape(), []int{d.Out})
}

// Forward implements Layer.
//
//fallvet:hotpath
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 1 || x.Dim(0) != d.In {
		d.badInput(x)
	}
	if train {
		d.x = x
	}
	y := tensor.Reuse(d.y, d.Out)
	d.y = y
	matVecBias(y.Data(), x.Data(), d.Weight.W.Data(), d.Bias.W.Data(), d.Out, d.In)
	return y
}

// Backward implements Layer.
//
//fallvet:hotpath
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if grad.Dims() != 1 || grad.Dim(0) != d.Out {
		d.badGrad(grad)
	}
	gd, xd := grad.Data(), d.x.Data()
	wg, wd := d.Weight.G.Data(), d.Weight.W.Data()
	dx := tensor.Reuse(d.dx, d.In)
	d.dx = dx
	dx.Zero() // the loop below accumulates into reused scratch
	dxd := dx.Data()
	for o := 0; o < d.Out; o++ {
		g := gd[o]
		if g == 0 {
			continue
		}
		row := wd[o*d.In : (o+1)*d.In]
		grow := wg[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			grow[i] += g * xd[i]
			dxd[i] += g * row[i]
		}
	}
	bg := d.Bias.G.Data()
	for o := 0; o < d.Out; o++ {
		bg[o] += gd[o]
	}
	return dx
}
