package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// streamTestNet builds a branch CNN in the paper's shape: per-branch
// Conv1D(w→filters, kernel)→ReLU→MaxPool1D(pool) stacks over the given
// column ranges, then Dense(→16)→ReLU→Dense(→1)→Sigmoid.
func streamTestNet(t *testing.T, window int, cols [][2]int, filters, kernel, pool int, rng *rand.Rand) *Network {
	t.Helper()
	stacks := make([][]Layer, len(cols))
	total := 0
	for i, c := range cols {
		stacks[i] = []Layer{
			NewConv1D(c[1]-c[0], filters, kernel, rng),
			NewReLU(),
			NewMaxPool1D(pool),
		}
		convT := window - kernel + 1
		total += (convT + pool - 1) / pool * filters
	}
	return NewNetwork(
		NewBranch(cols, stacks),
		NewDense(total, 16, rng),
		NewReLU(),
		NewDense(16, 1, rng),
		NewSigmoid(),
	)
}

// assembleRebased builds the batch input the detector would score: the
// last `window` rows of rows, with each rebase column shifted by its
// window-initial value.
func assembleRebased(rows [][]float64, window, inCh int, rebaseCols []int) *tensor.Tensor {
	w := tensor.New(window, inCh)
	d := w.Data()
	start := len(rows) - window
	for i := 0; i < window; i++ {
		copy(d[i*inCh:(i+1)*inCh], rows[start+i])
	}
	for _, c := range rebaseCols {
		v0 := d[c]
		for i := 0; i < window; i++ {
			d[i*inCh+c] -= v0
		}
	}
	return w
}

func pushRandomRow(rng *rand.Rand, inCh int) []float64 {
	r := make([]float64, inCh)
	for c := range r {
		r[c] = rng.NormFloat64()
	}
	return r
}

// TestStreamerBitIdenticalToPredict drives random streams through the
// incremental path and the full-window batch path at every aligned
// stride and requires bit-equality, across geometries that exercise
// rebased (batch-form) branches, partial pool tails, and small rings.
func TestStreamerBitIdenticalToPredict(t *testing.T) {
	cases := []struct {
		name         string
		window, step int
		cols         [][2]int
		inCh         int
		kernel, pool int
		rebase       []int
	}{
		{"paper-cnn", 40, 20, [][2]int{{0, 3}, {3, 6}, {6, 9}}, 9, 5, 2, []int{8}},
		{"accel-only", 40, 20, [][2]int{{0, 3}}, 9, 5, 2, nil},
		{"partial-tail", 20, 2, [][2]int{{0, 2}, {2, 4}}, 4, 4, 2, nil},
		{"pool3", 30, 6, [][2]int{{0, 3}}, 3, 5, 3, nil},
		{"no-stream-all-rebased", 20, 4, [][2]int{{0, 2}}, 2, 3, 2, []int{0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			net := streamTestNet(t, tc.window, tc.cols, 8, tc.kernel, tc.pool, rng)
			st, err := NewStreamer(net, StreamConfig{
				InCh: tc.inCh, Window: tc.window, Step: tc.step, RebaseCols: tc.rebase,
			})
			if err != nil {
				t.Fatalf("NewStreamer: %v", err)
			}
			var rows [][]float64
			compared := 0
			for i := 0; i < 5*tc.window; i++ {
				row := pushRandomRow(rng, tc.inCh)
				rows = append(rows, row)
				st.Push(row)
				if len(rows) < tc.window || (len(rows)-tc.window)%tc.step != 0 {
					continue
				}
				if !st.Ready() {
					t.Fatalf("streamer not Ready at stride %d", len(rows))
				}
				got := st.Score()
				want := net.Predict(assembleRebased(rows, tc.window, tc.inCh, tc.rebase))
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("row %d: incremental %x (%.17g), batch %x (%.17g)",
						len(rows), math.Float64bits(got), got, math.Float64bits(want), want)
				}
				compared++
			}
			if compared == 0 {
				t.Fatal("no strides compared")
			}
		})
	}
}

// TestStreamerRestartRebuild kills a streamer mid-stream, rebuilds a
// fresh one from the last min(count, window) rows via Restart, and
// requires every subsequent decision to match the uninterrupted
// streamer bit-for-bit — the invariant cascade snapshot/restore and
// serve crash-replay lean on.
func TestStreamerRestartRebuild(t *testing.T) {
	const window, step, inCh = 40, 20, 9
	rng := rand.New(rand.NewSource(11))
	net := streamTestNet(t, window, [][2]int{{0, 3}, {3, 6}, {6, 9}}, 8, 5, 2, rng)
	cfg := StreamConfig{InCh: inCh, Window: window, Step: step, RebaseCols: []int{8}}
	orig, err := NewStreamer(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]float64
	for i := 0; i < 2*window+7; i++ { // kill point deliberately off-stride
		row := pushRandomRow(rng, inCh)
		rows = append(rows, row)
		orig.Push(row)
	}
	rebuilt, err := NewStreamer(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := window
	if len(rows) < n {
		n = len(rows)
	}
	rebuilt.Restart(len(rows) - n)
	for _, row := range rows[len(rows)-n:] {
		rebuilt.Push(row)
	}
	for i := 0; i < 3*window; i++ {
		row := pushRandomRow(rng, inCh)
		rows = append(rows, row)
		orig.Push(row)
		rebuilt.Push(row)
		if len(rows) >= window && (len(rows)-window)%step == 0 {
			if !orig.Ready() || !rebuilt.Ready() {
				t.Fatalf("not ready at %d", len(rows))
			}
			a, b := orig.Score(), rebuilt.Score()
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("row %d: original %x, rebuilt %x", len(rows), math.Float64bits(a), math.Float64bits(b))
			}
		}
	}
}

// TestStreamerRejectsUnsupported: topologies the incremental path
// cannot cache must fail construction so callers fall back to batch.
func TestStreamerRejectsUnsupported(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mlp := NewNetwork(NewFlatten(), NewDense(80, 8, rng), NewReLU(), NewDense(8, 1, rng), NewSigmoid())
	if _, err := NewStreamer(mlp, StreamConfig{InCh: 4, Window: 20, Step: 10}); err == nil {
		t.Fatal("MLP accepted")
	}
	conv := NewNetwork(
		NewBranch([][2]int{{0, 2}}, [][]Layer{{NewConv1D(2, 4, 3, rng), NewReLU(), NewMaxPool1D(2)}}),
		NewDense(36, 4, rng),
		NewTanh(),
		NewMaxPool1D(2), // 2-D-only layer in the head
		NewDense(2, 1, rng),
		NewSigmoid(),
	)
	if _, err := NewStreamer(conv, StreamConfig{InCh: 2, Window: 20, Step: 4}); err == nil {
		t.Fatal("maxpool head accepted")
	}
	if _, err := NewStreamer(NewNetwork(), StreamConfig{InCh: 2, Window: 20, Step: 4}); err == nil {
		t.Fatal("empty network accepted")
	}
	net := streamTestNet(t, 20, [][2]int{{0, 2}}, 4, 3, 2, rng)
	if _, err := NewStreamer(net, StreamConfig{InCh: 2, Window: 20, Step: 10, RebaseCols: []int{5}}); err == nil {
		t.Fatal("out-of-range rebase column accepted")
	}
	// Step not a multiple of Pool: valid, but the branch cannot stream.
	st, err := NewStreamer(net, StreamConfig{InCh: 2, Window: 20, Step: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Streaming() {
		t.Fatal("misaligned stride reported as streaming")
	}
	if st2, err := NewStreamer(net, StreamConfig{InCh: 2, Window: 20, Step: 4}); err != nil || !st2.Streaming() {
		t.Fatalf("aligned stride should stream (err=%v)", err)
	}
}

// TestStreamerAllocationFree: steady-state Push and Score stay off the
// heap, including the batch-form rebased branch.
func TestStreamerAllocationFree(t *testing.T) {
	const window, step, inCh = 40, 20, 9
	rng := rand.New(rand.NewSource(5))
	net := streamTestNet(t, window, [][2]int{{0, 3}, {3, 6}, {6, 9}}, 8, 5, 2, rng)
	st, err := NewStreamer(net, StreamConfig{InCh: inCh, Window: window, Step: step, RebaseCols: []int{8}})
	if err != nil {
		t.Fatal(err)
	}
	row := pushRandomRow(rng, inCh)
	for i := 0; i < 3*window; i++ { // warm every ring and layer scratch
		st.Push(row)
		if st.Ready() {
			st.Score()
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		st.Push(row)
		if st.Ready() {
			st.Score()
		}
	}); n != 0 {
		t.Fatalf("Push+Score allocates %.1f/op", n)
	}
}
