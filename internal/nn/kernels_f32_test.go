package nn

import (
	"math"
	"math/rand"
	"repro/internal/nn/simd"
	"testing"
)

// The f32 kernel contract mirrors the f64 one (kernels_test.go) with
// one extra obligation: the SSE implementation must match the portable
// reference bit-for-bit, because the reference defines the f32
// summation order and is the implementation on !amd64.

func randF32(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

// f32Shapes covers both order regimes and this topology's real layer
// shapes: conv rows (16×15), dense1 (64×864), dense2 (32×64), head
// (1×32), plus odd cols around the narrow/wide threshold and the
// 4/16-block remainders.
var f32Shapes = []struct{ rows, cols int }{
	{16, 15}, {64, 864}, {32, 64}, {1, 32}, {1, 31},
	{5, 1}, {3, 3}, {4, 4}, {7, 7}, {8, 13}, {16, 18},
	{9, 33}, {6, 47}, {10, 100}, {2, 35}, {11, 63},
}

func TestMatVecBiasF32AsmMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, sh := range f32Shapes {
		x := randF32(rng, sh.cols)
		w := randF32(rng, sh.rows*sh.cols)
		b := randF32(rng, sh.rows)
		got := make([]float32, sh.rows)
		want := make([]float32, sh.rows)
		simd.MatVecBiasF32(got, x, w, b, sh.rows, sh.cols)
		simd.MatVecBiasF32Ref(want, x, w, b, sh.rows, sh.cols)
		for o := range want {
			if math.Float32bits(got[o]) != math.Float32bits(want[o]) {
				t.Fatalf("rows=%d cols=%d out %d: asm %v != ref %v",
					sh.rows, sh.cols, o, got[o], want[o])
			}
		}
	}
}

func TestMatVecBias2F32AsmMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, sh := range f32Shapes {
		if sh.cols >= 32 {
			continue // pair kernel contract: narrow only
		}
		xa := randF32(rng, sh.cols)
		xb := randF32(rng, sh.cols)
		w := randF32(rng, sh.rows*sh.cols)
		b := randF32(rng, sh.rows)
		ga := make([]float32, sh.rows)
		gb := make([]float32, sh.rows)
		wa := make([]float32, sh.rows)
		wb := make([]float32, sh.rows)
		simd.MatVecBias2F32(ga, gb, xa, xb, w, b, sh.rows, sh.cols)
		simd.MatVecBias2F32Ref(wa, wb, xa, xb, w, b, sh.rows, sh.cols)
		for o := range wa {
			if math.Float32bits(ga[o]) != math.Float32bits(wa[o]) ||
				math.Float32bits(gb[o]) != math.Float32bits(wb[o]) {
				t.Fatalf("rows=%d cols=%d out %d: asm (%v,%v) != ref (%v,%v)",
					sh.rows, sh.cols, o, ga[o], gb[o], wa[o], wb[o])
			}
		}
	}
}

// TestMatVecBias2F32MatchesSingle is the f32 lane-pairing contract:
// the pair kernel must equal two single-kernel calls bit-for-bit, so
// a conv row scored alone at a stride matches the same row scored as
// half of a pair.
func TestMatVecBias2F32MatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, sh := range f32Shapes {
		if sh.cols >= 32 {
			continue
		}
		xa := randF32(rng, sh.cols)
		xb := randF32(rng, sh.cols)
		w := randF32(rng, sh.rows*sh.cols)
		b := randF32(rng, sh.rows)
		pa := make([]float32, sh.rows)
		pb := make([]float32, sh.rows)
		sa := make([]float32, sh.rows)
		sb := make([]float32, sh.rows)
		simd.MatVecBias2F32(pa, pb, xa, xb, w, b, sh.rows, sh.cols)
		simd.MatVecBiasF32(sa, xa, w, b, sh.rows, sh.cols)
		simd.MatVecBiasF32(sb, xb, w, b, sh.rows, sh.cols)
		for o := range sa {
			if math.Float32bits(pa[o]) != math.Float32bits(sa[o]) ||
				math.Float32bits(pb[o]) != math.Float32bits(sb[o]) {
				t.Fatalf("rows=%d cols=%d out %d: pair (%v,%v) != single (%v,%v)",
					sh.rows, sh.cols, o, pa[o], pb[o], sa[o], sb[o])
			}
		}
	}
}

// TestMatVecBiasF32LaneUniform: every output must be a fixed function
// of (weight row, x, bias) — computing row o inside a full 4-lane
// block must equal computing it alone with rows=1.
func TestMatVecBiasF32LaneUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for _, sh := range f32Shapes {
		x := randF32(rng, sh.cols)
		w := randF32(rng, sh.rows*sh.cols)
		b := randF32(rng, sh.rows)
		full := make([]float32, sh.rows)
		simd.MatVecBiasF32(full, x, w, b, sh.rows, sh.cols)
		one := make([]float32, 1)
		for o := 0; o < sh.rows; o++ {
			simd.MatVecBiasF32(one, x, w[o*sh.cols:(o+1)*sh.cols], b[o:o+1], 1, sh.cols)
			if math.Float32bits(one[0]) != math.Float32bits(full[o]) {
				t.Fatalf("rows=%d cols=%d out %d: alone %v != in-block %v",
					sh.rows, sh.cols, o, one[0], full[o])
			}
		}
	}
}

// TestMatVecBiasF32MatchesNaive bounds the f32 order against a
// float64 naive accumulation: the blocked f32 sum may differ from the
// f64 reference only by rounding noise scaled to the magnitude sum.
func TestMatVecBiasF32MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for _, sh := range f32Shapes {
		x := randF32(rng, sh.cols)
		w := randF32(rng, sh.rows*sh.cols)
		b := randF32(rng, sh.rows)
		got := make([]float32, sh.rows)
		simd.MatVecBiasF32(got, x, w, b, sh.rows, sh.cols)
		for o := 0; o < sh.rows; o++ {
			naive := float64(b[o])
			mag := math.Abs(float64(b[o]))
			for i := 0; i < sh.cols; i++ {
				p := float64(w[o*sh.cols+i]) * float64(x[i])
				naive += p
				mag += math.Abs(p)
			}
			tol := 1e-6 * (mag + 1)
			if math.Abs(float64(got[o])-naive) > tol {
				t.Fatalf("rows=%d cols=%d out %d: f32 %v vs f64 naive %v (tol %g)",
					sh.rows, sh.cols, o, got[o], naive, tol)
			}
		}
	}
}

// TestMatVecBiasF32GenericDispatch: the generic entry kernels at
// S=float32 must route to the f32 path — bit-equal to the reference,
// with the ReLU variants clamping exactly as ReLU.Forward does
// (NaN propagates, v ≤ 0 becomes 0).
func TestMatVecBiasF32GenericDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	for _, sh := range []struct{ rows, cols int }{{16, 15}, {64, 864}} {
		x := randF32(rng, sh.cols)
		w := randF32(rng, sh.rows*sh.cols)
		b := randF32(rng, sh.rows)
		got := make([]float32, sh.rows)
		want := make([]float32, sh.rows)
		matVecBias[float32](got, x, w, b, sh.rows, sh.cols)
		simd.MatVecBiasF32Ref(want, x, w, b, sh.rows, sh.cols)
		for o := range want {
			if math.Float32bits(got[o]) != math.Float32bits(want[o]) {
				t.Fatalf("matVecBias[float32] rows=%d cols=%d out %d: %v != %v",
					sh.rows, sh.cols, o, got[o], want[o])
			}
		}
		matVecBiasReLU[float32](got, x, w, b, sh.rows, sh.cols)
		reluF32(want)
		for o := range want {
			if math.Float32bits(got[o]) != math.Float32bits(want[o]) {
				t.Fatalf("matVecBiasReLU[float32] rows=%d cols=%d out %d: %v != %v",
					sh.rows, sh.cols, o, got[o], want[o])
			}
		}
	}

	// NaN must survive the folded ReLU clamp.
	nanW := []float32{float32(math.NaN()), 1}
	dst := make([]float32, 1)
	matVecBiasReLU[float32](dst, []float32{1, 1}, nanW, []float32{0}, 1, 2)
	if !math.IsNaN(float64(dst[0])) {
		t.Fatalf("folded f32 ReLU flushed NaN to %v; must propagate", dst[0])
	}
}
