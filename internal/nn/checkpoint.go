package nn

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math"
	"os"
	"path/filepath"
)

// Checkpointer periodically persists resumable trainer state so a
// training run killed at an arbitrary epoch can continue — to the bit
// — where it left off. The file is written atomically (temp file in
// the same directory, fsync, rename), so a crash mid-write leaves the
// previous checkpoint intact; the payload carries a CRC32 trailer so a
// checkpoint corrupted at rest is detected rather than resumed into a
// silently-wrong run.
type Checkpointer struct {
	// Path is the checkpoint file. Its directory must exist.
	Path string
	// Every saves after every Every-th completed epoch (default 1).
	Every int
}

func (c *Checkpointer) every() int {
	if c.Every <= 0 {
		return 1
	}
	return c.Every
}

// checkpoint file framing: magic, version, gob payload, CRC32C trailer
// over everything before it.
const (
	ckptMagic   = "FDCK"
	ckptVersion = 1
	// maxCheckpointBytes bounds what load will read — a corrupt length
	// cannot drive an unbounded allocation.
	maxCheckpointBytes = 256 << 20
)

var ckptTable = crc32.MakeTable(crc32.Castagnoli)

// checkpointState is everything Fit needs to continue bit-identically:
// weights, optimizer moments, shuffle-RNG state, best-so-far
// bookkeeping, the guard counters and the history so far.
type checkpointState struct {
	Epoch int // next epoch index to execute
	Done  bool
	// Order is the example permutation as left by the last epoch's
	// shuffle — the next shuffle permutes it in place, so it is trainer
	// state a bit-identical resume must carry.
	Order     []int
	Weights   [][]float64
	Opt       OptimizerState
	Shuffle   uint64
	Best      [][]float64
	BestVal   float64
	SinceBest int
	Hist      History
	Rollbacks int
	W0, W1    float64 // loss class weights, for the record
}

// save writes the state atomically: temp file in the target directory,
// fsync, rename over Path.
func (c *Checkpointer) save(st *checkpointState) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		return fmt.Errorf("nn: encoding checkpoint: %w", err)
	}
	var buf bytes.Buffer
	buf.WriteString(ckptMagic)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], ckptVersion)
	buf.Write(u32[:])
	buf.Write(payload.Bytes())
	binary.LittleEndian.PutUint32(u32[:], crc32.Checksum(buf.Bytes(), ckptTable))
	buf.Write(u32[:])

	dir := filepath.Dir(c.Path)
	tmp, err := os.CreateTemp(dir, filepath.Base(c.Path)+".tmp*")
	if err != nil {
		return fmt.Errorf("nn: creating checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("nn: writing checkpoint: %w", errors.Join(err, tmp.Close()))
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("nn: syncing checkpoint: %w", errors.Join(err, tmp.Close()))
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("nn: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.Path); err != nil {
		return fmt.Errorf("nn: publishing checkpoint: %w", err)
	}
	return nil
}

// load reads and verifies the checkpoint. A missing file returns
// (nil, nil) — a fresh run; a present-but-corrupt file is an error,
// because the atomic writer never leaves one behind and resuming from
// damaged state would poison the model silently.
func (c *Checkpointer) load() (*checkpointState, error) {
	raw, err := os.ReadFile(c.Path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("nn: reading checkpoint: %w", err)
	}
	if len(raw) > maxCheckpointBytes {
		return nil, fmt.Errorf("nn: checkpoint of %d bytes exceeds limit", len(raw))
	}
	if len(raw) < len(ckptMagic)+4+4 {
		return nil, fmt.Errorf("nn: checkpoint truncated to %d bytes", len(raw))
	}
	if string(raw[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("nn: %s is not a trainer checkpoint (bad magic)", c.Path)
	}
	if v := binary.LittleEndian.Uint32(raw[len(ckptMagic):]); v != ckptVersion {
		return nil, fmt.Errorf("nn: checkpoint format version %d unsupported (want %d)", v, ckptVersion)
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, ckptTable) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("nn: checkpoint CRC mismatch (file corrupt)")
	}
	st := &checkpointState{}
	payload := body[len(ckptMagic)+4:]
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(st); err != nil {
		return nil, fmt.Errorf("nn: decoding checkpoint: %w", err)
	}
	if st.Epoch < 0 || st.SinceBest < 0 || st.Rollbacks < 0 {
		return nil, fmt.Errorf("nn: checkpoint has negative counters (epoch=%d sinceBest=%d rollbacks=%d)",
			st.Epoch, st.SinceBest, st.Rollbacks)
	}
	return st, nil
}

// validateOrder checks that a checkpointed example order is a
// permutation of [0, n).
func validateOrder(order []int, n int) error {
	if len(order) != n {
		return fmt.Errorf("nn: checkpoint order has %d entries, training set has %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, ix := range order {
		if ix < 0 || ix >= n || seen[ix] {
			return fmt.Errorf("nn: checkpoint order is not a permutation of the training set")
		}
		seen[ix] = true
	}
	return nil
}

// validateSnapshot checks a checkpointed weight set against the live
// network before any copy happens.
func validateSnapshot(name string, snap [][]float64, params []*Param) error {
	if len(snap) != len(params) {
		return fmt.Errorf("nn: checkpoint %s has %d tensors, network has %d", name, len(snap), len(params))
	}
	for i, w := range snap {
		if len(w) != params[i].W.Len() {
			return fmt.Errorf("nn: checkpoint %s tensor %d has %d values, param %q has %d",
				name, i, len(w), params[i].Name, params[i].W.Len())
		}
		for _, v := range w {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("nn: checkpoint %s tensor %d (%q) holds a non-finite weight",
					name, i, params[i].Name)
			}
		}
	}
	return nil
}
