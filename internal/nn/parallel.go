package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Parallel feeds the same input through several layers and
// concatenates their flattened outputs — the combinator behind
// bidirectional recurrences (forward GRU ‖ backward GRU).
type Parallel struct {
	Layers  []Layer
	inShape []int
	sizes   []int
}

// NewParallel builds a parallel combinator over the given layers.
func NewParallel(layers ...Layer) *Parallel {
	if len(layers) == 0 {
		panic("nn: Parallel needs at least one layer")
	}
	return &Parallel{Layers: layers}
}

// Name implements Layer.
func (p *Parallel) Name() string { return fmt.Sprintf("parallel(×%d)", len(p.Layers)) }

// Params implements Layer.
func (p *Parallel) Params() []*Param {
	var ps []*Param
	for _, l := range p.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// OutShape implements Layer.
func (p *Parallel) OutShape(in []int) ([]int, error) {
	total := 0
	for _, l := range p.Layers {
		out, err := l.OutShape(in)
		if err != nil {
			return nil, err
		}
		n := 1
		for _, d := range out {
			n *= d
		}
		total += n
	}
	return []int{total}, nil
}

// Forward implements Layer.
//
//fallvet:cold baseline-composition layer: concatenates into fresh tensors by design, absent from the deployed CNN configurations
func (p *Parallel) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		p.inShape = append([]int(nil), x.Shape()...)
		p.sizes = make([]int, len(p.Layers))
	}
	parts := make([]*tensor.Tensor, len(p.Layers))
	for i, l := range p.Layers {
		h := l.Forward(x, train)
		h = h.Reshape(h.Len())
		if train {
			p.sizes[i] = h.Len()
		}
		parts[i] = h
	}
	return tensor.Concat1D(parts...)
}

// Backward implements Layer.
//
//fallvet:cold baseline-composition layer: concatenates into fresh tensors by design, absent from the deployed CNN configurations
func (p *Parallel) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(p.inShape...)
	off := 0
	for i, l := range p.Layers {
		g := tensor.FromSlice(grad.Data()[off:off+p.sizes[i]], p.sizes[i])
		off += p.sizes[i]
		out, err := l.OutShape(p.inShape)
		if err != nil {
			panic(err)
		}
		dxi := l.Backward(g.Reshape(out...))
		dx.AddScaled(1, dxi)
	}
	return dx
}
