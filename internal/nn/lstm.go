package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// LSTM is a sequence-to-one long short-term memory layer: it consumes
// a [T × C] window and emits the final hidden state [H]. Gates are
// ordered input, forget, cell, output; the forget-gate bias is
// initialised to 1 per common practice. Backward implements full
// backpropagation through time.
type LSTM struct {
	InCh, Hidden int
	Wx           *Param // [4H × C]
	Wh           *Param // [4H × H]
	Bias         *Param // [4H]

	// forward caches (one entry per timestep)
	xs               *tensor.Tensor
	hPrev            [][]float64
	cPrev            [][]float64
	gi, gf, gg, gOut [][]float64
	tanhC            [][]float64
}

// NewLSTM returns a Glorot-initialised LSTM.
func NewLSTM(inCh, hidden int, rng *rand.Rand) *LSTM {
	l := &LSTM{
		InCh:   inCh,
		Hidden: hidden,
		Wx:     newParam("lstm.wx", 4*hidden, inCh),
		Wh:     newParam("lstm.wh", 4*hidden, hidden),
		Bias:   newParam("lstm.b", 4*hidden),
	}
	glorotInit(l.Wx.W, inCh, hidden, rng)
	glorotInit(l.Wh.W, hidden, hidden, rng)
	// Forget-gate bias = 1 keeps early gradients flowing.
	bd := l.Bias.W.Data()
	for i := hidden; i < 2*hidden; i++ {
		bd[i] = 1
	}
	return l
}

// Name implements Layer.
func (l *LSTM) Name() string { return fmt.Sprintf("lstm(%d→%d)", l.InCh, l.Hidden) }

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.Bias} }

// OutShape implements Layer.
func (l *LSTM) OutShape(in []int) ([]int, error) {
	if len(in) != 2 || in[1] != l.InCh {
		return nil, fmt.Errorf("nn: %s cannot take input %v", l.Name(), in)
	}
	return []int{l.Hidden}, nil
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Forward implements Layer.
//
//fallvet:cold recurrent baseline layer (paper comparison): allocates per step by design, never part of the zero-alloc CNN deployment
func (l *LSTM) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 2 || x.Dim(1) != l.InCh {
		panic(fmt.Sprintf("nn: %s got shape %v", l.Name(), x.Shape()))
	}
	T := x.Dim(0)
	H := l.Hidden
	h := make([]float64, H)
	c := make([]float64, H)
	if train {
		l.xs = x
		l.hPrev = make([][]float64, T)
		l.cPrev = make([][]float64, T)
		l.gi = make([][]float64, T)
		l.gf = make([][]float64, T)
		l.gg = make([][]float64, T)
		l.gOut = make([][]float64, T)
		l.tanhC = make([][]float64, T)
	}
	xd := x.Data()
	wx, wh, b := l.Wx.W.Data(), l.Wh.W.Data(), l.Bias.W.Data()
	z := make([]float64, 4*H)
	for t := 0; t < T; t++ {
		xt := xd[t*l.InCh : (t+1)*l.InCh]
		// z = Wx·x_t + Wh·h + b
		for r := 0; r < 4*H; r++ {
			s := b[r]
			rowX := wx[r*l.InCh : (r+1)*l.InCh]
			for j, v := range xt {
				s += rowX[j] * v
			}
			rowH := wh[r*H : (r+1)*H]
			for j, v := range h {
				s += rowH[j] * v
			}
			z[r] = s
		}
		if train {
			l.hPrev[t] = append([]float64(nil), h...)
			l.cPrev[t] = append([]float64(nil), c...)
			l.gi[t] = make([]float64, H)
			l.gf[t] = make([]float64, H)
			l.gg[t] = make([]float64, H)
			l.gOut[t] = make([]float64, H)
			l.tanhC[t] = make([]float64, H)
		}
		for j := 0; j < H; j++ {
			gi := sigmoid(z[j])
			gf := sigmoid(z[H+j])
			gg := math.Tanh(z[2*H+j])
			gout := sigmoid(z[3*H+j])
			c[j] = gf*c[j] + gi*gg
			tc := math.Tanh(c[j])
			h[j] = gout * tc
			if train {
				l.gi[t][j], l.gf[t][j], l.gg[t][j], l.gOut[t][j] = gi, gf, gg, gout
				l.tanhC[t][j] = tc
			}
		}
	}
	return tensor.FromSlice(append([]float64(nil), h...), H)
}

// Backward implements Layer.
//
//fallvet:cold recurrent baseline layer (paper comparison): allocates per step by design, never part of the zero-alloc CNN deployment
func (l *LSTM) Backward(grad *tensor.Tensor) *tensor.Tensor {
	H := l.Hidden
	checkShape(l.Name()+" grad", grad.Shape(), []int{H})
	T := l.xs.Dim(0)
	xd := l.xs.Data()
	wx, wh := l.Wx.W.Data(), l.Wh.W.Data()
	dwx, dwh, db := l.Wx.G.Data(), l.Wh.G.Data(), l.Bias.G.Data()

	dh := append([]float64(nil), grad.Data()...)
	dc := make([]float64, H)
	dx := tensor.New(T, l.InCh)
	dxd := dx.Data()
	dz := make([]float64, 4*H)

	for t := T - 1; t >= 0; t-- {
		xt := xd[t*l.InCh : (t+1)*l.InCh]
		for j := 0; j < H; j++ {
			gi, gf, gg, gout := l.gi[t][j], l.gf[t][j], l.gg[t][j], l.gOut[t][j]
			tc := l.tanhC[t][j]
			do := dh[j] * tc
			dct := dc[j] + dh[j]*gout*(1-tc*tc)
			di := dct * gg
			dg := dct * gi
			df := dct * l.cPrev[t][j]
			dc[j] = dct * gf
			dz[j] = di * gi * (1 - gi)
			dz[H+j] = df * gf * (1 - gf)
			dz[2*H+j] = dg * (1 - gg*gg)
			dz[3*H+j] = do * gout * (1 - gout)
		}
		// Parameter gradients and propagated gradients.
		for j := range dh {
			dh[j] = 0
		}
		for r := 0; r < 4*H; r++ {
			g := dz[r]
			if g == 0 {
				continue
			}
			db[r] += g
			rowX := wx[r*l.InCh : (r+1)*l.InCh]
			drowX := dwx[r*l.InCh : (r+1)*l.InCh]
			for j, v := range xt {
				drowX[j] += g * v
				dxd[t*l.InCh+j] += g * rowX[j]
			}
			rowH := wh[r*H : (r+1)*H]
			drowH := dwh[r*H : (r+1)*H]
			for j := 0; j < H; j++ {
				drowH[j] += g * l.hPrev[t][j]
				dh[j] += g * rowH[j]
			}
		}
	}
	return dx
}
