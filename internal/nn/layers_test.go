package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestDenseKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(2, 2, rng)
	copy(d.Weight.W.Data(), []float64{1, 2, 3, 4})
	copy(d.Bias.W.Data(), []float64{0.5, -0.5})
	y := d.Forward(tensor.FromSlice([]float64{1, 1}, 2), false)
	if y.At(0) != 3.5 || y.At(1) != 6.5 {
		t.Fatalf("dense output %v", y.Data())
	}
}

func TestDenseShapePanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(3, 2, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input shape accepted")
		}
	}()
	d.Forward(tensor.New(4), false)
}

func TestConv1DKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv1D(1, 1, 2, rng)
	copy(c.Weight.W.Data(), []float64{1, -1}) // difference filter
	c.Bias.W.Data()[0] = 0
	x := tensor.FromSlice([]float64{1, 3, 6, 10}, 4, 1)
	y := c.Forward(x, false)
	want := []float64{-2, -3, -4}
	for i, v := range want {
		if math.Abs(y.Data()[i]-v) > 1e-12 {
			t.Fatalf("conv output %v, want %v", y.Data(), want)
		}
	}
}

func TestConv1DTooShortPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv1D(1, 1, 5, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("short input accepted")
		}
	}()
	c.Forward(tensor.New(3, 1), false)
}

func TestMaxPoolValues(t *testing.T) {
	m := NewMaxPool1D(2)
	x := tensor.FromSlice([]float64{
		1, 10,
		3, 2,
		-5, 7,
		0, 8,
		9, -1, // partial window
	}, 5, 2)
	y := m.Forward(x, false)
	if y.Dim(0) != 3 || y.Dim(1) != 2 {
		t.Fatalf("pool shape %v", y.Shape())
	}
	want := []float64{3, 10, 0, 8, 9, -1}
	for i, v := range want {
		if y.Data()[i] != v {
			t.Fatalf("pool output %v, want %v", y.Data(), want)
		}
	}
}

func TestMaxPoolBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pool 0 accepted")
		}
	}()
	NewMaxPool1D(0)
}

func TestActivationValues(t *testing.T) {
	x := tensor.FromSlice([]float64{-2, 0, 3}, 3)
	r := NewReLU().Forward(x, false)
	if r.At(0) != 0 || r.At(1) != 0 || r.At(2) != 3 {
		t.Fatalf("relu %v", r.Data())
	}
	s := NewSigmoid().Forward(tensor.FromSlice([]float64{0}, 1), false)
	if math.Abs(s.At(0)-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0) = %g", s.At(0))
	}
	th := NewTanh().Forward(tensor.FromSlice([]float64{0, 100}, 2), false)
	if th.At(0) != 0 || math.Abs(th.At(1)-1) > 1e-9 {
		t.Fatalf("tanh %v", th.Data())
	}
}

func TestSigmoidBounded(t *testing.T) {
	// The paper: "the output of the sigmoid function is bounded
	// between zero and one".
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		x := tensor.FromSlice([]float64{rng.NormFloat64() * 50}, 1)
		p := NewSigmoid().Forward(x, false).At(0)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("sigmoid out of range: %g", p)
		}
	}
}

func TestDropoutInference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDropout(0.5, rng)
	x := tensor.FromSlice([]float64{1, 2, 3}, 3)
	y := d.Forward(x, false)
	for i := range x.Data() {
		if y.Data()[i] != x.Data()[i] {
			t.Fatal("dropout must be identity at inference")
		}
	}
}

func TestDropoutTrainZeroesAndScales(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDropout(0.5, rng)
	x := tensor.New(1000)
	x.Fill(1)
	y := d.Forward(x, true)
	zeros, scaled := 0, 0
	for _, v := range y.Data() {
		switch v {
		case 0:
			zeros++
		case 2:
			scaled++
		default:
			t.Fatalf("unexpected dropout value %g", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropout zeroed %d of 1000 at rate 0.5", zeros)
	}
	if zeros+scaled != 1000 {
		t.Fatal("count mismatch")
	}
}

func TestDropoutBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rate 1 accepted")
		}
	}()
	NewDropout(1, rand.New(rand.NewSource(1)))
}

func TestBranchSplitsColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Identity-ish branches: flatten each slice.
	b := NewBranch(
		[][2]int{{0, 1}, {1, 3}},
		[][]Layer{{NewFlatten()}, {NewFlatten()}},
	)
	_ = rng
	x := tensor.FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
	}, 2, 3)
	y := b.Forward(x, false)
	want := []float64{1, 4, 2, 3, 5, 6}
	for i, v := range want {
		if y.Data()[i] != v {
			t.Fatalf("branch concat %v, want %v", y.Data(), want)
		}
	}
}

func TestBranchValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewBranch(nil, nil) },
		func() { NewBranch([][2]int{{0, 1}}, nil) },
		func() { NewBranch([][2]int{{2, 1}}, [][]Layer{{NewFlatten()}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid branch config accepted")
				}
			}()
			f()
		}()
	}
}

func TestOutShapeChain(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// 40×9 input through the paper's CNN: 3 branches of conv(16,k5)+pool2.
	branch := func() []Layer {
		return []Layer{NewConv1D(3, 16, 5, rng), NewReLU(), NewMaxPool1D(2)}
	}
	net := NewNetwork(
		NewBranch([][2]int{{0, 3}, {3, 6}, {6, 9}},
			[][]Layer{branch(), branch(), branch()}),
		NewDense(3*18*16, 64, rng),
		NewReLU(),
		NewDense(64, 32, rng),
		NewReLU(),
		NewDense(32, 1, rng),
		NewSigmoid(),
	)
	shape := []int{40, 9}
	for _, l := range net.Layers {
		var err error
		shape, err = l.OutShape(shape)
		if err != nil {
			t.Fatalf("%s: %v", l.Name(), err)
		}
	}
	if len(shape) != 1 || shape[0] != 1 {
		t.Fatalf("final shape %v, want [1]", shape)
	}
	if s := net.Summary([]int{40, 9}); s == "" {
		t.Fatal("empty summary")
	}
}

func TestOutShapeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := NewDense(4, 2, rng).OutShape([]int{5}); err == nil {
		t.Error("dense wrong size accepted")
	}
	if _, err := NewConv1D(3, 2, 5, rng).OutShape([]int{4, 3}); err == nil {
		t.Error("conv too-short input accepted")
	}
	if _, err := NewLSTM(3, 2, rng).OutShape([]int{5, 4}); err == nil {
		t.Error("lstm wrong channels accepted")
	}
	if _, err := NewConvLSTM(9, 2, 3, rng).OutShape([]int{5, 4}); err == nil {
		t.Error("convlstm wrong channels accepted")
	}
	b := NewBranch([][2]int{{0, 12}}, [][]Layer{{NewFlatten()}})
	if _, err := b.OutShape([]int{5, 9}); err == nil {
		t.Error("branch columns beyond input accepted")
	}
}

func TestLSTMSequenceSensitivity(t *testing.T) {
	// The LSTM must distinguish sequence order (unlike sum pooling).
	rng := rand.New(rand.NewSource(8))
	l := NewLSTM(1, 4, rng)
	a := tensor.FromSlice([]float64{1, 2, 3, 4}, 4, 1)
	b := tensor.FromSlice([]float64{4, 3, 2, 1}, 4, 1)
	ya := l.Forward(a, false)
	yb := l.Forward(b, false)
	diff := 0.0
	for i := range ya.Data() {
		diff += math.Abs(ya.Data()[i] - yb.Data()[i])
	}
	if diff < 1e-6 {
		t.Fatal("LSTM insensitive to order")
	}
}

func TestConvLSTMKernelMustBeOdd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("even kernel accepted")
		}
	}()
	NewConvLSTM(9, 2, 4, rand.New(rand.NewSource(1)))
}

func TestConvLSTMSpatialLocality(t *testing.T) {
	// With kernel 3, perturbing channel 0 must not change hidden
	// units at spatial position 8 after a single timestep.
	rng := rand.New(rand.NewSource(9))
	l := NewConvLSTM(9, 2, 3, rng)
	x1 := tensor.New(1, 9)
	x2 := tensor.New(1, 9)
	x2.Data()[0] = 5 // perturb channel 0 only
	y1 := l.Forward(x1, false)
	y2 := l.Forward(x2, false)
	// Positions ≥ 2 are outside the kernel-3 receptive field of
	// channel 0 after one step.
	for p := 2; p < 9; p++ {
		for f := 0; f < 2; f++ {
			ix := p*2 + f
			if math.Abs(y1.Data()[ix]-y2.Data()[ix]) > 1e-12 {
				t.Fatalf("position %d affected beyond receptive field", p)
			}
		}
	}
	// Position 0 must be affected.
	if math.Abs(y1.Data()[0]-y2.Data()[0]) < 1e-12 {
		t.Fatal("perturbation had no local effect")
	}
}

// Property: deterministic layers produce identical outputs in train
// and inference mode (only Dropout may differ).
func TestTrainInferEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	layers := []Layer{
		NewDense(27, 8, rng),
		NewConv1D(9, 4, 3, rng),
		NewMaxPool1D(2),
		NewReLU(),
		NewSigmoid(),
		NewTanh(),
		NewLSTM(9, 4, rng),
		NewConvLSTM(9, 2, 3, rng),
		NewGRU(9, 4, false, rng),
	}
	for _, l := range layers {
		var x *tensor.Tensor
		switch l.(type) {
		case *Dense:
			x = tensor.New(27)
		default:
			x = tensor.New(6, 9)
		}
		for i := range x.Data() {
			x.Data()[i] = rng.NormFloat64()
		}
		a := l.Forward(x, true)
		b := l.Forward(x, false)
		if !a.Equal(b, 1e-12) {
			t.Errorf("%s: train/infer outputs differ", l.Name())
		}
	}
}
