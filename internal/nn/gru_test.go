package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestGradGRUForward(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	numGradCheck(t, NewGRU(3, 4, false, rng), []int{8, 3}, 32, false)
}

func TestGradGRUReverse(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	numGradCheck(t, NewGRU(3, 4, true, rng), []int{8, 3}, 34, false)
}

func TestGradParallelBiGRU(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	numGradCheck(t, NewBiGRU(3, 3, rng), []int{7, 3}, 36, false)
}

func TestGradParallelMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	p := NewParallel(
		NewLSTM(4, 3, rng),
		NewGRU(4, 2, false, rng),
	)
	numGradCheck(t, p, []int{6, 4}, 38, false)
}

func TestGRUReverseDiffersFromForward(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	fwd := NewGRU(1, 4, false, rng)
	bwd := &GRU{
		InCh: 1, Hidden: 4, Reverse: true,
		Wx: fwd.Wx, Wh: fwd.Wh, Bias: fwd.Bias, // shared weights
	}
	x := tensor.FromSlice([]float64{1, 2, 3, 4, 5}, 5, 1)
	a := fwd.Forward(x, false)
	b := bwd.Forward(x, false)
	diff := 0.0
	for i := range a.Data() {
		diff += math.Abs(a.Data()[i] - b.Data()[i])
	}
	if diff < 1e-6 {
		t.Fatal("reverse GRU identical to forward on an asymmetric input")
	}
	// On a palindromic input they must agree exactly.
	pal := tensor.FromSlice([]float64{1, 2, 3, 2, 1}, 5, 1)
	a = fwd.Forward(pal, false)
	b = bwd.Forward(pal, false)
	for i := range a.Data() {
		if math.Abs(a.Data()[i]-b.Data()[i]) > 1e-12 {
			t.Fatal("fwd/bwd disagree on a palindrome with shared weights")
		}
	}
}

func TestGRUOutShape(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	g := NewGRU(9, 24, false, rng)
	out, err := g.OutShape([]int{40, 9})
	if err != nil || out[0] != 24 {
		t.Fatalf("OutShape = %v, %v", out, err)
	}
	if _, err := g.OutShape([]int{40, 3}); err == nil {
		t.Fatal("wrong channel count accepted")
	}
	bi := NewBiGRU(9, 24, rng)
	out, err = bi.OutShape([]int{40, 9})
	if err != nil || out[0] != 48 {
		t.Fatalf("BiGRU OutShape = %v, %v", out, err)
	}
}

func TestParallelValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty Parallel accepted")
		}
	}()
	NewParallel()
}

func TestParallelSumsInputGradients(t *testing.T) {
	// Two identity-ish flattens in parallel: the input gradient must
	// be the sum of both branch gradients.
	p := NewParallel(NewFlatten(), NewFlatten())
	x := tensor.FromSlice([]float64{1, 2}, 2, 1)
	y := p.Forward(x, true)
	if y.Len() != 4 {
		t.Fatalf("parallel output %v", y.Data())
	}
	g := tensor.FromSlice([]float64{1, 10, 100, 1000}, 4)
	dx := p.Backward(g)
	if dx.At(0, 0) != 101 || dx.At(1, 0) != 1010 {
		t.Fatalf("summed gradient %v", dx.Data())
	}
}
