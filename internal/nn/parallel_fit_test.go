package nn

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

// fitResult captures everything the bit-identity contract covers: the
// per-epoch losses, the best epoch, the final weights and the raw bytes
// of the completed checkpoint file.
type fitResult struct {
	hist    *History
	weights [][]float64
	ckpt    []byte
}

func runParallelFit(t *testing.T, workers int) fitResult {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "fit.ckpt")
	rng := rand.New(rand.NewSource(5))
	train := toyProblem(200, rng)
	val := toyProblem(60, rng)
	net := toyNet(rng)
	tr := NewTrainer(net, NewAdam(0.01), TrainConfig{
		Epochs: 8, Patience: 8, BatchSize: 32, Workers: workers,
		Checkpoint: &Checkpointer{Path: path},
	}, rng)
	// The factory's own init is irrelevant: replica weights are synced
	// from the master every batch.
	tr.Replicate = func() *Network { return toyNet(rand.New(rand.NewSource(999))) }
	hist, err := tr.Fit(train, val)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("workers=%d: reading checkpoint: %v", workers, err)
	}
	return fitResult{hist: hist, weights: net.Snapshot(), ckpt: raw}
}

// TestParallelFitBitIdentical is the tentpole contract: Fit with
// workers=2 and workers=4 must produce exactly the losses, weights and
// checkpoint bytes of workers=1 — gradients are reduced in fixed chunk
// order, so floating-point non-associativity never leaks parallelism
// into the result.
func TestParallelFitBitIdentical(t *testing.T) {
	base := runParallelFit(t, 1)
	for _, workers := range []int{2, 4} {
		got := runParallelFit(t, workers)
		if len(got.hist.TrainLoss) != len(base.hist.TrainLoss) {
			t.Fatalf("workers=%d: %d epochs, serial ran %d",
				workers, len(got.hist.TrainLoss), len(base.hist.TrainLoss))
		}
		for e := range base.hist.TrainLoss {
			if got.hist.TrainLoss[e] != base.hist.TrainLoss[e] {
				t.Errorf("workers=%d: train loss differs at epoch %d: %g vs %g",
					workers, e, got.hist.TrainLoss[e], base.hist.TrainLoss[e])
			}
			if got.hist.ValLoss[e] != base.hist.ValLoss[e] {
				t.Errorf("workers=%d: val loss differs at epoch %d: %g vs %g",
					workers, e, got.hist.ValLoss[e], base.hist.ValLoss[e])
			}
		}
		if got.hist.BestEpoch != base.hist.BestEpoch {
			t.Errorf("workers=%d: best epoch %d, serial %d",
				workers, got.hist.BestEpoch, base.hist.BestEpoch)
		}
		for i := range base.weights {
			for j := range base.weights[i] {
				if got.weights[i][j] != base.weights[i][j] {
					t.Fatalf("workers=%d: weight tensor %d element %d differs: %g vs %g",
						workers, i, j, got.weights[i][j], base.weights[i][j])
				}
			}
		}
		if !bytes.Equal(got.ckpt, base.ckpt) {
			t.Errorf("workers=%d: checkpoint bytes differ from serial run", workers)
		}
	}
}

// TestParallelFitNeedsReplicateFactory: multi-worker training without a
// replica factory must fail loudly, not race on shared layer scratch.
func TestParallelFitNeedsReplicateFactory(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	train := toyProblem(40, rng)
	tr := NewTrainer(toyNet(rng), NewAdam(0.01),
		TrainConfig{Epochs: 1, BatchSize: 16, Workers: 4}, rng)
	if _, err := tr.Fit(train, nil); err == nil {
		t.Fatal("Workers=4 without Replicate was accepted")
	}
}

// TestParallelFitRejectsMismatchedReplica: a factory returning a
// structurally different network must be rejected before training.
func TestParallelFitRejectsMismatchedReplica(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	train := toyProblem(40, rng)
	tr := NewTrainer(toyNet(rng), NewAdam(0.01),
		TrainConfig{Epochs: 1, BatchSize: 16, Workers: 2}, rng)
	tr.Replicate = func() *Network {
		return NewNetwork(NewDense(2, 3, rng), NewSigmoid())
	}
	if _, err := tr.Fit(train, nil); err == nil {
		t.Fatal("mismatched replica accepted")
	}
}

// TestPredictAllocationFree: steady-state inference must not allocate —
// every layer reuses its own scratch buffer.
func TestPredictAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := toyNet(rng)
	x := tensor.FromSlice([]float64{0.4, -0.2}, 2)
	net.Predict(x) // warm up the scratch buffers
	if allocs := testing.AllocsPerRun(200, func() { net.Predict(x) }); allocs != 0 {
		t.Fatalf("Network.Predict allocates %.1f objects/op at steady state, want 0", allocs)
	}
}
