package nn

import (
	"unsafe"

	"repro/internal/tensor"
)

// float32 kernel glue. The four generic entry kernels in kernels.go
// dispatch the float32 instantiation to the SIMD kernels in
// internal/nn/simd, whose summation order — different from the frozen
// float64 order, defined by the Ref functions there — is a pure
// function of cols, so the bit-identity contract holds per width. The
// helpers here are the reinterpret view and the NaN-preserving ReLU
// clamp the dispatch sites share.

// reluF32 applies the ReLU clamp after an f32 kernel call, with the
// same NaN rule as the generic kernels: v ≤ 0 is false for NaN, so
// NaN propagates. The clamp stays in Go rather than the assembly
// because MAXPS would resolve NaN to the source operand and silently
// flush poisoned sums to zero.
func reluF32(d []float32) {
	for i, v := range d {
		if v <= 0 {
			d[i] = 0
		}
	}
}

// f32s reinterprets a scalar slice as []float32. Callers guard with
// !tensor.Is64[S], so S is float32 and this is the identity view; the
// float64 instantiation compiles but is unreachable. No allocation —
// unsafe.Slice builds a header over the existing backing array.
func f32s[S tensor.Scalar](s []S) []float32 {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&s[0])), len(s))
}
