package nn

import (
	"repro/internal/nn/simd"
	"repro/internal/tensor"
)

// Register-blocked micro-kernels shared by the batch forward path and
// the incremental streaming path (DESIGN.md §12). Go's scalar code on
// the inference hot loops is latency-bound, not throughput-bound: a
// single running float64 sum chains every multiply-add behind a
// ~4-cycle add, so the classic one-accumulator dot product runs far
// below the core's issue width. Two forms of blocking fix that:
// four outputs advance together over one streamed read of x (four
// independent dependency chains), and within each output the products
// are summed pairwise in small groups, which shortens the per-chain
// add recurrence and amortises loop overhead.
//
// Bit-identity contract: for a given cols, every output is computed
// as bias + the same fixed grouping of products in ascending input
// order — independent of which lane of the 4-wide block produced it,
// of rows, and of the caller. The batch and streaming paths therefore
// produce bit-identical results (asserted by TestMatVecBiasLaneUniform
// and the stream equivalence tests), because a conv row computed alone
// at a stride goes through exactly the arithmetic a full batch pass
// applies to it.
//
// The float32 instantiation never reaches the scalar bodies below:
// every entry kernel dispatches it to the SIMD path, whose
// (different, SIMD-lane) summation order is defined and documented in
// internal/nn/simd. The same contract holds there — each output a
// fixed function of (weight row, x, bias), order a pure function of
// cols — so batch/stream bit-identity is preserved per width.

// matVecBias computes dst[o] = b[o] + Σ_i w[o·cols+i]·x[i] for
// o < rows. It is the whole inner loop of Dense.Forward (rows=Out,
// cols=In) and of one Conv1D output row (rows=Filters,
// cols=Kernel·InCh).
//
// Summation order per output, fixed by cols alone: for wide inputs
// (cols ≥ 32) products are grouped ((p0+p1)+(p2+p3)) four at a time,
// for narrow inputs (p0+p1) two at a time, remainders added singly in
// ascending order.
//
//fallvet:hotpath
func matVecBias[S tensor.Scalar](dst, x, w, b []S, rows, cols int) {
	if !tensor.Is64[S]() {
		//fallvet:ignore hottrans simd.MatVecBiasF32 is a NOSPLIT assembly leaf with no body to analyze; it allocates nothing
		simd.MatVecBiasF32(f32s(dst), f32s(x), f32s(w), f32s(b), rows, cols)
		return
	}
	if cols >= 32 {
		matVecBiasWide(dst, x, w, b, rows, cols)
		return
	}
	o := 0
	for ; o+4 <= rows; o += 4 {
		r0 := w[(o+0)*cols : (o+1)*cols]
		r1 := w[(o+1)*cols : (o+2)*cols]
		r2 := w[(o+2)*cols : (o+3)*cols]
		r3 := w[(o+3)*cols : (o+4)*cols]
		s0, s1, s2, s3 := b[o], b[o+1], b[o+2], b[o+3]
		i := 0
		for ; i+2 <= cols; i += 2 {
			v0, v1 := x[i], x[i+1]
			s0 += r0[i]*v0 + r0[i+1]*v1
			s1 += r1[i]*v0 + r1[i+1]*v1
			s2 += r2[i]*v0 + r2[i+1]*v1
			s3 += r3[i]*v0 + r3[i+1]*v1
		}
		for ; i < cols; i++ {
			v := x[i]
			s0 += r0[i] * v
			s1 += r1[i] * v
			s2 += r2[i] * v
			s3 += r3[i] * v
		}
		dst[o], dst[o+1], dst[o+2], dst[o+3] = s0, s1, s2, s3
	}
	for ; o < rows; o++ {
		row := w[o*cols : (o+1)*cols]
		s := b[o]
		i := 0
		for ; i+2 <= cols; i += 2 {
			s += row[i]*x[i] + row[i+1]*x[i+1]
		}
		for ; i < cols; i++ {
			s += row[i] * x[i]
		}
		dst[o] = s
	}
}

// matVecBias2 computes two matVecBias calls that share the weight
// matrix — two consecutive Conv1D output rows, whose input windows xa
// and xb overlap but sit at different offsets. Each weight element is
// loaded once and applied to both windows, which matters because the
// narrow conv shape is front-end-bound: per column pair the plain
// kernel issues 10 loads for 8 FP ops, this one 12 loads for 16.
//
// Bit-identity: each output is accumulated in exactly matVecBias's
// narrow order — bias, then (p0+p1) pairs in ascending input order,
// remainder singly — so da/db match two separate matVecBias calls
// bit-for-bit (asserted by TestMatVecBias2MatchesSingle). Callers must
// only use it when cols < 32, where matVecBias takes the narrow path.
//
//fallvet:hotpath
func matVecBias2[S tensor.Scalar](da, db, xa, xb, w, b []S, rows, cols int) {
	if !tensor.Is64[S]() {
		//fallvet:ignore hottrans simd.MatVecBias2F32 is a NOSPLIT assembly leaf with no body to analyze; it allocates nothing
		simd.MatVecBias2F32(f32s(da), f32s(db), f32s(xa), f32s(xb), f32s(w), f32s(b), rows, cols)
		return
	}
	o := 0
	for ; o+4 <= rows; o += 4 {
		r0 := w[(o+0)*cols : (o+1)*cols]
		r1 := w[(o+1)*cols : (o+2)*cols]
		r2 := w[(o+2)*cols : (o+3)*cols]
		r3 := w[(o+3)*cols : (o+4)*cols]
		s0, s1, s2, s3 := b[o], b[o+1], b[o+2], b[o+3]
		t0, t1, t2, t3 := s0, s1, s2, s3
		i := 0
		for ; i+2 <= cols; i += 2 {
			a0, a1 := xa[i], xa[i+1]
			c0, c1 := xb[i], xb[i+1]
			w00, w01 := r0[i], r0[i+1]
			s0 += w00*a0 + w01*a1
			t0 += w00*c0 + w01*c1
			w10, w11 := r1[i], r1[i+1]
			s1 += w10*a0 + w11*a1
			t1 += w10*c0 + w11*c1
			w20, w21 := r2[i], r2[i+1]
			s2 += w20*a0 + w21*a1
			t2 += w20*c0 + w21*c1
			w30, w31 := r3[i], r3[i+1]
			s3 += w30*a0 + w31*a1
			t3 += w30*c0 + w31*c1
		}
		for ; i < cols; i++ {
			a, c := xa[i], xb[i]
			w0, w1, w2, w3 := r0[i], r1[i], r2[i], r3[i]
			s0 += w0 * a
			t0 += w0 * c
			s1 += w1 * a
			t1 += w1 * c
			s2 += w2 * a
			t2 += w2 * c
			s3 += w3 * a
			t3 += w3 * c
		}
		da[o], da[o+1], da[o+2], da[o+3] = s0, s1, s2, s3
		db[o], db[o+1], db[o+2], db[o+3] = t0, t1, t2, t3
	}
	for ; o < rows; o++ {
		row := w[o*cols : (o+1)*cols]
		s, t := b[o], b[o]
		i := 0
		for ; i+2 <= cols; i += 2 {
			w0, w1 := row[i], row[i+1]
			s += w0*xa[i] + w1*xa[i+1]
			t += w0*xb[i] + w1*xb[i+1]
		}
		for ; i < cols; i++ {
			s += row[i] * xa[i]
			t += row[i] * xb[i]
		}
		da[o] = s
		db[o] = t
	}
}

// matVecBiasReLU is matVecBias with the ReLU clamp folded into the
// stores: the finished sum is clamped exactly as ReLU.Forward clamps
// (v ≤ 0 becomes 0, NaN propagates — the comparison is false), so the
// result is identical to matVecBias followed by the ReLU layer without
// re-reading the output row.
//
//fallvet:hotpath
func matVecBiasReLU[S tensor.Scalar](dst, x, w, b []S, rows, cols int) {
	if !tensor.Is64[S]() {
		d := f32s(dst)
		//fallvet:ignore hottrans simd.MatVecBiasF32 is a NOSPLIT assembly leaf with no body to analyze; it allocates nothing
		simd.MatVecBiasF32(d, f32s(x), f32s(w), f32s(b), rows, cols)
		reluF32(d[:rows])
		return
	}
	if cols >= 32 {
		matVecBiasWide(dst, x, w, b, rows, cols)
		for o, v := range dst[:rows] {
			if v <= 0 {
				dst[o] = 0
			}
		}
		return
	}
	o := 0
	for ; o+4 <= rows; o += 4 {
		r0 := w[(o+0)*cols : (o+1)*cols]
		r1 := w[(o+1)*cols : (o+2)*cols]
		r2 := w[(o+2)*cols : (o+3)*cols]
		r3 := w[(o+3)*cols : (o+4)*cols]
		s0, s1, s2, s3 := b[o], b[o+1], b[o+2], b[o+3]
		i := 0
		for ; i+2 <= cols; i += 2 {
			v0, v1 := x[i], x[i+1]
			s0 += r0[i]*v0 + r0[i+1]*v1
			s1 += r1[i]*v0 + r1[i+1]*v1
			s2 += r2[i]*v0 + r2[i+1]*v1
			s3 += r3[i]*v0 + r3[i+1]*v1
		}
		for ; i < cols; i++ {
			v := x[i]
			s0 += r0[i] * v
			s1 += r1[i] * v
			s2 += r2[i] * v
			s3 += r3[i] * v
		}
		if s0 <= 0 {
			s0 = 0
		}
		if s1 <= 0 {
			s1 = 0
		}
		if s2 <= 0 {
			s2 = 0
		}
		if s3 <= 0 {
			s3 = 0
		}
		dst[o], dst[o+1], dst[o+2], dst[o+3] = s0, s1, s2, s3
	}
	for ; o < rows; o++ {
		row := w[o*cols : (o+1)*cols]
		s := b[o]
		i := 0
		for ; i+2 <= cols; i += 2 {
			s += row[i]*x[i] + row[i+1]*x[i+1]
		}
		for ; i < cols; i++ {
			s += row[i] * x[i]
		}
		if s <= 0 {
			s = 0
		}
		dst[o] = s
	}
}

// matVecBias2ReLU is matVecBias2 with the ReLU clamp folded into the
// stores, mirroring matVecBiasReLU. Like matVecBias2 it is only valid
// for cols < 32 (the narrow summation order).
//
//fallvet:hotpath
func matVecBias2ReLU[S tensor.Scalar](da, db, xa, xb, w, b []S, rows, cols int) {
	if !tensor.Is64[S]() {
		fa, fb := f32s(da), f32s(db)
		//fallvet:ignore hottrans simd.MatVecBias2F32 is a NOSPLIT assembly leaf with no body to analyze; it allocates nothing
		simd.MatVecBias2F32(fa, fb, f32s(xa), f32s(xb), f32s(w), f32s(b), rows, cols)
		reluF32(fa[:rows])
		reluF32(fb[:rows])
		return
	}
	o := 0
	for ; o+4 <= rows; o += 4 {
		r0 := w[(o+0)*cols : (o+1)*cols]
		r1 := w[(o+1)*cols : (o+2)*cols]
		r2 := w[(o+2)*cols : (o+3)*cols]
		r3 := w[(o+3)*cols : (o+4)*cols]
		s0, s1, s2, s3 := b[o], b[o+1], b[o+2], b[o+3]
		t0, t1, t2, t3 := s0, s1, s2, s3
		i := 0
		for ; i+2 <= cols; i += 2 {
			a0, a1 := xa[i], xa[i+1]
			c0, c1 := xb[i], xb[i+1]
			w00, w01 := r0[i], r0[i+1]
			s0 += w00*a0 + w01*a1
			t0 += w00*c0 + w01*c1
			w10, w11 := r1[i], r1[i+1]
			s1 += w10*a0 + w11*a1
			t1 += w10*c0 + w11*c1
			w20, w21 := r2[i], r2[i+1]
			s2 += w20*a0 + w21*a1
			t2 += w20*c0 + w21*c1
			w30, w31 := r3[i], r3[i+1]
			s3 += w30*a0 + w31*a1
			t3 += w30*c0 + w31*c1
		}
		for ; i < cols; i++ {
			a, c := xa[i], xb[i]
			w0, w1, w2, w3 := r0[i], r1[i], r2[i], r3[i]
			s0 += w0 * a
			t0 += w0 * c
			s1 += w1 * a
			t1 += w1 * c
			s2 += w2 * a
			t2 += w2 * c
			s3 += w3 * a
			t3 += w3 * c
		}
		if s0 <= 0 {
			s0 = 0
		}
		if s1 <= 0 {
			s1 = 0
		}
		if s2 <= 0 {
			s2 = 0
		}
		if s3 <= 0 {
			s3 = 0
		}
		if t0 <= 0 {
			t0 = 0
		}
		if t1 <= 0 {
			t1 = 0
		}
		if t2 <= 0 {
			t2 = 0
		}
		if t3 <= 0 {
			t3 = 0
		}
		da[o], da[o+1], da[o+2], da[o+3] = s0, s1, s2, s3
		db[o], db[o+1], db[o+2], db[o+3] = t0, t1, t2, t3
	}
	for ; o < rows; o++ {
		row := w[o*cols : (o+1)*cols]
		s, t := b[o], b[o]
		i := 0
		for ; i+2 <= cols; i += 2 {
			w0, w1 := row[i], row[i+1]
			s += w0*xa[i] + w1*xa[i+1]
			t += w0*xb[i] + w1*xb[i+1]
		}
		for ; i < cols; i++ {
			s += row[i] * xa[i]
			t += row[i] * xb[i]
		}
		if s <= 0 {
			s = 0
		}
		if t <= 0 {
			t = 0
		}
		da[o] = s
		db[o] = t
	}
}

// maxSparseCols bounds the stack-allocated nonzero index scratch in
// matVecBiasWide; wider layers always take the dense path.
const maxSparseCols = 1152

// matVecBiasWide is the cols ≥ 32 body of matVecBias: the same 4-wide
// output blocking with a deeper 4-way input unroll, which is worth
// the extra remainder handling only once the inner loop dominates.
//
// Wide layers in this topology sit behind ReLU (+ max-pool), whose
// outputs are exactly +0.0 for every clipped activation — a quarter
// of the concat vector on typical windows. Terms with x[i] == 0
// contribute nothing, so the kernel first scans for nonzeros and,
// when at least 1/8 of the input is zero, accumulates only the
// surviving terms (matVecBiasSparse). Which path runs is a pure
// function of x, and both paths are lane-uniform, so every output is
// still a fixed function of (weight row, x, bias) — the bit-identity
// contract the streaming engine rests on. The one semantic edge: a
// non-finite weight multiplied by an exactly-zero activation no
// longer turns the sum into NaN; finite weights (every trained or
// initialised model here) are unaffected.
//
//fallvet:hotpath
func matVecBiasWide[S tensor.Scalar](dst, x, w, b []S, rows, cols int) {
	if cols <= maxSparseCols {
		var nz [maxSparseCols]int32
		n := 0
		for i := 0; i < cols; i++ {
			if x[i] != 0 {
				nz[n] = int32(i)
				n++
			}
		}
		if n <= cols-cols/8 {
			matVecBiasSparse(dst, x, w, b, rows, cols, nz[:n])
			return
		}
	}
	o := 0
	for ; o+4 <= rows; o += 4 {
		r0 := w[(o+0)*cols : (o+1)*cols]
		r1 := w[(o+1)*cols : (o+2)*cols]
		r2 := w[(o+2)*cols : (o+3)*cols]
		r3 := w[(o+3)*cols : (o+4)*cols]
		s0, s1, s2, s3 := b[o], b[o+1], b[o+2], b[o+3]
		i := 0
		for ; i+4 <= cols; i += 4 {
			v0, v1, v2, v3 := x[i], x[i+1], x[i+2], x[i+3]
			s0 += (r0[i]*v0 + r0[i+1]*v1) + (r0[i+2]*v2 + r0[i+3]*v3)
			s1 += (r1[i]*v0 + r1[i+1]*v1) + (r1[i+2]*v2 + r1[i+3]*v3)
			s2 += (r2[i]*v0 + r2[i+1]*v1) + (r2[i+2]*v2 + r2[i+3]*v3)
			s3 += (r3[i]*v0 + r3[i+1]*v1) + (r3[i+2]*v2 + r3[i+3]*v3)
		}
		for ; i < cols; i++ {
			v := x[i]
			s0 += r0[i] * v
			s1 += r1[i] * v
			s2 += r2[i] * v
			s3 += r3[i] * v
		}
		dst[o], dst[o+1], dst[o+2], dst[o+3] = s0, s1, s2, s3
	}
	for ; o < rows; o++ {
		row := w[o*cols : (o+1)*cols]
		s := b[o]
		i := 0
		for ; i+4 <= cols; i += 4 {
			s += (row[i]*x[i] + row[i+1]*x[i+1]) + (row[i+2]*x[i+2] + row[i+3]*x[i+3])
		}
		for ; i < cols; i++ {
			s += row[i] * x[i]
		}
		dst[o] = s
	}
}

// matVecBiasSparse accumulates only the terms whose input is nonzero,
// in ascending index order, one addition at a time per output. Eight
// outputs run in flight so each accumulator's add issues every eight
// cycles — twice its latency — and the indexed loads stay off the
// critical path. Per output the order is bias + singles over nz,
// independent of rows or lane, preserving lane uniformity.
//
//fallvet:hotpath
func matVecBiasSparse[S tensor.Scalar](dst, x, w, b []S, rows, cols int, nz []int32) {
	o := 0
	for ; o+8 <= rows; o += 8 {
		r0 := w[(o+0)*cols : (o+1)*cols]
		r1 := w[(o+1)*cols : (o+2)*cols]
		r2 := w[(o+2)*cols : (o+3)*cols]
		r3 := w[(o+3)*cols : (o+4)*cols]
		r4 := w[(o+4)*cols : (o+5)*cols]
		r5 := w[(o+5)*cols : (o+6)*cols]
		r6 := w[(o+6)*cols : (o+7)*cols]
		r7 := w[(o+7)*cols : (o+8)*cols]
		s0, s1, s2, s3 := b[o], b[o+1], b[o+2], b[o+3]
		s4, s5, s6, s7 := b[o+4], b[o+5], b[o+6], b[o+7]
		for _, ii := range nz {
			i := int(ii)
			v := x[i]
			s0 += r0[i] * v
			s1 += r1[i] * v
			s2 += r2[i] * v
			s3 += r3[i] * v
			s4 += r4[i] * v
			s5 += r5[i] * v
			s6 += r6[i] * v
			s7 += r7[i] * v
		}
		dst[o], dst[o+1], dst[o+2], dst[o+3] = s0, s1, s2, s3
		dst[o+4], dst[o+5], dst[o+6], dst[o+7] = s4, s5, s6, s7
	}
	for ; o < rows; o++ {
		row := w[o*cols : (o+1)*cols]
		s := b[o]
		for _, ii := range nz {
			i := int(ii)
			s += row[i] * x[i]
		}
		dst[o] = s
	}
}
