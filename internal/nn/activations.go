package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// ReLU is the rectified linear activation, element-wise.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) ([]int, error) { return in, nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := x.Clone()
	d := y.Data()
	if train {
		r.mask = make([]bool, len(d))
	}
	for i, v := range d {
		if v <= 0 {
			d[i] = 0
		} else if train {
			r.mask[i] = true
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := grad.Clone()
	d := dx.Data()
	for i := range d {
		if !r.mask[i] {
			d[i] = 0
		}
	}
	return dx
}

// Sigmoid is the logistic activation, element-wise.
type Sigmoid struct {
	y *tensor.Tensor
}

// NewSigmoid returns a sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return "sigmoid" }

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// OutShape implements Layer.
func (s *Sigmoid) OutShape(in []int) ([]int, error) { return in, nil }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := x.Clone()
	y.Apply(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	if train {
		s.y = y
	}
	return y
}

// Backward implements Layer.
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := grad.Clone()
	d, yd := dx.Data(), s.y.Data()
	for i := range d {
		d[i] *= yd[i] * (1 - yd[i])
	}
	return dx
}

// Tanh is the hyperbolic-tangent activation, element-wise.
type Tanh struct {
	y *tensor.Tensor
}

// NewTanh returns a tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Name implements Layer.
func (t *Tanh) Name() string { return "tanh" }

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// OutShape implements Layer.
func (t *Tanh) OutShape(in []int) ([]int, error) { return in, nil }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := x.Clone()
	y.Apply(math.Tanh)
	if train {
		t.y = y
	}
	return y
}

// Backward implements Layer.
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := grad.Clone()
	d, yd := dx.Data(), t.y.Data()
	for i := range d {
		d[i] *= 1 - yd[i]*yd[i]
	}
	return dx
}

// Flatten reshapes any input to 1-D.
type Flatten struct {
	inShape []int
}

// NewFlatten returns a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) ([]int, error) {
	n := 1
	for _, d := range in {
		n *= d
	}
	return []int{n}, nil
}

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		f.inShape = append([]int(nil), x.Shape()...)
	}
	return x.Reshape(x.Len())
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// Dropout randomly zeroes activations during training with probability
// Rate, scaling survivors by 1/(1−Rate) (inverted dropout); it is the
// identity at inference.
type Dropout struct {
	Rate float64
	rng  *rand.Rand
	keep []bool
}

// NewDropout returns a dropout layer driven by rng.
func NewDropout(rate float64, rng *rand.Rand) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %g outside [0,1)", rate))
	}
	return &Dropout{Rate: rate, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("dropout(%.2f)", d.Rate) }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// OutShape implements Layer.
func (d *Dropout) OutShape(in []int) ([]int, error) { return in, nil }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.Rate == 0 {
		return x
	}
	y := x.Clone()
	data := y.Data()
	d.keep = make([]bool, len(data))
	scale := 1 / (1 - d.Rate)
	for i := range data {
		if d.rng.Float64() >= d.Rate {
			d.keep[i] = true
			data[i] *= scale
		} else {
			data[i] = 0
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.keep == nil {
		return grad
	}
	dx := grad.Clone()
	data := dx.Data()
	scale := 1 / (1 - d.Rate)
	for i := range data {
		if d.keep[i] {
			data[i] *= scale
		} else {
			data[i] = 0
		}
	}
	return dx
}
