package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// ReLU is the rectified linear activation, element-wise.
type ReLU struct {
	mask  []bool
	y, dx *tensor.Tensor // scratch, reused across calls
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) ([]int, error) { return in, nil }

// Forward implements Layer.
//
//fallvet:hotpath
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.Reuse(r.y, x.Shape()...)
	r.y = y
	d := y.Data()
	if train {
		if cap(r.mask) >= len(d) {
			r.mask = r.mask[:len(d)]
		} else {
			//fallvet:ignore hotpath mask warm-up: grows once, then reused (alloc_test proves steady state)
			r.mask = make([]bool, len(d))
		}
	}
	for i, v := range x.Data() {
		if v <= 0 {
			d[i] = 0
			if train {
				r.mask[i] = false
			}
		} else {
			d[i] = v
			if train {
				r.mask[i] = true
			}
		}
	}
	return y
}

// Backward implements Layer.
//
//fallvet:hotpath
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.Reuse(r.dx, grad.Shape()...)
	r.dx = dx
	copy(dx.Data(), grad.Data())
	d := dx.Data()
	for i := range d {
		if !r.mask[i] {
			d[i] = 0
		}
	}
	return dx
}

// Sigmoid is the logistic activation, element-wise.
type Sigmoid struct {
	y  *tensor.Tensor // scratch; doubles as the train-time cache
	dx *tensor.Tensor // backward scratch
}

// NewSigmoid returns a sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return "sigmoid" }

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// OutShape implements Layer.
func (s *Sigmoid) OutShape(in []int) ([]int, error) { return in, nil }

// Forward implements Layer.
//
//fallvet:hotpath
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.Reuse(s.y, x.Shape()...)
	s.y = y
	yd := y.Data()
	for i, v := range x.Data() {
		yd[i] = 1 / (1 + math.Exp(-v))
	}
	return y
}

// Backward implements Layer.
//
//fallvet:hotpath
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.Reuse(s.dx, grad.Shape()...)
	s.dx = dx
	copy(dx.Data(), grad.Data())
	d, yd := dx.Data(), s.y.Data()
	for i := range d {
		d[i] *= yd[i] * (1 - yd[i])
	}
	return dx
}

// Tanh is the hyperbolic-tangent activation, element-wise.
type Tanh struct {
	y  *tensor.Tensor // scratch; doubles as the train-time cache
	dx *tensor.Tensor // backward scratch
}

// NewTanh returns a tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Name implements Layer.
func (t *Tanh) Name() string { return "tanh" }

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// OutShape implements Layer.
func (t *Tanh) OutShape(in []int) ([]int, error) { return in, nil }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.Reuse(t.y, x.Shape()...)
	t.y = y
	yd := y.Data()
	for i, v := range x.Data() {
		yd[i] = math.Tanh(v)
	}
	return y
}

// Backward implements Layer.
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.Reuse(t.dx, grad.Shape()...)
	t.dx = dx
	copy(dx.Data(), grad.Data())
	d, yd := dx.Data(), t.y.Data()
	for i := range d {
		d[i] *= 1 - yd[i]*yd[i]
	}
	return dx
}

// Flatten reshapes any input to 1-D.
type Flatten struct {
	inShape []int
	view    *tensor.Tensor // cached 1-D view of the last input buffer
	back    *tensor.Tensor // cached reshaped view of the last gradient
}

// NewFlatten returns a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) ([]int, error) {
	n := 1
	for _, d := range in {
		n *= d
	}
	return []int{n}, nil
}

// Forward implements Layer.
//
//fallvet:hotpath
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		//fallvet:ignore hotpath shape cache reuses its backing array after the first call
		f.inShape = append(f.inShape[:0], x.Shape()...)
	}
	if x.Dims() == 1 {
		return x
	}
	return tensor.ViewInto(&f.view, x, x.Len())
}

// Backward implements Layer.
//
//fallvet:hotpath
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if len(f.inShape) == 1 && grad.Dims() == 1 {
		return grad
	}
	return tensor.ViewInto(&f.back, grad, f.inShape...)
}

// Dropout randomly zeroes activations during training with probability
// Rate, scaling survivors by 1/(1−Rate) (inverted dropout); it is the
// identity at inference.
type Dropout struct {
	Rate float64
	rng  *rand.Rand
	keep []bool
}

// NewDropout returns a dropout layer driven by rng.
func NewDropout(rate float64, rng *rand.Rand) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %g outside [0,1)", rate))
	}
	return &Dropout{Rate: rate, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("dropout(%.2f)", d.Rate) }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// OutShape implements Layer.
func (d *Dropout) OutShape(in []int) ([]int, error) { return in, nil }

// Forward implements Layer.
//
//fallvet:cold training-only regularisation layer: allocates its mask by design and is identity at inference
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.Rate == 0 {
		return x
	}
	y := x.Clone()
	data := y.Data()
	d.keep = make([]bool, len(data))
	scale := 1 / (1 - d.Rate)
	for i := range data {
		if d.rng.Float64() >= d.Rate {
			d.keep[i] = true
			data[i] *= scale
		} else {
			data[i] = 0
		}
	}
	return y
}

// Backward implements Layer.
//
//fallvet:cold training-only regularisation layer: clones the gradient by design
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.keep == nil {
		return grad
	}
	dx := grad.Clone()
	data := dx.Data()
	scale := 1 / (1 - d.Rate)
	for i := range data {
		if d.keep[i] {
			data[i] *= scale
		} else {
			data[i] = 0
		}
	}
	return dx
}
