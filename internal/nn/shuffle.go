package nn

// shuffleRNG is the trainer's epoch-shuffle generator. math/rand's
// default source cannot expose or restore its internal state, which
// makes a mid-training checkpoint impossible to resume bit-identically
// — so the trainer draws one 64-bit seed from the caller's *rand.Rand
// and from then on shuffles with this SplitMix64 generator, whose
// entire state is a single uint64 that a checkpoint can carry.
//
// SplitMix64 (Steele, Lea & Flood 2014) passes BigCrush and is the
// reference seeder for the xoshiro family; a full-period 64-bit
// generator is far more state than a mini-batch shuffle needs.
type shuffleRNG struct {
	state uint64
}

func newShuffleRNG(seed uint64) *shuffleRNG { return &shuffleRNG{state: seed} }

// next advances the state and returns the next 64-bit output.
func (r *shuffleRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n); n must be positive. The
// modulo bias is ~n/2⁶⁴ — irrelevant for shuffling, and kept simple so
// the sequence is trivially reproducible from the saved state.
func (r *shuffleRNG) intn(n int) int {
	return int(r.next() % uint64(n))
}

// shuffle runs a Fisher–Yates pass, mirroring rand.Shuffle's contract.
func (r *shuffleRNG) shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		swap(i, j)
	}
}
