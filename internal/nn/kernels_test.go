package nn

import (
	"math"
	"math/rand"
	"testing"
)

// naiveMatVecBias is the unblocked reference loop: one running
// accumulator per output, inputs in ascending order. The blocked
// kernel groups products pairwise, so it matches this only within
// rounding — the bit-level contract it must honour is lane uniformity
// (TestMatVecBiasLaneUniform), not agreement with any one serial order.
func naiveMatVecBias(dst, x, w, b []float64, rows, cols int) {
	for o := 0; o < rows; o++ {
		row := w[o*cols : (o+1)*cols]
		s := b[o]
		for i, v := range x[:cols] {
			s += row[i] * v
		}
		dst[o] = s
	}
}

func randKernelCase(rng *rand.Rand, rows, cols int) (w, x, b []float64) {
	w = make([]float64, rows*cols)
	x = make([]float64, cols)
	b = make([]float64, rows)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	for i := range x {
		x[i] = rng.NormFloat64() * 100
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return w, x, b
}

// TestMatVecBiasLaneUniform asserts the property the incremental
// streaming path depends on: every output is a fixed function of its
// own weight row, the input and its bias — bit-for-bit independent of
// rows, of which lane of the 4-wide block computed it, and of whether
// it fell in the remainder loop. Each output of a full rows×cols call
// must equal the single-row (rows=1) call on the same data exactly;
// a batch conv pass and a lone streamed conv row then agree by
// construction.
func TestMatVecBiasLaneUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, rows := range []int{1, 2, 3, 4, 5, 7, 8, 16, 31, 64} {
		for _, cols := range []int{1, 2, 5, 15, 31, 32, 45, 360, 864} {
			w, x, b := randKernelCase(rng, rows, cols)
			got := make([]float64, rows)
			matVecBias(got, x, w, b, rows, cols)
			single := make([]float64, 1)
			for o := 0; o < rows; o++ {
				matVecBias(single, x, w[o*cols:(o+1)*cols], b[o:o+1], 1, cols)
				if math.Float64bits(got[o]) != math.Float64bits(single[0]) {
					t.Fatalf("rows=%d cols=%d out %d: blocked %x, single-row %x",
						rows, cols, o, math.Float64bits(got[o]), math.Float64bits(single[0]))
				}
			}
		}
	}
}

// TestMatVecBiasMatchesNaive bounds the blocked kernel against the
// serial reference within floating-point reassociation error, catching
// indexing or accumulation bugs that lane uniformity alone would not
// (a kernel that mixed up weight rows consistently could still be
// lane-uniform).
func TestMatVecBiasMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, rows := range []int{1, 3, 4, 7, 16, 64} {
		for _, cols := range []int{1, 5, 15, 32, 45, 360, 864} {
			w, x, b := randKernelCase(rng, rows, cols)
			got := make([]float64, rows)
			want := make([]float64, rows)
			matVecBias(got, x, w, b, rows, cols)
			naiveMatVecBias(want, x, w, b, rows, cols)
			for o := range got {
				diff := math.Abs(got[o] - want[o])
				scale := math.Abs(want[o]) + 1
				if diff/scale > 1e-12*float64(cols+1) {
					t.Fatalf("rows=%d cols=%d out %d: blocked %g, scalar %g (diff %g)",
						rows, cols, o, got[o], want[o], diff)
				}
			}
		}
	}
}

// TestMatVecBias2MatchesSingle: the paired two-window kernel must
// reproduce two separate matVecBias calls bit-for-bit — the streaming
// path pairs conv rows opportunistically (a Score can split a pair),
// so grouping must never affect values.
func TestMatVecBias2MatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, rows := range []int{1, 3, 4, 7, 8, 16} {
		for _, cols := range []int{1, 2, 5, 15, 21, 31} {
			w, xa, b := randKernelCase(rng, rows, cols)
			xb := make([]float64, cols)
			for i := range xb {
				xb[i] = rng.NormFloat64() * 100
			}
			da := make([]float64, rows)
			db := make([]float64, rows)
			matVecBias2(da, db, xa, xb, w, b, rows, cols)
			wa := make([]float64, rows)
			wb := make([]float64, rows)
			matVecBias(wa, xa, w, b, rows, cols)
			matVecBias(wb, xb, w, b, rows, cols)
			for o := range da {
				if math.Float64bits(da[o]) != math.Float64bits(wa[o]) ||
					math.Float64bits(db[o]) != math.Float64bits(wb[o]) {
					t.Fatalf("rows=%d cols=%d out %d: paired (%x,%x), single (%x,%x)",
						rows, cols, o,
						math.Float64bits(da[o]), math.Float64bits(db[o]),
						math.Float64bits(wa[o]), math.Float64bits(wb[o]))
				}
			}
		}
	}
}

// sparsify zeroes out roughly the given fraction of x, mimicking a
// ReLU-fed activation vector — the input shape that routes wide calls
// onto the sparse accumulation path.
func sparsify(rng *rand.Rand, x []float64, frac float64) {
	for i := range x {
		if rng.Float64() < frac {
			x[i] = 0
		}
	}
}

// TestMatVecBiasSparseLaneUniform repeats the lane-uniformity check on
// zero-heavy inputs: the sparse path must also make every output a
// fixed function of its own row, input and bias, bit-for-bit equal to
// the rows=1 call (which takes the same path — selection is a pure
// function of x, not of rows).
func TestMatVecBiasSparseLaneUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for _, frac := range []float64{0.2, 0.5, 0.9, 1.0} {
		for _, rows := range []int{1, 3, 7, 8, 9, 16, 64} {
			for _, cols := range []int{32, 45, 64, 360, 864} {
				w, x, b := randKernelCase(rng, rows, cols)
				sparsify(rng, x, frac)
				got := make([]float64, rows)
				matVecBias(got, x, w, b, rows, cols)
				single := make([]float64, 1)
				for o := 0; o < rows; o++ {
					matVecBias(single, x, w[o*cols:(o+1)*cols], b[o:o+1], 1, cols)
					if math.Float64bits(got[o]) != math.Float64bits(single[0]) {
						t.Fatalf("frac=%g rows=%d cols=%d out %d: blocked %x, single-row %x",
							frac, rows, cols, o, math.Float64bits(got[o]), math.Float64bits(single[0]))
					}
				}
			}
		}
	}
}

// TestMatVecBiasSparseMatchesNaive bounds the sparse path against the
// serial reference: skipping exact zeros must change nothing beyond
// reassociation rounding.
func TestMatVecBiasSparseMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, frac := range []float64{0.3, 0.8} {
		for _, rows := range []int{1, 8, 64} {
			for _, cols := range []int{32, 360, 864} {
				w, x, b := randKernelCase(rng, rows, cols)
				sparsify(rng, x, frac)
				got := make([]float64, rows)
				want := make([]float64, rows)
				matVecBias(got, x, w, b, rows, cols)
				naiveMatVecBias(want, x, w, b, rows, cols)
				for o := range got {
					diff := math.Abs(got[o] - want[o])
					scale := math.Abs(want[o]) + 1
					if diff/scale > 1e-12*float64(cols+1) {
						t.Fatalf("frac=%g rows=%d cols=%d out %d: sparse %g, scalar %g",
							frac, rows, cols, o, got[o], want[o])
					}
				}
			}
		}
	}
}

// TestMatVecBiasDeterministic: repeated calls on identical inputs give
// identical bits (no state, no data-dependent path selection).
func TestMatVecBiasDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	w, x, b := randKernelCase(rng, 16, 45)
	a1 := make([]float64, 16)
	a2 := make([]float64, 16)
	matVecBias(a1, x, w, b, 16, 45)
	matVecBias(a2, x, w, b, 16, 45)
	for o := range a1 {
		if math.Float64bits(a1[o]) != math.Float64bits(a2[o]) {
			t.Fatalf("out %d: %x then %x", o, math.Float64bits(a1[o]), math.Float64bits(a2[o]))
		}
	}
}
