package simd

// SSE/AVX implementations (kernels_amd64.s). Both follow the
// summation order defined by the Ref functions exactly, so asm and
// reference are bit-identical. SSE2 is part of the amd64 baseline, so
// no feature detection is needed for the base path. Both are NOSPLIT
// leaves that allocate nothing.

// MatVecBiasF32 computes dst[o] = b[o] + Σ_i w[o·cols+i]·x[i] in the
// package-documented f32 order.
//
//go:noescape
func MatVecBiasF32(dst, x, w, b []float32, rows, cols int)

// MatVecBias2F32 runs two input windows against a shared weight
// matrix, each in the narrow single order. cols must be < 32.
//
//go:noescape
func MatVecBias2F32(da, db, xa, xb, w, b []float32, rows, cols int)

func cpuHasAVX() bool

// useAVX selects the 8-wide variant of the wide loop inside
// MatVecBiasF32. The results are bit-identical either way (and to the
// reference), so the CPU gate selects speed, never values.
// VMULPS/VADDPS only: FMA would skip the product rounding the
// reference pins.
var useAVX = cpuHasAVX()
