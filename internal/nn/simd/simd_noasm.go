//go:build !amd64

package simd

// Portable fallback: the reference implementations are the
// implementation, so f32 results are identical across platforms.

// MatVecBiasF32 computes dst[o] = b[o] + Σ_i w[o·cols+i]·x[i] in the
// package-documented f32 order.
func MatVecBiasF32(dst, x, w, b []float32, rows, cols int) {
	MatVecBiasF32Ref(dst, x, w, b, rows, cols)
}

// MatVecBias2F32 runs two input windows against a shared weight
// matrix, each in the narrow single order. cols must be < 32.
func MatVecBias2F32(da, db, xa, xb, w, b []float32, rows, cols int) {
	MatVecBias2F32Ref(da, db, xa, xb, w, b, rows, cols)
}
