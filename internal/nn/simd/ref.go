// Package simd holds the float32 matrix-vector kernels behind the nn
// package's f32 dispatch: a portable reference that defines the exact
// summation order, and amd64 SSE/AVX assembly that must match it
// bit-for-bit (TestMatVecBiasF32AsmMatchesRef). On !amd64 the
// reference is the implementation, so f32 results are identical
// across architectures by construction.
//
// The kernels live in their own package deliberately. An assembly
// file inside package nn itself measurably perturbed the code layout
// of unrelated hot loops (the recurrent baseline layers lost ~20% on
// Benchmark_Table3_Inference_CNNBiGRU_400ms with the .s file present
// and untouched); fencing the assembly behind a package boundary
// restored them. The extra call is noise against a kernel invocation.
//
// The float64 summation order is frozen by the bit-identity contract
// (nn/kernels.go) and by every committed artifact and test fixture,
// so it cannot change. The float32 order is this repo's own to define
// — no prior artifact pins it — and it is defined here as the order a
// 4-lane SSE implementation produces.
//
// f32 summation order, per output row, fixed by cols alone:
//
//	narrow (cols < 32): four lane accumulators q0..q3; each full
//	4-column block i adds q_l += w[i+l]·x[i+l]. Lanes combine as
//	(q0+q2)+(q1+q3), then + bias, then the <4 remainder columns are
//	added singly in ascending order.
//
//	wide (cols ≥ 32): four quad accumulators V0..V3 round-robin over
//	16-column superblocks (V_j takes columns [16t+4j, 16t+4j+4)).
//	They combine elementwise as (V0+V2)+(V1+V3) into one quad, the
//	leftover full 4-column blocks accumulate into that quad, and the
//	lane combine / bias / remainder proceed as in the narrow case.
//
// The 16-column round-robin was chosen so two 8-wide AVX accumulators
// ([V0|V1] and [V2|V3]) perform the exact per-lane multiply/add
// sequence of the four SSE quads: the AVX and SSE loops are
// bit-identical, so the CPU gate selects speed, never values.
//
// The pair kernel runs each window through exactly the narrow order,
// so lane uniformity and pair-matches-single hold at float32 just as
// they do at float64. The f32 wide path never routes to a sparse
// kernel: a dense 4-lane pass beats the scalar gather on every layer
// shape in this topology, and one fewer x-dependent branch keeps the
// order a function of cols alone.
//
// Every multiply in the reference is pinned with an explicit
// float32(·) conversion. The Go spec lets implementations fuse a
// multiply-add unless the product is explicitly rounded; the
// MULPS/ADDPS kernels never fuse, so the reference must not either.
package simd

// MatVecBiasF32Ref is the portable definition of the f32 single
// kernel's arithmetic: dst[o] = b[o] + Σ_i w[o·cols+i]·x[i], in the
// package-documented order. The amd64 assembly must match it
// bit-for-bit.
func MatVecBiasF32Ref(dst, x, w, b []float32, rows, cols int) {
	for o := 0; o < rows; o++ {
		row := w[o*cols : (o+1)*cols]
		var q [4]float32
		i := 0
		if cols >= 32 {
			var v [4][4]float32
			for ; i+16 <= cols; i += 16 {
				for j := 0; j < 4; j++ {
					for l := 0; l < 4; l++ {
						v[j][l] += float32(row[i+4*j+l] * x[i+4*j+l])
					}
				}
			}
			for l := 0; l < 4; l++ {
				q[l] = (v[0][l] + v[2][l]) + (v[1][l] + v[3][l])
			}
		}
		for ; i+4 <= cols; i += 4 {
			q[0] += float32(row[i] * x[i])
			q[1] += float32(row[i+1] * x[i+1])
			q[2] += float32(row[i+2] * x[i+2])
			q[3] += float32(row[i+3] * x[i+3])
		}
		s := (q[0] + q[2]) + (q[1] + q[3])
		s += b[o]
		for ; i < cols; i++ {
			s += float32(row[i] * x[i])
		}
		dst[o] = s
	}
}

// MatVecBias2F32Ref is the portable f32 pair kernel: both windows run
// through exactly the narrow single order, sharing one read of each
// weight. Like nn's matVecBias2 it is only valid for cols < 32.
func MatVecBias2F32Ref(da, db, xa, xb, w, b []float32, rows, cols int) {
	for o := 0; o < rows; o++ {
		row := w[o*cols : (o+1)*cols]
		var qa, qb [4]float32
		i := 0
		for ; i+4 <= cols; i += 4 {
			for l := 0; l < 4; l++ {
				wl := row[i+l]
				qa[l] += float32(wl * xa[i+l])
				qb[l] += float32(wl * xb[i+l])
			}
		}
		s := (qa[0] + qa[2]) + (qa[1] + qa[3])
		t := (qb[0] + qb[2]) + (qb[1] + qb[3])
		s += b[o]
		t += b[o]
		for ; i < cols; i++ {
			wl := row[i]
			s += float32(wl * xa[i])
			t += float32(wl * xb[i])
		}
		da[o] = s
		db[o] = t
	}
}
