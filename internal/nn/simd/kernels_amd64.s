// SSE f32 kernels. The summation order is specified by the Ref
// functions in ref.go; every instruction sequence here is the
// literal SIMD transcription of that order, so asm and reference are
// bit-identical. MULPS/ADDPS only — no FMA (the reference cannot fuse
// either), no MAXPS for ReLU (the clamp stays in Go to keep the NaN
// rule). Leaf functions, no stack frame, nothing escapes.

#include "textflag.h"

// func MatVecBiasF32(dst, x, w, b []float32, rows, cols int)
//
// Per row: wide inputs first drain 16-column superblocks into four
// round-robin quad accumulators X0..X3, combined as (X0+X2)+(X1+X3);
// the leftover full 4-column blocks accumulate into the combined quad
// (narrow rows start there with a zero quad); lanes fold as
// (l0+l2)+(l1+l3); add bias; scalar remainder ascending.
TEXT ·MatVecBiasF32(SB), NOSPLIT, $0-112
	MOVQ dst_base+0(FP), DI
	MOVQ x_base+24(FP), SI
	MOVQ w_base+48(FP), DX
	MOVQ b_base+72(FP), BX
	MOVQ rows+96(FP), R8
	MOVQ cols+104(FP), R9

	MOVQ R9, R12
	ANDQ $-16, R12 // R12 = cols &^ 15: superblock limit
	MOVQ R9, R13
	ANDQ $-4, R13  // R13 = cols &^ 3: quad limit

	TESTQ R8, R8
	JLE  mvb_done

mvb_row:
	XORPS X0, X0
	XORQ  R11, R11 // i = 0
	CMPQ  R9, $32
	JLT  mvb_quad  // narrow: single quad accumulator only

	CMPB ·useAVX(SB), $0
	JNE  mvb_wide_avx

	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
mvb_wide16:
	CMPQ   R11, R12
	JGE    mvb_combine
	MOVUPS (DX)(R11*4), X4
	MOVUPS (SI)(R11*4), X5
	MULPS  X5, X4
	ADDPS  X4, X0
	MOVUPS 16(DX)(R11*4), X5
	MOVUPS 16(SI)(R11*4), X6
	MULPS  X6, X5
	ADDPS  X5, X1
	MOVUPS 32(DX)(R11*4), X6
	MOVUPS 32(SI)(R11*4), X7
	MULPS  X7, X6
	ADDPS  X6, X2
	MOVUPS 48(DX)(R11*4), X7
	MOVUPS 48(SI)(R11*4), X8
	MULPS  X8, X7
	ADDPS  X7, X3
	ADDQ   $16, R11
	JMP    mvb_wide16

mvb_combine:
	ADDPS X2, X0 // V0+V2
	ADDPS X3, X1 // V1+V3
	ADDPS X1, X0 // (V0+V2)+(V1+V3)
	JMP   mvb_quad

	// 8-wide superblock drain: Y0 = [V0|V1], Y1 = [V2|V3]. Each lane
	// sees one VMULPS rounding and one VADDPS rounding per superblock —
	// the same scalar operation sequence as the SSE quads above.
mvb_wide_avx:
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
mvb_wide32:
	CMPQ    R11, R12
	JGE     mvb_combine_avx
	VMOVUPS (DX)(R11*4), Y4
	VMULPS  (SI)(R11*4), Y4, Y4
	VADDPS  Y4, Y0, Y0
	VMOVUPS 32(DX)(R11*4), Y5
	VMULPS  32(SI)(R11*4), Y5, Y5
	VADDPS  Y5, Y1, Y1
	ADDQ    $16, R11
	JMP     mvb_wide32

mvb_combine_avx:
	VADDPS       Y1, Y0, Y0   // [V0+V2 | V1+V3]
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0   // (V0+V2)+(V1+V3)
	VZEROUPPER

mvb_quad:
	CMPQ   R11, R13
	JGE    mvb_fold
	MOVUPS (DX)(R11*4), X4
	MOVUPS (SI)(R11*4), X5
	MULPS  X5, X4
	ADDPS  X4, X0
	ADDQ   $4, R11
	JMP    mvb_quad

mvb_fold:
	MOVAPS  X0, X1
	MOVHLPS X0, X1       // X1 low = [l2, l3]
	ADDPS   X0, X1       // X1 = [l0+l2, l1+l3, ...]
	MOVAPS  X1, X2
	SHUFPS  $0x01, X1, X2 // X2 lane0 = l1+l3
	ADDSS   X2, X1       // (l0+l2)+(l1+l3)
	ADDSS   (BX), X1     // + b[o]

mvb_rem:
	CMPQ  R11, R9
	JGE   mvb_store
	MOVSS (DX)(R11*4), X4
	MULSS (SI)(R11*4), X4
	ADDSS X4, X1
	INCQ  R11
	JMP   mvb_rem

mvb_store:
	MOVSS X1, (DI)
	ADDQ  $4, DI
	ADDQ  $4, BX
	LEAQ  (DX)(R9*4), DX // next weight row
	DECQ  R8
	JNZ   mvb_row

mvb_done:
	RET

// func MatVecBias2F32(da, db, xa, xb, w, b []float32, rows, cols int)
//
// Pair kernel, cols < 32 only (matVecBias2's contract): each window
// runs the narrow single order exactly — one quad accumulator per
// window, each weight block loaded once and applied to both.
TEXT ·MatVecBias2F32(SB), NOSPLIT, $0-160
	MOVQ da_base+0(FP), DI
	MOVQ db_base+24(FP), R10
	MOVQ xa_base+48(FP), SI
	MOVQ xb_base+72(FP), R12
	MOVQ w_base+96(FP), DX
	MOVQ b_base+120(FP), BX
	MOVQ rows+144(FP), R8
	MOVQ cols+152(FP), R9

	MOVQ R9, R13
	ANDQ $-4, R13 // quad limit

	TESTQ R8, R8
	JLE  mvb2_done

mvb2_row:
	XORPS X0, X0 // window a quad
	XORPS X1, X1 // window b quad
	XORQ  R11, R11

mvb2_quad:
	CMPQ   R11, R13
	JGE    mvb2_fold
	MOVUPS (DX)(R11*4), X4  // weight block, loaded once
	MOVUPS (SI)(R11*4), X5
	MULPS  X4, X5
	ADDPS  X5, X0
	MOVUPS (R12)(R11*4), X6
	MULPS  X4, X6
	ADDPS  X6, X1
	ADDQ   $4, R11
	JMP    mvb2_quad

mvb2_fold:
	MOVAPS  X0, X2
	MOVHLPS X0, X2
	ADDPS   X0, X2
	MOVAPS  X2, X4
	SHUFPS  $0x01, X2, X4
	ADDSS   X4, X2       // sa = (l0+l2)+(l1+l3)
	MOVAPS  X1, X3
	MOVHLPS X1, X3
	ADDPS   X1, X3
	MOVAPS  X3, X5
	SHUFPS  $0x01, X3, X5
	ADDSS   X5, X3       // sb = (l0+l2)+(l1+l3)
	MOVSS   (BX), X6
	ADDSS   X6, X2       // + b[o]
	ADDSS   X6, X3

mvb2_rem:
	CMPQ   R11, R9
	JGE    mvb2_store
	MOVSS  (DX)(R11*4), X4
	MOVAPS X4, X5
	MULSS  (SI)(R11*4), X4
	ADDSS  X4, X2
	MULSS  (R12)(R11*4), X5
	ADDSS  X5, X3
	INCQ   R11
	JMP    mvb2_rem

mvb2_store:
	MOVSS X2, (DI)
	MOVSS X3, (R10)
	ADDQ  $4, DI
	ADDQ  $4, R10
	ADDQ  $4, BX
	LEAQ  (DX)(R9*4), DX
	DECQ  R8
	JNZ   mvb2_row

mvb2_done:
	RET

// func cpuHasAVX() bool
//
// CPUID leaf 1: ECX bit 28 = AVX, bit 27 = OSXSAVE; then XGETBV must
// show the OS preserving XMM+YMM state (XCR0 bits 1 and 2).
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL  $1, AX
	XORL  CX, CX
	CPUID
	ANDL  $0x18000000, CX
	CMPL  CX, $0x18000000
	JNE   avx_no
	XORL  CX, CX
	XGETBV
	ANDL  $6, AX
	CMPL  AX, $6
	JNE   avx_no
	MOVB  $1, ret+0(FP)
	RET

avx_no:
	MOVB  $0, ret+0(FP)
	RET
