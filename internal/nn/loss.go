package nn

import (
	"math"

	"repro/internal/tensor"
)

// WeightedBCE is binary cross-entropy with per-class weights, the
// paper's countermeasure for the ~2–4 % positive rate: the falling
// class receives weight W1 and the activity class W0.
type WeightedBCE struct {
	W0, W1 float64
}

// NewWeightedBCE returns the loss with the given class weights.
func NewWeightedBCE(w0, w1 float64) *WeightedBCE { return &WeightedBCE{W0: w0, W1: w1} }

// BalancedWeights derives class weights from the training-set class
// counts such that each class contributes equally to the expected
// loss: w_c = total / (2 · count_c). This is Keras's "balanced" rule
// used with compute_class_weight.
func BalancedWeights(neg, pos int) (w0, w1 float64) {
	total := float64(neg + pos)
	if neg == 0 || pos == 0 {
		return 1, 1
	}
	return total / (2 * float64(neg)), total / (2 * float64(pos))
}

const eps = 1e-12

// Loss returns the weighted BCE for prediction p∈(0,1) and label y∈{0,1}.
//
//fallvet:hotpath
func (l *WeightedBCE) Loss(p float64, y int) float64 {
	p = math.Min(1-eps, math.Max(eps, p))
	if y == 1 {
		return -l.W1 * math.Log(p)
	}
	return -l.W0 * math.Log(1-p)
}

// Grad returns ∂loss/∂p as a 1-element tensor suitable for
// Network.Backward (the sigmoid layer converts it to ∂loss/∂logit).
func (l *WeightedBCE) Grad(p float64, y int) *tensor.Tensor {
	return tensor.FromSlice([]float64{l.GradValue(p, y)}, 1)
}

// GradValue returns ∂loss/∂p as a bare scalar — the allocation-free
// variant of Grad for hot training loops that own a reusable 1-element
// gradient tensor.
//
//fallvet:hotpath
func (l *WeightedBCE) GradValue(p float64, y int) float64 {
	p = math.Min(1-eps, math.Max(eps, p))
	if y == 1 {
		return -l.W1 / p
	}
	return l.W0 / (1 - p)
}

// InitialBias returns the paper's output-layer bias initialisation for
// class prevalence p₁ (equations 1–2): b = log(p₁ / (1 − p₁)), so the
// untrained network already predicts the prior.
func InitialBias(pos, total int) float64 {
	if pos <= 0 || pos >= total {
		return 0
	}
	p := float64(pos) / float64(total)
	return math.Log(p / (1 - p))
}
