package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// ConvLSTM is a convolutional LSTM over a [T × C] window: at each
// timestep the C sensor channels form a 1-D spatial grid and all four
// gates are computed by same-padded 1-D convolutions over that grid —
// on both the input (1 feature) and the hidden state (F features).
// The output is the flattened final hidden state [C·F].
//
// The paper's baseline is Keras's ConvLSTM2D; with a 9-channel IMU
// row the spatial extent is one-dimensional, so this layer is the
// exact counterpart for this data layout (a 2-D kernel over a 9×1
// grid degenerates to a 1-D kernel).
type ConvLSTM struct {
	Ch, Filters, Kernel int
	Wx                  *Param // [4F × K]       (input has 1 feature)
	Wh                  *Param // [4F × K × F]
	Bias                *Param // [4F]

	xs             *tensor.Tensor
	hPrev, cPrev   [][]float64 // per t: [C*F]
	gi, gf, gg, gO [][]float64 // per t: [C*F]
	tanhC          [][]float64
}

// NewConvLSTM returns a Glorot-initialised convolutional LSTM. kernel
// must be odd (same padding).
func NewConvLSTM(ch, filters, kernel int, rng *rand.Rand) *ConvLSTM {
	if kernel%2 == 0 {
		panic("nn: ConvLSTM kernel must be odd")
	}
	l := &ConvLSTM{
		Ch:      ch,
		Filters: filters,
		Kernel:  kernel,
		Wx:      newParam("convlstm.wx", 4*filters, kernel),
		Wh:      newParam("convlstm.wh", 4*filters, kernel, filters),
		Bias:    newParam("convlstm.b", 4*filters),
	}
	glorotInit(l.Wx.W, kernel, filters, rng)
	glorotInit(l.Wh.W, kernel*filters, filters, rng)
	bd := l.Bias.W.Data()
	for i := filters; i < 2*filters; i++ {
		bd[i] = 1 // forget-gate bias
	}
	return l
}

// Name implements Layer.
func (l *ConvLSTM) Name() string {
	return fmt.Sprintf("convlstm(%dch,%df,k%d)", l.Ch, l.Filters, l.Kernel)
}

// Params implements Layer.
func (l *ConvLSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.Bias} }

// OutShape implements Layer.
func (l *ConvLSTM) OutShape(in []int) ([]int, error) {
	if len(in) != 2 || in[1] != l.Ch {
		return nil, fmt.Errorf("nn: %s cannot take input %v", l.Name(), in)
	}
	return []int{l.Ch * l.Filters}, nil
}

// gates computes the pre-activation gate map z[p][r] (r over 4F) for
// one timestep.
func (l *ConvLSTM) gates(xt []float64, h []float64, z []float64) {
	P, F, K := l.Ch, l.Filters, l.Kernel
	r := K / 2
	wx, wh, b := l.Wx.W.Data(), l.Wh.W.Data(), l.Bias.W.Data()
	for p := 0; p < P; p++ {
		for g := 0; g < 4*F; g++ {
			s := b[g]
			for d := 0; d < K; d++ {
				q := p + d - r
				if q < 0 || q >= P {
					continue
				}
				s += wx[g*K+d] * xt[q]
				base := (g*K + d) * F
				hq := h[q*F : (q+1)*F]
				for f2, hv := range hq {
					s += wh[base+f2] * hv
				}
			}
			z[p*4*F+g] = s
		}
	}
}

// Forward implements Layer.
//
//fallvet:cold recurrent baseline layer (paper comparison): allocates per step by design, never part of the zero-alloc CNN deployment
func (l *ConvLSTM) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 2 || x.Dim(1) != l.Ch {
		panic(fmt.Sprintf("nn: %s got shape %v", l.Name(), x.Shape()))
	}
	T := x.Dim(0)
	P, F := l.Ch, l.Filters
	h := make([]float64, P*F)
	c := make([]float64, P*F)
	if train {
		l.xs = x
		l.hPrev = make([][]float64, T)
		l.cPrev = make([][]float64, T)
		l.gi = make([][]float64, T)
		l.gf = make([][]float64, T)
		l.gg = make([][]float64, T)
		l.gO = make([][]float64, T)
		l.tanhC = make([][]float64, T)
	}
	xd := x.Data()
	z := make([]float64, P*4*F)
	for t := 0; t < T; t++ {
		xt := xd[t*P : (t+1)*P]
		l.gates(xt, h, z)
		if train {
			l.hPrev[t] = append([]float64(nil), h...)
			l.cPrev[t] = append([]float64(nil), c...)
			l.gi[t] = make([]float64, P*F)
			l.gf[t] = make([]float64, P*F)
			l.gg[t] = make([]float64, P*F)
			l.gO[t] = make([]float64, P*F)
			l.tanhC[t] = make([]float64, P*F)
		}
		for p := 0; p < P; p++ {
			for f := 0; f < F; f++ {
				zi := z[p*4*F+f]
				zf := z[p*4*F+F+f]
				zg := z[p*4*F+2*F+f]
				zo := z[p*4*F+3*F+f]
				gi, gf := sigmoid(zi), sigmoid(zf)
				gg, gO := math.Tanh(zg), sigmoid(zo)
				ix := p*F + f
				c[ix] = gf*c[ix] + gi*gg
				tc := math.Tanh(c[ix])
				h[ix] = gO * tc
				if train {
					l.gi[t][ix], l.gf[t][ix], l.gg[t][ix], l.gO[t][ix] = gi, gf, gg, gO
					l.tanhC[t][ix] = tc
				}
			}
		}
	}
	return tensor.FromSlice(append([]float64(nil), h...), P*F)
}

// Backward implements Layer.
//
//fallvet:cold recurrent baseline layer (paper comparison): allocates per step by design, never part of the zero-alloc CNN deployment
func (l *ConvLSTM) Backward(grad *tensor.Tensor) *tensor.Tensor {
	P, F, K := l.Ch, l.Filters, l.Kernel
	checkShape(l.Name()+" grad", grad.Shape(), []int{P * F})
	T := l.xs.Dim(0)
	xd := l.xs.Data()
	wx, wh := l.Wx.W.Data(), l.Wh.W.Data()
	dwx, dwh, db := l.Wx.G.Data(), l.Wh.G.Data(), l.Bias.G.Data()
	r := K / 2

	dh := append([]float64(nil), grad.Data()...)
	dc := make([]float64, P*F)
	dz := make([]float64, P*4*F)
	dx := tensor.New(T, P)
	dxd := dx.Data()

	for t := T - 1; t >= 0; t-- {
		xt := xd[t*P : (t+1)*P]
		for p := 0; p < P; p++ {
			for f := 0; f < F; f++ {
				ix := p*F + f
				gi, gf, gg, gO := l.gi[t][ix], l.gf[t][ix], l.gg[t][ix], l.gO[t][ix]
				tc := l.tanhC[t][ix]
				do := dh[ix] * tc
				dct := dc[ix] + dh[ix]*gO*(1-tc*tc)
				di := dct * gg
				dg := dct * gi
				df := dct * l.cPrev[t][ix]
				dc[ix] = dct * gf
				dz[p*4*F+f] = di * gi * (1 - gi)
				dz[p*4*F+F+f] = df * gf * (1 - gf)
				dz[p*4*F+2*F+f] = dg * (1 - gg*gg)
				dz[p*4*F+3*F+f] = do * gO * (1 - gO)
			}
		}
		for j := range dh {
			dh[j] = 0
		}
		for p := 0; p < P; p++ {
			for g := 0; g < 4*F; g++ {
				gz := dz[p*4*F+g]
				if gz == 0 {
					continue
				}
				db[g] += gz
				for d := 0; d < K; d++ {
					q := p + d - r
					if q < 0 || q >= P {
						continue
					}
					dwx[g*K+d] += gz * xt[q]
					dxd[t*P+q] += gz * wx[g*K+d]
					base := (g*K + d) * F
					hq := l.hPrev[t][q*F : (q+1)*F]
					for f2, hv := range hq {
						dwh[base+f2] += gz * hv
						dh[q*F+f2] += gz * wh[base+f2]
					}
				}
			}
		}
	}
	return dx
}
