// Package nn is a small from-scratch neural-network framework built
// for the paper's models: 1-D convolutions, max pooling, dense layers,
// branch/concat composition (the paper's three-branch CNN), LSTM and
// ConvLSTM recurrences, weighted binary cross-entropy with
// class-imbalance bias initialisation, SGD and Adam optimizers, and a
// trainer with validation-based early stopping. There is no autograd:
// every layer implements its own exact backward pass, each verified
// against numerical differentiation in the test suite.
//
// The framework processes one sample per Forward/Backward call and
// accumulates parameter gradients across a mini-batch; the trainer
// averages and steps. This keeps layer code simple and auditable —
// fitting for models whose entire parameter count must fit in a
// microcontroller's flash.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Param is one learnable tensor with its accumulated gradient.
type Param struct {
	//fallvet:derived immutable identifier assigned by newParam; snapshot geometry is positional
	Name string
	W    *tensor.Tensor
	//fallvet:derived training-only gradient accumulator, zeroed by ZeroGrad rather than restored
	G *tensor.Tensor
}

// newParam allocates a parameter and matching zero gradient.
func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, W: tensor.New(shape...), G: tensor.New(shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.G.Zero() }

// Layer is one differentiable stage. Forward consumes the previous
// activation; Backward consumes ∂L/∂output and returns ∂L/∂input,
// accumulating parameter gradients internally. A layer may cache
// forward state; calls are strictly Forward-then-Backward per sample.
type Layer interface {
	Name() string
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*Param
	// OutShape reports the output shape for a given input shape,
	// without running data through the layer.
	OutShape(in []int) ([]int, error)
}

// glorotInit fills w with Glorot-uniform values for the given fan-in
// and fan-out.
func glorotInit(w *tensor.Tensor, fanIn, fanOut int, rng *rand.Rand) {
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	d := w.Data()
	for i := range d {
		d[i] = (2*rng.Float64() - 1) * limit
	}
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkShape(layer string, got, want []int) {
	if !shapeEq(got, want) {
		panic(fmt.Sprintf("nn: %s got shape %v, want %v", layer, got, want))
	}
}
