package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/artifact"
	"repro/internal/tensor"
)

// Network is a sequential stack of layers ending, for the binary
// models in this repository, in a 1-unit sigmoid.
//
// Layers must not be appended or replaced after the first call to
// Params/ZeroGrad — the parameter list is cached so the training hot
// loop does not allocate it per batch. A Network (its layers hold
// reusable scratch buffers) must not be used from multiple goroutines;
// the trainer gives each worker its own replica.
type Network struct {
	Layers []Layer

	params []*Param // cached by Params; Layers is fixed after first use
}

// NewNetwork builds a sequential network.
func NewNetwork(layers ...Layer) *Network { return &Network{Layers: layers} }

// Forward runs a full forward pass.
//
//fallvet:hotpath
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs a full backward pass from the output gradient.
//
//fallvet:hotpath
func (n *Network) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return grad
}

// Predict returns the scalar output (fall probability) for one window.
// Steady-state calls are allocation-free: every layer writes into its
// own reusable scratch buffer.
//
//fallvet:hotpath
func (n *Network) Predict(x *tensor.Tensor) float64 {
	out := n.Forward(x, false)
	return out.Data()[0]
}

// Params returns all learnable parameters. The slice is cached (and
// returned by reference) so hot loops can call it freely; callers must
// not mutate it.
func (n *Network) Params() []*Param {
	if n.params == nil {
		for _, l := range n.Layers {
			n.params = append(n.params, l.Params()...)
		}
	}
	return n.params
}

// ZeroGrad clears all accumulated gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// ParamCount returns the total number of learnable scalars.
func (n *Network) ParamCount() int {
	c := 0
	for _, p := range n.Params() {
		c += p.W.Len()
	}
	return c
}

// Summary renders a human-readable architecture description.
func (n *Network) Summary(inShape []int) string {
	var b strings.Builder
	shape := inShape
	fmt.Fprintf(&b, "input %v\n", shape)
	for _, l := range n.Layers {
		out, err := l.OutShape(shape)
		if err != nil {
			fmt.Fprintf(&b, "%-28s <shape error: %v>\n", l.Name(), err)
			return b.String()
		}
		params := 0
		for _, p := range l.Params() {
			params += p.W.Len()
		}
		fmt.Fprintf(&b, "%-28s -> %-12v params=%d\n", l.Name(), out, params)
		shape = out
	}
	fmt.Fprintf(&b, "total params: %d\n", n.ParamCount())
	return b.String()
}

// Snapshot copies all weights (for early-stopping restore).
func (n *Network) Snapshot() [][]float64 {
	ps := n.Params()
	snap := make([][]float64, len(ps))
	for i, p := range ps {
		snap[i] = append([]float64(nil), p.W.Data()...)
	}
	return snap
}

// Restore loads weights captured by Snapshot.
func (n *Network) Restore(snap [][]float64) {
	ps := n.Params()
	if len(snap) != len(ps) {
		panic(fmt.Sprintf("nn: snapshot has %d tensors, network has %d", len(snap), len(ps)))
	}
	for i, p := range ps {
		if len(snap[i]) != p.W.Len() {
			panic("nn: snapshot tensor size mismatch")
		}
		copy(p.W.Data(), snap[i])
	}
}

// savedNet is the gob wire format: weights only, keyed by order. The
// architecture itself is code, so loading requires an identically
// constructed network. On disk the gob payload rides inside the
// verified envelope of package artifact (magic, version, kind,
// SHA-256), so a truncated or bit-flipped file is rejected before the
// payload is decoded.
type savedNet struct {
	Names   []string
	Weights [][]float64
}

// NetworkArtifactKind tags float-weight images in the artifact
// envelope.
const NetworkArtifactKind = "nn-float64-weights"

// Save serialises the network's weights in the verified artifact
// envelope.
func (n *Network) Save(w io.Writer) error {
	ps := n.Params()
	s := savedNet{}
	for _, p := range ps {
		s.Names = append(s.Names, p.Name)
		s.Weights = append(s.Weights, p.W.Data())
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&s); err != nil {
		return fmt.Errorf("nn: encoding network: %w", err)
	}
	return artifact.Write(w, NetworkArtifactKind, nil, payload.Bytes())
}

// Load restores weights saved by Save into an identically shaped
// network. The envelope's digest and kind are verified first, then
// every tensor's name, size and finiteness — a corrupt image fails
// loudly, it never loads.
func (n *Network) Load(r io.Reader) error {
	h, payload, err := artifact.Read(r)
	if err != nil {
		return fmt.Errorf("nn: %w", err)
	}
	if err := artifact.CheckKind(h, NetworkArtifactKind); err != nil {
		return fmt.Errorf("nn: %w", err)
	}
	var s savedNet
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&s); err != nil {
		return fmt.Errorf("nn: decoding network: %w", err)
	}
	ps := n.Params()
	if len(s.Weights) != len(ps) {
		return fmt.Errorf("nn: saved network has %d tensors, want %d", len(s.Weights), len(ps))
	}
	if len(s.Names) != len(s.Weights) {
		return fmt.Errorf("nn: saved network has %d names for %d tensors", len(s.Names), len(s.Weights))
	}
	for i, p := range ps {
		if s.Names[i] != p.Name {
			return fmt.Errorf("nn: saved tensor %d is %q, want %q", i, s.Names[i], p.Name)
		}
		if len(s.Weights[i]) != p.W.Len() {
			return fmt.Errorf("nn: saved tensor %q has %d values, want %d",
				p.Name, len(s.Weights[i]), p.W.Len())
		}
		for _, v := range s.Weights[i] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("nn: saved tensor %q holds a non-finite weight", p.Name)
			}
		}
	}
	// All tensors validated; only now mutate the live network.
	for i, p := range ps {
		copy(p.W.Data(), s.Weights[i])
	}
	return nil
}
