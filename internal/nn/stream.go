package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// StreamerOf is the incremental sliding-window forward path (DESIGN.md
// §12), parameterized by the inference scalar S. A batch scorer re-runs
// the whole network over the full [Window × C] matrix every stride even
// though consecutive windows share all but Step rows. The Streamer
// instead ingests one row at a time and caches each layer's output in a
// ring:
//
//   - every new input row uncovers exactly one new Conv1D output row
//     per branch (once Kernel rows of history exist), computed with
//     the same matVecBias micro-kernel the batch path uses and stored
//     post-ReLU;
//   - max pooling runs on the absolute pooling grid: window starts are
//     multiples of Step and Step is a multiple of Pool (checked at
//     construction), so the pool windows of consecutive decisions are
//     the same non-overlapping [p·r, p·r+p) blocks and the sliding
//     maximum degenerates to a per-block running max — one compare per
//     channel per conv row, no deque. (A monotonic deque is the
//     general structure for overlapping pool windows; profiling showed
//     it costing ~30% of the push path for zero benefit here, since
//     the paper's pooling never overlaps.)
//   - at a decision the pooled rings are gathered into the concat
//     vector and only the compiled dense head runs.
//
// Per decision that is O(Step·Kernel·C) conv work plus the head,
// instead of O(Window·Kernel·C) plus the head — and because every
// floating-point sum is produced by the same kernel in the same
// order over the same values, the result is bit-identical to
// Network.Predict on the assembled window at S=float64, not merely
// close. At S=float32 the model's float64 checkpoint is lowered
// (round-to-nearest-even per weight) once at construction and every
// kernel runs at single precision; the same order contract then makes
// the f32 streaming and f32 batch paths bit-identical to each other,
// with the f64 oracle agreement proven statistically by the precision
// harness rather than bit-for-bit.
//
// Branches whose input columns the caller re-bases per window (the
// detector subtracts the window-initial yaw from the Euler channels)
// see different input *values* at every stride, so their conv outputs
// cannot be cached across strides; those branches are recomputed in
// fused batch form at each decision. For the paper's 9-channel CNN
// that still streams the accelerometer and gyroscope branches — two
// thirds of the conv work — and the accel-only fallback CNN streams
// entirely.
//
// Cache invariants (relied on by Restart/rebuild and the snapshot
// tests):
//
//   - every cached value is a pure function of the last
//     min(count, Window) input rows and the absolute row count, so a
//     streamer rebuilt by replaying the detector's ring is in the
//     exact state of one that never stopped;
//   - branch input ring slot = absolute row mod Window (with the first
//     Kernel−1 slots mirrored past the end so a conv window is always
//     one contiguous slice), pool ring slot = absolute pool row mod
//     ⌊convT/Pool⌋: the rings hold precisely one window of history and
//     decision-time gathers only read rows the current window covers;
//   - pool rows are emitted on the absolute grid, which lines up with
//     every window start because window starts are multiples of Step
//     and Step is a multiple of Pool (re-checked by Ready).
//
// The push path carries every ring position as a running counter with
// a conditional wrap — no integer division or modulo anywhere per
// sample (a div by a non-constant costs ~20–40 cycles on the target
// core, which profiling showed dominating the original deque).
type StreamerOf[S tensor.Scalar] struct {
	inCh, window, step int

	in     []S    // input ring, [window × inCh]; absolute row r at slot r%window
	slot   int    // next write slot in `in` (== count mod window)
	count  int    // absolute rows ingested since the stream epoch
	base   int    // absolute row the ring history starts at (0 unless Restart-ed mid-stream)
	rebase []bool // per input column: re-based per window by the caller

	branches []*branchStreamOf[S]
	head     []headStepOf[S] // precompiled dense head (see buildHead)
	cat      *tensor.Of[S]   // concat vector fed to the head
}

// Streamer is the float64 instantiation — the reference width every
// pre-generic call site uses.
type Streamer = StreamerOf[float64]

// headOp selects what a compiled head step computes.
type headOp uint8

const (
	headDense   headOp = iota // y = W·x + b, optionally with the following ReLU folded in
	headReLU                  // a lone ReLU (not directly after a Dense)
	headSigmoid               // logistic transfer
	headTanh                  // hyperbolic tangent
)

// headStepOf is one precompiled step of the dense head. Dense layers
// (optionally with their following ReLU folded in) run straight
// through the micro-kernels into a streamer-owned buffer; lone
// activations run through the generic element-wise helpers, which at
// float64 evaluate exactly the layer objects' expressions. Flatten is
// the identity on the 1-D head and compiles to no step at all. Every
// step therefore produces bit-identical values to the layer stack at
// S=float64 while skipping per-layer tensor bookkeeping on the
// decision path — and gives float32 a complete head with no float64
// layer objects in the loop.
type headStepOf[S tensor.Scalar] struct {
	op      headOp
	relu    bool // headDense: fold the following ReLU into the kernel's stores
	out, in int  // headDense dimensions
	w, b    []S  // headDense parameters (aliased at f64, lowered copies at f32)
	buf     []S  // step output
}

// branchStreamOf is one Branch column range: either streamed through
// ring caches (Conv→ReLU→MaxPool stacks on non-rebased columns) or
// recomputed in fused batch form per decision; non-canonical stacks
// fall back to the model's own float64 layer objects (and are rejected
// at float32, where no layer objects exist to fall back to).
type branchStreamOf[S tensor.Scalar] struct {
	lo, hi int
	flat   int     // flattened output length
	stack  []Layer // the model's own layers (float64 layer-object fallback)

	canon bool           // stack is exactly Conv1D→ReLU→MaxPool1D with matching width
	batch bool           // recomputed per decision instead of streamed
	fused bool           // batch && canon: evaluated row-wise, no layer objects
	in    *tensor.Of[S]  // batch form: assembled [window × hi−lo] input
	in64  *tensor.Tensor // non-canon fallback: `in` seen at float64 (nil at f32)

	// Conv/pool geometry, set whenever the stack is canonical (the
	// streaming, fused-batch and BatchScore forms all use it).
	filters   int
	kernel    int
	wgt, bias []S // conv parameters (aliased at f64, lowered copies at f32)
	pool      int
	convT     int // conv rows per window = window−Kernel+1
	fullPool  int // complete pool rows per window = convT/pool
	tailLo    int // window-relative conv row where the partial pool tail starts (== convT when none)

	// Double-write input ring: [(window+kernel−1) × w]. Absolute row r
	// lives at slot r mod window; rows landing in slots < kernel−1 are
	// mirrored to slot+window, so the conv window of any row is the
	// contiguous slice bring[awin·w : awin·w+kernel·w] — no gather.
	bring []S
	awin  int // bring slot of the next conv row's window start (wraps at window)

	// Conv output storage. When the window's conv length is an exact
	// pool multiple only the running max needs each row and crow/crow2
	// are one-row scratches; with a partial pool tail the gather must
	// re-read the newest conv rows, so a full [convT × Filters] ring is
	// kept.
	crow     []S
	crow2    []S
	convRing []S
	aslot    int // convRing slot of the next conv row (wraps at convT)

	// Conv rows are computed in pairs through matVecBias2, which loads
	// each weight once for two windows: a freshly uncovered row is
	// deferred (pend/pendA) until its successor arrives, and Score
	// flushes a leftover single before gathering. Values are identical
	// either way — the pairing only changes when the arithmetic runs,
	// never its order. Pairing is disabled (pair == false) when
	// convT == 1 — the deferred row's input window would not survive
	// the next push — or when the conv input width reaches matVecBias's
	// wide path, whose summation order matVecBias2 does not reproduce.
	pair  bool
	pend  bool
	pendA int

	// Running max over the current pool block. phase counts conv rows
	// into the block (== a mod pool); at phase pool−1 the block is
	// complete and rmax is emitted to poolRing — unless the block
	// started before the stream epoch (partial after Restart).
	rmax     []S
	phase    int
	poolRing []S  // [fullPool × Filters]; absolute pool row r at slot r%fullPool
	poolSlot int  // poolRing slot of the next emitted pool row (wraps at fullPool)
}

// StreamConfig describes the stream a Streamer will consume.
type StreamConfig struct {
	// InCh is the row width; Window and Step are the detector's
	// sliding-window geometry in samples.
	InCh, Window, Step int
	// RebaseCols lists input columns the caller re-bases per window
	// (the value at the window's first row is subtracted from the
	// whole column before scoring). Branches reading any of them are
	// recomputed in batch form at each decision.
	RebaseCols []int
}

// NewStreamer builds a float64 incremental scorer for net — the
// reference instantiation of NewStreamerOf.
func NewStreamer(net *Network, cfg StreamConfig) (*Streamer, error) {
	return NewStreamerOf[float64](net, cfg)
}

// NewStreamerOf builds an incremental scorer at scalar width S for
// net, which must be a Branch followed by a dense head
// (Dense/ReLU/Sigmoid/Tanh/Flatten layers only) — the shape of every
// CNN this repo builds. Other topologies (MLP, recurrent) return an
// error; callers fall back to batch scoring. At S=float32 every branch
// stack must additionally be canonical Conv1D→ReLU→MaxPool1D: the
// lowered path compiles the whole forward pass out of the float64
// layer objects, so there is nothing for a non-canonical stack to fall
// back to.
//
// At S=float64 the Streamer shares net's parameters and batch-fallback
// layer scratch: scoring through it and through net.Predict interleave
// safely (outputs are copied out of layer scratch), but neither may
// run concurrently. At S=float32 the parameters are lowered copies
// taken at construction — a frozen snapshot of the checkpoint, which
// is how the deployment target consumes a model anyway.
func NewStreamerOf[S tensor.Scalar](net *Network, cfg StreamConfig) (*StreamerOf[S], error) {
	if net == nil || len(net.Layers) == 0 {
		return nil, fmt.Errorf("nn: streamer needs a non-empty network")
	}
	if cfg.InCh < 1 || cfg.Window < 1 || cfg.Step < 1 {
		return nil, fmt.Errorf("nn: streamer config %+v invalid", cfg)
	}
	br, ok := net.Layers[0].(*Branch)
	if !ok {
		return nil, fmt.Errorf("nn: streamer needs a branch-first topology, got %s", net.Layers[0].Name())
	}
	rebase := make([]bool, cfg.InCh)
	for _, c := range cfg.RebaseCols {
		if c < 0 || c >= cfg.InCh {
			return nil, fmt.Errorf("nn: rebase column %d outside %d channels", c, cfg.InCh)
		}
		rebase[c] = true
	}
	s := &StreamerOf[S]{
		inCh:   cfg.InCh,
		window: cfg.Window,
		step:   cfg.Step,
		in:     make([]S, cfg.Window*cfg.InCh),
		rebase: rebase,
	}
	f64 := tensor.Is64[S]()
	total := 0
	for i, c := range br.Cols {
		lo, hi := c[0], c[1]
		if hi > cfg.InCh {
			return nil, fmt.Errorf("nn: branch %d columns %v exceed %d channels", i, c, cfg.InCh)
		}
		shape := []int{cfg.Window, hi - lo}
		for _, l := range br.Stacks[i] {
			var err error
			shape, err = l.OutShape(shape)
			if err != nil {
				return nil, fmt.Errorf("nn: streamer branch %d: %w", i, err)
			}
		}
		flat := 1
		for _, d := range shape {
			flat *= d
		}
		b := &branchStreamOf[S]{lo: lo, hi: hi, flat: flat, stack: br.Stacks[i]}
		s.configureBranch(b, rebase)
		if !b.canon && !f64 {
			return nil, fmt.Errorf("nn: float32 streamer branch %d needs a Conv→ReLU→MaxPool stack", i)
		}
		if !b.canon {
			b.in64 = any(b.in).(*tensor.Tensor)
		}
		s.branches = append(s.branches, b)
		total += flat
	}
	layers := net.Layers[1:]
	hshape := []int{total}
	for _, l := range layers {
		switch l.(type) {
		case *Dense, *ReLU, *Sigmoid, *Tanh, *Flatten:
		default:
			return nil, fmt.Errorf("nn: streamer head cannot contain %s", l.Name())
		}
		var err error
		hshape, err = l.OutShape(hshape)
		if err != nil {
			return nil, fmt.Errorf("nn: streamer head: %w", err)
		}
	}
	if len(hshape) != 1 || hshape[0] != 1 {
		return nil, fmt.Errorf("nn: streamer head output shape %v, want [1]", hshape)
	}
	s.buildHead(layers, total)
	s.cat = tensor.NewOf[S](total)
	return s, nil
}

// buildHead precompiles the validated head layers into headSteps:
// Dense layers run through the micro-kernels (a ReLU directly after a
// Dense folds into its stores), lone activations through the generic
// element-wise helpers, and Flatten — the identity on the 1-D head —
// compiles away entirely.
func (s *StreamerOf[S]) buildHead(layers []Layer, width int) {
	for i := 0; i < len(layers); i++ {
		switch l := layers[i].(type) {
		case *Dense:
			st := headStepOf[S]{
				op: headDense, out: l.Out, in: l.In,
				w:   lowerOrAlias[S](l.Weight.W.Data()),
				b:   lowerOrAlias[S](l.Bias.W.Data()),
				buf: make([]S, l.Out),
			}
			if i+1 < len(layers) {
				if _, ok := layers[i+1].(*ReLU); ok {
					st.relu = true
					i++
				}
			}
			s.head = append(s.head, st)
			width = l.Out
		case *ReLU:
			s.head = append(s.head, headStepOf[S]{op: headReLU, buf: make([]S, width)})
		case *Sigmoid:
			s.head = append(s.head, headStepOf[S]{op: headSigmoid, buf: make([]S, width)})
		case *Tanh:
			s.head = append(s.head, headStepOf[S]{op: headTanh, buf: make([]S, width)})
		case *Flatten:
			// identity on a 1-D head: no step
		}
	}
}

// configureBranch decides how b evaluates. A branch streams when its
// stack is exactly Conv1D→ReLU→MaxPool1D, none of its columns are
// re-based per window, and the stride keeps window starts on the
// pooling grid (Step divisible by Pool). A canonical stack that cannot
// stream (re-based columns, misaligned stride) is recomputed per
// decision but in fused row-wise form — same kernel, same values, no
// intermediate layer tensors. Anything else goes through the model's
// own layer objects (float64 only).
func (s *StreamerOf[S]) configureBranch(b *branchStreamOf[S], rebase []bool) {
	b.batch = true
	w := b.hi - b.lo
	// Every batch form (including BatchScore on streaming branches)
	// assembles the window here.
	b.in = tensor.NewOf[S](s.window, w)
	if len(b.stack) != 3 {
		return
	}
	conv, ok := b.stack[0].(*Conv1D)
	if !ok {
		return
	}
	if _, ok := b.stack[1].(*ReLU); !ok {
		return
	}
	mp, ok := b.stack[2].(*MaxPool1D)
	if !ok {
		return
	}
	convT := s.window - conv.Kernel + 1
	if conv.InCh != w || convT < 1 {
		return
	}
	b.canon = true
	b.filters = conv.Filters
	b.kernel = conv.Kernel
	b.wgt = lowerOrAlias[S](conv.Weight.W.Data())
	b.bias = lowerOrAlias[S](conv.Bias.W.Data())
	b.pool = mp.Pool
	b.convT = convT
	b.fullPool = convT / mp.Pool
	b.tailLo = b.fullPool * mp.Pool
	b.crow = make([]S, conv.Filters)
	b.crow2 = make([]S, conv.Filters)

	rebased := false
	for c := b.lo; c < b.hi; c++ {
		rebased = rebased || rebase[c]
	}
	if rebased || s.step%mp.Pool != 0 {
		b.fused = true
		return
	}
	b.batch = false
	b.pair = convT >= 2 && conv.Kernel*w < 32
	b.bring = make([]S, (s.window+conv.Kernel-1)*w)
	if b.tailLo < convT {
		b.convRing = make([]S, convT*conv.Filters)
	}
	b.rmax = make([]S, conv.Filters)
	b.poolRing = make([]S, b.fullPool*conv.Filters)
}

// Streaming reports whether any branch actually runs incrementally
// (a Streamer whose branches all fall back to batch form is valid but
// saves nothing).
func (s *StreamerOf[S]) Streaming() bool {
	for _, b := range s.branches {
		if !b.batch {
			return true
		}
	}
	return false
}

// Restart clears every cache and declares the next pushed row to be
// absolute row base. Rebuilding a streamer to the exact state of one
// that never stopped is Restart(count−n) followed by pushing the last
// n = min(count, Window) rows oldest-first: pool emission runs on the
// absolute grid, so the replay lands on the same ring slots and
// running-max phases as the original. The first pool block after a
// mid-stream Restart may begin before base; its rows are gone, so its
// emission is suppressed — no complete window ever covers it (window
// starts are ≥ base and grid-aligned).
func (s *StreamerOf[S]) Restart(base int) {
	s.count = base
	s.base = base
	s.slot = base % s.window
	for _, b := range s.branches {
		if b.batch {
			continue
		}
		b.awin = base % s.window
		b.aslot = base % b.convT
		b.phase = base % b.pool
		b.pend = false
		for i := range b.rmax {
			b.rmax[i] = 0
		}
		if b.fullPool > 0 {
			// First pool row emitted after base is ⌈base/pool⌉ — the
			// first block wholly at or after base.
			b.poolSlot = ((base + b.pool - 1) / b.pool) % b.fullPool
		}
	}
}

// Reset returns the streamer to its cold state.
func (s *StreamerOf[S]) Reset() { s.Restart(0) }

// Push ingests one input row (len ≥ inCh; only the first inCh values
// are read) and advances every streaming branch.
//
//fallvet:hotpath
func (s *StreamerOf[S]) Push(row []S) {
	slot := s.slot
	// Row widths are single-digit; explicit loops beat memmove calls.
	d := s.in[slot*s.inCh : (slot+1)*s.inCh]
	for i := range d {
		d[i] = row[i]
	}
	s.slot++
	if s.slot == s.window {
		s.slot = 0
	}
	s.count++
	for _, b := range s.branches {
		if b.batch {
			continue
		}
		w := b.hi - b.lo
		src := row[b.lo:b.hi]
		p := b.bring[slot*w : slot*w+w]
		for i := range p {
			p[i] = src[i]
		}
		if slot < b.kernel-1 {
			m := b.bring[(slot+s.window)*w : (slot+s.window)*w+w]
			for i := range m {
				m[i] = src[i]
			}
		}
		if a := s.count - b.kernel; a >= s.base {
			b.pushConv(s, a)
		}
	}
}

// pushConv handles absolute conv row a, newly uncovered by the latest
// push. With a predecessor pending the two rows are computed together
// through matVecBias2ReLU; otherwise the row is deferred for the next
// push (or for Score's flush). Branches with pairing disabled compute
// immediately — see the pair field comment.
//
//fallvet:hotpath
func (b *branchStreamOf[S]) pushConv(s *StreamerOf[S], a int) {
	if !b.pend {
		if !b.pair {
			b.convRow(s, a)
			return
		}
		b.pend = true
		b.pendA = a
		return
	}
	b.pend = false
	w := b.hi - b.lo
	kc := b.kernel * w
	xa := b.bring[b.awin*w : b.awin*w+kc]
	aw2 := b.awin + 1
	if aw2 == s.window {
		aw2 = 0
	}
	xb := b.bring[aw2*w : aw2*w+kc]
	b.awin = aw2 + 1
	if b.awin == s.window {
		b.awin = 0
	}
	F := b.filters
	da, db := b.crow, b.crow2
	if b.convRing != nil {
		da = b.convRing[b.aslot*F : b.aslot*F+F]
		b.aslot++
		if b.aslot == b.convT {
			b.aslot = 0
		}
		db = b.convRing[b.aslot*F : b.aslot*F+F]
		b.aslot++
		if b.aslot == b.convT {
			b.aslot = 0
		}
	}
	matVecBias2ReLU(da, db, xa, xb, b.wgt, b.bias, F, kc)
	b.absorb(s, da, a-1)
	b.absorb(s, db, a)
}

// convRow computes one conv row on its own (pair flush, or a branch
// with pairing disabled).
//
//fallvet:hotpath
func (b *branchStreamOf[S]) convRow(s *StreamerOf[S], a int) {
	w := b.hi - b.lo
	kc := b.kernel * w
	win := b.bring[b.awin*w : b.awin*w+kc]
	b.awin++
	if b.awin == s.window {
		b.awin = 0
	}
	F := b.filters
	orow := b.crow
	if b.convRing != nil {
		orow = b.convRing[b.aslot*F : b.aslot*F+F]
		b.aslot++
		if b.aslot == b.convT {
			b.aslot = 0
		}
	}
	matVecBiasReLU(orow, win, b.wgt, b.bias, F, kc)
	b.absorb(s, orow, a)
}

// flush computes a deferred conv row so every row the current window
// covers is materialised before a gather.
//
//fallvet:hotpath
func (b *branchStreamOf[S]) flush(s *StreamerOf[S]) {
	if b.pend {
		b.pend = false
		b.convRow(s, b.pendA)
	}
}

// absorb folds a conv row (already clamped by the ReLU-fused kernel)
// into the running pool max and emits a pooled row when it completes a
// pool block (suppressed for the partial block straddling a mid-stream
// Restart).
//
//fallvet:hotpath
func (b *branchStreamOf[S]) absorb(s *StreamerOf[S], orow []S, a int) {
	if b.fullPool == 0 {
		return
	}
	rmax := b.rmax
	if b.phase == 0 {
		copy(rmax, orow)
	} else {
		for f, v := range orow {
			if v > rmax[f] {
				rmax[f] = v
			}
		}
	}
	b.phase++
	if b.phase == b.pool {
		b.phase = 0
		if a+1-b.pool >= s.base {
			F := b.filters
			p := b.poolSlot * F
			copy(b.poolRing[p:p+F], rmax)
			b.poolSlot++
			if b.poolSlot == b.fullPool {
				b.poolSlot = 0
			}
		}
	}
}

// Ready reports whether Score may run: a full window of history
// exists and its start row sits on every streaming branch's pooling
// grid. Detector strides keep the start aligned (Step is a multiple
// of Pool); off-stride callers simply see false and score in batch.
func (s *StreamerOf[S]) Ready() bool {
	if s.count < s.window {
		return false
	}
	start := s.count - s.window
	for _, b := range s.branches {
		if !b.batch && start%b.pool != 0 {
			return false
		}
	}
	return true
}

// Score evaluates the network over the current window, reusing every
// cached conv/pool row the slide kept and recomputing only re-based
// branches and the dense head. Callers must check Ready first.
//
//fallvet:hotpath
func (s *StreamerOf[S]) Score() float64 {
	start := s.count - s.window
	cd := s.cat.Data()
	off := 0
	for _, b := range s.branches {
		if b.batch {
			s.runBatchBranch(b, cd[off:off+b.flat], start)
		} else {
			b.flush(s)
			b.gather(cd[off:off+b.flat], start)
		}
		off += b.flat
	}
	return float64(s.runHead(cd))
}

// BatchScore evaluates the network over the current window entirely in
// batch form from the streamer's own input ring — every branch through
// the fused row-wise kernels (or its float64 layer objects when not
// canonical), then the compiled head. Unlike Score it does not require
// the window start to sit on the pooling grid, so it is the compiled
// path's full fallback for off-stride scoring; at S=float64 it is
// bit-identical to Network.Predict on the assembled window by the
// kernel order contract. A full window of history must exist
// (count ≥ Window).
//
//fallvet:hotpath
func (s *StreamerOf[S]) BatchScore() float64 {
	start := s.count - s.window
	cd := s.cat.Data()
	off := 0
	for _, b := range s.branches {
		s.runBatchBranch(b, cd[off:off+b.flat], start)
		off += b.flat
	}
	return float64(s.runHead(cd))
}

// runHead executes the precompiled head steps over the concat vector
// and returns the (single) network output.
//
//fallvet:hotpath
func (s *StreamerOf[S]) runHead(cur []S) S {
	for i := range s.head {
		st := &s.head[i]
		switch st.op {
		case headDense:
			if st.relu {
				matVecBiasReLU(st.buf, cur, st.w, st.b, st.out, st.in)
			} else {
				matVecBias(st.buf, cur, st.w, st.b, st.out, st.in)
			}
		case headReLU:
			reluInto(st.buf, cur)
		case headSigmoid:
			sigmoidInto(st.buf, cur)
		case headTanh:
			tanhInto(st.buf, cur)
		}
		cur = st.buf
	}
	return cur[0]
}

// gather copies the window's pooled rows (plus the partial tail, if
// the conv length is not a pool multiple) into dst. The divisions
// here run once per decision, not per sample.
//
//fallvet:hotpath
func (b *branchStreamOf[S]) gather(dst []S, start int) {
	F := b.filters
	slot := (start / b.pool) % b.fullPool
	n := 0
	for q := 0; q < b.fullPool; q++ {
		p := slot * F
		copy(dst[n:n+F], b.poolRing[p:p+F])
		n += F
		slot++
		if slot == b.fullPool {
			slot = 0
		}
	}
	if b.tailLo < b.convT {
		cs := (start + b.tailLo) % b.convT
		copy(dst[n:n+F], b.convRing[cs*F:cs*F+F])
		for q := b.tailLo + 1; q < b.convT; q++ {
			cs++
			if cs == b.convT {
				cs = 0
			}
			row := b.convRing[cs*F : cs*F+F]
			for f, v := range row {
				if v > dst[n+f] {
					dst[n+f] = v
				}
			}
		}
	}
}

// runBatchBranch assembles the branch's input columns from the ring,
// applies the per-window re-basing the detector applies (subtracting
// each re-based column's first value), and runs either the fused
// row-wise kernels (canonical stacks) or the model's own float64 layer
// stack — the same values through the same code as the batch path.
//
//fallvet:hotpath
func (s *StreamerOf[S]) runBatchBranch(b *branchStreamOf[S], dst []S, start int) {
	w := b.hi - b.lo
	ind := b.in.Data()
	slot := start % s.window
	for i := 0; i < s.window; i++ {
		src := s.in[slot*s.inCh+b.lo : slot*s.inCh+b.hi]
		row := ind[i*w : i*w+w]
		for j := range row {
			row[j] = src[j]
		}
		slot++
		if slot == s.window {
			slot = 0
		}
	}
	for c := 0; c < w; c++ {
		if !s.rebase[b.lo+c] {
			continue
		}
		v0 := ind[c]
		for i := 0; i < s.window; i++ {
			ind[i*w+c] -= v0
		}
	}
	if b.canon {
		b.fusedConvPool(dst, ind)
		return
	}
	// Non-canonical fallback: the model's own layers, float64 only
	// (b.in64 is the same buffer seen at the concrete type; float32
	// construction rejected this shape).
	h := b.in64
	for _, l := range b.stack {
		h = l.Forward(h, false)
	}
	for i, v := range h.Data() {
		dst[i] = S(v)
	}
}

// fusedConvPool evaluates a canonical Conv→ReLU→MaxPool stack over the
// assembled window row-wise, writing pooled rows (and the trailing
// partial block) straight into dst. It produces bit-identical values
// to the layer objects — each conv row goes through the same
// matVecBias call on the same contiguous input slice, ReLU is the same
// v ≤ 0 clamp, pooling the same strict-`>` running max — while
// skipping every intermediate tensor.
//
//fallvet:hotpath
func (b *branchStreamOf[S]) fusedConvPool(dst, ind []S) {
	w := b.hi - b.lo
	kc := b.kernel * w
	F := b.filters
	phase, n := 0, 0
	t := 0
	if kc < 32 {
		for ; t+2 <= b.convT; t += 2 {
			matVecBias2ReLU(b.crow, b.crow2, ind[t*w:t*w+kc], ind[(t+1)*w:(t+1)*w+kc], b.wgt, b.bias, F, kc)
			phase, n = b.fusedAbsorb(dst, b.crow, phase, n)
			phase, n = b.fusedAbsorb(dst, b.crow2, phase, n)
		}
	}
	for ; t < b.convT; t++ {
		matVecBiasReLU(b.crow, ind[t*w:t*w+kc], b.wgt, b.bias, F, kc)
		phase, n = b.fusedAbsorb(dst, b.crow, phase, n)
	}
}

// fusedAbsorb folds one fused conv row (pre-clamped by the ReLU-fused
// kernel) into the pooled output at block offset n, returning the
// advanced (phase, n).
//
//fallvet:hotpath
func (b *branchStreamOf[S]) fusedAbsorb(dst, crow []S, phase, n int) (int, int) {
	F := b.filters
	seg := dst[n : n+F]
	if phase == 0 {
		copy(seg, crow)
	} else {
		for f, v := range crow {
			if v > seg[f] {
				seg[f] = v
			}
		}
	}
	phase++
	if phase == b.pool {
		phase = 0
		n += F
	}
	return phase, n
}
