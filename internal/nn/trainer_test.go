package nn

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/tensor"
)

// toyProblem builds a linearly separable 2-feature binary task.
func toyProblem(n int, rng *rand.Rand) []Example {
	out := make([]Example, n)
	for i := range out {
		x := rng.NormFloat64()
		y := rng.NormFloat64()
		label := 0
		if x+y > 0.2 {
			label = 1
		}
		out[i] = Example{X: tensor.FromSlice([]float64{x, y}, 2), Y: label}
	}
	return out
}

func toyNet(rng *rand.Rand) *Network {
	return NewNetwork(
		NewDense(2, 8, rng),
		NewReLU(),
		NewDense(8, 1, rng),
		NewSigmoid(),
	)
}

func TestTrainerLearnsSeparableTask(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := toyProblem(400, rng)
	val := toyProblem(100, rng)
	test := toyProblem(200, rng)

	net := toyNet(rng)
	tr := NewTrainer(net, NewAdam(0.01), TrainConfig{Epochs: 60, Patience: 15, BatchSize: 16}, rng)
	hist, err := tr.Fit(train, val)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.TrainLoss) == 0 {
		t.Fatal("no history")
	}
	c := Score(net, test, 0.5)
	if c.Accuracy() < 0.9 {
		t.Fatalf("accuracy %.3f < 0.9 on a separable task\n%v", c.Accuracy(), c)
	}
	// Loss must have decreased.
	if hist.TrainLoss[len(hist.TrainLoss)-1] >= hist.TrainLoss[0] {
		t.Fatalf("training loss did not decrease: %g → %g",
			hist.TrainLoss[0], hist.TrainLoss[len(hist.TrainLoss)-1])
	}
}

func TestTrainerEarlyStoppingRestoresBest(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train := toyProblem(100, rng)
	val := toyProblem(50, rng)
	net := toyNet(rng)
	tr := NewTrainer(net, NewAdam(0.05), TrainConfig{Epochs: 200, Patience: 5, BatchSize: 16}, rng)
	hist, err := tr.Fit(train, val)
	if err != nil {
		t.Fatal(err)
	}
	if !hist.Stopped && len(hist.ValLoss) == 200 {
		t.Log("training ran to the epoch limit (acceptable but unusual at lr=0.05)")
	}
	// The restored weights must reproduce the best validation loss.
	got := tr.Evaluate(val)
	best := math.Inf(1)
	for _, v := range hist.ValLoss {
		best = math.Min(best, v)
	}
	if math.Abs(got-best) > 1e-9 {
		t.Fatalf("restored val loss %.6f != best %.6f", got, best)
	}
}

func TestTrainerEmptyTrainingSet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := NewTrainer(toyNet(rng), NewAdam(0.01), TrainConfig{}, rng)
	if _, err := tr.Fit(nil, nil); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestTrainerClassWeightsBiasRecall(t *testing.T) {
	// With a 95/5 imbalance, balanced class weights should yield a
	// much better positive recall than unweighted training.
	mk := func(n int, rng *rand.Rand) []Example {
		out := make([]Example, n)
		for i := range out {
			label := 0
			x, y := rng.NormFloat64()*0.7, rng.NormFloat64()*0.7
			if rng.Float64() < 0.05 {
				label = 1
				x += 1.5
				y += 1.5
			}
			out[i] = Example{X: tensor.FromSlice([]float64{x, y}, 2), Y: label}
		}
		return out
	}
	rng := rand.New(rand.NewSource(4))
	train := mk(1500, rng)
	val := mk(300, rng)
	test := mk(800, rng)

	weighted := toyNet(rng)
	trW := NewTrainer(weighted, NewAdam(0.01), TrainConfig{Epochs: 40, Patience: 40, BatchSize: 32}, rng)
	if _, err := trW.Fit(train, val); err != nil {
		t.Fatal(err)
	}
	cW := Score(weighted, test, 0.5)
	if cW.Recall() < 0.5 {
		t.Fatalf("balanced-weight recall %.3f too low: %v", cW.Recall(), &cW)
	}
}

func TestTrainerDeterminism(t *testing.T) {
	run := func() []float64 {
		rng := rand.New(rand.NewSource(5))
		train := toyProblem(120, rng)
		val := toyProblem(40, rng)
		net := toyNet(rng)
		tr := NewTrainer(net, NewAdam(0.01), TrainConfig{Epochs: 5, BatchSize: 16}, rng)
		hist, err := tr.Fit(train, val)
		if err != nil {
			t.Fatal(err)
		}
		return hist.TrainLoss
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic training at epoch %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	// Minimise f(w) = (w-3)² with SGD: gradient 2(w-3).
	p := newParam("w", 1)
	sgd := NewSGD(0.1, 0.9)
	for i := 0; i < 400; i++ {
		p.ZeroGrad()
		p.G.Data()[0] = 2 * (p.W.Data()[0] - 3)
		sgd.Step([]*Param{p}, 1)
	}
	if math.Abs(p.W.Data()[0]-3) > 1e-3 {
		t.Fatalf("SGD converged to %g, want 3", p.W.Data()[0])
	}
}

func TestAdamConverges(t *testing.T) {
	p := newParam("w", 1)
	p.W.Data()[0] = -4
	adam := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		p.ZeroGrad()
		p.G.Data()[0] = 2 * (p.W.Data()[0] - 3)
		adam.Step([]*Param{p}, 1)
	}
	if math.Abs(p.W.Data()[0]-3) > 1e-2 {
		t.Fatalf("Adam converged to %g, want 3", p.W.Data()[0])
	}
}

func TestBalancedWeights(t *testing.T) {
	w0, w1 := BalancedWeights(900, 100)
	if math.Abs(w0-1000.0/1800) > 1e-12 || math.Abs(w1-1000.0/200) > 1e-12 {
		t.Fatalf("balanced weights %g, %g", w0, w1)
	}
	// Degenerate counts fall back to 1,1.
	w0, w1 = BalancedWeights(0, 10)
	if w0 != 1 || w1 != 1 {
		t.Fatal("degenerate weights not neutral")
	}
}

func TestInitialBiasMatchesPrior(t *testing.T) {
	// Paper eq. (1): b = log(p/(1−p)). A network with only the output
	// bias set must predict exactly the prior through the sigmoid.
	pos, total := 36, 1000
	b := InitialBias(pos, total)
	p := 1 / (1 + math.Exp(-b))
	if math.Abs(p-0.036) > 1e-12 {
		t.Fatalf("sigmoid(bias) = %g, want 0.036", p)
	}
	if InitialBias(0, 10) != 0 || InitialBias(10, 10) != 0 {
		t.Fatal("degenerate bias not zero")
	}
}

func TestNetworkSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := toyNet(rng)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := toyNet(rand.New(rand.NewSource(99))) // different init
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	x := tensor.FromSlice([]float64{0.3, -0.7}, 2)
	if math.Abs(a.Predict(x)-b.Predict(x)) > 1e-15 {
		t.Fatal("loaded network differs")
	}
}

func TestNetworkLoadRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := toyNet(rng)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := NewNetwork(NewDense(3, 1, rng), NewSigmoid())
	if err := other.Load(&buf); err == nil {
		t.Fatal("mismatched architecture loaded")
	}
}

func TestSnapshotRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := toyNet(rng)
	x := tensor.FromSlice([]float64{1, 2}, 2)
	before := net.Predict(x)
	snap := net.Snapshot()
	for _, p := range net.Params() {
		p.W.Fill(0)
	}
	if net.Predict(x) == before {
		t.Fatal("zeroing had no effect?")
	}
	net.Restore(snap)
	if net.Predict(x) != before {
		t.Fatal("restore did not recover weights")
	}
}

func TestConfusionMetrics(t *testing.T) {
	var c Confusion
	// 3 TP, 1 FP, 5 TN, 1 FN.
	for i := 0; i < 3; i++ {
		c.Add(0.9, 1)
	}
	c.Add(0.8, 0)
	for i := 0; i < 5; i++ {
		c.Add(0.1, 0)
	}
	c.Add(0.2, 1)
	if c.Total() != 10 {
		t.Fatalf("total %d", c.Total())
	}
	if math.Abs(c.Accuracy()-0.8) > 1e-12 {
		t.Fatalf("acc %g", c.Accuracy())
	}
	if math.Abs(c.Precision()-0.75) > 1e-12 {
		t.Fatalf("prec %g", c.Precision())
	}
	if math.Abs(c.Recall()-0.75) > 1e-12 {
		t.Fatalf("rec %g", c.Recall())
	}
	if math.Abs(c.F1()-0.75) > 1e-12 {
		t.Fatalf("f1 %g", c.F1())
	}
	if c.String() == "" {
		t.Fatal("empty string")
	}
	var empty Confusion
	if empty.Accuracy() != 0 || empty.Precision() != 0 || empty.Recall() != 0 || empty.F1() != 0 {
		t.Fatal("empty confusion metrics must be 0")
	}
	d := Confusion{TP: 1}
	d.Merge(c)
	if d.TP != 4 {
		t.Fatal("merge")
	}
}

func TestConfusionThreshold(t *testing.T) {
	var c Confusion
	c.AddThreshold(0.6, 1, 0.9) // below threshold → FN
	if c.FN != 1 {
		t.Fatal("threshold not honoured")
	}
}

func TestParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := toyNet(rng)
	// dense(2→8): 16+8; dense(8→1): 8+1 → 33.
	if got := net.ParamCount(); got != 33 {
		t.Fatalf("ParamCount = %d, want 33", got)
	}
}

func TestClipGradNorm(t *testing.T) {
	p := newParam("w", 2)
	p.G.Data()[0], p.G.Data()[1] = 3, 4 // norm 5
	ClipGradNorm([]*Param{p}, 1)
	if math.Abs(p.G.Data()[0]-0.6) > 1e-12 || math.Abs(p.G.Data()[1]-0.8) > 1e-12 {
		t.Fatalf("clipped grads %v", p.G.Data())
	}
	// Below the bound: untouched.
	ClipGradNorm([]*Param{p}, 10)
	if math.Abs(p.G.Data()[0]-0.6) > 1e-12 {
		t.Fatal("clip modified an in-bound gradient")
	}
	// Non-positive maxNorm is a no-op.
	before := p.G.Data()[0]
	ClipGradNorm([]*Param{p}, 0)
	if p.G.Data()[0] != before {
		t.Fatal("maxNorm 0 clipped")
	}
}

func TestTrainerWithClipping(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	train := toyProblem(100, rng)
	val := toyProblem(30, rng)
	net := toyNet(rng)
	tr := NewTrainer(net, NewAdam(0.01),
		TrainConfig{Epochs: 5, Patience: 5, BatchSize: 16, MaxGradNorm: 1}, rng)
	if _, err := tr.Fit(train, val); err != nil {
		t.Fatal(err)
	}
	// Clipped training must still reduce the loss.
	c := Score(net, val, 0.5)
	if c.Accuracy() < 0.6 {
		t.Fatalf("clipped training accuracy %.2f", c.Accuracy())
	}
}

func TestConfusionInvalidTracksNonFinite(t *testing.T) {
	var c Confusion
	c.AddThreshold(math.NaN(), 1, 0.5)
	c.AddThreshold(math.Inf(1), 0, 0.5)
	c.AddThreshold(math.Inf(-1), 1, 0.5)
	c.AddThreshold(0.9, 1, 0.5) // one honest TP
	if c.Invalid != 3 {
		t.Fatalf("Invalid = %d, want 3", c.Invalid)
	}
	// NaN scores must not masquerade as negatives.
	if c.FN != 0 || c.TN != 0 {
		t.Fatalf("non-finite scores leaked into FN/TN: %+v", c)
	}
	if c.TP != 1 || c.Total() != 1 {
		t.Fatalf("valid prediction miscounted: %+v", c)
	}
	if c.Recall() != 1 {
		t.Fatalf("recall %g polluted by invalid predictions", c.Recall())
	}
	// Invalid is carried through merges and surfaced in String.
	var d Confusion
	d.Merge(c)
	if d.Invalid != 3 {
		t.Fatalf("Merge dropped Invalid: %d", d.Invalid)
	}
	if s := d.String(); !strings.Contains(s, "invalid=3") {
		t.Fatalf("String() hides invalid count: %q", s)
	}
	var clean Confusion
	clean.Add(0.9, 1)
	if strings.Contains(clean.String(), "invalid") {
		t.Fatal("String() mentions invalid when there are none")
	}
}
