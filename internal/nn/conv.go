package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Conv1D convolves along the time axis of a [T × C] input with
// Filters kernels of length Kernel spanning all C channels ("valid"
// padding, stride 1), producing [T−Kernel+1 × Filters].
type Conv1D struct {
	InCh, Filters, Kernel int
	Weight                *Param // [Filters × Kernel × InCh]
	Bias                  *Param // [Filters]

	x *tensor.Tensor
	// Scratch buffers reused across calls; forward (y) and backward (dx)
	// outputs stay distinct so a caller may hold a Backward result across
	// later Forward passes (the gradient checker does).
	y, dx *tensor.Tensor
}

// NewConv1D returns a Glorot-initialised 1-D convolution layer.
func NewConv1D(inCh, filters, kernel int, rng *rand.Rand) *Conv1D {
	c := &Conv1D{
		InCh:    inCh,
		Filters: filters,
		Kernel:  kernel,
		Weight:  newParam("conv1d.w", filters, kernel, inCh),
		Bias:    newParam("conv1d.b", filters),
	}
	glorotInit(c.Weight.W, kernel*inCh, filters, rng)
	return c
}

// Name implements Layer.
func (c *Conv1D) Name() string {
	return fmt.Sprintf("conv1d(%dch,%df,k%d)", c.InCh, c.Filters, c.Kernel)
}

// Params implements Layer.
func (c *Conv1D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// OutShape implements Layer.
func (c *Conv1D) OutShape(in []int) ([]int, error) {
	if len(in) != 2 || in[1] != c.InCh {
		return nil, fmt.Errorf("nn: %s cannot take input %v", c.Name(), in)
	}
	outT := in[0] - c.Kernel + 1
	if outT < 1 {
		return nil, fmt.Errorf("nn: %s input length %d shorter than kernel", c.Name(), in[0])
	}
	return []int{outT, c.Filters}, nil
}

// badInput and badShort keep the formatted panics (and their argument
// allocations) off the Forward fast path.
func (c *Conv1D) badInput(x *tensor.Tensor) {
	panic(fmt.Sprintf("nn: %s got shape %v", c.Name(), x.Shape()))
}

func (c *Conv1D) badShort(T int) {
	panic(fmt.Sprintf("nn: %s input length %d shorter than kernel %d", c.Name(), T, c.Kernel))
}

//fallvet:cold panic-guard: allocates only to format the failing-shape report
func (c *Conv1D) badGrad(grad *tensor.Tensor, outT int) {
	checkShape(c.Name()+" grad", grad.Shape(), []int{outT, c.Filters})
}

// Forward implements Layer.
//
//fallvet:hotpath
func (c *Conv1D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 2 || x.Dim(1) != c.InCh {
		c.badInput(x)
	}
	T := x.Dim(0)
	outT := T - c.Kernel + 1
	if outT < 1 {
		c.badShort(T)
	}
	if train {
		c.x = x
	}
	y := tensor.Reuse(c.y, outT, c.Filters)
	c.y = y
	xd, yd := x.Data(), y.Data()
	wd, bd := c.Weight.W.Data(), c.Bias.W.Data()
	kc := c.Kernel * c.InCh
	for t := 0; t < outT; t++ {
		window := xd[t*c.InCh : t*c.InCh+kc]
		orow := yd[t*c.Filters : (t+1)*c.Filters]
		matVecBias(orow, window, wd, bd, c.Filters, kc)
	}
	return y
}

// Backward implements Layer.
//
//fallvet:hotpath
func (c *Conv1D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	T := c.x.Dim(0)
	outT := T - c.Kernel + 1
	if grad.Dims() != 2 || grad.Dim(0) != outT || grad.Dim(1) != c.Filters {
		c.badGrad(grad, outT)
	}
	dx := tensor.Reuse(c.dx, T, c.InCh)
	c.dx = dx
	dx.Zero() // the loop below accumulates into reused scratch
	xd, gd, dxd := c.x.Data(), grad.Data(), dx.Data()
	wd, wg := c.Weight.W.Data(), c.Weight.G.Data()
	bg := c.Bias.G.Data()
	kc := c.Kernel * c.InCh
	for t := 0; t < outT; t++ {
		window := xd[t*c.InCh : t*c.InCh+kc]
		dwindow := dxd[t*c.InCh : t*c.InCh+kc]
		grow := gd[t*c.Filters : (t+1)*c.Filters]
		for f := 0; f < c.Filters; f++ {
			g := grow[f]
			if g == 0 {
				continue
			}
			bg[f] += g
			w := wd[f*kc : (f+1)*kc]
			dw := wg[f*kc : (f+1)*kc]
			for i, xv := range window {
				dw[i] += g * xv
				dwindow[i] += g * w[i]
			}
		}
	}
	return dx
}

// MaxPool1D downsamples the time axis of a [T × C] input by taking the
// maximum over non-overlapping windows of Pool samples per channel.
// A trailing partial window is pooled too.
type MaxPool1D struct {
	Pool int

	argmax []int // flat input index chosen per output element
	inT    int
	ch     int
	y, dx  *tensor.Tensor // scratch, reused across calls
}

// NewMaxPool1D returns a max-pooling layer with the given window.
func NewMaxPool1D(pool int) *MaxPool1D {
	if pool < 1 {
		panic("nn: pool size must be ≥ 1")
	}
	return &MaxPool1D{Pool: pool}
}

// Name implements Layer.
func (m *MaxPool1D) Name() string { return fmt.Sprintf("maxpool1d(%d)", m.Pool) }

// Params implements Layer.
func (m *MaxPool1D) Params() []*Param { return nil }

func (m *MaxPool1D) outT(inT int) int { return (inT + m.Pool - 1) / m.Pool }

// OutShape implements Layer.
func (m *MaxPool1D) OutShape(in []int) ([]int, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("nn: %s cannot take input %v", m.Name(), in)
	}
	return []int{m.outT(in[0]), in[1]}, nil
}

// badInput keeps the formatted panic off the Forward fast path.
func (m *MaxPool1D) badInput(x *tensor.Tensor) {
	panic(fmt.Sprintf("nn: %s got shape %v", m.Name(), x.Shape()))
}

// Forward implements Layer.
//
//fallvet:hotpath
func (m *MaxPool1D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 2 {
		m.badInput(x)
	}
	T, C := x.Dim(0), x.Dim(1)
	outT := m.outT(T)
	y := tensor.Reuse(m.y, outT, C)
	m.y = y
	if train {
		if cap(m.argmax) >= outT*C {
			m.argmax = m.argmax[:outT*C]
		} else {
			//fallvet:ignore hotpath argmax warm-up: grows once, then reused (alloc_test proves steady state)
			m.argmax = make([]int, outT*C)
		}
		m.inT, m.ch = T, C
	}
	xd, yd := x.Data(), y.Data()
	for ot := 0; ot < outT; ot++ {
		lo := ot * m.Pool
		hi := lo + m.Pool
		if hi > T {
			hi = T
		}
		for c := 0; c < C; c++ {
			best := xd[lo*C+c]
			bestIx := lo*C + c
			for t := lo + 1; t < hi; t++ {
				if v := xd[t*C+c]; v > best {
					best, bestIx = v, t*C+c
				}
			}
			yd[ot*C+c] = best
			if train {
				m.argmax[ot*C+c] = bestIx
			}
		}
	}
	return y
}

// Backward implements Layer.
//
//fallvet:hotpath
func (m *MaxPool1D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.Reuse(m.dx, m.inT, m.ch)
	m.dx = dx
	dx.Zero() // the argmax scatter accumulates into reused scratch
	dxd, gd := dx.Data(), grad.Data()
	for i, src := range m.argmax {
		dxd[src] += gd[i]
	}
	return dx
}
