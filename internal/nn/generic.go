package nn

import (
	"math"

	"repro/internal/tensor"
)

// Generic inference-side primitives shared by the compiled streaming
// head and the lowering path. Training stays float64-only — these
// helpers exist so the forward/inference arithmetic can run at either
// scalar width with one definition, and so the float64 instantiation
// is literally the same expression the layer objects evaluate
// (bit-identity by construction, not by tolerance).

// lowerOrAlias returns src as a []S: at S=float64 it returns src
// itself (so in-place parameter updates stay visible to the compiled
// path, exactly as when the kernels read the layer tensors directly),
// and at S=float32 it returns a rounded copy — a lowered snapshot of
// the checkpoint, taken once at construction.
func lowerOrAlias[S tensor.Scalar](src []float64) []S {
	if s, ok := any(src).([]S); ok {
		return s
	}
	out := make([]S, len(src))
	for i, v := range src {
		out[i] = S(v)
	}
	return out
}

// reluInto writes max(v, 0) element-wise — ReLU.Forward's exact clamp
// (v ≤ 0 becomes 0, NaN propagates because the comparison is false).
//
//fallvet:hotpath
func reluInto[S tensor.Scalar](dst, x []S) {
	for i, v := range x {
		if v <= 0 {
			dst[i] = 0
		} else {
			dst[i] = v
		}
	}
}

// sigmoidInto writes the logistic function element-wise. The transfer
// runs through float64 at both widths, so the float64 instantiation is
// Sigmoid.Forward's exact expression and the float32 one differs only
// by the final rounding of an exactly-computed double.
//
//fallvet:hotpath
func sigmoidInto[S tensor.Scalar](dst, x []S) {
	for i, v := range x {
		dst[i] = S(1 / (1 + math.Exp(-float64(v))))
	}
}

// tanhInto writes the hyperbolic tangent element-wise; same width
// contract as sigmoidInto.
//
//fallvet:hotpath
func tanhInto[S tensor.Scalar](dst, x []S) {
	for i, v := range x {
		dst[i] = S(math.Tanh(float64(v)))
	}
}
