package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Branch routes disjoint column ranges of a [T × C] input through
// independent layer stacks and concatenates the flattened branch
// outputs into one vector. It is the structural heart of the paper's
// CNN: the 9-channel window splits into accelerometer, gyroscope and
// Euler [T × 3] matrices, each processed by its own Conv→MaxPool
// stack before the shared dense head.
type Branch struct {
	// Cols[i] gives branch i's half-open column range [lo, hi).
	Cols    [][2]int
	Stacks  [][]Layer
	inShape []int
	sizes   []int // flattened output length per branch
}

// NewBranch builds a branch layer; cols and stacks must correspond.
func NewBranch(cols [][2]int, stacks [][]Layer) *Branch {
	if len(cols) != len(stacks) || len(cols) == 0 {
		panic("nn: branch needs matching, non-empty cols and stacks")
	}
	for _, c := range cols {
		if c[0] < 0 || c[1] <= c[0] {
			panic(fmt.Sprintf("nn: bad branch column range %v", c))
		}
	}
	return &Branch{Cols: cols, Stacks: stacks}
}

// Name implements Layer.
func (b *Branch) Name() string { return fmt.Sprintf("branch(×%d)", len(b.Stacks)) }

// Params implements Layer.
func (b *Branch) Params() []*Param {
	var ps []*Param
	for _, stack := range b.Stacks {
		for _, l := range stack {
			ps = append(ps, l.Params()...)
		}
	}
	return ps
}

// OutShape implements Layer.
func (b *Branch) OutShape(in []int) ([]int, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("nn: %s cannot take input %v", b.Name(), in)
	}
	total := 0
	for i, c := range b.Cols {
		if c[1] > in[1] {
			return nil, fmt.Errorf("nn: branch %d columns %v exceed input %v", i, c, in)
		}
		shape := []int{in[0], c[1] - c[0]}
		for _, l := range b.Stacks[i] {
			var err error
			shape, err = l.OutShape(shape)
			if err != nil {
				return nil, err
			}
		}
		n := 1
		for _, d := range shape {
			n *= d
		}
		total += n
	}
	return []int{total}, nil
}

// slice extracts columns [lo,hi) of x into a new [T × hi-lo] tensor.
func slice(x *tensor.Tensor, lo, hi int) *tensor.Tensor {
	T, C := x.Dim(0), x.Dim(1)
	out := tensor.New(T, hi-lo)
	xd, od := x.Data(), out.Data()
	w := hi - lo
	for t := 0; t < T; t++ {
		copy(od[t*w:(t+1)*w], xd[t*C+lo:t*C+hi])
	}
	return out
}

// Forward implements Layer.
func (b *Branch) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 2 {
		panic(fmt.Sprintf("nn: %s got shape %v", b.Name(), x.Shape()))
	}
	if train {
		b.inShape = append([]int(nil), x.Shape()...)
		b.sizes = make([]int, len(b.Stacks))
	}
	parts := make([]*tensor.Tensor, len(b.Stacks))
	for i, stack := range b.Stacks {
		h := slice(x, b.Cols[i][0], b.Cols[i][1])
		for _, l := range stack {
			h = l.Forward(h, train)
		}
		h = h.Reshape(h.Len())
		if train {
			b.sizes[i] = h.Len()
		}
		parts[i] = h
	}
	return tensor.Concat1D(parts...)
}

// Backward implements Layer.
func (b *Branch) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(b.inShape...)
	dxd := dx.Data()
	T, C := b.inShape[0], b.inShape[1]
	off := 0
	for i, stack := range b.Stacks {
		g := tensor.FromSlice(grad.Data()[off:off+b.sizes[i]], b.sizes[i])
		off += b.sizes[i]
		// Re-inflate to the stack's output shape by replaying shapes
		// backward: each layer's Backward knows its own input shape,
		// so we only need the flattened→shaped fix at the top, which
		// the last layer's cached state handles when we reshape to
		// its output. We recover the shape via OutShape.
		shape := []int{T, b.Cols[i][1] - b.Cols[i][0]}
		for _, l := range stack {
			var err error
			shape, err = l.OutShape(shape)
			if err != nil {
				panic(err)
			}
		}
		gt := g.Reshape(shape...)
		for j := len(stack) - 1; j >= 0; j-- {
			gt = stack[j].Backward(gt)
		}
		// Scatter the branch input gradient back into the columns.
		lo, hi := b.Cols[i][0], b.Cols[i][1]
		w := hi - lo
		gd := gt.Data()
		for t := 0; t < T; t++ {
			for c := 0; c < w; c++ {
				dxd[t*C+lo+c] += gd[t*w+c]
			}
		}
	}
	return dx
}
