package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Branch routes disjoint column ranges of a [T × C] input through
// independent layer stacks and concatenates the flattened branch
// outputs into one vector. It is the structural heart of the paper's
// CNN: the 9-channel window splits into accelerometer, gyroscope and
// Euler [T × 3] matrices, each processed by its own Conv→MaxPool
// stack before the shared dense head.
type Branch struct {
	// Cols[i] gives branch i's half-open column range [lo, hi).
	Cols    [][2]int
	Stacks  [][]Layer
	inShape []int
	sizes   []int   // flattened output length per branch
	outSh   [][]int // pre-flatten output shape per branch

	// Scratch buffers reused across calls (see DESIGN.md §8).
	ins   []*tensor.Tensor // per-branch column slices (forward input)
	views []*tensor.Tensor // per-branch cached 1-D flatten views
	parts []*tensor.Tensor // per-branch flattened outputs, gathered per call
	cat   *tensor.Tensor   // concatenated forward output
	gs    []*tensor.Tensor // per-branch backward gradient slices
	dx    *tensor.Tensor   // backward input gradient
}

// NewBranch builds a branch layer; cols and stacks must correspond.
func NewBranch(cols [][2]int, stacks [][]Layer) *Branch {
	if len(cols) != len(stacks) || len(cols) == 0 {
		panic("nn: branch needs matching, non-empty cols and stacks")
	}
	for _, c := range cols {
		if c[0] < 0 || c[1] <= c[0] {
			panic(fmt.Sprintf("nn: bad branch column range %v", c))
		}
	}
	return &Branch{Cols: cols, Stacks: stacks}
}

// Name implements Layer.
func (b *Branch) Name() string { return fmt.Sprintf("branch(×%d)", len(b.Stacks)) }

// Params implements Layer.
func (b *Branch) Params() []*Param {
	var ps []*Param
	for _, stack := range b.Stacks {
		for _, l := range stack {
			ps = append(ps, l.Params()...)
		}
	}
	return ps
}

// OutShape implements Layer.
func (b *Branch) OutShape(in []int) ([]int, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("nn: %s cannot take input %v", b.Name(), in)
	}
	total := 0
	for i, c := range b.Cols {
		if c[1] > in[1] {
			return nil, fmt.Errorf("nn: branch %d columns %v exceed input %v", i, c, in)
		}
		shape := []int{in[0], c[1] - c[0]}
		for _, l := range b.Stacks[i] {
			var err error
			shape, err = l.OutShape(shape)
			if err != nil {
				return nil, err
			}
		}
		n := 1
		for _, d := range shape {
			n *= d
		}
		total += n
	}
	return []int{total}, nil
}

// sliceInto extracts columns [lo,hi) of x into dst (scratch, possibly
// nil) and returns the [T × hi-lo] result.
//
//fallvet:hotpath
func sliceInto(dst, x *tensor.Tensor, lo, hi int) *tensor.Tensor {
	T, C := x.Dim(0), x.Dim(1)
	out := tensor.Reuse(dst, T, hi-lo)
	xd, od := x.Data(), out.Data()
	w := hi - lo
	for t := 0; t < T; t++ {
		copy(od[t*w:(t+1)*w], xd[t*C+lo:t*C+hi])
	}
	return out
}

// ensureScratch sizes the per-branch scratch slices once.
//
//fallvet:cold one-time lazy scratch initialisation (guarded by b.ins); the alloc gates prove the steady state allocates nothing
func (b *Branch) ensureScratch() {
	if b.ins != nil {
		return
	}
	n := len(b.Stacks)
	b.ins = make([]*tensor.Tensor, n)
	b.views = make([]*tensor.Tensor, n)
	b.parts = make([]*tensor.Tensor, n)
	b.gs = make([]*tensor.Tensor, n)
	b.outSh = make([][]int, n)
}

// badInput keeps the formatted panic off the Forward fast path.
func (b *Branch) badInput(x *tensor.Tensor) {
	panic(fmt.Sprintf("nn: %s got shape %v", b.Name(), x.Shape()))
}

// Forward implements Layer.
//
//fallvet:hotpath
func (b *Branch) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 2 {
		b.badInput(x)
	}
	b.ensureScratch()
	if train {
		//fallvet:ignore hotpath shape cache reuses its backing array after the first call
		b.inShape = append(b.inShape[:0], x.Shape()...)
		if cap(b.sizes) >= len(b.Stacks) {
			b.sizes = b.sizes[:len(b.Stacks)]
		} else {
			//fallvet:ignore hotpath sizes warm-up: grows once, then reused (alloc_test proves steady state)
			b.sizes = make([]int, len(b.Stacks))
		}
	}
	total := 0
	for i, stack := range b.Stacks {
		in := sliceInto(b.ins[i], x, b.Cols[i][0], b.Cols[i][1])
		b.ins[i] = in
		h := in
		for _, l := range stack {
			h = l.Forward(h, train)
		}
		if train {
			//fallvet:ignore hotpath shape cache reuses its backing array after the first call
			b.outSh[i] = append(b.outSh[i][:0], h.Shape()...)
			b.sizes[i] = h.Len()
		}
		if h.Dims() != 1 {
			h = tensor.ViewInto(&b.views[i], h, h.Len())
		}
		b.parts[i] = h
		total += h.Len()
	}
	cat := tensor.Reuse(b.cat, total)
	b.cat = cat
	off := 0
	for _, p := range b.parts {
		copy(cat.Data()[off:], p.Data())
		off += p.Len()
	}
	return cat
}

// Backward implements Layer.
//
//fallvet:hotpath
func (b *Branch) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.Reuse(b.dx, b.inShape...)
	b.dx = dx
	dx.Zero() // the column scatter accumulates into reused scratch
	dxd := dx.Data()
	T, C := b.inShape[0], b.inShape[1]
	off := 0
	for i, stack := range b.Stacks {
		// Re-inflate the flat gradient slice to the stack's output shape
		// (cached by the matching train-time Forward) in branch scratch.
		gt := tensor.Reuse(b.gs[i], b.outSh[i]...)
		b.gs[i] = gt
		copy(gt.Data(), grad.Data()[off:off+b.sizes[i]])
		off += b.sizes[i]
		for j := len(stack) - 1; j >= 0; j-- {
			gt = stack[j].Backward(gt)
		}
		// Scatter the branch input gradient back into the columns.
		lo, hi := b.Cols[i][0], b.Cols[i][1]
		w := hi - lo
		gd := gt.Data()
		for t := 0; t < T; t++ {
			for c := 0; c < w; c++ {
				dxd[t*C+lo+c] += gd[t*w+c]
			}
		}
	}
	return dx
}
