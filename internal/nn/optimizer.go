package nn

import (
	"fmt"
	"math"
)

// Optimizer updates parameters from their accumulated gradients. Step
// consumes the gradient (the caller zeroes it afterwards via
// Network.ZeroGrad); scale is applied to the gradient first (1/batch
// for averaging).
type Optimizer interface {
	Step(params []*Param, scale float64)
}

// OptimizerState is a serialisable snapshot of an optimizer's internal
// state, keyed by the order of the params slice it was taken against.
// Moments holds one slot per internal per-parameter buffer (Adam: m
// then v; SGD: velocity); a zero-length inner slice stands for a
// buffer the optimizer has not materialised yet (equivalent to zeros).
type OptimizerState struct {
	Kind    string
	Step    int
	LR      float64
	Moments [][][]float64
}

// Checkpointable is an optimizer whose state can be captured into a
// training checkpoint and restored so that a resumed run continues
// bit-identically. Both built-in optimizers implement it.
type Checkpointable interface {
	Optimizer
	// State snapshots the optimizer against the given parameter order.
	State(params []*Param) OptimizerState
	// SetState restores a snapshot taken with the same parameter order.
	SetState(params []*Param, st OptimizerState) error
}

// LRScaler is an optimizer whose learning rate the trainer can back
// off when it rolls back a diverged epoch.
type LRScaler interface {
	ScaleLR(factor float64)
}

// snapshotMoment copies one per-param buffer map in params order.
func snapshotMoment(params []*Param, m map[*Param][]float64) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), m[p]...)
	}
	return out
}

// restoreMoment installs one per-param buffer map from a snapshot.
func restoreMoment(params []*Param, m map[*Param][]float64, snap [][]float64) error {
	if len(snap) != len(params) {
		return fmt.Errorf("nn: optimizer state has %d buffers, want %d", len(snap), len(params))
	}
	for i, p := range params {
		if len(snap[i]) == 0 {
			delete(m, p)
			continue
		}
		if len(snap[i]) != p.W.Len() {
			return fmt.Errorf("nn: optimizer buffer %d has %d values, param has %d",
				i, len(snap[i]), p.W.Len())
		}
		m[p] = append([]float64(nil), snap[i]...)
	}
	return nil
}

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	LR, Momentum float64
	velocity     map[*Param][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: map[*Param][]float64{}}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param, scale float64) {
	for _, p := range params {
		v, ok := s.velocity[p]
		if !ok {
			v = make([]float64, p.W.Len())
			s.velocity[p] = v
		}
		wd, gd := p.W.Data(), p.G.Data()
		for i := range wd {
			v[i] = s.Momentum*v[i] - s.LR*gd[i]*scale
			wd[i] += v[i]
		}
	}
}

// ScaleLR implements LRScaler.
func (s *SGD) ScaleLR(factor float64) { s.LR *= factor }

// State implements Checkpointable.
func (s *SGD) State(params []*Param) OptimizerState {
	return OptimizerState{
		Kind:    "sgd",
		LR:      s.LR,
		Moments: [][][]float64{snapshotMoment(params, s.velocity)},
	}
}

// SetState implements Checkpointable.
func (s *SGD) SetState(params []*Param, st OptimizerState) error {
	if st.Kind != "sgd" {
		return fmt.Errorf("nn: checkpoint holds %q optimizer state, trainer uses sgd", st.Kind)
	}
	if len(st.Moments) != 1 {
		return fmt.Errorf("nn: sgd state has %d moment slots, want 1", len(st.Moments))
	}
	if st.LR <= 0 || math.IsInf(st.LR, 0) || math.IsNaN(st.LR) {
		return fmt.Errorf("nn: sgd state has invalid learning rate %g", st.LR)
	}
	if s.velocity == nil {
		s.velocity = map[*Param][]float64{}
	}
	if err := restoreMoment(params, s.velocity, st.Moments[0]); err != nil {
		return err
	}
	s.LR = st.LR
	return nil
}

// Adam is the Adam optimizer (Kingma & Ba 2015) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param][]float64
}

// NewAdam returns an Adam optimizer with the conventional defaults for
// any field left at zero (lr 1e-3, β₁ 0.9, β₂ 0.999, ε 1e-8).
func NewAdam(lr float64) *Adam {
	if lr <= 0 {
		lr = 1e-3
	}
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*Param][]float64{}, v: map[*Param][]float64{},
	}
}

// ScaleLR implements LRScaler.
func (a *Adam) ScaleLR(factor float64) { a.LR *= factor }

// State implements Checkpointable.
func (a *Adam) State(params []*Param) OptimizerState {
	return OptimizerState{
		Kind: "adam",
		Step: a.t,
		LR:   a.LR,
		Moments: [][][]float64{
			snapshotMoment(params, a.m),
			snapshotMoment(params, a.v),
		},
	}
}

// SetState implements Checkpointable.
func (a *Adam) SetState(params []*Param, st OptimizerState) error {
	if st.Kind != "adam" {
		return fmt.Errorf("nn: checkpoint holds %q optimizer state, trainer uses adam", st.Kind)
	}
	if len(st.Moments) != 2 {
		return fmt.Errorf("nn: adam state has %d moment slots, want 2", len(st.Moments))
	}
	if st.Step < 0 {
		return fmt.Errorf("nn: adam state has negative step count %d", st.Step)
	}
	if st.LR <= 0 || math.IsInf(st.LR, 0) || math.IsNaN(st.LR) {
		return fmt.Errorf("nn: adam state has invalid learning rate %g", st.LR)
	}
	if a.m == nil {
		a.m = map[*Param][]float64{}
	}
	if a.v == nil {
		a.v = map[*Param][]float64{}
	}
	if err := restoreMoment(params, a.m, st.Moments[0]); err != nil {
		return err
	}
	if err := restoreMoment(params, a.v, st.Moments[1]); err != nil {
		return err
	}
	a.t = st.Step
	a.LR = st.LR
	return nil
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param, scale float64) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, p.W.Len())
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = make([]float64, p.W.Len())
			a.v[p] = v
		}
		wd, gd := p.W.Data(), p.G.Data()
		for i := range wd {
			g := gd[i] * scale
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / c1
			vh := v[i] / c2
			wd[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}
