package nn

import "math"

// Optimizer updates parameters from their accumulated gradients. Step
// consumes the gradient (the caller zeroes it afterwards via
// Network.ZeroGrad); scale is applied to the gradient first (1/batch
// for averaging).
type Optimizer interface {
	Step(params []*Param, scale float64)
}

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	LR, Momentum float64
	velocity     map[*Param][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: map[*Param][]float64{}}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param, scale float64) {
	for _, p := range params {
		v, ok := s.velocity[p]
		if !ok {
			v = make([]float64, p.W.Len())
			s.velocity[p] = v
		}
		wd, gd := p.W.Data(), p.G.Data()
		for i := range wd {
			v[i] = s.Momentum*v[i] - s.LR*gd[i]*scale
			wd[i] += v[i]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba 2015) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param][]float64
}

// NewAdam returns an Adam optimizer with the conventional defaults for
// any field left at zero (lr 1e-3, β₁ 0.9, β₂ 0.999, ε 1e-8).
func NewAdam(lr float64) *Adam {
	if lr <= 0 {
		lr = 1e-3
	}
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*Param][]float64{}, v: map[*Param][]float64{},
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param, scale float64) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, p.W.Len())
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = make([]float64, p.W.Len())
			a.v[p] = v
		}
		wd, gd := p.W.Data(), p.G.Data()
		for i := range wd {
			g := gd[i] * scale
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / c1
			vh := v[i] / c2
			wd[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}
