package nn

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Example is one training instance.
type Example struct {
	X *tensor.Tensor
	Y int
}

// TrainConfig holds the paper's training hyper-parameters.
type TrainConfig struct {
	// Epochs is the maximum epoch count (paper: 200).
	Epochs int
	// Patience stops training after this many epochs without
	// validation-loss improvement, restoring the best weights
	// (paper: 20).
	Patience int
	// BatchSize is the mini-batch size (gradients are averaged).
	BatchSize int
	// ClassWeights are the (negative, positive) loss weights; both
	// zero selects balanced weights from the training labels.
	ClassWeights [2]float64
	// MaxGradNorm clips the global gradient norm per batch when
	// positive — the usual guard against exploding recurrent
	// gradients (LSTM/GRU/ConvLSTM baselines).
	MaxGradNorm float64
	// Log, when non-nil, receives one line per epoch.
	Log io.Writer
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs <= 0 {
		c.Epochs = 200
	}
	if c.Patience <= 0 {
		c.Patience = 20
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	return c
}

// History records per-epoch training progress.
type History struct {
	TrainLoss []float64
	ValLoss   []float64
	BestEpoch int
	Stopped   bool // true when early stopping fired
}

// Trainer fits a Network with mini-batch gradient descent, weighted
// BCE and early stopping on validation loss.
type Trainer struct {
	Net  *Network
	Opt  Optimizer
	Cfg  TrainConfig
	Rng  *rand.Rand
	Loss *WeightedBCE
}

// NewTrainer wires up a trainer; rng drives shuffling.
func NewTrainer(net *Network, opt Optimizer, cfg TrainConfig, rng *rand.Rand) *Trainer {
	return &Trainer{Net: net, Opt: opt, Cfg: cfg.withDefaults(), Rng: rng}
}

// Fit trains on train, early-stops on val, and returns the history.
// It derives class weights if not set, applies them through the loss,
// and restores the best-validation weights before returning.
func (t *Trainer) Fit(train, val []Example) (*History, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("nn: empty training set")
	}
	cfg := t.Cfg
	w0, w1 := cfg.ClassWeights[0], cfg.ClassWeights[1]
	if w0 == 0 && w1 == 0 {
		pos := 0
		for _, e := range train {
			pos += e.Y
		}
		w0, w1 = BalancedWeights(len(train)-pos, pos)
	}
	t.Loss = NewWeightedBCE(w0, w1)

	hist := &History{}
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}
	best := t.Net.Snapshot()
	bestVal := inf()
	sinceBest := 0

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		t.Rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, len(order))
			t.Net.ZeroGrad()
			for _, ix := range order[start:end] {
				e := train[ix]
				p := t.Net.Forward(e.X, true).Data()[0]
				epochLoss += t.Loss.Loss(p, e.Y)
				t.Net.Backward(t.Loss.Grad(p, e.Y))
			}
			if cfg.MaxGradNorm > 0 {
				ClipGradNorm(t.Net.Params(), cfg.MaxGradNorm*float64(end-start))
			}
			t.Opt.Step(t.Net.Params(), 1/float64(end-start))
		}
		epochLoss /= float64(len(train))
		hist.TrainLoss = append(hist.TrainLoss, epochLoss)

		vl := t.Evaluate(val)
		hist.ValLoss = append(hist.ValLoss, vl)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %3d: train %.4f  val %.4f\n", epoch, epochLoss, vl)
		}
		if vl < bestVal-1e-9 {
			bestVal = vl
			best = t.Net.Snapshot()
			hist.BestEpoch = epoch
			sinceBest = 0
		} else {
			sinceBest++
			if sinceBest >= cfg.Patience {
				hist.Stopped = true
				break
			}
		}
	}
	t.Net.Restore(best)
	return hist, nil
}

// Evaluate returns the mean weighted loss over a set (0 for empty).
func (t *Trainer) Evaluate(set []Example) float64 {
	if len(set) == 0 {
		return 0
	}
	s := 0.0
	for _, e := range set {
		p := t.Net.Predict(e.X)
		s += t.Loss.Loss(p, e.Y)
	}
	return s / float64(len(set))
}

// Score runs the network over a set and tallies a confusion matrix at
// the given threshold.
func Score(net *Network, set []Example, thr float64) Confusion {
	var c Confusion
	for _, e := range set {
		c.AddThreshold(net.Predict(e.X), e.Y, thr)
	}
	return c
}

// ClipGradNorm scales all gradients down so their global L2 norm does
// not exceed maxNorm.
func ClipGradNorm(params []*Param, maxNorm float64) {
	if maxNorm <= 0 {
		return
	}
	total := 0.0
	for _, p := range params {
		for _, g := range p.G.Data() {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm <= maxNorm {
		return
	}
	scale := maxNorm / norm
	for _, p := range params {
		p.G.Scale(scale)
	}
}

func inf() float64 { return 1e308 }
