package nn

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Example is one training instance.
type Example struct {
	X *tensor.Tensor
	Y int
}

// TrainConfig holds the paper's training hyper-parameters.
type TrainConfig struct {
	// Epochs is the maximum epoch count (paper: 200).
	Epochs int
	// Patience stops training after this many epochs without
	// validation-loss improvement, restoring the best weights
	// (paper: 20).
	Patience int
	// BatchSize is the mini-batch size (gradients are averaged).
	BatchSize int
	// ClassWeights are the (negative, positive) loss weights; both
	// zero selects balanced weights from the training labels.
	ClassWeights [2]float64
	// MaxGradNorm clips the global gradient norm per batch when
	// positive — the usual guard against exploding recurrent
	// gradients (LSTM/GRU/ConvLSTM baselines).
	MaxGradNorm float64
	// Log, when non-nil, receives one line per epoch.
	Log io.Writer

	// Checkpoint, when non-nil, saves resumable trainer state after
	// every Checkpoint.Every completed epochs via atomic write-rename.
	// When the checkpoint file already exists, Fit resumes from it and
	// the continued run is bit-identical to one that was never
	// interrupted. Requires an optimizer implementing Checkpointable.
	Checkpoint *Checkpointer
	// AfterEpoch, when non-nil, runs after each completed epoch (and
	// after the checkpoint for that epoch, if due). A non-nil return
	// aborts Fit immediately with that error, without restoring the
	// best weights — the hook exists for progress reporting and for
	// simulating a mid-training crash in the recovery tests.
	AfterEpoch func(epoch int, trainLoss, valLoss float64) error
	// MaxRollbacks caps how many diverged epochs (non-finite or
	// exploding loss) the trainer will roll back before aborting with
	// a *DivergedError (default 3).
	MaxRollbacks int
	// MaxLoss is the absolute exploding-loss bound: a train or val
	// loss above it counts as divergence. 0 selects the default
	// (1e6); negative disables the absolute bound (non-finite losses
	// are always divergence).
	MaxLoss float64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs <= 0 {
		c.Epochs = 200
	}
	if c.Patience <= 0 {
		c.Patience = 20
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.MaxRollbacks <= 0 {
		c.MaxRollbacks = 3
	}
	if c.MaxLoss == 0 {
		c.MaxLoss = 1e6
	}
	return c
}

// History records per-epoch training progress.
type History struct {
	TrainLoss []float64
	ValLoss   []float64
	BestEpoch int
	Stopped   bool // true when early stopping fired
	// Rollbacks counts diverged epochs that were rolled back to the
	// last good snapshot (with the learning rate backed off).
	Rollbacks int
}

// DivergedError reports a training run aborted by the divergence
// guard: the loss went non-finite or exploded more than MaxRollbacks
// times, and rather than return a poisoned model the trainer stopped.
type DivergedError struct {
	// Epoch is the epoch index whose loss triggered the final abort.
	Epoch int
	// Rollbacks is how many diverged epochs were rolled back before
	// giving up (the aborting epoch included).
	Rollbacks int
	// TrainLoss and ValLoss are the offending values.
	TrainLoss, ValLoss float64
}

func (e *DivergedError) Error() string {
	return fmt.Sprintf("nn: training diverged at epoch %d (train %g, val %g) after %d rollbacks",
		e.Epoch, e.TrainLoss, e.ValLoss, e.Rollbacks)
}

// rollbackLRFactor is the learning-rate backoff applied on each
// divergence rollback.
const rollbackLRFactor = 0.5

// Trainer fits a Network with mini-batch gradient descent, weighted
// BCE and early stopping on validation loss.
type Trainer struct {
	Net  *Network
	Opt  Optimizer
	Cfg  TrainConfig
	Rng  *rand.Rand
	Loss *WeightedBCE
}

// NewTrainer wires up a trainer; rng drives shuffling.
func NewTrainer(net *Network, opt Optimizer, cfg TrainConfig, rng *rand.Rand) *Trainer {
	return &Trainer{Net: net, Opt: opt, Cfg: cfg.withDefaults(), Rng: rng}
}

// Fit trains on train, early-stops on val, and returns the history.
// It derives class weights if not set, applies them through the loss,
// and restores the best-validation weights before returning.
//
// Reliability behaviour: with Cfg.Checkpoint set, Fit resumes from an
// existing checkpoint file (kill-at-epoch-k plus rerun is bit-identical
// to an uninterrupted run). An epoch whose train or validation loss is
// non-finite — or exceeds Cfg.MaxLoss — is rolled back to the last
// good weights and optimizer state with the learning rate halved;
// after Cfg.MaxRollbacks such epochs Fit aborts with a *DivergedError
// instead of returning a poisoned model.
func (t *Trainer) Fit(train, val []Example) (*History, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("nn: empty training set")
	}
	cfg := t.Cfg
	w0, w1 := cfg.ClassWeights[0], cfg.ClassWeights[1]
	if w0 == 0 && w1 == 0 {
		pos := 0
		for _, e := range train {
			pos += e.Y
		}
		w0, w1 = BalancedWeights(len(train)-pos, pos)
	}
	t.Loss = NewWeightedBCE(w0, w1)

	params := t.Net.Params()
	ckptOpt, _ := t.Opt.(Checkpointable)
	if cfg.Checkpoint != nil && ckptOpt == nil {
		return nil, fmt.Errorf("nn: checkpointing requires a Checkpointable optimizer, %T is not", t.Opt)
	}

	hist := &History{}
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}
	// The epoch shuffle is the only randomness inside the loop; it runs
	// on a single-word serialisable generator so a checkpoint can carry
	// it (math/rand cannot export its state). The caller's Rng seeds it,
	// preserving the one-seed-drives-everything contract.
	sh := newShuffleRNG(uint64(t.Rng.Int63()))

	best := t.Net.Snapshot()
	bestVal := math.Inf(1)
	sinceBest := 0
	rollbacks := 0 // total diverged epochs; MaxRollbacks aborts on this
	sinceGood := 0 // consecutive rollbacks since the last good epoch
	startEpoch := 0

	// Last good (non-diverged) state to roll back to; initially the
	// untrained network and fresh optimizer.
	lastGoodW := t.Net.Snapshot()
	var lastGoodOpt OptimizerState
	if ckptOpt != nil {
		lastGoodOpt = ckptOpt.State(params)
	}

	if cfg.Checkpoint != nil {
		st, err := cfg.Checkpoint.load()
		if err != nil {
			return nil, err
		}
		if st != nil {
			if err := validateSnapshot("weights", st.Weights, params); err != nil {
				return nil, err
			}
			if err := validateSnapshot("best weights", st.Best, params); err != nil {
				return nil, err
			}
			if !st.Done {
				if err := validateOrder(st.Order, len(train)); err != nil {
					return nil, err
				}
			}
			if st.Done {
				// The previous run finished; its best weights are the
				// result. Restore and return without retraining.
				t.Net.Restore(st.Best)
				h := st.Hist
				return &h, nil
			}
			t.Net.Restore(st.Weights)
			if err := ckptOpt.SetState(params, st.Opt); err != nil {
				return nil, err
			}
			copy(order, st.Order)
			sh.state = st.Shuffle
			best = st.Best
			bestVal = st.BestVal
			sinceBest = st.SinceBest
			hist = &st.Hist
			rollbacks = st.Rollbacks
			startEpoch = st.Epoch
			lastGoodW = t.Net.Snapshot()
			lastGoodOpt = ckptOpt.State(params)
			if cfg.Log != nil {
				fmt.Fprintf(cfg.Log, "resuming from %s at epoch %d\n", cfg.Checkpoint.Path, startEpoch)
			}
		}
	}

	saveCheckpoint := func(nextEpoch int, done bool) error {
		if cfg.Checkpoint == nil {
			return nil
		}
		return cfg.Checkpoint.save(&checkpointState{
			Epoch:     nextEpoch,
			Done:      done,
			Order:     order,
			Weights:   t.Net.Snapshot(),
			Opt:       ckptOpt.State(params),
			Shuffle:   sh.state,
			Best:      best,
			BestVal:   bestVal,
			SinceBest: sinceBest,
			Hist:      *hist,
			Rollbacks: rollbacks,
			W0:        w0,
			W1:        w1,
		})
	}

	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		sh.shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, len(order))
			t.Net.ZeroGrad()
			for _, ix := range order[start:end] {
				e := train[ix]
				p := t.Net.Forward(e.X, true).Data()[0]
				epochLoss += t.Loss.Loss(p, e.Y)
				t.Net.Backward(t.Loss.Grad(p, e.Y))
			}
			if cfg.MaxGradNorm > 0 {
				ClipGradNorm(t.Net.Params(), cfg.MaxGradNorm*float64(end-start))
			}
			t.Opt.Step(t.Net.Params(), 1/float64(end-start))
		}
		epochLoss /= float64(len(train))
		hist.TrainLoss = append(hist.TrainLoss, epochLoss)

		vl := t.Evaluate(val)
		hist.ValLoss = append(hist.ValLoss, vl)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %3d: train %.4f  val %.4f\n", epoch, epochLoss, vl)
		}

		if diverged(epochLoss, cfg.MaxLoss) || diverged(vl, cfg.MaxLoss) {
			rollbacks++
			sinceGood++
			hist.Rollbacks++
			if rollbacks > cfg.MaxRollbacks {
				return nil, &DivergedError{
					Epoch: epoch, Rollbacks: rollbacks,
					TrainLoss: epochLoss, ValLoss: vl,
				}
			}
			// Roll back to the last good snapshot and back off the
			// learning rate before trying again. Restoring the
			// optimizer state resurrects its pre-backoff learning rate,
			// so the backoff is re-applied cumulatively — once per
			// rollback since the last good epoch.
			t.Net.Restore(lastGoodW)
			if ckptOpt != nil {
				if err := ckptOpt.SetState(params, lastGoodOpt); err != nil {
					return nil, err
				}
			}
			if sc, ok := t.Opt.(LRScaler); ok {
				sc.ScaleLR(math.Pow(rollbackLRFactor, float64(sinceGood)))
			}
			if cfg.Log != nil {
				fmt.Fprintf(cfg.Log, "epoch %3d: diverged (train %g, val %g) — rolled back, lr ×%g (%d/%d)\n",
					epoch, epochLoss, vl, rollbackLRFactor, rollbacks, cfg.MaxRollbacks)
			}
			continue
		}

		// vl is finite here (a NaN validation loss takes the divergence
		// path above), so the strict comparison cannot silently treat
		// NaN as "no improvement".
		if vl < bestVal-1e-9 {
			bestVal = vl
			best = t.Net.Snapshot()
			hist.BestEpoch = epoch
			sinceBest = 0
		} else {
			sinceBest++
			if sinceBest >= cfg.Patience {
				hist.Stopped = true
				break
			}
		}
		sinceGood = 0
		lastGoodW = t.Net.Snapshot()
		if ckptOpt != nil {
			lastGoodOpt = ckptOpt.State(params)
		}
		if cfg.Checkpoint != nil && (epoch+1)%cfg.Checkpoint.every() == 0 {
			if err := saveCheckpoint(epoch+1, false); err != nil {
				return nil, err
			}
		}
		if cfg.AfterEpoch != nil {
			if err := cfg.AfterEpoch(epoch, epochLoss, vl); err != nil {
				return nil, err
			}
		}
	}
	t.Net.Restore(best)
	if err := saveCheckpoint(cfg.Epochs, true); err != nil {
		return nil, err
	}
	return hist, nil
}

// diverged reports a loss value the guard must not accept: non-finite
// always; above the absolute bound when one is configured (maxLoss>0).
func diverged(loss, maxLoss float64) bool {
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		return true
	}
	return maxLoss > 0 && loss > maxLoss
}

// Evaluate returns the mean weighted loss over a set (0 for empty).
func (t *Trainer) Evaluate(set []Example) float64 {
	if len(set) == 0 {
		return 0
	}
	s := 0.0
	for _, e := range set {
		p := t.Net.Predict(e.X)
		s += t.Loss.Loss(p, e.Y)
	}
	return s / float64(len(set))
}

// Score runs the network over a set and tallies a confusion matrix at
// the given threshold.
func Score(net *Network, set []Example, thr float64) Confusion {
	var c Confusion
	for i := range set {
		c.AddThreshold(net.Predict(set[i].X), set[i].Y, thr)
	}
	return c
}

// ClipGradNorm scales all gradients down so their global L2 norm does
// not exceed maxNorm.
func ClipGradNorm(params []*Param, maxNorm float64) {
	if maxNorm <= 0 {
		return
	}
	total := 0.0
	for _, p := range params {
		for _, g := range p.G.Data() {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm <= maxNorm {
		return
	}
	scale := maxNorm / norm
	for _, p := range params {
		p.G.Scale(scale)
	}
}
