package nn

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/par"
	"repro/internal/tensor"
)

// Example is one training instance.
type Example struct {
	X *tensor.Tensor
	Y int
}

// TrainConfig holds the paper's training hyper-parameters.
type TrainConfig struct {
	// Epochs is the maximum epoch count (paper: 200).
	Epochs int
	// Patience stops training after this many epochs without
	// validation-loss improvement, restoring the best weights
	// (paper: 20).
	Patience int
	// BatchSize is the mini-batch size (gradients are averaged).
	BatchSize int
	// ClassWeights are the (negative, positive) loss weights; both
	// zero selects balanced weights from the training labels.
	ClassWeights [2]float64
	// MaxGradNorm clips the global gradient norm per batch when
	// positive — the usual guard against exploding recurrent
	// gradients (LSTM/GRU/ConvLSTM baselines).
	MaxGradNorm float64
	// Log, when non-nil, receives one line per epoch.
	Log io.Writer

	// Checkpoint, when non-nil, saves resumable trainer state after
	// every Checkpoint.Every completed epochs via atomic write-rename.
	// When the checkpoint file already exists, Fit resumes from it and
	// the continued run is bit-identical to one that was never
	// interrupted. Requires an optimizer implementing Checkpointable.
	Checkpoint *Checkpointer
	// AfterEpoch, when non-nil, runs after each completed epoch (and
	// after the checkpoint for that epoch, if due). A non-nil return
	// aborts Fit immediately with that error, without restoring the
	// best weights — the hook exists for progress reporting and for
	// simulating a mid-training crash in the recovery tests.
	AfterEpoch func(epoch int, trainLoss, valLoss float64) error
	// MaxRollbacks caps how many diverged epochs (non-finite or
	// exploding loss) the trainer will roll back before aborting with
	// a *DivergedError (default 3).
	MaxRollbacks int
	// MaxLoss is the absolute exploding-loss bound: a train or val
	// loss above it counts as divergence. 0 selects the default
	// (1e6); negative disables the absolute bound (non-finite losses
	// are always divergence).
	MaxLoss float64
	// Workers is the data-parallel worker count: each mini-batch is
	// split into fixed-size example chunks processed on per-worker
	// network replicas, and the chunk gradients are reduced in chunk
	// order — so the result is bit-identical for every worker count
	// (see DESIGN.md §8). Values ≤ 1 train serially; > 1 requires the
	// trainer's Replicate factory.
	Workers int
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs <= 0 {
		c.Epochs = 200
	}
	if c.Patience <= 0 {
		c.Patience = 20
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.MaxRollbacks <= 0 {
		c.MaxRollbacks = 3
	}
	if c.MaxLoss == 0 {
		c.MaxLoss = 1e6
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

// History records per-epoch training progress.
type History struct {
	TrainLoss []float64
	ValLoss   []float64
	BestEpoch int
	Stopped   bool // true when early stopping fired
	// Rollbacks counts diverged epochs that were rolled back to the
	// last good snapshot (with the learning rate backed off).
	Rollbacks int
}

// DivergedError reports a training run aborted by the divergence
// guard: the loss went non-finite or exploded more than MaxRollbacks
// times, and rather than return a poisoned model the trainer stopped.
type DivergedError struct {
	// Epoch is the epoch index whose loss triggered the final abort.
	Epoch int
	// Rollbacks is how many diverged epochs were rolled back before
	// giving up (the aborting epoch included).
	Rollbacks int
	// TrainLoss and ValLoss are the offending values.
	TrainLoss, ValLoss float64
}

func (e *DivergedError) Error() string {
	return fmt.Sprintf("nn: training diverged at epoch %d (train %g, val %g) after %d rollbacks",
		e.Epoch, e.TrainLoss, e.ValLoss, e.Rollbacks)
}

// rollbackLRFactor is the learning-rate backoff applied on each
// divergence rollback.
const rollbackLRFactor = 0.5

// Gradient and loss sums are always accumulated in fixed-size example
// chunks and the chunk partials reduced in chunk order. Because the
// chunk decomposition depends only on the batch layout — never on the
// worker count — floating-point non-associativity cannot make a
// parallel run drift from a serial one: workers=N and workers=1 produce
// bit-identical weights, losses and checkpoints.
const (
	// gradChunk is the number of examples per gradient partial sum.
	gradChunk = 8
	// evalChunk is the number of examples per validation-loss partial.
	evalChunk = 64
)

// Trainer fits a Network with mini-batch gradient descent, weighted
// BCE and early stopping on validation loss.
type Trainer struct {
	Net  *Network
	Opt  Optimizer
	Cfg  TrainConfig
	Rng  *rand.Rand
	Loss *WeightedBCE
	// Replicate returns a structurally identical network (weights are
	// overwritten by replica sync, so the factory's initialisation does
	// not matter). Required when Cfg.Workers > 1; each worker beyond
	// the first trains on its own replica because layer scratch buffers
	// make a Network single-goroutine by contract.
	Replicate func() *Network

	pool      *par.Pool
	nets      []*Network // nets[0] is Net; the rest are replicas
	netParams [][]*Param
	gbuf      []*tensor.Tensor // per-worker 1-element output gradients
	offsets   []int            // flat offset of each param in a chunk buffer
	chunkG    [][]float64      // per-chunk flat gradient partials
	chunkL    []float64        // per-chunk loss partials
	evalPart  []float64        // per-chunk validation-loss partials
}

// NewTrainer wires up a trainer; rng drives shuffling.
func NewTrainer(net *Network, opt Optimizer, cfg TrainConfig, rng *rand.Rand) *Trainer {
	return &Trainer{Net: net, Opt: opt, Cfg: cfg.withDefaults(), Rng: rng}
}

// setupWorkers builds the worker pool, the per-worker network replicas
// and the per-worker scratch. Idempotent across Fit/Evaluate calls for
// an unchanged worker count.
func (t *Trainer) setupWorkers() error {
	w := t.Cfg.Workers
	if w < 1 {
		w = 1
	}
	if len(t.nets) == w && t.netParams != nil {
		return nil
	}
	if w > 1 && t.Replicate == nil {
		return fmt.Errorf("nn: TrainConfig.Workers=%d requires a Replicate factory for per-worker network replicas", w)
	}
	master := t.Net.Params()
	t.pool = par.New(w)
	t.nets = make([]*Network, w)
	t.netParams = make([][]*Param, w)
	t.gbuf = make([]*tensor.Tensor, w)
	t.nets[0] = t.Net
	t.netParams[0] = master
	t.gbuf[0] = tensor.New(1)
	for i := 1; i < w; i++ {
		n := t.Replicate()
		ps := n.Params()
		if len(ps) != len(master) {
			return fmt.Errorf("nn: replica has %d param tensors, master has %d", len(ps), len(master))
		}
		for pi, p := range ps {
			if p.W.Len() != master[pi].W.Len() {
				return fmt.Errorf("nn: replica param %q has %d values, master has %d",
					p.Name, p.W.Len(), master[pi].W.Len())
			}
		}
		t.nets[i] = n
		t.netParams[i] = ps
		t.gbuf[i] = tensor.New(1)
	}
	return nil
}

// syncReplicas copies the master weights into every replica. Called at
// the top of each mini-batch (and before a parallel Evaluate) so
// optimizer steps, rollbacks and checkpoint restores all propagate.
func (t *Trainer) syncReplicas() {
	for i := 1; i < len(t.nets); i++ {
		dst := t.netParams[i]
		for pi, p := range t.netParams[0] {
			copy(dst[pi].W.Data(), p.W.Data())
		}
	}
}

// zeroGrads clears the gradient tensors of a param list.
func zeroGrads(ps []*Param) {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// Fit trains on train, early-stops on val, and returns the history.
// It derives class weights if not set, applies them through the loss,
// and restores the best-validation weights before returning.
//
// Reliability behaviour: with Cfg.Checkpoint set, Fit resumes from an
// existing checkpoint file (kill-at-epoch-k plus rerun is bit-identical
// to an uninterrupted run). An epoch whose train or validation loss is
// non-finite — or exceeds Cfg.MaxLoss — is rolled back to the last
// good weights and optimizer state with the learning rate halved;
// after Cfg.MaxRollbacks such epochs Fit aborts with a *DivergedError
// instead of returning a poisoned model.
func (t *Trainer) Fit(train, val []Example) (*History, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("nn: empty training set")
	}
	cfg := t.Cfg
	w0, w1 := cfg.ClassWeights[0], cfg.ClassWeights[1]
	if w0 == 0 && w1 == 0 {
		pos := 0
		for _, e := range train {
			pos += e.Y
		}
		w0, w1 = BalancedWeights(len(train)-pos, pos)
	}
	t.Loss = NewWeightedBCE(w0, w1)

	params := t.Net.Params()
	ckptOpt, _ := t.Opt.(Checkpointable)
	if cfg.Checkpoint != nil && ckptOpt == nil {
		return nil, fmt.Errorf("nn: checkpointing requires a Checkpointable optimizer, %T is not", t.Opt)
	}

	if err := t.setupWorkers(); err != nil {
		return nil, err
	}
	// Flat per-chunk gradient buffers: offsets[i] is param i's start.
	t.offsets = make([]int, len(params)+1)
	for i, p := range params {
		t.offsets[i+1] = t.offsets[i] + p.G.Len()
	}
	maxChunks := (cfg.BatchSize + gradChunk - 1) / gradChunk
	t.chunkG = make([][]float64, maxChunks)
	for i := range t.chunkG {
		t.chunkG[i] = make([]float64, t.offsets[len(params)])
	}
	t.chunkL = make([]float64, maxChunks)

	hist := &History{}
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}
	// The epoch shuffle is the only randomness inside the loop; it runs
	// on a single-word serialisable generator so a checkpoint can carry
	// it (math/rand cannot export its state). The caller's Rng seeds it,
	// preserving the one-seed-drives-everything contract.
	sh := newShuffleRNG(uint64(t.Rng.Int63()))

	best := t.Net.Snapshot()
	bestVal := math.Inf(1)
	sinceBest := 0
	rollbacks := 0 // total diverged epochs; MaxRollbacks aborts on this
	sinceGood := 0 // consecutive rollbacks since the last good epoch
	startEpoch := 0

	// Last good (non-diverged) state to roll back to; initially the
	// untrained network and fresh optimizer.
	lastGoodW := t.Net.Snapshot()
	var lastGoodOpt OptimizerState
	if ckptOpt != nil {
		lastGoodOpt = ckptOpt.State(params)
	}

	if cfg.Checkpoint != nil {
		st, err := cfg.Checkpoint.load()
		if err != nil {
			return nil, err
		}
		if st != nil {
			if err := validateSnapshot("weights", st.Weights, params); err != nil {
				return nil, err
			}
			if err := validateSnapshot("best weights", st.Best, params); err != nil {
				return nil, err
			}
			if !st.Done {
				if err := validateOrder(st.Order, len(train)); err != nil {
					return nil, err
				}
			}
			if st.Done {
				// The previous run finished; its best weights are the
				// result. Restore and return without retraining.
				t.Net.Restore(st.Best)
				h := st.Hist
				return &h, nil
			}
			t.Net.Restore(st.Weights)
			if err := ckptOpt.SetState(params, st.Opt); err != nil {
				return nil, err
			}
			copy(order, st.Order)
			sh.state = st.Shuffle
			best = st.Best
			bestVal = st.BestVal
			sinceBest = st.SinceBest
			hist = &st.Hist
			rollbacks = st.Rollbacks
			startEpoch = st.Epoch
			lastGoodW = t.Net.Snapshot()
			lastGoodOpt = ckptOpt.State(params)
			if cfg.Log != nil {
				fmt.Fprintf(cfg.Log, "resuming from %s at epoch %d\n", cfg.Checkpoint.Path, startEpoch)
			}
		}
	}

	saveCheckpoint := func(nextEpoch int, done bool) error {
		if cfg.Checkpoint == nil {
			return nil
		}
		return cfg.Checkpoint.save(&checkpointState{
			Epoch:     nextEpoch,
			Done:      done,
			Order:     order,
			Weights:   t.Net.Snapshot(),
			Opt:       ckptOpt.State(params),
			Shuffle:   sh.state,
			Best:      best,
			BestVal:   bestVal,
			SinceBest: sinceBest,
			Hist:      *hist,
			Rollbacks: rollbacks,
			W0:        w0,
			W1:        w1,
		})
	}

	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		sh.shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, len(order))
			batch := order[start:end]
			nChunks := (len(batch) + gradChunk - 1) / gradChunk
			t.syncReplicas()
			t.pool.Run(nChunks, func(worker, k int) {
				net, ps, gb := t.nets[worker], t.netParams[worker], t.gbuf[worker]
				zeroGrads(ps)
				lo := k * gradChunk
				hi := min(lo+gradChunk, len(batch))
				loss := 0.0
				for _, ix := range batch[lo:hi] {
					e := train[ix]
					p := net.Forward(e.X, true).Data()[0]
					loss += t.Loss.Loss(p, e.Y)
					gb.Data()[0] = t.Loss.GradValue(p, e.Y)
					net.Backward(gb)
				}
				t.chunkL[k] = loss
				buf := t.chunkG[k]
				for pi, pp := range ps {
					copy(buf[t.offsets[pi]:t.offsets[pi+1]], pp.G.Data())
				}
			})
			// Chunk-ordered reduction into the master gradients: the
			// summation order is fixed by the batch layout alone, so any
			// worker count yields bit-identical results.
			zeroGrads(params)
			for k := 0; k < nChunks; k++ {
				epochLoss += t.chunkL[k]
				buf := t.chunkG[k]
				for pi, pp := range params {
					gd := pp.G.Data()
					for i, v := range buf[t.offsets[pi]:t.offsets[pi+1]] {
						gd[i] += v
					}
				}
			}
			if cfg.MaxGradNorm > 0 {
				ClipGradNorm(params, cfg.MaxGradNorm*float64(end-start))
			}
			t.Opt.Step(params, 1/float64(end-start))
		}
		epochLoss /= float64(len(train))
		hist.TrainLoss = append(hist.TrainLoss, epochLoss)

		vl := t.Evaluate(val)
		hist.ValLoss = append(hist.ValLoss, vl)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %3d: train %.4f  val %.4f\n", epoch, epochLoss, vl)
		}

		if diverged(epochLoss, cfg.MaxLoss) || diverged(vl, cfg.MaxLoss) {
			rollbacks++
			sinceGood++
			hist.Rollbacks++
			if rollbacks > cfg.MaxRollbacks {
				return nil, &DivergedError{
					Epoch: epoch, Rollbacks: rollbacks,
					TrainLoss: epochLoss, ValLoss: vl,
				}
			}
			// Roll back to the last good snapshot and back off the
			// learning rate before trying again. Restoring the
			// optimizer state resurrects its pre-backoff learning rate,
			// so the backoff is re-applied cumulatively — once per
			// rollback since the last good epoch.
			t.Net.Restore(lastGoodW)
			if ckptOpt != nil {
				if err := ckptOpt.SetState(params, lastGoodOpt); err != nil {
					return nil, err
				}
			}
			if sc, ok := t.Opt.(LRScaler); ok {
				sc.ScaleLR(math.Pow(rollbackLRFactor, float64(sinceGood)))
			}
			if cfg.Log != nil {
				fmt.Fprintf(cfg.Log, "epoch %3d: diverged (train %g, val %g) — rolled back, lr ×%g (%d/%d)\n",
					epoch, epochLoss, vl, rollbackLRFactor, rollbacks, cfg.MaxRollbacks)
			}
			continue
		}

		// vl is finite here (a NaN validation loss takes the divergence
		// path above), so the strict comparison cannot silently treat
		// NaN as "no improvement".
		if vl < bestVal-1e-9 {
			bestVal = vl
			best = t.Net.Snapshot()
			hist.BestEpoch = epoch
			sinceBest = 0
		} else {
			sinceBest++
			if sinceBest >= cfg.Patience {
				hist.Stopped = true
				break
			}
		}
		sinceGood = 0
		lastGoodW = t.Net.Snapshot()
		if ckptOpt != nil {
			lastGoodOpt = ckptOpt.State(params)
		}
		if cfg.Checkpoint != nil && (epoch+1)%cfg.Checkpoint.every() == 0 {
			if err := saveCheckpoint(epoch+1, false); err != nil {
				return nil, err
			}
		}
		if cfg.AfterEpoch != nil {
			if err := cfg.AfterEpoch(epoch, epochLoss, vl); err != nil {
				return nil, err
			}
		}
	}
	t.Net.Restore(best)
	if err := saveCheckpoint(cfg.Epochs, true); err != nil {
		return nil, err
	}
	return hist, nil
}

// diverged reports a loss value the guard must not accept: non-finite
// always; above the absolute bound when one is configured (maxLoss>0).
func diverged(loss, maxLoss float64) bool {
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		return true
	}
	return maxLoss > 0 && loss > maxLoss
}

// Evaluate returns the mean weighted loss over a set (0 for empty).
// The sum is always accumulated in evalChunk-sized partials reduced in
// chunk order, and the chunks fan out across the trainer's worker pool
// when one is configured — so serial and parallel evaluation are
// bit-identical.
func (t *Trainer) Evaluate(set []Example) float64 {
	if len(set) == 0 {
		return 0
	}
	nChunks := (len(set) + evalChunk - 1) / evalChunk
	if cap(t.evalPart) >= nChunks {
		t.evalPart = t.evalPart[:nChunks]
	} else {
		t.evalPart = make([]float64, nChunks)
	}
	part := t.evalPart
	if len(t.nets) > 1 {
		t.syncReplicas()
		t.pool.Run(nChunks, func(worker, k int) {
			part[k] = t.evalChunkLoss(t.nets[worker], set, k)
		})
	} else {
		for k := 0; k < nChunks; k++ {
			part[k] = t.evalChunkLoss(t.Net, set, k)
		}
	}
	s := 0.0
	for _, v := range part {
		s += v
	}
	return s / float64(len(set))
}

// evalChunkLoss sums the weighted loss of one evalChunk-sized slice.
func (t *Trainer) evalChunkLoss(net *Network, set []Example, k int) float64 {
	lo := k * evalChunk
	hi := min(lo+evalChunk, len(set))
	s := 0.0
	for _, e := range set[lo:hi] {
		s += t.Loss.Loss(net.Predict(e.X), e.Y)
	}
	return s
}

// Score runs the network over a set and tallies a confusion matrix at
// the given threshold.
func Score(net *Network, set []Example, thr float64) Confusion {
	var c Confusion
	for i := range set {
		c.AddThreshold(net.Predict(set[i].X), set[i].Y, thr)
	}
	return c
}

// ClipGradNorm scales all gradients down so their global L2 norm does
// not exceed maxNorm.
func ClipGradNorm(params []*Param, maxNorm float64) {
	if maxNorm <= 0 {
		return
	}
	total := 0.0
	for _, p := range params {
		for _, g := range p.G.Data() {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm <= maxNorm {
		return
	}
	scale := maxNorm / norm
	for _, p := range params {
		p.G.Scale(scale)
	}
}
