package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// GRU is a sequence-to-one gated recurrent unit: it consumes a
// [T × C] window and emits the final hidden state [H]. Gates are
// ordered update (z), reset (r), candidate (n), following the
// standard formulation
//
//	z = σ(Wz·x + Uz·h + bz)
//	r = σ(Wr·x + Ur·h + br)
//	n = tanh(Wn·x + r ⊙ (Un·h) + bn)
//	h' = (1−z) ⊙ n + z ⊙ h
//
// Set Reverse to run the sequence backwards (the building block of
// the bidirectional model that reproduces the CNN-BiGRU of Kiran et
// al. 2024, the strongest Table I reference).
type GRU struct {
	InCh, Hidden int
	Reverse      bool
	Wx           *Param // [3H × C]
	Wh           *Param // [3H × H]
	Bias         *Param // [3H]

	xs             *tensor.Tensor
	hPrev          [][]float64
	gz, gr, gn, uh [][]float64 // gate activations and Un·h cache
}

// NewGRU returns a Glorot-initialised GRU.
func NewGRU(inCh, hidden int, reverse bool, rng *rand.Rand) *GRU {
	g := &GRU{
		InCh:    inCh,
		Hidden:  hidden,
		Reverse: reverse,
		Wx:      newParam("gru.wx", 3*hidden, inCh),
		Wh:      newParam("gru.wh", 3*hidden, hidden),
		Bias:    newParam("gru.b", 3*hidden),
	}
	glorotInit(g.Wx.W, inCh, hidden, rng)
	glorotInit(g.Wh.W, hidden, hidden, rng)
	return g
}

// NewBiGRU returns a bidirectional GRU — a forward and a backward
// pass over the same window, concatenated to [2H].
func NewBiGRU(inCh, hidden int, rng *rand.Rand) *Parallel {
	return NewParallel(
		NewGRU(inCh, hidden, false, rng),
		NewGRU(inCh, hidden, true, rng),
	)
}

// Name implements Layer.
func (g *GRU) Name() string {
	dir := "fwd"
	if g.Reverse {
		dir = "bwd"
	}
	return fmt.Sprintf("gru-%s(%d→%d)", dir, g.InCh, g.Hidden)
}

// Params implements Layer.
func (g *GRU) Params() []*Param { return []*Param{g.Wx, g.Wh, g.Bias} }

// OutShape implements Layer.
func (g *GRU) OutShape(in []int) ([]int, error) {
	if len(in) != 2 || in[1] != g.InCh {
		return nil, fmt.Errorf("nn: %s cannot take input %v", g.Name(), in)
	}
	return []int{g.Hidden}, nil
}

// step returns the source row index for logical timestep t.
func (g *GRU) step(t, T int) int {
	if g.Reverse {
		return T - 1 - t
	}
	return t
}

// Forward implements Layer.
//
//fallvet:cold recurrent baseline layer (paper comparison): allocates per step by design, never part of the zero-alloc CNN deployment
func (g *GRU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 2 || x.Dim(1) != g.InCh {
		panic(fmt.Sprintf("nn: %s got shape %v", g.Name(), x.Shape()))
	}
	T := x.Dim(0)
	H := g.Hidden
	h := make([]float64, H)
	if train {
		g.xs = x
		g.hPrev = make([][]float64, T)
		g.gz = make([][]float64, T)
		g.gr = make([][]float64, T)
		g.gn = make([][]float64, T)
		g.uh = make([][]float64, T)
	}
	xd := x.Data()
	wx, wh, b := g.Wx.W.Data(), g.Wh.W.Data(), g.Bias.W.Data()
	z := make([]float64, 3*H)
	uh := make([]float64, H)
	for t := 0; t < T; t++ {
		src := g.step(t, T)
		xt := xd[src*g.InCh : (src+1)*g.InCh]
		for row := 0; row < 3*H; row++ {
			s := b[row]
			rowX := wx[row*g.InCh : (row+1)*g.InCh]
			for j, v := range xt {
				s += rowX[j] * v
			}
			z[row] = s
		}
		// Wh·h split: z and r rows add Uh·h directly; n rows cache
		// Un·h for the reset-gated product.
		for row := 0; row < 2*H; row++ {
			rowH := wh[row*H : (row+1)*H]
			s := 0.0
			for j, v := range h {
				s += rowH[j] * v
			}
			z[row] += s
		}
		for j := 0; j < H; j++ {
			rowH := wh[(2*H+j)*H : (2*H+j+1)*H]
			s := 0.0
			for k, v := range h {
				s += rowH[k] * v
			}
			uh[j] = s
		}
		if train {
			g.hPrev[t] = append([]float64(nil), h...)
			g.gz[t] = make([]float64, H)
			g.gr[t] = make([]float64, H)
			g.gn[t] = make([]float64, H)
			g.uh[t] = append([]float64(nil), uh...)
		}
		for j := 0; j < H; j++ {
			zg := sigmoid(z[j])
			rg := sigmoid(z[H+j])
			ng := math.Tanh(z[2*H+j] + rg*uh[j])
			h[j] = (1-zg)*ng + zg*h[j]
			if train {
				g.gz[t][j], g.gr[t][j], g.gn[t][j] = zg, rg, ng
			}
		}
	}
	return tensor.FromSlice(append([]float64(nil), h...), H)
}

// Backward implements Layer.
//
//fallvet:cold recurrent baseline layer (paper comparison): allocates per step by design, never part of the zero-alloc CNN deployment
func (g *GRU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	H := g.Hidden
	checkShape(g.Name()+" grad", grad.Shape(), []int{H})
	T := g.xs.Dim(0)
	xd := g.xs.Data()
	wx, wh := g.Wx.W.Data(), g.Wh.W.Data()
	dwx, dwh, db := g.Wx.G.Data(), g.Wh.G.Data(), g.Bias.G.Data()

	dh := append([]float64(nil), grad.Data()...)
	dx := tensor.New(T, g.InCh)
	dxd := dx.Data()
	dz := make([]float64, 3*H)
	duh := make([]float64, H)

	for t := T - 1; t >= 0; t-- {
		src := g.step(t, T)
		xt := xd[src*g.InCh : (src+1)*g.InCh]
		hp := g.hPrev[t]
		dhNext := make([]float64, H)
		for j := 0; j < H; j++ {
			zg, rg, ng := g.gz[t][j], g.gr[t][j], g.gn[t][j]
			dhj := dh[j]
			// h' = (1−z)·n + z·hp
			dn := dhj * (1 - zg)
			dzg := dhj * (hp[j] - ng)
			dhNext[j] += dhj * zg
			// n = tanh(a), a = zn + r·uh
			da := dn * (1 - ng*ng)
			drg := da * g.uh[t][j]
			duh[j] = da * rg
			dz[j] = dzg * zg * (1 - zg)
			dz[H+j] = drg * rg * (1 - rg)
			dz[2*H+j] = da
		}
		// Propagate through the three weight blocks.
		for row := 0; row < 3*H; row++ {
			gz := dz[row]
			if gz == 0 {
				continue
			}
			db[row] += gz
			rowX := wx[row*g.InCh : (row+1)*g.InCh]
			drowX := dwx[row*g.InCh : (row+1)*g.InCh]
			for j, v := range xt {
				drowX[j] += gz * v
				dxd[src*g.InCh+j] += gz * rowX[j]
			}
		}
		// Uh·h contributions: rows [0,2H) used dz directly; candidate
		// rows used duh (the pre-reset product).
		for row := 0; row < 2*H; row++ {
			gz := dz[row]
			if gz == 0 {
				continue
			}
			rowH := wh[row*H : (row+1)*H]
			drowH := dwh[row*H : (row+1)*H]
			for j := 0; j < H; j++ {
				drowH[j] += gz * hp[j]
				dhNext[j] += gz * rowH[j]
			}
		}
		for j := 0; j < H; j++ {
			gz := duh[j]
			if gz == 0 {
				continue
			}
			rowH := wh[(2*H+j)*H : (2*H+j+1)*H]
			drowH := dwh[(2*H+j)*H : (2*H+j+1)*H]
			for k := 0; k < H; k++ {
				drowH[k] += gz * hp[k]
				dhNext[k] += gz * rowH[k]
			}
		}
		dh = dhNext
	}
	return dx
}
