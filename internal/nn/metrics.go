package nn

import (
	"fmt"
	"math"
)

// Confusion is a binary confusion matrix with the derived metrics the
// paper reports (Accuracy, Precision, Recall, F1 for the falling
// class).
type Confusion struct {
	TP, FP, TN, FN int
	// Invalid counts predictions that carried a non-finite probability
	// and could not be classified. A NaN compares false against any
	// threshold, so before this counter existed such predictions were
	// silently recorded as negatives — inflating TN/FN and hiding a
	// broken scoring path behind plausible-looking metrics.
	Invalid int
}

// Add records one prediction at the 0.5 threshold.
func (c *Confusion) Add(p float64, y int) { c.AddThreshold(p, y, 0.5) }

// AddThreshold records one prediction at a custom decision threshold.
// Non-finite probabilities are counted as Invalid, not as negatives.
func (c *Confusion) AddThreshold(p float64, y int, thr float64) {
	if math.IsNaN(p) || math.IsInf(p, 0) {
		c.Invalid++
		return
	}
	pred := 0
	if p >= thr {
		pred = 1
	}
	switch {
	case pred == 1 && y == 1:
		c.TP++
	case pred == 1 && y == 0:
		c.FP++
	case pred == 0 && y == 0:
		c.TN++
	default:
		c.FN++
	}
}

// Total returns the number of classified predictions. Invalid
// predictions are excluded: the derived metrics describe only what
// the model actually scored.
func (c *Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy returns (TP+TN)/total.
func (c *Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// Precision returns TP/(TP+FP) for the positive class (0 when empty).
func (c *Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), i.e. fall sensitivity.
func (c *Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c *Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the four headline metrics in percent, flagging any
// invalid (non-finite) predictions.
func (c *Confusion) String() string {
	s := fmt.Sprintf("acc=%.2f%% prec=%.2f%% rec=%.2f%% f1=%.2f%%",
		100*c.Accuracy(), 100*c.Precision(), 100*c.Recall(), 100*c.F1())
	if c.Invalid > 0 {
		s += fmt.Sprintf(" invalid=%d", c.Invalid)
	}
	return s
}

// Merge accumulates another confusion matrix into c (for averaging
// fold results by pooling).
func (c *Confusion) Merge(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
	c.Invalid += o.Invalid
}
