package artifact

import (
	"bytes"
	"strings"
	"testing"
)

func mustBundle(t *testing.T, entries map[string][]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBundle(&buf, entries); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testEntries(t *testing.T) map[string][]byte {
	t.Helper()
	return map[string][]byte{
		"primary":  mustWrite(t, "nn-float64", []int{40, 9}, []byte("primary network image bytes")),
		"fallback": mustWrite(t, "nn-float64", []int{40, 2}, []byte("accel-only fallback image")),
	}
}

func TestBundleRoundTrip(t *testing.T) {
	entries := testEntries(t)
	raw := mustBundle(t, entries)
	got, err := ReadBundle(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(got), len(entries))
	}
	for name, img := range entries {
		if !bytes.Equal(got[name], img) {
			t.Fatalf("entry %q does not round-trip", name)
		}
		// Each recovered member must itself be a loadable envelope.
		h, payload, err := Read(bytes.NewReader(got[name]))
		if err != nil {
			t.Fatalf("entry %q: %v", name, err)
		}
		if h.Kind != "nn-float64" || len(payload) == 0 {
			t.Fatalf("entry %q header %+v", name, h)
		}
	}
}

// The bundle image must be byte-identical regardless of map iteration
// order: entries are framed in sorted-name order.
func TestBundleImageDeterministic(t *testing.T) {
	entries := testEntries(t)
	first := mustBundle(t, entries)
	for i := 0; i < 20; i++ {
		rebuilt := map[string][]byte{}
		for name, img := range entries {
			rebuilt[name] = img
		}
		if !bytes.Equal(mustBundle(t, rebuilt), first) {
			t.Fatal("bundle image depends on map iteration order")
		}
	}
}

func TestBundleWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBundle(&buf, nil); err == nil {
		t.Fatal("empty bundle accepted")
	}
	if err := WriteBundle(&buf, map[string][]byte{"": mustWrite(t, "k", nil, nil)}); err == nil {
		t.Fatal("empty entry name accepted")
	}
	long := strings.Repeat("n", MaxEntryNameLen+1)
	if err := WriteBundle(&buf, map[string][]byte{long: mustWrite(t, "k", nil, nil)}); err == nil {
		t.Fatal("oversized entry name accepted")
	}
	// An entry that is not itself a verified envelope must be refused at
	// write time: a bundle can never contain an unverifiable member.
	if err := WriteBundle(&buf, map[string][]byte{"raw": []byte("not an envelope")}); err == nil {
		t.Fatal("non-envelope entry accepted")
	}
	big := map[string][]byte{}
	img := mustWrite(t, "k", nil, nil)
	for i := 0; i <= MaxBundleEntries; i++ {
		big[strings.Repeat("e", i+1)] = img
	}
	if err := WriteBundle(&buf, big); err == nil {
		t.Fatal("oversized bundle accepted")
	}
}

func TestBundleEveryTruncationRejected(t *testing.T) {
	raw := mustBundle(t, testEntries(t))
	for n := 0; n < len(raw); n++ {
		if _, err := ReadBundle(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", n, len(raw))
		}
	}
}

// Every single-bit flip anywhere in the bundle — outer header, entry
// framing, or either model's inner envelope — must be rejected.
func TestBundleEveryBitFlipRejected(t *testing.T) {
	raw := mustBundle(t, testEntries(t))
	for i := 0; i < len(raw); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), raw...)
			mut[i] ^= 1 << bit
			if _, err := ReadBundle(bytes.NewReader(mut)); err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", i, bit)
			}
		}
	}
}

func TestBundleWrongKindRejected(t *testing.T) {
	// A plain (non-bundle) envelope must not parse as a bundle.
	raw := mustWrite(t, "nn-float64", nil, []byte("p"))
	if _, err := ReadBundle(bytes.NewReader(raw)); err == nil {
		t.Fatal("plain envelope accepted as a bundle")
	}
}

// A hand-forged outer envelope with hostile framing must be caught by
// the payload walk even when the outer digest is recomputed to match.
func TestBundleHostileFraming(t *testing.T) {
	frame := func(payload []byte) []byte {
		var buf bytes.Buffer
		if err := Write(&buf, BundleKind, nil, payload); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if _, err := ReadBundle(bytes.NewReader(frame(nil))); err == nil {
		t.Fatal("empty payload accepted")
	}
	// Zero entry count.
	if _, err := ReadBundle(bytes.NewReader(frame([]byte{0, 0}))); err == nil {
		t.Fatal("zero entry count accepted")
	}
	// Count claims more entries than the payload holds.
	if _, err := ReadBundle(bytes.NewReader(frame([]byte{0xFF, 0xFF}))); err == nil {
		t.Fatal("hostile entry count accepted")
	}
	// One entry whose declared image length runs past the payload.
	hostile := []byte{1, 0, 1, 0, 'a', 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := ReadBundle(bytes.NewReader(frame(hostile))); err == nil {
		t.Fatal("hostile image length accepted")
	}
	// Duplicate entry names.
	img := mustWrite(t, "k", nil, nil)
	var dup bytes.Buffer
	dup.Write([]byte{2, 0})
	for i := 0; i < 2; i++ {
		dup.Write([]byte{1, 0, 'a'})
		dup.Write([]byte{byte(len(img)), 0, 0, 0})
		dup.Write(img)
	}
	if _, err := ReadBundle(bytes.NewReader(frame(dup.Bytes()))); err == nil {
		t.Fatal("duplicate entry names accepted")
	}
	// Trailing bytes after the last entry.
	var trail bytes.Buffer
	trail.Write([]byte{1, 0, 1, 0, 'a'})
	trail.Write([]byte{byte(len(img)), 0, 0, 0})
	trail.Write(img)
	trail.WriteByte(0xCC)
	if _, err := ReadBundle(bytes.NewReader(frame(trail.Bytes()))); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
