package artifact

import (
	"fmt"

	"repro/internal/tensor"
)

// DType identifies the scalar width of an envelope payload or a
// pipeline state image. Version-1 envelopes predate the field; readers
// treat them as DTypeF64, which is what every pre-generic writer
// produced.
type DType uint8

const (
	// DTypeF64 is the float64 training/reference width.
	DTypeF64 DType = 0
	// DTypeF32 is the lowered float32 inference width.
	DTypeF32 DType = 1
)

// String names the width for error messages and results headers.
func (d DType) String() string {
	switch d {
	case DTypeF64:
		return "f64"
	case DTypeF32:
		return "f32"
	}
	return fmt.Sprintf("dtype(%d)", uint8(d))
}

// Valid reports whether d is a width this build understands.
func (d DType) Valid() bool { return d == DTypeF64 || d == DTypeF32 }

// DTypeOf returns the DType tag for scalar type S.
func DTypeOf[S tensor.Scalar]() DType {
	if tensor.Is64[S]() {
		return DTypeF64
	}
	return DTypeF32
}
