package artifact

import (
	"encoding/binary"
	"fmt"
	"math"
)

// State codec: tiny append/consume helpers for the runtime-state
// snapshots the serving layer takes of a live detector pipeline (DESIGN
// §11). The encoding is deliberately dumb — fixed-width little-endian
// fields in declaration order, no tags, no reflection — because the
// decoder on the other side is the same build of the same struct and
// the envelope (Write/Read) already carries versioning and a SHA-256
// digest. The StateReader keeps a sticky error so decode call sites
// stay linear: consume every field, check Err() once at the end; a
// truncated or oversized payload surfaces as an error, never a panic
// or a partially-applied restore.

// AppendUint64 appends v little-endian.
func AppendUint64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

// AppendInt appends a signed integer as its two's-complement uint64.
func AppendInt(dst []byte, v int) []byte {
	return AppendUint64(dst, uint64(int64(v)))
}

// AppendInt64 appends a signed 64-bit integer.
func AppendInt64(dst []byte, v int64) []byte {
	return AppendUint64(dst, uint64(v))
}

// AppendFloat appends the IEEE-754 bit pattern of v.
func AppendFloat(dst []byte, v float64) []byte {
	return AppendUint64(dst, math.Float64bits(v))
}

// AppendBool appends one byte, 0 or 1.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// StateReader consumes fields appended by the Append helpers. The
// first malformed read latches an error; every later read returns the
// zero value, so a decode sequence can run to completion and report
// the single sticky error.
type StateReader struct {
	data []byte
	pos  int
	err  error
}

// NewStateReader wraps a snapshot payload for decoding.
func NewStateReader(data []byte) *StateReader {
	return &StateReader{data: data}
}

func (r *StateReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// Uint64 consumes one little-endian uint64.
func (r *StateReader) Uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.data)-r.pos < 8 {
		r.fail("artifact: truncated state: need 8 bytes at offset %d, have %d", r.pos, len(r.data)-r.pos)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v
}

// Int consumes a signed integer written by AppendInt.
func (r *StateReader) Int() int { return int(int64(r.Uint64())) }

// Int64 consumes a signed 64-bit integer.
func (r *StateReader) Int64() int64 { return int64(r.Uint64()) }

// Float consumes an IEEE-754 float64.
func (r *StateReader) Float() float64 { return math.Float64frombits(r.Uint64()) }

// Bool consumes one byte; any value other than 0 or 1 is an error.
func (r *StateReader) Bool() bool {
	if r.err != nil {
		return false
	}
	if len(r.data)-r.pos < 1 {
		r.fail("artifact: truncated state: need 1 byte at offset %d", r.pos)
		return false
	}
	b := r.data[r.pos]
	r.pos++
	if b > 1 {
		r.fail("artifact: bad bool byte %d at offset %d", b, r.pos-1)
		return false
	}
	return b == 1
}

// Err returns the sticky decode error, if any.
func (r *StateReader) Err() error { return r.err }

// Close verifies the payload was consumed exactly: trailing bytes mean
// the writer and reader disagree about the state layout.
func (r *StateReader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.data) {
		return fmt.Errorf("artifact: %d unconsumed state bytes (layout mismatch)", len(r.data)-r.pos)
	}
	return nil
}
