// Package artifact frames every model image this repository writes to
// disk in a verified envelope: a fixed magic, a format version, a kind
// tag (which model family the payload encodes), the input shape the
// model expects, the payload itself, and a SHA-256 digest over
// everything that precedes it. A deployable fall-detection model is a
// safety-critical artifact — a truncated copy, a bit flip in transit
// or a file of the wrong kind must fail loudly at load time, never
// reach the airbag controller as a silently-misfiring network.
//
// The envelope is decoded with explicit bounds checks before any
// allocation is sized from untrusted input, and the digest is verified
// before the payload is handed to any decoder, so arbitrary bytes can
// never drive gob (or any other payload codec) with corrupted input.
package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
)

// Magic opens every envelope; Version is the current format revision.
//
// Version history:
//
//	1 — magic | version | kind | shape | payload | sha256. Everything a
//	    version-1 writer produced held float64 state, so readers treat
//	    these as DTypeF64.
//	2 — a dtype byte follows the version, naming the scalar width of
//	    the payload's numeric state. Version-1 envelopes still load.
const (
	Magic   = "FDMA" // Fall-Detection Model Artifact
	Version = 2
)

// Limits keep a corrupt or hostile length field from driving a huge
// allocation: an envelope is rejected before any payload-sized buffer
// is allocated beyond these bounds.
const (
	// MaxBytes caps the whole envelope. The paper's deployable CNN is
	// ~67 KiB quantized and <1 MiB in float64; 64 MiB leaves room for
	// any model this repository can express.
	MaxBytes = 64 << 20
	// MaxKindLen caps the kind tag.
	MaxKindLen = 128
	// MaxShapeDims caps the input-shape rank.
	MaxShapeDims = 8
	// MaxShapeDim caps any single input dimension.
	MaxShapeDim = 1 << 24
)

// Header identifies a decoded envelope.
type Header struct {
	Version uint32
	// DType is the scalar width of the payload's numeric state.
	// Version-1 envelopes predate the field and always decode as
	// DTypeF64.
	DType DType
	// Kind tags the payload codec/family, e.g. "qnet-int8" or
	// "nn-float64".
	Kind string
	// Shape is the input shape the model expects ([T, C] for the
	// paper's windows); empty when the writer did not declare one.
	Shape []int
}

// digestSize is the SHA-256 trailer length.
const digestSize = sha256.Size

// Write frames payload in a verified envelope. Layout (all integers
// little-endian):
//
//	magic[4] | version u32 | dtype u8 | kindLen u16 | kind |
//	shapeLen u16 | dims i32... | payloadLen u32 | payload | sha256[32]
//
// The digest covers every byte before it. Write stamps DTypeF64 — the
// width of every envelope this repository wrote before the field
// existed; use WriteDType for lowered payloads.
func Write(w io.Writer, kind string, shape []int, payload []byte) error {
	return WriteDType(w, kind, shape, DTypeF64, payload)
}

// WriteDType is Write with an explicit payload scalar width.
func WriteDType(w io.Writer, kind string, shape []int, dt DType, payload []byte) error {
	env, err := AppendEnvelopeDType(nil, kind, shape, dt, payload)
	if err != nil {
		return err
	}
	_, err = w.Write(env)
	return err
}

// AppendEnvelope appends the framed envelope to dst and returns the
// extended slice — the allocation-free form of Write for callers that
// snapshot periodically and reuse a buffer (serve sessions checkpoint
// every stride; a fresh ~3 KiB envelope per checkpoint was the last
// steady-state allocation on that path). dst may be nil. The envelope
// is stamped DTypeF64; see AppendEnvelopeDType.
func AppendEnvelope(dst []byte, kind string, shape []int, payload []byte) ([]byte, error) {
	return AppendEnvelopeDType(dst, kind, shape, DTypeF64, payload)
}

// AppendEnvelopeDType is AppendEnvelope with an explicit payload
// scalar width in the header.
func AppendEnvelopeDType(dst []byte, kind string, shape []int, dt DType, payload []byte) ([]byte, error) {
	if !dt.Valid() {
		return dst, fmt.Errorf("artifact: cannot write %s envelope", dt)
	}
	if len(kind) == 0 || len(kind) > MaxKindLen {
		return dst, fmt.Errorf("artifact: kind length %d outside (0, %d]", len(kind), MaxKindLen)
	}
	if len(shape) > MaxShapeDims {
		return dst, fmt.Errorf("artifact: shape rank %d exceeds %d", len(shape), MaxShapeDims)
	}
	for _, d := range shape {
		if d <= 0 || d > MaxShapeDim {
			return dst, fmt.Errorf("artifact: shape dimension %d outside (0, %d]", d, MaxShapeDim)
		}
	}
	need := len(Magic) + 4 + 1 + 2 + len(kind) + 2 + 4*len(shape) + 4 + len(payload) + digestSize
	if need > MaxBytes {
		return dst, fmt.Errorf("artifact: envelope of %d bytes exceeds MaxBytes %d", need, MaxBytes)
	}
	start := len(dst)
	le := binary.LittleEndian
	dst = append(dst, Magic...)
	dst = le.AppendUint32(dst, Version)
	dst = append(dst, byte(dt))
	dst = le.AppendUint16(dst, uint16(len(kind)))
	dst = append(dst, kind...)
	dst = le.AppendUint16(dst, uint16(len(shape)))
	for _, d := range shape {
		dst = le.AppendUint32(dst, uint32(d))
	}
	dst = le.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	sum := sha256.Sum256(dst[start:])
	return append(dst, sum[:]...), nil
}

// Read decodes and verifies an envelope: magic, version, bounds on
// every length field, and the SHA-256 digest. Only after the digest
// matches is the payload returned — any single truncation or bit flip
// anywhere in the stream yields a non-nil error and a nil payload.
func Read(r io.Reader) (Header, []byte, error) {
	var h Header
	raw, err := io.ReadAll(io.LimitReader(r, MaxBytes+1))
	if err != nil {
		return h, nil, fmt.Errorf("artifact: reading envelope: %w", err)
	}
	if len(raw) > MaxBytes {
		return h, nil, fmt.Errorf("artifact: envelope exceeds MaxBytes %d", MaxBytes)
	}
	le := binary.LittleEndian
	pos := 0
	need := func(n int, what string) error {
		if n < 0 || len(raw)-pos < n {
			return fmt.Errorf("artifact: truncated envelope: need %d bytes for %s, have %d", n, what, len(raw)-pos)
		}
		return nil
	}
	if err := need(len(Magic), "magic"); err != nil {
		return h, nil, err
	}
	if string(raw[:len(Magic)]) != Magic {
		return h, nil, fmt.Errorf("artifact: bad magic %q (not a model artifact)", raw[:len(Magic)])
	}
	pos += len(Magic)
	if err := need(4, "version"); err != nil {
		return h, nil, err
	}
	h.Version = le.Uint32(raw[pos:])
	pos += 4
	if h.Version == 0 || h.Version > Version {
		return h, nil, fmt.Errorf("artifact: unsupported format version %d (this build reads ≤ %d)", h.Version, Version)
	}
	h.DType = DTypeF64
	if h.Version >= 2 {
		if err := need(1, "dtype"); err != nil {
			return h, nil, err
		}
		h.DType = DType(raw[pos])
		pos++
		if !h.DType.Valid() {
			return h, nil, fmt.Errorf("artifact: unknown payload %s", h.DType)
		}
	}
	if err := need(2, "kind length"); err != nil {
		return h, nil, err
	}
	kindLen := int(le.Uint16(raw[pos:]))
	pos += 2
	if kindLen == 0 || kindLen > MaxKindLen {
		return h, nil, fmt.Errorf("artifact: kind length %d outside (0, %d]", kindLen, MaxKindLen)
	}
	if err := need(kindLen, "kind"); err != nil {
		return h, nil, err
	}
	h.Kind = string(raw[pos : pos+kindLen])
	pos += kindLen
	if err := need(2, "shape rank"); err != nil {
		return h, nil, err
	}
	rank := int(le.Uint16(raw[pos:]))
	pos += 2
	if rank > MaxShapeDims {
		return h, nil, fmt.Errorf("artifact: shape rank %d exceeds %d", rank, MaxShapeDims)
	}
	if err := need(4*rank, "shape"); err != nil {
		return h, nil, err
	}
	h.Shape = make([]int, rank)
	for i := range h.Shape {
		d := int(le.Uint32(raw[pos:]))
		pos += 4
		if d <= 0 || d > MaxShapeDim {
			return h, nil, fmt.Errorf("artifact: shape dimension %d outside (0, %d]", d, MaxShapeDim)
		}
		h.Shape[i] = d
	}
	if err := need(4, "payload length"); err != nil {
		return h, nil, err
	}
	payloadLen := int(le.Uint32(raw[pos:]))
	pos += 4
	if err := need(payloadLen+digestSize, "payload and digest"); err != nil {
		return h, nil, err
	}
	if len(raw)-pos != payloadLen+digestSize {
		return h, nil, fmt.Errorf("artifact: %d trailing bytes after digest", len(raw)-pos-payloadLen-digestSize)
	}
	payload := raw[pos : pos+payloadLen]
	pos += payloadLen
	want := raw[pos:]
	sum := sha256.Sum256(raw[:pos])
	if !bytes.Equal(sum[:], want) {
		return h, nil, fmt.Errorf("artifact: SHA-256 digest mismatch (corrupt or tampered image)")
	}
	// Return a copy so the caller cannot alias the (verified) raw buffer.
	return h, append([]byte(nil), payload...), nil
}

// CheckKind is a load-time helper: it rejects an envelope whose kind
// tag differs from what the caller expects, naming both.
func CheckKind(h Header, want string) error {
	if h.Kind != want {
		return fmt.Errorf("artifact: image holds %q, loader expects %q", h.Kind, want)
	}
	return nil
}
