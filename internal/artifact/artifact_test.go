package artifact

import (
	"bytes"
	"strings"
	"testing"
)

func mustWrite(t *testing.T, kind string, shape []int, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, kind, shape, payload); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	payload := []byte("the quantized network bytes")
	raw := mustWrite(t, "qnet-int8", []int{40, 9}, payload)
	h, got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != Version || h.Kind != "qnet-int8" {
		t.Fatalf("header %+v", h)
	}
	if len(h.Shape) != 2 || h.Shape[0] != 40 || h.Shape[1] != 9 {
		t.Fatalf("shape %v", h.Shape)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %q", got)
	}
	if err := CheckKind(h, "qnet-int8"); err != nil {
		t.Fatal(err)
	}
	if err := CheckKind(h, "nn-float64"); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestEmptyShapeAndPayload(t *testing.T) {
	raw := mustWrite(t, "k", nil, nil)
	h, got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Shape) != 0 || len(got) != 0 {
		t.Fatalf("h=%+v payload=%v", h, got)
	}
}

// Every possible truncation of a valid envelope must be rejected.
func TestEveryTruncationRejected(t *testing.T) {
	raw := mustWrite(t, "qnet-int8", []int{40, 9}, []byte("payload bytes here"))
	for n := 0; n < len(raw); n++ {
		if _, _, err := Read(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", n, len(raw))
		}
	}
}

// Every possible single bit flip must be rejected: either a structural
// bounds error or the digest mismatch catches it.
func TestEveryBitFlipRejected(t *testing.T) {
	raw := mustWrite(t, "qnet-int8", []int{40, 9}, []byte("payload bytes here"))
	for i := 0; i < len(raw); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), raw...)
			mut[i] ^= 1 << bit
			if _, _, err := Read(bytes.NewReader(mut)); err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", i, bit)
			}
		}
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	raw := mustWrite(t, "k", nil, []byte("p"))
	raw = append(raw, 0xFF)
	if _, _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, "", nil, nil); err == nil {
		t.Fatal("empty kind accepted")
	}
	if err := Write(&buf, strings.Repeat("k", MaxKindLen+1), nil, nil); err == nil {
		t.Fatal("oversized kind accepted")
	}
	if err := Write(&buf, "k", []int{0}, nil); err == nil {
		t.Fatal("zero dimension accepted")
	}
	if err := Write(&buf, "k", []int{-3}, nil); err == nil {
		t.Fatal("negative dimension accepted")
	}
	if err := Write(&buf, "k", make([]int, MaxShapeDims+1), nil); err == nil {
		t.Fatal("oversized rank accepted")
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	if _, _, err := Read(strings.NewReader("not a model artifact at all")); err == nil {
		t.Fatal("bad magic accepted")
	}
	raw := mustWrite(t, "k", nil, nil)
	// Patch the version to an unsupported value; the digest check would
	// also fire, but the version error must come first so the message
	// is diagnosable.
	mut := append([]byte(nil), raw...)
	mut[4] = 99
	_, _, err := Read(bytes.NewReader(mut))
	if err == nil {
		t.Fatal("future version accepted")
	}
	if !strings.Contains(err.Error(), "version") {
		t.Fatalf("version error not diagnosable: %v", err)
	}
}

// A hostile payload-length field must not drive a huge allocation: the
// declared length is bounds-checked against the bytes actually present.
func TestHostileLengthFields(t *testing.T) {
	raw := mustWrite(t, "k", nil, []byte("p"))
	mut := append([]byte(nil), raw...)
	// payload length lives after magic(4)+version(4)+kindLen(2)+kind(1)+rank(2).
	off := 4 + 4 + 2 + 1 + 2
	for _, v := range []byte{0xFF, 0x7F} {
		for i := 0; i < 4; i++ {
			mut[off+i] = v
		}
		if _, _, err := Read(bytes.NewReader(mut)); err == nil {
			t.Fatal("hostile payload length accepted")
		}
	}
}
