package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"strings"
	"testing"
)

// v1Envelope frames payload exactly as every pre-dtype writer did:
// magic | version=1 | kind | shape | payload | sha256 — no dtype byte.
// It pins the historical layout byte for byte, independent of the
// current writer.
func v1Envelope(kind string, shape []int, payload []byte) []byte {
	le := binary.LittleEndian
	raw := []byte(Magic)
	raw = le.AppendUint32(raw, 1)
	raw = le.AppendUint16(raw, uint16(len(kind)))
	raw = append(raw, kind...)
	raw = le.AppendUint16(raw, uint16(len(shape)))
	for _, d := range shape {
		raw = le.AppendUint32(raw, uint32(d))
	}
	raw = le.AppendUint32(raw, uint32(len(payload)))
	raw = append(raw, payload...)
	sum := sha256.Sum256(raw)
	return append(raw, sum[:]...)
}

// A pre-bump (version-1) envelope must still load, and must decode as
// float64 state — the width every version-1 writer produced.
func TestVersion1LoadsAsFloat64(t *testing.T) {
	payload := []byte("pre-bump float64 weights")
	raw := v1Envelope("nn-float64", []int{40, 9}, payload)
	h, got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != 1 {
		t.Fatalf("version %d, want 1", h.Version)
	}
	if h.DType != DTypeF64 {
		t.Fatalf("v1 envelope decoded as %s, want %s", h.DType, DTypeF64)
	}
	if h.Kind != "nn-float64" || len(h.Shape) != 2 || h.Shape[0] != 40 || h.Shape[1] != 9 {
		t.Fatalf("header %+v", h)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %q", got)
	}
}

// Chaos over the legacy framing: every truncation and every single bit
// flip of a version-1 envelope must yield a structured error, exactly
// as for the current version.
func TestVersion1ChaosRejected(t *testing.T) {
	raw := v1Envelope("qnet-int8", []int{40, 9}, []byte("legacy payload bytes"))
	for n := 0; n < len(raw); n++ {
		if _, _, err := Read(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("v1 truncation to %d/%d bytes accepted", n, len(raw))
		}
	}
	for i := 0; i < len(raw); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), raw...)
			mut[i] ^= 1 << bit
			if _, _, err := Read(bytes.NewReader(mut)); err == nil {
				t.Fatalf("v1 bit flip at byte %d bit %d accepted", i, bit)
			}
		}
	}
}

// The dtype byte must round-trip for both widths and reject everything
// else, at write and at read.
func TestDTypeHeader(t *testing.T) {
	for _, dt := range []DType{DTypeF64, DTypeF32} {
		var buf bytes.Buffer
		if err := WriteDType(&buf, "k", []int{3}, dt, []byte("p")); err != nil {
			t.Fatal(err)
		}
		h, _, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if h.Version != Version || h.DType != dt {
			t.Fatalf("round-trip header %+v, want dtype %s", h, dt)
		}
	}
	var buf bytes.Buffer
	if err := WriteDType(&buf, "k", nil, DType(7), nil); err == nil {
		t.Fatal("invalid dtype written")
	}
	// A v2 envelope whose dtype byte is garbage must fail with a
	// diagnosable dtype error, before the digest check muddies it.
	raw := mustWrite(t, "k", nil, []byte("p"))
	mut := append([]byte(nil), raw...)
	mut[8] = 99 // dtype byte sits right after magic(4)+version(4)
	_, _, err := Read(bytes.NewReader(mut))
	if err == nil {
		t.Fatal("garbage dtype accepted")
	}
	if !strings.Contains(err.Error(), "dtype") {
		t.Fatalf("dtype error not diagnosable: %v", err)
	}
}
