package artifact

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// A bundle frames several named model images in one file, so a
// detector cascade's primary and fallback travel — and are verified —
// together. The design is envelopes all the way down: the bundle is
// itself a standard verified envelope (kind BundleKind) whose payload
// is a sequence of named entries, and every entry's bytes are in turn
// a complete inner envelope with its own kind, shape and SHA-256
// digest. Corruption anywhere is therefore caught twice — the outer
// digest covers the whole file, and each model's own digest covers its
// image — and a loader that pulls one entry out re-verifies exactly
// the bytes it uses.

// BundleKind tags the outer envelope of a multi-model bundle.
const BundleKind = "falldet-bundle"

// MaxBundleEntries caps the entry count so a corrupt count field
// cannot drive allocation.
const MaxBundleEntries = 64

// MaxEntryNameLen caps one entry name.
const MaxEntryNameLen = 128

// WriteBundle frames the named entries as one verified bundle. Each
// entry value must itself be a complete envelope produced by Write —
// this is checked, so a bundle can never contain an unverifiable
// member. Entries are written in sorted-name order, making the bundle
// image deterministic regardless of map iteration.
func WriteBundle(w io.Writer, entries map[string][]byte) error {
	if len(entries) == 0 {
		return fmt.Errorf("artifact: empty bundle")
	}
	if len(entries) > MaxBundleEntries {
		return fmt.Errorf("artifact: %d bundle entries exceed %d", len(entries), MaxBundleEntries)
	}
	names := make([]string, 0, len(entries))
	//fallvet:ignore determinism keys are sorted below before any ordered use
	for name := range entries {
		if len(name) == 0 || len(name) > MaxEntryNameLen {
			return fmt.Errorf("artifact: bundle entry name length %d outside (0, %d]", len(name), MaxEntryNameLen)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var payload bytes.Buffer
	le := binary.LittleEndian
	var u32 [4]byte
	var u16 [2]byte
	le.PutUint16(u16[:], uint16(len(names)))
	payload.Write(u16[:])
	for _, name := range names {
		img := entries[name]
		if _, _, err := Read(bytes.NewReader(img)); err != nil {
			return fmt.Errorf("artifact: bundle entry %q is not a valid envelope: %w", name, err)
		}
		le.PutUint16(u16[:], uint16(len(name)))
		payload.Write(u16[:])
		payload.WriteString(name)
		le.PutUint32(u32[:], uint32(len(img)))
		payload.Write(u32[:])
		payload.Write(img)
	}
	return Write(w, BundleKind, nil, payload.Bytes())
}

// ReadBundle verifies the outer envelope and splits it into named
// entries, verifying that every entry parses as a complete inner
// envelope before anything is returned — a truncated or bit-flipped
// member fails the whole load, it cannot surface as a short image.
func ReadBundle(r io.Reader) (map[string][]byte, error) {
	h, payload, err := Read(r)
	if err != nil {
		return nil, err
	}
	if err := CheckKind(h, BundleKind); err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	pos := 0
	need := func(n int, what string) error {
		if n < 0 || len(payload)-pos < n {
			return fmt.Errorf("artifact: truncated bundle: need %d bytes for %s, have %d", n, what, len(payload)-pos)
		}
		return nil
	}
	if err := need(2, "entry count"); err != nil {
		return nil, err
	}
	count := int(le.Uint16(payload[pos:]))
	pos += 2
	if count == 0 || count > MaxBundleEntries {
		return nil, fmt.Errorf("artifact: bundle entry count %d outside (0, %d]", count, MaxBundleEntries)
	}
	entries := make(map[string][]byte, count)
	for i := 0; i < count; i++ {
		if err := need(2, "entry name length"); err != nil {
			return nil, err
		}
		nameLen := int(le.Uint16(payload[pos:]))
		pos += 2
		if nameLen == 0 || nameLen > MaxEntryNameLen {
			return nil, fmt.Errorf("artifact: bundle entry name length %d outside (0, %d]", nameLen, MaxEntryNameLen)
		}
		if err := need(nameLen, "entry name"); err != nil {
			return nil, err
		}
		name := string(payload[pos : pos+nameLen])
		pos += nameLen
		if _, dup := entries[name]; dup {
			return nil, fmt.Errorf("artifact: duplicate bundle entry %q", name)
		}
		if err := need(4, "entry length"); err != nil {
			return nil, err
		}
		imgLen := int(le.Uint32(payload[pos:]))
		pos += 4
		if err := need(imgLen, "entry image"); err != nil {
			return nil, err
		}
		img := append([]byte(nil), payload[pos:pos+imgLen]...)
		pos += imgLen
		// Every member must itself verify as a complete envelope: the
		// inner digest is the per-model SHA-256 guarantee.
		if _, _, err := Read(bytes.NewReader(img)); err != nil {
			return nil, fmt.Errorf("artifact: bundle entry %q: %w", name, err)
		}
		entries[name] = img
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("artifact: %d trailing bytes after the last bundle entry", len(payload)-pos)
	}
	return entries, nil
}
