package fault

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/imu"
)

func cleanSample() imu.Sample {
	return imu.Sample{Acc: imu.Vec3{Z: 1}, Gyro: imu.Vec3{X: 10}}
}

// run feeds n clean samples through an injector and returns the
// delivered samples and per-effect counts.
func run(inj Injector, n int) (delivered []imu.Sample, drops, repeats int) {
	inj.Reset()
	for i := 0; i < n; i++ {
		s, eff := inj.Apply(cleanSample())
		switch eff {
		case Drop:
			drops++
		case Repeat:
			repeats++
			delivered = append(delivered, s, s)
		default:
			delivered = append(delivered, s)
		}
	}
	return delivered, drops, repeats
}

func TestDropoutRate(t *testing.T) {
	inj := NewDropout(0.05, 3, 42)
	_, drops, _ := run(inj, 20000)
	frac := float64(drops) / 20000
	if frac < 0.03 || frac > 0.08 {
		t.Fatalf("dropout fraction %.3f far from 0.05 target", frac)
	}
}

func TestDropoutDeterminism(t *testing.T) {
	a := NewDropout(0.1, 4, 7)
	b := NewDropout(0.1, 4, 7)
	for i := 0; i < 1000; i++ {
		_, ea := a.Apply(cleanSample())
		_, eb := b.Apply(cleanSample())
		if ea != eb {
			t.Fatalf("same-seed injectors diverged at sample %d", i)
		}
	}
	// Reset rewinds to the same stream.
	a.Reset()
	c := NewDropout(0.1, 4, 7)
	for i := 0; i < 1000; i++ {
		_, ea := a.Apply(cleanSample())
		_, ec := c.Apply(cleanSample())
		if ea != ec {
			t.Fatalf("Reset did not rewind (sample %d)", i)
		}
	}
}

func TestSaturationClips(t *testing.T) {
	inj := NewSaturation(2, 300)
	s, eff := inj.Apply(imu.Sample{
		Acc:  imu.Vec3{X: 7, Y: -9, Z: 1},
		Gyro: imu.Vec3{X: 1500, Y: -400, Z: 10},
	})
	if eff != Pass {
		t.Fatal("saturation must deliver")
	}
	if s.Acc.X != 2 || s.Acc.Y != -2 || s.Acc.Z != 1 {
		t.Fatalf("acc clip wrong: %+v", s.Acc)
	}
	if s.Gyro.X != 300 || s.Gyro.Y != -300 || s.Gyro.Z != 10 {
		t.Fatalf("gyro clip wrong: %+v", s.Gyro)
	}
}

func TestNoiseZeroMean(t *testing.T) {
	inj := NewNoise(0.1, 10, 3)
	delivered, _, _ := run(inj, 5000)
	var sum float64
	for _, s := range delivered {
		sum += s.Acc.Z - 1
	}
	if m := sum / float64(len(delivered)); math.Abs(m) > 0.01 {
		t.Fatalf("noise mean %.4f not ≈0", m)
	}
}

func TestDriftAccumulates(t *testing.T) {
	inj := NewDrift(0.001, 0)
	delivered, _, _ := run(inj, 100)
	first, last := delivered[0].Acc.Z, delivered[99].Acc.Z
	if last-first < 0.09 {
		t.Fatalf("drift did not accumulate: %g → %g", first, last)
	}
	inj.Reset()
	s, _ := inj.Apply(cleanSample())
	if s.Acc.Z != first {
		t.Fatal("Reset did not clear accumulated drift")
	}
}

func TestStuckFreezesChannel(t *testing.T) {
	inj := NewStuck(imu.AccZ, 1, 5) // always engages
	inj.Reset()
	var frozen float64
	seen := false
	for i := 0; i < 400; i++ {
		in := cleanSample()
		in.Acc.Z = float64(i) // ramp so sticking is visible
		s, _ := inj.Apply(in)
		if s.Acc.Z != in.Acc.Z {
			if !seen {
				frozen, seen = s.Acc.Z, true
			} else if s.Acc.Z != frozen {
				t.Fatalf("stuck channel moved: %g != %g", s.Acc.Z, frozen)
			}
		}
	}
	if !seen {
		t.Fatal("stuck fault never engaged at Engage=1")
	}
	// Engage=0 never sticks.
	off := NewStuck(imu.AccZ, 0, 5)
	for i := 0; i < 400; i++ {
		in := cleanSample()
		in.Acc.Z = float64(i)
		if s, _ := off.Apply(in); s.Acc.Z != in.Acc.Z {
			t.Fatal("stuck fault engaged at Engage=0")
		}
	}
}

func TestNaNBurstEmitsNonFinite(t *testing.T) {
	inj := NewNaNBurst(0.05, 3, 11)
	delivered, _, _ := run(inj, 2000)
	bad := 0
	for _, s := range delivered {
		if math.IsNaN(s.Acc.X) || math.IsInf(s.Acc.X, 0) {
			bad++
		}
	}
	if bad == 0 {
		t.Fatal("no non-finite samples emitted")
	}
	if bad > len(delivered)/2 {
		t.Fatalf("non-finite fraction implausibly high: %d/%d", bad, len(delivered))
	}
}

func TestJitterDropsAndRepeats(t *testing.T) {
	inj := NewJitter(0.1, 0.1, 9)
	delivered, drops, repeats := run(inj, 5000)
	if drops == 0 || repeats == 0 {
		t.Fatalf("jitter produced drops=%d repeats=%d", drops, repeats)
	}
	if len(delivered) != 5000-drops+repeats {
		t.Fatal("delivered count inconsistent with effects")
	}
}

func TestChainComposesAndPrecedence(t *testing.T) {
	c := Chain{NewSaturation(2, 300), NewDropout(1, 1, 1)} // rate 1: drop everything
	s, eff := c.Apply(imu.Sample{Acc: imu.Vec3{X: 7}})
	if eff != Drop {
		t.Fatalf("chain effect %v, want Drop", eff)
	}
	_ = s
	c2 := Chain{NewSaturation(2, 300), NewDrift(0.001, 0)}
	out, eff := c2.Apply(imu.Sample{Acc: imu.Vec3{X: 7, Z: 0}})
	if eff != Pass || out.Acc.X != 2 {
		t.Fatalf("chain did not apply both: %+v eff=%v", out, eff)
	}
}

func TestNewSeverityBounds(t *testing.T) {
	for _, k := range Kinds() {
		for _, sev := range []float64{-1, 0, 0.25, 1, 2} {
			inj := New(k, sev, 1)
			if inj == nil {
				t.Fatalf("New(%v, %g) returned nil", k, sev)
			}
			inj.Reset()
			for i := 0; i < 100; i++ {
				inj.Apply(cleanSample())
			}
		}
	}
}

func TestApplyTrialPreservesShape(t *testing.T) {
	tr := &dataset.Trial{Subject: 1, Task: 30, FallOnset: 60, Impact: 90}
	for i := 0; i < 120; i++ {
		tr.Samples = append(tr.Samples, imu.Sample{Acc: imu.Vec3{Z: 1, X: float64(i)}})
	}
	inj := NewDropout(0.3, 3, 21)
	out := ApplyTrial(tr, inj)
	if len(out.Samples) != len(tr.Samples) {
		t.Fatalf("length changed: %d != %d", len(out.Samples), len(tr.Samples))
	}
	if out.FallOnset != 60 || out.Impact != 90 {
		t.Fatal("annotations changed")
	}
	// Original untouched.
	if tr.Samples[10].Acc.X != 10 {
		t.Fatal("ApplyTrial mutated the input trial")
	}
	// Dropped samples hold the previous value, so the ramp must be
	// monotone non-decreasing.
	prev := -1.0
	for i, s := range out.Samples {
		if s.Acc.X < prev {
			t.Fatalf("sample %d not sample-and-hold: %g < %g", i, s.Acc.X, prev)
		}
		prev = s.Acc.X
	}
	// Determinism across calls.
	out2 := ApplyTrial(tr, inj)
	for i := range out.Samples {
		if out.Samples[i] != out2.Samples[i] {
			t.Fatal("ApplyTrial not deterministic across calls")
		}
	}
}

func TestGyroNaNKillsOnlyGyro(t *testing.T) {
	inj := NewGyroFault(GyroNaN, 1, 7) // engage always
	inj.Reset()
	sawNaN := false
	for i := 0; i < 300; i++ {
		s, eff := inj.Apply(cleanSample())
		if eff != Pass {
			t.Fatalf("gyro fault must never drop samples, got %v", eff)
		}
		if math.IsNaN(s.Acc.Z) || math.IsNaN(s.Acc.X) {
			t.Fatal("gyro fault corrupted the accelerometer")
		}
		if math.IsNaN(s.Gyro.X) {
			sawNaN = true
			if !math.IsNaN(s.Gyro.Y) || !math.IsNaN(s.Gyro.Z) {
				t.Fatal("gyro die death must kill all three gyro axes")
			}
		}
	}
	if !sawNaN {
		t.Fatal("engaged gyro-nan fault never produced a NaN gyro reading")
	}
}

func TestGyroStuckFreezesGyro(t *testing.T) {
	inj := NewGyroFault(GyroStuck, 1, 7)
	inj.Reset()
	var frozen imu.Vec3
	froze := false
	for i := 0; i < 300; i++ {
		in := cleanSample()
		in.Gyro = imu.Vec3{X: float64(i), Y: -float64(i), Z: 1}
		s, _ := inj.Apply(in)
		if s.Gyro != in.Gyro { // latched
			if !froze {
				frozen = s.Gyro
				froze = true
			} else if s.Gyro != frozen {
				t.Fatalf("stuck gyro moved: %+v then %+v", frozen, s.Gyro)
			}
		}
	}
	if !froze {
		t.Fatal("engaged gyro-stuck fault never froze the gyro")
	}
}

func TestGyroFaultEngageZeroIsClean(t *testing.T) {
	inj := NewGyroFault(GyroNaN, 0, 7)
	delivered, drops, repeats := run(inj, 500)
	if drops != 0 || repeats != 0 {
		t.Fatal("disengaged gyro fault altered delivery")
	}
	for _, s := range delivered {
		if s != cleanSample() {
			t.Fatal("disengaged gyro fault altered a sample")
		}
	}
}

func TestGyroFaultDeterministicAcrossResets(t *testing.T) {
	a := NewGyroFault(GyroNaN, 0.5, 99)
	first, _, _ := run(a, 400)
	second, _, _ := run(a, 400)
	if len(first) != len(second) {
		t.Fatal("replay length changed across Reset")
	}
	for i := range first {
		af, as := first[i], second[i]
		// NaN != NaN, so compare bit patterns via IsNaN.
		if (math.IsNaN(af.Gyro.X) != math.IsNaN(as.Gyro.X)) || af.Acc != as.Acc {
			t.Fatalf("sample %d differs across Reset", i)
		}
	}
}
