// Package fault models the ways a body-worn IMU misbehaves in the
// field — dropped samples, full-scale clipping during impacts, noise,
// slow bias drift, stuck channels, NaN/Inf bursts from a flaky bus and
// sample-clock jitter — as composable, seed-deterministic injectors.
// The same injector corrupts offline dataset trials (for robustness
// sweeps) and live sample streams (for streaming-pipeline tests), so
// the evaluation harness can measure how much each fault class costs
// the detector relative to a clean baseline.
package fault

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/imu"
)

// Effect is what an injector decides happens to one sample's delivery.
type Effect int

const (
	// Pass delivers the (possibly modified) sample.
	Pass Effect = iota
	// Drop loses the sample: the detector sees a gap where the stream
	// application should call Detector.PushMissing.
	Drop
	// Repeat delivers the sample twice — the sample-clock ran fast
	// (jitter), so the consumer sees a duplicated instant.
	Repeat
)

// Injector corrupts a sample stream one reading at a time. Injectors
// are stateful (gaps span samples, drift accumulates) and
// deterministic: Reset rewinds the internal RNG and counters to the
// constructed seed, so the same injector replayed over the same stream
// produces the same corruption.
type Injector interface {
	Name() string
	// Apply corrupts one incoming sample and reports its delivery
	// effect. The returned sample is meaningful only for Pass/Repeat.
	Apply(s imu.Sample) (imu.Sample, Effect)
	// Reset rewinds the injector to its initial deterministic state.
	Reset()
}

// Kind enumerates the fault taxonomy for severity-swept evaluation.
type Kind int

const (
	// KindDropout loses samples in short bursts (radio/bus stalls).
	KindDropout Kind = iota
	// KindSaturation clips readings to a reduced full-scale range, as
	// a misconfigured or cheaper sensor would during violent motion.
	KindSaturation
	// KindNoise adds white Gaussian noise to every channel.
	KindNoise
	// KindDrift accumulates a slow additive bias (temperature drift).
	KindDrift
	// KindStuck freezes one accelerometer channel at a past value.
	KindStuck
	// KindNaNBurst replaces short runs of samples with NaN/Inf garbage.
	KindNaNBurst
	// KindJitter drops or duplicates samples as a skewed sample clock
	// would.
	KindJitter
	// KindGyroNaN kills the gyroscope die: after a random onset every
	// gyro reading is NaN while the accelerometer keeps delivering —
	// the separate-chip failure mode a three-branch detector can
	// survive on its accelerometer branch alone.
	KindGyroNaN
	// KindGyroStuck freezes all three gyro channels at their last
	// pre-fault values (a latched gyro DMA lane) while the
	// accelerometer keeps delivering.
	KindGyroStuck
)

// Kinds lists every fault kind, in sweep order.
func Kinds() []Kind {
	return []Kind{KindDropout, KindSaturation, KindNoise, KindDrift,
		KindStuck, KindNaNBurst, KindJitter, KindGyroNaN, KindGyroStuck}
}

func (k Kind) String() string {
	switch k {
	case KindDropout:
		return "dropout"
	case KindSaturation:
		return "saturation"
	case KindNoise:
		return "noise"
	case KindDrift:
		return "drift"
	case KindStuck:
		return "stuck"
	case KindNaNBurst:
		return "nan-burst"
	case KindJitter:
		return "jitter"
	case KindGyroNaN:
		return "gyro-nan"
	case KindGyroStuck:
		return "gyro-stuck"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// New builds an injector of the given kind at a severity in [0, 1]
// (clamped), mapping severity onto each model's physical parameters:
// severity 0.25 is a "moderate" field fault (≈5 % dropout, ≈0.1 g
// noise), severity 1 is a broken sensor.
func New(kind Kind, severity float64, seed int64) Injector {
	s := math.Max(0, math.Min(1, severity))
	switch kind {
	case KindDropout:
		return NewDropout(0.2*s, 1+int(4*s), seed)
	case KindSaturation:
		return NewSaturation(8-6*s, 2000-1700*s)
	case KindNoise:
		return NewNoise(0.4*s, 60*s, seed)
	case KindDrift:
		return NewDrift(0.002*s, 0.2*s)
	case KindStuck:
		return NewStuck(imu.AccZ, s, seed)
	case KindNaNBurst:
		return NewNaNBurst(0.01*s, 1+int(9*s), seed)
	case KindJitter:
		return NewJitter(0.05*s, 0.05*s, seed)
	case KindGyroNaN:
		return NewGyroFault(GyroNaN, s, seed)
	case KindGyroStuck:
		return NewGyroFault(GyroStuck, s, seed)
	default:
		panic(fmt.Sprintf("fault: unknown kind %d", int(kind)))
	}
}

// Dropout loses samples in bursts: each gap starts with a probability
// tuned so the long-run lost fraction approaches Rate, and runs for a
// uniform 1..MaxGap samples.
type Dropout struct {
	Rate   float64 // target long-run fraction of lost samples
	MaxGap int     // longest single gap, samples

	seed    int64
	rng     *rand.Rand
	gapLeft int
}

// NewDropout returns a burst-dropout injector.
func NewDropout(rate float64, maxGap int, seed int64) *Dropout {
	if maxGap < 1 {
		maxGap = 1
	}
	d := &Dropout{Rate: rate, MaxGap: maxGap, seed: seed}
	d.Reset()
	return d
}

func (d *Dropout) Name() string { return fmt.Sprintf("dropout(%.0f%%)", 100*d.Rate) }

// Reset implements Injector.
func (d *Dropout) Reset() {
	d.rng = rand.New(rand.NewSource(d.seed))
	d.gapLeft = 0
}

// Apply implements Injector.
func (d *Dropout) Apply(s imu.Sample) (imu.Sample, Effect) {
	if d.gapLeft > 0 {
		d.gapLeft--
		return s, Drop
	}
	meanGap := float64(1+d.MaxGap) / 2
	if d.Rate > 0 && d.rng.Float64() < d.Rate/meanGap {
		d.gapLeft = d.rng.Intn(d.MaxGap) // this sample + gapLeft more
		return s, Drop
	}
	return s, Pass
}

// Saturation clips every reading to a symmetric full-scale range —
// the fault is a range misconfiguration (e.g. ±2 g instead of ±8 g),
// which flattens exactly the impact spikes the detector keys on.
type Saturation struct {
	FullScaleG   float64 // accelerometer clip, g
	FullScaleDPS float64 // gyroscope clip, deg/s
}

// NewSaturation returns a clipping injector.
func NewSaturation(fullScaleG, fullScaleDPS float64) *Saturation {
	return &Saturation{FullScaleG: fullScaleG, FullScaleDPS: fullScaleDPS}
}

func (sa *Saturation) Name() string {
	return fmt.Sprintf("saturation(±%.1fg, ±%.0fdps)", sa.FullScaleG, sa.FullScaleDPS)
}

// Reset implements Injector (stateless).
func (sa *Saturation) Reset() {}

func clampVec(v imu.Vec3, lim float64) imu.Vec3 {
	return imu.Vec3{
		X: math.Max(-lim, math.Min(lim, v.X)),
		Y: math.Max(-lim, math.Min(lim, v.Y)),
		Z: math.Max(-lim, math.Min(lim, v.Z)),
	}
}

// Apply implements Injector.
func (sa *Saturation) Apply(s imu.Sample) (imu.Sample, Effect) {
	s.Acc = clampVec(s.Acc, sa.FullScaleG)
	s.Gyro = clampVec(s.Gyro, sa.FullScaleDPS)
	return s, Pass
}

// Noise adds zero-mean Gaussian noise per channel.
type Noise struct {
	SigmaAccG    float64
	SigmaGyroDPS float64

	seed int64
	rng  *rand.Rand
}

// NewNoise returns an additive-noise injector.
func NewNoise(sigmaAccG, sigmaGyroDPS float64, seed int64) *Noise {
	n := &Noise{SigmaAccG: sigmaAccG, SigmaGyroDPS: sigmaGyroDPS, seed: seed}
	n.Reset()
	return n
}

func (n *Noise) Name() string {
	return fmt.Sprintf("noise(σ=%.2fg, %.0fdps)", n.SigmaAccG, n.SigmaGyroDPS)
}

// Reset implements Injector.
func (n *Noise) Reset() { n.rng = rand.New(rand.NewSource(n.seed)) }

// Apply implements Injector.
func (n *Noise) Apply(s imu.Sample) (imu.Sample, Effect) {
	s.Acc.X += n.rng.NormFloat64() * n.SigmaAccG
	s.Acc.Y += n.rng.NormFloat64() * n.SigmaAccG
	s.Acc.Z += n.rng.NormFloat64() * n.SigmaAccG
	s.Gyro.X += n.rng.NormFloat64() * n.SigmaGyroDPS
	s.Gyro.Y += n.rng.NormFloat64() * n.SigmaGyroDPS
	s.Gyro.Z += n.rng.NormFloat64() * n.SigmaGyroDPS
	return s, Pass
}

// Drift accumulates a slow additive bias on every axis, the signature
// of temperature drift on an uncalibrated MEMS part.
type Drift struct {
	AccPerSampleG    float64
	GyroPerSampleDPS float64

	step int
}

// NewDrift returns a bias-ramp injector.
func NewDrift(accPerSampleG, gyroPerSampleDPS float64) *Drift {
	return &Drift{AccPerSampleG: accPerSampleG, GyroPerSampleDPS: gyroPerSampleDPS}
}

func (dr *Drift) Name() string {
	return fmt.Sprintf("drift(%.1fg/s)", dr.AccPerSampleG*dataset.SampleRate)
}

// Reset implements Injector.
func (dr *Drift) Reset() { dr.step = 0 }

// Apply implements Injector.
func (dr *Drift) Apply(s imu.Sample) (imu.Sample, Effect) {
	dr.step++
	b := float64(dr.step)
	s.Acc.Z += b * dr.AccPerSampleG
	s.Gyro.X += b * dr.GyroPerSampleDPS
	return s, Pass
}

// Stuck freezes one feature channel at its last pre-fault value — a
// dead ADC lane. Whether the fault engages at all is itself random
// (probability Engage per Reset), so severity sweeps mix healthy and
// stuck replays.
type Stuck struct {
	Channel int     // imu channel index, accelerometer or gyroscope
	Engage  float64 // probability the fault manifests in a given replay

	seed    int64
	rng     *rand.Rand
	after   int // sample index the channel freezes at (-1: never)
	step    int
	held    float64
	holding bool
}

// NewStuck returns a stuck-at-channel injector.
func NewStuck(channel int, engage float64, seed int64) *Stuck {
	st := &Stuck{Channel: channel, Engage: engage, seed: seed}
	st.Reset()
	return st
}

func (st *Stuck) Name() string {
	return fmt.Sprintf("stuck(%s)", imu.ChannelName(st.Channel))
}

// Reset implements Injector.
func (st *Stuck) Reset() {
	st.rng = rand.New(rand.NewSource(st.seed))
	st.after = -1
	if st.rng.Float64() < st.Engage {
		st.after = 50 + st.rng.Intn(100)
	}
	st.step = 0
	st.holding = false
}

// Apply implements Injector.
func (st *Stuck) Apply(s imu.Sample) (imu.Sample, Effect) {
	st.step++
	if st.after < 0 || st.step < st.after {
		return s, Pass
	}
	f := s.Features()
	if !st.holding {
		st.held = f[st.Channel]
		st.holding = true
	}
	f[st.Channel] = st.held
	return imu.FromFeatures(f), Pass
}

// NaNBurst replaces short runs of samples with non-finite garbage, as
// a glitching bus or DMA underrun does. Alternating bursts carry NaN
// and ±Inf so consumers are exercised on both.
type NaNBurst struct {
	StartProb float64 // per-sample probability a burst begins
	MaxLen    int     // longest burst, samples

	seed      int64
	rng       *rand.Rand
	burstLeft int
	useInf    bool
}

// NewNaNBurst returns a non-finite-burst injector.
func NewNaNBurst(startProb float64, maxLen int, seed int64) *NaNBurst {
	if maxLen < 1 {
		maxLen = 1
	}
	nb := &NaNBurst{StartProb: startProb, MaxLen: maxLen, seed: seed}
	nb.Reset()
	return nb
}

func (nb *NaNBurst) Name() string { return fmt.Sprintf("nan-burst(p=%.3f)", nb.StartProb) }

// Reset implements Injector.
func (nb *NaNBurst) Reset() {
	nb.rng = rand.New(rand.NewSource(nb.seed))
	nb.burstLeft = 0
	nb.useInf = false
}

// Apply implements Injector.
func (nb *NaNBurst) Apply(s imu.Sample) (imu.Sample, Effect) {
	if nb.burstLeft == 0 {
		if nb.rng.Float64() >= nb.StartProb {
			return s, Pass
		}
		nb.burstLeft = 1 + nb.rng.Intn(nb.MaxLen)
		nb.useInf = !nb.useInf
	}
	nb.burstLeft--
	bad := math.NaN()
	if nb.useInf {
		bad = math.Inf(1)
	}
	s.Acc = imu.Vec3{X: bad, Y: bad, Z: bad}
	s.Gyro = imu.Vec3{X: bad, Y: -bad, Z: bad}
	return s, Pass
}

// GyroFailMode selects how a GyroFault corrupts the gyroscope stream.
type GyroFailMode int

const (
	// GyroNaN: every post-onset gyro reading is NaN (dead die, the bus
	// returns garbage that decodes non-finite).
	GyroNaN GyroFailMode = iota
	// GyroStuck: post-onset gyro readings latch at the last pre-fault
	// value (a frozen DMA lane delivering stale registers).
	GyroStuck
)

// GyroFault is a gyroscope-only failure: the accelerometer keeps
// delivering while the gyro die dies mid-stream. Whether the fault
// engages in a given replay is random (probability Engage per Reset,
// the severity knob), so a sweep mixes healthy and gyro-blind replays.
// This is the fault class a multi-branch detector should survive by
// degrading to its accelerometer branch instead of going blind.
type GyroFault struct {
	Mode   GyroFailMode
	Engage float64 // probability the fault manifests in a given replay

	seed    int64
	rng     *rand.Rand
	after   int // sample index the gyro dies at (-1: never)
	step    int
	held    imu.Vec3
	holding bool
}

// NewGyroFault returns a gyro-only failure injector.
func NewGyroFault(mode GyroFailMode, engage float64, seed int64) *GyroFault {
	g := &GyroFault{Mode: mode, Engage: engage, seed: seed}
	g.Reset()
	return g
}

func (g *GyroFault) Name() string {
	if g.Mode == GyroStuck {
		return fmt.Sprintf("gyro-stuck(p=%.2f)", g.Engage)
	}
	return fmt.Sprintf("gyro-nan(p=%.2f)", g.Engage)
}

// Reset implements Injector.
func (g *GyroFault) Reset() {
	g.rng = rand.New(rand.NewSource(g.seed))
	g.after = -1
	if g.rng.Float64() < g.Engage {
		g.after = 50 + g.rng.Intn(100)
	}
	g.step = 0
	g.holding = false
}

// Apply implements Injector.
func (g *GyroFault) Apply(s imu.Sample) (imu.Sample, Effect) {
	g.step++
	if g.after < 0 || g.step < g.after {
		g.held = s.Gyro
		g.holding = true
		return s, Pass
	}
	if g.Mode == GyroStuck {
		if g.holding {
			s.Gyro = g.held
		}
		return s, Pass
	}
	bad := math.NaN()
	s.Gyro = imu.Vec3{X: bad, Y: bad, Z: bad}
	return s, Pass
}

// Jitter models sample-clock skew at the consumer's fixed processing
// rate: a slow producer clock looks like occasional missing samples, a
// fast one like occasional duplicates.
type Jitter struct {
	DropProb   float64
	RepeatProb float64

	seed int64
	rng  *rand.Rand
}

// NewJitter returns a clock-jitter injector.
func NewJitter(dropProb, repeatProb float64, seed int64) *Jitter {
	j := &Jitter{DropProb: dropProb, RepeatProb: repeatProb, seed: seed}
	j.Reset()
	return j
}

func (j *Jitter) Name() string {
	return fmt.Sprintf("jitter(drop=%.2f, repeat=%.2f)", j.DropProb, j.RepeatProb)
}

// Reset implements Injector.
func (j *Jitter) Reset() { j.rng = rand.New(rand.NewSource(j.seed)) }

// Apply implements Injector.
func (j *Jitter) Apply(s imu.Sample) (imu.Sample, Effect) {
	u := j.rng.Float64()
	switch {
	case u < j.DropProb:
		return s, Drop
	case u < j.DropProb+j.RepeatProb:
		return s, Repeat
	default:
		return s, Pass
	}
}

// Chain applies injectors left to right; the strictest delivery effect
// wins (Drop > Repeat > Pass).
type Chain []Injector

// Name implements Injector.
func (c Chain) Name() string {
	names := make([]string, len(c))
	for i, inj := range c {
		names[i] = inj.Name()
	}
	return fmt.Sprintf("chain%v", names)
}

// Reset implements Injector.
func (c Chain) Reset() {
	for _, inj := range c {
		inj.Reset()
	}
}

// Apply implements Injector.
func (c Chain) Apply(s imu.Sample) (imu.Sample, Effect) {
	eff := Pass
	for _, inj := range c {
		var e Effect
		s, e = inj.Apply(s)
		if e > eff {
			eff = e
		}
	}
	return s, eff
}

// ApplyTrial returns a corrupted deep copy of a trial, resetting the
// injector first. The copy preserves the sample count and therefore
// the fall annotations: a Drop becomes a sample-and-hold of the last
// delivered reading (what a latching sensor driver emits across a
// gap), and a Repeat keeps the single original sample. Streaming
// consumers that can represent true gaps should corrupt the live
// stream instead (edge.Detector.SimulateFaulty), where Drop maps onto
// the detector's missing-sample path.
func ApplyTrial(t *dataset.Trial, inj Injector) *dataset.Trial {
	out := *t
	out.Samples = make([]imu.Sample, len(t.Samples))
	inj.Reset()
	var last imu.Sample
	haveLast := false
	for i, s := range t.Samples {
		cs, eff := inj.Apply(s)
		switch eff {
		case Drop:
			if haveLast {
				out.Samples[i] = last
			} // else: zero sample, the driver's power-on default
		case Pass, Repeat:
			// A batch rewrite cannot lengthen the trial, so a Repeat
			// keeps the single original sample.
			out.Samples[i] = cs
			last, haveLast = cs, true
		}
	}
	return &out
}
