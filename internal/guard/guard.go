// Package guard hardens long-running work — training runs, benchmark
// experiments, batch evaluations — against the runtime failure domain:
// panics, transient errors and hangs. Run executes a function with
// panic capture (converted to a *PanicError carrying the goroutine
// stack), bounded retry with exponential backoff, and a wall-clock
// watchdog that turns a hung attempt into a *TimeoutError instead of a
// silently stuck process.
//
// The guard is deliberately cooperative: a timed-out function keeps
// running on its goroutine (Go cannot kill goroutines), but the caller
// regains control and can decide to retry, abort or exit. For the
// repository's experiments that trade-off is right — an experiment that
// wedges once is retried on a fresh attempt, and one that wedges every
// time surfaces as a structured error rather than a hung CI job.
package guard

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// PanicError wraps a recovered panic with the stack captured at the
// recovery site, so the failure is diagnosable after the fact.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("guard: panic: %v", e.Value)
}

// TimeoutError reports an attempt that exceeded the watchdog budget.
type TimeoutError struct {
	Name    string
	Attempt int
	Budget  time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("guard: %s attempt %d exceeded %v watchdog", e.Name, e.Attempt, e.Budget)
}

// ExhaustedError reports that every attempt failed; Last is the error
// from the final attempt.
type ExhaustedError struct {
	Name     string
	Attempts int
	Last     error
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("guard: %s failed after %d attempts: %v", e.Name, e.Attempts, e.Last)
}

func (e *ExhaustedError) Unwrap() error { return e.Last }

// Config bounds the guard's patience.
type Config struct {
	// Attempts is the total number of tries (first run included).
	// Values below 1 mean 1: run once, no retry.
	Attempts int
	// BaseDelay is the sleep before the first retry; each further
	// retry doubles it, capped at MaxDelay. Zero means no backoff.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero means uncapped.
	MaxDelay time.Duration
	// Timeout is the per-attempt wall-clock watchdog. Zero disables it.
	Timeout time.Duration
	// Log, when non-nil, receives one line per retry and timeout.
	Log func(format string, args ...any)
}

func (c Config) attempts() int {
	if c.Attempts < 1 {
		return 1
	}
	return c.Attempts
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// delay computes the backoff before retry number n (1-based).
func (c Config) delay(n int) time.Duration {
	if c.BaseDelay <= 0 {
		return 0
	}
	d := c.BaseDelay
	for i := 1; i < n; i++ {
		d *= 2
		if c.MaxDelay > 0 && d >= c.MaxDelay {
			return c.MaxDelay
		}
	}
	if c.MaxDelay > 0 && d > c.MaxDelay {
		return c.MaxDelay
	}
	return d
}

// attempt runs fn once with panic capture and, if cfg.Timeout is set,
// a watchdog. On timeout the function's goroutine is abandoned and a
// *TimeoutError returned.
func attempt(cfg Config, name string, n int, fn func() error) error {
	run := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		return fn()
	}
	if cfg.Timeout <= 0 {
		return run()
	}
	done := make(chan error, 1)
	go func() { done <- run() }()
	timer := time.NewTimer(cfg.Timeout)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		return &TimeoutError{Name: name, Attempt: n, Budget: cfg.Timeout}
	}
}

// Run executes fn under the guard: panics become errors, failed
// attempts are retried with exponential backoff up to cfg.Attempts,
// and each attempt is bounded by the watchdog. It returns nil on the
// first success, or an *ExhaustedError wrapping the final failure.
func Run(cfg Config, name string, fn func() error) error {
	var last error
	for n := 1; n <= cfg.attempts(); n++ {
		if n > 1 {
			if d := cfg.delay(n - 1); d > 0 {
				time.Sleep(d)
			}
			cfg.logf("guard: retrying %s (attempt %d/%d): %v", name, n, cfg.attempts(), last)
		}
		last = attempt(cfg, name, n, fn)
		if last == nil {
			return nil
		}
		var pe *PanicError
		if errors.As(last, &pe) {
			cfg.logf("guard: %s attempt %d panicked: %v\n%s", name, n, pe.Value, pe.Stack)
		}
	}
	return &ExhaustedError{Name: name, Attempts: cfg.attempts(), Last: last}
}
