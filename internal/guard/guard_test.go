package guard

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestRunSucceedsFirstTry(t *testing.T) {
	calls := 0
	if err := Run(Config{Attempts: 3}, "ok", func() error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1", calls)
	}
}

func TestRunRetriesUntilSuccess(t *testing.T) {
	calls := 0
	err := Run(Config{Attempts: 4}, "flaky", func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
}

func TestRunExhaustsAttempts(t *testing.T) {
	sentinel := errors.New("permanent")
	calls := 0
	err := Run(Config{Attempts: 3}, "doomed", func() error { calls++; return sentinel })
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *ExhaustedError", err)
	}
	if ex.Attempts != 3 || !errors.Is(err, sentinel) {
		t.Fatalf("exhausted error %+v does not wrap the last failure", ex)
	}
}

func TestRunCapturesPanicWithStack(t *testing.T) {
	err := Run(Config{}, "boom", func() error { panic("kaboom") })
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *ExhaustedError", err)
	}
	var pe *PanicError
	if !errors.As(ex.Last, &pe) {
		t.Fatalf("last = %v, want *PanicError", ex.Last)
	}
	if pe.Value != "kaboom" {
		t.Fatalf("panic value = %v, want kaboom", pe.Value)
	}
	if !bytes.Contains(pe.Stack, []byte("guard_test.go")) {
		t.Fatal("captured stack does not reference the panic site")
	}
}

func TestRunRecoversAfterPanic(t *testing.T) {
	calls := 0
	err := Run(Config{Attempts: 2}, "once", func() error {
		calls++
		if calls == 1 {
			panic("first attempt only")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("second attempt should have succeeded: %v", err)
	}
}

func TestRunWatchdogTimesOut(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	start := time.Now()
	err := Run(Config{Timeout: 20 * time.Millisecond}, "stuck", func() error {
		<-hang
		return nil
	})
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *ExhaustedError", err)
	}
	var te *TimeoutError
	if !errors.As(ex.Last, &te) {
		t.Fatalf("last = %v, want *TimeoutError", ex.Last)
	}
	if te.Budget != 20*time.Millisecond {
		t.Fatalf("budget = %v, want 20ms", te.Budget)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("watchdog took %v to fire", elapsed)
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	cfg := Config{BaseDelay: 10 * time.Millisecond, MaxDelay: 35 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		35 * time.Millisecond,
		35 * time.Millisecond,
	}
	for i, w := range want {
		if got := cfg.delay(i + 1); got != w {
			t.Errorf("delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := (Config{}).delay(3); got != 0 {
		t.Errorf("zero BaseDelay should disable backoff, got %v", got)
	}
}

func TestRunLogsRetries(t *testing.T) {
	var sb strings.Builder
	cfg := Config{Attempts: 2, Log: func(format string, args ...any) {
		fmt.Fprintf(&sb, format+"\n", args...)
	}}
	_ = Run(cfg, "noisy", func() error { return errors.New("nope") })
	if !strings.Contains(sb.String(), "retrying noisy") {
		t.Fatalf("retry not logged: %q", sb.String())
	}
}
