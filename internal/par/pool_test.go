package par

import (
	"sync/atomic"
	"testing"
)

// TestRunCoversEveryIndexOnce checks the core contract for a spread of
// worker counts and index-space sizes, including n < workers and n = 0.
func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 7} {
		for _, n := range []int{0, 1, 2, 3, 16, 101} {
			p := New(workers)
			counts := make([]int64, n)
			p.Run(n, func(worker, i int) {
				if worker < 0 || worker >= p.Workers() {
					t.Errorf("workers=%d n=%d: worker id %d outside [0,%d)", workers, n, worker, p.Workers())
				}
				atomic.AddInt64(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

// TestRunSlotWritesAreDeterministic exercises the intended usage
// pattern — fn writes only slot i — and checks the reduced result is
// identical across worker counts (this is also the race-detector
// coverage for the pool: slot writes from many goroutines must not
// trip `go test -race`).
func TestRunSlotWritesAreDeterministic(t *testing.T) {
	const n = 512
	reduce := func(workers int) float64 {
		out := make([]float64, n)
		New(workers).Run(n, func(_, i int) {
			v := float64(i)
			out[i] = v*v + 1/(v+1)
		})
		s := 0.0
		for _, v := range out {
			s += v
		}
		return s
	}
	want := reduce(1)
	for _, workers := range []int{2, 3, 4, 8} {
		if got := reduce(workers); got != want {
			t.Fatalf("workers=%d: reduced sum %v differs from serial %v", workers, got, want)
		}
	}
}

// TestWorkersClamp checks the worker-count floor and the nil receiver.
func TestWorkersClamp(t *testing.T) {
	if got := New(-3).Workers(); got != 1 {
		t.Fatalf("New(-3).Workers() = %d, want 1", got)
	}
	if got := New(6).Workers(); got != 6 {
		t.Fatalf("New(6).Workers() = %d, want 6", got)
	}
	var p *Pool
	if got := p.Workers(); got != 1 {
		t.Fatalf("(*Pool)(nil).Workers() = %d, want 1", got)
	}
}

// TestWorkerPrivateStateIsExclusive verifies that two invocations never
// run concurrently under the same worker id — the property that makes
// per-worker network replicas safe.
func TestWorkerPrivateStateIsExclusive(t *testing.T) {
	const workers, n = 4, 256
	p := New(workers)
	busy := make([]atomic.Bool, workers)
	p.Run(n, func(worker, i int) {
		if !busy[worker].CompareAndSwap(false, true) {
			t.Errorf("worker %d re-entered concurrently", worker)
		}
		for k := 0; k < 100; k++ {
			_ = k * k
		}
		busy[worker].Store(false)
	})
}
