// Package par provides the small deterministic worker pool behind the
// data-parallel trainer and the parallel evaluation harness.
//
// The pool is deliberately dumb: Run(n, fn) invokes fn(worker, i) once
// for every index i in [0, n), spread over a fixed number of workers.
// Determinism is a property of how callers use it, not of the pool
// itself — the contract is that fn(worker, i) writes only to slot i of
// shared output state (and to worker-private state indexed by worker),
// and that the caller reduces the slots in index order afterwards.
// Under that contract the result is bit-identical for every worker
// count, because the work decomposition (the index space) never changes
// with parallelism; only the interleaving does.
package par

import (
	"sync"
	"sync/atomic"
)

// Pool runs index-space fan-outs over a fixed worker count. The zero
// value behaves like a single-worker pool. A Pool is itself safe for
// reuse across many Run calls but a single Run must finish before the
// next begins.
type Pool struct {
	workers int
}

// New returns a pool with the given worker count; values below 1 are
// clamped to 1 (serial execution).
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers returns the effective worker count.
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Run invokes fn(worker, i) exactly once for every i in [0, n).
// Indices are claimed dynamically (an atomic counter), so slow indices
// do not stall fast ones; worker identifies which worker-private state
// (network replica, scratch buffer) the call may touch and is always in
// [0, Workers()). With one worker — or a single index — Run executes
// inline on the calling goroutine with no synchronisation at all, so a
// serial configuration pays nothing for the abstraction.
func (p *Pool) Run(n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for worker := 0; worker < w; worker++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(worker)
	}
	wg.Wait()
}
