package edge

// Health is the streaming pipeline's degradation state, derived from
// the anomaly density of the most recent window of ingestion events
// (real, quarantined or missing samples).
//
// The policy is conservative in the direction a pre-impact airbag
// needs: a Degraded pipeline keeps classifying (a bridged two-sample
// gap must not blind the detector during a fall), while a Faulted
// pipeline suppresses evaluation entirely — firing a single-use
// cartridge off garbage is worse than missing a window, and the
// health state is surfaced so the wearer can be alerted to a dead
// sensor instead of trusting it silently.
type Health int

const (
	// HealthHealthy: no anomalies in the last window of samples.
	HealthHealthy Health = iota
	// HealthDegraded: some anomalies, but few enough that bridged
	// ingestion keeps the window trustworthy; classification runs.
	HealthDegraded
	// HealthFaulted: too much of the window is reconstructed or
	// missing; classification is suppressed until the stream recovers.
	HealthFaulted
)

func (h Health) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthFaulted:
		return "faulted"
	default:
		return "health(?)"
	}
}

// faultedFraction is the anomaly density over the health window at
// which the pipeline stops trusting its ring buffer.
const faultedFraction = 0.25

// healthRing tracks which of the last N ingestion events were
// anomalous (quarantined or missing samples).
type healthRing struct {
	flags []bool
	pos   int
	bad   int
}

func newHealthRing(n int) *healthRing {
	return &healthRing{flags: make([]bool, n)}
}

func (h *healthRing) reset() {
	for i := range h.flags {
		h.flags[i] = false
	}
	h.pos, h.bad = 0, 0
}

//fallvet:hotpath
func (h *healthRing) observe(anomalous bool) {
	if h.flags[h.pos] {
		h.bad--
	}
	h.flags[h.pos] = anomalous
	if anomalous {
		h.bad++
	}
	h.pos = (h.pos + 1) % len(h.flags)
}

//fallvet:hotpath
func (h *healthRing) health() Health {
	switch {
	case h.bad == 0:
		return HealthHealthy
	case float64(h.bad) > faultedFraction*float64(len(h.flags)):
		return HealthFaulted
	default:
		return HealthDegraded
	}
}

// FaultStats counts the anomalies a detector has absorbed since the
// last Reset; it is diagnostic surface for deployment telemetry and
// for the robustness harness's "zero NaN scores" acceptance gate.
type FaultStats struct {
	// Quarantined counts samples rejected for non-finite components.
	Quarantined int
	// Missing counts samples reported absent via PushMissing.
	Missing int
	// Bridged counts missing/quarantined samples reconstructed by
	// sample-and-hold (short gaps only).
	Bridged int
	// Clamped counts samples clipped to the sensor full-scale range.
	Clamped int
	// Holdoffs counts long gaps that forced a filter re-prime and a
	// full-window warm-up before classification resumed.
	Holdoffs int
	// BadScores counts classifier outputs that were non-finite and
	// sanitised to 0 (should stay 0: the input guards exist so the
	// model never sees garbage).
	BadScores int
}
