package edge

import "repro/internal/imu"

// Health is the streaming pipeline's degradation state, derived from
// the anomaly density of the most recent window of ingestion events
// (real, quarantined or missing samples).
//
// The policy is conservative in the direction a pre-impact airbag
// needs: a Degraded pipeline keeps classifying (a bridged two-sample
// gap must not blind the detector during a fall), while a Faulted
// pipeline suppresses evaluation entirely — firing a single-use
// cartridge off garbage is worse than missing a window, and the
// health state is surfaced so the wearer can be alerted to a dead
// sensor instead of trusting it silently.
type Health int

const (
	// HealthHealthy: no anomalies in the last window of samples.
	HealthHealthy Health = iota
	// HealthDegraded: some anomalies, but few enough that bridged
	// ingestion keeps the window trustworthy; classification runs.
	HealthDegraded
	// HealthFaulted: too much of the window is reconstructed or
	// missing; classification is suppressed until the stream recovers.
	HealthFaulted
)

func (h Health) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthFaulted:
		return "faulted"
	default:
		return "health(?)"
	}
}

// faultedFraction is the anomaly density over the health window at
// which the pipeline stops trusting its ring buffer.
const faultedFraction = 0.25

// SensorGroup indexes one of the three channel groups the paper's
// three-branch CNN consumes. Health is tracked per group so a detector
// cascade can keep classifying on the accelerometer branch when only
// the gyroscope (and therefore the fused Euler attitude) has failed.
type SensorGroup int

const (
	// GroupAcc is the tri-axial accelerometer.
	GroupAcc SensorGroup = iota
	// GroupGyro is the tri-axial gyroscope.
	GroupGyro
	// GroupEuler is the fused Euler attitude, derived from both
	// physical sensors; its health is never better than theirs.
	GroupEuler
	// NumGroups is the channel-group count.
	NumGroups
)

func (g SensorGroup) String() string {
	switch g {
	case GroupAcc:
		return "acc"
	case GroupGyro:
		return "gyro"
	case GroupEuler:
		return "euler"
	default:
		return "group(?)"
	}
}

// GroupHealth is the per-channel-group degradation state.
type GroupHealth struct {
	Acc, Gyro, Euler Health
}

// Worst returns the most degraded of the three group states.
//
//fallvet:hotpath
func (g GroupHealth) Worst() Health {
	w := g.Acc
	if g.Gyro > w {
		w = g.Gyro
	}
	if g.Euler > w {
		w = g.Euler
	}
	return w
}

// stuckRunSamples is the length of a bit-identical run at which a
// channel group is flagged stuck: 250 ms of literally unchanged
// readings is physically implausible on a noisy MEMS part, but short
// enough to demote a cascade tier well before a 400 ms window fills
// with frozen data.
const stuckRunSamples = 25

// stuckRun detects a latched channel group by counting consecutive
// bit-identical readings.
type stuckRun struct {
	last imu.Vec3
	run  int
	have bool
}

func (s *stuckRun) reset() {
	s.run = 0
	s.have = false
}

// observe ingests one reading and reports whether the group has been
// frozen for stuckRunSamples or longer.
//
//fallvet:hotpath
func (s *stuckRun) observe(v imu.Vec3) bool {
	if s.have && v == s.last {
		s.run++
	} else {
		s.run = 0
		s.last = v
		s.have = true
	}
	return s.run >= stuckRunSamples
}

// healthRing tracks which of the last N ingestion events were
// anomalous (quarantined or missing samples).
type healthRing struct {
	flags []bool
	pos   int
	bad   int
}

func newHealthRing(n int) *healthRing {
	return &healthRing{flags: make([]bool, n)}
}

func (h *healthRing) reset() {
	for i := range h.flags {
		h.flags[i] = false
	}
	h.pos, h.bad = 0, 0
}

//fallvet:hotpath
func (h *healthRing) observe(anomalous bool) {
	if h.flags[h.pos] {
		h.bad--
	}
	h.flags[h.pos] = anomalous
	if anomalous {
		h.bad++
	}
	h.pos = (h.pos + 1) % len(h.flags)
}

//fallvet:hotpath
func (h *healthRing) health() Health {
	switch {
	case h.bad == 0:
		return HealthHealthy
	case float64(h.bad) > faultedFraction*float64(len(h.flags)):
		return HealthFaulted
	default:
		return HealthDegraded
	}
}

// FaultStats counts the anomalies a detector has absorbed since the
// last Reset; it is diagnostic surface for deployment telemetry and
// for the robustness harness's "zero NaN scores" acceptance gate.
type FaultStats struct {
	// Quarantined counts samples rejected for non-finite components.
	Quarantined int
	// Missing counts samples reported absent via PushMissing.
	Missing int
	// Bridged counts missing/quarantined samples reconstructed by
	// sample-and-hold (short gaps only).
	Bridged int
	// Clamped counts samples clipped to the sensor full-scale range.
	Clamped int
	// Holdoffs counts long gaps that forced a filter re-prime and a
	// full-window warm-up before classification resumed.
	Holdoffs int
	// BadScores counts classifier outputs that were non-finite and
	// sanitised to 0 (should stay 0: the input guards exist so the
	// model never sees garbage).
	BadScores int
	// GyroHeld counts samples whose gyroscope reading was non-finite
	// while the accelerometer stayed good; the last finite angular
	// rate was substituted and the gyro/Euler groups marked anomalous.
	GyroHeld int
	// AccStuck counts samples on which the accelerometer had been
	// bit-identical for stuckRunSamples or longer.
	AccStuck int
	// GyroStuck counts samples on which the gyroscope had been
	// bit-identical for stuckRunSamples or longer.
	GyroStuck int
}
