package edge

import (
	"math"

	"repro/internal/imu"
)

// Health is the streaming pipeline's degradation state, derived from
// the anomaly density of the most recent window of ingestion events
// (real, quarantined or missing samples).
//
// The policy is conservative in the direction a pre-impact airbag
// needs: a Degraded pipeline keeps classifying (a bridged two-sample
// gap must not blind the detector during a fall), while a Faulted
// pipeline suppresses evaluation entirely — firing a single-use
// cartridge off garbage is worse than missing a window, and the
// health state is surfaced so the wearer can be alerted to a dead
// sensor instead of trusting it silently.
type Health int

const (
	// HealthHealthy: no anomalies in the last window of samples.
	HealthHealthy Health = iota
	// HealthDegraded: some anomalies, but few enough that bridged
	// ingestion keeps the window trustworthy; classification runs.
	HealthDegraded
	// HealthFaulted: too much of the window is reconstructed or
	// missing; classification is suppressed until the stream recovers.
	HealthFaulted
)

func (h Health) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthFaulted:
		return "faulted"
	default:
		return "health(?)"
	}
}

// faultedFraction is the anomaly density over the health window at
// which the pipeline stops trusting its ring buffer.
const faultedFraction = 0.25

// SensorGroup indexes one of the three channel groups the paper's
// three-branch CNN consumes. Health is tracked per group so a detector
// cascade can keep classifying on the accelerometer branch when only
// the gyroscope (and therefore the fused Euler attitude) has failed.
type SensorGroup int

const (
	// GroupAcc is the tri-axial accelerometer.
	GroupAcc SensorGroup = iota
	// GroupGyro is the tri-axial gyroscope.
	GroupGyro
	// GroupEuler is the fused Euler attitude, derived from both
	// physical sensors; its health is never better than theirs.
	GroupEuler
	// NumGroups is the channel-group count.
	NumGroups
)

func (g SensorGroup) String() string {
	switch g {
	case GroupAcc:
		return "acc"
	case GroupGyro:
		return "gyro"
	case GroupEuler:
		return "euler"
	default:
		return "group(?)"
	}
}

// GroupHealth is the per-channel-group degradation state.
type GroupHealth struct {
	Acc, Gyro, Euler Health
}

// Worst returns the most degraded of the three group states.
//
//fallvet:hotpath
func (g GroupHealth) Worst() Health {
	w := g.Acc
	if g.Gyro > w {
		w = g.Gyro
	}
	if g.Euler > w {
		w = g.Euler
	}
	return w
}

// stuckRunSamples is the length of a bit-identical run at which a
// channel group is flagged stuck: 250 ms of literally unchanged
// readings is physically implausible on a noisy MEMS part, but short
// enough to demote a cascade tier well before a 400 ms window fills
// with frozen data.
const stuckRunSamples = 25

// stuckRun detects a latched channel group by counting consecutive
// bit-identical readings.
type stuckRun struct {
	last imu.Vec3
	run  int
	have bool
}

func (s *stuckRun) reset() {
	s.run = 0
	s.have = false
}

// observe ingests one reading and reports whether the group has been
// frozen for stuckRunSamples or longer.
//
//fallvet:hotpath
func (s *stuckRun) observe(v imu.Vec3) bool {
	if s.have && v == s.last {
		s.run++
	} else {
		s.run = 0
		s.last = v
		s.have = true
	}
	return s.run >= stuckRunSamples
}

// axisRun detects a single latched channel — a dead ADC lane freezes
// one axis while its siblings keep moving, which the whole-vector
// stuckRun can never see. The liveness gate is what keeps it honest:
// an axis only counts as stuck after it has been observed to *change*
// at least once, so a genuinely constant channel (a flat axis on a
// bench fixture, a zeroed unused lane) never trips the detector, while
// a mid-stream latch — the actual fault model — always does.
type axisRun struct {
	last float64
	run  int
	have bool
	live bool
}

func (a *axisRun) reset() { *a = axisRun{} }

// observe ingests one axis reading and reports whether the axis is a
// confirmed mid-stream latch: previously live, now bit-identical for
// stuckRunSamples or longer.
//
//fallvet:hotpath
func (a *axisRun) observe(v float64) bool {
	if a.have && v == a.last {
		if a.live {
			a.run++
		}
		return a.run >= stuckRunSamples
	}
	if a.have {
		a.live = true
	}
	a.run = 0
	a.last = v
	a.have = true
	return false
}

// Baseline-drift detection: a slow additive bias (temperature drift on
// an uncalibrated MEMS part) corrupts every window long before any
// single reading looks implausible. The tracker follows two slow EMAs
// — accelerometer magnitude, which must hover near 1 g at the
// timescale of the filter, and the per-axis gyro rate, which must
// hover near 0 deg/s — and flags a channel group when the baseline
// stays outside its physical band for a sustained run. The run
// requirement is what separates drift from dynamics: a fall's
// free-fall/impact transient or a fast turn moves the EMA for well
// under a second, a bias ramp parks it outside the band permanently.
const (
	// driftTauSamples is the EMA time constant (1 s at 100 Hz).
	driftTauSamples = 100
	// driftWarmSamples gates flagging until the EMA has seen a full
	// time constant of data.
	driftWarmSamples = 100
	// accDriftHighG flags the accelerometer when EMA(|acc|) exceeds
	// 1 g by this margin. High side only: free fall legitimately drags
	// the magnitude toward 0 g, additive bias only ever ramps it up.
	accDriftHighG = 0.5
	// gyroDriftDPS flags a gyro axis whose EMA rate magnitude exceeds
	// this baseline (a resting gyro reads ~0; sustained rotation at
	// this rate for gyroDriftRunSamples is not human posture change).
	gyroDriftDPS = 75.0
	// accDriftRunSamples / gyroDriftRunSamples are the sustained-run
	// lengths before flagging; the gyro run is longer because fall
	// rotation bursts push its EMA far harder than impacts push the
	// magnitude EMA.
	accDriftRunSamples  = 50
	gyroDriftRunSamples = 100
)

// driftTrack maintains the baseline EMAs and their out-of-band runs.
type driftTrack struct {
	accN, gyroN int
	accMag      float64
	gyro        imu.Vec3
	accRun      int
	gyroRun     int
}

func (t *driftTrack) reset() { *t = driftTrack{} }

// observeAcc ingests one finite accelerometer reading (g) and reports
// whether the magnitude baseline is a confirmed high-side drift.
//
//fallvet:hotpath
func (t *driftTrack) observeAcc(acc imu.Vec3) bool {
	mag := math.Sqrt(acc.X*acc.X + acc.Y*acc.Y + acc.Z*acc.Z)
	if t.accN == 0 {
		t.accMag = mag
	} else {
		t.accMag += (mag - t.accMag) / driftTauSamples
	}
	t.accN++
	if t.accN >= driftWarmSamples && t.accMag-1 > accDriftHighG {
		t.accRun++
	} else {
		t.accRun = 0
	}
	return t.accRun >= accDriftRunSamples
}

// observeGyro ingests one finite gyroscope reading (deg/s) and reports
// whether any axis baseline is a confirmed drift.
//
//fallvet:hotpath
func (t *driftTrack) observeGyro(g imu.Vec3) bool {
	if t.gyroN == 0 {
		t.gyro = g
	} else {
		t.gyro.X += (g.X - t.gyro.X) / driftTauSamples
		t.gyro.Y += (g.Y - t.gyro.Y) / driftTauSamples
		t.gyro.Z += (g.Z - t.gyro.Z) / driftTauSamples
	}
	t.gyroN++
	m := math.Abs(t.gyro.X)
	if v := math.Abs(t.gyro.Y); v > m {
		m = v
	}
	if v := math.Abs(t.gyro.Z); v > m {
		m = v
	}
	if t.gyroN >= driftWarmSamples && m > gyroDriftDPS {
		t.gyroRun++
	} else {
		t.gyroRun = 0
	}
	return t.gyroRun >= gyroDriftRunSamples
}

// healthRing tracks which of the last N ingestion events were
// anomalous (quarantined or missing samples).
type healthRing struct {
	flags []bool
	pos   int
	bad   int
}

func newHealthRing(n int) *healthRing {
	return &healthRing{flags: make([]bool, n)}
}

func (h *healthRing) reset() {
	for i := range h.flags {
		h.flags[i] = false
	}
	h.pos, h.bad = 0, 0
}

//fallvet:hotpath
func (h *healthRing) observe(anomalous bool) {
	if h.flags[h.pos] {
		h.bad--
	}
	h.flags[h.pos] = anomalous
	if anomalous {
		h.bad++
	}
	// Conditional wrap, not modulo: four rings advance on every sample,
	// and an integer divide per ring is measurable on the push path.
	h.pos++
	if h.pos == len(h.flags) {
		h.pos = 0
	}
}

//fallvet:hotpath
func (h *healthRing) health() Health {
	switch {
	case h.bad == 0:
		return HealthHealthy
	case float64(h.bad) > faultedFraction*float64(len(h.flags)):
		return HealthFaulted
	default:
		return HealthDegraded
	}
}

// FaultStats counts the anomalies a detector has absorbed since the
// last Reset; it is diagnostic surface for deployment telemetry and
// for the robustness harness's "zero NaN scores" acceptance gate.
type FaultStats struct {
	// Quarantined counts samples rejected for non-finite components.
	Quarantined int
	// Missing counts samples reported absent via PushMissing.
	Missing int
	// Bridged counts missing/quarantined samples reconstructed by
	// sample-and-hold (short gaps only).
	Bridged int
	// Clamped counts samples clipped to the sensor full-scale range.
	Clamped int
	// Holdoffs counts long gaps that forced a filter re-prime and a
	// full-window warm-up before classification resumed.
	Holdoffs int
	// BadScores counts classifier outputs that were non-finite and
	// sanitised to 0 (should stay 0: the input guards exist so the
	// model never sees garbage).
	BadScores int
	// GyroHeld counts samples whose gyroscope reading was non-finite
	// while the accelerometer stayed good; the last finite angular
	// rate was substituted and the gyro/Euler groups marked anomalous.
	GyroHeld int
	// AccStuck counts samples on which the accelerometer was deemed
	// stuck: the whole vector bit-identical for stuckRunSamples, or any
	// single previously-live axis latched for as long.
	AccStuck int
	// GyroStuck counts samples on which the gyroscope was deemed stuck,
	// by the same whole-vector or per-axis criterion.
	GyroStuck int
	// AccDrift counts samples on which the accelerometer-magnitude
	// baseline was a confirmed high-side drift (see driftTrack).
	AccDrift int
	// GyroDrift counts samples on which a gyro-axis baseline was a
	// confirmed drift.
	GyroDrift int
}
