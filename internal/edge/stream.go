package edge

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/dsp"
	"repro/internal/fault"
	"repro/internal/imu"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Detector is the on-device real-time pipeline: each incoming
// accelerometer+gyroscope sample is fused into Euler angles, low-pass
// filtered causally (the streaming counterpart of the offline
// zero-phase filter), and pushed into a ring buffer; every Step
// samples, the most recent Window samples are classified.
//
// The pipeline does not trust its sensor. Non-finite readings are
// quarantined, readings beyond the configured full-scale range are
// clamped, and missing samples (reported via PushMissing) are bridged
// by sample-and-hold when the gap is short or force a filter re-prime
// plus a full-window warm-up when it is not — classifying a ring
// buffer that is half stale is how a fall gets missed or an airbag
// fires on garbage. The resulting Healthy/Degraded/Faulted state is
// surfaced on every Result.
//
// The scalar parameter S selects the compiled inference width: the
// ring buffer, the filtered samples and the attached incremental
// scorers all run at S. Raw sensor readings, the attitude fusion, the
// filter accumulators and every health/fault observer stay float64 at
// both widths — quarantine and stuck/drift detection must judge the
// sensor's actual values, not their rounded shadows, and IIR state
// compounds rounding (see dsp.FilterOf). DetectorOf[float64] is the
// reference pipeline, bit-identical to the pre-generic implementation;
// DetectorOf[float32] is the deployment width, scoring through lowered
// model snapshots.
type DetectorOf[S tensor.Scalar] struct {
	Window, Step int
	Threshold    float64

	//fallvet:derived immutable classifier reference, bound at construction; snapshots carry pipeline state, not weights
	clf     model.Classifier
	filters [imu.NumChannels]streamFilterOf[S]
	fusion  *imu.Fusion

	ring  []S // Window × 9, circular by row
	count int // samples ingested
	//fallvet:derived count % Window, recomputed from count on Reset/ReadState
	slot int
	//fallvet:derived preallocated classifier input scratch (Window × 9), refilled from the ring before every classification
	win *tensor.Of[S]
	// win64 is the float64 face of win for batch classifiers, which
	// score float64 tensors at every width. At S=float64 it aliases
	// win's storage (same buffer, zero cost); at S=float32 it is a
	// separate scratch that ScoreWindow widens the assembled window
	// into — exact, since float32→float64 loses nothing.
	//fallvet:derived float64 alias/widening scratch for win, established at construction
	win64 *tensor.Tensor

	// strideCtr counts down to the next stride boundary and atStride
	// latches whether count currently sits on one — together they are
	// the divide-free form of (count-Window)%Step == 0, maintained by
	// ingest and recomputed from count on Reset/ReadState.
	strideCtr int  //fallvet:derived recomputed from count by syncStride on Reset/ReadState
	atStride  bool //fallvet:derived recomputed from count by syncStride on Reset/ReadState

	// floatFl mirrors filters with their concrete type when the float
	// cascade is selected, so ingest can skip interface dispatch on
	// its nine per-sample filter calls. Nil entries mean fixed-point.
	//fallvet:derived concrete-type mirror of filters, re-established at construction; ReadState restores through the filters entries
	floatFl [imu.NumChannels]*dsp.FilterOf[S]

	// streams holds incremental scorers attached to classifiers
	// (DESIGN.md §12): every ingested row feeds them, and ScoreWindow
	// answers from the cached conv/pool rings instead of re-running
	// the network over the full window. Attachment is best-effort —
	// a classifier the nn.Streamer cannot cache simply scores in
	// batch form, bit-identically.
	//fallvet:derived incremental-scorer cache, rebuilt row by row via rebuildStream after ReadState
	streams []attachedStreamOf[S]

	fullScaleG   float64 //fallvet:derived immutable clamp configuration, fixed at construction
	fullScaleDPS float64 //fallvet:derived immutable clamp configuration, fixed at construction

	reprime     bool // filters must re-prime on the next real sample
	gapRun      int  // consecutive missing/quarantined samples so far
	freshNeeded int  // samples to ingest before classification resumes
	lastRow     [imu.NumChannels]float64
	haveLast    bool
	health      *healthRing
	groups      [NumGroups]*healthRing
	accRun      stuckRun
	gyroRun     stuckRun
	accAxes     [3]axisRun
	gyroAxes    [3]axisRun
	drift       driftTrack
	heldGyro    imu.Vec3 // last finite gyro reading, for gyro-only holds
	stats       FaultStats

	// snapF/snapI stage per-filter state during AppendState so a
	// snapshot cadence allocates nothing at steady state.
	snapF []float64
	snapI []int64
}

// Detector is the float64 reference detector — the exact pre-generic
// pipeline, and the width every training and evaluation path uses.
type Detector = DetectorOf[float64]

// attachedStreamOf pairs a classifier with its incremental scorer.
type attachedStreamOf[S tensor.Scalar] struct {
	clf model.Classifier
	st  *nn.StreamerOf[S]
}

// streamFilterOf is the causal per-channel pre-filter at sample width
// S; satisfied by the float dsp.FilterOf wrapper and the Q16.16
// fixedOf wrapper. Both keep their accumulators wider than S — the
// interface fixes only the sample boundary.
type streamFilterOf[S tensor.Scalar] interface {
	Process(x S) S
	Prime(x0 S)
	Reset()
}

// DefaultThreshold is the trigger probability applied when
// DetectorConfig.Threshold is left at its zero value.
const DefaultThreshold = 0.5

// ThresholdAlways is an explicit zero decision threshold: every
// evaluated window triggers. Any negative Threshold selects it — the
// zero value of DetectorConfig.Threshold means "unset" and picks
// DefaultThreshold instead, so a literal 0 needs a distinct spelling.
const ThresholdAlways = -1.0

// maxBridgeSamples is the longest gap (in samples) bridged by
// sample-and-hold; 50 ms at 100 Hz. Longer gaps cannot be papered
// over — the pipeline re-primes and warms up instead.
const maxBridgeSamples = 5

// DetectorConfig sizes the streaming pipeline.
type DetectorConfig struct {
	// WindowMS and Overlap mirror the training segmentation.
	WindowMS int
	Overlap  float64
	// Threshold is the trigger probability. The zero value selects
	// DefaultThreshold (0.5); negative values select an explicit
	// threshold of 0 (see ThresholdAlways).
	Threshold float64
	// FixedPoint selects the Q16.16 integer pre-filter instead of the
	// float cascade, as fielded firmware often does to keep the FPU
	// free for the CNN.
	FixedPoint bool
	// FullScaleG and FullScaleDPS are the sensor full-scale ranges;
	// incoming readings are clamped to ±FullScale as the physical part
	// would. Zero values select ±16 g and ±2000 deg/s, the widest
	// common MEMS configuration.
	FullScaleG   float64
	FullScaleDPS float64
}

// NewDetector builds the float64 reference pipeline around a trained
// classifier.
func NewDetector(clf model.Classifier, cfg DetectorConfig) (*Detector, error) {
	return NewDetectorOf[float64](clf, cfg)
}

// NewDetectorOf builds the pipeline at scalar width S. At float32 the
// classifier's network weights are lowered once at attach time (see
// AttachStream); classifiers without an attachable incremental scorer
// fall back to batch scoring through an exact float64 widening of the
// assembled window.
func NewDetectorOf[S tensor.Scalar](clf model.Classifier, cfg DetectorConfig) (*DetectorOf[S], error) {
	win := cfg.WindowMS * dataset.SampleRate / 1000
	if win < 2 {
		return nil, fmt.Errorf("edge: window %d ms too short", cfg.WindowMS)
	}
	if cfg.Overlap < 0 || cfg.Overlap >= 1 {
		return nil, fmt.Errorf("edge: overlap %g outside [0,1)", cfg.Overlap)
	}
	thr := cfg.Threshold
	switch {
	case thr == 0:
		thr = DefaultThreshold
	case thr < 0:
		thr = 0
	}
	fsG := cfg.FullScaleG
	if fsG == 0 {
		fsG = 16
	}
	fsDPS := cfg.FullScaleDPS
	if fsDPS == 0 {
		fsDPS = 2000
	}
	if fsG < 0 || fsDPS < 0 {
		return nil, fmt.Errorf("edge: negative full-scale range (%g g, %g dps)", fsG, fsDPS)
	}
	d := &DetectorOf[S]{
		Window:       win,
		Step:         dsp.Step(win, cfg.Overlap),
		Threshold:    thr,
		clf:          clf,
		fusion:       imu.MustNewFusion(dataset.SampleRate, 0.5),
		ring:         make([]S, win*imu.NumChannels),
		win:          tensor.NewOf[S](win, imu.NumChannels),
		fullScaleG:   fsG,
		fullScaleDPS: fsDPS,
		reprime:      true,
		health:       newHealthRing(win),
	}
	if t, ok := any(d.win).(*tensor.Tensor); ok {
		d.win64 = t // float64: the same storage, no widening ever needed
	} else {
		d.win64 = tensor.New(win, imu.NumChannels)
	}
	for g := range d.groups {
		d.groups[g] = newHealthRing(win)
	}
	for c := range d.filters {
		fl := dsp.MustButterworth(4, 5, dataset.SampleRate)
		if cfg.FixedPoint {
			ff, err := NewFixedFilter(fl)
			if err != nil {
				return nil, err
			}
			d.filters[c] = &fixedOf[S]{f: ff}
		} else {
			w := dsp.WrapFilter[S](fl)
			d.filters[c] = w
			d.floatFl[c] = w
		}
	}
	d.syncStride()
	d.AttachStream(clf)
	return d, nil
}

// AttachStream attaches an incremental scorer (nn.Streamer) to clf:
// subsequent ScoreWindow(clf) calls at aligned strides answer from
// cached per-layer rings instead of re-running the network over the
// whole window, bit-identically. It returns false — and the
// classifier keeps scoring in batch form — when clf is not a network
// model or its topology cannot be cached (MLP, recurrent, misaligned
// pooling). Attaching the same classifier twice is a no-op.
func (d *DetectorOf[S]) AttachStream(clf model.Classifier) bool {
	for i := range d.streams {
		if d.streams[i].clf == clf {
			return true
		}
	}
	nm, ok := clf.(*model.NetModel)
	if !ok {
		return false
	}
	st, err := nn.NewStreamerOf[S](nm.Net, nn.StreamConfig{
		InCh:   imu.NumChannels,
		Window: d.Window,
		Step:   d.Step,
		// The detector re-bases yaw per window (see assembleWindow);
		// the streamer recomputes branches reading it in batch form.
		RebaseCols: []int{imu.EulerYaw},
	})
	if err != nil || !st.Streaming() {
		return false
	}
	d.streams = append(d.streams, attachedStreamOf[S]{clf: clf, st: st})
	d.rebuildStream(len(d.streams) - 1)
	return true
}

// rebuildStream replays the ring into stream i so its caches reach
// the exact state of a streamer that saw every row — the invariant
// nn.Streamer.Restart documents. Used at attach and state restore.
func (d *DetectorOf[S]) rebuildStream(i int) {
	st := d.streams[i].st
	n := d.count
	if n > d.Window {
		n = d.Window
	}
	st.Restart(d.count - n)
	start := (d.count - n) % d.Window
	for j := 0; j < n; j++ {
		slot := (start + j) % d.Window
		st.Push(d.ring[slot*imu.NumChannels : (slot+1)*imu.NumChannels])
	}
}

// Reset clears all pipeline state, including health and fault
// counters.
func (d *DetectorOf[S]) Reset() {
	d.count = 0
	d.syncStride()
	d.fusion.Reset()
	for c := range d.filters {
		d.filters[c].Reset()
	}
	for i := range d.ring {
		d.ring[i] = 0
	}
	d.reprime = true
	d.gapRun = 0
	d.freshNeeded = 0
	d.haveLast = false
	d.health.reset()
	for g := range d.groups {
		d.groups[g].reset()
	}
	d.accRun.reset()
	d.gyroRun.reset()
	for i := range d.accAxes {
		d.accAxes[i].reset()
		d.gyroAxes[i].reset()
	}
	d.drift.reset()
	d.heldGyro = imu.Vec3{}
	d.stats = FaultStats{}
	for i := range d.streams {
		d.streams[i].st.Reset()
	}
}

// Health reports the pipeline's current degradation state.
func (d *DetectorOf[S]) Health() Health { return d.health.health() }

// GroupHealth reports the per-channel-group degradation state. Unlike
// the overall Health it does not gate the base detector's evaluation;
// it exists for a supervising cascade to decide which model tier the
// ring buffer can still support (a dead gyroscope poisons the gyro and
// Euler branches, but the accelerometer columns stay trustworthy).
//
//fallvet:hotpath
func (d *DetectorOf[S]) GroupHealth() GroupHealth {
	return GroupHealth{
		Acc:   d.groups[GroupAcc].health(),
		Gyro:  d.groups[GroupGyro].health(),
		Euler: d.groups[GroupEuler].health(),
	}
}

// Stats returns the fault counters accumulated since the last Reset.
func (d *DetectorOf[S]) Stats() FaultStats { return d.stats }

// Result is one Push outcome.
type Result struct {
	// Evaluated is true when this sample completed a stride and the
	// classifier ran.
	Evaluated bool
	// Probability is the classifier output when Evaluated.
	Probability float64
	// Triggered is true when the probability crossed the threshold.
	Triggered bool
	// Health is the pipeline's degradation state after this sample.
	Health Health
	// Quarantined is true when the pushed sample carried non-finite
	// values and was treated as missing.
	Quarantined bool
	// Clamped is true when a component exceeded the sensor full-scale
	// range and was clipped.
	Clamped bool
}

//fallvet:hotpath
func finiteVec(v imu.Vec3) bool {
	// x−x is +0 for every finite x and NaN for ±Inf/NaN, so the sum is
	// 0 exactly when all three components are real numbers. Branchless,
	// unlike six IsNaN/IsInf tests, and this runs twice per sample.
	return (v.X-v.X)+(v.Y-v.Y)+(v.Z-v.Z) == 0
}

// clamp1 clips one component to ±lim, recording whether it clipped.
// A named function rather than a closure: the capture would be the
// only heap traffic on the push path.
//
//fallvet:hotpath
func clamp1(x, lim float64, clipped *bool) float64 {
	if x > lim {
		*clipped = true
		return lim
	}
	if x < -lim {
		*clipped = true
		return -lim
	}
	return x
}

//fallvet:hotpath
func clampFull(v imu.Vec3, lim float64, clipped *bool) imu.Vec3 {
	return imu.Vec3{
		X: clamp1(v.X, lim, clipped),
		Y: clamp1(v.Y, lim, clipped),
		Z: clamp1(v.Z, lim, clipped),
	}
}

// Push ingests one raw sample (acceleration in g, angular rate in
// deg/s) and runs the classifier when a stride completes. Non-finite
// accelerometer samples never reach the filters or the model: they are
// quarantined and handled exactly like a missing sample. A non-finite
// gyroscope with a finite accelerometer is held instead (the last good
// angular rate is substituted): the accelerometer columns stay live
// while the gyro and Euler groups are marked anomalous, so a cascade
// can keep classifying on the branch that still has real data.
//
//fallvet:hotpath
func (d *DetectorOf[S]) Push(acc, gyro imu.Vec3) Result {
	return d.push(acc, gyro, true)
}

// Ingest is Push without the classifier: the sample runs the full
// quarantine/clamp/filter/health path and lands in the ring buffer,
// but no evaluation happens even at a stride boundary. A supervising
// cascade ingests every sample exactly once and then decides which
// model tier (if any) to score the window with via ScoreWindow.
//
//fallvet:hotpath
func (d *DetectorOf[S]) Ingest(acc, gyro imu.Vec3) Result {
	return d.push(acc, gyro, false)
}

//fallvet:hotpath
func (d *DetectorOf[S]) push(acc, gyro imu.Vec3, eval bool) Result {
	if !finiteVec(acc) {
		d.stats.Quarantined++
		r := d.absorbMissing(eval)
		r.Quarantined = true
		return r
	}
	gyroHeld := !finiteVec(gyro)
	if gyroHeld {
		// Gyro-only failure: substitute the held reading (zero before
		// the first good sample) so fusion and the ring stay finite.
		d.stats.GyroHeld++
		gyro = d.heldGyro
	}
	clamped := false
	acc = clampFull(acc, d.fullScaleG, &clamped)
	gyro = clampFull(gyro, d.fullScaleDPS, &clamped)
	if clamped {
		d.stats.Clamped++
	}
	d.gapRun = 0

	// Stuck detection runs at two granularities: the whole vector
	// (catches a frozen sensor die immediately, even one frozen from
	// the first sample) and per axis with a liveness gate (catches the
	// single dead ADC lane the whole-vector comparison is blind to —
	// the siblings keep moving, so the vectors keep differing).
	accStuck := d.accRun.observe(acc)
	if d.accAxes[0].observe(acc.X) {
		accStuck = true
	}
	if d.accAxes[1].observe(acc.Y) {
		accStuck = true
	}
	if d.accAxes[2].observe(acc.Z) {
		accStuck = true
	}
	if accStuck {
		d.stats.AccStuck++
	}
	accDrift := d.drift.observeAcc(acc)
	if accDrift {
		d.stats.AccDrift++
	}
	gyroAnom := gyroHeld
	gyroDrift := false
	if !gyroHeld {
		d.heldGyro = gyro
		gyroStuck := d.gyroRun.observe(gyro)
		if d.gyroAxes[0].observe(gyro.X) {
			gyroStuck = true
		}
		if d.gyroAxes[1].observe(gyro.Y) {
			gyroStuck = true
		}
		if d.gyroAxes[2].observe(gyro.Z) {
			gyroStuck = true
		}
		if gyroStuck {
			d.stats.GyroStuck++
			gyroAnom = true
		}
		gyroDrift = d.drift.observeGyro(gyro)
		if gyroDrift {
			d.stats.GyroDrift++
		}
	}

	euler := d.fusion.Update(acc, gyro)
	row := [imu.NumChannels]float64{
		acc.X, acc.Y, acc.Z,
		gyro.X, gyro.Y, gyro.Z,
		euler.X, euler.Y, euler.Z,
	}
	d.ingest(row)
	// A held gyro keeps the overall pipeline anomalous — the primary
	// three-branch model must not trust a window whose gyro and Euler
	// columns are reconstructions — but only the affected groups are
	// marked, so the accelerometer branch stays available to a cascade.
	d.health.observe(gyroHeld)
	d.groups[GroupAcc].observe(accStuck || accDrift)
	d.groups[GroupGyro].observe(gyroAnom || gyroDrift)
	d.groups[GroupEuler].observe(gyroAnom || gyroDrift || accStuck || accDrift)
	if d.freshNeeded > 0 {
		d.freshNeeded--
	}
	if !eval {
		r := Result{Health: d.health.health()}
		r.Clamped = clamped
		return r
	}
	r := d.maybeEvaluate()
	r.Clamped = clamped
	return r
}

// PushMissing accounts for n samples the sensor failed to deliver
// (radio stall, bus error, jittering clock). Short gaps (up to
// maxBridgeSamples) are bridged by re-filtering the last good reading
// — the window stays classifiable, at Degraded health. Longer gaps
// abandon bridging: the filters and fusion will re-prime on the next
// real sample and classification is held off until a full window of
// fresh samples has accumulated, so the model never scores a ring
// buffer of stale contents. The returned Result reflects the state
// after the last missing sample.
//
//fallvet:hotpath
func (d *DetectorOf[S]) PushMissing(n int) Result {
	return d.pushMissing(n, true)
}

// IngestMissing is PushMissing without the classifier, mirroring
// Ingest for gap accounting under a supervising cascade.
//
//fallvet:hotpath
func (d *DetectorOf[S]) IngestMissing(n int) Result {
	return d.pushMissing(n, false)
}

//fallvet:hotpath
func (d *DetectorOf[S]) pushMissing(n int, eval bool) Result {
	var r Result
	r.Health = d.health.health()
	for i := 0; i < n; i++ {
		d.stats.Missing++
		r = d.absorbMissing(eval)
	}
	return r
}

// absorbMissing handles one missing (or quarantined) sample.
//
//fallvet:hotpath
func (d *DetectorOf[S]) absorbMissing(eval bool) Result {
	d.gapRun++
	d.health.observe(true)
	d.groups[GroupAcc].observe(true)
	d.groups[GroupGyro].observe(true)
	d.groups[GroupEuler].observe(true)
	if d.gapRun <= maxBridgeSamples && d.haveLast {
		// Bridge: the filters keep running on the held reading, as a
		// latching sensor driver behaves across a short gap.
		d.stats.Bridged++
		d.ingest(d.lastRow)
		if !eval {
			return Result{Health: d.health.health()}
		}
		return d.maybeEvaluate()
	}
	if d.gapRun == maxBridgeSamples+1 {
		// The gap just exceeded what sample-and-hold can honestly
		// cover: schedule a re-prime and a full-window warm-up.
		// (Missing samples before the first real one need no holdoff —
		// the initial window fill already gates classification.)
		if d.count > 0 {
			d.stats.Holdoffs++
			d.freshNeeded = d.Window
		}
		d.reprime = true
		d.fusion.Reset()
		d.haveLast = false
	}
	return Result{Health: d.health.health()}
}

// ingest filters one raw 9-channel row into the ring buffer.
//
//fallvet:hotpath
func (d *DetectorOf[S]) ingest(row [imu.NumChannels]float64) {
	if d.reprime {
		// Prime the causal filters so their startup transient (a ramp
		// up from zero) is not mistaken for free fall — on the very
		// first reading and again after any long gap.
		for c := 0; c < imu.NumChannels; c++ {
			d.filters[c].Prime(S(row[c]))
		}
		d.reprime = false
	}
	slot := d.slot
	if d.floatFl[0] != nil {
		// Concrete float cascade: direct calls, no interface dispatch
		// on the nine per-sample Process calls.
		for c := 0; c < imu.NumChannels; c++ {
			// Filter in physical units, then apply the same per-channel
			// normalisation the training segments use. Unit scales skip
			// the divide (x/1.0 is the identity, bit for bit) — three
			// of the nine divsd per sample do nothing.
			v := d.floatFl[c].Process(S(row[c]))
			if s := imu.ChannelScale(c); s != 1 {
				v /= S(s)
			}
			d.ring[slot*imu.NumChannels+c] = v
		}
	} else {
		for c := 0; c < imu.NumChannels; c++ {
			v := d.filters[c].Process(S(row[c]))
			if s := imu.ChannelScale(c); s != 1 {
				v /= S(s)
			}
			d.ring[slot*imu.NumChannels+c] = v
		}
	}
	for i := range d.streams {
		// Feed the incremental scorers the exact ring row — bridged
		// gaps included — so their caches always mirror the ring.
		d.streams[i].st.Push(d.ring[slot*imu.NumChannels : (slot+1)*imu.NumChannels])
	}
	d.lastRow = row
	d.haveLast = true
	d.count++
	d.slot = slot + 1
	if d.slot == d.Window {
		d.slot = 0
	}
	d.strideCtr--
	if d.strideCtr == 0 {
		d.atStride = true
		d.strideCtr = d.Step
	} else {
		d.atStride = false
	}
}

// syncStride recomputes the divide-free stride/slot bookkeeping from
// the absolute sample count — the slow, obviously-correct form ingest
// maintains incrementally. Called whenever count is set directly
// (construction, Reset, state restore).
func (d *DetectorOf[S]) syncStride() {
	d.slot = d.count % d.Window
	if d.count < d.Window {
		d.strideCtr = d.Window - d.count
		d.atStride = false
		return
	}
	r := (d.count - d.Window) % d.Step
	d.atStride = r == 0
	d.strideCtr = d.Step - r
}

// StrideReady reports whether the current sample count sits on a
// stride boundary: the window is full and Step samples have elapsed
// since the previous boundary. It says nothing about whether the ring
// contents are trustworthy — see WindowFresh and Health for that.
//
//fallvet:hotpath
func (d *DetectorOf[S]) StrideReady() bool {
	return d.atStride
}

// WindowFresh reports whether the ring buffer holds a full window with
// no outstanding warm-up: no long gap has forced a re-prime whose
// fresh-sample quota is still unpaid.
//
//fallvet:hotpath
func (d *DetectorOf[S]) WindowFresh() bool {
	return d.count >= d.Window && d.freshNeeded == 0
}

// assembleWindow copies the ring oldest-first into the preallocated
// input tensor and re-bases yaw, exactly as the training segmentation
// does. The push path must not allocate at steady state.
//
//fallvet:hotpath
func (d *DetectorOf[S]) assembleWindow() *tensor.Of[S] {
	x := d.win
	xd := x.Data()
	start := d.count % d.Window // oldest row slot
	for i := 0; i < d.Window; i++ {
		src := (start + i) % d.Window
		copy(xd[i*imu.NumChannels:(i+1)*imu.NumChannels],
			d.ring[src*imu.NumChannels:(src+1)*imu.NumChannels])
	}
	// Window-relative yaw, matching training segmentation: absolute
	// yaw drifts without bound over long wear (pure gyro integration).
	yaw0 := xd[imu.EulerYaw]
	for i := 0; i < d.Window; i++ {
		xd[i*imu.NumChannels+imu.EulerYaw] -= yaw0
	}
	return x
}

// ScoreWindow scores the current window with the given classifier —
// the detector's own by way of Push, or an alternate tier's model
// under a cascade (the reduced-input fallback reads a column subset
// of the same [Window × 9] tensor). A classifier with an attached
// incremental scorer (see AttachStream) answers from its cached
// conv/pool rings; anything else assembles and scores the full
// window. The two paths are bit-identical (FuzzIncrementalScore).
// The boolean is false when the classifier returned a non-finite
// score, which is sanitised to 0 and counted in Stats().BadScores.
// Callers own the stride/freshness gating; ScoreWindow assumes a
// full ring.
//
//fallvet:hotpath
func (d *DetectorOf[S]) ScoreWindow(clf model.Classifier) (float64, bool) {
	p := math.NaN()
	scored := false
	for i := range d.streams {
		if d.streams[i].clf == clf {
			if d.streams[i].st.Ready() {
				p = d.streams[i].st.Score()
				scored = true
			}
			break
		}
	}
	if !scored {
		w := d.assembleWindow()
		x := d.win64 // float64: w's own storage, already filled
		if !tensor.Is64[S]() {
			x = tensor.Widen(d.win64, w)
		}
		p = clf.Score(x)
	}
	if math.IsNaN(p) || math.IsInf(p, 0) {
		// The input guards should make this unreachable; sanitise
		// anyway so a misbehaving model can never fire the airbag or
		// poison downstream metrics with NaN.
		d.stats.BadScores++
		return 0, false
	}
	return math.Max(0, math.Min(1, p)), true
}

// maybeEvaluate runs the classifier when a stride has completed and
// the pipeline is in a state it trusts.
//
//fallvet:hotpath
func (d *DetectorOf[S]) maybeEvaluate() Result {
	h := d.health.health()
	r := Result{Health: h}
	if !d.StrideReady() {
		return r
	}
	if d.freshNeeded > 0 || h == HealthFaulted {
		// Stride boundary reached, but the ring holds too much
		// reconstructed or stale data to act on.
		return r
	}
	p, ok := d.ScoreWindow(d.clf)
	r.Evaluated = true
	r.Probability = p
	r.Triggered = ok && p >= d.Threshold
	return r
}

// TrialSim is the outcome of replaying one trial through the detector
// with an airbag attached.
type TrialSim struct {
	// Triggered is true when the detector fired at least once.
	Triggered bool
	// TriggerSample is the first firing sample (-1 when not fired).
	TriggerSample int
	// LeadTimeMS is the margin between trigger and impact for fall
	// trials; the airbag needs ≥ AirbagInflationMS.
	LeadTimeMS float64
	// InTime is true when a fall was detected with enough lead time
	// for full inflation before impact.
	InTime bool
	// FalseAlarm is true when the detector fired during an ADL trial.
	FalseAlarm bool
	// Evals counts completed classifier evaluations before the replay
	// ended (at trigger or end of trial) — telemetry for how blind a
	// fault condition left the pipeline.
	Evals int
}

// Simulate replays a trial sample by sample and evaluates the airbag
// deadline: for falls, the detector must fire at least
// AirbagInflationMS before the annotated impact.
func (d *DetectorOf[S]) Simulate(t *dataset.Trial) TrialSim {
	return d.SimulateFaulty(t, nil)
}

// SimulateFaulty replays a trial through the detector with a fault
// injector sitting between the recorded sensor and the pipeline: a
// dropped sample becomes a PushMissing gap, a repeated sample is
// pushed twice, everything else is pushed as (possibly corrupted)
// data. A nil injector replays the clean trial. The injector is Reset
// first, so replays are deterministic.
func (d *DetectorOf[S]) SimulateFaulty(t *dataset.Trial, inj fault.Injector) TrialSim {
	d.Reset()
	if inj != nil {
		inj.Reset()
	}
	sim := TrialSim{TriggerSample: -1}
	for i, s := range t.Samples {
		var r Result
		if inj == nil {
			r = d.Push(s.Acc, s.Gyro)
		} else {
			cs, eff := inj.Apply(s)
			switch eff {
			case fault.Drop:
				r = d.PushMissing(1)
			case fault.Repeat:
				d.Push(cs.Acc, cs.Gyro)
				r = d.Push(cs.Acc, cs.Gyro)
			case fault.Pass:
				r = d.Push(cs.Acc, cs.Gyro)
			}
		}
		if r.Evaluated {
			sim.Evals++
		}
		if r.Triggered && sim.TriggerSample < 0 {
			sim.Triggered = true
			sim.TriggerSample = i
			if !t.IsFall() {
				sim.FalseAlarm = true
			}
			break
		}
	}
	if t.IsFall() && sim.Triggered {
		sim.LeadTimeMS = float64(t.Impact-sim.TriggerSample) * 1000 / dataset.SampleRate
		sim.InTime = sim.LeadTimeMS >= dataset.AirbagInflationMS
	}
	return sim
}
