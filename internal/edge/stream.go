package edge

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/dsp"
	"repro/internal/imu"
	"repro/internal/model"
	"repro/internal/tensor"
)

// Detector is the on-device real-time pipeline: each incoming
// accelerometer+gyroscope sample is fused into Euler angles, low-pass
// filtered causally (the streaming counterpart of the offline
// zero-phase filter), and pushed into a ring buffer; every Step
// samples, the most recent Window samples are classified.
type Detector struct {
	Window, Step int
	Threshold    float64

	clf     model.Classifier
	filters [imu.NumChannels]streamFilter
	fusion  *imu.Fusion

	ring  []float64 // Window × 9, circular by row
	count int       // samples ingested
}

// streamFilter is the causal per-channel pre-filter; satisfied by
// both the float dsp.Filter and the Q16.16 FixedFilter.
type streamFilter interface {
	Process(x float64) float64
	Prime(x0 float64)
	Reset()
}

// DetectorConfig sizes the streaming pipeline.
type DetectorConfig struct {
	// WindowMS and Overlap mirror the training segmentation.
	WindowMS int
	Overlap  float64
	// Threshold is the trigger probability (default 0.5).
	Threshold float64
	// FixedPoint selects the Q16.16 integer pre-filter instead of the
	// float cascade, as fielded firmware often does to keep the FPU
	// free for the CNN.
	FixedPoint bool
}

// NewDetector builds the pipeline around a trained classifier.
func NewDetector(clf model.Classifier, cfg DetectorConfig) (*Detector, error) {
	win := cfg.WindowMS * dataset.SampleRate / 1000
	if win < 2 {
		return nil, fmt.Errorf("edge: window %d ms too short", cfg.WindowMS)
	}
	if cfg.Overlap < 0 || cfg.Overlap >= 1 {
		return nil, fmt.Errorf("edge: overlap %g outside [0,1)", cfg.Overlap)
	}
	thr := cfg.Threshold
	if thr == 0 {
		thr = 0.5
	}
	d := &Detector{
		Window:    win,
		Step:      dsp.Step(win, cfg.Overlap),
		Threshold: thr,
		clf:       clf,
		fusion:    imu.MustNewFusion(dataset.SampleRate, 0.5),
		ring:      make([]float64, win*imu.NumChannels),
	}
	for c := range d.filters {
		fl := dsp.MustButterworth(4, 5, dataset.SampleRate)
		if cfg.FixedPoint {
			ff, err := NewFixedFilter(fl)
			if err != nil {
				return nil, err
			}
			d.filters[c] = ff
		} else {
			d.filters[c] = fl
		}
	}
	return d, nil
}

// Reset clears all pipeline state.
func (d *Detector) Reset() {
	d.count = 0
	d.fusion.Reset()
	for c := range d.filters {
		d.filters[c].Reset()
	}
	for i := range d.ring {
		d.ring[i] = 0
	}
}

// Result is one Push outcome.
type Result struct {
	// Evaluated is true when this sample completed a stride and the
	// classifier ran.
	Evaluated bool
	// Probability is the classifier output when Evaluated.
	Probability float64
	// Triggered is true when the probability crossed the threshold.
	Triggered bool
}

// Push ingests one raw sample (acceleration in g, angular rate in
// deg/s) and runs the classifier when a stride completes.
func (d *Detector) Push(acc, gyro imu.Vec3) Result {
	euler := d.fusion.Update(acc, gyro)
	row := [imu.NumChannels]float64{
		acc.X, acc.Y, acc.Z,
		gyro.X, gyro.Y, gyro.Z,
		euler.X, euler.Y, euler.Z,
	}
	if d.count == 0 {
		// Prime the causal filters on the first reading so their
		// startup transient (a ramp up from zero) is not mistaken for
		// free fall.
		for c := 0; c < imu.NumChannels; c++ {
			d.filters[c].Prime(row[c])
		}
	}
	slot := d.count % d.Window
	for c := 0; c < imu.NumChannels; c++ {
		// Filter in physical units, then apply the same per-channel
		// normalisation the training segments use.
		d.ring[slot*imu.NumChannels+c] = d.filters[c].Process(row[c]) / imu.ChannelScale(c)
	}
	d.count++

	if d.count < d.Window || (d.count-d.Window)%d.Step != 0 {
		return Result{}
	}
	// Assemble the window oldest-first.
	x := tensor.New(d.Window, imu.NumChannels)
	xd := x.Data()
	start := d.count % d.Window // oldest row slot
	for i := 0; i < d.Window; i++ {
		src := (start + i) % d.Window
		copy(xd[i*imu.NumChannels:(i+1)*imu.NumChannels],
			d.ring[src*imu.NumChannels:(src+1)*imu.NumChannels])
	}
	// Window-relative yaw, matching training segmentation: absolute
	// yaw drifts without bound over long wear (pure gyro integration).
	yaw0 := xd[imu.EulerYaw]
	for i := 0; i < d.Window; i++ {
		xd[i*imu.NumChannels+imu.EulerYaw] -= yaw0
	}
	p := d.clf.Score(x)
	return Result{Evaluated: true, Probability: p, Triggered: p >= d.Threshold}
}

// TrialSim is the outcome of replaying one trial through the detector
// with an airbag attached.
type TrialSim struct {
	// Triggered is true when the detector fired at least once.
	Triggered bool
	// TriggerSample is the first firing sample (-1 when not fired).
	TriggerSample int
	// LeadTimeMS is the margin between trigger and impact for fall
	// trials; the airbag needs ≥ AirbagInflationMS.
	LeadTimeMS float64
	// InTime is true when a fall was detected with enough lead time
	// for full inflation before impact.
	InTime bool
	// FalseAlarm is true when the detector fired during an ADL trial.
	FalseAlarm bool
}

// Simulate replays a trial sample by sample and evaluates the airbag
// deadline: for falls, the detector must fire at least
// AirbagInflationMS before the annotated impact.
func (d *Detector) Simulate(t *dataset.Trial) TrialSim {
	d.Reset()
	sim := TrialSim{TriggerSample: -1}
	for i, s := range t.Samples {
		r := d.Push(s.Acc, s.Gyro)
		if r.Triggered && sim.TriggerSample < 0 {
			sim.Triggered = true
			sim.TriggerSample = i
			if !t.IsFall() {
				sim.FalseAlarm = true
			}
			break
		}
	}
	if t.IsFall() && sim.Triggered {
		sim.LeadTimeMS = float64(t.Impact-sim.TriggerSample) * 1000 / dataset.SampleRate
		sim.InTime = sim.LeadTimeMS >= dataset.AirbagInflationMS
	}
	return sim
}
