package edge

import "testing"

func fire(p float64) Result { return Result{Evaluated: true, Probability: p, Triggered: true} }
func quiet() Result         { return Result{Evaluated: true, Probability: 0.1} }
func noEval() Result        { return Result{} }

func TestAirbagDefaultFiresImmediately(t *testing.T) {
	a := NewAirbag(AirbagConfig{})
	if !a.Observe(100, fire(0.9)) {
		t.Fatal("debounce-1 controller must fire on the first trigger")
	}
	if a.Fired() != 1 {
		t.Fatal("fired count")
	}
}

func TestAirbagDebounceRequiresConsecutive(t *testing.T) {
	a := NewAirbag(AirbagConfig{Debounce: 2})
	if a.Observe(0, fire(0.9)) {
		t.Fatal("fired on the first of two required triggers")
	}
	// A quiet evaluation breaks the streak.
	if a.Observe(20, quiet()) {
		t.Fatal("fired on quiet")
	}
	if a.Observe(40, fire(0.9)) {
		t.Fatal("streak should have been reset")
	}
	if !a.Observe(60, fire(0.9)) {
		t.Fatal("two consecutive triggers must fire")
	}
}

func TestAirbagNonEvaluationsDoNotBreakStreak(t *testing.T) {
	// Between strides, Push returns non-evaluated results; they must
	// neither count toward nor break the debounce streak.
	a := NewAirbag(AirbagConfig{Debounce: 2})
	a.Observe(0, fire(0.9))
	for i := 1; i < 20; i++ {
		a.Observe(i, noEval())
	}
	if !a.Observe(20, fire(0.9)) {
		t.Fatal("non-evaluations broke the streak")
	}
}

func TestAirbagRefractoryLockout(t *testing.T) {
	a := NewAirbag(AirbagConfig{RefractorySamples: 1000})
	if !a.Observe(0, fire(0.9)) {
		t.Fatal("first firing")
	}
	if a.Observe(500, fire(0.99)) {
		t.Fatal("fired inside the refractory window")
	}
	if !a.Observe(1000, fire(0.99)) {
		t.Fatal("lockout should have expired")
	}
	if a.Fired() != 2 {
		t.Fatalf("fired = %d", a.Fired())
	}
}

func TestAirbagReset(t *testing.T) {
	a := NewAirbag(AirbagConfig{Debounce: 2, RefractorySamples: 10000})
	a.Observe(0, fire(0.9))
	a.Observe(20, fire(0.9)) // fires, locks out
	a.Reset()
	if a.Fired() != 0 {
		t.Fatal("reset did not clear count")
	}
	a.Observe(0, fire(0.9))
	if !a.Observe(20, fire(0.9)) {
		t.Fatal("reset did not clear lockout/streak")
	}
	if a.String() == "" {
		t.Fatal("empty description")
	}
}

func TestAirbagFaultedOutageResetsDebounce(t *testing.T) {
	// Regression: debounce progress accumulated before a sensor outage
	// must not survive it. Before the fix, a trigger just before the
	// pipeline went Faulted left consec=1 across the whole outage, and
	// the first trigger after recovery fired a Debounce=2 airbag off a
	// pair of "consecutive" strides separated by seconds of blindness.
	a := NewAirbag(AirbagConfig{Debounce: 2})
	if a.Observe(0, fire(0.9)) {
		t.Fatal("fired on the first of two required triggers")
	}
	// Sensor outage: no evaluations, health Faulted.
	for i := 1; i < 200; i++ {
		if a.Observe(i, Result{Health: HealthFaulted}) {
			t.Fatal("fired during the outage")
		}
	}
	// Recovery: the first trigger after the outage must restart the
	// streak, not complete the stale one.
	if a.Observe(200, fire(0.9)) {
		t.Fatal("stale pre-outage debounce progress fired the airbag on recovery")
	}
	if !a.Observe(220, fire(0.9)) {
		t.Fatal("two consecutive post-recovery triggers must fire")
	}
}

func TestAirbagDegradedDoesNotBreakStreak(t *testing.T) {
	// Degraded health keeps classifying, so the streak semantics must
	// be untouched — only a Faulted outage invalidates progress.
	a := NewAirbag(AirbagConfig{Debounce: 2})
	a.Observe(0, Result{Evaluated: true, Probability: 0.9, Triggered: true, Health: HealthDegraded})
	if !a.Observe(20, Result{Evaluated: true, Probability: 0.9, Triggered: true, Health: HealthDegraded}) {
		t.Fatal("two consecutive degraded triggers must fire")
	}
}
