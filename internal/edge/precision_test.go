package edge

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/artifact"
	"repro/internal/imu"
	"repro/internal/model"
)

// probTol bounds |p32 − p64| for the CNN used below. Inputs are
// hardened (clamped to sensor full scale) before they reach the ring,
// so activations are bounded and the single-precision rounding error
// through two conv stacks and the head stays orders of magnitude under
// this.
const probTol = 1e-3

// FuzzPrecisionScore is the cross-width oracle: a float32 pipeline and
// the float64 reference pipeline around the same checkpoint must agree
// on every width-independent field (health, quarantine, clamping,
// stride phase — all of which run float64 at both widths by design) and
// on the fall probability to within probTol, over arbitrary streams of
// quiet wear, violent motion, clamped readings, non-finite garbage and
// sensor gaps. Trigger decisions may differ only when the probability
// sits within probTol of the threshold — the regime the
// decision-agreement sweep quantifies statistically.
func FuzzPrecisionScore(f *testing.F) {
	f.Add(int64(1), uint16(120))
	f.Add(int64(2), uint16(300))
	f.Add(int64(-77), uint16(64))
	f.Add(int64(987654), uint16(513))

	m, err := model.New(model.KindCNN, model.Config{WindowSamples: 40}, rand.New(rand.NewSource(9)))
	if err != nil {
		f.Fatal(err)
	}
	cfg := DetectorConfig{WindowMS: 400, Overlap: 0.5}
	det64, err := NewDetectorOf[float64](m, cfg)
	if err != nil {
		f.Fatal(err)
	}
	det32, err := NewDetectorOf[float32](m, cfg)
	if err != nil {
		f.Fatal(err)
	}
	if len(det32.streams) == 0 {
		f.Fatal("float32 CNN detector did not attach an incremental scorer")
	}

	f.Fuzz(func(t *testing.T, seed int64, n uint16) {
		steps := int(n)%512 + 64
		det64.Reset()
		det32.Reset()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < steps; i++ {
			var ra, rb Result
			switch op := rng.Intn(100); {
			case op < 4:
				k := 1 + rng.Intn(8)
				ra = det64.PushMissing(k)
				rb = det32.PushMissing(k)
			case op < 7: // quarantine path
				acc := imu.Vec3{X: math.NaN(), Z: 1}
				ra = det64.Push(acc, imu.Vec3{})
				rb = det32.Push(acc, imu.Vec3{})
			case op < 10: // gyro hold path
				acc := imu.Vec3{Z: 1}
				gyro := imu.Vec3{Y: math.Inf(1)}
				ra = det64.Push(acc, gyro)
				rb = det32.Push(acc, gyro)
			case op < 14: // clamp path
				acc := imu.Vec3{Z: 20 + rng.Float64()}
				gyro := imu.Vec3{X: 3000 * rng.NormFloat64()}
				ra = det64.Push(acc, gyro)
				rb = det32.Push(acc, gyro)
			default:
				amp := rng.Float64() * 4
				acc := imu.Vec3{X: amp * rng.NormFloat64(), Y: amp * rng.NormFloat64(), Z: 1 + amp*rng.NormFloat64()}
				gyro := imu.Vec3{X: 90 * rng.NormFloat64(), Y: 90 * rng.NormFloat64(), Z: 90 * rng.NormFloat64()}
				ra = det64.Push(acc, gyro)
				rb = det32.Push(acc, gyro)
			}
			if ra.Evaluated != rb.Evaluated || ra.Health != rb.Health ||
				ra.Quarantined != rb.Quarantined || ra.Clamped != rb.Clamped {
				t.Fatalf("seed=%d step %d: width-independent fields diverge:\n f64 %+v\n f32 %+v", seed, i, ra, rb)
			}
			if math.IsNaN(rb.Probability) || rb.Probability < 0 || rb.Probability > 1 {
				t.Fatalf("seed=%d step %d: f32 probability %g outside [0,1]", seed, i, rb.Probability)
			}
			d := math.Abs(ra.Probability - rb.Probability)
			if d > probTol {
				t.Fatalf("seed=%d step %d: |p32−p64| = %g exceeds %g (f64 %g, f32 %g)",
					seed, i, d, probTol, ra.Probability, rb.Probability)
			}
			if ra.Triggered != rb.Triggered && math.Abs(ra.Probability-DefaultThreshold) > probTol {
				t.Fatalf("seed=%d step %d: trigger decisions diverge away from the threshold:\n f64 %+v\n f32 %+v",
					seed, i, ra, rb)
			}
		}
	})
}

// TestDetectorStateWidthMismatch: the detector state codec stamps its
// compiled width; restoring across widths must fail with an error that
// names both, at the state layer itself (the cascade envelope check is
// tested separately).
func TestDetectorStateWidthMismatch(t *testing.T) {
	clf, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DetectorConfig{WindowMS: 200, Overlap: 0.5}
	d64, err := NewDetectorOf[float64](clf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d32, err := NewDetectorOf[float32](clf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		d64.Push(imu.Vec3{Z: 1}, imu.Vec3{})
		d32.Push(imu.Vec3{Z: 1}, imu.Vec3{})
	}
	img := d64.AppendState(nil)
	err = d32.ReadState(artifact.NewStateReader(img))
	if err == nil {
		t.Fatal("f32 detector read f64 state")
	}
	if !strings.Contains(err.Error(), "f64") || !strings.Contains(err.Error(), "f32") {
		t.Fatalf("width-mismatch error does not name both widths: %v", err)
	}
	img32 := d32.AppendState(nil)
	if err := d64.ReadState(artifact.NewStateReader(img32)); err == nil {
		t.Fatal("f64 detector read f32 state")
	}
}
