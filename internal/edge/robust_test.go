package edge

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/imu"
	"repro/internal/model"
	"repro/internal/synth"
)

func newThresholdDetector(t *testing.T, cfg DetectorConfig) *Detector {
	t.Helper()
	clf, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(clf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return det
}

func TestPushQuarantinesNonFinite(t *testing.T) {
	det := newThresholdDetector(t, DetectorConfig{WindowMS: 200, Overlap: 0.5})
	for i := 0; i < 30; i++ {
		det.Push(imu.Vec3{Z: 1}, imu.Vec3{})
	}
	r := det.Push(imu.Vec3{X: math.NaN(), Z: 1}, imu.Vec3{})
	if !r.Quarantined {
		t.Fatal("NaN sample not quarantined")
	}
	r = det.Push(imu.Vec3{Z: math.Inf(1)}, imu.Vec3{})
	if !r.Quarantined {
		t.Fatal("Inf sample not quarantined")
	}
	if st := det.Stats(); st.Quarantined != 2 {
		t.Fatalf("Quarantined = %d, want 2", st.Quarantined)
	}
	// The stream continues and probabilities stay finite.
	for i := 0; i < 100; i++ {
		r := det.Push(imu.Vec3{Z: 1}, imu.Vec3{})
		if r.Evaluated && (math.IsNaN(r.Probability) || math.IsInf(r.Probability, 0)) {
			t.Fatal("non-finite probability after quarantine")
		}
	}
}

func TestPushClampsFullScale(t *testing.T) {
	det := newThresholdDetector(t, DetectorConfig{
		WindowMS: 200, Overlap: 0.5, FullScaleG: 8, FullScaleDPS: 500,
	})
	r := det.Push(imu.Vec3{Z: 100}, imu.Vec3{X: 9000})
	if !r.Clamped {
		t.Fatal("over-range sample not flagged as clamped")
	}
	if det.Stats().Clamped != 1 {
		t.Fatal("Clamped counter not incremented")
	}
	if r2 := det.Push(imu.Vec3{Z: 1}, imu.Vec3{}); r2.Clamped {
		t.Fatal("in-range sample flagged as clamped")
	}
}

func TestShortGapBridgedKeepsEvaluating(t *testing.T) {
	det := newThresholdDetector(t, DetectorConfig{WindowMS: 200, Overlap: 0.5})
	evals := 0
	for i := 0; i < 200; i++ {
		var r Result
		if i%50 == 25 { // isolated single-sample drops
			r = det.PushMissing(1)
		} else {
			r = det.Push(imu.Vec3{Z: 1}, imu.Vec3{})
		}
		if r.Evaluated {
			evals++
		}
	}
	if evals == 0 {
		t.Fatal("bridged gaps suppressed all evaluation")
	}
	st := det.Stats()
	if st.Missing != 4 || st.Bridged != 4 || st.Holdoffs != 0 {
		t.Fatalf("stats %+v: want 4 missing, all bridged, no holdoffs", st)
	}
}

func TestLongGapForcesWarmupHoldoff(t *testing.T) {
	det := newThresholdDetector(t, DetectorConfig{WindowMS: 200, Overlap: 0.5})
	for i := 0; i < 60; i++ { // fill the ring, evaluations flowing
		det.Push(imu.Vec3{Z: 1}, imu.Vec3{})
	}
	det.PushMissing(30) // far beyond the bridge limit
	if det.Stats().Holdoffs != 1 {
		t.Fatalf("Holdoffs = %d, want 1", det.Stats().Holdoffs)
	}
	// The next Window-1 fresh samples must not evaluate: the ring
	// still holds pre-gap rows.
	for i := 0; i < det.Window-1; i++ {
		if r := det.Push(imu.Vec3{Z: 1}, imu.Vec3{}); r.Evaluated {
			t.Fatalf("evaluated %d samples after a long gap (window %d)", i+1, det.Window)
		}
	}
	// Within one further stride the pipeline must evaluate again.
	evaluated := false
	for i := 0; i < det.Window+det.Step; i++ {
		if r := det.Push(imu.Vec3{Z: 1}, imu.Vec3{}); r.Evaluated {
			evaluated = true
			break
		}
	}
	if !evaluated {
		t.Fatal("pipeline never recovered after the holdoff")
	}
}

func TestHealthStateMachine(t *testing.T) {
	det := newThresholdDetector(t, DetectorConfig{WindowMS: 200, Overlap: 0.5})
	if det.Health() != HealthHealthy {
		t.Fatal("fresh detector not healthy")
	}
	for i := 0; i < det.Window; i++ {
		det.Push(imu.Vec3{Z: 1}, imu.Vec3{})
	}
	if det.Health() != HealthHealthy {
		t.Fatal("clean stream not healthy")
	}
	// A single missing sample degrades.
	det.PushMissing(1)
	if det.Health() != HealthDegraded {
		t.Fatalf("health after one gap = %v, want degraded", det.Health())
	}
	// Losing more than a quarter of the window faults.
	det.PushMissing(det.Window / 2)
	if det.Health() != HealthFaulted {
		t.Fatalf("health after massive loss = %v, want faulted", det.Health())
	}
	// While faulted, stride completions must not evaluate.
	for i := 0; i < 2; i++ {
		if r := det.Push(imu.Vec3{Z: 1}, imu.Vec3{}); r.Evaluated {
			t.Fatal("evaluated while faulted")
		}
	}
	// A clean window of samples restores full health.
	for i := 0; i < det.Window+1; i++ {
		det.Push(imu.Vec3{Z: 1}, imu.Vec3{})
	}
	if det.Health() != HealthHealthy {
		t.Fatalf("health after recovery = %v, want healthy", det.Health())
	}
	// Reset clears counters and health.
	det.PushMissing(det.Window)
	det.Reset()
	if det.Health() != HealthHealthy || det.Stats() != (FaultStats{}) {
		t.Fatal("Reset did not clear health/stats")
	}
}

func TestThresholdSentinels(t *testing.T) {
	clf, _ := model.NewThreshold(model.KindThresholdAcc)
	d1, err := NewDetector(clf, DetectorConfig{WindowMS: 200})
	if err != nil {
		t.Fatal(err)
	}
	if d1.Threshold != DefaultThreshold {
		t.Fatalf("unset threshold resolved to %g, want %g", d1.Threshold, DefaultThreshold)
	}
	d2, err := NewDetector(clf, DetectorConfig{WindowMS: 200, Threshold: ThresholdAlways})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Threshold != 0 {
		t.Fatalf("ThresholdAlways resolved to %g, want 0", d2.Threshold)
	}
	// Threshold 0 really does trigger on every evaluated window.
	for i := 0; i < 40; i++ {
		r := d2.Push(imu.Vec3{Z: 1}, imu.Vec3{})
		if r.Evaluated && !r.Triggered {
			t.Fatal("threshold 0 did not trigger on an evaluated window")
		}
	}
	d3, err := NewDetector(clf, DetectorConfig{WindowMS: 200, Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if d3.Threshold != 0.9 {
		t.Fatalf("explicit threshold mangled: %g", d3.Threshold)
	}
}

// TestModerateFaultsPreserveRecall is the acceptance gate: ≤5 %
// dropout and sparse NaN bursts must cost at most 5 recall points
// versus clean, with zero panics and zero non-finite probabilities.
func TestModerateFaultsPreserveRecall(t *testing.T) {
	det := newThresholdDetector(t, DetectorConfig{WindowMS: 200, Overlap: 0.75})

	// A batch of synthetic fall trials across fall tasks.
	rng := rand.New(rand.NewSource(5))
	var trials []dataset.Trial
	for _, taskID := range []int{20, 23, 28, 30, 31, 32, 33, 34} {
		task, err := synth.TaskByID(taskID)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			subj := synth.NewSubject(100+rep, rng)
			trials = append(trials, synth.GenerateTrial(subj, task, rep, 6, rng))
		}
	}

	recall := func(inj fault.Injector) float64 {
		hit := 0
		for i := range trials {
			sim := det.SimulateFaulty(&trials[i], inj)
			if det.Stats().BadScores != 0 {
				t.Fatal("non-finite probability under fault injection")
			}
			if sim.Triggered {
				hit++
			}
		}
		return float64(hit) / float64(len(trials))
	}

	clean := recall(nil)
	if clean < 0.7 {
		t.Fatalf("clean recall %.2f too low for the gate to be meaningful", clean)
	}
	for _, tc := range []struct {
		name string
		inj  fault.Injector
	}{
		{"5% dropout", fault.NewDropout(0.05, 3, 42)},
		{"nan bursts", fault.NewNaNBurst(0.005, 3, 42)},
		{"dropout+nan", fault.Chain{fault.NewDropout(0.05, 3, 1), fault.NewNaNBurst(0.005, 3, 2)}},
	} {
		got := recall(tc.inj)
		if clean-got > 0.05 {
			t.Errorf("%s: recall %.3f vs clean %.3f — degraded more than 5 points",
				tc.name, got, clean)
		}
	}
}
