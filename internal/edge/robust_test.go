package edge

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/imu"
	"repro/internal/model"
	"repro/internal/synth"
)

func newThresholdDetector(t *testing.T, cfg DetectorConfig) *Detector {
	t.Helper()
	clf, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(clf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return det
}

func TestPushQuarantinesNonFinite(t *testing.T) {
	det := newThresholdDetector(t, DetectorConfig{WindowMS: 200, Overlap: 0.5})
	for i := 0; i < 30; i++ {
		det.Push(imu.Vec3{Z: 1}, imu.Vec3{})
	}
	r := det.Push(imu.Vec3{X: math.NaN(), Z: 1}, imu.Vec3{})
	if !r.Quarantined {
		t.Fatal("NaN sample not quarantined")
	}
	r = det.Push(imu.Vec3{Z: math.Inf(1)}, imu.Vec3{})
	if !r.Quarantined {
		t.Fatal("Inf sample not quarantined")
	}
	if st := det.Stats(); st.Quarantined != 2 {
		t.Fatalf("Quarantined = %d, want 2", st.Quarantined)
	}
	// The stream continues and probabilities stay finite.
	for i := 0; i < 100; i++ {
		r := det.Push(imu.Vec3{Z: 1}, imu.Vec3{})
		if r.Evaluated && (math.IsNaN(r.Probability) || math.IsInf(r.Probability, 0)) {
			t.Fatal("non-finite probability after quarantine")
		}
	}
}

func TestPushClampsFullScale(t *testing.T) {
	det := newThresholdDetector(t, DetectorConfig{
		WindowMS: 200, Overlap: 0.5, FullScaleG: 8, FullScaleDPS: 500,
	})
	r := det.Push(imu.Vec3{Z: 100}, imu.Vec3{X: 9000})
	if !r.Clamped {
		t.Fatal("over-range sample not flagged as clamped")
	}
	if det.Stats().Clamped != 1 {
		t.Fatal("Clamped counter not incremented")
	}
	if r2 := det.Push(imu.Vec3{Z: 1}, imu.Vec3{}); r2.Clamped {
		t.Fatal("in-range sample flagged as clamped")
	}
}

func TestShortGapBridgedKeepsEvaluating(t *testing.T) {
	det := newThresholdDetector(t, DetectorConfig{WindowMS: 200, Overlap: 0.5})
	evals := 0
	for i := 0; i < 200; i++ {
		var r Result
		if i%50 == 25 { // isolated single-sample drops
			r = det.PushMissing(1)
		} else {
			r = det.Push(imu.Vec3{Z: 1}, imu.Vec3{})
		}
		if r.Evaluated {
			evals++
		}
	}
	if evals == 0 {
		t.Fatal("bridged gaps suppressed all evaluation")
	}
	st := det.Stats()
	if st.Missing != 4 || st.Bridged != 4 || st.Holdoffs != 0 {
		t.Fatalf("stats %+v: want 4 missing, all bridged, no holdoffs", st)
	}
}

func TestLongGapForcesWarmupHoldoff(t *testing.T) {
	det := newThresholdDetector(t, DetectorConfig{WindowMS: 200, Overlap: 0.5})
	for i := 0; i < 60; i++ { // fill the ring, evaluations flowing
		det.Push(imu.Vec3{Z: 1}, imu.Vec3{})
	}
	det.PushMissing(30) // far beyond the bridge limit
	if det.Stats().Holdoffs != 1 {
		t.Fatalf("Holdoffs = %d, want 1", det.Stats().Holdoffs)
	}
	// The next Window-1 fresh samples must not evaluate: the ring
	// still holds pre-gap rows.
	for i := 0; i < det.Window-1; i++ {
		if r := det.Push(imu.Vec3{Z: 1}, imu.Vec3{}); r.Evaluated {
			t.Fatalf("evaluated %d samples after a long gap (window %d)", i+1, det.Window)
		}
	}
	// Within one further stride the pipeline must evaluate again.
	evaluated := false
	for i := 0; i < det.Window+det.Step; i++ {
		if r := det.Push(imu.Vec3{Z: 1}, imu.Vec3{}); r.Evaluated {
			evaluated = true
			break
		}
	}
	if !evaluated {
		t.Fatal("pipeline never recovered after the holdoff")
	}
}

func TestHealthStateMachine(t *testing.T) {
	det := newThresholdDetector(t, DetectorConfig{WindowMS: 200, Overlap: 0.5})
	if det.Health() != HealthHealthy {
		t.Fatal("fresh detector not healthy")
	}
	for i := 0; i < det.Window; i++ {
		det.Push(imu.Vec3{Z: 1}, imu.Vec3{})
	}
	if det.Health() != HealthHealthy {
		t.Fatal("clean stream not healthy")
	}
	// A single missing sample degrades.
	det.PushMissing(1)
	if det.Health() != HealthDegraded {
		t.Fatalf("health after one gap = %v, want degraded", det.Health())
	}
	// Losing more than a quarter of the window faults.
	det.PushMissing(det.Window / 2)
	if det.Health() != HealthFaulted {
		t.Fatalf("health after massive loss = %v, want faulted", det.Health())
	}
	// While faulted, stride completions must not evaluate.
	for i := 0; i < 2; i++ {
		if r := det.Push(imu.Vec3{Z: 1}, imu.Vec3{}); r.Evaluated {
			t.Fatal("evaluated while faulted")
		}
	}
	// A clean window of samples restores full health.
	for i := 0; i < det.Window+1; i++ {
		det.Push(imu.Vec3{Z: 1}, imu.Vec3{})
	}
	if det.Health() != HealthHealthy {
		t.Fatalf("health after recovery = %v, want healthy", det.Health())
	}
	// Reset clears counters and health.
	det.PushMissing(det.Window)
	det.Reset()
	if det.Health() != HealthHealthy || det.Stats() != (FaultStats{}) {
		t.Fatal("Reset did not clear health/stats")
	}
}

func TestThresholdSentinels(t *testing.T) {
	clf, _ := model.NewThreshold(model.KindThresholdAcc)
	d1, err := NewDetector(clf, DetectorConfig{WindowMS: 200})
	if err != nil {
		t.Fatal(err)
	}
	if d1.Threshold != DefaultThreshold {
		t.Fatalf("unset threshold resolved to %g, want %g", d1.Threshold, DefaultThreshold)
	}
	d2, err := NewDetector(clf, DetectorConfig{WindowMS: 200, Threshold: ThresholdAlways})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Threshold != 0 {
		t.Fatalf("ThresholdAlways resolved to %g, want 0", d2.Threshold)
	}
	// Threshold 0 really does trigger on every evaluated window.
	for i := 0; i < 40; i++ {
		r := d2.Push(imu.Vec3{Z: 1}, imu.Vec3{})
		if r.Evaluated && !r.Triggered {
			t.Fatal("threshold 0 did not trigger on an evaluated window")
		}
	}
	d3, err := NewDetector(clf, DetectorConfig{WindowMS: 200, Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if d3.Threshold != 0.9 {
		t.Fatalf("explicit threshold mangled: %g", d3.Threshold)
	}
}

// TestModerateFaultsPreserveRecall is the acceptance gate: ≤5 %
// dropout and sparse NaN bursts must cost at most 5 recall points
// versus clean, with zero panics and zero non-finite probabilities.
func TestModerateFaultsPreserveRecall(t *testing.T) {
	det := newThresholdDetector(t, DetectorConfig{WindowMS: 200, Overlap: 0.75})

	// A batch of synthetic fall trials across fall tasks.
	rng := rand.New(rand.NewSource(5))
	var trials []dataset.Trial
	for _, taskID := range []int{20, 23, 28, 30, 31, 32, 33, 34} {
		task, err := synth.TaskByID(taskID)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			subj := synth.NewSubject(100+rep, rng)
			trials = append(trials, synth.GenerateTrial(subj, task, rep, 6, rng))
		}
	}

	recall := func(inj fault.Injector) float64 {
		hit := 0
		for i := range trials {
			sim := det.SimulateFaulty(&trials[i], inj)
			if det.Stats().BadScores != 0 {
				t.Fatal("non-finite probability under fault injection")
			}
			if sim.Triggered {
				hit++
			}
		}
		return float64(hit) / float64(len(trials))
	}

	clean := recall(nil)
	if clean < 0.7 {
		t.Fatalf("clean recall %.2f too low for the gate to be meaningful", clean)
	}
	for _, tc := range []struct {
		name string
		inj  fault.Injector
	}{
		{"5% dropout", fault.NewDropout(0.05, 3, 42)},
		{"nan bursts", fault.NewNaNBurst(0.005, 3, 42)},
		{"dropout+nan", fault.Chain{fault.NewDropout(0.05, 3, 1), fault.NewNaNBurst(0.005, 3, 2)}},
	} {
		got := recall(tc.inj)
		if clean-got > 0.05 {
			t.Errorf("%s: recall %.3f vs clean %.3f — degraded more than 5 points",
				tc.name, got, clean)
		}
	}
}

// vary returns a small per-sample wiggle so that a deliberately live
// channel never trips the bit-identical stuck detector.
func vary(i int) float64 { return 1e-4 * float64(i%7) }

func TestGyroHoldKeepsAccGroupLive(t *testing.T) {
	det := newThresholdDetector(t, DetectorConfig{WindowMS: 200, Overlap: 0.5})
	for i := 0; i < 30; i++ {
		det.Push(imu.Vec3{Z: 1 + vary(i)}, imu.Vec3{X: 0.5 + vary(i)})
	}
	// Gyro dies; accelerometer keeps delivering good data.
	bad := imu.Vec3{X: math.NaN(), Y: math.NaN(), Z: math.NaN()}
	for i := 0; i < 60; i++ {
		r := det.Push(imu.Vec3{Z: 1 + vary(i)}, bad)
		if r.Quarantined {
			t.Fatal("gyro-only failure must hold, not quarantine the whole sample")
		}
	}
	st := det.Stats()
	if st.GyroHeld != 60 {
		t.Fatalf("GyroHeld = %d, want 60", st.GyroHeld)
	}
	if st.Quarantined != 0 {
		t.Fatalf("Quarantined = %d, want 0", st.Quarantined)
	}
	gh := det.GroupHealth()
	if gh.Acc != HealthHealthy {
		t.Fatalf("acc group %v, want healthy under a gyro-only fault", gh.Acc)
	}
	if gh.Gyro != HealthFaulted || gh.Euler != HealthFaulted {
		t.Fatalf("gyro/euler groups %v/%v, want faulted", gh.Gyro, gh.Euler)
	}
	// The overall pipeline is conservative: a window whose gyro and
	// Euler columns are reconstructions must not feed the primary
	// three-branch model.
	if det.Health() != HealthFaulted {
		t.Fatalf("overall health %v, want faulted", det.Health())
	}
	// The ring must stay finite despite the held gyro.
	for _, v := range det.ring {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite ring contents under gyro hold")
		}
	}
}

func TestStuckGyroFlagsGroupOnly(t *testing.T) {
	det := newThresholdDetector(t, DetectorConfig{WindowMS: 200, Overlap: 0.5})
	frozen := imu.Vec3{X: 1.25, Y: -0.5, Z: 3}
	for i := 0; i < 60; i++ {
		det.Push(imu.Vec3{Z: 1 + vary(i)}, frozen)
	}
	gh := det.GroupHealth()
	if gh.Acc != HealthHealthy {
		t.Fatalf("acc group %v, want healthy", gh.Acc)
	}
	if gh.Gyro == HealthHealthy || gh.Euler == HealthHealthy {
		t.Fatalf("gyro/euler groups %v/%v, want flagged for a frozen gyro", gh.Gyro, gh.Euler)
	}
	if det.Stats().GyroStuck == 0 {
		t.Fatal("GyroStuck counter not incremented")
	}
	if gh.Worst() != gh.Gyro && gh.Worst() != gh.Euler {
		t.Fatalf("Worst() = %v inconsistent with %+v", gh.Worst(), gh)
	}
}

func TestStuckAccFlagsAccAndEuler(t *testing.T) {
	det := newThresholdDetector(t, DetectorConfig{WindowMS: 200, Overlap: 0.5})
	frozen := imu.Vec3{Z: 1.0125}
	for i := 0; i < 60; i++ {
		det.Push(frozen, imu.Vec3{X: vary(i)})
	}
	gh := det.GroupHealth()
	if gh.Acc == HealthHealthy || gh.Euler == HealthHealthy {
		t.Fatalf("acc/euler groups %v/%v, want flagged for a frozen accelerometer", gh.Acc, gh.Euler)
	}
	if gh.Gyro != HealthHealthy {
		t.Fatalf("gyro group %v, want healthy", gh.Gyro)
	}
	if det.Stats().AccStuck == 0 {
		t.Fatal("AccStuck counter not incremented")
	}
}

func TestIngestMatchesPushWithoutEvaluating(t *testing.T) {
	mk := func() *Detector {
		return newThresholdDetector(t, DetectorConfig{WindowMS: 200, Overlap: 0.5})
	}
	pushDet, ingDet := mk(), mk()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		acc := imu.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: 1 + rng.NormFloat64()}
		gyro := imu.Vec3{X: 20 * rng.NormFloat64(), Y: 20 * rng.NormFloat64(), Z: 20 * rng.NormFloat64()}
		var pr, ir Result
		if i%37 == 5 {
			pr = pushDet.PushMissing(1)
			ir = ingDet.IngestMissing(1)
		} else {
			pr = pushDet.Push(acc, gyro)
			ir = ingDet.Ingest(acc, gyro)
		}
		if ir.Evaluated {
			t.Fatal("Ingest must never evaluate")
		}
		if ir.Health != pr.Health || ir.Quarantined != pr.Quarantined {
			t.Fatalf("sample %d: ingest result %+v diverges from push %+v", i, ir, pr)
		}
		if ingDet.StrideReady() != pushDet.StrideReady() {
			t.Fatalf("sample %d: StrideReady diverges", i)
		}
		if pr.Evaluated {
			p, ok := ingDet.ScoreWindow(ingDet.clf)
			if !ok || p != pr.Probability {
				t.Fatalf("sample %d: ScoreWindow = %v (ok=%v), Push evaluated %v",
					i, p, ok, pr.Probability)
			}
		}
	}
	if pushDet.stats != ingDet.stats {
		t.Fatalf("stats diverge: push %+v vs ingest %+v", pushDet.stats, ingDet.stats)
	}
}
