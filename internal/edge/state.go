package edge

import (
	"fmt"

	"repro/internal/artifact"
	"repro/internal/dsp"
	"repro/internal/imu"
)

// Runtime-state snapshots. A warm detector is expensive to lose: the
// ring buffer, the causal filter states, the fused attitude and the
// health history together take a full window (plus any outstanding
// warm-up) to rebuild, and a serving layer that restarts a crashed
// session from scratch goes blind for exactly that long — during which
// a fall is missed. AppendState/ReadState serialize every mutable
// field of the pipeline so a supervisor can checkpoint a live session
// and resume it bit-identically: a restored detector produces the same
// evaluations, probabilities and health transitions as one that never
// crashed. The encoding is the artifact state codec (fixed-width
// little-endian, no reflection); framing, versioning and integrity are
// the caller's job — cascade.Snapshot wraps this in a verified
// artifact envelope.

// detectorStateVersion guards the field layout below. Bump it whenever
// a mutable Detector field is added, removed or reordered.
//
// Version history:
//
//	1 — float64-only pipeline, no dtype tag.
//	2 — scalar-generic pipeline; a dtype word follows the version.
//	    Version-1 images are still read, as float64 (the only width a
//	    version-1 writer could produce).
const detectorStateVersion = 2

// Filter-kind tags in the encoded state.
const (
	filterKindFloat = 0
	filterKindFixed = 1
)

// AppendState appends the detector's complete mutable state to dst and
// returns the extended slice. The geometry (window, step, filter
// arithmetic) is encoded first and verified on restore, so a snapshot
// can never be applied to a differently-shaped pipeline.
func (d *DetectorOf[S]) AppendState(dst []byte) []byte {
	dst = artifact.AppendUint64(dst, detectorStateVersion)
	dst = artifact.AppendUint64(dst, uint64(artifact.DTypeOf[S]()))
	dst = artifact.AppendInt(dst, d.Window)
	dst = artifact.AppendInt(dst, d.Step)
	dst = artifact.AppendFloat(dst, d.Threshold)
	switch d.filters[0].(type) {
	case *fixedOf[S]:
		dst = artifact.AppendUint64(dst, filterKindFixed)
	default:
		dst = artifact.AppendUint64(dst, filterKindFloat)
	}

	dst = artifact.AppendInt(dst, d.count)
	dst = artifact.AppendBool(dst, d.reprime)
	dst = artifact.AppendInt(dst, d.gapRun)
	dst = artifact.AppendInt(dst, d.freshNeeded)
	dst = artifact.AppendBool(dst, d.haveLast)
	for _, v := range d.lastRow {
		dst = artifact.AppendFloat(dst, v)
	}
	dst = appendVec(dst, d.heldGyro)
	for _, v := range d.ring {
		// Widening to the codec's float64 word is exact at both widths,
		// so a float32 ring round-trips bit-for-bit.
		dst = artifact.AppendFloat(dst, float64(v))
	}

	dst = appendHealthRing(dst, d.health)
	for g := range d.groups {
		dst = appendHealthRing(dst, d.groups[g])
	}
	dst = appendStuckRun(dst, &d.accRun)
	dst = appendStuckRun(dst, &d.gyroRun)
	for i := range d.accAxes {
		dst = appendAxisRun(dst, &d.accAxes[i])
	}
	for i := range d.gyroAxes {
		dst = appendAxisRun(dst, &d.gyroAxes[i])
	}
	dst = artifact.AppendInt(dst, d.drift.accN)
	dst = artifact.AppendInt(dst, d.drift.gyroN)
	dst = artifact.AppendFloat(dst, d.drift.accMag)
	dst = appendVec(dst, d.drift.gyro)
	dst = artifact.AppendInt(dst, d.drift.accRun)
	dst = artifact.AppendInt(dst, d.drift.gyroRun)

	dst = artifact.AppendInt(dst, d.stats.Quarantined)
	dst = artifact.AppendInt(dst, d.stats.Missing)
	dst = artifact.AppendInt(dst, d.stats.Bridged)
	dst = artifact.AppendInt(dst, d.stats.Clamped)
	dst = artifact.AppendInt(dst, d.stats.Holdoffs)
	dst = artifact.AppendInt(dst, d.stats.BadScores)
	dst = artifact.AppendInt(dst, d.stats.GyroHeld)
	dst = artifact.AppendInt(dst, d.stats.AccStuck)
	dst = artifact.AppendInt(dst, d.stats.GyroStuck)
	dst = artifact.AppendInt(dst, d.stats.AccDrift)
	dst = artifact.AppendInt(dst, d.stats.GyroDrift)

	for c := range d.filters {
		switch fl := d.filters[c].(type) {
		case *dsp.FilterOf[S]:
			st := fl.F.AppendState(d.snapF[:0])
			d.snapF = st
			dst = artifact.AppendInt(dst, len(st))
			for _, v := range st {
				dst = artifact.AppendFloat(dst, v)
			}
		case *fixedOf[S]:
			st := fl.f.appendState(d.snapI[:0])
			d.snapI = st
			dst = artifact.AppendInt(dst, len(st))
			for _, v := range st {
				dst = artifact.AppendInt64(dst, v)
			}
		default:
			// Unreachable with the constructors in this package; encode
			// an impossible length so restore fails loudly rather than
			// desynchronising silently.
			dst = artifact.AppendInt(dst, -1)
		}
	}

	fs := d.fusion.State()
	dst = artifact.AppendFloat(dst, fs.Pitch)
	dst = artifact.AppendFloat(dst, fs.Roll)
	dst = artifact.AppendFloat(dst, fs.Yaw)
	dst = artifact.AppendBool(dst, fs.Primed)
	return dst
}

// ReadState consumes a state image produced by AppendState from r and
// applies it to the detector. The snapshot's geometry must match the
// receiver exactly. On error the detector's state is unspecified — the
// caller must Reset (or discard) the pipeline; it must not keep
// pushing into a half-restored detector.
func (d *DetectorOf[S]) ReadState(r *artifact.StateReader) error {
	v := r.Uint64()
	if r.Err() == nil && v != 1 && v != detectorStateVersion {
		return fmt.Errorf("edge: detector state version %d, this build reads 1..%d", v, detectorStateVersion)
	}
	// Version 1 predates the dtype word; everything it could hold is
	// float64 state.
	dt := artifact.DTypeF64
	if v >= 2 {
		dt = artifact.DType(r.Uint64())
		if r.Err() == nil && !dt.Valid() {
			return fmt.Errorf("edge: detector state dtype %s", dt)
		}
	}
	if want := artifact.DTypeOf[S](); r.Err() == nil && dt != want {
		return fmt.Errorf("edge: snapshot is %s state, detector runs %s", dt, want)
	}
	win, step := r.Int(), r.Int()
	thr := r.Float()
	kind := r.Uint64()
	if err := r.Err(); err != nil {
		return err
	}
	if win != d.Window || step != d.Step || thr != d.Threshold {
		return fmt.Errorf("edge: snapshot geometry %d/%d/%g, detector is %d/%d/%g",
			win, step, thr, d.Window, d.Step, d.Threshold)
	}
	_, fixed := d.filters[0].(*fixedOf[S])
	if (kind == filterKindFixed) != fixed {
		return fmt.Errorf("edge: snapshot filter arithmetic does not match the detector's")
	}

	d.count = r.Int()
	d.syncStride()
	d.reprime = r.Bool()
	d.gapRun = r.Int()
	d.freshNeeded = r.Int()
	d.haveLast = r.Bool()
	for i := range d.lastRow {
		d.lastRow[i] = r.Float()
	}
	d.heldGyro = readVec(r)
	for i := range d.ring {
		// The dtype check above guarantees the stored words were widened
		// from S, so narrowing back is exact.
		d.ring[i] = S(r.Float())
	}

	if err := readHealthRing(r, d.health); err != nil {
		return err
	}
	for g := range d.groups {
		if err := readHealthRing(r, d.groups[g]); err != nil {
			return err
		}
	}
	readStuckRun(r, &d.accRun)
	readStuckRun(r, &d.gyroRun)
	for i := range d.accAxes {
		readAxisRun(r, &d.accAxes[i])
	}
	for i := range d.gyroAxes {
		readAxisRun(r, &d.gyroAxes[i])
	}
	d.drift.accN = r.Int()
	d.drift.gyroN = r.Int()
	d.drift.accMag = r.Float()
	d.drift.gyro = readVec(r)
	d.drift.accRun = r.Int()
	d.drift.gyroRun = r.Int()

	d.stats.Quarantined = r.Int()
	d.stats.Missing = r.Int()
	d.stats.Bridged = r.Int()
	d.stats.Clamped = r.Int()
	d.stats.Holdoffs = r.Int()
	d.stats.BadScores = r.Int()
	d.stats.GyroHeld = r.Int()
	d.stats.AccStuck = r.Int()
	d.stats.GyroStuck = r.Int()
	d.stats.AccDrift = r.Int()
	d.stats.GyroDrift = r.Int()

	for c := range d.filters {
		n := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		switch fl := d.filters[c].(type) {
		case *dsp.FilterOf[S]:
			if n != fl.F.StateLen() {
				return fmt.Errorf("edge: filter %d state holds %d values, want %d", c, n, fl.F.StateLen())
			}
			st := make([]float64, n)
			for i := range st {
				st[i] = r.Float()
			}
			if err := r.Err(); err != nil {
				return err
			}
			if err := fl.F.SetState(st); err != nil {
				return err
			}
		case *fixedOf[S]:
			if n != fl.f.stateLen() {
				return fmt.Errorf("edge: filter %d state holds %d words, want %d", c, n, fl.f.stateLen())
			}
			st := make([]int64, n)
			for i := range st {
				st[i] = r.Int64()
			}
			if err := r.Err(); err != nil {
				return err
			}
			if err := fl.f.setState(st); err != nil {
				return err
			}
		default:
			return fmt.Errorf("edge: filter %d has an unknown implementation", c)
		}
	}

	var fs imu.FusionState
	fs.Pitch = r.Float()
	fs.Roll = r.Float()
	fs.Yaw = r.Float()
	fs.Primed = r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	d.fusion.SetState(fs)

	// The incremental scoring caches are a pure function of the ring
	// and the absolute sample count (nn.Streamer's rebuild invariant),
	// so they are not serialised: replaying the restored ring puts
	// every conv/pool ring and deque in the exact state of a detector
	// that never stopped — which keeps crash-replay decision streams
	// bit-identical without growing the snapshot format.
	for i := range d.streams {
		d.rebuildStream(i)
	}
	return nil
}

func appendVec(dst []byte, v imu.Vec3) []byte {
	dst = artifact.AppendFloat(dst, v.X)
	dst = artifact.AppendFloat(dst, v.Y)
	return artifact.AppendFloat(dst, v.Z)
}

func readVec(r *artifact.StateReader) imu.Vec3 {
	return imu.Vec3{X: r.Float(), Y: r.Float(), Z: r.Float()}
}

func appendHealthRing(dst []byte, h *healthRing) []byte {
	dst = artifact.AppendInt(dst, h.pos)
	dst = artifact.AppendInt(dst, h.bad)
	for _, f := range h.flags {
		dst = artifact.AppendBool(dst, f)
	}
	return dst
}

func readHealthRing(r *artifact.StateReader, h *healthRing) error {
	pos, bad := r.Int(), r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if pos < 0 || pos >= len(h.flags) || bad < 0 || bad > len(h.flags) {
		return fmt.Errorf("edge: health ring pos=%d bad=%d outside a %d-slot ring", pos, bad, len(h.flags))
	}
	n := 0
	for i := range h.flags {
		h.flags[i] = r.Bool()
		if h.flags[i] {
			n++
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	if n != bad {
		return fmt.Errorf("edge: health ring bad=%d but %d flags set", bad, n)
	}
	h.pos, h.bad = pos, bad
	return nil
}

func appendStuckRun(dst []byte, s *stuckRun) []byte {
	dst = appendVec(dst, s.last)
	dst = artifact.AppendInt(dst, s.run)
	return artifact.AppendBool(dst, s.have)
}

func readStuckRun(r *artifact.StateReader, s *stuckRun) {
	s.last = readVec(r)
	s.run = r.Int()
	s.have = r.Bool()
}

func appendAxisRun(dst []byte, a *axisRun) []byte {
	dst = artifact.AppendFloat(dst, a.last)
	dst = artifact.AppendInt(dst, a.run)
	dst = artifact.AppendBool(dst, a.have)
	return artifact.AppendBool(dst, a.live)
}

func readAxisRun(r *artifact.StateReader, a *axisRun) {
	a.last = r.Float()
	a.run = r.Int()
	a.have = r.Bool()
	a.live = r.Bool()
}
