package edge

import "fmt"

// AirbagConfig is the firing policy around the raw per-segment
// classifier: firmware-level countermeasures against spurious
// activations (a fired cartridge must be replaced, so false alarms
// are expensive).
type AirbagConfig struct {
	// Debounce is the number of consecutive triggered evaluations
	// required before firing (default 1: fire on the first trigger,
	// the paper's implicit policy). 2 halves the false-alarm rate at
	// the cost of one stride of extra latency.
	Debounce int
	// RefractorySamples locks the controller out after a firing
	// (default 30 s at 100 Hz): a real airbag cannot re-fire anyway,
	// and the lockout keeps one noisy episode from counting as many
	// false alarms.
	RefractorySamples int
}

func (c AirbagConfig) withDefaults() AirbagConfig {
	if c.Debounce <= 0 {
		c.Debounce = 1
	}
	if c.RefractorySamples <= 0 {
		c.RefractorySamples = 3000
	}
	return c
}

// Airbag tracks the firing policy state across a stream.
type Airbag struct {
	cfg       AirbagConfig
	consec    int
	lockUntil int
	fired     int
}

// NewAirbag returns a controller with the given policy.
func NewAirbag(cfg AirbagConfig) *Airbag {
	return &Airbag{cfg: cfg.withDefaults()}
}

// Reset clears the controller state.
func (a *Airbag) Reset() {
	a.consec = 0
	a.lockUntil = 0
	a.fired = 0
}

// Fired returns the number of activations so far.
func (a *Airbag) Fired() int { return a.fired }

// Observe consumes one detector result at the given absolute sample
// index and reports whether the airbag fires now.
func (a *Airbag) Observe(sample int, r Result) bool {
	if sample < a.lockUntil {
		return false
	}
	if r.Health == HealthFaulted {
		// A faulted pipeline suppresses evaluation, so any debounce
		// progress predates the fault. Without this reset, triggered
		// strides accumulated just before quarantine would persist
		// across the outage and fire the airbag on the first trigger
		// after recovery — the debounce must mean *consecutive*, and an
		// outage breaks the run.
		a.consec = 0
		return false
	}
	if !r.Evaluated {
		return false
	}
	if !r.Triggered {
		a.consec = 0
		return false
	}
	a.consec++
	if a.consec < a.cfg.Debounce {
		return false
	}
	a.consec = 0
	a.fired++
	a.lockUntil = sample + a.cfg.RefractorySamples
	return true
}

// String describes the policy.
func (a *Airbag) String() string {
	return fmt.Sprintf("airbag(debounce=%d, refractory=%ds)",
		a.cfg.Debounce, a.cfg.RefractorySamples/100)
}
