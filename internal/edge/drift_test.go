package edge

import (
	"testing"

	"repro/internal/imu"
)

// wob returns a small per-sample wobble so a channel is "live" without
// ever leaving its physical band — the noise floor of a real MEMS part.
func wob(i int) float64 { return 1e-4 * float64(i%7) }

// TestStuckSingleAccAxisFlagsGroup is the `stuck 0.50` blind spot from
// the robustness sweep: fault.Stuck freezes ONE accelerometer channel
// while the siblings keep moving, so the whole-vector comparison never
// fires. The per-axis run must flag the group once the latched axis
// has been frozen past the run threshold.
func TestStuckSingleAccAxisFlagsGroup(t *testing.T) {
	det := newThresholdDetector(t, DetectorConfig{WindowMS: 400, Overlap: 0.75})
	// Live phase: every axis wobbles.
	for i := 0; i < 100; i++ {
		det.Push(imu.Vec3{X: wob(i), Y: wob(i + 1), Z: 1 + wob(i+2)}, imu.Vec3{X: wob(i), Y: wob(i + 3), Z: wob(i + 5)})
	}
	if gh := det.GroupHealth(); gh.Acc != HealthHealthy {
		t.Fatalf("acc group %v before fault, want healthy", gh.Acc)
	}
	// Latch Z at a fixed value; X and Y keep moving, so the whole
	// vector keeps changing and only the per-axis run can see it.
	for i := 0; i < 100; i++ {
		det.Push(imu.Vec3{X: wob(i), Y: wob(i + 1), Z: 1.0125}, imu.Vec3{X: wob(i), Y: wob(i + 3), Z: wob(i + 5)})
	}
	gh := det.GroupHealth()
	if gh.Acc == HealthHealthy {
		t.Fatal("acc group still healthy with one axis latched for 1 s")
	}
	if gh.Euler == HealthHealthy {
		t.Fatal("euler group still healthy with a latched acc axis feeding fusion")
	}
	if gh.Gyro != HealthHealthy {
		t.Fatalf("gyro group %v, want healthy (gyro is live)", gh.Gyro)
	}
	if st := det.Stats(); st.AccStuck == 0 {
		t.Fatal("AccStuck counter never incremented")
	}
}

// TestConstantAxisNeverFlagsStuck: an axis that has never varied is not
// a latch — a flat unused lane or a perfectly level rest posture must
// not demote the group. (The whole-vector rule still catches a sensor
// frozen from the first sample, because then nothing varies.)
func TestConstantAxisNeverFlagsStuck(t *testing.T) {
	det := newThresholdDetector(t, DetectorConfig{WindowMS: 400, Overlap: 0.75})
	for i := 0; i < 400; i++ {
		// X and Y exactly 0 forever; Z and the gyro wobble.
		det.Push(imu.Vec3{Z: 1 + wob(i)}, imu.Vec3{X: wob(i + 1), Y: wob(i + 2), Z: wob(i + 3)})
	}
	if gh := det.GroupHealth(); gh.Acc != HealthHealthy {
		t.Fatalf("acc group %v with constant-but-never-live axes, want healthy", gh.Acc)
	}
	if st := det.Stats(); st.AccStuck != 0 {
		t.Fatalf("AccStuck = %d for axes that never varied, want 0", st.AccStuck)
	}
}

// TestStuckGyroSingleAxisFlagsGyroGroup mirrors the acc case on the
// gyroscope: one latched gyro lane must flag gyro and Euler only.
func TestStuckGyroSingleAxisFlagsGyroGroup(t *testing.T) {
	det := newThresholdDetector(t, DetectorConfig{WindowMS: 400, Overlap: 0.75})
	for i := 0; i < 100; i++ {
		det.Push(imu.Vec3{X: wob(i), Y: wob(i + 1), Z: 1 + wob(i+2)}, imu.Vec3{X: wob(i), Y: wob(i + 3), Z: wob(i + 5)})
	}
	for i := 0; i < 100; i++ {
		det.Push(imu.Vec3{X: wob(i), Y: wob(i + 1), Z: 1 + wob(i+2)}, imu.Vec3{X: 3.25, Y: wob(i + 3), Z: wob(i + 5)})
	}
	gh := det.GroupHealth()
	if gh.Gyro == HealthHealthy {
		t.Fatal("gyro group still healthy with one axis latched for 1 s")
	}
	if gh.Acc != HealthHealthy {
		t.Fatalf("acc group %v, want healthy (acc is live)", gh.Acc)
	}
	if st := det.Stats(); st.GyroStuck == 0 {
		t.Fatal("GyroStuck counter never incremented")
	}
}

// TestAccDriftFlagsGroup is the `drift 0.50` blind spot: a slow
// additive bias on Acc.Z keeps every reading finite and in range, but
// parks the magnitude baseline far above 1 g. The EMA tracker must
// quarantine the acc group once the baseline is confirmed out of band.
func TestAccDriftFlagsGroup(t *testing.T) {
	det := newThresholdDetector(t, DetectorConfig{WindowMS: 400, Overlap: 0.75})
	// 0.1 g/s ramp, the fault.KindDrift severity-0.5 accelerometer rate.
	for i := 0; i < 1200; i++ {
		bias := 0.001 * float64(i)
		det.Push(imu.Vec3{X: wob(i), Y: wob(i + 1), Z: 1 + bias + wob(i+2)},
			imu.Vec3{X: wob(i), Y: wob(i + 3), Z: wob(i + 5)})
	}
	gh := det.GroupHealth()
	if gh.Acc == HealthHealthy {
		t.Fatal("acc group still healthy after 1.2 g of accumulated bias")
	}
	if gh.Gyro != HealthHealthy {
		t.Fatalf("gyro group %v, want healthy (gyro has no bias)", gh.Gyro)
	}
	if st := det.Stats(); st.AccDrift == 0 {
		t.Fatal("AccDrift counter never incremented")
	}
}

// TestGyroDriftFlagsGroup: the gyro half of fault.KindDrift — a
// 10 deg/s-per-second bias ramp on Gyro.X.
func TestGyroDriftFlagsGroup(t *testing.T) {
	det := newThresholdDetector(t, DetectorConfig{WindowMS: 400, Overlap: 0.75})
	for i := 0; i < 1500; i++ {
		bias := 0.1 * float64(i)
		det.Push(imu.Vec3{X: wob(i), Y: wob(i + 1), Z: 1 + wob(i+2)},
			imu.Vec3{X: bias + wob(i), Y: wob(i + 3), Z: wob(i + 5)})
	}
	gh := det.GroupHealth()
	if gh.Gyro == HealthHealthy {
		t.Fatal("gyro group still healthy after 150 dps of accumulated bias")
	}
	if gh.Acc != HealthHealthy {
		t.Fatalf("acc group %v, want healthy (acc has no bias)", gh.Acc)
	}
	if st := det.Stats(); st.GyroDrift == 0 {
		t.Fatal("GyroDrift counter never incremented")
	}
}

// TestDriftTransientsDoNotFlag: the dynamics a fall detector exists to
// see — a free-fall dip, an impact spike, a fast turn — must not read
// as baseline drift. Each transient is short; the sustained-run gate
// has to reject all of them.
func TestDriftTransientsDoNotFlag(t *testing.T) {
	det := newThresholdDetector(t, DetectorConfig{WindowMS: 400, Overlap: 0.75})
	push := func(i int, accZ, gyroX float64) {
		det.Push(imu.Vec3{X: wob(i), Y: wob(i + 1), Z: accZ + wob(i+2)},
			imu.Vec3{X: gyroX + wob(i), Y: wob(i + 3), Z: wob(i + 5)})
	}
	i := 0
	for ; i < 300; i++ { // quiet wear
		push(i, 1, 0)
	}
	for ; i < 350; i++ { // 0.5 s free fall
		push(i, 0.05, 300)
	}
	for ; i < 360; i++ { // 100 ms impact spike
		push(i, 6, 50)
	}
	for ; i < 700; i++ { // lying still
		push(i, 1, 0)
	}
	if st := det.Stats(); st.AccDrift != 0 || st.GyroDrift != 0 {
		t.Fatalf("drift flagged on fall transients: AccDrift=%d GyroDrift=%d, want 0",
			st.AccDrift, st.GyroDrift)
	}
}
