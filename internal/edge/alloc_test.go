package edge

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/imu"
	"repro/internal/model"
)

// TestDetectorPushAllocationFree asserts the real-time contract: after
// the ring buffer has filled and the classifier scratch has warmed up,
// Push never touches the allocator — not on plain samples and not on
// the stride samples that run the full CNN forward pass.
func TestDetectorPushAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, err := model.New(model.KindCNN, model.Config{WindowSamples: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(m, DetectorConfig{WindowMS: 400, Overlap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sample := func(i int) (imu.Vec3, imu.Vec3) {
		ph := float64(i) * 0.1
		return imu.Vec3{X: 0.1 * math.Sin(ph), Z: 1},
			imu.Vec3{Y: 5 * math.Cos(ph)}
	}
	// Warm up: fill the window and run a few evaluations so every
	// layer's scratch is sized.
	n := 0
	for i := 0; i < 3*det.Window; i++ {
		det.Push(sample(n))
		n++
	}
	// Each run covers one full stride, so exactly one classifier
	// evaluation happens inside the measured region.
	if allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < det.Step; i++ {
			det.Push(sample(n))
			n++
		}
	}); allocs != 0 {
		t.Errorf("Push allocates %.1f objects per stride at steady state, want 0", allocs)
	}
}
