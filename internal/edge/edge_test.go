package edge

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/imu"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/tensor"
)

func TestSTM32F722Budget(t *testing.T) {
	d := STM32F722()
	if d.ClockHz != 216e6 {
		t.Fatalf("clock %g", d.ClockHz)
	}
	if d.FlashBytes != 256*1024 || d.RAMBytes != 256*1024 {
		t.Fatal("memory budget wrong")
	}
	if !d.FitsFlash(100*1024) || d.FitsFlash(300*1024) {
		t.Fatal("FitsFlash")
	}
	if !d.FitsRAM(16*1024) || d.FitsRAM(300*1024) {
		t.Fatal("FitsRAM")
	}
}

func TestModelCostCNN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, err := model.New(model.KindCNN, model.Config{WindowSamples: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ModelCost(m.Net, []int{40, 9})
	if err != nil {
		t.Fatal(err)
	}
	// Hand count: 3 branches conv (36·16·5·3 = 8640 each = 25 920)
	// + dense 864·64 + 64·32 + 32·1 = 55 296 + 2048 + 32.
	want := 25920 + 55296 + 2048 + 32
	if c.MACs != want {
		t.Fatalf("CNN MACs = %d, want %d", c.MACs, want)
	}
	d := STM32F722()
	inf := d.InferenceTime(c)
	// The paper reports ≈4 ms; the cycle model must land in 1–10 ms.
	if inf < time.Millisecond || inf > 10*time.Millisecond {
		t.Fatalf("CNN inference %v outside 1–10 ms", inf)
	}
	// Real-time feasibility: inference + fusion must be far below the
	// 200 ms stride of a 400 ms window at 50 % overlap.
	total := inf + d.FusionTime(40)
	if total > 50*time.Millisecond {
		t.Fatalf("per-segment edge cost %v too slow for real time", total)
	}
}

func TestModelCostOrdering(t *testing.T) {
	// The recurrent baselines must cost more than the CNN — the
	// deployability argument of the paper's introduction.
	rng := rand.New(rand.NewSource(2))
	cost := func(k model.Kind) Cost {
		m, err := model.New(k, model.Config{WindowSamples: 40}, rng)
		if err != nil {
			t.Fatal(err)
		}
		c, err := ModelCost(m.Net, []int{40, 9})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	cnn, lstm, clstm := cost(model.KindCNN), cost(model.KindLSTM), cost(model.KindConvLSTM)
	if lstm.MACs <= cnn.MACs/2 {
		t.Fatalf("LSTM MACs %d unexpectedly cheap vs CNN %d", lstm.MACs, cnn.MACs)
	}
	if clstm.MACs == 0 || cnn.MACs == 0 {
		t.Fatal("zero cost")
	}
}

func TestDetectorConfigErrors(t *testing.T) {
	clf, _ := model.NewThreshold(model.KindThresholdAcc)
	if _, err := NewDetector(clf, DetectorConfig{WindowMS: 5}); err == nil {
		t.Error("tiny window accepted")
	}
	if _, err := NewDetector(clf, DetectorConfig{WindowMS: 400, Overlap: 1}); err == nil {
		t.Error("overlap 1 accepted")
	}
}

func TestDetectorStride(t *testing.T) {
	clf, _ := model.NewThreshold(model.KindThresholdAcc)
	det, err := NewDetector(clf, DetectorConfig{WindowMS: 400, Overlap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if det.Window != 40 || det.Step != 20 {
		t.Fatalf("window/step = %d/%d, want 40/20", det.Window, det.Step)
	}
	evals := 0
	for i := 0; i < 200; i++ {
		r := det.Push(imu.Vec3{Z: 1}, imu.Vec3{})
		if r.Evaluated {
			evals++
		}
	}
	// First eval at sample 40, then every 20: samples 40,60,…,200 → 9.
	if evals != 9 {
		t.Fatalf("evaluated %d times in 200 samples, want 9", evals)
	}
}

func TestDetectorQuietStandingNoTrigger(t *testing.T) {
	clf, _ := model.NewThreshold(model.KindThresholdAcc)
	det, _ := NewDetector(clf, DetectorConfig{WindowMS: 400, Overlap: 0.5})
	for i := 0; i < 500; i++ {
		r := det.Push(imu.Vec3{Z: 1}, imu.Vec3{})
		if r.Triggered {
			t.Fatal("false trigger while standing still")
		}
	}
}

func TestDetectorSimulateFallTrialWithThreshold(t *testing.T) {
	// A trip fall has a deep free-fall phase: the threshold detector
	// must trigger before impact with enough lead time.
	rng := rand.New(rand.NewSource(3))
	subj := synth.NewSubject(1, rng)
	task, _ := synth.TaskByID(30)
	tr := synth.GenerateTrial(subj, task, 0, 6, rng)

	clf, _ := model.NewThreshold(model.KindThresholdAcc)
	det, _ := NewDetector(clf, DetectorConfig{WindowMS: 200, Overlap: 0.75})
	sim := det.Simulate(&tr)
	if !sim.Triggered {
		t.Fatal("threshold detector missed a hard trip fall")
	}
	if sim.FalseAlarm {
		t.Fatal("fall trial flagged as false alarm")
	}
	if sim.TriggerSample <= tr.FallOnset-40 {
		t.Fatalf("triggered at %d, long before onset %d", sim.TriggerSample, tr.FallOnset)
	}
}

func TestDetectorSimulateWalkNoFalseAlarm(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	subj := synth.NewSubject(1, rng)
	task, _ := synth.TaskByID(6)
	tr := synth.GenerateTrial(subj, task, 0, 8, rng)

	clf, _ := model.NewThreshold(model.KindThresholdAcc)
	det, _ := NewDetector(clf, DetectorConfig{WindowMS: 200, Overlap: 0.75})
	sim := det.Simulate(&tr)
	if sim.FalseAlarm {
		t.Fatal("walking triggered the airbag")
	}
	if sim.Triggered {
		t.Fatal("trigger on an ADL trial")
	}
}

func TestDetectorResetIsolation(t *testing.T) {
	clf, _ := model.NewThreshold(model.KindThresholdAcc)
	det, _ := NewDetector(clf, DetectorConfig{WindowMS: 200, Overlap: 0.5})
	// Saturate with free fall, then reset; a quiet stream must not
	// trigger from stale ring contents.
	for i := 0; i < 100; i++ {
		det.Push(imu.Vec3{}, imu.Vec3{})
	}
	det.Reset()
	for i := 0; i < 100; i++ {
		if r := det.Push(imu.Vec3{Z: 1}, imu.Vec3{}); r.Triggered {
			t.Fatal("stale state after Reset")
		}
	}
}

func TestDetectorWindowAssemblyOrder(t *testing.T) {
	// Feed a monotone ramp on acc X and capture the classified window
	// via a probe classifier: rows must be oldest-first.
	probe := &probeClf{}
	det, _ := NewDetector(probe, DetectorConfig{WindowMS: 100, Overlap: 0})
	for i := 0; i < 10; i++ {
		det.Push(imu.Vec3{X: float64(i), Z: 1}, imu.Vec3{})
	}
	if probe.last == nil {
		t.Fatal("classifier never ran")
	}
	prev := probe.last.At(0, imu.AccX)
	for i := 1; i < 10; i++ {
		cur := probe.last.At(i, imu.AccX)
		if cur < prev {
			t.Fatalf("window rows out of order at %d: %g < %g", i, cur, prev)
		}
		prev = cur
	}
}

type probeClf struct{ last *tensor.Tensor }

func (p *probeClf) Name() string { return "probe" }
func (p *probeClf) Score(x *tensor.Tensor) float64 {
	p.last = x
	return 0
}

func TestSimulateLeadTime(t *testing.T) {
	// Hand-built trial: free fall from sample 100 to 160, impact 160.
	tr := dataset.Trial{
		Subject: 1, Task: 30, Source: dataset.SourceWorksite,
		FallOnset: 100, Impact: 160,
	}
	for i := 0; i < 300; i++ {
		s := imu.Sample{Acc: imu.Vec3{Z: 1}}
		if i >= 100 && i < 160 {
			s.Acc = imu.Vec3{Z: 0.1}
			s.Gyro = imu.Vec3{Y: 150}
		}
		tr.Samples = append(tr.Samples, s)
	}
	clf, _ := model.NewThreshold(model.KindThresholdAcc)
	det, _ := NewDetector(clf, DetectorConfig{WindowMS: 200, Overlap: 0.75})
	sim := det.Simulate(&tr)
	if !sim.Triggered {
		t.Fatal("no trigger on synthetic free fall")
	}
	if !sim.InTime {
		t.Fatalf("trigger at %d too late (lead %.0f ms)", sim.TriggerSample, sim.LeadTimeMS)
	}
	wantLead := float64(160-sim.TriggerSample) * 10
	if sim.LeadTimeMS != wantLead {
		t.Fatalf("lead time %.1f, want %.1f", sim.LeadTimeMS, wantLead)
	}
}

func TestEnergyPerSegment(t *testing.T) {
	d := STM32F722()
	rng := rand.New(rand.NewSource(10))
	m, err := model.New(model.KindCNN, model.Config{WindowSamples: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ModelCost(m.Net, []int{40, 9})
	if err != nil {
		t.Fatal(err)
	}
	// One 200 ms stride of fusion + one inference.
	uj := d.EnergyPerSegmentUJ(c, 20)
	// Plausibility: hundreds of µJ, far below a mJ — a 500 mWh
	// battery would run the detector for weeks.
	if uj < 10 || uj > 5000 {
		t.Fatalf("energy per segment %.1f µJ implausible", uj)
	}
}

type fakeLayer struct{}

func (fakeLayer) Name() string                                        { return "fake" }
func (fakeLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor { return x }
func (fakeLayer) Backward(g *tensor.Tensor) *tensor.Tensor            { return g }
func (fakeLayer) Params() []*nn.Param                                 { return nil }
func (fakeLayer) OutShape(in []int) ([]int, error)                    { return in, nil }

func TestModelCostUnknownLayer(t *testing.T) {
	net := nn.NewNetwork(fakeLayer{})
	if _, err := ModelCost(net, []int{10, 9}); err == nil {
		t.Fatal("unknown layer type accepted by cost model")
	}
}

func TestModelCostShapeError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := nn.NewNetwork(nn.NewDense(5, 2, rng))
	if _, err := ModelCost(net, []int{10, 9}); err == nil {
		t.Fatal("shape mismatch accepted by cost model")
	}
}
