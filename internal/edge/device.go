// Package edge models deployment on the paper's target hardware: a
// custom PCB with an STM32F722RET6 microcontroller (ARM Cortex-M7 @
// 216 MHz) driving a wearable airbag that needs 150 ms to inflate.
// It provides a cycle-cost model for per-segment inference latency, a
// flash/RAM budget check for the quantized model, a sample-by-sample
// streaming detector (filter → sensor fusion → ring buffer → CNN) and
// an airbag trigger simulator that verifies the pre-impact deadline.
//
// The real hardware is not available in this environment; the cycle
// model is the documented substitution. Its per-operation costs are
// calibrated to the ballpark of CMSIS-NN-style int8 kernels without
// hand-tuned SIMD, which lands the paper's CNN near the reported
// 4 ms per-segment inference.
package edge

import (
	"fmt"
	"time"

	"repro/internal/nn"
)

// Device describes a deployment target's budget and cost model.
type Device struct {
	Name       string
	ClockHz    float64
	FlashBytes int
	RAMBytes   int

	// CyclesPerMAC is the amortised cost of one int8 multiply-
	// accumulate, including load/store overhead.
	CyclesPerMAC float64
	// CyclesPerElem is the cost of one element-wise op (ReLU, pool
	// comparison, requantization).
	CyclesPerElem float64
	// LayerOverheadCycles covers per-layer setup (loop prologues,
	// buffer bookkeeping).
	LayerOverheadCycles float64
	// FusionCyclesPerSample is the sensor-fusion cost per incoming
	// sample (the paper attributes ≈3 ms per segment to data fusion).
	FusionCyclesPerSample float64
	// ActiveNanojoulePerCycle is the core's switching energy, for the
	// battery-life estimate a wearable lives or dies by.
	ActiveNanojoulePerCycle float64
}

// STM32F722 returns the paper's target: 216 MHz Cortex-M7 with
// 256 KiB of flash and 256 KiB of RAM available to the model (§IV-C).
func STM32F722() Device {
	return Device{
		Name:                "STM32F722RET6",
		ClockHz:             216e6,
		FlashBytes:          256 * 1024,
		RAMBytes:            256 * 1024,
		CyclesPerMAC:        8,
		CyclesPerElem:       12,
		LayerOverheadCycles: 2000,
		// ≈3 ms of fusion per 400 ms segment ⇒ ~16.2k cycles/sample
		// at 100 Hz and 216 MHz.
		FusionCyclesPerSample: 16000,
		// ~100 mW active at 216 MHz (datasheet run-mode current)
		// ⇒ ≈0.46 nJ/cycle.
		ActiveNanojoulePerCycle: 0.46,
	}
}

// EnergyPerSegmentUJ estimates the active energy (µJ) one segment
// costs: inference plus the fusion work for the samples of one stride.
func (d Device) EnergyPerSegmentUJ(c Cost, strideSamples int) float64 {
	cycles := float64(c.MACs)*d.CyclesPerMAC +
		float64(c.Elems)*d.CyclesPerElem +
		float64(c.Layers)*d.LayerOverheadCycles +
		float64(strideSamples)*d.FusionCyclesPerSample
	return cycles * d.ActiveNanojoulePerCycle / 1000
}

// Cost is the work of one inference.
type Cost struct {
	MACs   int // multiply-accumulates
	Elems  int // element-wise operations
	Layers int
}

// Add accumulates another cost.
func (c *Cost) Add(o Cost) {
	c.MACs += o.MACs
	c.Elems += o.Elems
	c.Layers += o.Layers
}

// InferenceTime converts a cost to wall-clock time on the device.
func (d Device) InferenceTime(c Cost) time.Duration {
	cycles := float64(c.MACs)*d.CyclesPerMAC +
		float64(c.Elems)*d.CyclesPerElem +
		float64(c.Layers)*d.LayerOverheadCycles
	return time.Duration(cycles / d.ClockHz * float64(time.Second))
}

// FusionTime is the sensor-fusion cost for n samples.
func (d Device) FusionTime(n int) time.Duration {
	return time.Duration(float64(n) * d.FusionCyclesPerSample / d.ClockHz * float64(time.Second))
}

// FitsFlash reports whether a model image of the given size deploys.
func (d Device) FitsFlash(bytes int) bool { return bytes <= d.FlashBytes }

// FitsRAM reports whether the activation memory fits.
func (d Device) FitsRAM(bytes int) bool { return bytes <= d.RAMBytes }

// ModelCost walks a float network's architecture and tallies the
// integer-inference work of its quantized counterpart. Layer support
// mirrors the deployable families plus the recurrent baselines (for
// the comparison of why LSTMs "can hardly be implemented on
// resource-constrained devices", as the paper puts it).
func ModelCost(net *nn.Network, inShape []int) (Cost, error) {
	var total Cost
	shape := append([]int(nil), inShape...)
	for _, l := range net.Layers {
		c, out, err := layerCost(l, shape)
		if err != nil {
			return Cost{}, err
		}
		total.Add(c)
		shape = out
	}
	return total, nil
}

func layerCost(l nn.Layer, in []int) (Cost, []int, error) {
	out, err := l.OutShape(in)
	if err != nil {
		return Cost{}, nil, err
	}
	outN := 1
	for _, d := range out {
		outN *= d
	}
	switch ll := l.(type) {
	case *nn.Dense:
		return Cost{MACs: ll.In * ll.Out, Elems: ll.Out, Layers: 1}, out, nil
	case *nn.Conv1D:
		outT := in[0] - ll.Kernel + 1
		return Cost{MACs: outT * ll.Filters * ll.Kernel * ll.InCh, Elems: outN, Layers: 1}, out, nil
	case *nn.MaxPool1D, *nn.ReLU, *nn.Sigmoid, *nn.Flatten, *nn.Tanh:
		return Cost{Elems: outN, Layers: 1}, out, nil
	case *nn.Dropout:
		return Cost{Layers: 0}, out, nil // identity at inference
	case *nn.LSTM:
		T := in[0]
		perStep := 4 * ll.Hidden * (ll.InCh + ll.Hidden)
		return Cost{MACs: T * perStep, Elems: T * 10 * ll.Hidden, Layers: 1}, out, nil
	case *nn.ConvLSTM:
		T := in[0]
		perStep := ll.Ch * 4 * ll.Filters * ll.Kernel * (1 + ll.Filters)
		return Cost{MACs: T * perStep, Elems: T * 10 * ll.Ch * ll.Filters, Layers: 1}, out, nil
	case *nn.Branch:
		var c Cost
		for bi, stack := range ll.Stacks {
			shape := []int{in[0], ll.Cols[bi][1] - ll.Cols[bi][0]}
			for _, sl := range stack {
				sc, sout, err := layerCost(sl, shape)
				if err != nil {
					return Cost{}, nil, err
				}
				c.Add(sc)
				shape = sout
			}
		}
		c.Layers++
		c.Elems += outN // concat copies
		return c, out, nil
	default:
		return Cost{}, nil, fmt.Errorf("edge: no cost model for layer %s", l.Name())
	}
}
