package edge

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dsp"
	"repro/internal/imu"
	"repro/internal/model"
)

func TestFixedFilterTracksFloat(t *testing.T) {
	f := dsp.MustButterworth(4, 5, 100)
	ff, err := NewFixedFilter(f)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	f.Reset()
	ff.Reset()
	maxErr := 0.0
	for i := 0; i < 2000; i++ {
		// Accelerometer-scale signal: ±2 g around 1 g.
		x := 1 + 0.5*math.Sin(float64(i)/8) + 0.3*rng.NormFloat64()
		yf := f.Process(x)
		yq := ff.Process(x)
		if e := math.Abs(yf - yq); e > maxErr {
			maxErr = e
		}
	}
	// Q16.16 resolution is ~1.5e-5; the recursive accumulation of a
	// 4th-order cascade stays within ~1e-2 g over accelerometer-scale
	// inputs — far below the 0.6 g decision thresholds.
	if maxErr > 1e-2 {
		t.Fatalf("fixed-point divergence %g g too large", maxErr)
	}
}

func TestFixedFilterStability(t *testing.T) {
	ff, err := NewFixedFilter(dsp.MustButterworth(4, 5, 100))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100000; i++ {
		y := ff.Process(2*rng.Float64() - 1)
		if math.Abs(y) > 10 {
			t.Fatalf("fixed-point filter diverged at %d: %g", i, y)
		}
	}
}

func TestFixedFilterPrime(t *testing.T) {
	ff, err := NewFixedFilter(dsp.MustButterworth(4, 5, 100))
	if err != nil {
		t.Fatal(err)
	}
	ff.Prime(1.0)
	// A primed filter fed its priming constant must not transient.
	for i := 0; i < 100; i++ {
		y := ff.Process(1.0)
		if math.Abs(y-1) > 5e-3 {
			t.Fatalf("primed fixed filter transient at %d: %g", i, y)
		}
	}
}

func TestFixedFilterResetClears(t *testing.T) {
	ff, _ := NewFixedFilter(dsp.MustButterworth(4, 5, 100))
	for i := 0; i < 50; i++ {
		ff.Process(5)
	}
	ff.Reset()
	fresh, _ := NewFixedFilter(dsp.MustButterworth(4, 5, 100))
	if ff.Process(1) != fresh.Process(1) {
		t.Fatal("reset did not clear state")
	}
}

func TestQFormatHelpers(t *testing.T) {
	if fromQ(toQ(1.5)) != 1.5 {
		t.Fatal("1.5 not exactly representable?")
	}
	if math.Abs(fromQ(toQ(-0.3))+0.3) > 1.0/qOne {
		t.Fatal("negative rounding")
	}
	if qMul(toQ(2), toQ(3)) != toQ(6) {
		t.Fatal("qMul")
	}
}

func TestDetectorWithFixedPointFilters(t *testing.T) {
	// The fixed-point pipeline must behave like the float one on a
	// clean standing stream: no spurious triggers, same stride.
	mk := func(fixed bool) *Detector {
		clf, _ := newThresholdForTest()
		det, err := NewDetector(clf, DetectorConfig{WindowMS: 200, Overlap: 0.5, FixedPoint: fixed})
		if err != nil {
			t.Fatal(err)
		}
		return det
	}
	a, b := mk(false), mk(true)
	for i := 0; i < 300; i++ {
		ra := a.Push(vec3Z1(), vec3Zero())
		rb := b.Push(vec3Z1(), vec3Zero())
		if ra.Evaluated != rb.Evaluated {
			t.Fatal("stride divergence between float and fixed pipelines")
		}
		if rb.Triggered {
			t.Fatal("fixed-point pipeline false trigger while standing")
		}
	}
}

func TestFixedFilterParityAtFullScale(t *testing.T) {
	// Sustained full-scale saturation — the accelerometer pinned at
	// ±16 g and the gyro at ±2000 deg/s during a violent impact — is
	// where Q16.16 accumulators are most stressed. The fixed cascade
	// must track the float cascade without overflow across both
	// magnitudes.
	for _, fs := range []float64{16, 2000} {
		f := dsp.MustButterworth(4, 5, 100)
		ff, err := NewFixedFilter(f)
		if err != nil {
			t.Fatal(err)
		}
		f.Prime(0)
		ff.Prime(0)
		maxErr := 0.0
		for i := 0; i < 500; i++ {
			x := fs // hard rail
			if i%100 >= 50 {
				x = -fs // alternating rail-to-rail slam
			}
			yf := f.Process(x)
			yq := ff.Process(x)
			if math.IsNaN(yq) || math.IsInf(yq, 0) {
				t.Fatalf("fs=%g: fixed filter emitted non-finite at %d", fs, i)
			}
			if e := math.Abs(yf - yq); e > maxErr {
				maxErr = e
			}
		}
		// Tolerance scales with the signal: quantization error is
		// relative to full scale for the multiply-heavy cascade.
		if maxErr > 2e-3*fs+1e-2 {
			t.Fatalf("fs=%g: full-scale divergence %g too large", fs, maxErr)
		}
	}
}

func TestFixedFilterParityAfterStepDiscontinuity(t *testing.T) {
	// A long gap re-primes the cascade on the first fresh sample; the
	// fixed-point Prime must land on the same steady state as the
	// float Prime even when the priming value is a worst-case step
	// away from the previous state (e.g. 1 g standing → −16 g rail).
	for _, step := range []float64{16, -16, 0.001, -2000, 2000} {
		f := dsp.MustButterworth(4, 5, 100)
		ff, err := NewFixedFilter(f)
		if err != nil {
			t.Fatal(err)
		}
		// Drive both into an arbitrary state, then re-prime at the step.
		for i := 0; i < 60; i++ {
			f.Process(1)
			ff.Process(1)
		}
		f.Prime(step)
		ff.Prime(step)
		scale := math.Max(1, math.Abs(step))
		for i := 0; i < 200; i++ {
			yf := f.Process(step)
			yq := ff.Process(step)
			if math.IsNaN(yq) || math.IsInf(yq, 0) {
				t.Fatalf("step %g: non-finite output at %d", step, i)
			}
			if e := math.Abs(yf - yq); e > 5e-3*scale+1e-2 {
				t.Fatalf("step %g: post-reprime divergence %g at sample %d (float %g, fixed %g)",
					step, e, i, yf, yq)
			}
		}
	}
}

func TestFixedPointDetectorParityUnderSaturatedFall(t *testing.T) {
	// End-to-end: a synthetic free-fall-then-impact stream whose impact
	// spike rails at the sensor full scale, replayed through the float
	// and fixed-point pipelines with a long gap in the middle. The
	// probabilities the two pipelines hand the classifier must agree
	// closely enough that trigger decisions cannot diverge at any
	// reasonable threshold.
	mk := func(fixed bool) *Detector {
		clf, _ := newThresholdForTest()
		det, err := NewDetector(clf, DetectorConfig{
			WindowMS: 200, Overlap: 0.75, FixedPoint: fixed,
			FullScaleG: 16, FullScaleDPS: 2000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return det
	}
	a, b := mk(false), mk(true)
	push := func(i int) (Result, Result) {
		acc, gyro := imu.Vec3{Z: 1}, imu.Vec3{}
		switch {
		case i >= 120 && i < 170: // free fall
			acc = imu.Vec3{Z: 0.05}
			gyro = imu.Vec3{Y: 180}
		case i >= 170 && i < 175: // saturated impact spike
			acc = imu.Vec3{X: 16, Y: -16, Z: 16}
			gyro = imu.Vec3{X: 2000, Y: -2000, Z: 2000}
		}
		return a.Push(acc, gyro), b.Push(acc, gyro)
	}
	for i := 0; i < 100; i++ {
		push(i)
	}
	// Long gap: both pipelines must take the same holdoff path.
	ra, rb := a.PushMissing(30), b.PushMissing(30)
	if ra.Health != rb.Health {
		t.Fatalf("health diverged across gap: float %v, fixed %v", ra.Health, rb.Health)
	}
	for i := 100; i < 300; i++ {
		ra, rb := push(i)
		if ra.Evaluated != rb.Evaluated {
			t.Fatalf("stride/holdoff divergence at %d", i)
		}
		if ra.Evaluated {
			if math.Abs(ra.Probability-rb.Probability) > 0.05 {
				t.Fatalf("probability divergence at %d: float %g, fixed %g",
					i, ra.Probability, rb.Probability)
			}
		}
	}
}

func newThresholdForTest() (model.Classifier, error) {
	return model.NewThreshold(model.KindThresholdAcc)
}

func vec3Z1() imu.Vec3   { return imu.Vec3{Z: 1} }
func vec3Zero() imu.Vec3 { return imu.Vec3{} }
