package edge

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dsp"
	"repro/internal/imu"
	"repro/internal/model"
)

func TestFixedFilterTracksFloat(t *testing.T) {
	f := dsp.MustButterworth(4, 5, 100)
	ff, err := NewFixedFilter(f)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	f.Reset()
	ff.Reset()
	maxErr := 0.0
	for i := 0; i < 2000; i++ {
		// Accelerometer-scale signal: ±2 g around 1 g.
		x := 1 + 0.5*math.Sin(float64(i)/8) + 0.3*rng.NormFloat64()
		yf := f.Process(x)
		yq := ff.Process(x)
		if e := math.Abs(yf - yq); e > maxErr {
			maxErr = e
		}
	}
	// Q16.16 resolution is ~1.5e-5; the recursive accumulation of a
	// 4th-order cascade stays within ~1e-2 g over accelerometer-scale
	// inputs — far below the 0.6 g decision thresholds.
	if maxErr > 1e-2 {
		t.Fatalf("fixed-point divergence %g g too large", maxErr)
	}
}

func TestFixedFilterStability(t *testing.T) {
	ff, err := NewFixedFilter(dsp.MustButterworth(4, 5, 100))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100000; i++ {
		y := ff.Process(2*rng.Float64() - 1)
		if math.Abs(y) > 10 {
			t.Fatalf("fixed-point filter diverged at %d: %g", i, y)
		}
	}
}

func TestFixedFilterPrime(t *testing.T) {
	ff, err := NewFixedFilter(dsp.MustButterworth(4, 5, 100))
	if err != nil {
		t.Fatal(err)
	}
	ff.Prime(1.0)
	// A primed filter fed its priming constant must not transient.
	for i := 0; i < 100; i++ {
		y := ff.Process(1.0)
		if math.Abs(y-1) > 5e-3 {
			t.Fatalf("primed fixed filter transient at %d: %g", i, y)
		}
	}
}

func TestFixedFilterResetClears(t *testing.T) {
	ff, _ := NewFixedFilter(dsp.MustButterworth(4, 5, 100))
	for i := 0; i < 50; i++ {
		ff.Process(5)
	}
	ff.Reset()
	fresh, _ := NewFixedFilter(dsp.MustButterworth(4, 5, 100))
	if ff.Process(1) != fresh.Process(1) {
		t.Fatal("reset did not clear state")
	}
}

func TestQFormatHelpers(t *testing.T) {
	if fromQ(toQ(1.5)) != 1.5 {
		t.Fatal("1.5 not exactly representable?")
	}
	if math.Abs(fromQ(toQ(-0.3))+0.3) > 1.0/qOne {
		t.Fatal("negative rounding")
	}
	if qMul(toQ(2), toQ(3)) != toQ(6) {
		t.Fatal("qMul")
	}
}

func TestDetectorWithFixedPointFilters(t *testing.T) {
	// The fixed-point pipeline must behave like the float one on a
	// clean standing stream: no spurious triggers, same stride.
	mk := func(fixed bool) *Detector {
		clf, _ := newThresholdForTest()
		det, err := NewDetector(clf, DetectorConfig{WindowMS: 200, Overlap: 0.5, FixedPoint: fixed})
		if err != nil {
			t.Fatal(err)
		}
		return det
	}
	a, b := mk(false), mk(true)
	for i := 0; i < 300; i++ {
		ra := a.Push(vec3Z1(), vec3Zero())
		rb := b.Push(vec3Z1(), vec3Zero())
		if ra.Evaluated != rb.Evaluated {
			t.Fatal("stride divergence between float and fixed pipelines")
		}
		if rb.Triggered {
			t.Fatal("fixed-point pipeline false trigger while standing")
		}
	}
}

func newThresholdForTest() (model.Classifier, error) {
	return model.NewThreshold(model.KindThresholdAcc)
}

func vec3Z1() imu.Vec3   { return imu.Vec3{Z: 1} }
func vec3Zero() imu.Vec3 { return imu.Vec3{} }
