package edge

import (
	"math"
	"testing"

	"repro/internal/imu"
	"repro/internal/model"
)

// FuzzDetectorPush asserts the hardened ingestion invariants for
// arbitrary — including non-finite — sensor input: Push never panics,
// never reports a non-finite (or out-of-[0,1]) probability, and the
// health state stays within its enumeration. Both the float and the
// Q16.16 fixed-point pre-filter cascades are exercised: the integer
// path is where a smuggled NaN (int64 conversion is undefined) would
// corrupt state silently.
func FuzzDetectorPush(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 0.0, 0.0, 0.0)
	f.Add(math.NaN(), 0.0, 1.0, 0.0, math.NaN(), 0.0)
	f.Add(math.Inf(1), math.Inf(-1), 0.0, 1e308, -1e308, 5.0)
	f.Add(0.1, -0.1, 0.9, 2000.0, -2000.0, 123.0)
	f.Add(1e-300, -1e-300, 6.5, 1e18, math.Inf(-1), math.NaN())

	clf, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		f.Fatal(err)
	}
	float64Det, err := NewDetector(clf, DetectorConfig{WindowMS: 200, Overlap: 0.5})
	if err != nil {
		f.Fatal(err)
	}
	fixedDet, err := NewDetector(clf, DetectorConfig{WindowMS: 200, Overlap: 0.5, FixedPoint: true})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, ax, ay, az, gx, gy, gz float64) {
		for _, det := range []*Detector{float64Det, fixedDet} {
			r := det.Push(imu.Vec3{X: ax, Y: ay, Z: az}, imu.Vec3{X: gx, Y: gy, Z: gz})
			if math.IsNaN(r.Probability) || math.IsInf(r.Probability, 0) {
				t.Fatalf("non-finite probability from Push(%g,%g,%g, %g,%g,%g)",
					ax, ay, az, gx, gy, gz)
			}
			if r.Probability < 0 || r.Probability > 1 {
				t.Fatalf("probability %g outside [0,1]", r.Probability)
			}
			if r.Health < HealthHealthy || r.Health > HealthFaulted {
				t.Fatalf("health %d outside enumeration", r.Health)
			}
			// A ring buffer poisoned by a smuggled non-finite value
			// would surface on a later evaluation; check it directly.
			for _, v := range det.ring {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite value reached the ring buffer from Push(%g,%g,%g, %g,%g,%g)",
						ax, ay, az, gx, gy, gz)
				}
			}
		}
	})
}
