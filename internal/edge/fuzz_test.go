package edge

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/imu"
	"repro/internal/model"
)

// FuzzDetectorPush asserts the hardened ingestion invariants for
// arbitrary — including non-finite — sensor input: Push never panics,
// never reports a non-finite (or out-of-[0,1]) probability, and the
// health state stays within its enumeration. Both the float and the
// Q16.16 fixed-point pre-filter cascades are exercised: the integer
// path is where a smuggled NaN (int64 conversion is undefined) would
// corrupt state silently.
func FuzzDetectorPush(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 0.0, 0.0, 0.0)
	f.Add(math.NaN(), 0.0, 1.0, 0.0, math.NaN(), 0.0)
	f.Add(math.Inf(1), math.Inf(-1), 0.0, 1e308, -1e308, 5.0)
	f.Add(0.1, -0.1, 0.9, 2000.0, -2000.0, 123.0)
	f.Add(1e-300, -1e-300, 6.5, 1e18, math.Inf(-1), math.NaN())

	clf, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		f.Fatal(err)
	}
	float64Det, err := NewDetector(clf, DetectorConfig{WindowMS: 200, Overlap: 0.5})
	if err != nil {
		f.Fatal(err)
	}
	fixedDet, err := NewDetector(clf, DetectorConfig{WindowMS: 200, Overlap: 0.5, FixedPoint: true})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, ax, ay, az, gx, gy, gz float64) {
		for _, det := range []*Detector{float64Det, fixedDet} {
			r := det.Push(imu.Vec3{X: ax, Y: ay, Z: az}, imu.Vec3{X: gx, Y: gy, Z: gz})
			if math.IsNaN(r.Probability) || math.IsInf(r.Probability, 0) {
				t.Fatalf("non-finite probability from Push(%g,%g,%g, %g,%g,%g)",
					ax, ay, az, gx, gy, gz)
			}
			if r.Probability < 0 || r.Probability > 1 {
				t.Fatalf("probability %g outside [0,1]", r.Probability)
			}
			if r.Health < HealthHealthy || r.Health > HealthFaulted {
				t.Fatalf("health %d outside enumeration", r.Health)
			}
			// A ring buffer poisoned by a smuggled non-finite value
			// would surface on a later evaluation; check it directly.
			for _, v := range det.ring {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite value reached the ring buffer from Push(%g,%g,%g, %g,%g,%g)",
						ax, ay, az, gx, gy, gz)
				}
			}
		}
	})
}

// batchOnly hides the concrete *model.NetModel so AttachStream's type
// assertion fails: a detector built around it always assembles and
// scores the full window, never the incremental caches.
type batchOnly struct{ model.Classifier }

// FuzzIncrementalScore is the equivalence oracle for the incremental
// inference engine (DESIGN §12): a detector answering from its
// per-layer conv/pool rings and a detector re-running the CNN over the
// assembled window must produce bit-identical results — probability
// bits included — on arbitrary streams of quiet wear, violent motion,
// clamped readings, non-finite garbage and sensor gaps. Any divergence
// means a streaming cache no longer mirrors the ring buffer.
func FuzzIncrementalScore(f *testing.F) {
	f.Add(int64(1), uint16(120))
	f.Add(int64(2), uint16(300))
	f.Add(int64(-77), uint16(64))
	f.Add(int64(987654), uint16(513))

	m, err := model.New(model.KindCNN, model.Config{WindowSamples: 40}, rand.New(rand.NewSource(9)))
	if err != nil {
		f.Fatal(err)
	}
	cfg := DetectorConfig{WindowMS: 400, Overlap: 0.5}
	streamDet, err := NewDetector(m, cfg)
	if err != nil {
		f.Fatal(err)
	}
	if len(streamDet.streams) == 0 {
		f.Fatal("CNN detector did not attach an incremental scorer — fuzz would compare batch to batch")
	}
	batchDet, err := NewDetector(batchOnly{m}, cfg)
	if err != nil {
		f.Fatal(err)
	}
	if len(batchDet.streams) != 0 {
		f.Fatal("wrapped classifier unexpectedly attached a scorer")
	}

	f.Fuzz(func(t *testing.T, seed int64, n uint16) {
		steps := int(n)%512 + 64
		streamDet.Reset()
		batchDet.Reset()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < steps; i++ {
			var ra, rb Result
			switch op := rng.Intn(100); {
			case op < 4:
				k := 1 + rng.Intn(8) // spans bridged and re-prime gaps
				ra = streamDet.PushMissing(k)
				rb = batchDet.PushMissing(k)
			case op < 7: // quarantine path
				acc := imu.Vec3{X: math.NaN(), Z: 1}
				ra = streamDet.Push(acc, imu.Vec3{})
				rb = batchDet.Push(acc, imu.Vec3{})
			case op < 10: // gyro hold path
				acc := imu.Vec3{Z: 1}
				gyro := imu.Vec3{Y: math.Inf(1)}
				ra = streamDet.Push(acc, gyro)
				rb = batchDet.Push(acc, gyro)
			case op < 14: // clamp path
				acc := imu.Vec3{Z: 20 + rng.Float64()}
				gyro := imu.Vec3{X: 3000 * rng.NormFloat64()}
				ra = streamDet.Push(acc, gyro)
				rb = batchDet.Push(acc, gyro)
			default: // plausible wear, amplitude varied to cross ReLU signs
				amp := rng.Float64() * 4
				acc := imu.Vec3{X: amp * rng.NormFloat64(), Y: amp * rng.NormFloat64(), Z: 1 + amp*rng.NormFloat64()}
				gyro := imu.Vec3{X: 90 * rng.NormFloat64(), Y: 90 * rng.NormFloat64(), Z: 90 * rng.NormFloat64()}
				ra = streamDet.Push(acc, gyro)
				rb = batchDet.Push(acc, gyro)
			}
			if ra.Evaluated != rb.Evaluated || ra.Triggered != rb.Triggered ||
				ra.Health != rb.Health || ra.Quarantined != rb.Quarantined ||
				ra.Clamped != rb.Clamped {
				t.Fatalf("seed=%d step %d: results diverge:\n streaming %+v\n batch     %+v", seed, i, ra, rb)
			}
			if math.Float64bits(ra.Probability) != math.Float64bits(rb.Probability) {
				t.Fatalf("seed=%d step %d: probability bits diverge: streaming %x (%g), batch %x (%g)",
					seed, i, math.Float64bits(ra.Probability), ra.Probability,
					math.Float64bits(rb.Probability), rb.Probability)
			}
		}
	})
}
