package edge

import (
	"fmt"

	"repro/internal/dsp"
	"repro/internal/tensor"
)

// Fixed-point filtering: the STM32F722 has an FPU, but many fielded
// boards run the pre-filter in Q16.16 integer arithmetic to leave the
// FPU to the CNN. This implementation quantifies what that costs in
// accuracy — FixedFilter mirrors dsp.Filter with 32.32-bit
// accumulation over Q16.16 state and coefficients, and the test suite
// bounds its divergence from the float cascade.

// qShift is the fractional bit count of the Q16.16 format.
const qShift = 16

// qOne is 1.0 in Q16.16.
const qOne = 1 << qShift

// toQ converts float to Q16.16 with rounding.
//
//fallvet:hotpath
func toQ(x float64) int64 {
	if x >= 0 {
		return int64(x*qOne + 0.5)
	}
	return int64(x*qOne - 0.5)
}

// fromQ converts Q16.16 back to float.
//
//fallvet:hotpath
func fromQ(q int64) float64 { return float64(q) / qOne }

// qMul multiplies two Q16.16 values into Q16.16 (intermediate 48-bit
// product fits int64 for the magnitudes a 5 Hz biquad sees).
func qMul(a, b int64) int64 { return (a * b) >> qShift }

// fixedBiquad is one direct-form-II-transposed section in Q16.16.
type fixedBiquad struct {
	//fallvet:derived quantised design coefficients, fixed by NewFixedFilter; AppendState serialises only the z1/z2 state
	b0, b1, b2 int64
	//fallvet:derived quantised design coefficients, fixed by NewFixedFilter; AppendState serialises only the z1/z2 state
	a1, a2 int64
	z1, z2 int64
}

// FixedFilter is a biquad cascade in Q16.16 arithmetic.
type FixedFilter struct {
	sections []fixedBiquad
}

// NewFixedFilter quantizes a float Butterworth cascade to Q16.16.
func NewFixedFilter(f *dsp.Filter) (*FixedFilter, error) {
	sections := f.Sections()
	if len(sections) == 0 {
		return nil, fmt.Errorf("edge: empty filter")
	}
	ff := &FixedFilter{}
	for _, s := range sections {
		ff.sections = append(ff.sections, fixedBiquad{
			b0: toQ(s.B0), b1: toQ(s.B1), b2: toQ(s.B2),
			a1: toQ(s.A1), a2: toQ(s.A2),
		})
	}
	return ff, nil
}

// Reset clears all section states.
func (ff *FixedFilter) Reset() {
	for i := range ff.sections {
		ff.sections[i].z1, ff.sections[i].z2 = 0, 0
	}
}

// stateLen is the number of int64 state words appendState appends.
func (ff *FixedFilter) stateLen() int { return 2 * len(ff.sections) }

// appendState appends the Q16.16 streaming state (z1, z2 per section)
// for the detector's snapshot codec.
func (ff *FixedFilter) appendState(dst []int64) []int64 {
	for i := range ff.sections {
		dst = append(dst, ff.sections[i].z1, ff.sections[i].z2)
	}
	return dst
}

// setState restores streaming state captured by appendState.
func (ff *FixedFilter) setState(st []int64) error {
	if len(st) != ff.stateLen() {
		return fmt.Errorf("edge: fixed filter state holds %d words, want %d", len(st), ff.stateLen())
	}
	for i := range ff.sections {
		ff.sections[i].z1 = st[2*i]
		ff.sections[i].z2 = st[2*i+1]
	}
	return nil
}

// Process filters one sample (float in, float out; the integer domain
// is internal, as on the device where samples arrive as raw counts).
//
//fallvet:hotpath
func (ff *FixedFilter) Process(x float64) float64 {
	q := toQ(x)
	for i := range ff.sections {
		s := &ff.sections[i]
		y := qMul(s.b0, q) + s.z1
		s.z1 = qMul(s.b1, q) - qMul(s.a1, y) + s.z2
		s.z2 = qMul(s.b2, q) - qMul(s.a2, y)
		q = y
	}
	return fromQ(q)
}

// fixedOf adapts the Q16.16 FixedFilter to the scalar-parameterized
// streamFilterOf interface the detector uses. Like dsp.FilterOf, the
// accumulator domain (here Q16.16 integers over float64 conversion)
// is wider than a float32 sample, so only the boundary narrows.
type fixedOf[S tensor.Scalar] struct {
	f *FixedFilter
}

//fallvet:hotpath
func (w *fixedOf[S]) Process(x S) S { return S(w.f.Process(float64(x))) }

//fallvet:hotpath
func (w *fixedOf[S]) Prime(x0 S) { w.f.Prime(float64(x0)) }

func (w *fixedOf[S]) Reset() { w.f.Reset() }

// Prime initialises the state to the steady-state response for a
// constant input, mirroring dsp.Filter.Prime.
//
//fallvet:hotpath
func (ff *FixedFilter) Prime(x0 float64) {
	q := toQ(x0)
	for i := range ff.sections {
		s := &ff.sections[i]
		den := qOne + s.a1 + s.a2
		num := s.b0 + s.b1 + s.b2
		// Steady-state output y = x·(Σb)/(Σa).
		y := int64(0)
		if den != 0 {
			y = (q*num + den/2) / den
		}
		s.z2 = qMul(s.b2, q) - qMul(s.a2, y)
		s.z1 = qMul(s.b1+s.b2, q) - qMul(s.a1+s.a2, y)
		q = y
	}
}
