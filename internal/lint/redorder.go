package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// redOrderAnalyzer enforces the fixed-order reduction contract
// (DESIGN.md §8): parallel results are bit-identical only because
// every fan-out goes through the internal/par pool, which assigns
// fixed chunks and reduces worker results in worker-index order. A
// stray goroutine or a channel-collected reduction anywhere else in a
// deterministic package reintroduces scheduling order into float
// accumulation, so the analyzer forbids goroutine spawns and every
// channel construct outside internal/par.
var redOrderAnalyzer = &Analyzer{
	Name: "redorder",
	Doc:  "forbid goroutines and channels in deterministic packages outside internal/par",
	run:  runRedOrder,
}

const redorderHint = "route parallelism through the internal/par fixed-order pool"

func runRedOrder(p *pass) {
	if !p.cfg.Deterministic(p.pkg.Path) || p.cfg.Par(p.pkg.Path) {
		return
	}
	info := p.pkg.Info
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.report("redorder", n.Pos(), "goroutine spawned outside internal/par: "+redorderHint)
			case *ast.SendStmt:
				p.report("redorder", n.Pos(), "channel send outside internal/par: "+redorderHint)
			case *ast.SelectStmt:
				p.report("redorder", n.Pos(), "select outside internal/par: "+redorderHint)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					p.report("redorder", n.Pos(), "channel receive outside internal/par: "+redorderHint)
				}
			case *ast.RangeStmt:
				if n.X == nil {
					return true
				}
				if t := info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						p.report("redorder", n.Pos(),
							"range over channel outside internal/par (receive order is scheduling order): "+redorderHint)
					}
				}
			case *ast.CallExpr:
				switch builtinName(info, n) {
				case "make":
					if t := info.TypeOf(n); t != nil {
						if _, ok := t.Underlying().(*types.Chan); ok {
							p.report("redorder", n.Pos(), "channel created outside internal/par: "+redorderHint)
						}
					}
				case "close":
					if len(n.Args) == 1 {
						if t := info.TypeOf(n.Args[0]); t != nil {
							if _, ok := t.Underlying().(*types.Chan); ok {
								p.report("redorder", n.Pos(), "channel closed outside internal/par: "+redorderHint)
							}
						}
					}
				}
			}
			return true
		})
	}
}
