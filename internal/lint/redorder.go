package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// redOrderAnalyzer confines concurrency to the sanctioned packages.
// Two contracts meet here:
//
//   - Fixed-order reduction (DESIGN.md §8): parallel results are
//     bit-identical only because every fan-out goes through the
//     internal/par pool, which assigns fixed chunks and reduces worker
//     results in worker-index order. A stray goroutine or a
//     channel-collected reduction in a deterministic package
//     reintroduces scheduling order into float accumulation.
//   - Supervised concurrency (DESIGN.md §11): every long-lived
//     goroutine in the serving runtime must be owned by a supervisor
//     that isolates its panics, restarts it with backoff and accounts
//     for it in the leak check. A goroutine spawned outside
//     internal/serve or internal/guard has no supervisor — it is
//     invisible to crash isolation and shows up only as a leak.
//
// The analyzer therefore forbids goroutine spawns and every channel
// construct outside the allowlist (Config.Par), repo-wide.
var redOrderAnalyzer = &Analyzer{
	Name: "redorder",
	Doc:  "forbid goroutines and channels outside the sanctioned concurrency packages",
	run:  runRedOrder,
}

const redorderHint = "concurrency is confined to internal/par (fixed-order fan-out) " +
	"and the supervised runtime (internal/serve, internal/guard)"

func runRedOrder(p *pass) {
	if p.cfg.Par(p.pkg.Path) {
		return
	}
	info := p.pkg.Info
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.report("redorder", n.Pos(), "goroutine spawned outside the concurrency allowlist: "+redorderHint)
			case *ast.SendStmt:
				p.report("redorder", n.Pos(), "channel send outside the concurrency allowlist: "+redorderHint)
			case *ast.SelectStmt:
				p.report("redorder", n.Pos(), "select outside the concurrency allowlist: "+redorderHint)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					p.report("redorder", n.Pos(), "channel receive outside the concurrency allowlist: "+redorderHint)
				}
			case *ast.RangeStmt:
				if n.X == nil {
					return true
				}
				if t := info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						p.report("redorder", n.Pos(),
							"range over channel outside the concurrency allowlist (receive order is scheduling order): "+redorderHint)
					}
				}
			case *ast.CallExpr:
				switch builtinName(info, n) {
				case "make":
					if t := info.TypeOf(n); t != nil {
						if _, ok := t.Underlying().(*types.Chan); ok {
							p.report("redorder", n.Pos(), "channel created outside the concurrency allowlist: "+redorderHint)
						}
					}
				case "close":
					if len(n.Args) == 1 {
						if t := info.TypeOf(n.Args[0]); t != nil {
							if _, ok := t.Underlying().(*types.Chan); ok {
								p.report("redorder", n.Pos(), "channel closed outside the concurrency allowlist: "+redorderHint)
							}
						}
					}
				}
			}
			return true
		})
	}
}
