// Package lint implements fallvet, the repo's stdlib-only static
// analysis suite. It turns the three load-bearing contracts of the
// codebase — bit-identical deterministic training/eval, zero-allocation
// inference hot paths, and verified artifact I/O — into machine-checked
// rules, so the verify gate rejects a violating change before any test
// runs (DESIGN.md §9).
//
// Eight analyzers ship by default:
//
//	determinism  no wall-clock reads, no global math/rand, no map
//	             iteration in the deterministic packages
//	hotpath      no allocating or boxing constructs in functions
//	             marked //fallvet:hotpath (direct body check)
//	hottrans     whole-program proof that every //fallvet:hotpath
//	             function is alloc-free through its entire reachable
//	             call chain (DESIGN.md §13)
//	checkedio    error returns from Close/Sync/Flush/Write/Rename
//	             must not be discarded
//	redorder     goroutines and channels only inside the sanctioned
//	             concurrency packages (internal/par, internal/serve,
//	             internal/guard), repo-wide
//	snapshot     every field of a type with snapshot/restore methods
//	             is serialized or marked //fallvet:derived
//	exhaustive   switches over repo enum constant sets name every
//	             declared constant
//	floatdet     no raw ==/!= on floats and no float accumulation
//	             under map iteration in the deterministic packages
//
// The package uses only go/parser, go/ast and go/types with the
// standard source importer — the module stays dependency-free.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Version identifies the rule set. Bump it whenever an analyzer is
// added, removed, or its definition of a violation changes, so results
// files stamped with Stamp() state which invariant set produced them.
// v2: redorder went repo-wide (previously deterministic packages only)
// with internal/serve and internal/guard joining internal/par on the
// concurrency allowlist; the whole-program call graph added hottrans,
// snapshot, exhaustive and floatdet on the same version (the rule count
// in Stamp distinguishes the two states).
const Version = "2"

// Stamp is the short fingerprint recorded in results headers (see
// cmd/fallbench): linter version plus the number of active rules.
func Stamp() string {
	return fmt.Sprintf("v%s/%d-rules", Version, len(analyzers))
}

// Diagnostic is one finding at one source position. File is the path
// as the loader saw it (absolute for repo runs); callers relativize
// for display.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named rule over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	run  func(p *pass)
}

// analyzers is the active rule set, in report order. The "directive"
// pseudo-analyzer (malformed //fallvet: comments) is not listed here:
// it is always on and cannot be suppressed.
var analyzers = []*Analyzer{
	determinismAnalyzer,
	hotpathAnalyzer,
	hotTransAnalyzer,
	checkedIOAnalyzer,
	redOrderAnalyzer,
	snapshotAnalyzer,
	exhaustiveAnalyzer,
	floatDetAnalyzer,
}

// Analyzers returns the active rule set for documentation and tests.
func Analyzers() []*Analyzer {
	out := make([]*Analyzer, len(analyzers))
	copy(out, analyzers)
	return out
}

func knownRule(name string) bool {
	for _, a := range analyzers {
		if a.Name == name {
			return true
		}
	}
	return false
}

// Config scopes the package-sensitive analyzers. Both predicates take
// an import path (e.g. "repro/internal/nn").
type Config struct {
	// Deterministic reports whether the package carries the
	// bit-identical-results contract (the determinism analyzer applies).
	Deterministic func(importPath string) bool
	// Par reports whether the package is a sanctioned concurrency
	// layer, exempt from the repo-wide redorder confinement.
	Par func(importPath string) bool
}

// deterministicSuffixes are the packages named by the determinism
// contract (DESIGN.md §8): everything whose outputs must be
// bit-identical across runs and worker counts.
var deterministicSuffixes = []string{
	"internal/nn",
	"internal/eval",
	"internal/quant",
	"internal/par",
	"internal/tensor",
	"internal/artifact",
	"internal/cascade",
}

// parSuffixes are the sanctioned concurrency packages: the fixed-order
// fan-out pool, the supervised serving runtime, and the panic-isolation
// layer it restarts sessions through. Everywhere else, redorder forbids
// goroutines and channels outright — in deterministic packages they
// would reintroduce scheduling order into float accumulation, and in
// the rest of the repo they would run unsupervised (no panic isolation,
// no restart, invisible to the leak check).
var parSuffixes = []string{
	"internal/par",
	"internal/serve",
	"internal/guard",
}

// DefaultConfig is the repo's scoping: the seven deterministic packages
// for the determinism analyzer, and the three sanctioned concurrency
// packages for redorder. Both suffix lists are deduplicated first so a
// package accidentally listed twice cannot double-count in either
// allowlist check.
func DefaultConfig() Config {
	det := dedupeSuffixes(deterministicSuffixes)
	par := dedupeSuffixes(parSuffixes)
	return Config{
		Deterministic: func(path string) bool {
			for _, s := range det {
				if path == s || hasPathSuffix(path, s) {
					return true
				}
			}
			return false
		},
		Par: func(path string) bool {
			for _, s := range par {
				if path == s || hasPathSuffix(path, s) {
					return true
				}
			}
			return false
		},
	}
}

// dedupeSuffixes returns the list with duplicates removed, preserving
// first-occurrence order.
func dedupeSuffixes(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := make([]string, 0, len(in))
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// hasPathSuffix reports whether path ends in "/"+suffix on an import
// path boundary ("repro/internal/nn" matches "internal/nn";
// "repro/internal/nnx" does not).
func hasPathSuffix(path, suffix string) bool {
	n := len(path) - len(suffix)
	return n > 0 && path[n-1] == '/' && path[n:] == suffix
}

// pass is the per-package state handed to each analyzer. prog is the
// whole-program index shared by every pass of one run — the transitive
// analyzers (hottrans, snapshot) look across package boundaries
// through it.
type pass struct {
	pkg    *Package
	cfg    Config
	dirs   *directives
	prog   *program
	diags  []Diagnostic
	report func(analyzer string, pos token.Pos, format string, args ...any)
}

// Run applies every analyzer to every package and returns the
// surviving diagnostics, sorted by position. Diagnostics on lines
// covered by a //fallvet:ignore directive for their rule are dropped.
func Run(pkgs []*Package, cfg Config) []Diagnostic {
	passes, _ := buildPasses(pkgs, cfg)
	var all []Diagnostic
	for _, p := range passes {
		for _, a := range analyzers {
			a.run(p)
		}
		all = append(all, p.finish()...)
	}
	sortDiagnostics(all)
	return all
}

// buildPasses runs the shared front half of an analysis: directive
// collection for every package, then the whole-program index with its
// allocation-effect fixed point. The audit tests call it directly to
// cross-check the transitive proof against the runtime alloc gates.
func buildPasses(pkgs []*Package, cfg Config) ([]*pass, *program) {
	if cfg.Deterministic == nil || cfg.Par == nil {
		def := DefaultConfig()
		if cfg.Deterministic == nil {
			cfg.Deterministic = def.Deterministic
		}
		if cfg.Par == nil {
			cfg.Par = def.Par
		}
	}
	passes := make([]*pass, 0, len(pkgs))
	for _, pkg := range pkgs {
		p := &pass{pkg: pkg, cfg: cfg}
		p.report = func(analyzer string, pos token.Pos, format string, args ...any) {
			ps := p.pkg.Fset.Position(pos)
			p.diags = append(p.diags, Diagnostic{
				File:     ps.Filename,
				Line:     ps.Line,
				Col:      ps.Column,
				Analyzer: analyzer,
				Message:  fmt.Sprintf(format, args...),
			})
		}
		p.dirs = collectDirectives(p)
		passes = append(passes, p)
	}
	prog := buildProgram(passes)
	for _, p := range passes {
		p.prog = prog
	}
	return passes, prog
}

// finish applies //fallvet:ignore suppression to the pass's collected
// diagnostics. Directive diagnostics themselves are never
// suppressible.
func (p *pass) finish() []Diagnostic {
	kept := p.diags[:0]
	for _, d := range p.diags {
		if d.Analyzer != "directive" && p.dirs.ignored(d.File, d.Line, d.Analyzer) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// ---- shared AST/type helpers ----

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeFunc resolves the called function or method, or nil for
// builtins, conversions, and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := unparen(call.Fun)
	// Explicit instantiation f[T](...) / m[T1, T2](...): the callee
	// identity is under the index expression.
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = unparen(idx.X)
	case *ast.IndexListExpr:
		fun = unparen(idx.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			// A method used through an instantiated receiver (or an
			// inferred generic call) resolves to the instantiation;
			// Origin maps it back to the declaration the program index
			// is keyed by. Identity for non-generic functions.
			return fn.Origin()
		}
	}
	return nil
}

// builtinName returns the name of the builtin being called ("make",
// "append", "Sizeof", ...) or "". Qualified builtins — the unsafe
// pseudo-package's Sizeof/Alignof/Offsetof, which evaluate to
// compile-time constants — resolve through the selector.
func builtinName(info *types.Info, call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			return b.Name()
		}
	case *ast.SelectorExpr:
		if b, ok := info.Uses[fun.Sel].(*types.Builtin); ok {
			return b.Name()
		}
	}
	return ""
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	// A type parameter's underlying type is its constraint interface,
	// but values of the parameter are concrete at every instantiation:
	// converting or assigning to one never boxes.
	if _, ok := t.(*types.TypeParam); ok {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

var errorType = types.Universe.Lookup("error").Type()

// funcDisplayName renders "Recv.Name" for methods, "Name" otherwise.
func funcDisplayName(fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return name
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	// A generic receiver (*DetectorOf[S], ring[K, V]) names the type
	// under the index expression.
	switch idx := t.(type) {
	case *ast.IndexExpr:
		t = idx.X
	case *ast.IndexListExpr:
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + name
	}
	return name
}
