package lint

import (
	"go/ast"
	"go/types"
)

// determinismAnalyzer enforces the bit-identical-results contract in
// the deterministic packages (DESIGN.md §8): no wall-clock reads, no
// draws from the process-global math/rand source, and no iteration
// over maps — Go randomizes map order per run, so a ranged map that
// feeds a float accumulation, a log line, or any result breaks
// reproducibility silently.
var determinismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid time.Now, global math/rand, and map iteration in deterministic packages",
	run:  runDeterminism,
}

// forbiddenClock lists time package functions that read the wall or
// monotonic clock.
var forbiddenClock = map[string]bool{"Now": true, "Since": true, "Until": true}

// allowedRand lists math/rand package-level constructors that only
// build seeded generators without drawing from the global source.
var allowedRand = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDeterminism(p *pass) {
	if !p.cfg.Deterministic(p.pkg.Path) {
		return
	}
	info := p.pkg.Info
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(info, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				sig, _ := fn.Type().(*types.Signature)
				pkgLevel := sig != nil && sig.Recv() == nil
				switch {
				case fn.Pkg().Path() == "time" && pkgLevel && forbiddenClock[fn.Name()]:
					p.report("determinism", n.Pos(),
						"call to time.%s: wall-clock reads are forbidden in deterministic packages; inject timestamps from the caller", fn.Name())
				case fn.Pkg().Path() == "math/rand" && pkgLevel && !allowedRand[fn.Name()]:
					p.report("determinism", n.Pos(),
						"call to global math/rand.%s: draw from a seeded *rand.Rand (rand.New(rand.NewSource(seed))) instead", fn.Name())
				}
			case *ast.RangeStmt:
				if n.X == nil {
					return true
				}
				if t := info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						p.report("determinism", n.Pos(),
							"range over map (%s): iteration order is randomized per run; collect and sort the keys, then index", t.String())
					}
				}
			}
			return true
		})
	}
}
