package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// SchemaVersion is the version stamp carried by every JSON document
// fallvet emits (reports and baselines). Consumers must reject
// documents with a different schema rather than guess at field
// meanings; bump it whenever a field changes shape.
const SchemaVersion = 2

// Report is the -json output document: the full diagnostic list plus
// enough metadata to interpret it without the producing binary.
type Report struct {
	Schema      int          `json:"schema"`
	Fallvet     string       `json:"fallvet"` // Stamp() of the producing binary
	Packages    int          `json:"packages"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// NewReport wraps a lint run's results in the versioned envelope.
func NewReport(diags []Diagnostic, packages int) *Report {
	if diags == nil {
		diags = []Diagnostic{}
	}
	return &Report{
		Schema:      SchemaVersion,
		Fallvet:     Stamp(),
		Packages:    packages,
		Diagnostics: diags,
	}
}

// Encode renders the report as indented JSON with a trailing newline,
// the exact bytes cmd/fallvet -json writes to stdout.
func (r *Report) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// BaselineEntry is one accepted finding class: Count identical
// (file, analyzer, message) diagnostics are tolerated. Line and column
// are deliberately absent — unrelated edits move findings around a
// file, and a baseline that churns on every edit gets deleted, not
// maintained.
type BaselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// Baseline is the committed debt ledger for -diff runs: findings
// listed here are pre-existing and do not fail the build; anything
// else does.
type Baseline struct {
	Schema   int             `json:"schema"`
	Fallvet  string          `json:"fallvet"`
	Findings []BaselineEntry `json:"findings"`
}

// baselineKey collapses a diagnostic to its baseline identity.
type baselineKey struct {
	file, analyzer, message string
}

// NewBaseline aggregates a diagnostic list into a baseline, merging
// identical findings into counted entries sorted by file, analyzer,
// message.
func NewBaseline(diags []Diagnostic) *Baseline {
	counts := map[baselineKey]int{}
	for _, d := range diags {
		counts[baselineKey{d.File, d.Analyzer, d.Message}]++
	}
	findings := make([]BaselineEntry, 0, len(counts))
	for k, n := range counts {
		findings = append(findings, BaselineEntry{File: k.file, Analyzer: k.analyzer, Message: k.message, Count: n})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return &Baseline{Schema: SchemaVersion, Fallvet: Stamp(), Findings: findings}
}

// Encode renders the baseline as indented JSON with a trailing
// newline, ready to commit.
func (b *Baseline) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// LoadBaseline reads and validates a committed baseline file. A schema
// mismatch is an error, not a guess: regenerate the file with the
// current binary instead of reinterpreting old fields.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if b.Schema != SchemaVersion {
		return nil, fmt.Errorf("baseline %s has schema %d, this binary reads %d: regenerate it with -baseline %s -write",
			path, b.Schema, SchemaVersion, path)
	}
	return &b, nil
}

// Diff splits a run's diagnostics against a baseline: diagnostics
// beyond an entry's tolerated count are new (in source order), and
// baseline entries the run no longer produces are stale (in baseline
// order, with the unused residual count). A clean -diff run is one
// with no new findings; stale entries are advisory — refresh the file
// with -write when they accumulate.
func (b *Baseline) Diff(diags []Diagnostic) (fresh []Diagnostic, stale []BaselineEntry) {
	budget := map[baselineKey]int{}
	for _, e := range b.Findings {
		budget[baselineKey{e.File, e.Analyzer, e.Message}] += e.Count
	}
	for _, d := range diags {
		k := baselineKey{d.File, d.Analyzer, d.Message}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	for _, e := range b.Findings {
		k := baselineKey{e.File, e.Analyzer, e.Message}
		if budget[k] > 0 {
			stale = append(stale, BaselineEntry{File: e.File, Analyzer: e.Analyzer, Message: e.Message, Count: budget[k]})
			budget[k] = 0
		}
	}
	return fresh, stale
}
