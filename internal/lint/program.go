package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"
)

// Whole-program view (DESIGN.md §13). fallvet v1 judged one function
// body at a time; the v2 analyzers (hottrans, snapshot) need to see
// across call boundaries: a hot path is only alloc-free if everything
// it can reach is, and a snapshot is only complete if every method its
// writers delegate to is accounted for. buildProgram indexes every
// function declared in the analyzed packages into a call graph:
//
//   - direct calls and concrete-receiver method calls are resolved by
//     the callee's package-qualified name, which is stable even though
//     the source importer materialises a separate *types.Package for a
//     package that is both analyzed and imported;
//   - interface method calls are devirtualised conservatively over the
//     class hierarchy: every analyzed method with the same name and
//     arity is a possible callee (sound over-approximation — external
//     implementations and name coincidences are the documented limits);
//   - calls through function values, calls into packages outside the
//     analyzed set (except the no-alloc stdlib allowlist), and
//     interface calls with no analyzed implementation stay unresolved
//     and surface as conservative diagnostics when a hot path can
//     reach them.
//
// On top of the graph, a may-allocate effect is computed bottom-up to
// a fixed point: a function is dirty when its own body contains an
// allocating construct, when it contains an unresolved call, or when
// any non-cold callee is dirty. //fallvet:cold prunes a callee out of
// the effect entirely (justified panic guards and warm-up paths);
// //fallvet:ignore hottrans on a line prunes that line's constructs
// and call edges (justified devirtualisation over-approximations).

// extNoAlloc lists packages outside the analyzed set whose functions
// are trusted never to allocate. Deliberately tiny: pure arithmetic
// only.
var extNoAlloc = map[string]bool{
	"math":      true,
	"math/bits": true,
}

// witness is one concrete reason a function is not provably
// alloc-free. Positions are rendered base-name-relative so messages
// stay machine-independent (they key baseline diffs).
type witness struct {
	pos  token.Position
	what string
}

func (w *witness) String() string {
	return fmt.Sprintf("%s (%s:%d)", w.what, path.Base(filepath2slash(w.pos.Filename)), w.pos.Line)
}

func filepath2slash(p string) string { return strings.ReplaceAll(p, "\\", "/") }

// callSite is one call in a function body, in source order.
type callSite struct {
	pos     token.Pos
	targets []*funcInfo // resolved analyzed callees (several under CHA)
	// unresolved, when non-empty, says why the call cannot be proven
	// alloc-free (function value, external package, no implementation).
	unresolved string
}

// funcInfo is one analyzed function or method in the program index.
type funcInfo struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package

	hot  bool // //fallvet:hotpath
	cold bool // //fallvet:cold

	sites []callSite
	alloc *witness // first allocating construct in the body, or nil
	dirty bool     // not provably alloc-free, own body or reachable
}

// name is the short display form used in messages: "nn.Network.Predict".
func (fi *funcInfo) name() string {
	return path.Base(fi.pkg.Path) + "." + funcDisplayName(fi.decl)
}

// key is the program-wide identity used by the audit tests:
// "repro/internal/nn.Network.Predict".
func (fi *funcInfo) key() string {
	return fi.pkg.Path + "." + funcDisplayName(fi.decl)
}

// program is the whole-program index shared by every pass of one run.
type program struct {
	paths   map[string]bool      // import paths of the analyzed packages
	funcs   map[string]*funcInfo // by types.Func.FullName()
	byName  map[string][]*funcInfo
	byDecl  map[*ast.FuncDecl]*funcInfo
	ordered []*funcInfo // deterministic build order
}

// buildProgram indexes the passes' functions, scans every body for
// allocation effects and call edges, and propagates dirtiness to a
// fixed point. Directives must already be collected on every pass.
func buildProgram(passes []*pass) *program {
	prog := &program{
		paths:  map[string]bool{},
		funcs:  map[string]*funcInfo{},
		byName: map[string][]*funcInfo{},
		byDecl: map[*ast.FuncDecl]*funcInfo{},
	}
	for _, p := range passes {
		prog.paths[p.pkg.Path] = true
	}
	for _, p := range passes {
		hot := map[*ast.FuncDecl]bool{}
		for _, fd := range p.dirs.hotpath {
			hot[fd] = true
		}
		for _, f := range p.pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &funcInfo{fn: fn, decl: fd, pkg: p.pkg, hot: hot[fd]}
				if _, cold := p.dirs.cold[fd]; cold {
					fi.cold = true
				}
				prog.funcs[fn.FullName()] = fi
				prog.byDecl[fd] = fi
				if fd.Recv != nil {
					prog.byName[fd.Name.Name] = append(prog.byName[fd.Name.Name], fi)
				}
				prog.ordered = append(prog.ordered, fi)
			}
		}
	}
	for _, p := range passes {
		for _, f := range p.pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					if fi := prog.byDecl[fd]; fi != nil {
						scanEffects(p, prog, fi)
					}
				}
			}
		}
	}
	prog.propagate()
	return prog
}

// propagate computes the may-allocate fixed point over the call graph.
func (prog *program) propagate() {
	rev := map[*funcInfo][]*funcInfo{}
	var queue []*funcInfo
	for _, fi := range prog.ordered {
		base := fi.alloc != nil
		for i := range fi.sites {
			if fi.sites[i].unresolved != "" {
				base = true
			}
			for _, t := range fi.sites[i].targets {
				if !t.cold {
					rev[t] = append(rev[t], fi)
				}
			}
		}
		if base {
			fi.dirty = true
			queue = append(queue, fi)
		}
	}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		for _, caller := range rev[t] {
			if !caller.dirty {
				caller.dirty = true
				queue = append(queue, caller)
			}
		}
	}
}

// chain renders the path from a dirty callee down to its concrete
// witness: "edge.clampFull → nn.badInput: fmt.Sprintf allocates
// (errors.go:12)". Deterministic: sites are scanned in body order.
func chain(t *funcInfo) string {
	var names []string
	seen := map[*funcInfo]bool{}
	cur := t
	for {
		if seen[cur] {
			return strings.Join(names, " → ") + ": recursive cycle"
		}
		seen[cur] = true
		names = append(names, cur.name())
		if cur.alloc != nil {
			return fmt.Sprintf("%s: %s", strings.Join(names, " → "), cur.alloc)
		}
		var next *funcInfo
		for i := range cur.sites {
			s := &cur.sites[i]
			if s.unresolved != "" {
				pos := cur.pkg.Fset.Position(s.pos)
				w := witness{pos: pos, what: s.unresolved}
				return fmt.Sprintf("%s: %s", strings.Join(names, " → "), &w)
			}
			for _, tt := range s.targets {
				if !tt.cold && tt.dirty {
					next = tt
					break
				}
			}
			if next != nil {
				break
			}
		}
		if next == nil {
			return strings.Join(names, " → ") + ": not provably alloc-free"
		}
		cur = next
	}
}

// scanEffects fills fi.alloc and fi.sites from the function body. A
// line suppressed with //fallvet:ignore hottrans (or a warm-up line
// already justified with //fallvet:ignore hotpath) contributes neither
// constructs nor call edges — the justification cuts the edge, so the
// exemption does not re-surface at every transitive caller.
func scanEffects(p *pass, prog *program, fi *funcInfo) {
	info := p.pkg.Info
	exempt := func(pos token.Pos) bool {
		ps := p.pkg.Fset.Position(pos)
		return p.dirs.ignored(ps.Filename, ps.Line, "hottrans") ||
			p.dirs.ignored(ps.Filename, ps.Line, "hotpath")
	}
	setAlloc := func(pos token.Pos, what string) {
		if fi.alloc == nil && !exempt(pos) {
			ps := p.pkg.Fset.Position(pos)
			fi.alloc = &witness{pos: ps, what: what}
		}
	}
	var sig *types.Signature
	if s, ok := fi.fn.Type().(*types.Signature); ok {
		sig = s
	}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			setAlloc(n.Pos(), "closure literal allocates")
			return false
		case *ast.GoStmt:
			setAlloc(n.Pos(), "goroutine spawn allocates")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := unparen(n.X).(*ast.CompositeLit); ok {
					setAlloc(n.Pos(), "&"+typeLabel(info, cl)+" composite literal escapes")
				}
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					setAlloc(n.Pos(), typeLabel(info, n)+" composite literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isRuntimeString(info, n) {
				setAlloc(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				setAlloc(n.Pos(), "string += allocates")
			}
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if boxes(info, info.TypeOf(n.Lhs[i]), n.Rhs[i]) {
						setAlloc(n.Rhs[i].Pos(), "assignment boxes into interface")
					}
				}
			}
		case *ast.ReturnStmt:
			if sig != nil && len(n.Results) == sig.Results().Len() {
				for i, res := range n.Results {
					if boxes(info, sig.Results().At(i).Type(), res) {
						setAlloc(res.Pos(), "return boxes into interface")
					}
				}
			}
		case *ast.CallExpr:
			if builtinName(p.pkg.Info, n) == "panic" {
				// panic is terminal: everything evaluated to build its
				// argument (Sprintf'd messages, boxing) runs only on
				// the failing branch, off the steady state.
				return false
			}
			scanCall(p, prog, fi, n, setAlloc, exempt)
		}
		return true
	})
}

// scanCall classifies one call: allocating construct, resolved edge,
// or unresolved.
func scanCall(p *pass, prog *program, fi *funcInfo, call *ast.CallExpr, setAlloc func(token.Pos, string), exempt func(token.Pos) bool) {
	info := p.pkg.Info
	switch builtinName(info, call) {
	case "append":
		setAlloc(call.Pos(), "append may grow a heap slice")
		return
	case "make":
		setAlloc(call.Pos(), "make allocates")
		return
	case "new":
		setAlloc(call.Pos(), "new allocates")
		return
	case "panic":
		return // terminal: the boxed argument is off the steady state
	case "":
	default:
		return // len, cap, copy, min, ... never allocate
	}

	// Conversion T(x): only interface boxing is an allocation here.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && boxes(info, tv.Type, call.Args[0]) {
			setAlloc(call.Pos(), "conversion boxes into interface")
		}
		return
	}

	if exempt(call.Pos()) {
		return
	}

	addSite := func(s callSite) { fi.sites = append(fi.sites, s) }

	fn := calleeFunc(info, call)
	switch {
	case fn == nil:
		addSite(callSite{pos: call.Pos(),
			unresolved: "call through a function value cannot be proven alloc-free; devirtualise it or restructure"})
	case fn.Pkg() == nil:
		// Universe-scope methods: (error).Error is the practical case.
		addSite(callSite{pos: call.Pos(),
			unresolved: fmt.Sprintf("call to (%s).%s cannot be proven alloc-free", "error", fn.Name())})
	case fn.Pkg().Path() == "fmt" && allocFmt[fn.Name()]:
		setAlloc(call.Pos(), "fmt."+fn.Name()+" allocates its result")
	default:
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil && isInterface(sig.Recv().Type()) {
			// Interface dispatch: devirtualise over every analyzed
			// method with the same name and arity.
			cands := chaCandidates(prog, fn, sig)
			if len(cands) == 0 {
				addSite(callSite{pos: call.Pos(), unresolved: fmt.Sprintf(
					"interface call %s.%s has no implementation in the analyzed packages; run on ./... or restructure",
					recvLabel(sig), fn.Name())})
			} else {
				addSite(callSite{pos: call.Pos(), targets: cands})
			}
		} else if target, ok := prog.funcs[fn.FullName()]; ok {
			addSite(callSite{pos: call.Pos(), targets: []*funcInfo{target}})
		} else if !extNoAlloc[fn.Pkg().Path()] {
			addSite(callSite{pos: call.Pos(), unresolved: fmt.Sprintf(
				"call to %s.%s is outside the analyzed packages and cannot be proven alloc-free",
				fn.Pkg().Name(), fn.Name())})
		}
	}

	// Implicit boxing at the call boundary, resolved or not.
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsValue() {
		return
	}
	csig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := csig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case csig.Variadic() && i >= params.Len()-1:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxes(info, pt, arg) {
			setAlloc(arg.Pos(), "argument boxed into interface parameter")
		}
	}
}

func recvLabel(sig *types.Signature) string {
	t := sig.Recv().Type()
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		return named.Obj().Pkg().Name() + "." + named.Obj().Name()
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// chaCandidates lists every analyzed method that could implement the
// abstract method m: same name, same parameter and result arity. The
// name+arity match is the documented devirtualisation limit — it can
// pull in a method of an unrelated type, which is conservative (more
// edges, never fewer).
func chaCandidates(prog *program, m *types.Func, msig *types.Signature) []*funcInfo {
	var out []*funcInfo
	for _, fi := range prog.byName[m.Name()] {
		fsig, ok := fi.fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		if fsig.Params().Len() == msig.Params().Len() && fsig.Results().Len() == msig.Results().Len() {
			out = append(out, fi)
		}
	}
	return out
}
