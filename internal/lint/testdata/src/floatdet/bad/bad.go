// Package bad exercises float-determinism violations in a
// deterministic package: raw equality on floats and float accumulation
// under randomized map iteration order.
package bad

func Eq(a, b float64) bool {
	return a == b // want `floatdet: raw float == in a deterministic package`
}

func Neq(a, b float32) bool {
	return a != b // want `floatdet: raw float != in a deterministic package`
}

func MixedEq(a float64, b int) bool {
	return a == float64(b) // want `floatdet: raw float == in a deterministic package`
}

func SumMap(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m { // want `determinism: range over map`
		s += v // want `floatdet: float accumulation inside map iteration`
	}
	return s
}

func ScaleMap(m map[string]float64) float64 {
	p := 1.0
	for _, v := range m { // want `determinism: range over map`
		p *= v // want `floatdet: float accumulation inside map iteration`
	}
	return p
}
