// Package genericbad exercises float-determinism violations through
// type parameters: a comparison on a width-generic scalar is a float
// comparison at every floating instantiation, and the diagnostic names
// the bit-cast idiom matching the compared width (Float32bits for the
// lowered inference width).
package genericbad

type scalar interface{ float32 | float64 }

type anyFloat interface{ ~float32 | ~float64 }

type partly interface{ float64 | int64 }

// Eq compares width-generic scalars: flagged, naming both bit casts
// because the instantiation decides the width.
func Eq[S scalar](a, b S) bool {
	return a == b // want `floatdet: raw float == in a deterministic package: compare math\.Float64bits/math\.Float32bits \(per instantiated width\) values`
}

// NeqTilde: approximation terms (~float32) are in the type set too.
func NeqTilde[S anyFloat](a, b S) bool {
	return a != b // want `floatdet: raw float != in a deterministic package: compare math\.Float64bits/math\.Float32bits`
}

// EqPartly: a set that merely admits a float is already hazardous —
// the float64 instantiation compares accumulated values raw.
func EqPartly[S partly](a, b S) bool {
	return a == b // want `floatdet: raw float == in a deterministic package: compare math\.Float64bits values`
}

// Eq32: concrete float32 operands get the Float32bits idiom.
func Eq32(a, b float32) bool {
	return a == b // want `floatdet: raw float == in a deterministic package: compare math\.Float32bits values`
}

// SumGeneric: float accumulation under randomized map order is the
// same hazard when the accumulator is a type parameter.
func SumGeneric[S scalar](m map[string]S) S {
	var s S
	for _, v := range m { // want `determinism: range over map`
		s += v // want `floatdet: float accumulation inside map iteration`
	}
	return s
}
