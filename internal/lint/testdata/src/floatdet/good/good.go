// Package good is the negative space of float determinism: bit-level
// identity, explicit tolerances, constant sentinels, order-stable
// slice reductions and integer map reductions all stay silent.
package good

import "math"

// Identity through bit patterns: the sanctioned exact comparison.
func Same(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// Tolerance comparison: ordering operators are deterministic.
func Close(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

// Comparing against a compile-time constant is the repo's sentinel
// idiom (zero probes, -1 markers) and is exact by construction.
func IsZero(a float64) bool {
	return a == 0
}

const sentinel = -1.0

func IsSentinel(a float64) bool {
	return a != sentinel
}

// Slice iteration order is fixed: the reduction is reproducible.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}

// Integer accumulation commutes exactly; only the (separately
// reported) map range itself is a determinism concern.
func Count(m map[string]int) int {
	n := 0
	for _, v := range m { // want `determinism: range over map`
		n += v
	}
	return n
}
