// Package genericgood holds generic float code the floatdet analyzer
// must stay quiet on: constant sentinel tests, ordered comparisons,
// and type sets with no floating member at all.
package genericgood

type scalar interface{ float32 | float64 }

type integer interface{ int32 | int64 }

// Sentinel compares against a compile-time constant: an
// exact-representation test, legal at every width.
func Sentinel[S scalar](a S) bool {
	return a == 0
}

// Ordered comparisons are not identity checks; the rule only guards
// ==/!=.
func Ordered[S scalar](a, b S) bool {
	return a < b
}

// IntEq: an all-integer type set is exact arithmetic — no float
// instantiation exists.
func IntEq[N integer](a, b N) bool {
	return a == b
}

// SumSlice: deterministic-order accumulation over a slice is the
// sanctioned reduction shape, generic or not.
func SumSlice[S scalar](xs []S) S {
	var s S
	for _, v := range xs {
		s += v
	}
	return s
}
