// Package suppress exercises //fallvet:ignore: linted with
// Deterministic=true, both violations below would be diagnostics, and
// both are silenced — one by a directive on the preceding line, one by
// a directive on the same line. Zero diagnostics expected.
package suppress

import "time"

// Stamp demonstrates next-line suppression.
func Stamp() int64 {
	//fallvet:ignore determinism fixture: demonstrates next-line suppression
	return time.Now().UnixNano()
}

// Sum demonstrates same-line suppression.
func Sum(m map[int]int) int {
	s := 0
	for _, v := range m { //fallvet:ignore determinism fixture: demonstrates same-line suppression
		s += v
	}
	return s
}

// Wrong demonstrates that an ignore for one rule does not silence
// another: the directive here names hotpath, so the determinism
// diagnostic survives.
func Wrong() int64 {
	//fallvet:ignore hotpath fixture: wrong rule on purpose
	return time.Now().UnixNano() // want `determinism: call to time\.Now`
}
