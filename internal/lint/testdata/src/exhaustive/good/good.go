// Package good is the negative space of enum exhaustiveness: every
// member named (singly or in multi-value cases), dynamic switches
// skipped, justified partial switches, and non-enum switches ignored.
package good

type Health int

const (
	Healthy Health = iota
	Degraded
	Faulted
	NumHealth // count sentinel: never required in a switch
)

func Describe(h Health) string {
	switch h {
	case Healthy:
		return "ok"
	case Degraded:
		return "degraded"
	case Faulted:
		return "faulted"
	}
	return "?"
}

func Worst(h Health) bool {
	switch h {
	case Degraded, Faulted:
		return true
	case Healthy:
		return false
	}
	return false
}

// Dynamic case expressions make coverage undecidable: skipped.
func Dynamic(h, other Health) bool {
	switch h {
	case other:
		return true
	}
	return false
}

// Justified partial switch.
func FastPath(h Health) bool {
	//fallvet:ignore exhaustive only the healthy fast path matters here; everything else falls through
	switch h {
	case Healthy:
		return true
	}
	return false
}

// Plain integer switches are not enum switches.
func Plain(n int) bool {
	switch n {
	case 1:
		return true
	}
	return false
}
