// Package bad exercises enum-exhaustiveness violations: switches over
// a repo enum that skip members, with and without a default clause.
package bad

// Health is a repo enum: a named integer type with a package-scope
// constant set. NumHealth is a count sentinel, not a member.
type Health int

const (
	Healthy Health = iota
	Degraded
	Faulted
	NumHealth
)

func Describe(h Health) string {
	switch h { // want `exhaustive: switch over bad.Health is missing Faulted \(a default clause does not make an enum switch exhaustive\)`
	case Healthy:
		return "ok"
	case Degraded:
		return "degraded"
	default:
		return "?"
	}
}

func TwoMissing(h Health) int {
	switch h { // want `exhaustive: switch over bad.Health is missing Degraded, Faulted`
	case Healthy:
		return 1
	}
	return 0
}
