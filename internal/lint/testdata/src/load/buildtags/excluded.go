//go:build neverbuildme

package buildtags

// Excluded references an undefined symbol: if the loader parses this
// file despite the build tag, the package fails to type-check and the
// fixture test catches it.
var Excluded = definitelyNotDefined
