// Package buildtags pins that the loader applies build constraints:
// excluded.go is tagged out of every real build and references an
// undefined symbol, so this package type-checks only if the loader
// skips it the way the go tool does.
package buildtags

// Kept is the only symbol the build should see.
const Kept = 1
