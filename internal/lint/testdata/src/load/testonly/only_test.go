// Package testonly has no non-test Go files: the loader must report
// "no package here" (nil, nil), not an error, because the linter never
// analyzes _test.go files.
package testonly

import "testing"

func TestNothing(t *testing.T) {}
