// Package typeerr parses but does not type-check: the loader must
// surface a structured *LoadError, not panic and not succeed.
package typeerr

func Broken() int {
	return notDeclaredAnywhere
}
