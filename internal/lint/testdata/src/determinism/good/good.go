// Package good is the negative determinism fixture: every construct in
// this file is the sanctioned alternative and must produce zero
// diagnostics even when the package is linted as deterministic.
package good

import (
	"math/rand"
	"time"
)

// Epoch constructs a time value — building times is fine, reading the
// clock is not.
func Epoch() time.Time { return time.Unix(0, 0) }

// Roll draws from an explicitly seeded generator: rand.New and
// rand.NewSource are allowed constructors, and Intn here is a method on
// the seeded *rand.Rand, not the global source.
func Roll(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// Tally keeps a map for membership plus a slice for order — the
// insertion-order pattern that replaces ranging the map (see
// internal/eval/event.go).
func Tally(keys []string) []string {
	seen := map[string]bool{}
	var order []string
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			order = append(order, k)
		}
	}
	return order
}

// ArraySum ranges an array of values; only map iteration is
// order-random, and telling the two apart needs go/types.
func ArraySum() float64 {
	vals := [3]float64{1, 2, 3}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s
}
