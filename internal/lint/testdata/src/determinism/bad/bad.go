// Package bad is the positive determinism fixture: every construct in
// this file must produce exactly the diagnostics named by the want
// comments when the package is linted as deterministic.
package bad

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano() // want `determinism: call to time\.Now`
}

// Elapsed measures against the monotonic clock.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `determinism: call to time\.Since`
}

// Roll draws from the process-global source.
func Roll() int {
	return rand.Intn(6) // want `determinism: call to global math/rand\.Intn`
}

// Shuffle permutes via the global source.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want `determinism: call to global math/rand\.Shuffle`
		xs[i], xs[j] = xs[j], xs[i]
	})
}

// Sum folds map values in iteration order.
func Sum(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m { // want `determinism: range over map`
		s += v // want `floatdet: float accumulation inside map iteration`
	}
	return s
}

// Keys ranges the map even though only keys are read — still random.
func Keys(m map[int]bool) []int {
	var out []int
	for k := range m { // want `determinism: range over map`
		out = append(out, k)
	}
	return out
}
