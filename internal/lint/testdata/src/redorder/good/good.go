// Package good is the negative redorder fixture: serial, index-ordered
// reduction needs no exemption even in a deterministic package.
package good

// Sum reduces in index order — bit-identical on every run.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}

// SumChunked mirrors the fixed-order reduction internal/par performs:
// chunk results land in a preallocated slot per chunk and are folded in
// chunk-index order.
func SumChunked(xs []float64, chunk int) float64 {
	if chunk < 1 {
		chunk = 1
	}
	partials := make([]float64, 0, (len(xs)+chunk-1)/chunk)
	for lo := 0; lo < len(xs); lo += chunk {
		hi := lo + chunk
		if hi > len(xs) {
			hi = len(xs)
		}
		p := 0.0
		for _, v := range xs[lo:hi] {
			p += v
		}
		partials = append(partials, p)
	}
	s := 0.0
	for _, p := range partials {
		s += p
	}
	return s
}
