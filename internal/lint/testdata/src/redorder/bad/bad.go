// Package bad is the positive redorder fixture: every concurrency
// construct the repo-wide confinement forbids. Linted with Par=false.
package bad

// Fan reduces through a channel: receive order is scheduling order.
func Fan(xs []float64) float64 {
	ch := make(chan float64) // want `redorder: channel created outside the concurrency allowlist`
	go func() {              // want `redorder: goroutine spawned outside the concurrency allowlist`
		ch <- xs[0] // want `redorder: channel send outside the concurrency allowlist`
	}()
	s := <-ch // want `redorder: channel receive outside the concurrency allowlist`
	close(ch) // want `redorder: channel closed outside the concurrency allowlist`
	return s
}

// Drain accumulates in arrival order.
func Drain(ch chan float64) float64 {
	s := 0.0
	for v := range ch { // want `redorder: range over channel outside the concurrency allowlist`
		s += v
	}
	return s
}

// Park waits on the scheduler.
func Park(done chan struct{}) {
	select { // want `redorder: select outside the concurrency allowlist`
	case <-done: // want `redorder: channel receive outside the concurrency allowlist`
	}
}
