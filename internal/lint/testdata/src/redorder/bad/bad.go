// Package bad is the positive redorder fixture: every concurrency
// construct that reintroduces scheduling order into a deterministic
// package. Linted with Deterministic=true, Par=false.
package bad

// Fan reduces through a channel: receive order is scheduling order.
func Fan(xs []float64) float64 {
	ch := make(chan float64) // want `redorder: channel created outside internal/par`
	go func() {              // want `redorder: goroutine spawned outside internal/par`
		ch <- xs[0] // want `redorder: channel send outside internal/par`
	}()
	s := <-ch // want `redorder: channel receive outside internal/par`
	close(ch) // want `redorder: channel closed outside internal/par`
	return s
}

// Drain accumulates in arrival order.
func Drain(ch chan float64) float64 {
	s := 0.0
	for v := range ch { // want `redorder: range over channel outside internal/par`
		s += v
	}
	return s
}

// Park waits on the scheduler.
func Park(done chan struct{}) {
	select { // want `redorder: select outside internal/par`
	case <-done: // want `redorder: channel receive outside internal/par`
	}
}
