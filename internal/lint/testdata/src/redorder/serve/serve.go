// Package serve is the serving-runtime redorder fixture: the exact
// concurrency shapes internal/serve is built from — a worker goroutine,
// a wake channel, a select over shutdown. Linted two ways: with the
// package allowlisted (as DefaultConfig allowlists internal/serve) it
// must be clean; outside the allowlist every construct is flagged.
package serve

// Session is a miniature of a supervised stream session.
type Session struct {
	wake chan struct{}
	done chan struct{}
}

// Start spawns the session worker.
func Start() *Session {
	s := &Session{
		wake: make(chan struct{}, 1), // want `redorder: channel created outside the concurrency allowlist`
		done: make(chan struct{}),    // want `redorder: channel created outside the concurrency allowlist`
	}
	go s.run() // want `redorder: goroutine spawned outside the concurrency allowlist`
	return s
}

func (s *Session) run() {
	for {
		select { // want `redorder: select outside the concurrency allowlist`
		case <-s.wake: // want `redorder: channel receive outside the concurrency allowlist`
		case <-s.done: // want `redorder: channel receive outside the concurrency allowlist`
			return
		}
	}
}

// Notify wakes the worker without blocking the producer.
func (s *Session) Notify() {
	select { // want `redorder: select outside the concurrency allowlist`
	case s.wake <- struct{}{}: // want `redorder: channel send outside the concurrency allowlist`
	default:
	}
}

// Close stops the worker.
func (s *Session) Close() {
	close(s.done) // want `redorder: channel closed outside the concurrency allowlist`
}
