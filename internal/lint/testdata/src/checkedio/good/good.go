// Package good is the negative checkedio fixture: the checked-close
// patterns the repo uses, plus the documented-infallible writers.
// Zero diagnostics expected.
package good

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"os"
	"strings"
)

// Save checks every error on the write path, joining write/sync errors
// with the close error so neither is lost (the checkpoint.go pattern).
func Save(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		return errors.Join(err, f.Close())
	}
	if err := f.Sync(); err != nil {
		return errors.Join(err, f.Close())
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path, path+".bak")
}

// Load uses the checked deferred close via a named return (the
// fallbench pattern for functions with many exits).
func Load(path string) (retErr error) {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); retErr == nil {
			retErr = cerr
		}
	}()
	return nil
}

// Digest writes through the exempt infallible writers: bytes.Buffer,
// strings.Builder, and hash.Hash document that err is always nil.
func Digest(b []byte) string {
	var buf bytes.Buffer
	buf.Write(b)
	h := sha256.New()
	h.Write(buf.Bytes())
	var sb strings.Builder
	sb.Write(h.Sum(nil))
	return sb.String()
}
