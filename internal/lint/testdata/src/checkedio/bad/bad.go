// Package bad is the positive checkedio fixture: every discard shape
// the analyzer must catch on the artifact write path.
package bad

import "os"

// Save discards every error between the bytes and the disk.
func Save(path string, b []byte) {
	f, _ := os.Create(path)
	f.Write(b)                   // want `checkedio: call discards the error from \(\*os\.File\)\.Write`
	_ = f.Sync()                 // want `checkedio: blank-assigned call discards the error from \(\*os\.File\)\.Sync`
	defer f.Close()              // want `checkedio: deferred call discards the error from \(\*os\.File\)\.Close`
	os.Rename(path, path+".bak") // want `checkedio: call discards the error from \(os\)\.Rename`
}

// Partial keeps the byte count but drops the error.
func Partial(f *os.File, b []byte) int {
	n, _ := f.Write(b) // want `checkedio: blank-assigned call discards the error from \(\*os\.File\)\.Write`
	return n
}

// Background loses the error on another goroutine (which the repo-wide
// redorder confinement independently forbids here).
func Background(f *os.File) {
	go f.Close() // want `checkedio: spawned call discards the error from \(\*os\.File\)\.Close` `redorder: goroutine spawned outside the concurrency allowlist`
}
