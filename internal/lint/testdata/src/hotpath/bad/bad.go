// Package bad is the positive hotpath fixture: every annotated
// function violates the steady-state-zero-allocation contract in one
// specific way.
package bad

import "fmt"

var sink any

// Grow appends into a possibly-growing slice.
//
//fallvet:hotpath
func Grow(xs []float64) []float64 {
	return append(xs, 1) // want `hotpath: Grow: append may grow a heap slice`
}

// Scratch allocates per call.
//
//fallvet:hotpath
func Scratch(n int) []float64 {
	return make([]float64, n) // want `hotpath: Scratch: make allocates`
}

// Format builds a string per call.
//
//fallvet:hotpath
func Format(n int) string {
	return fmt.Sprintf("%d", n) // want `hotpath: Format: fmt\.Sprintf allocates its result`
}

// Concat concatenates runtime strings.
//
//fallvet:hotpath
func Concat(a, b string) string {
	return a + b // want `hotpath: Concat: string concatenation allocates`
}

// Accumulate grows a string in place.
//
//fallvet:hotpath
func Accumulate(parts []string) string {
	s := ""
	for _, p := range parts {
		s += p // want `hotpath: Accumulate: string \+= allocates`
	}
	return s
}

// Closure captures n in a heap-allocated func value.
//
//fallvet:hotpath
func Closure(n int) int {
	f := func() int { return n } // want `hotpath: Closure: closure literal`
	return f() // want `hottrans: in hot path bad.Closure: call through a function value`
}

// Box stores a concrete int into an interface variable.
//
//fallvet:hotpath
func Box(v int) {
	sink = v // want `hotpath: Box: assignment boxes int into interface`
}

type point struct{ x, y int }

// Escape returns the address of a composite literal.
//
//fallvet:hotpath
func Escape(x, y int) *point {
	return &point{x, y} // want `hotpath: Escape: escaping composite literal`
}

// SliceLit allocates a backing array per call.
//
//fallvet:hotpath
func SliceLit(n int) int {
	xs := []int{n, n} // want `hotpath: SliceLit: .* composite literal allocates its backing store`
	return xs[0]
}

func take(v any) { sink = v }

// BoxParam passes a concrete value to an interface parameter.
//
//fallvet:hotpath
func BoxParam(n int) {
	take(n) // want `hotpath: BoxParam: argument int boxed into interface parameter`
}

// BoxReturn returns a concrete value as an interface.
//
//fallvet:hotpath
func BoxReturn(n int) any {
	return n // want `hotpath: BoxReturn: return boxes int into interface`
}

// BoxConvert converts explicitly to an interface type.
//
//fallvet:hotpath
func BoxConvert(n int) {
	sink = any(n) // want `hotpath: BoxConvert: conversion boxes int into interface`
}
