// Package good is the negative hotpath fixture: the idioms the repo
// actually uses to keep annotated functions allocation-free. Zero
// diagnostics expected.
package good

import "fmt"

// Scale multiplies into caller-preallocated dst — the canonical hot
// kernel shape.
//
//fallvet:hotpath
func Scale(dst, src []float64, k float64) {
	if len(dst) != len(src) {
		badLen(len(dst), len(src))
	}
	for i, v := range src {
		dst[i] = v * k
	}
}

// badLen is the cold guard: the format allocation happens in an
// unannotated helper on the way to a panic, never on the steady state.
// The hotpath check is deliberately direct, not transitive, so calling
// this from Scale is legal.
func badLen(d, s int) {
	panic(fmt.Sprintf("length mismatch: %d vs %d", d, s))
}

type vec struct{ x, y float64 }

// Mid builds a struct value: stack traffic, not a heap allocation.
//
//fallvet:hotpath
func Mid(a, b vec) vec {
	return vec{x: (a.x + b.x) / 2, y: (a.y + b.y) / 2}
}

// Tag concatenates constants, which the compiler folds.
//
//fallvet:hotpath
func Tag() string {
	return "fall" + "vet"
}

// Warm grows its scratch only on the cold first call, justified per
// line; the alloc tests prove the steady state dynamically.
//
//fallvet:hotpath
func Warm(scratch []float64, n int) []float64 {
	if cap(scratch) < n {
		//fallvet:ignore hotpath warm-up growth; steady state reuses scratch
		scratch = make([]float64, n)
	}
	return scratch[:n]
}

// Unmarked carries no directive: it may allocate freely.
func Unmarked(n int) []int {
	return make([]int, n)
}
