// Package directives is the malformed-directive fixture. The expected
// "directive" diagnostics are asserted explicitly in lint_test.go
// (not via want comments, since several malformed forms cannot carry a
// trailing comment without changing their meaning).
package directives

//fallvet:hotpath
var notAFunc = 1

//fallvet:frobnicate
func unknownVerb() { _ = unknownVerb }

// fallvet:ignore determinism spaced directives never bind
func spaced() { _ = spaced }

//fallvet:ignore determinism
func missingReason() { _ = missingReason }

//fallvet:ignore nosuchrule the rule name does not exist
func unknownRule() { _ = unknownRule }

//fallvet:hotpath
func bodyless()

func use() {
	_ = notAFunc
	_ = spaced
	bodyless()
}
