// Package directives is the malformed-directive fixture. The expected
// "directive" diagnostics are asserted explicitly in lint_test.go
// (not via want comments, since several malformed forms cannot carry a
// trailing comment without changing their meaning), including their
// exact file:line:col — a malformed directive must be reported where
// the directive sits, not at its enclosing declaration.
package directives

//fallvet:hotpath
var notAFunc = 1

//fallvet:frobnicate
func unknownVerb() { _ = unknownVerb }

// fallvet:ignore determinism spaced directives never bind
func spaced() { _ = spaced }

//fallvet:ignore determinism
func missingReason() { _ = missingReason }

//fallvet:ignore nosuchrule the rule name does not exist
func unknownRule() { _ = unknownRule }

//fallvet:hotpath
func bodyless()

//fallvet:cold
func coldNoReason() { _ = coldNoReason }

//fallvet:cold guards a panic path
var coldOnVar = 2

//fallvet:derived rebuilt on restore
func derivedOnFunc() { _ = derivedOnFunc }

type snapshotted struct {
	//fallvet:derived
	rebuilt int
	ok      int
}

// conflicted carries both markers.
//
//fallvet:hotpath
//fallvet:cold but also cold
func conflicted() { _ = conflicted }

func use() {
	_ = notAFunc
	_ = coldOnVar
	_ = snapshotted{}.rebuilt
	_ = snapshotted{}.ok
	spaced()
	bodyless()
}
