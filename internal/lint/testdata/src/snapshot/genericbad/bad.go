// Package genericbad exercises snapshot-completeness over a generic
// pair type: the writer and reader methods each see their own receiver
// instantiation, and the analyzer must fold them onto the one declared
// type — otherwise the pair is never detected and the forgotten field
// passes silently.
package genericbad

type scalar interface{ float32 | float64 }

// Box[S] has an AppendState/ReadState pair, so every field must be
// serialized or justified — at the declaration, not per width.
type Box[S scalar] struct {
	a   int
	ema S // want `snapshot: field Box.ema is not serialized by genericbad.Box's snapshot writer AppendState`
	r   ring[S]
}

// ring is reached through Box.r and held to the same standard.
type ring[S scalar] struct {
	buf []S
	pos int // want `snapshot: field ring.pos is not serialized by genericbad.Box's snapshot writer AppendState`
}

func (b *Box[S]) AppendState(dst []byte) []byte {
	dst = append(dst, byte(b.a))
	for _, v := range b.r.buf {
		dst = append(dst, byte(int(v)))
	}
	return dst
}

func (b *Box[S]) ReadState(src []byte) {
	b.a = int(src[0])
}
