// Package genericgood is a complete generic snapshot pair: every field
// of the pair type and of the generic helper ring reached through it
// is either serialized by the writer's transitive closure or justified
// //fallvet:derived. The analyzer must report nothing.
package genericgood

type scalar interface{ float32 | float64 }

type Box[S scalar] struct {
	a int
	r ring[S]
	//fallvet:derived rebuilt from r on restore
	cache S
}

type ring[S scalar] struct {
	buf []S
	pos int
}

func (b *Box[S]) AppendState(dst []byte) []byte {
	dst = append(dst, byte(b.a))
	return b.r.appendTo(dst)
}

// appendTo is the generic helper the writer closure must follow — its
// field touches count as coverage for ring's fields.
func (r *ring[S]) appendTo(dst []byte) []byte {
	dst = append(dst, byte(r.pos))
	for _, v := range r.buf {
		dst = append(dst, byte(int(v)))
	}
	return dst
}

func (b *Box[S]) ReadState(src []byte) {
	b.a = int(src[0])
	b.r.pos = int(src[1])
	var zero S
	b.cache = zero
}
