// Package bad exercises snapshot-completeness violations: a forgotten
// field on the pair type, a forgotten field on a struct reached
// through it, a redundant //fallvet:derived on a field the writer does
// serialize, and a stale //fallvet:derived on a struct nothing checks.
package bad

// Box has an AppendState/ReadState pair, so every field must be
// serialized or justified.
type Box struct {
	a int
	b float64 // want `snapshot: field Box.b is not serialized by bad.Box's snapshot writer AppendState`
	//fallvet:derived but the writer still touches it
	d int // want `snapshot: redundant //fallvet:derived on Box.d`
	r ring
}

// ring is reached through Box.r, so it is held to the same standard.
type ring struct {
	buf []byte
	pos int // want `snapshot: field ring.pos is not serialized by bad.Box's snapshot writer AppendState`
}

func (b *Box) AppendState(dst []byte) []byte {
	dst = append(dst, byte(b.a), byte(b.d))
	dst = append(dst, b.r.buf...)
	return dst
}

func (b *Box) ReadState(src []byte) {
	b.a = int(src[0])
}

// unrelated is not part of any snapshot pair, so its justification is
// dead weight.
type unrelated struct {
	//fallvet:derived nothing checks this struct
	x int // want `snapshot: stale //fallvet:derived`
}
