// Package good is the negative space of snapshot-completeness:
// fields serialized through a helper the writer calls, a derived field
// pruning the recursion into its scratch struct, and unserializable
// fields (mutexes, channels, funcs) skipped without ceremony.
package good

import "sync"

type Box struct {
	a int
	e int
	//fallvet:derived scratch ring, rebuilt lazily on first use
	scratch ring
	mu      sync.Mutex
	wake    chan struct{}
	log     func(string)
}

// ring would fail the check (pos is never serialized) — but it is only
// reachable through the derived scratch field, so it is never walked.
type ring struct {
	buf []byte
	pos int
}

func (b *Box) AppendState(dst []byte) []byte {
	return b.appendTail(append(dst, byte(b.a)))
}

// appendTail is part of the writer's same-package call closure, so the
// fields it references count as serialized.
func (b *Box) appendTail(dst []byte) []byte {
	return append(dst, byte(b.e))
}

func (b *Box) ReadState(src []byte) {
	b.a = int(src[0])
	b.e = int(src[1])
}
