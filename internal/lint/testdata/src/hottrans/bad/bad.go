// Package bad exercises the transitive hot-path proof: every function
// here passes the v1 hotpath analyzer (no allocating construct sits in
// a hot body directly) and still breaks the zero-alloc promise one or
// more calls down.
package bad

import "strings"

//fallvet:hotpath
func Hot(xs []float64) float64 {
	return helper(xs) // want `hottrans: in hot path bad.Hot: call to bad.helper is not provably alloc-free`
}

// helper looks innocent but allocates two levels down.
func helper(xs []float64) float64 {
	return deep(xs)
}

func deep(xs []float64) float64 {
	c := make([]float64, len(xs))
	copy(c, xs)
	return c[0]
}

type scorer interface {
	score(x float64) float64
}

//fallvet:hotpath
func HotIface(s scorer, x float64) float64 {
	return s.score(x) // want `hottrans: in hot path bad.HotIface: interface call bad.scorer.score has no implementation in the analyzed packages`
}

//fallvet:hotpath
func HotExternal(s string, n int) string {
	return strings.Repeat(s, n) // want `hottrans: in hot path bad.HotExternal: call to strings.Repeat is outside the analyzed packages`
}
