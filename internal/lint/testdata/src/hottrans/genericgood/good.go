// Package genericgood holds generic hot-path code the transitive proof
// must accept: conversions to a type parameter (concrete at every
// instantiation, never boxing), unsafe.Sizeof width dispatch (a
// compile-time constant), and clean generic call chains through
// methods on generic receivers — at inferred and explicit
// instantiations.
package genericgood

import "unsafe"

type scalar interface{ float32 | float64 }

//fallvet:hotpath
func Hot[S scalar](xs []S, bias float64) float64 {
	return float64(scale(xs, S(bias)))
}

// scale converts through the type parameter in both directions; with
// the constraint's interface underlying, a naive boxing check would
// misread S(...) as an interface conversion.
func scale[S scalar](xs []S, b S) S {
	var s S
	for _, v := range xs {
		s += v * b
	}
	return s
}

// is64 is the width-dispatch idiom: unsafe.Sizeof folds to a
// per-instantiation constant, so branching on it is free.
func is64[S scalar]() bool {
	var z S
	return unsafe.Sizeof(z) == 8
}

//fallvet:hotpath
func HotWidth[S scalar](x S) float64 {
	if is64[S]() {
		return float64(x)
	}
	return float64(float32(x))
}

type ring[S scalar] struct {
	buf []S
	pos int
}

func (r *ring[S]) push(v S) {
	r.buf[r.pos] = v
	r.pos++
	if r.pos == len(r.buf) {
		r.pos = 0
	}
}

//fallvet:hotpath
func HotMethod(r *ring[float32], v float32) {
	r.push(v)
}
