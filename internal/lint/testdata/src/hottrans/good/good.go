// Package good is the negative space of the transitive hot-path
// proof: clean call chains, cold-pruned guards, justified edge cuts,
// panic-terminal formatting and the math allowlist all stay silent.
package good

import (
	"fmt"
	"math"
)

//fallvet:hotpath
func Hot(xs []float64) float64 {
	return math.Sqrt(sum(xs)) // math is allocation-free by contract
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}

var scratch []float64

//fallvet:hotpath
func HotCold(xs []float64) float64 {
	if scratch == nil {
		grow(len(xs)) // cold callee: pruned from reachability
	}
	return sum(scratch)
}

//fallvet:cold one-time lazy initialisation: runs once before the steady state
func grow(n int) {
	scratch = make([]float64, n)
}

//fallvet:hotpath
func HotIgnored(xs []float64) []float64 {
	//fallvet:ignore hottrans cache-miss path: the fresh slice is built once, every later call reuses it
	return clone(xs)
}

func clone(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	return out
}

//fallvet:hotpath
func HotChecked(n int) int {
	checkPositive(n)
	return n * 2
}

// checkPositive allocates only to format the failing report: a panic
// argument is terminal, so its Sprintf never runs on the steady state.
func checkPositive(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n))
	}
}
