// Package genericbad exercises the transitive hot-path proof across
// generic instantiations: the call graph must join every per-width
// instantiation of a function or method back onto its one declaration,
// so an allocation two generic hops down still reaches the annotated
// root, whether the call infers its type arguments or spells them out.
package genericbad

type scalar interface{ float32 | float64 }

//fallvet:hotpath
func Hot[S scalar](xs []S) S {
	return helper(xs) // want `hottrans: in hot path genericbad.Hot: call to genericbad.helper is not provably alloc-free`
}

// helper is clean itself; the allocation is one more generic hop down.
func helper[S scalar](xs []S) S {
	return grow(xs)
}

func grow[S scalar](xs []S) S {
	c := make([]S, len(xs)+1)
	copy(c, xs)
	return c[0]
}

//fallvet:hotpath
func HotExplicit(xs []float32) float32 {
	return helper[float32](xs) // want `hottrans: in hot path genericbad.HotExplicit: call to genericbad.helper is not provably alloc-free`
}

// ring is a generic receiver: each method carries its own receiver
// instantiation, which the graph must fold together.
type ring[S scalar] struct {
	buf []S
}

func (r *ring[S]) push(v S) {
	r.buf = append(r.buf, v) // the allocating construct under test
}

//fallvet:hotpath
func HotMethod(r *ring[float64], v float64) {
	r.push(v) // want `hottrans: in hot path genericbad.HotMethod: call to genericbad.ring.push is not provably alloc-free`
}
