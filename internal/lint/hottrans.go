package lint

// hottrans closes the gap the v1 hotpath analyzer documents: hotpath
// checks only the constructs a //fallvet:hotpath body contains
// directly, so an annotated function that calls an allocating helper
// passed silently. hottrans walks the whole-program call graph built
// in program.go and reports, at each call site inside a hot function,
// every callee that is not provably alloc-free — with the concrete
// witness chain down to the allocating construct — and every call the
// graph cannot resolve (function values, external packages, interface
// calls with no analyzed implementation).
//
// Own-body allocating constructs are NOT re-reported here; the hotpath
// analyzer already owns those, and double-reporting would force every
// justified //fallvet:ignore hotpath to be written twice.
//
// Escape hatches, in order of preference: fix the callee; mark a
// genuinely-off-steady-state callee //fallvet:cold <reason> (prunes it
// from reachability program-wide); or justify the specific call site
// with //fallvet:ignore hottrans <reason> (cuts that one edge).

var hotTransAnalyzer = &Analyzer{
	Name: "hottrans",
	Doc:  "prove //fallvet:hotpath functions alloc-free through their entire call chain",
	run:  runHotTrans,
}

func runHotTrans(p *pass) {
	for _, fd := range p.dirs.hotpath {
		fi := p.prog.byDecl[fd]
		if fi == nil {
			continue // no body or no type info; hotpath already reported
		}
		for i := range fi.sites {
			s := &fi.sites[i]
			if s.unresolved != "" {
				p.report("hottrans", s.pos, "in hot path %s: %s", fi.name(), s.unresolved)
				continue
			}
			for _, t := range s.targets {
				if t.cold || !t.dirty {
					continue
				}
				p.report("hottrans", s.pos,
					"in hot path %s: call to %s is not provably alloc-free: %s; fix the chain, mark the callee //fallvet:cold, or justify with //fallvet:ignore hottrans",
					fi.name(), t.name(), chain(t))
			}
		}
	}
}

// proveHotpaths returns, for every //fallvet:hotpath function across
// the passes, the unsuppressed hottrans diagnostics its call chain
// produces — empty slice means transitively proven. Keys are
// "importPath.DisplayName" to match the audit manifest. Used by
// hotpath_audit_test to cross-check the static proof against the
// AllocsPerRun gates.
func proveHotpaths(passes []*pass) map[string][]Diagnostic {
	out := map[string][]Diagnostic{}
	for _, p := range passes {
		for _, fd := range p.dirs.hotpath {
			fi := p.prog.byDecl[fd]
			if fi == nil {
				continue
			}
			before := len(p.diags)
			saved := p.diags
			p.diags = nil
			for i := range fi.sites {
				s := &fi.sites[i]
				if s.unresolved != "" {
					p.report("hottrans", s.pos, "in hot path %s: %s", fi.name(), s.unresolved)
					continue
				}
				for _, t := range s.targets {
					if !t.cold && t.dirty {
						p.report("hottrans", s.pos, "in hot path %s: call to %s: %s", fi.name(), t.name(), chain(t))
					}
				}
			}
			var kept []Diagnostic
			for _, d := range p.diags {
				if !p.dirs.ignored(d.File, d.Line, d.Analyzer) {
					kept = append(kept, d)
				}
			}
			p.diags = saved[:before]
			out[fi.key()] = kept
		}
	}
	return out
}
