package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadError is a structured package-loading failure: which package,
// where on disk, and the parse or type-check error underneath. Callers
// that fan out over many packages can unwrap it to decide whether the
// failure is theirs (a broken fixture) or the target's (code that does
// not compile).
type LoadError struct {
	ImportPath string
	Dir        string
	Err        error
}

func (e *LoadError) Error() string {
	return fmt.Sprintf("loading %s (%s): %v", e.ImportPath, e.Dir, e.Err)
}

func (e *LoadError) Unwrap() error { return e.Err }

// Package is one parsed and type-checked package, ready for analysis.
type Package struct {
	Path  string // import path, e.g. "repro/internal/nn"
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// loader parses and type-checks packages with a shared FileSet and a
// shared source importer, so stdlib and in-module dependencies are
// type-checked once and cached across the run. The "source" compiler
// importer resolves imports from source via go/build, which falls back
// to the go command in module mode — no golang.org/x/tools required.
type loader struct {
	fset *token.FileSet
	imp  types.Importer
}

func newLoader() *loader {
	fset := token.NewFileSet()
	return &loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// load parses the non-test .go files of dir and type-checks them as
// importPath. Files excluded by build constraints (//go:build lines,
// GOOS/GOARCH filename suffixes) are skipped the way the go tool
// skips them. Returns nil (no error) for directories with no Go files
// in the build — including test-only packages, whose _test.go files
// the linter never analyzes. Failures come back as *LoadError, never
// a panic: a package that does not parse or type-check is a result,
// not a crash.
func (l *loader) load(dir, importPath string) (*Package, error) {
	fail := func(err error) (*Package, error) {
		return nil, &LoadError{ImportPath: importPath, Dir: dir, Err: err}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fail(err)
	}
	ctxt := build.Default
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		// MatchFile reads the file header and applies the same build
		// constraint logic as the go tool, so a file tagged out of the
		// build cannot poison the type check with symbols (or syntax)
		// that the real build never sees.
		match, err := ctxt.MatchFile(dir, name)
		if err != nil {
			return fail(fmt.Errorf("reading build constraints of %s: %w", name, err))
		}
		if !match {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return fail(err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return fail(fmt.Errorf("type-checking: %w", err))
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// moduleRoot walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func moduleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// skipDir reports whether a directory is never part of the analyzed
// module: fixtures, VCS metadata, and underscore/dot-prefixed trees.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// expand resolves go-style package patterns relative to dir into
// (directory, import path) targets. Supported forms: "./...",
// "sub/...", and plain directory paths.
func expand(dir, root, modPath string, patterns []string) ([][2]string, error) {
	var targets [][2]string
	seen := map[string]bool{}
	add := func(d string) error {
		d, err := filepath.Abs(d)
		if err != nil {
			return err
		}
		if seen[d] {
			return nil
		}
		seen[d] = true
		rel, err := filepath.Rel(root, d)
		if err != nil || strings.HasPrefix(rel, "..") {
			return fmt.Errorf("package directory %s is outside module root %s", d, root)
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		targets = append(targets, [2]string{d, importPath})
		return nil
	}
	walk := func(base string) error {
		return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if path != base && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return add(path)
		})
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := walk(root); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(dir, strings.TrimSuffix(pat, "/..."))
			if err := walk(base); err != nil {
				return nil, err
			}
		default:
			if err := add(filepath.Join(dir, pat)); err != nil {
				return nil, err
			}
		}
	}
	return targets, nil
}

// LintPatterns loads the packages matching the go-style patterns
// (resolved relative to dir) and runs every analyzer. It returns the
// diagnostics and the number of packages analyzed.
func LintPatterns(dir string, patterns []string, cfg Config) ([]Diagnostic, int, error) {
	root, modPath, err := moduleRoot(dir)
	if err != nil {
		return nil, 0, err
	}
	targets, err := expand(dir, root, modPath, patterns)
	if err != nil {
		return nil, 0, err
	}
	l := newLoader()
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := l.load(t[0], t[1])
		if err != nil {
			return nil, 0, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return Run(pkgs, cfg), len(pkgs), nil
}
