package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// exhaustive checks switches over the repo's enum-like constant sets
// (edge.Health, cascade.Tier, fault.Kind, serve.State, ...): every
// declared constant of the switched type must appear in a case. A
// default clause does not satisfy the rule — defaults are for invalid
// values, and an enum member silently falling into one is exactly the
// bug this catches (a new cascade tier that no supervisor arm
// handles). Intentional partial switches carry
// //fallvet:ignore exhaustive <reason>.
//
// A type counts as an enum when it is a named integer type declared in
// one of the analyzed packages with at least two package-scope
// constants of exactly that type. Constants whose name starts with
// "Num"/"num" are sentinels (NumTiers) and are not required.

var exhaustiveAnalyzer = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over repo enum constant sets must name every declared constant",
	run:  runExhaustive,
}

func runExhaustive(p *pass) {
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if ok && sw.Tag != nil {
				checkExhaustive(p, sw)
			}
			return true
		})
	}
}

// enumMember is one declared constant of the switched type.
type enumMember struct {
	name string
	val  int64
}

func checkExhaustive(p *pass, sw *ast.SwitchStmt) {
	tagType := p.pkg.Info.TypeOf(sw.Tag)
	named, ok := tagType.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || !p.prog.paths[named.Obj().Pkg().Path()] {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return
	}
	members := enumMembers(named)
	if len(members) < 2 {
		return
	}

	covered := map[int64]bool{}
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, expr := range cc.List {
			tv, ok := p.pkg.Info.Types[expr]
			if !ok || tv.Value == nil {
				return // dynamic comparison: not an enum dispatch
			}
			if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
				covered[v] = true
			}
		}
	}

	var missing []enumMember
	for _, m := range members {
		if !covered[m.val] {
			missing = append(missing, m)
		}
	}
	if len(missing) == 0 {
		return
	}
	names := make([]string, len(missing))
	for i, m := range missing {
		names[i] = m.name
	}
	label := fmt.Sprintf("%s.%s", named.Obj().Pkg().Name(), named.Obj().Name())
	msg := fmt.Sprintf("switch over %s is missing %s", label, strings.Join(names, ", "))
	if hasDefault {
		msg += " (a default clause does not make an enum switch exhaustive)"
	}
	p.report("exhaustive", sw.Pos(), "%s; add the cases or justify with //fallvet:ignore exhaustive", msg)
}

// enumMembers lists the package-scope constants of exactly type named,
// minus "Num"/"num" sentinels, sorted by value then name.
func enumMembers(named *types.Named) []enumMember {
	scope := named.Obj().Pkg().Scope()
	var out []enumMember
	for _, name := range scope.Names() {
		cn, ok := scope.Lookup(name).(*types.Const)
		if !ok || cn.Type() != named {
			continue
		}
		if strings.HasPrefix(name, "Num") || strings.HasPrefix(name, "num") {
			continue
		}
		if v, exact := constant.Int64Val(constant.ToInt(cn.Val())); exact {
			out = append(out, enumMember{name: name, val: v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].val != out[j].val {
			return out[i].val < out[j].val
		}
		return out[i].name < out[j].name
	})
	return out
}
