package lint

import (
	"go/ast"
	"go/types"
)

// checkedIOAnalyzer guards the artifact-safety contract (DESIGN.md §7):
// checkpoints and model images are only trustworthy if every write,
// sync, close, and rename on the way to disk reports its error. A
// discarded Close after a write is the classic silent-data-loss bug —
// the kernel may surface the write failure only at close time.
//
// The rule: a call to a function or method named Close, Sync, Flush,
// Write, WriteString, or Rename whose last result is error must not be
// discarded — not as a bare statement, not behind defer or go, and not
// via a blank identifier. Methods defined in bytes, strings, and hash
// are exempt: their Write-family methods are documented to never fail.
var checkedIOAnalyzer = &Analyzer{
	Name: "checkedio",
	Doc:  "forbid discarding error returns from Close/Sync/Flush/Write/WriteString/Rename",
	run:  runCheckedIO,
}

var checkedNames = map[string]bool{
	"Close": true, "Sync": true, "Flush": true,
	"Write": true, "WriteString": true, "Rename": true,
}

// infallibleWriters are packages whose Write-family types are
// documented to always return a nil error. The exemption keys on the
// static receiver type's package, not the method's defining package:
// hash.Hash inherits Write from the embedded io.Writer, so the method
// object alone says "io" even though the contract lives in hash.
var infallibleWriters = map[string]bool{"bytes": true, "strings": true, "hash": true}

func runCheckedIO(p *pass) {
	info := p.pkg.Info
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := unparen(n.X).(*ast.CallExpr); ok {
					reportDiscard(p, call, "")
				}
			case *ast.DeferStmt:
				reportDiscard(p, n.Call, "deferred ")
			case *ast.GoStmt:
				reportDiscard(p, n.Call, "spawned ")
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := unparen(n.Rhs[0]).(*ast.CallExpr)
				if !ok || checkedCallee(info, call) == nil {
					return true
				}
				// The error is the last result; flag it only when that
				// position is the blank identifier.
				last, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident)
				if ok && last.Name == "_" {
					reportDiscard(p, call, "blank-assigned ")
				}
			}
			return true
		})
	}
}

func reportDiscard(p *pass, call *ast.CallExpr, how string) {
	fn := checkedCallee(p.pkg.Info, call)
	if fn == nil {
		return
	}
	owner := fn.Pkg().Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		owner = sig.Recv().Type().String()
	}
	p.report("checkedio", call.Pos(),
		"%scall discards the error from (%s).%s: check it (or justify with //fallvet:ignore checkedio <reason>)",
		how, owner, fn.Name())
}

// exemptRecv reports whether the call's static receiver type is
// declared in one of the infallible-writer packages.
func exemptRecv(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s := info.Selections[sel]
	if s == nil {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return infallibleWriters[named.Obj().Pkg().Path()]
}

// checkedCallee resolves the called function and returns it when it is
// in the checked name set with a trailing error result and not exempt.
func checkedCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !checkedNames[fn.Name()] {
		return nil
	}
	if infallibleWriters[fn.Pkg().Path()] || exemptRecv(info, call) {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !types.Identical(last, errorType) {
		return nil
	}
	return fn
}
