package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// fixtureLoader is shared across tests so the stdlib packages the
// fixtures import are parsed and type-checked once per test binary.
var fixtureLoader = newLoader()

func loadFixture(t *testing.T, rel string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(rel))
	pkg, err := fixtureLoader.load(dir, "fixture/"+rel)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rel, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s contains no Go files", rel)
	}
	return pkg
}

func fixtureConfig(deterministic, par bool) Config {
	return Config{
		Deterministic: func(string) bool { return deterministic },
		Par:           func(string) bool { return par },
	}
}

// want is one expected diagnostic: a pattern from a // want `regex`
// comment that must match at least one diagnostic on its line.
type want struct {
	rx      *regexp.Regexp
	matched bool
}

var wantRx = regexp.MustCompile("`([^`]+)`")

// collectWants scans the fixture sources for // want `regex` comments
// (one line may carry several backtick-quoted patterns) and returns
// them keyed by "file.go:line".
func collectWants(t *testing.T, dir string) map[string][]*want {
	t.Helper()
	wants := map[string][]*want{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			key := e.Name() + ":" + strconv.Itoa(i+1)
			for _, m := range wantRx.FindAllStringSubmatch(line[idx:], -1) {
				rx, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", key, m[1], err)
				}
				wants[key] = append(wants[key], &want{rx: rx})
			}
		}
	}
	return wants
}

// checkFixture lints one fixture package and matches its diagnostics
// against its want comments in both directions: every diagnostic must
// be wanted, every want must be produced.
func checkFixture(t *testing.T, rel string, cfg Config) {
	t.Helper()
	pkg := loadFixture(t, rel)
	diags := Run([]*Package{pkg}, cfg)
	wants := collectWants(t, pkg.Dir)
	for _, d := range diags {
		key := filepath.Base(d.File) + ":" + strconv.Itoa(d.Line)
		text := d.Analyzer + ": " + d.Message
		ok := false
		for _, w := range wants[key] {
			if w.rx.MatchString(text) {
				w.matched = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s", key, text)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("missing diagnostic at %s matching %q", key, w.rx)
			}
		}
	}
}

func TestAnalyzerFixtures(t *testing.T) {
	for _, tc := range []struct {
		rel      string
		det, par bool
	}{
		// determinism fires only in deterministic packages, so its
		// fixtures (and the suppression fixture, which silences
		// determinism findings) are linted with Deterministic=true.
		// redorder is repo-wide: its fixtures run with
		// Deterministic=false to pin that the confinement no longer
		// depends on the deterministic scoping.
		{"determinism/bad", true, false},
		{"determinism/good", true, false},
		{"hotpath/bad", false, false},
		{"hotpath/good", false, false},
		{"checkedio/bad", false, false},
		{"checkedio/good", false, false},
		{"redorder/bad", false, false},
		{"redorder/good", false, false},
		{"redorder/serve", false, false},
		{"suppress", true, false},
		{"hottrans/bad", false, false},
		{"hottrans/good", false, false},
		{"snapshot/bad", false, false},
		{"snapshot/good", false, false},
		{"exhaustive/bad", false, false},
		{"exhaustive/good", false, false},
		// floatdet is scoped like determinism: deterministic packages only.
		{"floatdet/bad", true, false},
		{"floatdet/good", true, false},
		// Generic instantiation coverage: the same three whole-program
		// analyzers again, this time with every function, method and
		// pair type behind a scalar type parameter.
		{"floatdet/genericbad", true, false},
		{"floatdet/genericgood", true, false},
		{"hottrans/genericbad", false, false},
		{"hottrans/genericgood", false, false},
		{"snapshot/genericbad", false, false},
		{"snapshot/genericgood", false, false},
	} {
		t.Run(strings.ReplaceAll(tc.rel, "/", "_"), func(t *testing.T) {
			checkFixture(t, tc.rel, fixtureConfig(tc.det, tc.par))
		})
	}
}

// TestRedorderExemptInsidePar: the channel-heavy redorder fixture must
// be clean when the config marks its package as a sanctioned
// concurrency layer, the way DefaultConfig exempts internal/par.
func TestRedorderExemptInsidePar(t *testing.T) {
	pkg := loadFixture(t, "redorder/bad")
	diags := Run([]*Package{pkg}, fixtureConfig(true, true))
	if len(diags) != 0 {
		t.Fatalf("par-exempt package still has %d diagnostics, first: %s", len(diags), diags[0])
	}
}

// TestRedorderServeAllowlist drives the serving-runtime fixture through
// DefaultConfig's real path matching: under the import paths the repo
// actually uses for the supervised runtime its goroutines and channels
// are sanctioned, while a near-miss path (a package merely named like
// serve) gets the full set of diagnostics.
func TestRedorderServeAllowlist(t *testing.T) {
	cfg := DefaultConfig()
	for _, path := range []string{"repro/internal/serve", "repro/internal/guard", "repro/internal/par"} {
		pkg := loadFixture(t, "redorder/serve")
		pkg.Path = path
		if diags := Run([]*Package{pkg}, cfg); len(diags) != 0 {
			t.Errorf("%s: %d diagnostics on sanctioned concurrency, first: %s", path, len(diags), diags[0])
		}
	}
	for _, path := range []string{"repro/internal/servex", "repro/internal/serveur", "repro/cmd/fallserve", "repro/internal/eval"} {
		pkg := loadFixture(t, "redorder/serve")
		pkg.Path = path
		if diags := Run([]*Package{pkg}, cfg); len(diags) == 0 {
			t.Errorf("%s: no diagnostics outside the allowlist, want the full redorder set", path)
		}
	}
}

// TestDirectiveDiagnostics: malformed //fallvet: comments are reported
// by the unsuppressible "directive" pseudo-analyzer, in source order,
// each at the directive's own file:line:col — not at the enclosing
// declaration. (The conflict diagnostic is the one exception: it is
// about the function, so it anchors at the function.)
func TestDirectiveDiagnostics(t *testing.T) {
	pkg := loadFixture(t, "directives")
	diags := Run([]*Package{pkg}, fixtureConfig(false, false))
	want := []struct {
		line, col int
		substr    string
	}{
		{9, 1, "misplaced //fallvet:hotpath"},
		{12, 1, "unknown fallvet directive"},
		{15, 1, "no space allowed"},
		{18, 1, "usage //fallvet:ignore <rule> <reason...>"},
		{21, 1, `unknown rule "nosuchrule"`},
		{24, 1, "has no body"},
		{27, 1, "usage //fallvet:cold <reason...>"},
		{30, 1, "misplaced //fallvet:cold: must sit in a function's doc comment"},
		{33, 1, "misplaced //fallvet:derived: must sit on a struct field"},
		{37, 2, "usage //fallvet:derived <reason...>"},
		{46, 1, "conflicted is marked both //fallvet:hotpath and //fallvet:cold"},
	}
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Log(d)
		}
		t.Fatalf("got %d directive diagnostics, want %d", len(diags), len(want))
	}
	for i, d := range diags {
		if d.Analyzer != "directive" {
			t.Errorf("diagnostic %d: analyzer %q, want directive", i, d.Analyzer)
		}
		if filepath.Base(d.File) != "directives.go" {
			t.Errorf("diagnostic %d: file %q, want directives.go", i, d.File)
		}
		if d.Line != want[i].line || d.Col != want[i].col {
			t.Errorf("diagnostic %d (%q): at %d:%d, want %d:%d",
				i, d.Message, d.Line, d.Col, want[i].line, want[i].col)
		}
		if !strings.Contains(d.Message, want[i].substr) {
			t.Errorf("diagnostic %d: %q does not mention %q", i, d.Message, want[i].substr)
		}
	}
}

// TestDiagnosticJSONRoundTrip pins the -json wire format: the field
// names cmd/fallvet emits, and lossless re-decoding.
func TestDiagnosticJSONRoundTrip(t *testing.T) {
	pkg := loadFixture(t, "checkedio/bad")
	diags := Run([]*Package{pkg}, fixtureConfig(false, false))
	if len(diags) == 0 {
		t.Fatal("checkedio/bad produced no diagnostics to encode")
	}
	data, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back []Diagnostic
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, diags) {
		t.Errorf("JSON round trip changed the diagnostics:\n got %+v\nwant %+v", back, diags)
	}
	var raw []map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"file", "line", "col", "analyzer", "message"} {
		if _, ok := raw[0][field]; !ok {
			t.Errorf("JSON output is missing field %q", field)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "a/b.go", Line: 3, Col: 7, Analyzer: "hotpath", Message: "m"}
	if got, want := d.String(), "a/b.go:3:7: hotpath: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestDefaultConfigScoping pins the repo scoping: the deterministic
// packages match on import-path boundaries, and the concurrency
// allowlist is exactly internal/par, internal/serve and internal/guard.
func TestDefaultConfigScoping(t *testing.T) {
	cfg := DefaultConfig()
	for _, tc := range []struct {
		path string
		want bool
	}{
		{"repro/internal/nn", true},
		{"repro/internal/eval", true},
		{"repro/internal/quant", true},
		{"repro/internal/par", true},
		{"repro/internal/tensor", true},
		{"repro/internal/artifact", true},
		{"internal/nn", true},
		{"repro/internal/nnx", false}, // no partial-segment matches
		{"repro/internal/dataset", false},
		{"repro/internal/edge", false},
		{"repro/cmd/falltrain", false},
	} {
		if got := cfg.Deterministic(tc.path); got != tc.want {
			t.Errorf("Deterministic(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
	for _, tc := range []struct {
		path string
		want bool
	}{
		{"repro/internal/par", true},
		{"repro/internal/serve", true},
		{"repro/internal/guard", true},
		{"repro/internal/nn", false},
		{"repro/internal/servex", false}, // no partial-segment matches
		{"repro/cmd/fallserve", false},
	} {
		if got := cfg.Par(tc.path); got != tc.want {
			t.Errorf("Par(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
}

func TestStamp(t *testing.T) {
	if got, want := Stamp(), "v2/8-rules"; got != want {
		t.Errorf("Stamp() = %q, want %q", got, want)
	}
	names := make([]string, 0, len(Analyzers()))
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	wantNames := []string{"determinism", "hotpath", "hottrans", "checkedio",
		"redorder", "snapshot", "exhaustive", "floatdet"}
	if !reflect.DeepEqual(names, wantNames) {
		t.Errorf("analyzer set %v, want %v", names, wantNames)
	}
}

// TestDedupeSuffixes: listing a package twice in an allowlist must not
// change matching, and the dedupe preserves first-occurrence order —
// a double-listed suffix cannot be double-counted by any future logic
// that iterates the list.
func TestDedupeSuffixes(t *testing.T) {
	got := dedupeSuffixes([]string{"internal/par", "internal/nn", "internal/par", "internal/serve", "internal/nn"})
	want := []string{"internal/par", "internal/nn", "internal/serve"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dedupeSuffixes = %v, want %v", got, want)
	}
	if out := dedupeSuffixes(nil); len(out) != 0 {
		t.Errorf("dedupeSuffixes(nil) = %v, want empty", out)
	}
}
