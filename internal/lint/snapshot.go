package lint

import (
	"go/ast"
	"go/types"
	"path"
	"sort"
)

// snapshot verifies snapshot-completeness: for every type that has
// both a snapshot writer and a restore reader, every struct field must
// be touched by the writers' (same-package, transitive) call closure
// or carry //fallvet:derived <reason>. The PR-7/8 crash-replay
// guarantees are exactly as strong as the serialized field set — a new
// field that nobody serializes silently breaks bit-identical restore,
// and this analyzer is what makes adding such a field a build failure
// instead of a latent soak flake.
//
// The check recurses into same-package named struct types reachable
// through the pair's fields (unwrapping pointers, slices and arrays),
// so helper rings and run-length trackers are held to the same
// standard; fields of types from other packages are that package's own
// pair's responsibility (dsp.Filter, edge.FixedFilter).

var snapshotAnalyzer = &Analyzer{
	Name: "snapshot",
	Doc:  "every field of a snapshot/restore pair is serialized or marked //fallvet:derived",
	run:  runSnapshot,
}

// snapshotWriters / snapshotReaders are the repo's serialization
// method vocabulary. A type needs one of each to be checked.
var snapshotWriters = map[string]bool{
	"Snapshot":           true,
	"AppendSnapshot":     true,
	"AppendState":        true,
	"appendStatePayload": true,
	"appendState":        true,
	"takeSnapshot":       true,
}

var snapshotReaders = map[string]bool{
	"Restore":       true,
	"RestoreFresh":  true,
	"ReadState":     true,
	"SetState":      true,
	"setState":      true,
	"readState":     true,
	"restoreReplay": true,
}

// snapPair is one detected writer/reader pair on a named struct type.
type snapPair struct {
	named   *types.Named
	writers []*funcInfo // in deterministic program order
}

// snapshotPairs detects the pairs declared in p's package.
func snapshotPairs(p *pass) []*snapPair {
	byType := map[*types.Named]*snapPair{}
	readers := map[*types.Named]bool{}
	var order []*types.Named
	for _, fi := range p.prog.ordered {
		if fi.pkg != p.pkg || fi.decl.Recv == nil {
			continue
		}
		named := recvNamed(fi.fn)
		if named == nil {
			continue
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			continue
		}
		name := fi.decl.Name.Name
		if snapshotWriters[name] {
			sp := byType[named]
			if sp == nil {
				sp = &snapPair{named: named}
				byType[named] = sp
				order = append(order, named)
			}
			sp.writers = append(sp.writers, fi)
		}
		if snapshotReaders[name] {
			readers[named] = true
		}
	}
	var out []*snapPair
	for _, named := range order {
		if readers[named] {
			out = append(out, byType[named])
		}
	}
	return out
}

// recvNamed returns the named receiver type of a method, unwrapping a
// pointer receiver.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	if named != nil {
		// Each method of a generic type carries its own receiver
		// instantiation (DetectorOf[S] with a per-method S); Origin
		// joins them back onto the one declared type so writer and
		// reader pair up. Identity for non-generic types.
		named = named.Origin()
	}
	return named
}

func runSnapshot(p *pass) {
	usedDerived := map[*ast.Field]bool{}
	for _, sp := range snapshotPairs(p) {
		checkSnapshotPair(p, sp, usedDerived)
	}
	// Stale //fallvet:derived: a justification on a field no snapshot
	// pair checks is dead weight that reads like a guarantee.
	var stale []*ast.Field
	for fld := range p.dirs.derived {
		if !usedDerived[fld] {
			stale = append(stale, fld)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i].Pos() < stale[j].Pos() })
	for _, fld := range stale {
		p.report("snapshot", fld.Pos(),
			"stale //fallvet:derived: field is not part of any snapshot-checked struct in this package")
	}
}

func checkSnapshotPair(p *pass, sp *snapPair, usedDerived map[*ast.Field]bool) {
	covered := writerFieldUses(p, sp.writers)
	writer := sp.writers[0].decl.Name.Name
	tname := path.Base(p.pkg.Path) + "." + sp.named.Obj().Name()

	// Walk the pair's struct and every same-package struct reachable
	// through its fields, pruning at //fallvet:derived: a field that is
	// declared rebuilt-not-serialized exempts everything underneath it.
	seen := map[*types.Named]bool{}
	queue := []*types.Named{sp.named}
	for len(queue) > 0 {
		named := queue[0]
		queue = queue[1:]
		if seen[named] {
			continue
		}
		seen[named] = true
		stc, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		fields := structASTFields(p, named)
		if fields == nil {
			continue // declared via an unexported alias or generated form
		}
		for i := 0; i < stc.NumFields(); i++ {
			fv := stc.Field(i)
			af := fields[i]
			if af == nil || unserializableField(fv.Type()) {
				continue // mutexes, atomics, channels, funcs: never image state
			}
			_, derived := p.dirs.derived[af]
			if derived {
				usedDerived[af] = true
			} else if next := fieldStruct(p, fv.Type()); next != nil {
				queue = append(queue, next)
			}
			switch {
			case covered[fv] && derived:
				p.report("snapshot", af.Pos(),
					"redundant //fallvet:derived on %s.%s: the field is referenced by %s's snapshot writers",
					named.Obj().Name(), fv.Name(), tname)
			case !covered[fv] && !derived:
				p.report("snapshot", af.Pos(),
					"field %s.%s is not serialized by %s's snapshot writer %s nor marked //fallvet:derived <reason>",
					named.Obj().Name(), fv.Name(), tname, writer)
			}
		}
	}
}

// unserializableField reports whether a field's type cannot be part of
// a byte-image snapshot by construction — synchronisation primitives,
// atomics, channels and function values. Requiring //fallvet:derived
// on those would be pure noise.
func unserializableField(t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		default:
			if named, ok := t.(*types.Named); ok {
				if pkg := named.Obj().Pkg(); pkg != nil {
					if p := pkg.Path(); p == "sync" || p == "sync/atomic" {
						return true
					}
				}
			}
			switch t.Underlying().(type) {
			case *types.Signature, *types.Chan:
				return true
			}
			return false
		}
	}
}

// writerFieldUses collects every struct-field object referenced inside
// the writers' bodies and the bodies of same-package functions they
// transitively call. A field the writers never touch is, by
// construction, absent from the serialized image.
func writerFieldUses(p *pass, writers []*funcInfo) map[*types.Var]bool {
	covered := map[*types.Var]bool{}
	seen := map[*funcInfo]bool{}
	queue := append([]*funcInfo(nil), writers...)
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		if seen[fi] || fi.pkg.Path != p.pkg.Path {
			continue
		}
		seen[fi] = true
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := p.pkg.Info.Uses[id].(*types.Var); ok && v.IsField() {
				// Field objects seen through a generic receiver are
				// per-instantiation; Origin maps them to the declared
				// field the struct walk below iterates over.
				covered[v.Origin()] = true
			}
			return true
		})
		for i := range fi.sites {
			queue = append(queue, fi.sites[i].targets...)
		}
	}
	return covered
}

// fieldStruct unwraps pointers, slices and arrays and returns the
// same-package named struct type underneath, if any.
func fieldStruct(p *pass, t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		default:
			named, ok := t.(*types.Named)
			if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != p.pkg.Path {
				return nil
			}
			if _, ok := named.Underlying().(*types.Struct); !ok {
				return nil
			}
			// Same-package generic helpers appear as per-use
			// instantiations; walk the declared type once.
			return named.Origin()
		}
	}
}

// structASTFields maps the type-checker's field order of named's
// struct to the declaring *ast.Field nodes (one entry per field; an
// embedded field maps to its single ast.Field). Returns nil when the
// declaration is not found in the package's files.
func structASTFields(p *pass, named *types.Named) []*ast.Field {
	for _, f := range p.pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || p.pkg.Info.Defs[ts.Name] != named.Obj() {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					return nil
				}
				var out []*ast.Field
				for _, fld := range st.Fields.List {
					n := len(fld.Names)
					if n == 0 {
						n = 1 // embedded
					}
					for i := 0; i < n; i++ {
						out = append(out, fld)
					}
				}
				return out
			}
		}
	}
	return nil
}

// collectSnapshotTypes lists every detected pair across the passes as
// "importPath.TypeName", sorted. The audit test pins the expected set.
func collectSnapshotTypes(passes []*pass) []string {
	var out []string
	for _, p := range passes {
		for _, sp := range snapshotPairs(p) {
			out = append(out, p.pkg.Path+"."+sp.named.Obj().Name())
		}
	}
	sort.Strings(out)
	return out
}
