package lint

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadBuildTags: a file excluded by a //go:build constraint must
// not reach the type checker. The excluded fixture file references an
// undefined symbol, so mere success proves the exclusion.
func TestLoadBuildTags(t *testing.T) {
	dir := filepath.Join("testdata", "src", "load", "buildtags")
	pkg, err := newLoader().load(dir, "fixture/load/buildtags")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if pkg == nil {
		t.Fatal("load returned no package")
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (excluded.go is tagged out of the build)", len(pkg.Files))
	}
	if pkg.Types.Scope().Lookup("Kept") == nil {
		t.Error("Kept is missing from the package scope")
	}
	if pkg.Types.Scope().Lookup("Excluded") != nil {
		t.Error("Excluded leaked into the package scope despite its build tag")
	}
}

// TestLoadTestOnly: a directory whose only Go files are _test.go files
// is not a package for the linter — nil result, nil error.
func TestLoadTestOnly(t *testing.T) {
	dir := filepath.Join("testdata", "src", "load", "testonly")
	pkg, err := newLoader().load(dir, "fixture/load/testonly")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if pkg != nil {
		t.Fatalf("test-only directory produced a package with %d files", len(pkg.Files))
	}
}

// TestLoadTypeError: a package that parses but does not type-check
// must come back as a structured *LoadError naming the package and
// directory, with the type error underneath.
func TestLoadTypeError(t *testing.T) {
	dir := filepath.Join("testdata", "src", "load", "typeerr")
	pkg, err := newLoader().load(dir, "fixture/load/typeerr")
	if err == nil {
		t.Fatalf("load succeeded (%v), want a type-check error", pkg)
	}
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("error is %T, want *LoadError: %v", err, err)
	}
	if le.ImportPath != "fixture/load/typeerr" {
		t.Errorf("LoadError.ImportPath = %q", le.ImportPath)
	}
	if le.Dir != dir {
		t.Errorf("LoadError.Dir = %q, want %q", le.Dir, dir)
	}
	if le.Unwrap() == nil {
		t.Error("LoadError.Unwrap() = nil, want the underlying type error")
	}
	if !strings.Contains(err.Error(), "notDeclaredAnywhere") {
		t.Errorf("error %q does not name the undefined symbol", err)
	}
}

// TestLoadMissingDir: an unreadable directory is a *LoadError too.
func TestLoadMissingDir(t *testing.T) {
	_, err := newLoader().load(filepath.Join("testdata", "src", "load", "nosuchdir"), "fixture/load/nosuchdir")
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("error is %T, want *LoadError: %v", err, err)
	}
}
