package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotpathAnalyzer checks functions whose doc comment carries
// //fallvet:hotpath: the steady-state-zero-allocation set that the
// AllocsPerRun tests measure dynamically (internal/edge/alloc_test.go,
// internal/quant/alloc_test.go) and the bench gate enforces. The
// static rule forbids the constructs that put allocations or interface
// boxing on the path:
//
//   - append / make / new
//   - slice and map composite literals, and address-taken composite
//     literals (&T{...} escapes)
//   - fmt.Sprintf and friends
//   - runtime string concatenation
//   - closures (func literals)
//   - interface conversions: explicit, by assignment, by return, or
//     by passing a concrete value to an interface parameter
//
// The check is direct, not transitive: a hotpath function may call an
// unannotated helper (that is how cold panic-guard paths are kept off
// the fast path — see nn.checkShape). Warm-up allocations that the
// alloc tests prove happen only once are suppressed per line with
// //fallvet:ignore hotpath <reason>. The AllocsPerRun tests remain the
// dynamic backstop for anything the static rule cannot see.
var hotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocating and boxing constructs in //fallvet:hotpath functions",
	run:  runHotpath,
}

// allocFmt lists fmt functions that build a string or error on every
// call. Other fmt functions (Fprintf, ...) are caught by the
// argument-boxing rule instead.
var allocFmt = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Errorf": true, "Appendf": true, "Appendln": true,
}

func runHotpath(p *pass) {
	for _, fd := range p.dirs.hotpath {
		checkHotFunc(p, fd)
	}
}

func checkHotFunc(p *pass, fd *ast.FuncDecl) {
	info := p.pkg.Info
	name := funcDisplayName(fd)
	var sig *types.Signature
	if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
		sig, _ = fn.Type().(*types.Signature)
	}
	// Composite literals that are operands of & are reported once, at
	// the UnaryExpr, as escaping; pre-order traversal marks them before
	// the child CompositeLit is visited.
	addressed := map[*ast.CompositeLit]bool{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			p.report("hotpath", n.Pos(),
				"%s: closure literal (captured variables escape to the heap); hoist to a named function", name)
			return false // the closure body is not on the hot path

		case *ast.UnaryExpr:
			if n.Op != token.AND {
				return true
			}
			if cl, ok := unparen(n.X).(*ast.CompositeLit); ok {
				addressed[cl] = true
				p.report("hotpath", n.Pos(),
					"%s: escaping composite literal &%s: allocate once outside the hot path and reuse", name, typeLabel(info, cl))
			}

		case *ast.CompositeLit:
			if addressed[n] {
				return true
			}
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					p.report("hotpath", n.Pos(),
						"%s: %s composite literal allocates its backing store per call", name, typeLabel(info, n))
				}
			}

		case *ast.CallExpr:
			checkHotCall(p, name, n)

		case *ast.BinaryExpr:
			if n.Op == token.ADD && isRuntimeString(info, n) {
				p.report("hotpath", n.Pos(),
					"%s: string concatenation allocates; format off the hot path", name)
			}

		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				p.report("hotpath", n.Pos(),
					"%s: string += allocates; build output off the hot path", name)
			}
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if boxes(info, info.TypeOf(n.Lhs[i]), n.Rhs[i]) {
						p.report("hotpath", n.Rhs[i].Pos(),
							"%s: assignment boxes %s into interface %s", name,
							info.TypeOf(n.Rhs[i]), info.TypeOf(n.Lhs[i]))
					}
				}
			}

		case *ast.ReturnStmt:
			if sig == nil || len(n.Results) != sig.Results().Len() {
				return true
			}
			for i, res := range n.Results {
				if boxes(info, sig.Results().At(i).Type(), res) {
					p.report("hotpath", res.Pos(),
						"%s: return boxes %s into interface %s", name,
						info.TypeOf(res), sig.Results().At(i).Type())
				}
			}
		}
		return true
	})
}

func checkHotCall(p *pass, name string, call *ast.CallExpr) {
	info := p.pkg.Info
	switch builtinName(info, call) {
	case "append":
		p.report("hotpath", call.Pos(),
			"%s: append may grow a heap slice; use preallocated scratch (tensor.Reuse / ViewInto)", name)
		return
	case "make":
		p.report("hotpath", call.Pos(),
			"%s: make allocates; hoist to construction or a warm-up path", name)
		return
	case "new":
		p.report("hotpath", call.Pos(), "%s: new allocates; hoist to construction", name)
		return
	case "panic":
		// panic is terminal: its (boxed) argument is off the steady
		// state by definition. Sprintf'd panic messages are still
		// caught below via the fmt rule when built inline.
		return
	case "":
	default:
		return // len, cap, copy, min, ... never allocate
	}

	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil &&
		fn.Pkg().Path() == "fmt" && allocFmt[fn.Name()] {
		p.report("hotpath", call.Pos(),
			"%s: fmt.%s allocates its result and boxes arguments; move formatting to a cold helper", name, fn.Name())
		return
	}

	// Explicit conversion T(x): flag when T is an interface type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && boxes(info, tv.Type, call.Args[0]) {
			p.report("hotpath", call.Pos(),
				"%s: conversion boxes %s into interface %s", name, info.TypeOf(call.Args[0]), tv.Type)
		}
		return
	}

	// Implicit conversion at the call boundary: concrete argument for
	// an interface parameter.
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsValue() {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return // f(xs...) passes an existing slice; nothing is boxed here
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxes(info, pt, arg) {
			p.report("hotpath", arg.Pos(),
				"%s: argument %s boxed into interface parameter %s", name, info.TypeOf(arg), pt)
		}
	}
}

// boxes reports whether assigning src to a destination of type dst
// converts a concrete value to an interface (an allocation unless the
// compiler can prove otherwise — which the hot path must not bet on).
func boxes(info *types.Info, dst types.Type, src ast.Expr) bool {
	if !isInterface(dst) {
		return false
	}
	st := info.TypeOf(src)
	if st == nil || isInterface(st) {
		return false
	}
	if b, ok := st.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isRuntimeString reports a string-typed expression that is not a
// compile-time constant ("a" + "b" folds; s + t allocates).
func isRuntimeString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value == nil && isStringType(tv.Type)
}

func typeLabel(info *types.Info, e ast.Expr) string {
	if t := info.TypeOf(e); t != nil {
		return t.String()
	}
	return "composite"
}
