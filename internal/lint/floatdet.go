package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatdet guards the bit-identical-results contract at its weakest
// point: float comparison and float accumulation order. In the
// deterministic packages:
//
//   - raw == / != between two non-constant float expressions is
//     forbidden. Bitwise identity checks must go through
//     math.Float64bits (uint64 compare — which this rule therefore
//     does not flag), and tolerance checks through an explicit
//     epsilon. Comparisons against compile-time constants (x == 0,
//     x != prevSentinel) stay legal: they are exact-representation
//     sentinel tests, not accumulated-value equality.
//
//   - compound float accumulation (+=, -=, *=, /=) inside a
//     range-over-map body is flagged: map order is randomized per run,
//     so the reduction's rounding depends on iteration order. (The
//     determinism analyzer already bans map range in these packages
//     outright; this rule names the precise hazard so the pair of
//     diagnostics explains both the what and the why.)

var floatDetAnalyzer = &Analyzer{
	Name: "floatdet",
	Doc:  "no raw float ==/!= and no float accumulation under map iteration in deterministic packages",
	run:  runFloatDet,
}

func runFloatDet(p *pass) {
	if !p.cfg.Deterministic(p.pkg.Path) {
		return
	}
	info := p.pkg.Info
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkFloatCompare(p, n)
				}
			case *ast.RangeStmt:
				if t := info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						checkMapAccumulation(p, n)
					}
				}
			}
			return true
		})
	}
}

func checkFloatCompare(p *pass, b *ast.BinaryExpr) {
	info := p.pkg.Info
	xv, yv := info.Types[b.X], info.Types[b.Y]
	// A constant operand makes this a sentinel test, not a comparison
	// of two computed values.
	if xv.Value != nil || yv.Value != nil {
		return
	}
	if isFloatType(xv.Type) || isFloatType(yv.Type) {
		op := "=="
		if b.Op == token.NEQ {
			op = "!="
		}
		p.report("floatdet", b.OpPos,
			"raw float %s in a deterministic package: compare math.Float64bits values for identity or use an explicit tolerance", op)
	}
}

func checkMapAccumulation(p *pass, rng *ast.RangeStmt) {
	info := p.pkg.Info
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		if len(as.Lhs) == 1 && isFloatType(info.TypeOf(as.Lhs[0])) {
			p.report("floatdet", as.Pos(),
				"float accumulation inside map iteration: the reduction order (and so the rounding) is randomized per run")
		}
		return true
	})
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
