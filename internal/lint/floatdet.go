package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatdet guards the bit-identical-results contract at its weakest
// point: float comparison and float accumulation order. In the
// deterministic packages:
//
//   - raw == / != between two non-constant float expressions is
//     forbidden. Bitwise identity checks must go through
//     math.Float64bits (uint64 compare — which this rule therefore
//     does not flag), and tolerance checks through an explicit
//     epsilon. Comparisons against compile-time constants (x == 0,
//     x != prevSentinel) stay legal: they are exact-representation
//     sentinel tests, not accumulated-value equality.
//
//   - compound float accumulation (+=, -=, *=, /=) inside a
//     range-over-map body is flagged: map order is randomized per run,
//     so the reduction's rounding depends on iteration order. (The
//     determinism analyzer already bans map range in these packages
//     outright; this rule names the precise hazard so the pair of
//     diagnostics explains both the what and the why.)

var floatDetAnalyzer = &Analyzer{
	Name: "floatdet",
	Doc:  "no raw float ==/!= and no float accumulation under map iteration in deterministic packages",
	run:  runFloatDet,
}

func runFloatDet(p *pass) {
	if !p.cfg.Deterministic(p.pkg.Path) {
		return
	}
	info := p.pkg.Info
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkFloatCompare(p, n)
				}
			case *ast.RangeStmt:
				if t := info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						checkMapAccumulation(p, n)
					}
				}
			}
			return true
		})
	}
}

func checkFloatCompare(p *pass, b *ast.BinaryExpr) {
	info := p.pkg.Info
	xv, yv := info.Types[b.X], info.Types[b.Y]
	// A constant operand makes this a sentinel test, not a comparison
	// of two computed values.
	if xv.Value != nil || yv.Value != nil {
		return
	}
	if isFloatType(xv.Type) || isFloatType(yv.Type) {
		op := "=="
		if b.Op == token.NEQ {
			op = "!="
		}
		p.report("floatdet", b.OpPos,
			"raw float %s in a deterministic package: compare %s values for identity or use an explicit tolerance",
			op, bitsIdiom(xv.Type, yv.Type))
	}
}

// bitsIdiom names the math bit-cast matching the compared width:
// Float32bits for float32 operands (the lowered inference width),
// Float64bits otherwise. A comparison on a width-generic type
// parameter names both, since the right cast depends on the
// instantiation.
func bitsIdiom(x, y types.Type) string {
	has32, generic := false, false
	for _, t := range []types.Type{x, y} {
		if t == nil {
			continue
		}
		if tp, ok := t.(*types.TypeParam); ok {
			switch h64, h32 := floatTypeSet(tp); {
			case h64 && h32:
				generic = true
			case h32:
				has32 = true
			}
			continue
		}
		if basic, ok := t.Underlying().(*types.Basic); ok && basic.Kind() == types.Float32 {
			has32 = true
		}
	}
	switch {
	case generic:
		return "math.Float64bits/math.Float32bits (per instantiated width)"
	case has32:
		return "math.Float32bits"
	default:
		return "math.Float64bits"
	}
}

func checkMapAccumulation(p *pass, rng *ast.RangeStmt) {
	info := p.pkg.Info
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		if len(as.Lhs) == 1 && isFloatType(info.TypeOf(as.Lhs[0])) {
			p.report("floatdet", as.Pos(),
				"float accumulation inside map iteration: the reduction order (and so the rounding) is randomized per run")
		}
		return true
	})
}

// isFloatType reports whether t is a floating-point type, or a type
// parameter whose constraint admits one — a comparison involving such
// a parameter is a float comparison at every floating instantiation
// (tensor.Scalar is the repo's canonical case), so the hazard is real
// regardless of what the other members of the type set are.
func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	if tp, ok := t.(*types.TypeParam); ok {
		has64, has32 := floatTypeSet(tp)
		return has64 || has32
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// floatTypeSet reports which float widths a type parameter's
// constraint type set admits (float32 counts as has32, every other
// floating kind as has64). A constraint with no type terms
// (method-only, comparable, any) admits neither — nothing is provable
// about its instantiations.
func floatTypeSet(tp *types.TypeParam) (has64, has32 bool) {
	return constraintFloats(tp.Constraint())
}

func constraintFloats(c types.Type) (has64, has32 bool) {
	iface, ok := c.Underlying().(*types.Interface)
	if !ok {
		return false, false
	}
	for i := 0; i < iface.NumEmbeddeds(); i++ {
		switch e := iface.EmbeddedType(i).(type) {
		case *types.Union:
			for j := 0; j < e.Len(); j++ {
				basic, ok := e.Term(j).Type().Underlying().(*types.Basic)
				if !ok || basic.Info()&types.IsFloat == 0 {
					continue
				}
				if basic.Kind() == types.Float32 {
					has32 = true
				} else {
					has64 = true
				}
			}
		default:
			h64, h32 := constraintFloats(e)
			has64 = has64 || h64
			has32 = has32 || h32
		}
	}
	return has64, has32
}
