package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
)

// Coverage notes for the manifest below: which dynamic check backs
// each //fallvet:hotpath annotation. The AllocsPerRun tests are the
// runtime ground truth; functions marked "static rule only" sit on
// paths no alloc gate measures (training steps, degradation handling,
// cold re-primes) and rely on the hotpath analyzer alone.
const (
	edgeAlloc    = "internal/edge/alloc_test.go TestDetectorPushAllocationFree (full CNN stride)"
	cascadeAlloc = "internal/cascade/alloc_test.go TestCascadePushAllocationFree (per tier)"
	nnAlloc      = "internal/nn/parallel_fit_test.go TestPredictAllocationFree + internal/edge/alloc_test.go"
	quantAlloc   = "internal/quant/alloc_test.go TestQuantizedPredictAllocationFree"
	trainOnly    = "training path: static hotpath rule only (no dynamic alloc gate)"
	degrade      = "degradation path: static hotpath rule only (shares Push scratch)"
	fixedOnly    = "fixed-point filter variant: static hotpath rule only"
	coldPrime    = "cold (re)prime path: static hotpath rule only"
	streamAlloc  = "internal/nn/stream_test.go TestStreamerAllocationFree + internal/edge/alloc_test.go (streaming push)"
)

// hotpathCoverage is the audited annotation manifest: every
// //fallvet:hotpath in the repo, keyed "dir.Func" / "dir.Recv.Func".
// TestHotpathAnnotationsMatchManifest fails in both directions — an
// annotation missing here, or a manifest entry whose annotation was
// removed — so the zero-alloc set can only change deliberately.
var hotpathCoverage = map[string]string{
	// Float inference path: layer forwards under both alloc gates.
	"internal/nn.Network.Predict":   nnAlloc,
	"internal/nn.Network.Forward":   nnAlloc,
	"internal/nn.Conv1D.Forward":    nnAlloc,
	"internal/nn.MaxPool1D.Forward": nnAlloc,
	"internal/nn.Dense.Forward":     nnAlloc,
	"internal/nn.ReLU.Forward":      nnAlloc,
	"internal/nn.Sigmoid.Forward":   nnAlloc,
	"internal/nn.Flatten.Forward":   nnAlloc,
	"internal/nn.Branch.Forward":    nnAlloc,
	"internal/nn.sliceInto":         nnAlloc,
	"internal/tensor.Reuse":         nnAlloc,
	"internal/tensor.ViewInto":      nnAlloc,
	"internal/model.NetModel.Score": edgeAlloc,

	// Training path: backwards and loss, statically checked only.
	"internal/nn.Network.Backward":      trainOnly,
	"internal/nn.Conv1D.Backward":       trainOnly,
	"internal/nn.MaxPool1D.Backward":    trainOnly,
	"internal/nn.Dense.Backward":        trainOnly,
	"internal/nn.ReLU.Backward":         trainOnly,
	"internal/nn.Sigmoid.Backward":      trainOnly,
	"internal/nn.Flatten.Backward":      trainOnly,
	"internal/nn.Branch.Backward":       trainOnly,
	"internal/nn.WeightedBCE.Loss":      trainOnly,
	"internal/nn.WeightedBCE.GradValue": trainOnly,

	// Streaming pipeline: everything Detector.Push touches per sample.
	"internal/edge.DetectorOf.Push":          edgeAlloc,
	"internal/edge.DetectorOf.ingest":        edgeAlloc,
	"internal/edge.DetectorOf.maybeEvaluate": edgeAlloc,
	"internal/edge.clamp1":                   edgeAlloc,
	"internal/edge.clampFull":                edgeAlloc,
	"internal/edge.finiteVec":                edgeAlloc,
	"internal/edge.healthRing.observe":       edgeAlloc,
	"internal/edge.healthRing.health":        edgeAlloc,
	"internal/imu.Fusion.Update":             edgeAlloc,
	"internal/imu.accAngles":                 edgeAlloc,
	"internal/imu.finite":                    edgeAlloc,
	"internal/imu.wrap180":                   edgeAlloc,
	"internal/imu.ChannelScale":              edgeAlloc,
	"internal/dsp.Biquad.Process":            edgeAlloc,
	"internal/dsp.Filter.Process":            edgeAlloc,
	"internal/dsp.Filter.Prime":              coldPrime,
	"internal/dsp.FilterOf.Process":          edgeAlloc,
	"internal/dsp.FilterOf.Prime":            coldPrime,

	// Ingest/evaluate split and per-group health, driven per sample by
	// both Detector.Push and the cascade Push alloc gates.
	"internal/edge.DetectorOf.push":           edgeAlloc,
	"internal/edge.DetectorOf.Ingest":         cascadeAlloc,
	"internal/edge.DetectorOf.StrideReady":    cascadeAlloc,
	"internal/edge.DetectorOf.WindowFresh":    cascadeAlloc,
	"internal/edge.DetectorOf.ScoreWindow":    cascadeAlloc,
	"internal/edge.DetectorOf.assembleWindow": edgeAlloc,
	"internal/edge.DetectorOf.GroupHealth":    cascadeAlloc,
	"internal/edge.GroupHealth.Worst":         cascadeAlloc,
	"internal/edge.stuckRun.observe":          edgeAlloc,
	"internal/edge.axisRun.observe":           edgeAlloc,
	"internal/edge.driftTrack.observeAcc":     edgeAlloc,
	"internal/edge.driftTrack.observeGyro":    edgeAlloc,

	// Degradation and fixed-point variants of the streaming pipeline.
	"internal/edge.DetectorOf.PushMissing":   degrade,
	"internal/edge.DetectorOf.IngestMissing": degrade,
	"internal/edge.DetectorOf.pushMissing":   degrade,
	"internal/edge.DetectorOf.absorbMissing": degrade,
	"internal/edge.FixedFilter.Process":      fixedOnly,
	"internal/edge.FixedFilter.Prime":        coldPrime,
	"internal/edge.fixedOf.Process":          fixedOnly,
	"internal/edge.fixedOf.Prime":            coldPrime,
	"internal/edge.toQ":                      fixedOnly,
	"internal/edge.fromQ":                    fixedOnly,

	// Detector cascade: supervisor, threshold floor and decision path,
	// all inside cascade.Push at every tier.
	"internal/cascade.CascadeOf.Push":         cascadeAlloc,
	"internal/cascade.CascadeOf.PushMissing":  cascadeAlloc,
	"internal/cascade.CascadeOf.decide":       cascadeAlloc,
	"internal/cascade.CascadeOf.tierScorable": cascadeAlloc,
	"internal/cascade.supervisor.step":        cascadeAlloc,
	"internal/cascade.stayOK":                 cascadeAlloc,
	"internal/cascade.enterOK":                cascadeAlloc,
	"internal/cascade.finiteAcc":              cascadeAlloc,
	"internal/cascade.tier2.push":             cascadeAlloc,
	"internal/cascade.tier2.missing":          cascadeAlloc,
	"internal/cascade.tier2.score":            cascadeAlloc,

	// Quantized inference path.
	"internal/quant.QNetwork.Predict": quantAlloc,
	"internal/quant.PredictOf":        quantAlloc,
	"internal/quant.reuseQ":           quantAlloc,
	"internal/quant.requant":          quantAlloc,
	"internal/quant.quantizeTo":       quantAlloc,
	"internal/quant.qdense.forward":   quantAlloc,
	"internal/quant.qconv1d.forward":  quantAlloc,
	"internal/quant.qrelu.forward":    quantAlloc,
	"internal/quant.qmaxpool.forward": quantAlloc,
	"internal/quant.qflatten.forward": quantAlloc,
	"internal/quant.qrescale.forward": quantAlloc,
	"internal/quant.qbranch.forward":  quantAlloc,
	"internal/quant.matVecRequant":    quantAlloc,

	// Blocked matrix-vector kernels (DESIGN §12): every float
	// inference MAC — batch and streaming — funnels through these.
	"internal/nn.matVecBias":       nnAlloc,
	"internal/nn.reluInto":         nnAlloc,
	"internal/nn.sigmoidInto":      nnAlloc,
	"internal/nn.tanhInto":         nnAlloc,
	"internal/nn.matVecBias2":      streamAlloc,
	"internal/nn.matVecBiasReLU":   streamAlloc,
	"internal/nn.matVecBias2ReLU":  streamAlloc,
	"internal/nn.matVecBiasWide":   nnAlloc,
	"internal/nn.matVecBiasSparse": nnAlloc,

	// Incremental inference engine: the per-sample push path and the
	// per-stride scoring path of nn.Streamer.
	"internal/nn.StreamerOf.Push":              streamAlloc,
	"internal/nn.StreamerOf.Score":             streamAlloc,
	"internal/nn.StreamerOf.BatchScore":        streamAlloc,
	"internal/nn.StreamerOf.runHead":           streamAlloc,
	"internal/nn.StreamerOf.runBatchBranch":    streamAlloc,
	"internal/nn.branchStreamOf.pushConv":      streamAlloc,
	"internal/nn.branchStreamOf.convRow":       streamAlloc,
	"internal/nn.branchStreamOf.flush":         streamAlloc,
	"internal/nn.branchStreamOf.absorb":        streamAlloc,
	"internal/nn.branchStreamOf.gather":        streamAlloc,
	"internal/nn.branchStreamOf.fusedConvPool": streamAlloc,
	"internal/nn.branchStreamOf.fusedAbsorb":   streamAlloc,
}

// annotatedFunctions parses every non-test Go file in the module
// (skipping testdata/vendor, so fixtures do not count) and collects
// the //fallvet:hotpath-annotated functions as "dir.DisplayName".
func annotatedFunctions(t *testing.T) map[string]bool {
	t.Helper()
	root, _, err := moduleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	annotated := map[string]bool{}
	fset := token.NewFileSet()
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		relDir, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if c.Text == "//fallvet:hotpath" {
					annotated[filepath.ToSlash(relDir)+"."+funcDisplayName(fd)] = true
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return annotated
}

// TestHotpathAnnotationsMatchManifest cross-checks the annotated set
// against hotpathCoverage in both directions.
func TestHotpathAnnotationsMatchManifest(t *testing.T) {
	annotated := annotatedFunctions(t)
	var unlisted, stale []string
	for name := range annotated {
		if _, ok := hotpathCoverage[name]; !ok {
			unlisted = append(unlisted, name)
		}
	}
	for name := range hotpathCoverage {
		if !annotated[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(unlisted)
	sort.Strings(stale)
	for _, name := range unlisted {
		t.Errorf("%s is annotated //fallvet:hotpath but missing from hotpathCoverage: state which dynamic test backs it", name)
	}
	for _, name := range stale {
		t.Errorf("hotpathCoverage lists %s but no such annotation exists: remove the entry or restore the annotation", name)
	}
	if len(annotated) == 0 {
		t.Fatal("found no //fallvet:hotpath annotations in the repo")
	}
}

// loadRepoPasses loads and analyzes the whole module once per test
// binary — the source importer type-checks every dependency, so this
// is the expensive step — and shares the passes between the
// whole-program audit tests below.
var (
	repoPassesOnce sync.Once
	repoPasses     []*pass
	repoPassesErr  error
)

func loadRepoPasses(t *testing.T) []*pass {
	t.Helper()
	repoPassesOnce.Do(func() {
		root, modPath, err := moduleRoot(".")
		if err != nil {
			repoPassesErr = err
			return
		}
		targets, err := expand(root, root, modPath, []string{"./..."})
		if err != nil {
			repoPassesErr = err
			return
		}
		l := newLoader()
		var pkgs []*Package
		for _, tg := range targets {
			pkg, err := l.load(tg[0], tg[1])
			if err != nil {
				repoPassesErr = err
				return
			}
			if pkg != nil {
				pkgs = append(pkgs, pkg)
			}
		}
		repoPasses, _ = buildPasses(pkgs, DefaultConfig())
	})
	if repoPassesErr != nil {
		t.Fatal(repoPassesErr)
	}
	return repoPasses
}

// TestTransitiveProofMatchesAllocGates is the two-way contract between
// the static whole-program proof and the dynamic AllocsPerRun gates:
//
//   - every function the manifest backs with a dynamic gate (or a
//     documented static-only note) must be transitively PROVEN
//     alloc-free by hottrans — an unproven hot function means the
//     static guarantee silently regressed even if the gate still
//     passes (gates measure one input shape; the proof covers all);
//   - every function hottrans proves must be listed in the manifest,
//     so a proof without a stated runtime witness cannot appear.
//
// Manifest keys are module-relative ("internal/nn.Network.Predict");
// proveHotpaths keys carry the module path ("repro/internal/nn....").
func TestTransitiveProofMatchesAllocGates(t *testing.T) {
	passes := loadRepoPasses(t)
	proven := proveHotpaths(passes)

	for name, gate := range hotpathCoverage {
		diags, ok := proven["repro/"+name]
		if !ok {
			t.Errorf("%s is in the manifest (gate: %s) but the call-graph proof never saw it", name, gate)
			continue
		}
		for _, d := range diags {
			t.Errorf("%s is gated by %q but NOT transitively alloc-free: %s", name, gate, d)
		}
	}
	for key := range proven {
		name := strings.TrimPrefix(key, "repro/")
		if _, ok := hotpathCoverage[name]; !ok {
			t.Errorf("%s is proven hot but has no manifest entry: state which dynamic test backs it", name)
		}
	}
	if len(proven) == 0 {
		t.Fatal("proveHotpaths found no hot functions in the repo")
	}
}

// TestSnapshotPairSet pins which types the snapshot analyzer actually
// audits. A pair silently dropping out of this set (renamed writer,
// changed receiver type) would turn off its completeness checking
// without failing any other test.
//
// Two subsystems the crash-safety story depends on are deliberately
// absent: internal/artifact serializes through free functions
// (AppendEnvelope / StateReader), not a method pair, and nn.Streamer
// is never serialized at all — edge.Detector rebuilds it row by row
// after ReadState, which is exactly what its //fallvet:derived streams
// tag records. Their state is audited through the pairs that own it
// (edge.Detector, serve.Session), not as pairs of their own.
func TestSnapshotPairSet(t *testing.T) {
	got := collectSnapshotTypes(loadRepoPasses(t))
	want := []string{
		"repro/internal/cascade.CascadeOf",
		"repro/internal/dsp.Filter",
		"repro/internal/edge.DetectorOf",
		"repro/internal/edge.FixedFilter",
		"repro/internal/nn.Network",
		"repro/internal/serve.Session",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("snapshot pair set changed:\n got  %v\n want %v", got, want)
	}
}

// TestHotpathAllocGateFunctionsAnnotated pins the core guarantee the
// ISSUE names: the entry points the AllocsPerRun tests measure are all
// in the annotated set, so the static rule and the dynamic gates watch
// the same functions.
func TestHotpathAllocGateFunctionsAnnotated(t *testing.T) {
	annotated := annotatedFunctions(t)
	for _, entry := range []string{
		"internal/edge.DetectorOf.Push",   // edge alloc gate
		"internal/quant.QNetwork.Predict", // quant alloc gate
		"internal/nn.Network.Predict",     // nn alloc gate
	} {
		if !annotated[entry] {
			t.Errorf("alloc-gated entry point %s is not annotated //fallvet:hotpath", entry)
		}
	}
}
