package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{File: "internal/nn/dense.go", Line: 10, Col: 2, Analyzer: "hotpath", Message: "make allocates"},
		{File: "internal/nn/dense.go", Line: 40, Col: 2, Analyzer: "hotpath", Message: "make allocates"},
		{File: "internal/eval/eval.go", Line: 7, Col: 9, Analyzer: "floatdet", Message: "raw float == in a deterministic package"},
	}
}

// TestBaselineRoundTrip: NewBaseline aggregates identical findings
// into counted entries, Encode/LoadBaseline round-trips losslessly.
func TestBaselineRoundTrip(t *testing.T) {
	b := NewBaseline(sampleDiags())
	if b.Schema != SchemaVersion || b.Fallvet != Stamp() {
		t.Fatalf("baseline header %d/%q, want %d/%q", b.Schema, b.Fallvet, SchemaVersion, Stamp())
	}
	want := []BaselineEntry{
		{File: "internal/eval/eval.go", Analyzer: "floatdet", Message: "raw float == in a deterministic package", Count: 1},
		{File: "internal/nn/dense.go", Analyzer: "hotpath", Message: "make allocates", Count: 2},
	}
	if !reflect.DeepEqual(b.Findings, want) {
		t.Fatalf("findings:\n got %+v\nwant %+v", b.Findings, want)
	}
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, b) {
		t.Errorf("round trip changed the baseline:\n got %+v\nwant %+v", back, b)
	}
}

// TestBaselineDiff: per-entry counts are a budget — findings within it
// are absorbed, findings beyond it are fresh, unused budget is stale.
func TestBaselineDiff(t *testing.T) {
	b := NewBaseline(sampleDiags())

	// Identical run: nothing fresh, nothing stale.
	fresh, stale := b.Diff(sampleDiags())
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("self-diff: %d fresh, %d stale, want 0/0", len(fresh), len(stale))
	}

	// One extra duplicate of a baselined finding and one brand-new
	// finding are both fresh; the fixed floatdet entry is stale.
	run := []Diagnostic{
		{File: "internal/nn/dense.go", Line: 10, Col: 2, Analyzer: "hotpath", Message: "make allocates"},
		{File: "internal/nn/dense.go", Line: 40, Col: 2, Analyzer: "hotpath", Message: "make allocates"},
		{File: "internal/nn/dense.go", Line: 77, Col: 2, Analyzer: "hotpath", Message: "make allocates"},
		{File: "internal/dsp/window.go", Line: 3, Col: 1, Analyzer: "exhaustive", Message: "switch over dsp.Mode is missing ModeHann"},
	}
	fresh, stale = b.Diff(run)
	if len(fresh) != 2 {
		t.Fatalf("fresh = %+v, want the third duplicate and the exhaustive finding", fresh)
	}
	if fresh[0].Line != 77 || fresh[1].Analyzer != "exhaustive" {
		t.Errorf("fresh order/content wrong: %+v", fresh)
	}
	if len(stale) != 1 || stale[0].Analyzer != "floatdet" || stale[0].Count != 1 {
		t.Errorf("stale = %+v, want the floatdet entry with residual 1", stale)
	}
}

// TestLoadBaselineSchemaMismatch: an old-schema baseline is rejected
// with a message that says how to regenerate it.
func TestLoadBaselineSchemaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(`{"schema":1,"fallvet":"v1/4-rules","findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadBaseline(path)
	if err == nil || !strings.Contains(err.Error(), "schema 1") || !strings.Contains(err.Error(), "-write") {
		t.Errorf("LoadBaseline = %v, want a schema-mismatch error naming the fix", err)
	}
}

// TestReportGolden pins the exact bytes of cmd/fallvet -json: the
// versioned envelope, field names, indentation and ordering. If this
// test breaks, SchemaVersion must be bumped, not the golden file
// silently refreshed.
func TestReportGolden(t *testing.T) {
	report := NewReport(sampleDiags(), 3)
	got, err := report.Encode()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("-json output drifted from %s:\n got:\n%s\nwant:\n%s", golden, got, want)
	}

	// The empty report still carries the envelope and an explicit
	// empty array (not null), so consumers never special-case clean runs.
	empty, err := NewReport(nil, 35).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(empty), `"diagnostics": []`) {
		t.Errorf("empty report renders diagnostics as %s, want []", empty)
	}
}
