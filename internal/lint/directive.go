package lint

import (
	"go/ast"
	"strings"
)

// The directive grammar (DESIGN.md §9, §13):
//
//	//fallvet:hotpath
//	    In a function's doc comment: the function promises steady-state
//	    zero allocation. The hotpath analyzer checks its body directly;
//	    the hottrans analyzer proves its whole reachable call chain.
//
//	//fallvet:cold <reason...>
//	    In a function's doc comment: the function is off the steady
//	    state (panic guards, warm-up, error paths) and is pruned from
//	    transitive hot-path reachability. The reason is mandatory.
//
//	//fallvet:derived <reason...>
//	    On a struct field: the field is rebuilt, not serialized — the
//	    snapshot analyzer exempts it from coverage. The reason is
//	    mandatory and should name the rebuild mechanism.
//
//	//fallvet:ignore <rule> <reason...>
//	    Suppress diagnostics of <rule> on the directive's own line and
//	    on the next line. The reason is mandatory — a suppression
//	    without a written justification is itself a diagnostic. For the
//	    transitive rules (hottrans, hotpath) an ignored line also stops
//	    contributing allocation effects, so the justification cuts the
//	    call-graph edge instead of re-surfacing at every caller.
//
// Directives are machine comments: they start exactly at "//fallvet:"
// with no space, like //go: directives. Anything else that looks like
// one is reported by the "directive" pseudo-analyzer, which cannot be
// suppressed.

// directives holds the parsed //fallvet: annotations of one package.
type directives struct {
	// hotpath lists the marked functions in source order.
	hotpath []*ast.FuncDecl
	// cold maps pruned functions to their justification.
	cold map[*ast.FuncDecl]string
	// derived maps exempted struct fields to their justification.
	derived map[*ast.Field]string
	// ignores maps file -> line -> set of rule names suppressed there.
	ignores map[string]map[int]map[string]bool
}

// ignored reports whether a diagnostic of rule at file:line is covered
// by an ignore directive on the same line or the line above.
func (d *directives) ignored(file string, line int, rule string) bool {
	byLine := d.ignores[file]
	if byLine == nil {
		return false
	}
	return byLine[line][rule] || byLine[line-1][rule]
}

func collectDirectives(p *pass) *directives {
	d := &directives{
		cold:    map[*ast.FuncDecl]string{},
		derived: map[*ast.Field]string{},
		ignores: map[string]map[int]map[string]bool{},
	}
	for _, f := range p.pkg.Files {
		// Map doc comments to their function so //fallvet:hotpath and
		// //fallvet:cold can verify placement, and field comments to
		// their struct field for //fallvet:derived.
		docOwner := map[*ast.Comment]*ast.FuncDecl{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				docOwner[c] = fd
			}
		}
		fieldOwner := map[*ast.Comment]*ast.Field{}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, fld := range st.Fields.List {
				for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
					if cg == nil {
						continue
					}
					for _, c := range cg.List {
						fieldOwner[c] = fld
					}
				}
			}
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d.parseComment(p, c, docOwner, fieldOwner)
			}
		}
	}
	// A function cannot be both the steady state and off it.
	for _, fd := range d.hotpath {
		if _, ok := d.cold[fd]; ok {
			p.report("directive", fd.Pos(),
				"%s is marked both //fallvet:hotpath and //fallvet:cold: pick one", funcDisplayName(fd))
		}
	}
	return d
}

func (d *directives) parseComment(p *pass, c *ast.Comment, docOwner map[*ast.Comment]*ast.FuncDecl, fieldOwner map[*ast.Comment]*ast.Field) {
	if !strings.HasPrefix(c.Text, "//") {
		return // block comments are never directives
	}
	body := c.Text[2:]
	if !strings.HasPrefix(body, "fallvet:") {
		// Catch the near-miss "// fallvet:..." which silently would not
		// bind: directives must start flush at //fallvet:.
		if strings.HasPrefix(strings.TrimSpace(body), "fallvet:") {
			p.report("directive", c.Pos(),
				"malformed directive %q: no space allowed, write //fallvet:...", strings.TrimSpace(body))
		}
		return
	}
	fields := strings.Fields(body)
	switch fields[0] {
	case "fallvet:hotpath":
		fd, ok := docOwner[c]
		if !ok {
			p.report("directive", c.Pos(),
				"misplaced //fallvet:hotpath: must sit in a function's doc comment")
			return
		}
		if fd.Body == nil {
			p.report("directive", c.Pos(),
				"//fallvet:hotpath on %s: function has no body to check", funcDisplayName(fd))
			return
		}
		d.hotpath = append(d.hotpath, fd)
	case "fallvet:cold":
		fd, ok := docOwner[c]
		if !ok {
			p.report("directive", c.Pos(),
				"misplaced //fallvet:cold: must sit in a function's doc comment")
			return
		}
		if len(fields) < 2 {
			p.report("directive", c.Pos(),
				"malformed %q: usage //fallvet:cold <reason...>", fields[0])
			return
		}
		d.cold[fd] = strings.Join(fields[1:], " ")
	case "fallvet:derived":
		fld, ok := fieldOwner[c]
		if !ok {
			p.report("directive", c.Pos(),
				"misplaced //fallvet:derived: must sit on a struct field")
			return
		}
		if len(fields) < 2 {
			p.report("directive", c.Pos(),
				"malformed %q: usage //fallvet:derived <reason...>", fields[0])
			return
		}
		d.derived[fld] = strings.Join(fields[1:], " ")
	case "fallvet:ignore":
		if len(fields) < 3 {
			p.report("directive", c.Pos(),
				"malformed %q: usage //fallvet:ignore <rule> <reason...>", fields[0])
			return
		}
		rule := fields[1]
		if !knownRule(rule) {
			p.report("directive", c.Pos(),
				"//fallvet:ignore names unknown rule %q", rule)
			return
		}
		pos := p.pkg.Fset.Position(c.Pos())
		byLine := d.ignores[pos.Filename]
		if byLine == nil {
			byLine = map[int]map[string]bool{}
			d.ignores[pos.Filename] = byLine
		}
		rules := byLine[pos.Line]
		if rules == nil {
			rules = map[string]bool{}
			byLine[pos.Line] = rules
		}
		rules[rule] = true
	default:
		p.report("directive", c.Pos(), "unknown fallvet directive %q", fields[0])
	}
}
