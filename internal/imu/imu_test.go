package imu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func vecClose(a, b Vec3, eps float64) bool {
	return math.Abs(a.X-b.X) < eps && math.Abs(a.Y-b.Y) < eps && math.Abs(a.Z-b.Z) < eps
}

func TestVec3Algebra(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if got := a.Add(b); got != (Vec3{5, 7, 9}) {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a); got != (Vec3{3, 3, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Fatalf("Dot = %g", got)
	}
	if got := a.Cross(b); got != (Vec3{-3, 6, -3}) {
		t.Fatalf("Cross = %v", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Fatalf("Norm = %g", got)
	}
	if got := (Vec3{0, 0, 2}).Normalize(); got != (Vec3{0, 0, 1}) {
		t.Fatalf("Normalize = %v", got)
	}
	if got := (Vec3{}).Normalize(); got != (Vec3{}) {
		t.Fatalf("Normalize zero = %v", got)
	}
}

func TestSampleFeaturesRoundTrip(t *testing.T) {
	s := Sample{
		Acc:   Vec3{0.1, 0.2, 0.3},
		Gyro:  Vec3{10, 20, 30},
		Euler: Vec3{1, 2, 3},
	}
	f := s.Features()
	if f[AccX] != 0.1 || f[GyroZ] != 30 || f[EulerYaw] != 3 {
		t.Fatalf("Features = %v", f)
	}
	if got := FromFeatures(f); got != s {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestChannelNames(t *testing.T) {
	if ChannelName(AccX) != "acc_x" || ChannelName(EulerYaw) != "yaw" {
		t.Fatal("channel names wrong")
	}
	if ChannelName(99) != "ch99" {
		t.Fatal("out-of-range channel name")
	}
}

func TestUnitConversions(t *testing.T) {
	if math.Abs(MS2ToG(StandardGravity)-1) > 1e-12 {
		t.Fatal("MS2ToG(g0) != 1")
	}
	if math.Abs(GToMS2(2)-2*StandardGravity) > 1e-12 {
		t.Fatal("GToMS2 wrong")
	}
	if math.Abs(DegToRad(180)-math.Pi) > 1e-12 || math.Abs(RadToDeg(math.Pi)-180) > 1e-12 {
		t.Fatal("angle conversion wrong")
	}
}

func TestRodriguesKnownRotations(t *testing.T) {
	// 90° about Z maps X onto Y.
	r := Rodrigues(Vec3{0, 0, 1}, math.Pi/2)
	if got := r.Apply(Vec3{1, 0, 0}); !vecClose(got, Vec3{0, 1, 0}, 1e-12) {
		t.Fatalf("Rz(90°)·x = %v", got)
	}
	// 180° about X maps Y onto −Y and Z onto −Z.
	r = Rodrigues(Vec3{1, 0, 0}, math.Pi)
	if got := r.Apply(Vec3{0, 1, 0}); !vecClose(got, Vec3{0, -1, 0}, 1e-12) {
		t.Fatalf("Rx(180°)·y = %v", got)
	}
	// Zero axis degenerates to identity.
	r = Rodrigues(Vec3{}, 1.0)
	if got := r.Apply(Vec3{1, 2, 3}); !vecClose(got, Vec3{1, 2, 3}, 1e-12) {
		t.Fatalf("identity fallback = %v", got)
	}
}

// Property: Rodrigues matrices are proper rotations — RᵀR = I, det R = 1,
// and they preserve norms.
func TestRodriguesIsRotationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		axis := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if axis.Norm() < 1e-9 {
			return true
		}
		angle := rng.Float64() * 2 * math.Pi
		r := Rodrigues(axis, angle)
		// RᵀR = I
		id := r.Transpose().Mul(r)
		want := Identity3()
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if math.Abs(id[i][j]-want[i][j]) > 1e-9 {
					return false
				}
			}
		}
		if math.Abs(r.Det()-1) > 1e-9 {
			return false
		}
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		return math.Abs(r.Apply(v).Norm()-v.Norm()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: rotation about an axis leaves the axis fixed.
func TestRodriguesFixesAxisProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		axis := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if axis.Norm() < 1e-9 {
			return true
		}
		r := Rodrigues(axis, rng.Float64()*2*math.Pi)
		return vecClose(r.Apply(axis), axis, 1e-9*math.Max(1, axis.Norm()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRotationBetween(t *testing.T) {
	// Generic pair.
	a, b := Vec3{1, 0, 0}, Vec3{0, 0, 1}
	r, err := RotationBetween(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Apply(a); !vecClose(got, b, 1e-12) {
		t.Fatalf("R·a = %v, want %v", got, b)
	}
	// Aligned pair ⇒ identity.
	r, err = RotationBetween(Vec3{0, 2, 0}, Vec3{0, 5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Apply(Vec3{1, 2, 3}); !vecClose(got, Vec3{1, 2, 3}, 1e-9) {
		t.Fatalf("aligned case not identity: %v", got)
	}
	// Anti-parallel pair.
	r, err = RotationBetween(Vec3{0, 0, 1}, Vec3{0, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Apply(Vec3{0, 0, 1}); !vecClose(got, Vec3{0, 0, -1}, 1e-9) {
		t.Fatalf("anti-parallel: %v", got)
	}
	// Zero vector is an error.
	if _, err := RotationBetween(Vec3{}, Vec3{1, 0, 0}); err == nil {
		t.Fatal("zero vector accepted")
	}
}

// Property: RotationBetween(a, b) maps â onto b̂ for random vectors.
func TestRotationBetweenProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		b := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if a.Norm() < 1e-6 || b.Norm() < 1e-6 {
			return true
		}
		r, err := RotationBetween(a, b)
		if err != nil {
			return false
		}
		return vecClose(r.Apply(a.Normalize()), b.Normalize(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMat3RotateSample(t *testing.T) {
	r := Rodrigues(Vec3{0, 0, 1}, math.Pi/2)
	s := Sample{Acc: Vec3{1, 0, 0}, Gyro: Vec3{0, 1, 0}, Euler: Vec3{7, 8, 9}}
	got := r.Rotate(s)
	if !vecClose(got.Acc, Vec3{0, 1, 0}, 1e-12) {
		t.Fatalf("Acc = %v", got.Acc)
	}
	if !vecClose(got.Gyro, Vec3{-1, 0, 0}, 1e-12) {
		t.Fatalf("Gyro = %v", got.Gyro)
	}
	if got.Euler != s.Euler {
		t.Fatal("Euler must pass through Rotate unchanged")
	}
}

func TestFusionConfigErrors(t *testing.T) {
	if _, err := NewFusion(0, 0.5); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewFusion(100, 0); err == nil {
		t.Error("zero tau accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewFusion should panic")
		}
	}()
	MustNewFusion(-1, 0.5)
}

func TestFusionLevelAttitude(t *testing.T) {
	// A sensor lying flat (gravity along +Z) reads acc = (0,0,1) g and
	// zero rates: pitch and roll must stay ≈ 0.
	f := MustNewFusion(100, 0.5)
	var e Vec3
	for i := 0; i < 500; i++ {
		e = f.Update(Vec3{0, 0, 1}, Vec3{})
	}
	if math.Abs(e.X) > 0.1 || math.Abs(e.Y) > 0.1 || math.Abs(e.Z) > 0.1 {
		t.Fatalf("level attitude = %v, want ~0", e)
	}
}

func TestFusionStaticPitch(t *testing.T) {
	// Tilted 30° nose-down: acc_x = −sin(−30°)·g... With our
	// convention pitch = atan2(−ax, √(ay²+az²)), a static reading of
	// ax = −0.5, az = +√3/2 gives pitch = +30°.
	f := MustNewFusion(100, 0.5)
	var e Vec3
	for i := 0; i < 1000; i++ {
		e = f.Update(Vec3{-0.5, 0, math.Sqrt(3) / 2}, Vec3{})
	}
	if math.Abs(e.X-30) > 0.5 {
		t.Fatalf("pitch = %g, want 30", e.X)
	}
	if math.Abs(e.Y) > 0.5 {
		t.Fatalf("roll = %g, want 0", e.Y)
	}
}

func TestFusionFirstSampleSnaps(t *testing.T) {
	f := MustNewFusion(100, 0.5)
	e := f.Update(Vec3{0, 1, 0}, Vec3{}) // gravity along +Y: roll = 90°
	if math.Abs(e.Y-90) > 1e-9 {
		t.Fatalf("first-sample roll = %g, want 90", e.Y)
	}
}

func TestFusionYawIntegration(t *testing.T) {
	// 90 deg/s about Z for 1 s ⇒ yaw ≈ 90° (pure integration).
	f := MustNewFusion(100, 0.5)
	f.Update(Vec3{0, 0, 1}, Vec3{}) // prime
	var e Vec3
	for i := 0; i < 100; i++ {
		e = f.Update(Vec3{0, 0, 1}, Vec3{0, 0, 90})
	}
	if math.Abs(e.Z-90) > 1.0 {
		t.Fatalf("yaw = %g, want ≈90", e.Z)
	}
}

func TestFusionGyroTracksFastMotion(t *testing.T) {
	// With a rotating body the gyro term should dominate short-term:
	// feed pitch rate +100 deg/s for 200 ms with an (incorrectly
	// constant) accelerometer; the estimate must move well beyond the
	// accel solution of 0°.
	f := MustNewFusion(100, 0.5)
	f.Update(Vec3{0, 0, 1}, Vec3{})
	var e Vec3
	for i := 0; i < 20; i++ {
		e = f.Update(Vec3{0, 0, 1}, Vec3{0, 100, 0})
	}
	if e.X < 10 {
		t.Fatalf("pitch after 200 ms of 100°/s = %g, want > 10", e.X)
	}
}

func TestFusionFreeFallDownWeighting(t *testing.T) {
	// In free fall acc → 0 g; the accel angles become garbage
	// (atan2(0, 0)...). The filter must not be yanked around: starting
	// at 30° pitch, 300 ms of free fall with zero rates should keep
	// the estimate near 30°.
	f := MustNewFusion(100, 0.5)
	for i := 0; i < 500; i++ {
		f.Update(Vec3{-0.5, 0, math.Sqrt(3) / 2}, Vec3{})
	}
	var e Vec3
	for i := 0; i < 30; i++ {
		e = f.Update(Vec3{0, 0, 0.02}, Vec3{}) // near-zero g
	}
	if math.Abs(e.X-30) > 5 {
		t.Fatalf("free-fall pitch drifted to %g, want ≈30", e.X)
	}
}

func TestFusionResetAndAnnotate(t *testing.T) {
	f := MustNewFusion(100, 0.5)
	f.Update(Vec3{0, 1, 0}, Vec3{})
	f.Reset()
	e := f.Update(Vec3{0, 0, 1}, Vec3{})
	if math.Abs(e.Y) > 1e-9 {
		t.Fatalf("after Reset roll = %g, want 0", e.Y)
	}

	samples := make([]Sample, 50)
	for i := range samples {
		samples[i] = Sample{Acc: Vec3{0, 0, 1}}
	}
	f.Annotate(samples)
	last := samples[len(samples)-1].Euler
	if math.Abs(last.X) > 0.5 || math.Abs(last.Y) > 0.5 {
		t.Fatalf("Annotate level trial: %v", last)
	}
}

// Property: fused pitch/roll stay within physical bounds (±180°) for
// arbitrary bounded sensor streams — the estimator must never wind up.
func TestFusionBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fus := MustNewFusion(100, 0.5)
		for i := 0; i < 400; i++ {
			acc := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			gyro := Vec3{200 * rng.NormFloat64(), 200 * rng.NormFloat64(), 200 * rng.NormFloat64()}
			e := fus.Update(acc, gyro)
			if math.Abs(e.X) > 181 || math.Abs(e.Y) > 181 {
				return false
			}
			if math.IsNaN(e.X) || math.IsNaN(e.Y) || math.IsNaN(e.Z) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestChannelScales(t *testing.T) {
	for c := AccX; c <= AccZ; c++ {
		if ChannelScale(c) != 1 {
			t.Fatalf("acc channel %d scale %g", c, ChannelScale(c))
		}
	}
	for c := GyroX; c <= GyroZ; c++ {
		if ChannelScale(c) != 200 {
			t.Fatalf("gyro channel %d scale %g", c, ChannelScale(c))
		}
	}
	for c := EulerPitch; c <= EulerYaw; c++ {
		if ChannelScale(c) != 90 {
			t.Fatalf("euler channel %d scale %g", c, ChannelScale(c))
		}
	}
}

func TestFusionRejectsNonFinite(t *testing.T) {
	f := MustNewFusion(100, 0.5)
	// Establish a sensible attitude.
	var ref Vec3
	for i := 0; i < 50; i++ {
		ref = f.Update(Vec3{X: 0.2, Z: 0.98}, Vec3{Y: 3})
	}
	// NaN and Inf readings must hold the attitude, not poison it.
	bad := []struct{ acc, gyro Vec3 }{
		{Vec3{X: math.NaN(), Z: 1}, Vec3{}},
		{Vec3{Z: 1}, Vec3{Y: math.Inf(1)}},
		{Vec3{X: math.Inf(-1), Y: math.NaN(), Z: math.NaN()}, Vec3{Z: math.NaN()}},
	}
	for _, b := range bad {
		got := f.Update(b.acc, b.gyro)
		if got != ref {
			t.Fatalf("attitude moved on non-finite input: %+v != %+v", got, ref)
		}
	}
	// The estimator keeps working on clean data afterwards.
	after := f.Update(Vec3{X: 0.2, Z: 0.98}, Vec3{Y: 3})
	if math.IsNaN(after.X) || math.IsNaN(after.Y) || math.IsNaN(after.Z) {
		t.Fatal("fusion state poisoned by earlier non-finite input")
	}
}

func TestFusionUnprimedNonFinite(t *testing.T) {
	// Garbage before the first good sample must not fake a priming.
	f := MustNewFusion(100, 0.5)
	f.Update(Vec3{X: math.NaN()}, Vec3{})
	got := f.Update(Vec3{X: 0, Y: 0, Z: 1}, Vec3{})
	// First clean update should snap to the accelerometer solution
	// (flat: pitch 0, roll 0), proving the NaN did not prime it.
	if math.Abs(got.X) > 1e-9 || math.Abs(got.Y) > 1e-9 {
		t.Fatalf("unprimed fusion corrupted by non-finite input: %+v", got)
	}
}
