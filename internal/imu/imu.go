// Package imu models the inertial measurement unit data the detector
// consumes: 9-channel samples (tri-axial accelerometer, tri-axial
// gyroscope, Euler angles), unit conversions, frame re-orientation via
// Rodrigues' rotation formula (used to align the KFall sensor frame to
// the self-collected one) and a complementary-filter sensor fusion
// that computes Euler angles on the edge, as the paper's PCB firmware
// does.
package imu

import (
	"fmt"
	"math"
)

// Physical constants and channel conventions.
const (
	// StandardGravity is g₀ in m/s².
	StandardGravity = 9.80665

	// NumChannels is the feature count per sample: accel xyz, gyro
	// xyz, Euler pitch/roll/yaw — the paper's m = 9.
	NumChannels = 9
)

// Channel indices into a 9-feature sample row.
const (
	AccX = iota
	AccY
	AccZ
	GyroX
	GyroY
	GyroZ
	EulerPitch
	EulerRoll
	EulerYaw
)

// ChannelName returns the conventional name of feature channel c.
func ChannelName(c int) string {
	names := [...]string{"acc_x", "acc_y", "acc_z",
		"gyro_x", "gyro_y", "gyro_z",
		"pitch", "roll", "yaw"}
	if c < 0 || c >= len(names) {
		return fmt.Sprintf("ch%d", c)
	}
	return names[c]
}

// Vec3 is a 3-component vector (acceleration, angular rate, axis...).
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v − w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v/|v|, or the zero vector if |v| is zero.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return Vec3{}
	}
	return v.Scale(1 / n)
}

// Sample is one IMU reading at a single instant: acceleration in g,
// angular rate in deg/s and Euler attitude in degrees. These are the
// units of the paper's self-collected dataset, which the merged
// dataset is standardised to.
type Sample struct {
	Acc   Vec3 // specific force, g
	Gyro  Vec3 // angular rate, deg/s
	Euler Vec3 // X = pitch, Y = roll, Z = yaw, degrees
}

// Features flattens the sample into the 9-feature row the models
// consume, in channel order.
func (s Sample) Features() [NumChannels]float64 {
	return [NumChannels]float64{
		s.Acc.X, s.Acc.Y, s.Acc.Z,
		s.Gyro.X, s.Gyro.Y, s.Gyro.Z,
		s.Euler.X, s.Euler.Y, s.Euler.Z,
	}
}

// FromFeatures rebuilds a sample from a 9-feature row.
func FromFeatures(f [NumChannels]float64) Sample {
	return Sample{
		Acc:   Vec3{f[AccX], f[AccY], f[AccZ]},
		Gyro:  Vec3{f[GyroX], f[GyroY], f[GyroZ]},
		Euler: Vec3{f[EulerPitch], f[EulerRoll], f[EulerYaw]},
	}
}

// ChannelScale returns the fixed normalisation divisor for feature
// channel c, chosen so every channel feeds the models at O(1):
// accelerations are already in g, angular rates are divided by
// 200 deg/s (a vigorous fall's rotation), Euler angles by 90°. Fixed
// physical scaling (rather than dataset z-scoring) keeps the edge
// firmware free of train-time statistics and makes the quantized
// input scale deterministic.
//
//fallvet:hotpath
func ChannelScale(c int) float64 {
	switch c {
	case GyroX, GyroY, GyroZ:
		return 200
	case EulerPitch, EulerRoll, EulerYaw:
		return 90
	default:
		return 1
	}
}

// MS2ToG converts an acceleration from m/s² to gravitational units.
// KFall ships accelerations in m/s²; the merged dataset uses g.
func MS2ToG(a float64) float64 { return a / StandardGravity }

// GToMS2 converts an acceleration from g to m/s².
func GToMS2(a float64) float64 { return a * StandardGravity }

// RadToDeg converts radians to degrees.
func RadToDeg(r float64) float64 { return r * 180 / math.Pi }

// DegToRad converts degrees to radians.
func DegToRad(d float64) float64 { return d * math.Pi / 180 }
