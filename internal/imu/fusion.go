package imu

import (
	"fmt"
	"math"
)

// Fusion is a complementary-filter attitude estimator: it blends
// gyro-integrated attitude (good at high frequency, drifts) with the
// accelerometer's gravity direction (noisy, but drift-free) to produce
// the Euler pitch/roll channels; yaw is gyro-integrated only, as on a
// magnetometer-less board like the paper's Protechto PCB. This is the
// "sensor data fusion phase" the paper runs on the edge before each
// CNN inference (≈3 ms of the reported budget).
type Fusion struct {
	alpha float64 // gyro weight per step, in (0, 1)
	dt    float64 // sample period, seconds

	pitch, roll, yaw float64 // degrees
	primed           bool
}

// NewFusion returns a complementary filter for the given sample rate
// (Hz) and time constant tau (seconds). The blend weight is
// α = τ/(τ+dt); the paper's 100 Hz rate with τ≈0.5 s gives α≈0.98,
// a conventional setting.
func NewFusion(sampleRate, tau float64) (*Fusion, error) {
	if sampleRate <= 0 {
		return nil, fmt.Errorf("imu: sample rate must be positive, got %g", sampleRate)
	}
	if tau <= 0 {
		return nil, fmt.Errorf("imu: time constant must be positive, got %g", tau)
	}
	dt := 1 / sampleRate
	return &Fusion{alpha: tau / (tau + dt), dt: dt}, nil
}

// MustNewFusion is NewFusion but panics on configuration errors.
func MustNewFusion(sampleRate, tau float64) *Fusion {
	f, err := NewFusion(sampleRate, tau)
	if err != nil {
		panic(err)
	}
	return f
}

// Reset clears the estimator state.
func (f *Fusion) Reset() {
	f.pitch, f.roll, f.yaw = 0, 0, 0
	f.primed = false
}

// FusionState is the estimator's mutable state, exposed so a serving
// layer can snapshot a live filter and resume it bit-identically (the
// complementary filter is recursive: attitude lost in a crash does not
// come back until the next re-prime).
type FusionState struct {
	Pitch, Roll, Yaw float64
	Primed           bool
}

// State captures the current estimator state.
func (f *Fusion) State() FusionState {
	return FusionState{Pitch: f.pitch, Roll: f.roll, Yaw: f.yaw, Primed: f.primed}
}

// SetState restores state captured by State.
func (f *Fusion) SetState(s FusionState) {
	f.pitch, f.roll, f.yaw = s.Pitch, s.Roll, s.Yaw
	f.primed = s.Primed
}

// accAngles returns the gravity-referenced pitch and roll (degrees)
// implied by an accelerometer reading (any consistent unit).
//
//fallvet:hotpath
func accAngles(acc Vec3) (pitch, roll float64) {
	pitch = RadToDeg(math.Atan2(-acc.X, math.Sqrt(acc.Y*acc.Y+acc.Z*acc.Z)))
	roll = RadToDeg(math.Atan2(acc.Y, acc.Z))
	return pitch, roll
}

// finite reports whether every component of v is a real number.
//
//fallvet:hotpath
func finite(v Vec3) bool {
	// x−x is +0 for finite x and NaN for ±Inf/NaN, so the sum is 0
	// exactly when every component is a real number — one branchless
	// compare instead of six IsNaN/IsInf tests on the per-sample path.
	return (v.X-v.X)+(v.Y-v.Y)+(v.Z-v.Z) == 0
}

// Update ingests one accelerometer (g) + gyroscope (deg/s) reading and
// returns the fused Euler angles in degrees. The very first update
// snaps pitch/roll to the accelerometer solution so start-up attitude
// is immediately sensible.
//
// Non-finite readings are rejected: the estimator holds its current
// attitude instead of letting a single NaN/Inf glitch poison the
// recursive state for the rest of the stream (a NaN, once blended in,
// never washes out of pitch/roll/yaw).
//
//fallvet:hotpath
func (f *Fusion) Update(acc, gyro Vec3) Vec3 {
	if !finite(acc) || !finite(gyro) {
		return Vec3{f.pitch, f.roll, f.yaw}
	}
	ap, ar := accAngles(acc)
	if !f.primed {
		f.pitch, f.roll, f.yaw = ap, ar, 0
		f.primed = true
		return Vec3{f.pitch, f.roll, f.yaw}
	}
	// Gyro propagation (body rates mapped directly onto Euler rates —
	// the small-angle firmware approximation used on the device).
	gp := f.pitch + gyro.Y*f.dt
	gr := f.roll + gyro.X*f.dt
	f.yaw += gyro.Z * f.dt

	// During near-free-fall |acc| collapses toward 0 g and the
	// accelerometer stops pointing at gravity; trust it less. This is
	// exactly the situation the fall detector must survive.
	w := 1 - f.alpha
	if m := acc.Norm(); m < 0.5 || m > 1.5 {
		w *= m * m / (1 + m*m) // soft down-weight far from 1 g
	}
	// Wrap the gravity-referenced angles to (−180°, 180°] so sustained
	// tumbling cannot wind the estimate up indefinitely (yaw is left
	// unwrapped: consumers use window-relative yaw, and wrapping would
	// inject ±360° steps into the difference).
	f.pitch = wrap180((1-w)*gp + w*ap)
	f.roll = wrap180((1-w)*gr + w*ar)
	return Vec3{f.pitch, f.roll, f.yaw}
}

// wrap180 maps an angle in degrees to (−180, 180].
//
//fallvet:hotpath
func wrap180(a float64) float64 {
	// math.Mod costs ~10× the comparisons on the scoring hot path, and
	// incremental fusion keeps angles well inside one turn. fmod is
	// exact and returns a unchanged for |a| < 360, so skipping it there
	// is bit-identical; NaN falls through (both comparisons are false)
	// and still propagates via Mod.
	if a >= 360 || a <= -360 {
		a = math.Mod(a, 360)
	} else if a != a {
		return a
	}
	if a > 180 {
		a -= 360
	} else if a <= -180 {
		a += 360
	}
	return a
}

// Annotate runs the fusion over a full trial of acc/gyro samples,
// filling in the Euler channels in place. It resets the filter first.
func (f *Fusion) Annotate(samples []Sample) {
	f.Reset()
	for i := range samples {
		samples[i].Euler = f.Update(samples[i].Acc, samples[i].Gyro)
	}
}
