package imu

import (
	"fmt"
	"math"
)

// Mat3 is a 3×3 rotation (or general linear) matrix in row-major order.
type Mat3 [3][3]float64

// Identity3 returns the identity matrix.
func Identity3() Mat3 {
	return Mat3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
}

// Apply returns M·v.
func (m Mat3) Apply(v Vec3) Vec3 {
	return Vec3{
		m[0][0]*v.X + m[0][1]*v.Y + m[0][2]*v.Z,
		m[1][0]*v.X + m[1][1]*v.Y + m[1][2]*v.Z,
		m[2][0]*v.X + m[2][1]*v.Y + m[2][2]*v.Z,
	}
}

// Mul returns the matrix product m·o.
func (m Mat3) Mul(o Mat3) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += m[i][k] * o[k][j]
			}
			r[i][j] = s
		}
	}
	return r
}

// Transpose returns mᵀ (the inverse for rotation matrices).
func (m Mat3) Transpose() Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r[i][j] = m[j][i]
		}
	}
	return r
}

// Det returns the determinant.
func (m Mat3) Det() float64 {
	return m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
		m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
		m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
}

// Rodrigues returns the rotation matrix for a rotation of angle
// radians about the given axis, via Rodrigues' rotation formula
//
//	R = I + sinθ·K + (1−cosθ)·K²
//
// where K is the cross-product matrix of the normalised axis. This is
// the construction the paper uses to align the KFall sensor
// orientation with the self-collected dataset's.
func Rodrigues(axis Vec3, angle float64) Mat3 {
	u := axis.Normalize()
	if u.Norm() == 0 {
		return Identity3()
	}
	s, c := math.Sin(angle), math.Cos(angle)
	t := 1 - c
	return Mat3{
		{c + u.X*u.X*t, u.X*u.Y*t - u.Z*s, u.X*u.Z*t + u.Y*s},
		{u.Y*u.X*t + u.Z*s, c + u.Y*u.Y*t, u.Y*u.Z*t - u.X*s},
		{u.Z*u.X*t - u.Y*s, u.Z*u.Y*t + u.X*s, c + u.Z*u.Z*t},
	}
}

// RotationBetween returns the rotation matrix that takes unit-ish
// vector a onto unit-ish vector b (the minimal-angle rotation), again
// via Rodrigues' formula: axis = a×b, angle = atan2(|a×b|, a·b).
// It returns an error when a or b is (near) zero, and handles the
// anti-parallel case by picking an arbitrary perpendicular axis.
func RotationBetween(a, b Vec3) (Mat3, error) {
	an, bn := a.Normalize(), b.Normalize()
	if an.Norm() == 0 || bn.Norm() == 0 {
		return Identity3(), fmt.Errorf("imu: RotationBetween needs non-zero vectors")
	}
	cross := an.Cross(bn)
	dot := an.Dot(bn)
	sin := cross.Norm()
	if sin < 1e-12 {
		if dot > 0 {
			return Identity3(), nil // already aligned
		}
		// Anti-parallel: rotate π about any axis ⊥ a.
		perp := an.Cross(Vec3{1, 0, 0})
		if perp.Norm() < 1e-6 {
			perp = an.Cross(Vec3{0, 1, 0})
		}
		return Rodrigues(perp, math.Pi), nil
	}
	return Rodrigues(cross, math.Atan2(sin, dot)), nil
}

// Rotate re-orients the inertial channels of a sample: acceleration
// and angular rate rotate as vectors. Euler angles are frame-relative
// and are expected to be recomputed by sensor fusion after rotation,
// so they are passed through unchanged here.
func (m Mat3) Rotate(s Sample) Sample {
	return Sample{
		Acc:   m.Apply(s.Acc),
		Gyro:  m.Apply(s.Gyro),
		Euler: s.Euler,
	}
}
