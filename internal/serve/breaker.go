package serve

import (
	"time"

	"repro/internal/cascade"
)

// breaker is the per-session latency circuit breaker. It keeps a
// sliding window of decision latencies, estimates the p99, and maps
// sustained pressure against the decision deadline onto a tier
// ceiling: level 0 is unconstrained (TierPrimary ceiling — no cap),
// level 1 caps the cascade at the accelerometer-only CNN, level 2 at
// the threshold floor. Demotion is immediate — a session close to the
// 150 ms airbag budget must get cheaper now — while promotion needs
// BreakerHold consecutive calm decisions, so the ceiling does not
// flap around the trip point.
//
// The breaker is owned by the session worker; it is not concurrency-
// safe on its own.
type breaker struct {
	window  []time.Duration
	scratch []float64
	pos, n  int
	level   int
	calm    int
}

func newBreaker(window int) breaker {
	return breaker{
		window:  make([]time.Duration, window),
		scratch: make([]float64, 0, window),
	}
}

// ceiling maps a breaker level to the cascade tier ceiling it imposes.
func breakerCeiling(level int) cascade.Tier {
	switch level {
	case 0:
		return cascade.TierPrimary
	case 1:
		return cascade.TierFallback
	default:
		return cascade.TierThreshold
	}
}

// p99 computes the 99th-percentile latency over the current window.
// The window is small (tens of entries) and the scratch buffer is
// reused, so an in-place insertion sort keeps this allocation-free on
// the serving path.
func (b *breaker) p99() time.Duration {
	b.scratch = b.scratch[:0]
	for i := 0; i < b.n; i++ {
		b.scratch = append(b.scratch, float64(b.window[i]))
	}
	for i := 1; i < len(b.scratch); i++ {
		v := b.scratch[i]
		j := i - 1
		for j >= 0 && b.scratch[j] > v {
			b.scratch[j+1] = b.scratch[j]
			j--
		}
		b.scratch[j+1] = v
	}
	idx := (99*len(b.scratch) + 99) / 100 // ceil(0.99·n)
	if idx > len(b.scratch) {
		idx = len(b.scratch)
	}
	return time.Duration(b.scratch[idx-1])
}

// observe records one decision latency and returns the (possibly
// changed) breaker level. The level only moves once at least half the
// window is populated, so a cold session is not tripped by its first
// outlier.
func (b *breaker) observe(lat, deadline time.Duration, trip, clear float64, hold int) (level int, changed bool) {
	b.window[b.pos] = lat
	b.pos = (b.pos + 1) % len(b.window)
	if b.n < len(b.window) {
		b.n++
	}
	if b.n < len(b.window)/2 {
		return b.level, false
	}
	p := float64(b.p99())
	d := float64(deadline)
	switch {
	case p >= trip*d && b.level < 2:
		b.level++
		b.calm = 0
		return b.level, true
	case p <= clear*d && b.level > 0:
		b.calm++
		if b.calm >= hold {
			b.level--
			b.calm = 0
			return b.level, true
		}
	default:
		b.calm = 0
	}
	return b.level, false
}
