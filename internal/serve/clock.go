package serve

import (
	"sync/atomic"
	"time"
)

// VirtualClock is a deterministic clock for tests and the chaos soak:
// time advances only when the harness says so, so deadline accounting
// and breaker behaviour are reproducible sample-for-sample across
// runs and worker counts. Now is safe to call from any goroutine;
// Advance publishes atomically.
type VirtualClock struct {
	nanos atomic.Int64
}

// NewVirtualClock returns a clock reading the epoch.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now returns the current virtual instant.
func (c *VirtualClock) Now() time.Time {
	return time.Unix(0, c.nanos.Load())
}

// Advance moves the clock forward by d (negative d is ignored).
func (c *VirtualClock) Advance(d time.Duration) {
	if d > 0 {
		c.nanos.Add(int64(d))
	}
}
