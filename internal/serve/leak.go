package serve

import (
	"fmt"
	"runtime"
	"time"
)

// Goroutine leak detection, stdlib-only. Every serve test and the
// chaos soak bracket their work with StartLeakCheck / Check: a
// runtime that sheds sessions, restarts crashed workers and tears
// down under load must leave exactly the goroutines it found.

// Leak is a goroutine-count baseline captured before the work under
// test.
type Leak struct {
	baseline int
}

// StartLeakCheck snapshots the current goroutine count. Call it
// before starting the runtime under test.
func StartLeakCheck() Leak {
	// Let goroutines from any previous test settle first.
	runtime.Gosched()
	return Leak{baseline: runtime.NumGoroutine()}
}

// Check verifies the goroutine count has returned to the baseline.
// Exiting goroutines are invisible to the scheduler for a short
// window after their work completes, so the check retries with small
// sleeps before declaring a leak; on failure the error carries a full
// stack dump of every live goroutine for diagnosis.
func (l Leak) Check() error {
	const (
		retries = 50
		pause   = 10 * time.Millisecond
	)
	n := 0
	for i := 0; i < retries; i++ {
		n = runtime.NumGoroutine()
		if n <= l.baseline {
			return nil
		}
		time.Sleep(pause)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	return fmt.Errorf("goroutine leak: %d live, baseline %d; stacks:\n%s",
		n, l.baseline, buf)
}
