package serve

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/cascade"
	"repro/internal/imu"
	"repro/internal/report"
	"repro/internal/synth"
)

// Chaos soak — the serving runtime's acceptance harness. It drives N
// concurrent synthetic IMU streams, each with a fall mid-stream,
// through one Runtime while injecting the failure modes the runtime
// exists to absorb:
//
//   - panic     a one-shot pipeline panic in the middle of the fall;
//     the session must recover by snapshot restore + replay with a
//     decision stream bit-identical to an uninterrupted reference.
//   - burst     the producer outruns the consumer past the ingress
//     ring; shed-oldest must convert overload to missing samples with
//     exact accounting and no alignment skew.
//   - stall     the pipeline takes 200 virtual ms per sample; the
//     latency breaker must demote the tier ceiling to the floor and
//     every decision counts a missed deadline.
//   - jitter    bursty delivery with real sensor gaps.
//   - crashloop a fault that reproduces on every replay; the session
//     must exhaust MaxRestarts and be shed without touching its
//     neighbours or leaking its worker.
//
// Each session owns a private VirtualClock, so deadline and breaker
// accounting are deterministic per session regardless of scheduling;
// every number in the report is bit-stable across runs and worker
// interleavings. SoakReport.Check encodes the acceptance criteria.

// Soak profile names.
const (
	ProfNormal    = "normal"
	ProfJitter    = "jitter"
	ProfBurst     = "burst"
	ProfStall     = "stall"
	ProfPanic     = "panic"
	ProfCrashloop = "crashloop"
)

// SoakConfig sizes the chaos soak.
type SoakConfig struct {
	// Sessions is the number of concurrent streams.
	Sessions int
	// Samples is the raw per-stream length (rounded down to whole
	// rounds).
	Samples int
	// Panics is how many sessions get a one-shot mid-fall panic.
	Panics int
	// Crashloops is how many sessions get an unrecoverable fault
	// (default: 1 when Sessions >= 8, else 0; -1 forces 0).
	Crashloops int
	// Seed drives the per-session stream phases and jitter schedules.
	Seed int64
	// NewPipeline builds one detector pipeline per session (plus one
	// reference per compared session).
	NewPipeline func() (Pipeline, error)
	// Background, when non-nil, supplies each session's wear stream
	// (the CLIs feed internal/synth sessions here); it must be
	// deterministic for a given id. The harness splices the canonical
	// fall signature over [fallAt, fallAt+60), so trigger and
	// panic-injection timing stay under its control whatever the
	// background does. Nil uses a built-in quiet-wear sinusoid.
	Background func(id int) func(pos int) (acc, gyro imu.Vec3)
	// Log, when non-nil, receives the runtime's restart/shed lines.
	Log func(format string, args ...any)
}

// SoakSession is one session's outcome.
type SoakSession struct {
	ID       int
	Profile  string
	State    State
	Breaker  int
	Counters Counters
	// Triggered reports the latched fall trigger.
	Triggered bool
	// Compared is true when the session's decision stream was checked
	// against an uninterrupted single-threaded reference; Identical
	// is the result.
	Compared  bool
	Identical bool
}

// SoakReport is the full soak outcome.
type SoakReport struct {
	Sessions  []SoakSession
	Totals    Counters
	States    [4]int
	Rounds    int
	PerStream int // raw samples actually pushed per normal stream
	// HeapGrowthBytes is heap growth across the soak after GC; bound
	// it, do not print it verbatim (GC timing is not deterministic).
	HeapGrowthBytes int64
	// LeakErr is the goroutine-leak check outcome ("" = clean).
	LeakErr string
}

// soak wiring internals -----------------------------------------------

// slowPipe models a stalled consumer: every data sample costs 200
// virtual ms on the session's private clock.
type slowPipe struct {
	Pipeline
	clk  *VirtualClock
	cost time.Duration
}

func (p *slowPipe) Push(acc, gyro imu.Vec3) cascade.Decision {
	p.clk.Advance(p.cost)
	return p.Pipeline.Push(acc, gyro)
}

// gatePipe rendezvous with the harness on every data push, so a burst
// test can hold the worker mid-entry while the ingress ring
// deterministically overflows.
type gatePipe struct {
	Pipeline
	arrived chan struct{}
	release chan struct{}
}

func (p *gatePipe) Push(acc, gyro imu.Vec3) cascade.Decision {
	p.arrived <- struct{}{}
	<-p.release
	return p.Pipeline.Push(acc, gyro)
}

// soakStream returns the deterministic per-session sample generator:
// background wear (Background when supplied, a session-phased quiet
// sinusoid otherwise) with one canonical fall signature (free fall,
// then impact) spliced in at fallAt.
func soakStream(cfg SoakConfig, id, fallAt int) func(pos int) (imu.Vec3, imu.Vec3) {
	bg := func(pos int) (imu.Vec3, imu.Vec3) {
		phase := float64((cfg.Seed+int64(id)*7919)%977) * 0.013
		ph := float64(pos)*0.13 + phase
		return imu.Vec3{X: 0.05 * math.Sin(ph), Z: 1 + 0.02*math.Cos(ph)},
			imu.Vec3{X: 3 * math.Sin(ph), Y: 2 * math.Cos(ph)}
	}
	if cfg.Background != nil {
		bg = cfg.Background(id)
	}
	return func(pos int) (imu.Vec3, imu.Vec3) {
		k := pos - fallAt
		if k >= 0 && k < 60 {
			if k < 45 {
				return imu.Vec3{Z: 0.04}, imu.Vec3{X: 280, Y: 120}
			}
			return imu.Vec3{Z: 5.5}, imu.Vec3{X: 40}
		}
		return bg(pos)
	}
}

// assignProfiles spreads the chaos deterministically: panic sessions
// evenly across the fleet, crashloops at the tail, the rest cycling
// normal / jitter / burst / stall.
func assignProfiles(n, panics, crashloops int) []string {
	if panics > n-crashloops {
		panics = n - crashloops
	}
	prof := make([]string, n)
	cycle := []string{ProfNormal, ProfJitter, ProfBurst, ProfStall}
	for i := range prof {
		prof[i] = cycle[i%len(cycle)]
	}
	for i := 0; i < crashloops && i < n; i++ {
		prof[n-1-i] = ProfCrashloop
	}
	for i := 0; i < panics && i < n; i++ {
		idx := i * n / maxInt(panics, 1)
		for prof[idx] == ProfPanic || prof[idx] == ProfCrashloop {
			idx = (idx + 1) % n
		}
		prof[idx] = ProfPanic
	}
	return prof
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SynthBackground builds a SoakConfig.Background from internal/synth
// continuous-wear sessions: one seed-deterministic ADL-only session
// per stream id (the harness splices its own fall signature), looped
// if the soak outruns it. samples sizes the generated stream.
func SynthBackground(seed int64, samples int) func(id int) func(int) (imu.Vec3, imu.Vec3) {
	minutes := float64(samples)/6000 + 0.05 // 100 Hz, with headroom
	return func(id int) func(int) (imu.Vec3, imu.Vec3) {
		rng := rand.New(rand.NewSource(seed*9176867 + int64(id)))
		subj := synth.NewSubject(id+1, rng)
		s, err := synth.GenerateSession(subj,
			synth.SessionConfig{Minutes: minutes, FallRate: -1}, rng)
		if err != nil || len(s.Trial.Samples) == 0 {
			// The all-ADL vocabulary cannot fail to generate; fall
			// back to a flat stream rather than poison the soak.
			return func(int) (imu.Vec3, imu.Vec3) {
				return imu.Vec3{Z: 1}, imu.Vec3{}
			}
		}
		wear := s.Trial.Samples
		return func(pos int) (imu.Vec3, imu.Vec3) {
			smp := wear[pos%len(wear)]
			return smp.Acc, smp.Gyro
		}
	}
}

// RunSoak executes the chaos soak and returns the report. Every
// reported number is deterministic for a given config.
func RunSoak(cfg SoakConfig) (*SoakReport, error) {
	if cfg.Sessions <= 0 || cfg.Samples <= 0 {
		return nil, fmt.Errorf("soak: Sessions and Samples must be positive")
	}
	if cfg.NewPipeline == nil {
		return nil, fmt.Errorf("soak: NewPipeline is required")
	}
	const (
		roundLen = 30
		queueLen = 32
		burstLen = 2 * queueLen // overflow rounds push past the ring
		sampleMS = 10           // 100 Hz virtual cadence
		maxRst   = 3
	)
	n := cfg.Sessions
	crashloops := cfg.Crashloops
	if crashloops == 0 && n >= 8 {
		crashloops = 1
	}
	if crashloops < 0 {
		crashloops = 0
	}
	profiles := assignProfiles(n, cfg.Panics, crashloops)
	rounds := cfg.Samples / roundLen
	if rounds < 4 {
		return nil, fmt.Errorf("soak: Samples %d too short for %d-sample rounds", cfg.Samples, roundLen)
	}
	perStream := rounds * roundLen
	fallAt := perStream / 2

	// Fault plan, indexed by session: each slot is only ever touched
	// by that session's worker, so no locking is needed in the hook.
	planned := make([]int, n)
	persistent := make([]bool, n)
	fired := make([]bool, n)
	for id := range planned {
		planned[id] = -1
		switch profiles[id] {
		case ProfPanic:
			planned[id] = fallAt + 15 // kill mid-fall
		case ProfCrashloop:
			planned[id] = fallAt
			persistent[id] = true
		}
	}

	leak := StartLeakCheck()
	rt := New(Config{
		QueueLen:       queueLen,
		OutboxLen:      64,
		SnapshotEvery:  64,
		MaxRestarts:    maxRst,
		RestartBackoff: 100 * time.Microsecond,
		Deadline:       150 * time.Millisecond,
		// The breaker only sees evaluated decisions (~1 per window
		// hop); a small window lets stall sessions hit the floor
		// within a short soak.
		BreakerWindow: 16,
		Log:           cfg.Log,
		PushHook: func(session int, pos uint64) {
			at := planned[session]
			if at < 0 {
				return
			}
			if persistent[session] {
				if pos >= uint64(at) {
					panic(fmt.Sprintf("soak: unrecoverable fault in session %d at %d", session, pos))
				}
				return
			}
			if !fired[session] && pos == uint64(at) {
				fired[session] = true
				panic(fmt.Sprintf("soak: injected panic in session %d at %d", session, pos))
			}
		},
	})

	sessions := make([]*Session, n)
	clocks := make([]*VirtualClock, n)
	gates := make([]*gatePipe, n)
	gens := make([]func(int) (imu.Vec3, imu.Vec3), n)
	jitterRng := make([]*rand.Rand, n)
	pos := make([]int, n)
	acc := make([][]cascade.Decision, n)
	for id := 0; id < n; id++ {
		inner, err := cfg.NewPipeline()
		if err != nil {
			rt.Close()
			return nil, err
		}
		clk := NewVirtualClock()
		clocks[id] = clk
		var pipe Pipeline = inner
		switch profiles[id] {
		case ProfStall:
			pipe = &slowPipe{Pipeline: inner, clk: clk, cost: 200 * time.Millisecond}
		case ProfBurst:
			g := &gatePipe{Pipeline: inner, arrived: make(chan struct{}), release: make(chan struct{})}
			gates[id] = g
			pipe = g
		}
		sessions[id] = rt.OpenWith(pipe, func(c Config) Config { c.Now = clk.Now; return c })
		gens[id] = soakStream(cfg, id, fallAt)
		jitterRng[id] = rand.New(rand.NewSource(cfg.Seed*1000003 + int64(id)))
	}

	var msBefore runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)

	for r := 0; r < rounds; r++ {
		// Phase 1: concurrent profiles enqueue their whole round batch;
		// the workers chew in parallel.
		for id := 0; id < n; id++ {
			s, gen := sessions[id], gens[id]
			switch profiles[id] {
			case ProfNormal, ProfPanic:
				for i := 0; i < roundLen; i++ {
					a, g := gen(pos[id])
					s.Push(a, g)
					pos[id]++
				}
			case ProfJitter:
				for i := 0; i < roundLen; {
					inFall := pos[id] >= fallAt-10 && pos[id] < fallAt+80
					if !inFall && jitterRng[id].Float64() < 0.12 {
						gap := 1 + jitterRng[id].Intn(4)
						if gap > roundLen-i {
							gap = roundLen - i
						}
						s.PushMissing(gap)
						pos[id] += gap
						i += gap
						continue
					}
					a, g := gen(pos[id])
					s.Push(a, g)
					pos[id]++
					i++
				}
			}
		}
		// Phase 2: lock-step profiles (their accounting depends on the
		// exact interleaving, so the harness serialises it). The
		// concurrent workers from phase 1 keep running meanwhile.
		for id := 0; id < n; id++ {
			s, gen := sessions[id], gens[id]
			switch profiles[id] {
			case ProfStall, ProfCrashloop:
				for i := 0; i < roundLen; i++ {
					a, g := gen(pos[id])
					s.Push(a, g)
					pos[id]++
					s.Quiesce()
				}
			case ProfBurst:
				batch := roundLen
				if r%4 == 3 {
					batch = burstLen
				}
				burstRound(s, gates[id], gen, &pos[id], batch, queueLen)
			}
		}
		rt.Quiesce()
		for id := 0; id < n; id++ {
			acc[id] = sessions[id].DrainDecisions(acc[id])
			if profiles[id] != ProfStall {
				clocks[id].Advance(roundLen * sampleMS * time.Millisecond)
			}
		}
	}
	rt.Quiesce()
	for id := 0; id < n; id++ {
		acc[id] = sessions[id].DrainDecisions(acc[id])
	}

	rep := &SoakReport{Rounds: rounds, PerStream: perStream}
	rep.States = rt.StateCounts()
	rep.Totals = rt.Counters()
	for id := 0; id < n; id++ {
		ss := SoakSession{
			ID:       id,
			Profile:  profiles[id],
			State:    sessions[id].State(),
			Breaker:  sessions[id].BreakerLevel(),
			Counters: sessions[id].Counters(),
		}
		_, ss.Triggered = sessions[id].TakeTrigger()
		if profiles[id] == ProfNormal || profiles[id] == ProfPanic {
			ss.Compared = true
			same, err := decisionsMatchReference(cfg, gens[id], perStream, acc[id])
			if err != nil {
				rt.Close()
				return nil, err
			}
			ss.Identical = same
		}
		rep.Sessions = append(rep.Sessions, ss)
	}

	rt.Close()
	var msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msAfter)
	rep.HeapGrowthBytes = int64(msAfter.HeapAlloc) - int64(msBefore.HeapAlloc)
	if err := leak.Check(); err != nil {
		rep.LeakErr = err.Error()
	}
	return rep, nil
}

// burstRound drives one gated burst: the first entry holds the worker
// at its rendezvous while the rest of the batch floods the ring, so
// exactly batch-1-queueLen raw samples shed, every run.
func burstRound(s *Session, g *gatePipe, gen func(int) (imu.Vec3, imu.Vec3), pos *int, batch, queueLen int) {
	a, gy := gen(*pos)
	s.Push(a, gy)
	*pos++
	<-g.arrived // worker is inside the first entry's Push
	for i := 1; i < batch; i++ {
		a, gy := gen(*pos)
		s.Push(a, gy)
		*pos++
	}
	g.release <- struct{}{}
	kept := batch - 1
	if kept > queueLen {
		kept = queueLen
	}
	for i := 0; i < kept; i++ {
		<-g.arrived
		g.release <- struct{}{}
	}
}

// decisionsMatchReference replays the session's stream through a
// fresh pipeline, single-threaded and uninterrupted, and compares the
// evaluated decision sequences — the soak's bit-identity oracle for
// panic recovery.
func decisionsMatchReference(cfg SoakConfig, gen func(int) (imu.Vec3, imu.Vec3), total int, got []cascade.Decision) (bool, error) {
	ref, err := cfg.NewPipeline()
	if err != nil {
		return false, err
	}
	var want []cascade.Decision
	for i := 0; i < total; i++ {
		a, g := gen(i)
		if d := ref.Push(a, g); d.Evaluated {
			want = append(want, d)
		}
	}
	if len(want) != len(got) {
		return false, nil
	}
	for i := range want {
		if want[i] != got[i] {
			return false, nil
		}
	}
	return true, nil
}

// WriteTable renders the per-session outcome grid plus the acceptance
// verdicts. Every table cell is deterministic for a given config;
// nondeterministic quantities (heap bytes) appear only as PASS/FAIL
// verdict lines, so results files stay byte-stable across runs.
func (r *SoakReport) WriteTable(w io.Writer) {
	tb := report.Table{
		Title: fmt.Sprintf("Chaos soak: %d sessions x %d samples (%d rounds)",
			len(r.Sessions), r.PerStream, r.Rounds),
		Headers: []string{"Sess", "Profile", "State", "Brk", "Enq", "Shed",
			"Missed", "Decis", "Panics", "Rst", "Trig", "Identical"},
	}
	for _, s := range r.Sessions {
		ident := "-"
		if s.Compared {
			ident = fmt.Sprintf("%v", s.Identical)
		}
		c := s.Counters
		tb.AddRow(s.ID, s.Profile, s.State.String(), s.Breaker,
			c.Enqueued, c.Shed, c.DeadlineMissed, c.Decisions,
			c.Panics, c.Restarts, s.Triggered, ident)
	}
	tb.Fprint(w)
	fmt.Fprintf(w, "\nstates: healthy=%d degraded=%d faulted=%d shed=%d\n",
		r.States[StateHealthy], r.States[StateDegraded], r.States[StateFaulted], r.States[StateShed])
	t := r.Totals
	fmt.Fprintf(w, "totals: enqueued=%d shed=%d missed=%d decisions=%d triggers=%d panics=%d restarts=%d snapshots=%d\n",
		t.Enqueued, t.Shed, t.DeadlineMissed, t.Decisions, t.Triggers, t.Panics, t.Restarts, t.Snapshots)
	verdict := func(name string, ok bool) {
		v := "PASS"
		if !ok {
			v = "FAIL"
		}
		fmt.Fprintf(w, "%-28s %s\n", name, v)
	}
	errs := r.Check()
	verdict("goroutine-leak check", r.LeakErr == "")
	verdict("heap growth bounded", r.HeapGrowthBytes <= 256<<20)
	verdict("soak acceptance (all)", len(errs) == 0)
	for _, e := range errs {
		fmt.Fprintf(w, "  FAIL %v\n", e)
	}
}

// Check encodes the soak acceptance criteria. It returns one error
// per violated criterion (nil slice = all pass):
//
//   - healthy (un-shed, un-stalled) sessions miss zero deadlines
//   - normal and panic sessions' decision streams are bit-identical
//     to the uninterrupted reference, and their falls trigger
//   - every injected panic is recovered by exactly one restore+replay
//   - burst sessions shed (and only shed — no crash, no miss)
//   - stall sessions are demoted to the floor by the breaker
//   - crashloop sessions exhaust MaxRestarts and end shed
//   - no goroutine leaks; heap growth stays bounded
func (r *SoakReport) Check() []error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	for _, s := range r.Sessions {
		c := s.Counters
		switch s.Profile {
		case ProfNormal, ProfJitter, ProfPanic:
			if c.DeadlineMissed != 0 {
				fail("session %d (%s): %d missed deadlines, want 0", s.ID, s.Profile, c.DeadlineMissed)
			}
			if c.Shed != 0 {
				fail("session %d (%s): %d samples shed, want 0", s.ID, s.Profile, c.Shed)
			}
			if s.State == StateShed {
				fail("session %d (%s): shed", s.ID, s.Profile)
			}
			if !s.Triggered {
				fail("session %d (%s): fall did not trigger", s.ID, s.Profile)
			}
		}
		switch s.Profile {
		case ProfNormal:
			if c.Panics != 0 {
				fail("session %d (normal): %d panics", s.ID, c.Panics)
			}
		case ProfPanic:
			if c.Panics != 1 || c.Restarts != 1 {
				fail("session %d (panic): Panics/Restarts = %d/%d, want 1/1", s.ID, c.Panics, c.Restarts)
			}
		case ProfBurst:
			if c.Shed == 0 {
				fail("session %d (burst): never shed under overflow", s.ID)
			}
			if c.Panics != 0 || c.DeadlineMissed != 0 {
				fail("session %d (burst): Panics/Missed = %d/%d, want 0/0", s.ID, c.Panics, c.DeadlineMissed)
			}
			if s.State == StateShed {
				fail("session %d (burst): shed entirely, want load-shedding only", s.ID)
			}
		case ProfStall:
			if s.Breaker != 2 {
				fail("session %d (stall): breaker level %d, want 2 (floor)", s.ID, s.Breaker)
			}
			if c.DeadlineMissed == 0 {
				fail("session %d (stall): no missed deadlines at 200 ms/sample", s.ID)
			}
		case ProfCrashloop:
			if s.State != StateShed {
				fail("session %d (crashloop): state %v, want shed", s.ID, s.State)
			}
			if c.Restarts == 0 {
				fail("session %d (crashloop): shed without attempting restarts", s.ID)
			}
		}
		if s.Compared && !s.Identical {
			fail("session %d (%s): decision stream differs from the uninterrupted reference", s.ID, s.Profile)
		}
	}
	if r.LeakErr != "" {
		fail("goroutine leak: %s", r.LeakErr)
	}
	const heapBound = 256 << 20
	if r.HeapGrowthBytes > heapBound {
		fail("heap grew %d bytes across the soak, bound %d", r.HeapGrowthBytes, int64(heapBound))
	}
	return errs
}
