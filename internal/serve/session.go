package serve

import (
	"bytes"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cascade"
	"repro/internal/edge"
	"repro/internal/guard"
	"repro/internal/imu"
)

// Session is one supervised stream: a bounded ingress ring feeding a
// dedicated worker goroutine that drives the session's Pipeline.
// Producers push samples from any goroutine and never block; the
// worker owns the pipeline exclusively, so a panic inside it is
// confined to this session and recovered by snapshot restore + replay.
type Session struct {
	// ID is the runtime-assigned index, stable for the session's
	// lifetime; the PushHook receives it.
	ID int

	cfg Config
	p   Pipeline

	mu   sync.Mutex
	idle *sync.Cond // broadcast on enqueue and on idle/exit transitions
	//fallvet:derived in-memory ingress ring: a restore replays the log and the ring drains live, in-process
	q       ring
	closing bool //fallvet:derived worker lifecycle flag, meaningless across a restore
	busy    bool //fallvet:derived worker lifecycle flag, meaningless across a restore
	done    bool //fallvet:derived worker lifecycle flag (worker exited), meaningless across a restore

	state atomic.Int32
	level atomic.Int32 // breaker level, mirrored for lock-free reads

	// pos is the raw stream position: samples fully applied and
	// emitted. Written only by the worker, read from anywhere.
	pos atomic.Uint64

	// Replay state, owned by the worker goroutine (never locked).
	snapImg   []byte // last good snapshot (nil before the first)
	snapSpare []byte // retired snapshot buffer, reused for the next
	snapPos   uint64 // pos at which snapImg was captured
	replayLog []entry
	sinceSnap int
	//fallvet:derived host-local latency history, rebuilt from live decision timings after a restore
	brk breaker

	outMu sync.Mutex
	//fallvet:derived outbox of already-delivered decisions; replay regenerates or deliberately drops them
	out []cascade.Decision
	//fallvet:derived latched trigger is re-latched by replay if it recurs; delivery state is host-local
	trig cascade.Decision
	//fallvet:derived latched trigger is re-latched by replay if it recurs; delivery state is host-local
	trigSet bool

	enqueued, shedN, deadlineMissed, decisions, triggers atomic.Int64
	panics, restarts, snapshots, outboxDropped           atomic.Int64

	exit chan struct{} // closed when the worker returns
}

// appliedOut is what one dequeued entry produced: the decision for
// the shed debt in front of it (if any), then the entry's own.
type appliedOut struct {
	shed    cascade.Decision
	hasShed bool
	main    cascade.Decision
}

func newSession(id int, p Pipeline, cfg Config) *Session {
	s := &Session{
		ID:   id,
		cfg:  cfg,
		p:    p,
		q:    newRing(cfg.QueueLen),
		out:  make([]cascade.Decision, 0, cfg.OutboxLen),
		brk:  newBreaker(cfg.BreakerWindow),
		exit: make(chan struct{}),
	}
	s.idle = sync.NewCond(&s.mu)
	if cfg.SnapshotEvery > 0 {
		s.replayLog = make([]entry, 0, cfg.SnapshotEvery)
	}
	go s.run()
	return s
}

// Push enqueues one sample. It never blocks: a full ring sheds its
// oldest entry (accounted as missing samples on the next drain).
// It returns false — and counts the sample as shed — once the session
// is closed or shed.
func (s *Session) Push(acc, gyro imu.Vec3) bool {
	return s.enqueue(entry{acc: acc, gyro: gyro}, 1)
}

// PushMissing enqueues a run of n samples the stream failed to
// deliver, with the same non-blocking contract as Push.
func (s *Session) PushMissing(n int) bool {
	if n <= 0 {
		return true
	}
	return s.enqueue(entry{missing: n}, n)
}

func (s *Session) enqueue(e entry, raw int) bool {
	s.mu.Lock()
	if s.closing || s.done {
		s.mu.Unlock()
		s.shedN.Add(int64(raw))
		return false
	}
	e.deadline = s.cfg.Now().Add(s.cfg.Deadline)
	shed := s.q.push(e)
	s.enqueued.Add(int64(raw))
	if shed > 0 {
		s.shedN.Add(int64(shed))
	}
	s.idle.Broadcast()
	s.mu.Unlock()
	return true
}

// run is the worker loop: drain the ring, apply entries under the
// crash barrier, exit when closed (after the backlog) or shed.
func (s *Session) run() {
	defer close(s.exit)
	for {
		s.mu.Lock()
		for s.q.n == 0 && !s.closing {
			s.idle.Wait()
		}
		if s.q.n == 0 { // closing, backlog drained
			s.done = true
			s.idle.Broadcast()
			s.mu.Unlock()
			return
		}
		e := s.q.pop()
		s.busy = true
		s.mu.Unlock()

		ok := s.applyEntry(e)

		s.mu.Lock()
		s.busy = false
		if !ok {
			// Restarts exhausted: shed the session, drop the backlog.
			s.setState(StateShed)
			s.closing = true
			s.done = true
			dropped := 0
			for s.q.n > 0 {
				dropped += s.q.pop().raw()
			}
			s.shedN.Add(int64(dropped))
			s.idle.Broadcast()
			s.mu.Unlock()
			return
		}
		if s.q.n == 0 {
			s.idle.Broadcast()
		}
		s.mu.Unlock()
	}
}

// applyEntry applies one entry with panic isolation. On panic it runs
// the restart protocol; false means the session must be shed.
func (s *Session) applyEntry(e entry) bool {
	start := s.cfg.Now()
	out, err := s.applyOnce(e, s.pos.Load())
	restarted := false
	if err != nil {
		s.panics.Add(1)
		s.setState(StateFaulted)
		s.logf("session %d: pipeline panic at sample %d: %v", s.ID, s.pos.Load(), err)
		out, err = s.restartWithBackoff(e)
		if err != nil {
			s.logf("session %d: shedding after %d failed restarts: %v",
				s.ID, s.cfg.MaxRestarts, err)
			return false
		}
		restarted = true
	}
	s.commit(e, out, start)
	if restarted && s.cfg.SnapshotEvery > 0 {
		// Re-anchor immediately so the fault window is never replayed
		// twice and the next crash restores past it.
		s.takeSnapshot()
	}
	return true
}

// applyOnce drives the pipeline for one entry under a recover
// barrier; a panic comes back as a *guard.PanicError with the stack.
func (s *Session) applyOnce(e entry, pos uint64) (out appliedOut, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &guard.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if h := s.cfg.PushHook; h != nil {
		h(s.ID, pos)
	}
	if e.shedBefore > 0 {
		out.shed = s.p.PushMissing(e.shedBefore)
		out.hasShed = true
	}
	if e.missing > 0 {
		out.main = s.p.PushMissing(e.missing)
	} else {
		out.main = s.p.Push(e.acc, e.gyro)
	}
	return out, nil
}

// restartWithBackoff runs the restore-and-replay protocol under
// guard.Run: up to MaxRestarts attempts with exponential backoff,
// each attempt restoring the last snapshot and replaying the log.
// Replay panics (a fault that reproduces deterministically) consume
// attempts and eventually surface as a *guard.ExhaustedError.
func (s *Session) restartWithBackoff(e entry) (appliedOut, error) {
	var out appliedOut
	gcfg := guard.Config{
		Attempts:  s.cfg.MaxRestarts,
		BaseDelay: s.cfg.RestartBackoff,
		MaxDelay:  s.cfg.RestartMaxDelay,
		Log:       s.cfg.Log,
	}
	err := guard.Run(gcfg, fmt.Sprintf("session-%d-restart", s.ID), func() error {
		s.restarts.Add(1)
		var rerr error
		out, rerr = s.restoreReplay(e)
		return rerr
	})
	return out, err
}

// restoreReplay rebuilds the pipeline to the exact state it had
// before the faulting entry: restore the last snapshot (or reset,
// when none exists yet), replay every logged entry with emission
// suppressed — consumers already saw those decisions — and finally
// re-apply the faulting entry for real. The replay fires PushHook at
// the historical positions, so a deterministic fault re-fires and
// consumes restart attempts instead of looping forever.
func (s *Session) restoreReplay(cur entry) (appliedOut, error) {
	if s.snapImg != nil {
		if err := s.p.RestoreFresh(bytes.NewReader(s.snapImg)); err != nil {
			return appliedOut{}, fmt.Errorf("session %d: snapshot restore: %w", s.ID, err)
		}
	} else {
		// No snapshot yet: the replay log (when snapshots are
		// enabled) still covers the whole history, so a reset plus
		// replay reconstructs the state; with snapshots disabled the
		// pipeline restarts cold and re-warms.
		s.p.Reset()
	}
	pos := s.snapPos
	for i := range s.replayLog {
		le := s.replayLog[i]
		if h := s.cfg.PushHook; h != nil {
			h(s.ID, pos)
		}
		if le.shedBefore > 0 {
			s.p.PushMissing(le.shedBefore)
		}
		if le.missing > 0 {
			s.p.PushMissing(le.missing)
		} else {
			s.p.Push(le.acc, le.gyro)
		}
		pos += uint64(le.raw())
	}
	return s.applyOnce(cur, s.pos.Load())
}

// commit publishes the outcome of a fully-applied entry: advance the
// stream position, log for replay, emit decisions, account the
// deadline, feed the breaker, refresh health, snapshot at cadence.
func (s *Session) commit(e entry, out appliedOut, start time.Time) {
	raw := e.raw()
	s.pos.Add(uint64(raw))
	if s.cfg.SnapshotEvery > 0 {
		s.replayLog = append(s.replayLog, e)
		s.sinceSnap += raw
	}
	now := s.cfg.Now()
	evaluated := out.main.Evaluated || (out.hasShed && out.shed.Evaluated)
	if out.hasShed {
		s.emit(out.shed)
	}
	s.emit(out.main)
	if evaluated {
		if now.After(e.deadline) {
			s.deadlineMissed.Add(1)
		}
		lvl, changed := s.brk.observe(now.Sub(start), s.cfg.Deadline,
			s.cfg.BreakerTrip, s.cfg.BreakerClear, s.cfg.BreakerHold)
		if changed {
			s.level.Store(int32(lvl))
			s.p.SetTierCeiling(breakerCeiling(lvl))
			s.logf("session %d: breaker level %d (tier ceiling %v)",
				s.ID, lvl, breakerCeiling(lvl))
		}
	}
	st := StateHealthy
	if s.level.Load() > 0 || out.main.Health != edge.HealthHealthy {
		st = StateDegraded
	}
	s.setState(st)
	if s.cfg.SnapshotEvery > 0 && s.sinceSnap >= s.cfg.SnapshotEvery {
		s.takeSnapshot()
	}
}

// emit appends an evaluated decision to the outbox (aging out the
// oldest when full) and latches the first trigger, which is never
// dropped: an airbag fire command must survive a slow consumer.
func (s *Session) emit(d cascade.Decision) {
	if !d.Evaluated {
		return
	}
	s.decisions.Add(1)
	if d.Triggered {
		s.triggers.Add(1)
	}
	s.outMu.Lock()
	if d.Triggered && !s.trigSet {
		s.trig, s.trigSet = d, true
	}
	if len(s.out) == cap(s.out) {
		copy(s.out, s.out[1:])
		s.out = s.out[:len(s.out)-1]
		s.outboxDropped.Add(1)
	}
	s.out = append(s.out, d)
	s.outMu.Unlock()
}

func (s *Session) takeSnapshot() {
	// Two buffers ping-pong: the pipeline serialises into the retired
	// one while the last good image stays intact in case it fails
	// mid-way, then the roles swap. Steady state allocates nothing —
	// this was the last per-checkpoint allocation on the push path.
	img, err := s.p.AppendSnapshot(s.snapSpare[:0])
	if err != nil {
		// Keep the previous snapshot and the (growing) log; the next
		// cadence point retries.
		s.logf("session %d: snapshot failed: %v", s.ID, err)
		return
	}
	s.snapImg, s.snapSpare = img, s.snapImg
	s.snapPos = s.pos.Load()
	s.replayLog = s.replayLog[:0]
	s.sinceSnap = 0
	s.snapshots.Add(1)
}

// setState updates the published state; StateShed is terminal.
func (s *Session) setState(st State) {
	if State(s.state.Load()) == StateShed {
		return
	}
	s.state.Store(int32(st))
}

func (s *Session) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log(format, args...)
	}
}

// State reports the session's supervised health.
func (s *Session) State() State { return State(s.state.Load()) }

// BreakerLevel reports the latency breaker's current level
// (0 = unconstrained, 1 = accel-CNN ceiling, 2 = threshold floor).
func (s *Session) BreakerLevel() int { return int(s.level.Load()) }

// Pos reports the raw stream position: samples fully applied,
// missing and shed runs included.
func (s *Session) Pos() uint64 { return s.pos.Load() }

// Counters snapshots the session's accounting. Safe from any
// goroutine, including while the worker is mid-entry.
func (s *Session) Counters() Counters {
	return Counters{
		Enqueued:       s.enqueued.Load(),
		Shed:           s.shedN.Load(),
		DeadlineMissed: s.deadlineMissed.Load(),
		Decisions:      s.decisions.Load(),
		Triggers:       s.triggers.Load(),
		Panics:         s.panics.Load(),
		Restarts:       s.restarts.Load(),
		Snapshots:      s.snapshots.Load(),
		OutboxDropped:  s.outboxDropped.Load(),
	}
}

// DrainDecisions appends the outbox to dst (oldest first) and clears
// it.
func (s *Session) DrainDecisions(dst []cascade.Decision) []cascade.Decision {
	s.outMu.Lock()
	dst = append(dst, s.out...)
	s.out = s.out[:0]
	s.outMu.Unlock()
	return dst
}

// TakeTrigger returns and clears the latched trigger decision.
func (s *Session) TakeTrigger() (cascade.Decision, bool) {
	s.outMu.Lock()
	d, ok := s.trig, s.trigSet
	s.trig, s.trigSet = cascade.Decision{}, false
	s.outMu.Unlock()
	return d, ok
}

// Quiesce blocks until the session is idle: ingress drained and the
// worker between entries (or exited). It does not stop the session.
func (s *Session) Quiesce() {
	s.mu.Lock()
	for !s.done && (s.q.n > 0 || s.busy) {
		s.idle.Wait()
	}
	s.mu.Unlock()
}

// Close stops the session after draining its backlog and waits for
// the worker to exit. Idempotent.
func (s *Session) Close() {
	s.mu.Lock()
	s.closing = true
	s.idle.Broadcast()
	s.mu.Unlock()
	<-s.exit
}
