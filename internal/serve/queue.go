package serve

import (
	"time"

	"repro/internal/imu"
)

// entry is one ingress ring slot: a single data sample or a run of
// missing samples, plus the shed debt accumulated in front of it.
type entry struct {
	//fallvet:derived replay-log entry held in memory between snapshots and replayed live; never serialised
	acc, gyro imu.Vec3
	// missing, when > 0, makes this a gap entry of that many raw
	// samples; acc/gyro are unused.
	//fallvet:derived replay-log entry held in memory between snapshots and replayed live; never serialised
	missing int
	// shedBefore is how many raw samples were shed from the ring
	// immediately before this entry. The worker converts the debt to
	// PushMissing(shedBefore) at drain, so the pipeline sees shed
	// load exactly as a sensor dropout of the same length.
	//fallvet:derived replay-log entry held in memory between snapshots and replayed live; never serialised
	shedBefore int
	// deadline is when this entry's decision is due.
	//fallvet:derived replay-log entry held in memory between snapshots and replayed live; never serialised
	deadline time.Time
}

// raw is the number of raw stream samples this entry advances the
// pipeline by, shed debt included.
func (e entry) raw() int {
	if e.missing > 0 {
		return e.shedBefore + e.missing
	}
	return e.shedBefore + 1
}

// ring is the fixed-capacity ingress queue. Not self-locking: the
// session's mutex guards it.
type ring struct {
	buf  []entry
	head int // index of oldest entry
	n    int // occupied slots
}

func newRing(capacity int) ring {
	return ring{buf: make([]entry, capacity)}
}

// push appends e, shedding the oldest entry if the ring is full.
// The shed entry's raw samples fold into the next-oldest entry's
// shedBefore (or into e itself when the ring holds a single slot), so
// no stream position is ever silently lost — shed data degrades to
// missing data, never to skewed alignment. Returns the number of raw
// samples newly shed (0 when the ring had room); debt the shed entry
// was already carrying is folded forward but not counted again.
func (r *ring) push(e entry) int {
	shed := 0
	if r.n == len(r.buf) {
		old := r.buf[r.head]
		shed = old.raw() - old.shedBefore
		r.head = (r.head + 1) % len(r.buf)
		r.n--
		if r.n > 0 {
			r.buf[r.head].shedBefore += old.raw()
		} else {
			e.shedBefore += old.raw()
		}
	}
	r.buf[(r.head+r.n)%len(r.buf)] = e
	r.n++
	return shed
}

// pop removes and returns the oldest entry; the caller must check
// r.n > 0 first.
func (r *ring) pop() entry {
	e := r.buf[r.head]
	r.buf[r.head] = entry{}
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return e
}
