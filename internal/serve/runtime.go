package serve

import "sync"

// Runtime is the global supervisor: it owns the session table, hands
// out crash-isolated sessions, and aggregates their health and
// accounting for operators. All methods are safe for concurrent use.
type Runtime struct {
	cfg Config

	mu       sync.Mutex
	sessions []*Session
	closed   bool
}

// New builds a runtime with cfg (zero fields get serving defaults,
// see Config).
func New(cfg Config) *Runtime {
	return &Runtime{cfg: cfg.withDefaults()}
}

// Config returns the effective configuration after defaulting.
func (rt *Runtime) Config() Config { return rt.cfg }

// Open registers a new session around p and starts its worker. The
// pipeline must not be touched by the caller afterwards — the session
// worker owns it. Returns nil after Close.
func (rt *Runtime) Open(p Pipeline) *Session {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return nil
	}
	s := newSession(len(rt.sessions), p, rt.cfg)
	rt.sessions = append(rt.sessions, s)
	return s
}

// OpenWith is Open with a per-session configuration override: custom
// receives the runtime's effective config and returns the config for
// this session only. The chaos soak uses it to give each session a
// private VirtualClock so deadline accounting stays deterministic
// across sessions with different fault profiles.
func (rt *Runtime) OpenWith(p Pipeline, custom func(Config) Config) *Session {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return nil
	}
	cfg := rt.cfg
	if custom != nil {
		cfg = custom(cfg).withDefaults()
	}
	s := newSession(len(rt.sessions), p, cfg)
	rt.sessions = append(rt.sessions, s)
	return s
}

// Sessions returns a snapshot of the session table (index == ID).
func (rt *Runtime) Sessions() []*Session {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*Session, len(rt.sessions))
	copy(out, rt.sessions)
	return out
}

// Session returns the session with the given ID, or nil.
func (rt *Runtime) Session(id int) *Session {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if id < 0 || id >= len(rt.sessions) {
		return nil
	}
	return rt.sessions[id]
}

// Quiesce blocks until every session is idle: all ingress drained and
// every worker between entries (shed sessions count as idle). The
// chaos soak uses it as its lock-step round barrier.
func (rt *Runtime) Quiesce() {
	for _, s := range rt.Sessions() {
		s.Quiesce()
	}
}

// Counters sums every session's accounting.
func (rt *Runtime) Counters() Counters {
	var total Counters
	for _, s := range rt.Sessions() {
		total = total.add(s.Counters())
	}
	return total
}

// StateCounts reports how many sessions are in each State, indexed by
// the State value (StateHealthy, StateDegraded, StateFaulted,
// StateShed).
func (rt *Runtime) StateCounts() [4]int {
	var counts [4]int
	for _, s := range rt.Sessions() {
		counts[s.State()]++
	}
	return counts
}

// Close drains and stops every session and rejects further Opens.
// Idempotent; safe to call while producers are still pushing (their
// pushes fail cleanly).
func (rt *Runtime) Close() {
	rt.mu.Lock()
	rt.closed = true
	sessions := make([]*Session, len(rt.sessions))
	copy(sessions, rt.sessions)
	rt.mu.Unlock()
	for _, s := range sessions {
		s.Close()
	}
}
