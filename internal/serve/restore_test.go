package serve

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cascade"
	"repro/internal/imu"
	"repro/internal/model"
)

// Integration against the real detector cascade: the serve-level
// restore guarantee from DESIGN §11 — a session killed mid-fall and
// restored from its last snapshot produces the same trigger decision
// with the same lead time as one that never crashed — checked end to
// end, single-session and with concurrent neighbours, under -race in
// CI.

func newServeCascade(t testing.TB) *cascade.Cascade {
	t.Helper()
	primary, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		t.Fatal(err)
	}
	fallback, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cascade.New(primary, fallback, cascade.Config{WindowMS: 400, Overlap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// serveQuiet is a gently varying upright sample; serveFall is the
// tail of a backward fall (free fall, then impact), matching the
// cascade package's snapshot fixtures.
func serveQuiet(i int) (imu.Vec3, imu.Vec3) {
	ph := float64(i) * 0.13
	return imu.Vec3{X: 0.05 * math.Sin(ph), Z: 1 + 0.02*math.Cos(ph)},
		imu.Vec3{X: 3 * math.Sin(ph), Y: 2 * math.Cos(ph)}
}

func serveFall(k int) (imu.Vec3, imu.Vec3) {
	if k < 45 {
		return imu.Vec3{Z: 0.04}, imu.Vec3{X: 280, Y: 120}
	}
	return imu.Vec3{Z: 5.5}, imu.Vec3{X: 40}
}

// streamSample is the shared script: quiet wear for quietLen samples,
// then the fall.
func streamSample(i int) (imu.Vec3, imu.Vec3) {
	const quietLen = 300
	if i < quietLen {
		return serveQuiet(i)
	}
	return serveFall(i - quietLen)
}

// referenceRun drives a bare cascade (no serving runtime) over the
// stream and returns every evaluated decision plus the trigger.
func referenceRun(t *testing.T, total int) (ds []cascade.Decision, trig cascade.Decision, trigAt int) {
	t.Helper()
	c := newServeCascade(t)
	trigAt = -1
	for i := 0; i < total; i++ {
		acc, gyro := streamSample(i)
		d := c.Push(acc, gyro)
		if d.Evaluated {
			ds = append(ds, d)
		}
		if d.Triggered && trigAt < 0 {
			trig, trigAt = d, i
		}
	}
	if trigAt < 0 {
		t.Fatal("reference cascade never triggered on the synthetic fall")
	}
	return ds, trig, trigAt
}

// TestServeKillMidFallRestoresSameTrigger kills the session's
// pipeline mid-fall (between the last snapshot and the trigger) and
// asserts the served decision stream — including the trigger sample
// and therefore the airbag's lead time — is bit-identical to the
// uninterrupted reference. Run with a single session and with four
// concurrent sessions (one crashing, three clean) to pin that the
// guarantee holds under scheduling pressure; CI runs this under
// -race.
func TestServeKillMidFallRestoresSameTrigger(t *testing.T) {
	const total = 400
	refDs, refTrig, trigAt := referenceRun(t, total)
	if trigAt <= 310 {
		t.Fatalf("fixture broken: trigger at %d, need > 310 so the kill lands mid-fall", trigAt)
	}

	for _, sessions := range []int{1, 4} {
		leak := StartLeakCheck()
		crashed := sessions / 2 // session 0 when solo, session 2 in the fleet
		fired := false
		rt := New(Config{
			QueueLen:      512,
			OutboxLen:     64,
			SnapshotEvery: 100, // snapshots at 100, 200, 300 — kill at 310 restores the 300 one
			PushHook: func(session int, pos uint64) {
				if session == crashed && pos == 310 && !fired {
					fired = true
					panic("killed mid-fall")
				}
			},
		})
		ss := make([]*Session, sessions)
		for i := range ss {
			ss[i] = rt.Open(newServeCascade(t))
		}
		for i := 0; i < total; i++ {
			acc, gyro := streamSample(i)
			for _, s := range ss {
				s.Push(acc, gyro)
			}
		}
		rt.Quiesce()

		for i, s := range ss {
			ds := s.DrainDecisions(nil)
			if len(ds) != len(refDs) {
				t.Fatalf("sessions=%d: session %d produced %d decisions, reference %d",
					sessions, i, len(ds), len(refDs))
			}
			for j := range refDs {
				if ds[j] != refDs[j] {
					t.Fatalf("sessions=%d: session %d decision %d diverged:\n ref %+v\n got %+v",
						sessions, i, j, refDs[j], ds[j])
				}
			}
			trig, ok := s.TakeTrigger()
			if !ok {
				t.Fatalf("sessions=%d: session %d never triggered", sessions, i)
			}
			if trig != refTrig {
				t.Fatalf("sessions=%d: session %d trigger differs:\n ref %+v\n got %+v",
					sessions, i, refTrig, trig)
			}
			c := s.Counters()
			wantPanics := int64(0)
			if i == crashed {
				wantPanics = 1
			}
			if c.Panics != wantPanics || (i == crashed && c.Restarts != 1) {
				t.Fatalf("sessions=%d: session %d Panics/Restarts = %d/%d, want %d/1-if-crashed",
					sessions, i, c.Panics, c.Restarts, wantPanics)
			}
			if c.Shed != 0 || c.Enqueued != total {
				t.Fatalf("sessions=%d: session %d Shed/Enqueued = %d/%d, want 0/%d",
					sessions, i, c.Shed, c.Enqueued, total)
			}
		}
		if !fired {
			t.Fatalf("sessions=%d: kill hook never fired", sessions)
		}
		rt.Close()
		checkLeak(t, leak)
	}
}

// BenchmarkSessionPush is the serving-path overhead benchmark: one
// sample through ingress, worker, cascade and outbox. SnapshotEvery=0
// isolates the steady-state path, which must stay allocation-free.
func BenchmarkSessionPush(b *testing.B) {
	rt := New(Config{QueueLen: 1024})
	s := rt.Open(newServeCascade(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc, gyro := serveQuiet(i)
		s.Push(acc, gyro)
		if i%512 == 0 {
			s.Quiesce() // keep the ring from capping the measurement
		}
	}
	s.Quiesce()
	b.StopTimer()
	rt.Close()
}

// BenchmarkSessionPushSnapshot includes the periodic snapshot and
// replay-log cost at the default cadence.
func BenchmarkSessionPushSnapshot(b *testing.B) {
	rt := New(Config{QueueLen: 1024, SnapshotEvery: 256})
	s := rt.Open(newServeCascade(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc, gyro := serveQuiet(i)
		s.Push(acc, gyro)
		if i%512 == 0 {
			s.Quiesce()
		}
	}
	s.Quiesce()
	b.StopTimer()
	rt.Close()
}

// newServeCNNCascade is the deployment shape: real three-branch CNN
// primary and accel-only CNN fallback, both carrying incremental
// scoring caches. Seeded weights make repeated calls bit-identical.
func newServeCNNCascade(t testing.TB) *cascade.Cascade {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	primary, err := model.New(model.KindCNN, model.Config{WindowSamples: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	fallback, err := model.New(model.KindCNNAccel, model.Config{WindowSamples: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cascade.New(primary, fallback, cascade.Config{WindowMS: 400, Overlap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestServeKillMidMotionCNNStreams is the serve-level crash-replay
// guarantee for the incremental inference engine: a session whose
// pipeline answers from nn.Streamer caches is killed mid-motion
// (between a snapshot and the next stride), restored from the last
// snapshot and replayed — the served decision stream must be
// bit-identical to a bare cascade that never crashed. The streaming
// caches are rebuilt from the restored ring, so any cache/ring drift
// surfaces as a probability divergence here.
func TestServeKillMidMotionCNNStreams(t *testing.T) {
	const total = 400
	ref := newServeCNNCascade(t)
	var refDs []cascade.Decision
	for i := 0; i < total; i++ {
		acc, gyro := streamSample(i)
		d := ref.Push(acc, gyro)
		if d.Evaluated {
			refDs = append(refDs, d)
		}
	}
	if len(refDs) == 0 {
		t.Fatal("fixture broken: reference produced no evaluated decisions")
	}

	leak := StartLeakCheck()
	fired := false
	rt := New(Config{
		QueueLen:      512,
		OutboxLen:     64,
		SnapshotEvery: 100,
		PushHook: func(session int, pos uint64) {
			if pos == 310 && !fired {
				fired = true
				panic("killed mid-motion")
			}
		},
	})
	s := rt.Open(newServeCNNCascade(t))
	for i := 0; i < total; i++ {
		acc, gyro := streamSample(i)
		s.Push(acc, gyro)
	}
	rt.Quiesce()
	ds := s.DrainDecisions(nil)
	if len(ds) != len(refDs) {
		t.Fatalf("session produced %d decisions, reference %d", len(ds), len(refDs))
	}
	for j := range refDs {
		if ds[j] != refDs[j] {
			t.Fatalf("decision %d diverged:\n ref %+v\n got %+v", j, refDs[j], ds[j])
		}
	}
	if !fired {
		t.Fatal("kill hook never fired")
	}
	if c := s.Counters(); c.Panics != 1 || c.Restarts != 1 {
		t.Fatalf("Panics/Restarts = %d/%d, want 1/1", c.Panics, c.Restarts)
	}
	rt.Close()
	checkLeak(t, leak)
}
