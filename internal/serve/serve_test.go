package serve

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cascade"
	"repro/internal/imu"
)

// fakePipe is a scripted Pipeline: it evaluates a decision on every
// raw sample with Probability = position/1e6, triggers when acc.X is
// at least 10, and snapshots its single piece of state (the raw
// sample count) as decimal bytes. Every call is appended to ops, so
// tests can assert the exact pipeline call sequence the runtime
// produced — including what a restore-and-replay did.
//
// The worker goroutine owns the pipe; tests only read it after
// Quiesce or Close, which order those reads after the worker's
// writes.
type fakePipe struct {
	raw   int
	ops   []string
	ceils []cascade.Tier
	// block, when non-nil, is received from once per Push, letting a
	// test hold the worker mid-entry while the ingress ring fills.
	block chan struct{}
	// delay, when non-nil, runs inside every Push (used to advance a
	// virtual clock, simulating a slow pipeline).
	delay func()
}

func (f *fakePipe) decision() cascade.Decision {
	return cascade.Decision{
		Evaluated:   true,
		Probability: float64(f.raw) / 1e6,
	}
}

func (f *fakePipe) Push(acc, gyro imu.Vec3) cascade.Decision {
	if f.block != nil {
		<-f.block
	}
	if f.delay != nil {
		f.delay()
	}
	f.raw++
	f.ops = append(f.ops, "push")
	d := f.decision()
	if acc.X >= 10 {
		d.Triggered = true
	}
	return d
}

func (f *fakePipe) PushMissing(n int) cascade.Decision {
	f.raw += n
	f.ops = append(f.ops, fmt.Sprintf("miss:%d", n))
	return f.decision()
}

func (f *fakePipe) AppendSnapshot(dst []byte) ([]byte, error) {
	f.ops = append(f.ops, fmt.Sprintf("snap:%d", f.raw))
	return strconv.AppendInt(dst, int64(f.raw), 10), nil
}

func (f *fakePipe) RestoreFresh(r io.Reader) error {
	b, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	n, err := strconv.Atoi(string(b))
	if err != nil {
		return err
	}
	f.raw = n
	f.ops = append(f.ops, fmt.Sprintf("restore:%d", n))
	return nil
}

func (f *fakePipe) Reset() {
	f.raw = 0
	f.ops = append(f.ops, "reset")
}

func (f *fakePipe) SetTierCeiling(t cascade.Tier) {
	f.ceils = append(f.ceils, t)
	f.ops = append(f.ops, fmt.Sprintf("ceil:%d", int(t)))
}

// sample returns a distinct quiet data sample for position i.
func sample(i int) (imu.Vec3, imu.Vec3) {
	return imu.Vec3{X: float64(i%7) * 0.01, Z: 1}, imu.Vec3{Y: float64(i % 5)}
}

func checkLeak(t *testing.T, l Leak) {
	t.Helper()
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDecisionFlowAndCounters(t *testing.T) {
	leak := StartLeakCheck()
	// The queue outsizes the burst so a slow worker never sheds and
	// the decision count is exact.
	rt := New(Config{QueueLen: 128})
	f := &fakePipe{}
	s := rt.Open(f)
	const n = 100
	for i := 0; i < n; i++ {
		acc, gyro := sample(i)
		if !s.Push(acc, gyro) {
			t.Fatalf("push %d rejected on a healthy session", i)
		}
	}
	rt.Quiesce()
	var ds []cascade.Decision
	ds = s.DrainDecisions(ds)
	// Outbox keeps the newest OutboxLen decisions; all n were counted.
	if len(ds) != rt.Config().OutboxLen {
		t.Fatalf("drained %d decisions, want outbox cap %d", len(ds), rt.Config().OutboxLen)
	}
	for i := 1; i < len(ds); i++ {
		if ds[i].Probability <= ds[i-1].Probability {
			t.Fatalf("decisions out of order at %d: %v then %v", i, ds[i-1].Probability, ds[i].Probability)
		}
	}
	c := s.Counters()
	if c.Enqueued != n || c.Decisions != n || c.Shed != 0 || c.Panics != 0 {
		t.Fatalf("counters %+v, want %d enqueued/decisions, 0 shed/panics", c, n)
	}
	if c.OutboxDropped != n-int64(rt.Config().OutboxLen) {
		t.Fatalf("OutboxDropped = %d, want %d", c.OutboxDropped, n-rt.Config().OutboxLen)
	}
	if got := s.State(); got != StateHealthy {
		t.Fatalf("state %v, want healthy", got)
	}
	if counts := rt.StateCounts(); counts[StateHealthy] != 1 {
		t.Fatalf("state counts %v, want one healthy", counts)
	}
	rt.Close()
	checkLeak(t, leak)
}

func TestTriggerLatched(t *testing.T) {
	leak := StartLeakCheck()
	rt := New(Config{QueueLen: 64, OutboxLen: 4})
	f := &fakePipe{}
	s := rt.Open(f)
	for i := 0; i < 10; i++ {
		acc, gyro := sample(i)
		if i == 3 {
			acc.X = 11 // trigger
		}
		s.Push(acc, gyro)
	}
	rt.Quiesce()
	// The trigger aged out of the 4-deep outbox but must be latched.
	d, ok := s.TakeTrigger()
	if !ok || !d.Triggered {
		t.Fatalf("trigger not latched: %+v ok=%v", d, ok)
	}
	if _, again := s.TakeTrigger(); again {
		t.Fatal("TakeTrigger did not clear the latch")
	}
	if c := s.Counters(); c.Triggers != 1 {
		t.Fatalf("Triggers = %d, want 1", c.Triggers)
	}
	rt.Close()
	checkLeak(t, leak)
}

// TestShedOldestBecomesMissing holds the worker inside its first Push
// while the tiny ingress ring overflows, then verifies the shed
// samples reached the pipeline as one missing run — stream alignment
// degraded, never silently skewed — and were counted.
func TestShedOldestBecomesMissing(t *testing.T) {
	leak := StartLeakCheck()
	gate := make(chan struct{})
	f := &fakePipe{block: gate}
	rt := New(Config{QueueLen: 4})
	s := rt.Open(f)

	acc, gyro := sample(0)
	s.Push(acc, gyro) // worker dequeues this and blocks inside Push
	for i := 1; i <= 9; i++ {
		acc, gyro := sample(i)
		s.Push(acc, gyro)
	}
	// Ring saw up to 9 entries with capacity 4: at least 4 raw
	// samples shed (the exact count depends on when the worker
	// grabbed the first entry). Closing the gate releases the blocked
	// Push and makes every later receive return immediately.
	close(gate)
	rt.Quiesce()

	c := s.Counters()
	if c.Shed < 4 {
		t.Fatalf("Shed = %d, want >= 4 after overflowing a 4-deep ring with 9 pushes", c.Shed)
	}
	if c.Enqueued != 10 {
		t.Fatalf("Enqueued = %d, want 10", c.Enqueued)
	}
	// Conservation: every raw sample either reached the pipe as data
	// or as missing.
	if int64(f.raw) != c.Enqueued {
		t.Fatalf("pipeline saw %d raw samples, enqueued %d — samples lost without accounting", f.raw, c.Enqueued)
	}
	joined := strings.Join(f.ops, ",")
	if !strings.Contains(joined, "miss:") {
		t.Fatalf("no missing run reached the pipeline; ops: %s", joined)
	}
	rt.Close()
	checkLeak(t, leak)
}

func TestMissingRunsForwarded(t *testing.T) {
	leak := StartLeakCheck()
	rt := New(Config{QueueLen: 64})
	f := &fakePipe{}
	s := rt.Open(f)
	acc, gyro := sample(0)
	s.Push(acc, gyro)
	s.PushMissing(5)
	s.Push(acc, gyro)
	rt.Quiesce()
	joined := strings.Join(f.ops, ",")
	if want := "push,miss:5,push"; joined != want {
		t.Fatalf("ops %q, want %q", joined, want)
	}
	if c := s.Counters(); c.Enqueued != 7 {
		t.Fatalf("Enqueued = %d, want 7", c.Enqueued)
	}
	rt.Close()
	checkLeak(t, leak)
}

// TestPanicRestartReplayIdentical is the crash-isolation contract: a
// one-shot panic injected mid-stream must leave the visible decision
// sequence bit-identical to a run that never crashed, with the
// recovery visible only in the counters.
func TestPanicRestartReplayIdentical(t *testing.T) {
	run := func(panicAt int) (ds []cascade.Decision, c Counters, ops []string) {
		fired := false
		rt := New(Config{QueueLen: 128, OutboxLen: 256, SnapshotEvery: 16,
			PushHook: func(session int, pos uint64) {
				if panicAt >= 0 && !fired && pos == uint64(panicAt) {
					fired = true
					panic("injected fault")
				}
			}})
		f := &fakePipe{}
		s := rt.Open(f)
		for i := 0; i < 100; i++ {
			acc, gyro := sample(i)
			s.Push(acc, gyro)
		}
		rt.Quiesce()
		ds = s.DrainDecisions(nil)
		c = s.Counters()
		ops = f.ops
		rt.Close()
		return ds, c, ops
	}

	leak := StartLeakCheck()
	ref, refC, _ := run(-1)
	got, c, ops := run(37)
	if len(got) != len(ref) {
		t.Fatalf("decision count %d after recovery, reference %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("decision %d diverged after recovery:\n ref %+v\n got %+v", i, ref[i], got[i])
		}
	}
	if c.Panics != 1 || c.Restarts != 1 {
		t.Fatalf("Panics/Restarts = %d/%d, want 1/1", c.Panics, c.Restarts)
	}
	if c.Decisions != refC.Decisions {
		t.Fatalf("Decisions = %d, reference %d", c.Decisions, refC.Decisions)
	}
	// The recovery restored the snapshot at 32 and replayed 32..36.
	joined := strings.Join(ops, ",")
	if !strings.Contains(joined, "restore:32") {
		t.Fatalf("expected restore from the sample-32 snapshot; ops: %s", joined)
	}
	checkLeak(t, leak)
}

// TestPanicBeforeFirstSnapshot: a crash before any snapshot exists is
// recovered by resetting and replaying the full (still complete)
// log — same bit-identical guarantee.
func TestPanicBeforeFirstSnapshot(t *testing.T) {
	leak := StartLeakCheck()
	fired := false
	rt := New(Config{QueueLen: 64, OutboxLen: 64, SnapshotEvery: 64,
		PushHook: func(session int, pos uint64) {
			if !fired && pos == 5 {
				fired = true
				panic("early fault")
			}
		}})
	f := &fakePipe{}
	s := rt.Open(f)
	for i := 0; i < 20; i++ {
		acc, gyro := sample(i)
		s.Push(acc, gyro)
	}
	rt.Quiesce()
	ds := s.DrainDecisions(nil)
	if len(ds) != 20 {
		t.Fatalf("got %d decisions, want 20", len(ds))
	}
	for i, d := range ds {
		if want := float64(i+1) / 1e6; d.Probability != want {
			t.Fatalf("decision %d probability %v, want %v", i, d.Probability, want)
		}
	}
	joined := strings.Join(f.ops, ",")
	if !strings.Contains(joined, "reset") {
		t.Fatalf("expected a reset-based recovery; ops: %s", joined)
	}
	rt.Close()
	checkLeak(t, leak)
}

// TestExhaustedRestartsShed: a deterministic fault (the hook panics at
// the same position on every replay) must consume MaxRestarts and
// shed the session — and only that session — leaving no goroutine.
func TestExhaustedRestartsShed(t *testing.T) {
	leak := StartLeakCheck()
	rt := New(Config{QueueLen: 64, MaxRestarts: 3, SnapshotEvery: 4, RestartBackoff: time.Microsecond,
		PushHook: func(session int, pos uint64) {
			if session == 0 && pos >= 10 {
				panic("persistent fault")
			}
		}})
	sick := rt.Open(&fakePipe{})
	well := rt.Open(&fakePipe{})
	for i := 0; i < 30; i++ {
		acc, gyro := sample(i)
		sick.Push(acc, gyro)
		well.Push(acc, gyro)
	}
	rt.Quiesce()
	if got := sick.State(); got != StateShed {
		t.Fatalf("sick session state %v, want shed", got)
	}
	if got := well.State(); got != StateHealthy {
		t.Fatalf("healthy session state %v, want healthy", got)
	}
	c := sick.Counters()
	if c.Panics != 1 || c.Restarts != 3 {
		t.Fatalf("Panics/Restarts = %d/%d, want 1/3", c.Panics, c.Restarts)
	}
	if c.Shed == 0 {
		t.Fatal("shed session dropped its backlog without counting it")
	}
	acc, gyro := sample(0)
	if sick.Push(acc, gyro) {
		t.Fatal("push accepted on a shed session")
	}
	if wc := well.Counters(); wc.Decisions != 30 {
		t.Fatalf("healthy neighbour produced %d decisions, want 30 — isolation broken", wc.Decisions)
	}
	if counts := rt.StateCounts(); counts[StateShed] != 1 || counts[StateHealthy] != 1 {
		t.Fatalf("state counts %v, want one shed + one healthy", counts)
	}
	rt.Close()
	checkLeak(t, leak)
}

// TestBreakerDemotesAndRecovers drives decision latency with a
// virtual clock: sustained p99 near the deadline must demote the tier
// ceiling step by step, and recovery must promote back only after the
// hysteresis hold.
func TestBreakerDemotesAndRecovers(t *testing.T) {
	leak := StartLeakCheck()
	clk := NewVirtualClock()
	slow := true
	f := &fakePipe{}
	f.delay = func() {
		if slow {
			clk.Advance(140 * time.Millisecond) // p99 ≥ 0.8 × 150 ms
		} else {
			clk.Advance(time.Millisecond)
		}
	}
	rt := New(Config{
		Now:           clk.Now,
		BreakerWindow: 8,
		BreakerHold:   8,
		Deadline:      150 * time.Millisecond,
	})
	s := rt.Open(f)
	push := func(n int) {
		for i := 0; i < n; i++ {
			acc, gyro := sample(i)
			s.Push(acc, gyro)
			s.Quiesce() // lock-step so delay/slow flips are race-free
		}
	}
	push(8)
	if lvl := s.BreakerLevel(); lvl != 2 {
		t.Fatalf("breaker level %d after sustained 140 ms latency, want 2", lvl)
	}
	if got := s.State(); got != StateDegraded {
		t.Fatalf("state %v under breaker pressure, want degraded", got)
	}
	slow = false
	// 8 pushes age the slow latencies out of the window, then two
	// full holds promote 2 → 1 → 0.
	push(8 + 8 + 8)
	if lvl := s.BreakerLevel(); lvl != 0 {
		t.Fatalf("breaker level %d after recovery, want 0", lvl)
	}
	if got := s.State(); got != StateHealthy {
		t.Fatalf("state %v after recovery, want healthy", got)
	}
	want := []cascade.Tier{cascade.TierFallback, cascade.TierThreshold, cascade.TierFallback, cascade.TierPrimary}
	if len(f.ceils) != len(want) {
		t.Fatalf("ceiling transitions %v, want %v", f.ceils, want)
	}
	for i := range want {
		if f.ceils[i] != want[i] {
			t.Fatalf("ceiling transition %d = %v, want %v (all: %v)", i, f.ceils[i], want[i], f.ceils)
		}
	}
	rt.Close()
	checkLeak(t, leak)
}

// TestDeadlineMissedCounter: decisions that land after the per-sample
// deadline are counted, on-time ones are not.
func TestDeadlineMissedCounter(t *testing.T) {
	leak := StartLeakCheck()
	clk := NewVirtualClock()
	f := &fakePipe{}
	f.delay = func() { clk.Advance(200 * time.Millisecond) }
	rt := New(Config{Now: clk.Now, Deadline: 150 * time.Millisecond})
	s := rt.Open(f)
	for i := 0; i < 10; i++ {
		acc, gyro := sample(i)
		s.Push(acc, gyro)
	}
	rt.Quiesce()
	if c := s.Counters(); c.DeadlineMissed != 10 {
		t.Fatalf("DeadlineMissed = %d, want 10 at 200 ms per decision", c.DeadlineMissed)
	}

	f2 := &fakePipe{}
	f2.delay = func() { clk.Advance(time.Millisecond) }
	s2 := rt.Open(f2)
	for i := 0; i < 10; i++ {
		acc, gyro := sample(i)
		s2.Push(acc, gyro)
	}
	rt.Quiesce()
	if c := s2.Counters(); c.DeadlineMissed != 0 {
		t.Fatalf("DeadlineMissed = %d on a fast session, want 0", c.DeadlineMissed)
	}
	rt.Close()
	checkLeak(t, leak)
}

func TestCloseRejectsAndDrains(t *testing.T) {
	leak := StartLeakCheck()
	rt := New(Config{QueueLen: 64})
	f := &fakePipe{}
	s := rt.Open(f)
	for i := 0; i < 50; i++ {
		acc, gyro := sample(i)
		s.Push(acc, gyro)
	}
	rt.Close()
	// Backlog was drained before the worker exited.
	if f.raw != 50 {
		t.Fatalf("pipeline saw %d samples after Close, want the full 50", f.raw)
	}
	acc, gyro := sample(0)
	if s.Push(acc, gyro) {
		t.Fatal("push accepted after Close")
	}
	if rt.Open(&fakePipe{}) != nil {
		t.Fatal("Open succeeded after Close")
	}
	if rt.Session(0) != s || rt.Session(99) != nil {
		t.Fatal("session lookup broken")
	}
	checkLeak(t, leak)
}
