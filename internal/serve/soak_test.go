package serve

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/model"
)

func soakPipeline() (Pipeline, error) {
	primary, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		return nil, err
	}
	fallback, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		return nil, err
	}
	return cascade.New(primary, fallback, cascade.Config{WindowMS: 400, Overlap: 0.5})
}

// TestSoakSmoke is the CI-sized chaos soak: 16 streams covering every
// fault profile, 2 injected panics, one crash-looping session, under
// -race. It is the same harness verify.sh runs via fallserve.
func TestSoakSmoke(t *testing.T) {
	rep, err := RunSoak(SoakConfig{
		Sessions:    16,
		Samples:     600,
		Panics:      2,
		Seed:        42,
		NewPipeline: soakPipeline,
		Log:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.Check() {
		t.Error(e)
	}
	if t.Failed() {
		for _, s := range rep.Sessions {
			t.Logf("session %d %-10s state=%v brk=%d counters=%+v trig=%v cmp=%v/%v",
				s.ID, s.Profile, s.State, s.Breaker, s.Counters, s.Triggered, s.Compared, s.Identical)
		}
	}
}

// TestSoakDeterministic pins that every reported counter is
// bit-stable across runs of the same config.
func TestSoakDeterministic(t *testing.T) {
	run := func() *SoakReport {
		rep, err := RunSoak(SoakConfig{
			Sessions:    8,
			Samples:     600,
			Panics:      1,
			Seed:        7,
			NewPipeline: soakPipeline,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if len(a.Sessions) != len(b.Sessions) {
		t.Fatalf("session counts differ: %d vs %d", len(a.Sessions), len(b.Sessions))
	}
	for i := range a.Sessions {
		x, y := a.Sessions[i], b.Sessions[i]
		if x != y {
			t.Errorf("session %d differs across runs:\n run1 %+v\n run2 %+v", i, x, y)
		}
	}
	if a.Totals != b.Totals {
		t.Errorf("totals differ:\n run1 %+v\n run2 %+v", a.Totals, b.Totals)
	}
	if a.States != b.States {
		t.Errorf("state counts differ: %v vs %v", a.States, b.States)
	}
}
