// Package serve is the resilient multi-stream serving runtime: it
// multiplexes many concurrent IMU streams onto per-session detector
// cascades while guaranteeing that one misbehaving stream — a panic in
// its pipeline, a burst that outruns the consumer, a stall — cannot
// take down or even delay its neighbours.
//
// The runtime is built from four mechanisms (DESIGN.md §11):
//
//   - Bounded ingress. Each session owns a fixed-capacity ring of
//     pending samples. Producers never block: when a burst overflows
//     the ring the oldest entry is shed and accounted as a missing
//     sample on the next drain, so the detector's gap machinery (the
//     same one that handles radio dropouts) absorbs load shedding and
//     the decision cadence never stalls. Every accepted sample carries
//     a decision deadline; decisions produced after it are counted.
//
//   - Crash isolation. The worker applies samples under a recover
//     barrier. A panic is converted to a *guard.PanicError and the
//     session restarts with exponential backoff via guard.Run: the
//     pipeline is restored from its last snapshot and the samples
//     applied since are replayed with emission suppressed, so the
//     restored session's visible decision stream is bit-identical to
//     one that never crashed. MaxRestarts consecutive failures shed
//     the session instead of burning the host in a crash loop.
//
//   - Snapshots. Every SnapshotEvery samples the worker captures the
//     pipeline state through the verified artifact envelope
//     (cascade.Snapshot), bounding both the replay log and the warm-up
//     a crash can lose.
//
//   - Latency breaker. A per-session p99 of decision latency, compared
//     against the pre-impact deadline (150 ms at the airbag), demotes
//     the cascade through its tier ceiling (accel-only CNN, then the
//     threshold floor) when the host cannot keep up, and promotes back
//     with hysteresis once p99 recovers.
//
// Concurrency in this package is sanctioned by the fallvet redorder
// allowlist (with internal/par and internal/guard); everything else in
// the repository stays sequential and deterministic.
package serve

import (
	"io"
	"time"

	"repro/internal/cascade"
	"repro/internal/imu"
)

// Pipeline is the per-session detector the runtime drives. It is the
// exact mutable surface of *cascade.Cascade; the indirection exists so
// tests can script panics and latencies without a real model.
//
// A Pipeline is owned by its session's worker goroutine: the runtime
// never calls it concurrently, so *cascade.Cascade's plain methods
// satisfy it without locks.
type Pipeline interface {
	// Push ingests one sample and returns the decision.
	Push(acc, gyro imu.Vec3) cascade.Decision
	// PushMissing accounts n samples the stream failed to deliver
	// (true sensor gaps and load-shed samples alike).
	PushMissing(n int) cascade.Decision
	// AppendSnapshot appends the complete serialised pipeline state
	// to dst and returns the extended slice. Sessions checkpoint on a
	// cadence and pass a reused buffer, so implementations must not
	// retain dst; at steady state the call should not allocate.
	AppendSnapshot(dst []byte) ([]byte, error)
	// RestoreFresh resets and then applies a snapshot; on error the
	// pipeline is cold but coherent.
	RestoreFresh(r io.Reader) error
	// Reset returns the pipeline to its cold state.
	Reset()
	// SetTierCeiling caps how capable a tier the pipeline may run
	// (host pressure, not sensor health).
	SetTierCeiling(t cascade.Tier)
}

// Config tunes the runtime. The zero value is usable: every field has
// a serving-grade default applied by New.
type Config struct {
	// QueueLen is the per-session ingress ring capacity in entries.
	// Default 64.
	QueueLen int //fallvet:derived immutable runtime configuration, fixed by New; never part of a session snapshot
	// OutboxLen is how many evaluated decisions a session retains for
	// consumers; older ones are dropped (triggers are latched
	// separately and never lost). Default 32.
	OutboxLen int //fallvet:derived immutable runtime configuration, fixed by New; never part of a session snapshot
	// SnapshotEvery is the snapshot cadence in samples. It bounds the
	// replay log and the warm-up lost to a crash. 0 disables
	// snapshots: a restart then falls back to replaying the session's
	// full history only if none has been discarded, otherwise the
	// pipeline restarts cold. 0 is the default — serving deployments
	// should set a cadence (the harnesses use 64–256).
	SnapshotEvery int //fallvet:derived immutable runtime configuration, fixed by New; never part of a session snapshot
	// MaxRestarts is how many consecutive restore-and-replay attempts
	// a single failure may consume before the session is shed.
	// Default 3.
	MaxRestarts int //fallvet:derived immutable runtime configuration, fixed by New; never part of a session snapshot
	// RestartBackoff and RestartMaxDelay shape the exponential
	// backoff between restart attempts (guard.Config.BaseDelay and
	// MaxDelay). Defaults 1ms and 50ms.
	RestartBackoff  time.Duration //fallvet:derived immutable runtime configuration, fixed by New; never part of a session snapshot
	RestartMaxDelay time.Duration //fallvet:derived immutable runtime configuration, fixed by New; never part of a session snapshot
	// Deadline is the per-sample decision budget: a sample enqueued
	// at T whose decision lands after T+Deadline counts as a missed
	// deadline, and the latency breaker trips relative to it.
	// Default 150ms — the pre-impact airbag budget.
	Deadline time.Duration //fallvet:derived immutable runtime configuration, fixed by New; never part of a session snapshot
	// BreakerWindow is how many decision latencies the p99 estimate
	// is computed over. Default 64.
	BreakerWindow int //fallvet:derived immutable runtime configuration, fixed by New; never part of a session snapshot
	// BreakerTrip and BreakerClear are fractions of Deadline: p99
	// above Trip×Deadline raises the tier ceiling one level, p99
	// below Clear×Deadline for BreakerHold consecutive decisions
	// lowers it one level. Defaults 0.8 and 0.4.
	BreakerTrip  float64 //fallvet:derived immutable runtime configuration, fixed by New; never part of a session snapshot
	BreakerClear float64 //fallvet:derived immutable runtime configuration, fixed by New; never part of a session snapshot
	// BreakerHold is the promote hysteresis in decisions. Default:
	// BreakerWindow.
	BreakerHold int //fallvet:derived immutable runtime configuration, fixed by New; never part of a session snapshot
	// Now is the clock. Default time.Now; tests and the deterministic
	// soak harness inject a VirtualClock.
	Now func() time.Time
	// Log, when non-nil, receives one line per restart, shed and
	// breaker transition.
	Log func(format string, args ...any)
	// PushHook, when non-nil, runs on the worker goroutine before
	// each dequeued entry is applied, with the session ID and the raw
	// stream position of the entry's first sample. It also runs
	// during replay (with the historical positions), so a hook that
	// panics unconditionally exhausts MaxRestarts and sheds the
	// session — exactly how the chaos soak injects faults.
	PushHook func(session int, pos uint64)
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (cfg Config) withDefaults() Config {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 64
	}
	if cfg.OutboxLen <= 0 {
		cfg.OutboxLen = 32
	}
	if cfg.SnapshotEvery < 0 {
		cfg.SnapshotEvery = 0
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 3
	}
	if cfg.RestartBackoff <= 0 {
		cfg.RestartBackoff = time.Millisecond
	}
	if cfg.RestartMaxDelay <= 0 {
		cfg.RestartMaxDelay = 50 * time.Millisecond
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 150 * time.Millisecond
	}
	if cfg.BreakerWindow <= 0 {
		cfg.BreakerWindow = 64
	}
	if cfg.BreakerTrip <= 0 {
		cfg.BreakerTrip = 0.8
	}
	if cfg.BreakerClear <= 0 {
		cfg.BreakerClear = 0.4
	}
	if cfg.BreakerHold <= 0 {
		cfg.BreakerHold = cfg.BreakerWindow
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return cfg
}

// State is a session's health as the supervisor reports it.
type State int32

const (
	// StateHealthy: keeping up, no breaker pressure, pipeline healthy.
	StateHealthy State = iota
	// StateDegraded: serving, but the breaker has demoted the tier
	// ceiling or the pipeline reports degraded sensor health.
	StateDegraded
	// StateFaulted: a restart cycle is in progress; decisions resume
	// (bit-identically) once the replay completes.
	StateFaulted
	// StateShed: terminal — the session exhausted MaxRestarts or was
	// closed under unrecoverable failure; its stream is dropped.
	StateShed
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateFaulted:
		return "faulted"
	case StateShed:
		return "shed"
	}
	return "invalid"
}

// Counters is a point-in-time snapshot of a session's (or, summed,
// the runtime's) accounting. All fields count raw samples or events
// since the session opened.
type Counters struct {
	// Enqueued is raw samples accepted into the ingress ring
	// (missing runs count their length).
	Enqueued int64
	// Shed is raw samples dropped by shed-oldest overflow plus
	// samples rejected after the session was shed.
	Shed int64
	// DeadlineMissed is decisions produced after their sample's
	// deadline.
	DeadlineMissed int64
	// Decisions is evaluated decisions emitted; Triggers is how many
	// of them crossed the threshold.
	Decisions int64
	Triggers  int64
	// Panics is pipeline panics caught; Restarts is restore-and-
	// replay attempts consumed recovering from them.
	Panics   int64
	Restarts int64
	// Snapshots is pipeline snapshots captured.
	Snapshots int64
	// OutboxDropped is evaluated (non-trigger) decisions that aged
	// out of the outbox before a consumer drained them.
	OutboxDropped int64
}

func (c Counters) add(o Counters) Counters {
	c.Enqueued += o.Enqueued
	c.Shed += o.Shed
	c.DeadlineMissed += o.DeadlineMissed
	c.Decisions += o.Decisions
	c.Triggers += o.Triggers
	c.Panics += o.Panics
	c.Restarts += o.Restarts
	c.Snapshots += o.Snapshots
	c.OutboxDropped += o.OutboxDropped
	return c
}
