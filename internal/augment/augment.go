// Package augment implements the paper's two data-augmentation
// techniques for the minority (falling) class: time warping (Um et
// al. 2017 [16]) which smoothly stretches and compresses the signal,
// and window warping (Rashid & Louis 2019 [17]) which speeds a random
// sub-window up or down. Both operate on [T × C] segments and
// preserve the segment length, simulating variation in fall speed.
package augment

import (
	"math/rand"

	"repro/internal/dsp"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// TimeWarpConfig parameterises the smooth warp.
type TimeWarpConfig struct {
	// Knots is the number of random warp knots (default 4).
	Knots int
	// Sigma is the relative speed perturbation at each knot
	// (default 0.2: local speed varies ±~20 %).
	Sigma float64
}

func (c TimeWarpConfig) withDefaults() TimeWarpConfig {
	if c.Knots <= 0 {
		c.Knots = 4
	}
	if c.Sigma <= 0 {
		c.Sigma = 0.2
	}
	return c
}

// TimeWarp returns a smoothly time-warped copy of the [T × C] segment.
// A smooth random speed profile is integrated into a monotone warp
// path which is then rescaled to preserve the endpoints, so the
// output has the same length and overall span as the input.
func TimeWarp(x *tensor.Tensor, cfg TimeWarpConfig, rng *rand.Rand) *tensor.Tensor {
	cfg = cfg.withDefaults()
	T, C := x.Dim(0), x.Dim(1)
	if T < 2 {
		return x.Clone()
	}
	// Random positive speed at each knot, smoothed across T steps.
	knots := make([]float64, cfg.Knots)
	for i := range knots {
		s := 1 + cfg.Sigma*rng.NormFloat64()
		if s < 0.3 {
			s = 0.3
		}
		knots[i] = s
	}
	speed := dsp.SmoothCurve(knots, T)
	// Integrate speed into a path, then normalise to [0, T-1].
	path := make(dsp.WarpPath, T)
	acc := 0.0
	for i := 1; i < T; i++ {
		acc += (speed[i-1] + speed[i]) / 2
		path[i] = acc
	}
	scale := float64(T-1) / path[T-1]
	for i := range path {
		path[i] *= scale
	}
	return warpColumns(x, path, T, C)
}

// WindowWarpConfig parameterises the window warp.
type WindowWarpConfig struct {
	// MinFrac/MaxFrac bound the warped sub-window's fraction of the
	// segment (defaults 0.2–0.5).
	MinFrac, MaxFrac float64
	// SlowFactor is the time dilation applied to the sub-window; the
	// inverse is used when speeding up (default 2).
	SlowFactor float64
}

func (c WindowWarpConfig) withDefaults() WindowWarpConfig {
	if c.MinFrac <= 0 {
		c.MinFrac = 0.2
	}
	if c.MaxFrac <= 0 {
		c.MaxFrac = 0.5
	}
	if c.SlowFactor <= 1 {
		c.SlowFactor = 2
	}
	return c
}

// WindowWarp picks a random sub-window and replays it at half or
// double speed, resampling the result back to the original length.
func WindowWarp(x *tensor.Tensor, cfg WindowWarpConfig, rng *rand.Rand) *tensor.Tensor {
	cfg = cfg.withDefaults()
	T, C := x.Dim(0), x.Dim(1)
	if T < 4 {
		return x.Clone()
	}
	frac := cfg.MinFrac + (cfg.MaxFrac-cfg.MinFrac)*rng.Float64()
	w := int(float64(T) * frac)
	if w < 2 {
		w = 2
	}
	start := rng.Intn(T - w)
	factor := cfg.SlowFactor
	if rng.Intn(2) == 0 {
		factor = 1 / factor
	}
	// Build the warp path: identity before the window, speed change
	// inside, identity after; then renormalise to [0, T-1].
	path := make(dsp.WarpPath, T)
	acc := 0.0
	for i := 1; i < T; i++ {
		step := 1.0
		if i > start && i <= start+w {
			step = 1 / factor // moving slower through source = dilation
		}
		acc += step
		path[i] = acc
	}
	scale := float64(T-1) / path[T-1]
	for i := range path {
		path[i] *= scale
	}
	return warpColumns(x, path, T, C)
}

func warpColumns(x *tensor.Tensor, path dsp.WarpPath, T, C int) *tensor.Tensor {
	out := tensor.New(T, C)
	col := make([]float64, T)
	for c := 0; c < C; c++ {
		for t := 0; t < T; t++ {
			col[t] = x.At(t, c)
		}
		warped := dsp.ApplyWarp(col, path)
		for t := 0; t < T; t++ {
			out.Set(warped[t], t, c)
		}
	}
	return out
}

// Positives expands the positive (falling) examples of a training set
// by factor: each positive spawns factor extra examples, alternating
// time warping and window warping, as the paper applies both. The
// original examples are preserved; negatives pass through untouched.
func Positives(train []nn.Example, factor int, rng *rand.Rand) []nn.Example {
	if factor <= 0 {
		return train
	}
	out := make([]nn.Example, 0, len(train))
	out = append(out, train...)
	for _, e := range train {
		if e.Y != 1 {
			continue
		}
		for k := 0; k < factor; k++ {
			var x *tensor.Tensor
			if k%2 == 0 {
				x = TimeWarp(e.X, TimeWarpConfig{}, rng)
			} else {
				x = WindowWarp(e.X, WindowWarpConfig{}, rng)
			}
			out = append(out, nn.Example{X: x, Y: 1})
		}
	}
	return out
}
