package augment

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func rampSegment(T, C int) *tensor.Tensor {
	x := tensor.New(T, C)
	for t := 0; t < T; t++ {
		for c := 0; c < C; c++ {
			x.Set(float64(t)+10*float64(c), t, c)
		}
	}
	return x
}

func TestTimeWarpPreservesShapeAndEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := rampSegment(40, 9)
	y := TimeWarp(x, TimeWarpConfig{}, rng)
	if y.Dim(0) != 40 || y.Dim(1) != 9 {
		t.Fatalf("shape %v", y.Shape())
	}
	for c := 0; c < 9; c++ {
		if math.Abs(y.At(0, c)-x.At(0, c)) > 1e-9 {
			t.Fatalf("start of channel %d moved: %g vs %g", c, y.At(0, c), x.At(0, c))
		}
		if math.Abs(y.At(39, c)-x.At(39, c)) > 1e-9 {
			t.Fatalf("end of channel %d moved", c)
		}
	}
}

func TestTimeWarpActuallyWarps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(40, 2)
	for i := 0; i < 40; i++ {
		x.Set(math.Sin(float64(i)/3), i, 0)
		x.Set(math.Cos(float64(i)/4), i, 1)
	}
	y := TimeWarp(x, TimeWarpConfig{Sigma: 0.4}, rng)
	diff := 0.0
	for i := range x.Data() {
		diff += math.Abs(x.Data()[i] - y.Data()[i])
	}
	if diff < 0.1 {
		t.Fatalf("time warp changed almost nothing (Δ=%g)", diff)
	}
}

func TestTimeWarpBounded(t *testing.T) {
	// Warping is interpolation: values stay within the channel's hull.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		T := 10 + rng.Intn(40)
		x := tensor.New(T, 3)
		for i := range x.Data() {
			x.Data()[i] = rng.NormFloat64()
		}
		y := TimeWarp(x, TimeWarpConfig{}, rng)
		for c := 0; c < 3; c++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for t := 0; t < T; t++ {
				lo = math.Min(lo, x.At(t, c))
				hi = math.Max(hi, x.At(t, c))
			}
			for t := 0; t < T; t++ {
				if y.At(t, c) < lo-1e-9 || y.At(t, c) > hi+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeWarpMonotonePath(t *testing.T) {
	// A strictly increasing channel must stay non-decreasing after a
	// monotone warp.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := rampSegment(30, 1)
		y := TimeWarp(x, TimeWarpConfig{Sigma: 0.5}, rng)
		for tt := 1; tt < 30; tt++ {
			if y.At(tt, 0) < y.At(tt-1, 0)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeWarpDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(1, 2)
	x.Set(5, 0, 0)
	y := TimeWarp(x, TimeWarpConfig{}, rng)
	if y.At(0, 0) != 5 {
		t.Fatal("degenerate segment altered")
	}
}

func TestWindowWarpShapeAndChange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.New(40, 2)
	for i := 0; i < 40; i++ {
		x.Set(math.Sin(float64(i)/2), i, 0)
		x.Set(float64(i%7), i, 1)
	}
	y := WindowWarp(x, WindowWarpConfig{}, rng)
	if y.Dim(0) != 40 || y.Dim(1) != 2 {
		t.Fatalf("shape %v", y.Shape())
	}
	diff := 0.0
	for i := range x.Data() {
		diff += math.Abs(x.Data()[i] - y.Data()[i])
	}
	if diff < 0.1 {
		t.Fatal("window warp changed almost nothing")
	}
}

func TestWindowWarpDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.New(3, 1)
	y := WindowWarp(x, WindowWarpConfig{}, rng)
	if y.Dim(0) != 3 {
		t.Fatal("degenerate shape")
	}
}

func TestPositivesExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	mk := func(y int) nn.Example {
		x := tensor.New(20, 9)
		for i := range x.Data() {
			x.Data()[i] = rng.NormFloat64()
		}
		return nn.Example{X: x, Y: y}
	}
	train := []nn.Example{mk(0), mk(1), mk(0), mk(1), mk(0)}
	out := Positives(train, 3, rng)
	// 5 originals + 2 positives × 3.
	if len(out) != 11 {
		t.Fatalf("augmented size %d, want 11", len(out))
	}
	pos := 0
	for _, e := range out {
		if e.Y == 1 {
			pos++
		}
	}
	if pos != 8 {
		t.Fatalf("positive count %d, want 8", pos)
	}
	// Originals must be preserved at the front.
	for i := range train {
		if out[i].X != train[i].X || out[i].Y != train[i].Y {
			t.Fatal("originals not preserved")
		}
	}
}

func TestPositivesNoFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	train := []nn.Example{{X: tensor.New(10, 9), Y: 1}}
	out := Positives(train, 0, rng)
	if len(out) != 1 {
		t.Fatal("factor 0 must be a no-op")
	}
}
