package eval

import (
	"math/rand"
	"testing"

	"repro/internal/edge"
	"repro/internal/model"
	"repro/internal/synth"
)

func TestEvaluateSessionWithThresholdDetector(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	subj := synth.NewSubject(1, rng)
	s, err := synth.GenerateSession(subj, synth.SessionConfig{
		Minutes:  2,
		FallRate: 60, // compressed so the short session contains falls
		Tasks:    []int{1, 6, 8, 30, 31, 34},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Falls()) == 0 {
		t.Skip("no falls drawn in this session; seed-dependent")
	}

	clf, _ := model.NewThreshold(model.KindThresholdAcc)
	det, err := edge.NewDetector(clf, edge.DetectorConfig{WindowMS: 200, Overlap: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	bag := edge.NewAirbag(edge.AirbagConfig{RefractorySamples: 500})
	out := EvaluateSession(det, bag, s)

	if out.Falls != len(s.Falls()) {
		t.Fatalf("falls %d, want %d", out.Falls, len(s.Falls()))
	}
	if out.Hours <= 0 {
		t.Fatal("zero duration")
	}
	if out.Detected == 0 {
		t.Fatal("threshold detector missed every session fall (free-fall phases present)")
	}
	if out.Detected > out.Falls {
		t.Fatal("detected more falls than exist")
	}
	if out.InTime > out.Detected {
		t.Fatal("in-time exceeds detected")
	}
	if len(out.LeadTimesMS) != out.Detected {
		t.Fatal("lead time count mismatch")
	}
	if out.MeanLeadMS() < 0 {
		t.Fatal("negative mean lead")
	}
	if out.FalseAlarmsPerHour < 0 {
		t.Fatal("negative FP rate")
	}
	// Conservation: every firing is either a detection or a false alarm.
	if out.Detected+out.FalseAlarms != len(out.Firings) {
		t.Fatalf("%d detections + %d false alarms != %d firings",
			out.Detected, out.FalseAlarms, len(out.Firings))
	}
}

func TestEvaluateSessionDebounceReducesFalseAlarms(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	subj := synth.NewSubject(2, rng)
	// ADL-heavy session with the jumpy tasks that cause false alarms.
	s, err := synth.GenerateSession(subj, synth.SessionConfig{
		Minutes:  2,
		FallRate: -1, // no falls: every firing is a false alarm
		Tasks:    []int{4, 10, 15, 19, 44, 6},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	run := func(debounce int) int {
		clf, _ := model.NewThreshold(model.KindThresholdAcc)
		det, err := edge.NewDetector(clf, edge.DetectorConfig{WindowMS: 200, Overlap: 0.75})
		if err != nil {
			t.Fatal(err)
		}
		bag := edge.NewAirbag(edge.AirbagConfig{Debounce: debounce, RefractorySamples: 200})
		return EvaluateSession(det, bag, s).FalseAlarms
	}
	fa1, fa3 := run(1), run(3)
	if fa3 > fa1 {
		t.Fatalf("debounce-3 false alarms %d > debounce-1 %d", fa3, fa1)
	}
}

func TestEvaluateSessionDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	subj := synth.NewSubject(3, rng)
	s, err := synth.GenerateSession(subj, synth.SessionConfig{Minutes: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	run := func() SessionOutcome {
		clf, _ := model.NewThreshold(model.KindThresholdGyro)
		det, _ := edge.NewDetector(clf, edge.DetectorConfig{WindowMS: 200, Overlap: 0.5})
		bag := edge.NewAirbag(edge.AirbagConfig{})
		return EvaluateSession(det, bag, s)
	}
	a, b := run(), run()
	if a.Detected != b.Detected || a.FalseAlarms != b.FalseAlarms || len(a.Firings) != len(b.Firings) {
		t.Fatal("session evaluation not deterministic")
	}
}
