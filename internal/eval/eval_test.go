package eval

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/tensor"
)

// smallDataset builds a quick 6-subject dataset with falls and the
// hard ADLs, standardised and filtered.
func smallDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := synth.GenerateWorksite(6, synth.Options{
		Tasks:           []int{1, 4, 6, 21, 30, 39, 44},
		LongTaskSeconds: 5,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	d.StandardizeAll()
	d.LowPass()
	return d
}

func TestRunKFoldThresholdBaseline(t *testing.T) {
	d := smallDataset(t)
	res, err := RunKFold(d, model.KindThresholdAcc, PipelineConfig{
		Segment: dataset.SegmentConfig{WindowMS: 200, Overlap: 0.5},
		K:       3, NVal: 1,
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Folds) != 3 {
		t.Fatalf("%d folds", len(res.Folds))
	}
	total := 0
	for _, f := range res.Folds {
		total += f.Confusion.Total()
		if len(f.Test) != f.Confusion.Total() {
			t.Fatal("scored segments != confusion total")
		}
	}
	if res.Pooled.Total() != total {
		t.Fatal("pooled total mismatch")
	}
	// The free-fall threshold must beat coin-flip recall on data with
	// genuine free-fall phases.
	if res.Pooled.Recall() < 0.3 {
		t.Fatalf("threshold recall %.2f unexpectedly poor", res.Pooled.Recall())
	}
}

func TestRunKFoldCNNSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test skipped in -short")
	}
	d := smallDataset(t)
	res, err := RunKFold(d, model.KindCNN, PipelineConfig{
		Segment:       dataset.SegmentConfig{WindowMS: 200, Overlap: 0.5},
		K:             2,
		NVal:          1,
		AugmentFactor: 2,
		MaxTrainNeg:   400,
		Train:         nn.TrainConfig{Epochs: 4, Patience: 4, BatchSize: 32},
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pooled.Total() == 0 {
		t.Fatal("no test segments scored")
	}
	// Trained on real free-fall signatures, even 4 epochs must beat
	// the all-negative degenerate classifier on recall.
	if res.Pooled.Recall() == 0 {
		t.Fatal("CNN learned nothing (zero recall)")
	}
	if res.Pooled.Accuracy() < 0.7 {
		t.Fatalf("accuracy %.2f implausibly low", res.Pooled.Accuracy())
	}
}

func TestRunKFoldErrors(t *testing.T) {
	d := smallDataset(t)
	_, err := RunKFold(d, model.KindCNN, PipelineConfig{
		Segment: dataset.SegmentConfig{WindowMS: 0},
	})
	if err == nil {
		t.Fatal("invalid segment config accepted")
	}
	_, err = RunKFold(d, model.KindCNN, PipelineConfig{
		Segment: dataset.SegmentConfig{WindowMS: 200, Overlap: 0.5},
		K:       50, // more folds than subjects
	})
	if err == nil {
		t.Fatal("k > subjects accepted")
	}
}

func TestSubsampleNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	segs := make([]dataset.Segment, 0, 110)
	for i := 0; i < 100; i++ {
		segs = append(segs, dataset.Segment{Y: 0, X: tensor.New(1, 9)})
	}
	for i := 0; i < 10; i++ {
		segs = append(segs, dataset.Segment{Y: 1, X: tensor.New(1, 9)})
	}
	out := subsampleNegatives(segs, 30, rng)
	pos, neg := dataset.CountLabels(out)
	if pos != 10 {
		t.Fatalf("positives lost: %d", pos)
	}
	if neg != 30 {
		t.Fatalf("negatives %d, want 30", neg)
	}
	// Disabled and no-op cases.
	if len(subsampleNegatives(segs, 0, rng)) != 110 {
		t.Fatal("maxNeg=0 must disable")
	}
	if len(subsampleNegatives(segs, 500, rng)) != 110 {
		t.Fatal("maxNeg above count must be a no-op")
	}
}

func TestEventAnalysisSynthetic(t *testing.T) {
	mk := func(subj, task, trial, y int, score float64) ScoredSegment {
		return ScoredSegment{
			Segment: dataset.Segment{Subject: subj, Task: task, TrialIx: trial, Y: y},
			Score:   score,
		}
	}
	scored := []ScoredSegment{
		// Fall event (task 30), detected: one positive segment hit.
		mk(1, 30, 0, 0, 0.1), mk(1, 30, 0, 1, 0.9), mk(1, 30, 0, 1, 0.2),
		// Fall event (task 30), missed: positives all below threshold.
		mk(2, 30, 0, 1, 0.4), mk(2, 30, 0, 0, 0.1),
		// Fall event (task 21), missed.
		mk(1, 21, 0, 1, 0.2),
		// ADL event (task 6), clean.
		mk(1, 6, 0, 0, 0.2), mk(1, 6, 0, 0, 0.3),
		// ADL event (task 4, red), false positive.
		mk(2, 4, 0, 0, 0.8),
	}
	st := EventAnalysis(scored, 0.5)
	find := func(list []TaskEventStats, task int) TaskEventStats {
		for _, s := range list {
			if s.Task == task {
				return s
			}
		}
		t.Fatalf("task %d missing", task)
		return TaskEventStats{}
	}
	if s := find(st.FallTasks, 30); s.Events != 2 || s.Missed != 1 || s.MissPct != 50 {
		t.Fatalf("task 30 stats %+v", s)
	}
	if s := find(st.FallTasks, 21); s.MissPct != 100 {
		t.Fatalf("task 21 stats %+v", s)
	}
	if s := find(st.ADLTasks, 6); s.MissPct != 0 {
		t.Fatalf("task 6 stats %+v", s)
	}
	if s := find(st.ADLTasks, 4); s.MissPct != 100 {
		t.Fatalf("task 4 stats %+v", s)
	}
	// Aggregates: falls 2/3 missed; ADLs 1/2 FP; red (task 4) 100 %,
	// green (task 6) 0 %.
	if st.AllFallMissPct < 66 || st.AllFallMissPct > 67 {
		t.Fatalf("all-fall miss %.1f", st.AllFallMissPct)
	}
	if st.AllADLFPPct != 50 {
		t.Fatalf("all-ADL FP %.1f", st.AllADLFPPct)
	}
	if st.RedADLFPPct != 100 || st.GreenADLFPPct != 0 {
		t.Fatalf("red/green %.0f/%.0f", st.RedADLFPPct, st.GreenADLFPPct)
	}
	// Sorting: worst first.
	if len(st.FallTasks) > 1 && st.FallTasks[0].MissPct < st.FallTasks[1].MissPct {
		t.Fatal("fall tasks not sorted")
	}
}

func TestEventAnalysisFallTrialPrefallFPIgnored(t *testing.T) {
	// A false positive on a *pre-fall* segment of a fall trial must
	// not surface as an ADL false alarm (the trial is a fall event).
	scored := []ScoredSegment{
		{Segment: dataset.Segment{Subject: 1, Task: 30, TrialIx: 0, Y: 0}, Score: 0.9},
		{Segment: dataset.Segment{Subject: 1, Task: 30, TrialIx: 0, Y: 1}, Score: 0.1},
	}
	st := EventAnalysis(scored, 0.5)
	if len(st.ADLTasks) != 0 {
		t.Fatal("fall trial leaked into ADL stats")
	}
	if len(st.FallTasks) != 1 || st.FallTasks[0].Missed != 1 {
		t.Fatal("fall event should count as missed (its positive segment scored low)")
	}
}

func TestRunKFoldDeterminism(t *testing.T) {
	d := smallDataset(t)
	run := func() nn.Confusion {
		res, err := RunKFold(d, model.KindThresholdGyro, PipelineConfig{
			Segment: dataset.SegmentConfig{WindowMS: 200, Overlap: 0.5},
			K:       2, NVal: 1,
			Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Pooled
	}
	if run() != run() {
		t.Fatal("same seed produced different results")
	}
}

func TestRunKFoldCustomFitter(t *testing.T) {
	d := smallDataset(t)
	calls := 0
	cfg := PipelineConfig{
		Segment: dataset.SegmentConfig{WindowMS: 200, Overlap: 0.5},
		K:       2, NVal: 1,
		Seed: 9,
		Fitter: func(win, pos, total int, train, val []nn.Example, tc nn.TrainConfig, rng *rand.Rand) (model.Classifier, error) {
			calls++
			if win != 20 {
				t.Errorf("fitter window %d", win)
			}
			if len(train) == 0 {
				t.Error("fitter got no training data")
			}
			th, err := model.NewThreshold(model.KindThresholdAcc)
			if err != nil {
				return nil, err
			}
			return th, th.Fit(train, val, tc, rng)
		},
	}
	res, err := RunKFold(d, model.KindCNN /* ignored by the fitter */, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("fitter called %d times, want 2", calls)
	}
	if res.Pooled.Total() == 0 {
		t.Fatal("no test segments scored")
	}
}

func TestRunKFoldLogOutput(t *testing.T) {
	d := smallDataset(t)
	var buf bytes.Buffer
	_, err := RunKFold(d, model.KindThresholdGyro, PipelineConfig{
		Segment: dataset.SegmentConfig{WindowMS: 200, Overlap: 0.5},
		K:       2, NVal: 1,
		Seed: 4,
		Log:  &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fold 1/2") {
		t.Fatalf("log output missing: %q", buf.String())
	}
}
