package eval

import (
	"repro/internal/dataset"
	"repro/internal/edge"
	"repro/internal/synth"
)

// SessionOutcome summarises a continuous-wear simulation: the
// deployment metrics the per-trial tables cannot show — false
// activations per hour of wear and the lead-time distribution.
type SessionOutcome struct {
	Hours float64

	Falls    int
	Detected int // fall events with a firing in [onset−1 s, impact]
	InTime   int // firings ≥ AirbagInflationSamples before impact

	FalseAlarms        int
	FalseAlarmsPerHour float64

	// LeadTimesMS collects per-detected-fall inflation margins.
	LeadTimesMS []float64
	// Firings are the absolute sample indices of every activation.
	Firings []int
}

// matchWindow is how far before onset a firing still counts as the
// fall's detection (pre-fall stumbles legitimately trip the detector
// an instant before the annotated point of no return).
const matchWindowSamples = 100

// EvaluateSession replays a continuous session through the streaming
// detector under an airbag firing policy and attributes every firing
// to a fall event or a false alarm.
func EvaluateSession(det *edge.Detector, bag *edge.Airbag, s *synth.Session) SessionOutcome {
	det.Reset()
	bag.Reset()
	out := SessionOutcome{Hours: s.DurationHours()}

	for i, smp := range s.Trial.Samples {
		r := det.Push(smp.Acc, smp.Gyro)
		if bag.Observe(i, r) {
			out.Firings = append(out.Firings, i)
		}
	}

	falls := s.Falls()
	out.Falls = len(falls)
	used := make([]bool, len(out.Firings))
	for _, ev := range falls {
		for fi, t := range out.Firings {
			if used[fi] {
				continue
			}
			if t >= ev.FallOnset-matchWindowSamples && t <= ev.Impact {
				used[fi] = true
				out.Detected++
				lead := float64(ev.Impact-t) * 1000 / dataset.SampleRate
				out.LeadTimesMS = append(out.LeadTimesMS, lead)
				if ev.Impact-t >= dataset.AirbagInflationSamples {
					out.InTime++
				}
				break
			}
		}
	}
	for fi := range out.Firings {
		if !used[fi] {
			out.FalseAlarms++
		}
	}
	if out.Hours > 0 {
		out.FalseAlarmsPerHour = float64(out.FalseAlarms) / out.Hours
	}
	return out
}

// MeanLeadMS returns the average inflation margin over detected falls
// (0 when none were detected).
func (o *SessionOutcome) MeanLeadMS() float64 {
	if len(o.LeadTimesMS) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range o.LeadTimesMS {
		s += v
	}
	return s / float64(len(o.LeadTimesMS))
}
