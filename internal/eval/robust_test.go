package eval

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/edge"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/synth"
)

// robustFixture builds a streaming threshold detector and a small
// mixed trial set (falls + ADLs) — fast enough for unit tests, hard
// enough that clean recall is high and false alarms are rare.
func robustFixture(t *testing.T) (*edge.Detector, []dataset.Trial) {
	t.Helper()
	clf, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		t.Fatal(err)
	}
	det, err := edge.NewDetector(clf, edge.DetectorConfig{WindowMS: 200, Overlap: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var trials []dataset.Trial
	for _, taskID := range []int{30, 31, 32, 34, 6, 7, 12, 13} {
		task, err := synth.TaskByID(taskID)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 2; rep++ {
			subj := synth.NewSubject(200+rep, rng)
			trials = append(trials, synth.GenerateTrial(subj, task, rep, 6, rng))
		}
	}
	return det, trials
}

func TestEvaluateRobustnessCleanBaseline(t *testing.T) {
	det, trials := robustFixture(t)
	rep := EvaluateRobustness(det, trials, []fault.Kind{fault.KindDropout}, []float64{0.25}, 1)
	if rep.Clean.Fault != "clean" {
		t.Fatalf("clean point mislabelled: %q", rep.Clean.Fault)
	}
	if rep.Clean.FallTrials != 8 || rep.Clean.ADLTrials != 8 {
		t.Fatalf("trial partition wrong: %d falls, %d ADLs",
			rep.Clean.FallTrials, rep.Clean.ADLTrials)
	}
	if rep.Clean.Recall < 0.7 {
		t.Fatalf("clean recall %.2f implausibly low", rep.Clean.Recall)
	}
	if rep.Clean.Quarantined != 0 || rep.Clean.Missing != 0 || rep.Clean.BadScores != 0 {
		t.Fatalf("clean replay accumulated fault stats: %+v", rep.Clean)
	}
	if len(rep.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(rep.Points))
	}
}

func TestEvaluateRobustnessModerateDropoutWithinFivePoints(t *testing.T) {
	det, trials := robustFixture(t)
	// Severity 0.25 is the "moderate field fault": 5 % dropout and
	// sparse NaN bursts. Acceptance: recall within 5 points of clean,
	// zero non-finite scores.
	rep := EvaluateRobustness(det, trials,
		[]fault.Kind{fault.KindDropout, fault.KindNaNBurst}, []float64{0.25}, 7)
	for _, p := range rep.Points {
		if d := p.DeltaRecall(rep.Clean); d > 5 {
			t.Errorf("%s sev %.2f: recall degraded %.1f points (clean %.2f → %.2f)",
				p.Fault, p.Severity, d, rep.Clean.Recall, p.Recall)
		}
		if p.BadScores != 0 {
			t.Errorf("%s: %d non-finite probabilities escaped the pipeline", p.Fault, p.BadScores)
		}
		if math.IsNaN(p.MeanLeadMS) || math.IsNaN(p.FalseAlarmsPerHour) {
			t.Errorf("%s: NaN leaked into aggregate metrics", p.Fault)
		}
	}
	// The injectors must actually have injected something.
	if rep.Points[0].Missing == 0 {
		t.Error("dropout sweep recorded no missing samples")
	}
	if rep.Points[1].Quarantined == 0 {
		t.Error("nan-burst sweep recorded no quarantined samples")
	}
}

func TestEvaluateRobustnessFullTaxonomyDefaults(t *testing.T) {
	det, trials := robustFixture(t)
	rep := EvaluateRobustness(det, trials, nil, nil, 3)
	wantPoints := len(fault.Kinds()) * 3 // default severities {0.1, 0.25, 0.5}
	if len(rep.Points) != wantPoints {
		t.Fatalf("points = %d, want %d", len(rep.Points), wantPoints)
	}
	for _, p := range rep.Points {
		if p.BadScores != 0 {
			t.Errorf("%s sev %.2f: non-finite probability", p.Fault, p.Severity)
		}
		if p.Recall < 0 || p.Recall > 1 || p.InTime < 0 || p.InTime > 1 {
			t.Errorf("%s sev %.2f: rates outside [0,1]", p.Fault, p.Severity)
		}
	}
	// Determinism: the same seed reproduces the same sweep.
	rep2 := EvaluateRobustness(det, trials, nil, nil, 3)
	for i := range rep.Points {
		if rep.Points[i] != rep2.Points[i] {
			t.Fatalf("sweep not deterministic at %s sev %.2f",
				rep.Points[i].Fault, rep.Points[i].Severity)
		}
	}
}
