package eval

import (
	"math"
	"testing"

	"repro/internal/nn"
)

func TestSummaryStatistics(t *testing.T) {
	r := &Result{Folds: []FoldResult{
		{Confusion: nn.Confusion{TP: 8, FN: 2, TN: 90, FP: 0}}, // rec 0.8, prec 1.0
		{Confusion: nn.Confusion{TP: 6, FN: 4, TN: 85, FP: 5}}, // rec 0.6, prec 6/11
	}}
	s := r.Summary()
	if s.Folds != 2 {
		t.Fatalf("folds %d", s.Folds)
	}
	if math.Abs(s.Recall.Mean-0.7) > 1e-12 {
		t.Fatalf("recall mean %g", s.Recall.Mean)
	}
	if math.Abs(s.Recall.Std-0.1) > 1e-12 {
		t.Fatalf("recall std %g", s.Recall.Std)
	}
	wantPrec := (1.0 + 6.0/11) / 2
	if math.Abs(s.Precision.Mean-wantPrec) > 1e-12 {
		t.Fatalf("precision mean %g want %g", s.Precision.Mean, wantPrec)
	}
	if s.Recall.String() == "" {
		t.Fatal("empty stat string")
	}
}

func TestSummaryEmpty(t *testing.T) {
	r := &Result{}
	s := r.Summary()
	if s.Folds != 0 || s.F1.Mean != 0 {
		t.Fatal("empty summary not zero")
	}
}
