package eval

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/edge"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func randomWindow(T int, rng *rand.Rand) *tensor.Tensor {
	x := tensor.New(T, 9)
	d := x.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return x
}

// kfoldWith runs one small CNN cross-validation at the given fold and
// trainer worker counts, capturing the log.
func kfoldWith(t *testing.T, foldWorkers, trainWorkers int) (*Result, string) {
	t.Helper()
	d := smallDataset(t)
	var log bytes.Buffer
	res, err := RunKFold(d, model.KindCNN, PipelineConfig{
		Segment:     dataset.SegmentConfig{WindowMS: 200, Overlap: 0.5},
		K:           3,
		NVal:        1,
		MaxTrainNeg: 60,
		Train:       nn.TrainConfig{Epochs: 2, Patience: 2, BatchSize: 16, Workers: trainWorkers},
		Seed:        5,
		Log:         &log,
		Workers:     foldWorkers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, log.String()
}

// TestRunKFoldParallelIdentical asserts the evaluation-tier contract:
// fanning folds (and the inner trainer) across workers changes neither
// the per-fold results nor the emitted log, byte for byte.
func TestRunKFoldParallelIdentical(t *testing.T) {
	serial, serialLog := kfoldWith(t, 1, 1)
	parallel, parallelLog := kfoldWith(t, 4, 2)
	if !reflect.DeepEqual(serial.Pooled, parallel.Pooled) {
		t.Errorf("pooled confusion diverged: serial %+v, parallel %+v", serial.Pooled, parallel.Pooled)
	}
	if len(serial.Folds) != len(parallel.Folds) {
		t.Fatalf("fold counts diverged: %d vs %d", len(serial.Folds), len(parallel.Folds))
	}
	for fi := range serial.Folds {
		s, p := &serial.Folds[fi], &parallel.Folds[fi]
		if s.Confusion != p.Confusion || s.Threshold != p.Threshold {
			t.Errorf("fold %d diverged: serial %+v thr=%v, parallel %+v thr=%v",
				fi, s.Confusion, s.Threshold, p.Confusion, p.Threshold)
		}
		for i := range s.Test {
			if s.Test[i].Score != p.Test[i].Score {
				t.Errorf("fold %d segment %d score diverged: %v vs %v",
					fi, i, s.Test[i].Score, p.Test[i].Score)
				break
			}
		}
	}
	if serialLog != parallelLog {
		t.Errorf("log output diverged:\nserial:\n%s\nparallel:\n%s", serialLog, parallelLog)
	}
}

// TestEvaluateRobustnessParallelIdentical asserts the sweep is
// condition-deterministic: four workers on independent pipeline
// replicas report exactly what one does.
func TestEvaluateRobustnessParallelIdentical(t *testing.T) {
	det, trials := robustFixture(t)
	serial := EvaluateRobustness(det, trials, nil, nil, 3)

	dets := make([]*edge.Detector, 4)
	for i := range dets {
		clf, err := model.NewThreshold(model.KindThresholdAcc)
		if err != nil {
			t.Fatal(err)
		}
		dets[i], err = edge.NewDetector(clf, edge.DetectorConfig{WindowMS: 200, Overlap: 0.75})
		if err != nil {
			t.Fatal(err)
		}
	}
	parallel := EvaluateRobustnessParallel(dets, trials, nil, nil, 3)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel sweep diverged from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestNetModelCloneIndependent checks that clones used by parallel
// scoring share no state with the original.
func TestNetModelCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := model.New(model.KindCNN, model.Config{WindowSamples: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	x := randomWindow(20, rng)
	if got, want := c.Score(x), m.Score(x); got != want {
		t.Fatalf("clone scores %v, original %v", got, want)
	}
	// Perturb the original; the clone must not follow.
	m.Net.Params()[0].W.Data()[0] += 1
	if c.Score(x) != c.Clone().Score(x) {
		t.Error("clone rescored differently after cloning again")
	}
	if c.Score(x) == m.Score(x) {
		t.Error("clone tracked a weight change in the original")
	}
}
