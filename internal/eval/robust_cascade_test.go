package eval

import (
	"testing"

	"repro/internal/cascade"
	"repro/internal/fault"
	"repro/internal/model"
)

// cascadeFixture builds n independent cascades sharing the plain
// fixture's streaming geometry, for paired plain-vs-cascade sweeps.
func cascadeFixture(t *testing.T, n int) []*cascade.Cascade {
	t.Helper()
	cs := make([]*cascade.Cascade, n)
	for i := range cs {
		primary, err := model.NewThreshold(model.KindThresholdAcc)
		if err != nil {
			t.Fatal(err)
		}
		fallback, err := model.NewThreshold(model.KindThresholdAcc)
		if err != nil {
			t.Fatal(err)
		}
		c, err := cascade.New(primary, fallback, cascade.Config{WindowMS: 200, Overlap: 0.75})
		if err != nil {
			t.Fatal(err)
		}
		cs[i] = c
	}
	return cs
}

// TestEvaluateCascadeRobustnessBeatsPlainUnderBlindingFaults is the
// tentpole property at evaluation level: under the faults that blind
// the base pipeline (gyro death, NaN bursts) at high severity, the
// cascade's miss rate is never worse than the plain detector's,
// because a degraded tier keeps deciding where the plain pipeline
// fails closed.
func TestEvaluateCascadeRobustnessBeatsPlainUnderBlindingFaults(t *testing.T) {
	det, trials := robustFixture(t)
	cs := cascadeFixture(t, 1)
	kinds := []fault.Kind{fault.KindGyroNaN, fault.KindGyroStuck, fault.KindNaNBurst}
	sevs := []float64{0.5}
	plain := EvaluateRobustness(det, trials, kinds, sevs, 21)
	casc := EvaluateCascadeRobustness(cs[0], trials, kinds, sevs, 21)
	if len(plain.Points) != len(casc.Points) {
		t.Fatalf("point count mismatch: %d vs %d", len(plain.Points), len(casc.Points))
	}
	for i := range casc.Points {
		cp, pp := casc.Points[i], plain.Points[i]
		if cp.Fault != pp.Fault || cp.Severity != pp.Severity {
			t.Fatalf("sweep order diverged: %s/%.2f vs %s/%.2f", cp.Fault, cp.Severity, pp.Fault, pp.Severity)
		}
		if cp.MissRate() > pp.MissRate() {
			t.Errorf("%s sev %.2f: cascade misses %.2f > plain %.2f",
				cp.Fault, cp.Severity, cp.MissRate(), pp.MissRate())
		}
		if cp.BadScores != 0 {
			t.Errorf("%s: non-finite probability escaped the cascade", cp.Fault)
		}
		if cp.FalseAlarmRate < 0 || cp.FalseAlarmRate > 1 {
			t.Errorf("%s: false-alarm rate %g outside [0,1]", cp.Fault, cp.FalseAlarmRate)
		}
		total := 0
		for _, n := range cp.TierEvals {
			total += n
		}
		if total == 0 {
			t.Errorf("%s sev %.2f: cascade recorded no decisions at all", cp.Fault, cp.Severity)
		}
	}
	// The gyro faults must actually push decisions off the primary: some
	// work has to land on the degraded tiers.
	for _, i := range []int{0, 1} {
		p := casc.Points[i]
		if p.TierEvals[cascade.TierFallback]+p.TierEvals[cascade.TierThreshold] == 0 {
			t.Errorf("%s sev %.2f: no degraded-tier decisions under a gyro fault", p.Fault, p.Severity)
		}
	}
	// Clean replay stays on the primary.
	if casc.Clean.TierEvals[cascade.TierFallback] != 0 {
		t.Errorf("clean replay used the fallback %d times", casc.Clean.TierEvals[cascade.TierFallback])
	}
}

// TestEvaluateCascadeRobustnessWorkerCountInvariance pins the
// determinism contract: the cascade sweep's report is bit-identical
// whether the conditions run on one worker or four.
func TestEvaluateCascadeRobustnessWorkerCountInvariance(t *testing.T) {
	_, trials := robustFixture(t)
	one := cascadeFixture(t, 1)
	four := cascadeFixture(t, 4)
	kinds := []fault.Kind{fault.KindDropout, fault.KindGyroNaN, fault.KindNaNBurst}
	sevs := []float64{0.25, 0.5}
	a := EvaluateCascadeRobustnessParallel(one, trials, kinds, sevs, 5)
	b := EvaluateCascadeRobustnessParallel(four, trials, kinds, sevs, 5)
	if a.Clean != b.Clean {
		t.Fatalf("clean point differs across worker counts:\n1: %+v\n4: %+v", a.Clean, b.Clean)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %s sev %.2f differs across worker counts:\n1: %+v\n4: %+v",
				a.Points[i].Fault, a.Points[i].Severity, a.Points[i], b.Points[i])
		}
	}
}
