package eval

import (
	"fmt"
	"math"
)

// MetricStat is a mean ± population-std pair over folds.
type MetricStat struct {
	Mean, Std float64
}

// String renders the pair as the paper prints averages.
func (m MetricStat) String() string {
	return fmt.Sprintf("%.2f±%.2f", 100*m.Mean, 100*m.Std)
}

// Summary is the per-fold statistical view of a cross-validation
// result: the pooled (micro) numbers in Result hide fold variance,
// which is exactly what a subject-independent protocol is supposed to
// expose.
type Summary struct {
	Accuracy, Precision, Recall, F1 MetricStat
	Folds                           int
}

// Summary computes per-fold mean ± std of the four headline metrics.
func (r *Result) Summary() Summary {
	n := len(r.Folds)
	s := Summary{Folds: n}
	if n == 0 {
		return s
	}
	get := [4]func(i int) float64{
		func(i int) float64 { return r.Folds[i].Confusion.Accuracy() },
		func(i int) float64 { return r.Folds[i].Confusion.Precision() },
		func(i int) float64 { return r.Folds[i].Confusion.Recall() },
		func(i int) float64 { return r.Folds[i].Confusion.F1() },
	}
	out := [4]*MetricStat{&s.Accuracy, &s.Precision, &s.Recall, &s.F1}
	for k := range get {
		mean := 0.0
		for i := 0; i < n; i++ {
			mean += get[k](i)
		}
		mean /= float64(n)
		variance := 0.0
		for i := 0; i < n; i++ {
			d := get[k](i) - mean
			variance += d * d
		}
		out[k].Mean = mean
		out[k].Std = math.Sqrt(variance / float64(n))
	}
	return s
}
