package eval

import (
	"sort"

	"repro/internal/synth"
)

// EventKey identifies one activity execution.
type EventKey struct {
	Subject, Task, Trial int
}

// TaskEventStats summarises one task's event-level outcome.
type TaskEventStats struct {
	Task   int
	Events int
	// Missed counts fall events with no correctly detected falling
	// segment (Table IVa) — or, for ADL tasks, events with at least
	// one false-positive segment (Table IVb).
	Missed  int
	MissPct float64
}

// EventStats is the Table IV analysis.
type EventStats struct {
	// FallTasks lists fall tasks sorted by miss percentage descending.
	FallTasks []TaskEventStats
	// ADLTasks lists ADL tasks sorted by false-positive percentage
	// descending.
	ADLTasks []TaskEventStats
	// Aggregates (percent).
	AllFallMissPct float64
	AllADLFPPct    float64
	RedADLFPPct    float64
	GreenADLFPPct  float64
}

// EventAnalysis folds scored segments into event-level statistics at
// the given decision threshold. A fall event counts as detected when
// at least one of its usable falling segments (label 1) is classified
// falling — that is the segment whose trigger would inflate the
// airbag in time. An ADL event counts as a false positive when any of
// its segments is classified falling (one spurious trigger is one
// useless inflation).
func EventAnalysis(scored []ScoredSegment, thr float64) EventStats {
	type acc struct {
		isFall   bool
		detected bool
		falsePos bool
	}
	// Maps are paired with insertion-order key slices: ranging a map
	// would feed Go's randomized iteration order into the tallies and
	// the task tables (fallvet: determinism), while insertion order
	// follows the deterministic scored-segment order.
	events := map[EventKey]*acc{}
	var order []EventKey
	for i := range scored {
		s := &scored[i]
		key := EventKey{s.Subject, s.Task, s.TrialIx}
		a := events[key]
		if a == nil {
			task, err := synth.TaskByID(s.Task)
			isFall := err == nil && task.IsFall()
			a = &acc{isFall: isFall}
			events[key] = a
			order = append(order, key)
		}
		cut := thr
		if s.Threshold > 0 {
			cut = s.Threshold // fold-tuned threshold wins
		}
		pred := s.Score >= cut
		if pred {
			if s.Y == 1 {
				a.detected = true
			} else if !a.isFall {
				a.falsePos = true
			}
		}
	}

	fall := map[int]*TaskEventStats{}
	adl := map[int]*TaskEventStats{}
	var fallOrder, adlOrder []int
	for _, key := range order {
		a := events[key]
		if a.isFall {
			st := fall[key.Task]
			if st == nil {
				st = &TaskEventStats{Task: key.Task}
				fall[key.Task] = st
				fallOrder = append(fallOrder, key.Task)
			}
			st.Events++
			if !a.detected {
				st.Missed++
			}
		} else {
			st := adl[key.Task]
			if st == nil {
				st = &TaskEventStats{Task: key.Task}
				adl[key.Task] = st
				adlOrder = append(adlOrder, key.Task)
			}
			st.Events++
			if a.falsePos {
				st.Missed++
			}
		}
	}

	out := EventStats{}
	var fallEvents, fallMissed, adlEvents, adlFP int
	var redEvents, redFP, greenEvents, greenFP int
	for _, task := range fallOrder {
		st := fall[task]
		st.MissPct = 100 * float64(st.Missed) / float64(st.Events)
		fallEvents += st.Events
		fallMissed += st.Missed
		out.FallTasks = append(out.FallTasks, *st)
	}
	for _, task := range adlOrder {
		st := adl[task]
		st.MissPct = 100 * float64(st.Missed) / float64(st.Events)
		adlEvents += st.Events
		adlFP += st.Missed
		task, err := synth.TaskByID(st.Task)
		if err == nil && task.Red {
			redEvents += st.Events
			redFP += st.Missed
		} else {
			greenEvents += st.Events
			greenFP += st.Missed
		}
		out.ADLTasks = append(out.ADLTasks, *st)
	}
	sortStats := func(s []TaskEventStats) {
		sort.Slice(s, func(i, j int) bool {
			// Ordering comparisons, not equality: the percentages are
			// finite by construction and ties fall through to the task
			// number, so the order is total and deterministic.
			if s[i].MissPct > s[j].MissPct {
				return true
			}
			if s[i].MissPct < s[j].MissPct {
				return false
			}
			return s[i].Task < s[j].Task
		})
	}
	sortStats(out.FallTasks)
	sortStats(out.ADLTasks)
	if fallEvents > 0 {
		out.AllFallMissPct = 100 * float64(fallMissed) / float64(fallEvents)
	}
	if adlEvents > 0 {
		out.AllADLFPPct = 100 * float64(adlFP) / float64(adlEvents)
	}
	if redEvents > 0 {
		out.RedADLFPPct = 100 * float64(redFP) / float64(redEvents)
	}
	if greenEvents > 0 {
		out.GreenADLFPPct = 100 * float64(greenFP) / float64(greenEvents)
	}
	return out
}
