package eval

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/edge"
	"repro/internal/fault"
	"repro/internal/par"
)

// RobustnessPoint is the streaming detector's performance under one
// fault condition (or the clean baseline when Fault is "clean").
type RobustnessPoint struct {
	Fault    string
	Severity float64

	FallTrials, ADLTrials int

	// Recall is the fraction of fall trials that triggered at all;
	// InTime the fraction that triggered early enough for the airbag.
	Recall, InTime float64
	// MeanLeadMS averages the inflation margin over triggered falls.
	MeanLeadMS float64
	// FalseAlarmsPerHour normalises ADL-trial firings by the ADL
	// stream duration — the deployment cost metric.
	FalseAlarmsPerHour float64

	// Quarantined/Missing/BadScores aggregate the detector's fault
	// counters over the sweep; BadScores must stay 0 (the hardened
	// pipeline never emits a non-finite probability).
	Quarantined, Missing, BadScores int
}

// DeltaRecall returns the recall degradation versus a baseline, in
// points (positive = worse than clean).
func (p RobustnessPoint) DeltaRecall(clean RobustnessPoint) float64 {
	return 100 * (clean.Recall - p.Recall)
}

// DeltaLeadMS returns the lead-time degradation versus a baseline, in
// milliseconds (positive = less margin than clean).
func (p RobustnessPoint) DeltaLeadMS(clean RobustnessPoint) float64 {
	return clean.MeanLeadMS - p.MeanLeadMS
}

// RobustnessReport is a full fault-type × severity sweep against the
// clean baseline.
type RobustnessReport struct {
	Clean  RobustnessPoint
	Points []RobustnessPoint
}

// EvaluateRobustness replays every trial through the streaming
// detector once clean and once per (fault kind, severity) pair,
// measuring how much of the clean recall, lead time and false-alarm
// rate survives each sensor-fault condition. Fault randomness is
// derived from seed and the injector is reset per trial, so the sweep
// is reproducible sample for sample.
func EvaluateRobustness(det *edge.Detector, trials []dataset.Trial,
	kinds []fault.Kind, severities []float64, seed int64) *RobustnessReport {
	return EvaluateRobustnessParallel([]*edge.Detector{det}, trials, kinds, severities, seed)
}

// EvaluateRobustnessParallel is EvaluateRobustness with the fault
// conditions fanned out across len(dets) workers. Each detector must
// be an independent pipeline instance (detectors carry filter, ring
// and classifier-scratch state): worker w replays its conditions on
// dets[w], every condition's injector is seeded from the sweep seed
// and the condition alone, and SimulateFaulty resets the detector per
// trial — so the report is identical for any detector count.
func EvaluateRobustnessParallel(dets []*edge.Detector, trials []dataset.Trial,
	kinds []fault.Kind, severities []float64, seed int64) *RobustnessReport {
	if len(kinds) == 0 {
		kinds = fault.Kinds()
	}
	if len(severities) == 0 {
		severities = []float64{0.1, 0.25, 0.5}
	}
	type cond struct {
		kind fault.Kind
		sev  float64
	}
	var conds []cond
	for _, k := range kinds {
		for _, sev := range severities {
			conds = append(conds, cond{k, sev})
		}
	}
	rep := &RobustnessReport{Points: make([]RobustnessPoint, len(conds))}
	// Condition index 0 is the clean baseline; faults follow in sweep
	// order. Each point lands in its own slot.
	par.New(len(dets)).Run(len(conds)+1, func(w, i int) {
		det := dets[w]
		if i == 0 {
			rep.Clean = simulateAll(det, trials, nil)
			rep.Clean.Fault = "clean"
			return
		}
		c := conds[i-1]
		inj := fault.New(c.kind, c.sev, seed+int64(c.kind)*1000+int64(100*c.sev))
		p := simulateAll(det, trials, inj)
		p.Fault = c.kind.String()
		p.Severity = c.sev
		rep.Points[i-1] = p
	})
	return rep
}

// simulateAll replays every trial under one fault condition.
func simulateAll(det *edge.Detector, trials []dataset.Trial, inj fault.Injector) RobustnessPoint {
	var p RobustnessPoint
	detected, inTime := 0, 0
	leadSum := 0.0
	falseAlarms := 0
	adlSamples := 0
	for i := range trials {
		t := &trials[i]
		sim := det.SimulateFaulty(t, inj)
		st := det.Stats()
		p.Quarantined += st.Quarantined
		p.Missing += st.Missing
		p.BadScores += st.BadScores
		if t.IsFall() {
			p.FallTrials++
			if sim.Triggered {
				detected++
				leadSum += sim.LeadTimeMS
				if sim.InTime {
					inTime++
				}
			}
		} else {
			p.ADLTrials++
			adlSamples += len(t.Samples)
			if sim.FalseAlarm {
				falseAlarms++
			}
		}
	}
	if p.FallTrials > 0 {
		p.Recall = float64(detected) / float64(p.FallTrials)
		p.InTime = float64(inTime) / float64(p.FallTrials)
	}
	if detected > 0 {
		p.MeanLeadMS = leadSum / float64(detected)
	}
	if hours := float64(adlSamples) / dataset.SampleRate / 3600; hours > 0 {
		p.FalseAlarmsPerHour = float64(falseAlarms) / hours
	}
	if math.IsNaN(p.MeanLeadMS) {
		p.MeanLeadMS = 0 // defensive: a sim must never leak NaN upward
	}
	return p
}
