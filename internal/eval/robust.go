package eval

import (
	"math"

	"repro/internal/cascade"
	"repro/internal/dataset"
	"repro/internal/edge"
	"repro/internal/fault"
	"repro/internal/par"
	"repro/internal/tensor"
)

// RobustnessPoint is the streaming detector's performance under one
// fault condition (or the clean baseline when Fault is "clean").
type RobustnessPoint struct {
	Fault    string
	Severity float64

	FallTrials, ADLTrials int

	// Recall is the fraction of fall trials that triggered at all;
	// InTime the fraction that triggered early enough for the airbag.
	Recall, InTime float64
	// MeanLeadMS averages the inflation margin over triggered falls.
	MeanLeadMS float64
	// FalseAlarmsPerHour normalises ADL-trial firings by the ADL
	// stream duration — the deployment cost metric.
	FalseAlarmsPerHour float64
	// FalseAlarmRate is the fraction of ADL trials that false-fired —
	// the per-trial companion to FalseAlarmsPerHour, used by the
	// cascade acceptance criterion (≤ 2× the clean baseline).
	FalseAlarmRate float64

	// Quarantined/Missing/BadScores aggregate the detector's fault
	// counters over the sweep; BadScores must stay 0 (the hardened
	// pipeline never emits a non-finite probability).
	Quarantined, Missing, BadScores int
	// Stuck and Drift aggregate the per-channel health detections
	// (whole-vector + per-axis stuck latches, baseline drift) — the
	// fault classes the Quarantined column is structurally blind to,
	// because a stuck or drifting reading is perfectly finite.
	Stuck, Drift int

	// TierEvals counts decisions per cascade tier over the condition's
	// whole replay (zero for non-cascade sweeps); TierTriggers counts
	// which tier produced each fall trigger. Together they show where
	// the cascade actually decided under each fault.
	TierEvals    [cascade.NumTiers]int
	TierTriggers [cascade.NumTiers]int
}

// MissRate is 1 − Recall: the fraction of fall trials the detector
// never fired on — the cost a pre-impact airbag cares most about.
func (p RobustnessPoint) MissRate() float64 { return 1 - p.Recall }

// DeltaRecall returns the recall degradation versus a baseline, in
// points (positive = worse than clean).
func (p RobustnessPoint) DeltaRecall(clean RobustnessPoint) float64 {
	return 100 * (clean.Recall - p.Recall)
}

// DeltaLeadMS returns the lead-time degradation versus a baseline, in
// milliseconds (positive = less margin than clean).
func (p RobustnessPoint) DeltaLeadMS(clean RobustnessPoint) float64 {
	return clean.MeanLeadMS - p.MeanLeadMS
}

// RobustnessReport is a full fault-type × severity sweep against the
// clean baseline.
type RobustnessReport struct {
	Clean  RobustnessPoint
	Points []RobustnessPoint
}

// EvaluateRobustness replays every trial through the streaming
// detector once clean and once per (fault kind, severity) pair,
// measuring how much of the clean recall, lead time and false-alarm
// rate survives each sensor-fault condition. Fault randomness is
// derived from seed and the injector is reset per trial, so the sweep
// is reproducible sample for sample.
func EvaluateRobustness[S tensor.Scalar](det *edge.DetectorOf[S], trials []dataset.Trial,
	kinds []fault.Kind, severities []float64, seed int64) *RobustnessReport {
	return EvaluateRobustnessParallel([]*edge.DetectorOf[S]{det}, trials, kinds, severities, seed)
}

// EvaluateRobustnessParallel is EvaluateRobustness with the fault
// conditions fanned out across len(dets) workers. Each detector must
// be an independent pipeline instance (detectors carry filter, ring
// and classifier-scratch state): worker w replays its conditions on
// dets[w], every condition's injector is seeded from the sweep seed
// and the condition alone, and SimulateFaulty resets the detector per
// trial — so the report is identical for any detector count.
func EvaluateRobustnessParallel[S tensor.Scalar](dets []*edge.DetectorOf[S], trials []dataset.Trial,
	kinds []fault.Kind, severities []float64, seed int64) *RobustnessReport {
	return sweepConditions(len(dets), kinds, severities, func(w int, inj fault.Injector) RobustnessPoint {
		return simulateAll(dets[w], trials, inj)
	}, seed)
}

// EvaluateCascadeRobustness is the fault sweep over the supervised
// detector cascade: same conditions, same injector seeding, but every
// trial replays through cascade.SimulateFaulty, so the report carries
// per-tier decision and trigger counts alongside the base metrics. A
// plain and a cascade sweep over the same trials, kinds, severities
// and seed see sample-identical fault streams — the pairing the
// with/without-cascade comparison depends on.
func EvaluateCascadeRobustness[S tensor.Scalar](c *cascade.CascadeOf[S], trials []dataset.Trial,
	kinds []fault.Kind, severities []float64, seed int64) *RobustnessReport {
	return EvaluateCascadeRobustnessParallel([]*cascade.CascadeOf[S]{c}, trials, kinds, severities, seed)
}

// EvaluateCascadeRobustnessParallel fans the fault conditions out
// across len(cs) workers. Each cascade must be an independent instance
// over its own cloned classifiers; the report is identical for any
// worker count.
func EvaluateCascadeRobustnessParallel[S tensor.Scalar](cs []*cascade.CascadeOf[S], trials []dataset.Trial,
	kinds []fault.Kind, severities []float64, seed int64) *RobustnessReport {
	return sweepConditions(len(cs), kinds, severities, func(w int, inj fault.Injector) RobustnessPoint {
		return simulateAllCascade(cs[w], trials, inj)
	}, seed)
}

// sweepConditions runs one replay per (kind, severity) condition plus
// the clean baseline, fanned across workers. Injector seeding depends
// only on the sweep seed and the condition, never the worker, so the
// report is bit-identical for any worker count.
func sweepConditions(workers int, kinds []fault.Kind, severities []float64,
	replay func(w int, inj fault.Injector) RobustnessPoint, seed int64) *RobustnessReport {
	if len(kinds) == 0 {
		kinds = fault.Kinds()
	}
	if len(severities) == 0 {
		severities = []float64{0.1, 0.25, 0.5}
	}
	type cond struct {
		kind fault.Kind
		sev  float64
	}
	var conds []cond
	for _, k := range kinds {
		for _, sev := range severities {
			conds = append(conds, cond{k, sev})
		}
	}
	rep := &RobustnessReport{Points: make([]RobustnessPoint, len(conds))}
	// Condition index 0 is the clean baseline; faults follow in sweep
	// order. Each point lands in its own slot.
	par.New(workers).Run(len(conds)+1, func(w, i int) {
		if i == 0 {
			rep.Clean = replay(w, nil)
			rep.Clean.Fault = "clean"
			return
		}
		c := conds[i-1]
		inj := fault.New(c.kind, c.sev, seed+int64(c.kind)*1000+int64(100*c.sev))
		p := replay(w, inj)
		p.Fault = c.kind.String()
		p.Severity = c.sev
		rep.Points[i-1] = p
	})
	return rep
}

// simulateAll replays every trial under one fault condition.
func simulateAll[S tensor.Scalar](det *edge.DetectorOf[S], trials []dataset.Trial, inj fault.Injector) RobustnessPoint {
	var p RobustnessPoint
	detected, inTime := 0, 0
	leadSum := 0.0
	falseAlarms := 0
	adlSamples := 0
	for i := range trials {
		t := &trials[i]
		sim := det.SimulateFaulty(t, inj)
		st := det.Stats()
		p.Quarantined += st.Quarantined
		p.Missing += st.Missing
		p.BadScores += st.BadScores
		p.Stuck += st.AccStuck + st.GyroStuck
		p.Drift += st.AccDrift + st.GyroDrift
		if t.IsFall() {
			p.FallTrials++
			if sim.Triggered {
				detected++
				leadSum += sim.LeadTimeMS
				if sim.InTime {
					inTime++
				}
			}
		} else {
			p.ADLTrials++
			adlSamples += len(t.Samples)
			if sim.FalseAlarm {
				falseAlarms++
			}
		}
	}
	p.finish(detected, inTime, leadSum, falseAlarms, adlSamples)
	return p
}

// simulateAllCascade replays every trial through the cascade under one
// fault condition, accumulating the per-tier accounting.
func simulateAllCascade[S tensor.Scalar](c *cascade.CascadeOf[S], trials []dataset.Trial, inj fault.Injector) RobustnessPoint {
	var p RobustnessPoint
	detected, inTime := 0, 0
	leadSum := 0.0
	falseAlarms := 0
	adlSamples := 0
	for i := range trials {
		t := &trials[i]
		sim := c.SimulateFaulty(t, inj)
		st := c.Detector().Stats()
		p.Quarantined += st.Quarantined
		p.Missing += st.Missing
		p.BadScores += st.BadScores
		p.Stuck += st.AccStuck + st.GyroStuck
		p.Drift += st.AccDrift + st.GyroDrift
		for tier, n := range sim.TierEvals {
			p.TierEvals[tier] += n
		}
		if sim.Triggered {
			p.TierTriggers[sim.TriggerTier]++
		}
		if t.IsFall() {
			p.FallTrials++
			if sim.Triggered {
				detected++
				leadSum += sim.LeadTimeMS
				if sim.InTime {
					inTime++
				}
			}
		} else {
			p.ADLTrials++
			adlSamples += len(t.Samples)
			if sim.FalseAlarm {
				falseAlarms++
			}
		}
	}
	p.finish(detected, inTime, leadSum, falseAlarms, adlSamples)
	return p
}

// finish derives the rate metrics from the raw tallies.
func (p *RobustnessPoint) finish(detected, inTime int, leadSum float64, falseAlarms, adlSamples int) {
	if p.FallTrials > 0 {
		p.Recall = float64(detected) / float64(p.FallTrials)
		p.InTime = float64(inTime) / float64(p.FallTrials)
	}
	if detected > 0 {
		p.MeanLeadMS = leadSum / float64(detected)
	}
	if p.ADLTrials > 0 {
		p.FalseAlarmRate = float64(falseAlarms) / float64(p.ADLTrials)
	}
	if hours := float64(adlSamples) / dataset.SampleRate / 3600; hours > 0 {
		p.FalseAlarmsPerHour = float64(falseAlarms) / hours
	}
	if math.IsNaN(p.MeanLeadMS) {
		p.MeanLeadMS = 0 // defensive: a sim must never leak NaN upward
	}
}
