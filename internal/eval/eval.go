// Package eval orchestrates the paper's experimental protocol: the
// subject-independent 5-fold cross-validation (§III-C) over labelled
// segments, with fall-class augmentation, class weighting, output-bias
// initialisation and early stopping; segment-level metrics (Table III)
// and the event-level misclassification analysis (Table IV).
package eval

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/augment"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/par"
)

// PipelineConfig assembles one experiment's hyper-parameters.
type PipelineConfig struct {
	// Segment controls window size, overlap and labelling.
	Segment dataset.SegmentConfig
	// K is the fold count (paper: 5); NVal the validation subjects
	// per fold (paper: 4).
	K, NVal int
	// AugmentFactor is how many warped copies each positive training
	// segment spawns (paper applies time + window warping).
	AugmentFactor int
	// MaxTrainNeg, when positive, subsamples the negative training
	// segments to this count per fold. The test set is never touched.
	// This is a compute-scaling knob for CI-scale runs; class weights
	// are computed after subsampling, so the loss stays calibrated.
	MaxTrainNeg int
	// Train carries epochs/patience/batch (paper: 200/20).
	Train nn.TrainConfig
	// Threshold is the decision threshold (default 0.5).
	Threshold float64
	// TuneThreshold selects the decision threshold per fold on the
	// validation subjects by maximising F-beta (the paper configures
	// its model "to minimize false positives" rather than using the
	// raw 0.5 cut). Ignored when the fold has no validation segments.
	TuneThreshold bool
	// TuneBeta is the F-beta weighting for threshold tuning: 1 is
	// plain F1; values < 1 weight precision more (the paper's stated
	// preference — fewer useless airbag activations). Zero selects 1.
	TuneBeta float64
	// Seed drives every stochastic choice of the pipeline.
	Seed int64
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// Workers fans the cross-validation folds out across this many
	// goroutines (≤ 1 runs serially). Every fold's randomness derives
	// solely from Seed and the fold index and per-fold logs are
	// buffered and emitted in fold order, so results and output are
	// identical for any worker count. Inner data-parallel training is
	// configured separately via Train.Workers.
	Workers int

	// Ablation switches (experiment E9): disable the paper's
	// imbalance countermeasures one at a time.
	DisableClassWeights bool
	DisableBiasInit     bool
	DisableAugment      bool

	// Fitter, when non-nil, replaces the default per-fold model
	// construction and training — the hook behind the knowledge-
	// distillation experiment, where "fitting" means training a
	// teacher and distilling a student. It receives the fold's
	// training/validation examples (already augmented and weighted
	// per the other options) and returns the classifier to score the
	// fold's test set with. With Workers > 1 the hook runs from
	// multiple goroutines and must be safe to call concurrently.
	Fitter func(winSamples, pos, total int, train, val []nn.Example, tc nn.TrainConfig, rng *rand.Rand) (model.Classifier, error)
}

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.K == 0 {
		c.K = 5
	}
	if c.NVal == 0 {
		c.NVal = 4
	}
	if c.Threshold == 0 {
		c.Threshold = 0.5
	}
	return c
}

// ScoredSegment pairs a test segment with its model score and the
// fold's decision threshold.
type ScoredSegment struct {
	dataset.Segment
	Score float64
	// Threshold is the fold-specific decision threshold; 0 means the
	// caller should apply its own.
	Threshold float64
}

// FoldResult is one fold's outcome.
type FoldResult struct {
	Confusion nn.Confusion
	History   *nn.History
	Test      []ScoredSegment
	// Threshold is the decision threshold used for this fold (tuned
	// on validation data when TuneThreshold is set).
	Threshold float64
}

// Result aggregates a full cross-validation run of one model.
type Result struct {
	Model  string
	Window int // ms
	Folds  []FoldResult
	// Pooled merges all folds' confusion matrices (micro average).
	Pooled nn.Confusion
}

// AllScored concatenates every fold's scored test segments.
func (r *Result) AllScored() []ScoredSegment {
	var out []ScoredSegment
	for i := range r.Folds {
		out = append(out, r.Folds[i].Test...)
	}
	return out
}

// buildTrainable constructs a fresh model for a fold.
func buildTrainable(kind model.Kind, winSamples, pos, total int, rng *rand.Rand) (model.Trainable, error) {
	if kind == model.KindThresholdAcc || kind == model.KindThresholdGyro {
		return model.NewThreshold(kind)
	}
	return model.New(kind, model.Config{
		WindowSamples: winSamples,
		PosCount:      pos,
		TotalCount:    total,
	}, rng)
}

func toExamples(segs []dataset.Segment) []nn.Example {
	out := make([]nn.Example, len(segs))
	for i := range segs {
		out[i] = nn.Example{X: segs[i].X, Y: segs[i].Y}
	}
	return out
}

// RunKFold executes the full protocol for one model family on an
// already standardised and filtered dataset.
func RunKFold(d *dataset.Dataset, kind model.Kind, cfg PipelineConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Segment.Validate(); err != nil {
		return nil, err
	}
	segs, err := d.ExtractAll(cfg.Segment)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("eval: no segments extracted")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	folds, err := dataset.KFoldSubjects(d.Subjects(), cfg.K, cfg.NVal, rng)
	if err != nil {
		return nil, err
	}

	res := &Result{Model: kind.String(), Window: cfg.Segment.WindowMS}
	res.Folds = make([]FoldResult, len(folds))
	errs := make([]error, len(folds))
	logs := make([]bytes.Buffer, len(folds))
	// Folds are independent given the split (each fold's rng is seeded
	// from Seed and the fold index alone), so they fan out across the
	// pool; fold fi's result lands in slot fi and its log lines in
	// buffer fi, making the run identical to a serial one.
	par.New(cfg.Workers).Run(len(folds), func(_, fi int) {
		var w io.Writer
		if cfg.Log != nil {
			w = &logs[fi]
		}
		res.Folds[fi], errs[fi] = runFold(kind, cfg, res, segs, &folds[fi], fi, len(folds), w)
	})
	for fi := range folds {
		if cfg.Log != nil {
			//fallvet:ignore checkedio best-effort progress sink; a broken log writer must not abort the sweep
			cfg.Log.Write(logs[fi].Bytes())
		}
		if errs[fi] != nil {
			return nil, errs[fi]
		}
	}
	for i := range res.Folds {
		res.Pooled.Merge(res.Folds[i].Confusion)
	}
	return res, nil
}

// runFold trains and scores one cross-validation fold. It touches only
// fold-local state: segs is read-only, the fold rng is derived from the
// seed and fold index, and progress lines go to the caller's buffer.
func runFold(kind model.Kind, cfg PipelineConfig, res *Result, segs []dataset.Segment,
	fold *dataset.Fold, fi, nFolds int, log io.Writer) (FoldResult, error) {
	trainSegs, valSegs, testSegs := fold.SplitSegments(segs)
	if len(trainSegs) == 0 || len(testSegs) == 0 {
		return FoldResult{}, fmt.Errorf("eval: fold %d has empty train or test", fi)
	}
	foldRng := rand.New(rand.NewSource(cfg.Seed + int64(1000*(fi+1))))

	train := toExamples(subsampleNegatives(trainSegs, cfg.MaxTrainNeg, foldRng))
	if !cfg.DisableAugment {
		train = augment.Positives(train, cfg.AugmentFactor, foldRng)
	}
	val := toExamples(valSegs)

	pos := 0
	for _, e := range train {
		pos += e.Y
	}
	biasPos, biasTotal := pos, len(train)
	if cfg.DisableBiasInit {
		biasPos, biasTotal = 0, 0
	}
	trainCfg := cfg.Train
	if cfg.DisableClassWeights {
		trainCfg.ClassWeights = [2]float64{1, 1}
	}
	var m model.Classifier
	var err error
	if cfg.Fitter != nil {
		m, err = cfg.Fitter(cfg.Segment.WindowSamples(), biasPos, biasTotal, train, val, trainCfg, foldRng)
		if err != nil {
			return FoldResult{}, err
		}
	} else {
		tm, err := buildTrainable(kind, cfg.Segment.WindowSamples(), biasPos, biasTotal, foldRng)
		if err != nil {
			return FoldResult{}, err
		}
		if err := tm.Fit(train, val, trainCfg, foldRng); err != nil {
			return FoldResult{}, err
		}
		m = tm
	}

	thr := cfg.Threshold
	if cfg.TuneThreshold && len(val) > 0 {
		beta := cfg.TuneBeta
		if beta <= 0 {
			beta = 1
		}
		thr = tuneThreshold(m, val, beta)
	}
	fr := FoldResult{Threshold: thr}
	for i := range testSegs {
		sc := m.Score(testSegs[i].X)
		fr.Confusion.AddThreshold(sc, testSegs[i].Y, thr)
		fr.Test = append(fr.Test, ScoredSegment{Segment: testSegs[i], Score: sc, Threshold: thr})
	}
	if log != nil {
		fmt.Fprintf(log, "%s %dms fold %d/%d: %v thr=%.2f (train %d, test %d)\n",
			res.Model, res.Window, fi+1, nFolds, &fr.Confusion, thr, len(train), len(testSegs))
	}
	return fr, nil
}

// tuneThreshold sweeps the decision threshold over the validation set
// and returns the F-beta-maximising value, breaking ties toward higher
// thresholds (fewer false positives — the paper's stated preference).
func tuneThreshold(m model.Classifier, val []nn.Example, beta float64) float64 {
	scores := make([]float64, len(val))
	for i, e := range val {
		scores[i] = m.Score(e.X)
	}
	fbeta := func(c nn.Confusion) float64 {
		p, r := c.Precision(), c.Recall()
		b2 := beta * beta
		if p == 0 && r == 0 {
			return 0
		}
		return (1 + b2) * p * r / (b2*p + r)
	}
	best, bestScore := 0.5, -1.0
	for thr := 0.05; thr <= 0.951; thr += 0.025 {
		var c nn.Confusion
		for i, e := range val {
			c.AddThreshold(scores[i], e.Y, thr)
		}
		if s := fbeta(c); s >= bestScore {
			bestScore, best = s, thr
		}
	}
	return best
}

// subsampleNegatives keeps all positives and at most maxNeg random
// negatives (0 disables).
func subsampleNegatives(segs []dataset.Segment, maxNeg int, rng *rand.Rand) []dataset.Segment {
	if maxNeg <= 0 {
		return segs
	}
	var pos, neg []dataset.Segment
	for i := range segs {
		if segs[i].Y == 1 {
			pos = append(pos, segs[i])
		} else {
			neg = append(neg, segs[i])
		}
	}
	if len(neg) <= maxNeg {
		return segs
	}
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	out := append(pos, neg[:maxNeg]...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
