package eval

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// scoreByFirst is a stub classifier whose score is the window's first
// element, letting tests place scores exactly.
type scoreByFirst struct{}

func (scoreByFirst) Name() string                   { return "stub" }
func (scoreByFirst) Score(x *tensor.Tensor) float64 { return x.Data()[0] }

func ex(score float64, y int) nn.Example {
	x := tensor.New(1)
	x.Data()[0] = score
	return nn.Example{X: x, Y: y}
}

func TestTuneThresholdSeparablePoint(t *testing.T) {
	// Positives at 0.8, negatives at 0.3: any threshold in (0.3, 0.8]
	// is perfect; tie-breaking must pick the highest (fewest FPs).
	val := []nn.Example{ex(0.8, 1), ex(0.85, 1), ex(0.3, 0), ex(0.25, 0)}
	thr := tuneThreshold(scoreByFirst{}, val, 1)
	if thr <= 0.3 || thr > 0.8 {
		t.Fatalf("tuned threshold %.3f outside (0.3, 0.8]", thr)
	}
	if thr < 0.75 {
		t.Fatalf("tie-break should prefer high thresholds, got %.3f", thr)
	}
}

func TestTuneThresholdPrefersPrecisionAtHighCut(t *testing.T) {
	// One noisy negative at 0.9 above the positive cluster at 0.7: the
	// best F1 keeps the positives (threshold ≤ 0.7) and accepts that
	// FP rather than losing all recall.
	val := []nn.Example{ex(0.7, 1), ex(0.7, 1), ex(0.7, 1), ex(0.9, 0), ex(0.1, 0)}
	thr := tuneThreshold(scoreByFirst{}, val, 1)
	var c nn.Confusion
	for _, e := range val {
		c.AddThreshold(e.X.Data()[0], e.Y, thr)
	}
	if c.Recall() != 1 {
		t.Fatalf("threshold %.3f sacrificed recall: %v", thr, &c)
	}
}

func TestTuneThresholdBetaBiasesPrecision(t *testing.T) {
	// Mixed cluster: positives at 0.6 and 0.9, negatives at 0.55.
	// F1 tuning keeps both positives (threshold ≤ 0.6, one FP batch);
	// a precision-heavy β=0.3 prefers the clean high cut at ~0.9.
	var val []nn.Example
	for i := 0; i < 4; i++ {
		val = append(val, ex(0.9, 1))
	}
	for i := 0; i < 4; i++ {
		val = append(val, ex(0.6, 1))
	}
	for i := 0; i < 6; i++ {
		val = append(val, ex(0.55, 0))
	}
	val = append(val, ex(0.62, 0)) // noise above the low positives
	f1Thr := tuneThreshold(scoreByFirst{}, val, 1)
	precThr := tuneThreshold(scoreByFirst{}, val, 0.3)
	if precThr < f1Thr {
		t.Fatalf("β=0.3 threshold %.3f below F1 threshold %.3f", precThr, f1Thr)
	}
	if precThr <= 0.62 {
		t.Fatalf("precision-biased threshold %.3f should clear the noisy negative", precThr)
	}
}
