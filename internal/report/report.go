// Package report renders the experiment harness's tables in aligned
// plain text and in Markdown, so cmd/fallbench output can be compared
// line by line with the paper's tables.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple titled grid.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(w) && len([]rune(c)) > w[i] {
				w[i] = len([]rune(c))
			}
		}
	}
	return w
}

// Fprint writes the aligned plain-text rendering.
func (t *Table) Fprint(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	ws := t.widths()
	line := func(cells []string) {
		parts := make([]string, len(ws))
		for i := range ws {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, ws[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(ws))
	for i := range ws {
		sep[i] = strings.Repeat("-", ws[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// Markdown returns the GitHub-flavoured Markdown rendering.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Headers, " | "))
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	return b.String()
}

func pad(s string, w int) string {
	n := w - len([]rune(s))
	if n <= 0 {
		return s
	}
	return s + strings.Repeat(" ", n)
}

// Pct formats a ratio as a percentage with two decimals, matching the
// paper's tables.
func Pct(v float64) string { return fmt.Sprintf("%.2f", 100*v) }

// Pct1 formats an already-percent value with two decimals and a sign.
func Pct1(v float64) string { return fmt.Sprintf("%.2f%%", v) }
