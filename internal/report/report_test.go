package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{Title: "Demo", Headers: []string{"Model", "Acc"}}
	t.AddRow("CNN", 98.2812)
	t.AddRow("a-very-long-model-name", "x")
	return t
}

func TestFprintAlignment(t *testing.T) {
	var buf bytes.Buffer
	sample().Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "Demo") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("%d lines", len(lines))
	}
	// All content lines equally wide (alignment).
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("header/separator misaligned: %q vs %q", lines[1], lines[2])
	}
	if !strings.Contains(out, "98.28") {
		t.Fatal("float formatting")
	}
}

func TestMarkdown(t *testing.T) {
	md := sample().Markdown()
	if !strings.Contains(md, "| Model | Acc |") {
		t.Fatalf("markdown header: %s", md)
	}
	if !strings.Contains(md, "| --- | --- |") {
		t.Fatal("markdown separator")
	}
	if !strings.Contains(md, "### Demo") {
		t.Fatal("markdown title")
	}
}

func TestShortRowsTolerated(t *testing.T) {
	tb := &Table{Headers: []string{"A", "B", "C"}}
	tb.Rows = append(tb.Rows, []string{"only-one"})
	var buf bytes.Buffer
	tb.Fprint(&buf) // must not panic
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestPctHelpers(t *testing.T) {
	if Pct(0.98765) != "98.77" {
		t.Fatalf("Pct = %s", Pct(0.98765))
	}
	if Pct1(4.167) != "4.17%" {
		t.Fatalf("Pct1 = %s", Pct1(4.167))
	}
}
