package cascade

import (
	"bytes"
	"fmt"
	"io"
	"math"

	"repro/internal/artifact"
)

// Cascade snapshots. A serving runtime that restarts a crashed session
// from a cold cascade loses a full window of warm-up — blind time a
// pre-impact detector cannot afford. Snapshot captures every mutable
// field of the cascade (the detector pipeline, the threshold floor's
// integrator, the supervisor state machine, the tier counters) inside a
// verified artifact envelope; Restore applied to a configuration-
// identical cascade resumes it bit-identically, so a session killed
// mid-fall and replayed from its last snapshot reaches the same trigger
// decision at the same sample as one that never crashed.

// StateKind is the artifact envelope kind of a cascade snapshot.
const StateKind = "cascade-state"

// cascadeStateVersion guards the field layout below.
const cascadeStateVersion = 1

// Snapshot serialises the cascade's complete mutable state to w as a
// digest-verified artifact envelope. The envelope shape records the
// streaming geometry ([Window, Step]); the payload additionally carries
// a configuration fingerprint (threshold, budget tiers, hysteresis) so
// Restore refuses a snapshot from a differently-built cascade.
func (c *CascadeOf[S]) Snapshot(w io.Writer) error {
	c.snapScratch = c.appendStatePayload(c.snapScratch[:0])
	return artifact.WriteDType(w, StateKind, []int{c.det.Window, c.det.Step},
		artifact.DTypeOf[S](), c.snapScratch)
}

// AppendSnapshot appends the snapshot envelope to dst and returns the
// extended slice — the allocation-free form of Snapshot. The payload
// is staged in a scratch buffer the cascade owns and reuses, so a
// serving session checkpointing every stride allocates nothing at
// steady state once dst and the scratch have grown to size.
func (c *CascadeOf[S]) AppendSnapshot(dst []byte) ([]byte, error) {
	c.snapScratch = c.appendStatePayload(c.snapScratch[:0])
	return artifact.AppendEnvelopeDType(dst, StateKind, []int{c.det.Window, c.det.Step},
		artifact.DTypeOf[S](), c.snapScratch)
}

// SnapshotBytes is Snapshot into a fresh buffer.
func (c *CascadeOf[S]) SnapshotBytes() ([]byte, error) {
	return c.AppendSnapshot(nil)
}

// appendStatePayload appends the envelope payload — every mutable
// field plus the configuration fingerprint — to dst.
func (c *CascadeOf[S]) appendStatePayload(dst []byte) []byte {
	dst = artifact.AppendUint64(dst, cascadeStateVersion)
	dst = artifact.AppendFloat(dst, c.threshold)
	dst = artifact.AppendInt(dst, int(c.sup.minTier))
	dst = artifact.AppendInt(dst, c.sup.promoteHold)
	dst = artifact.AppendBool(dst, c.fallback != nil)

	dst = artifact.AppendInt(dst, c.samples)
	dst = artifact.AppendInt(dst, c.sinceEval)
	for _, n := range c.tierEvals {
		dst = artifact.AppendInt(dst, n)
	}
	dst = artifact.AppendInt(dst, int(c.sup.tier))
	dst = artifact.AppendInt(dst, c.sup.healthyRun)
	dst = artifact.AppendInt(dst, int(c.ceiling))
	dst = artifact.AppendInt(dst, c.t2.run)
	dst = artifact.AppendFloat(dst, c.t2.vel)
	return c.det.AppendState(dst)
}

// Restore applies a Snapshot image to the cascade. The receiver must be
// built with the same configuration (geometry, threshold, budget,
// hysteresis, fallback presence) as the cascade that produced the
// snapshot; any mismatch — or any corruption, which the envelope digest
// catches first — yields an error. On error the cascade's state is
// unspecified: Reset it (or discard it) before pushing again.
func (c *CascadeOf[S]) Restore(rd io.Reader) error {
	h, payload, err := artifact.Read(rd)
	if err != nil {
		return fmt.Errorf("cascade: %w", err)
	}
	if err := artifact.CheckKind(h, StateKind); err != nil {
		return fmt.Errorf("cascade: %w", err)
	}
	if len(h.Shape) != 2 || h.Shape[0] != c.det.Window || h.Shape[1] != c.det.Step {
		return fmt.Errorf("cascade: snapshot geometry %v, cascade is [%d %d]",
			h.Shape, c.det.Window, c.det.Step)
	}
	if want := artifact.DTypeOf[S](); h.DType != want {
		// The envelope-level check catches a width mismatch before any
		// payload decoding; the detector state carries (and re-checks)
		// its own dtype word.
		return fmt.Errorf("cascade: snapshot is %s state, cascade runs %s", h.DType, want)
	}
	r := artifact.NewStateReader(payload)
	if v := r.Uint64(); r.Err() == nil && v != cascadeStateVersion {
		return fmt.Errorf("cascade: snapshot state version %d, this build reads %d", v, cascadeStateVersion)
	}
	thr := r.Float()
	minTier := Tier(r.Int())
	hold := r.Int()
	hasFallback := r.Bool()
	if err := r.Err(); err != nil {
		return fmt.Errorf("cascade: %w", err)
	}
	if math.Float64bits(thr) != math.Float64bits(c.threshold) ||
		minTier != c.sup.minTier || hold != c.sup.promoteHold ||
		hasFallback != (c.fallback != nil) {
		return fmt.Errorf("cascade: snapshot from a differently-configured cascade "+
			"(threshold %g/%g, min tier %v/%v, hold %d/%d, fallback %v/%v)",
			thr, c.threshold, minTier, c.sup.minTier, hold, c.sup.promoteHold,
			hasFallback, c.fallback != nil)
	}

	c.samples = r.Int()
	c.sinceEval = r.Int()
	for i := range c.tierEvals {
		c.tierEvals[i] = r.Int()
	}
	tier := Tier(r.Int())
	c.sup.healthyRun = r.Int()
	ceiling := Tier(r.Int())
	c.t2.run = r.Int()
	c.t2.vel = r.Float()
	if err := r.Err(); err != nil {
		return fmt.Errorf("cascade: %w", err)
	}
	if tier < minTier || tier > TierThreshold {
		return fmt.Errorf("cascade: snapshot supervisor tier %v outside [%v, %v]", tier, minTier, TierThreshold)
	}
	if ceiling < TierPrimary || ceiling > TierThreshold {
		return fmt.Errorf("cascade: snapshot tier ceiling %d out of range", int(ceiling))
	}
	c.sup.tier = tier
	c.ceiling = ceiling
	if err := c.det.ReadState(r); err != nil {
		return err
	}
	if err := r.Close(); err != nil {
		return fmt.Errorf("cascade: %w", err)
	}
	return nil
}

// RestoreFresh reads a snapshot into the cascade, resetting first so a
// failed restore cannot leave half-applied state behind: on error the
// cascade is cold but coherent, exactly as after Reset.
func (c *CascadeOf[S]) RestoreFresh(rd io.Reader) error {
	c.Reset()
	if err := c.Restore(rd); err != nil {
		ceiling := c.ceiling
		c.Reset()
		c.ceiling = ceiling
		return err
	}
	return nil
}

// SnapshotEqual replays nothing and mutates nothing: it reports whether
// two snapshot images decode to the same cascade state, ignoring the
// envelope bytes themselves. Since the payload encoding is canonical
// (fixed-width little-endian, no maps), byte equality of the payloads
// is state equality; the helper exists so tests and the serving
// runtime's restore verification can compare states without poking
// fields.
func SnapshotEqual(a, b []byte) (bool, error) {
	ha, pa, err := artifact.Read(bytes.NewReader(a))
	if err != nil {
		return false, err
	}
	hb, pb, err := artifact.Read(bytes.NewReader(b))
	if err != nil {
		return false, err
	}
	if err := artifact.CheckKind(ha, StateKind); err != nil {
		return false, err
	}
	if err := artifact.CheckKind(hb, StateKind); err != nil {
		return false, err
	}
	return bytes.Equal(pa, pb), nil
}
