package cascade

import (
	"math/rand"
	"testing"

	"repro/internal/edge"
)

// randHealth draws an arbitrary (overall, groups) observation.
func randHealth(rng *rand.Rand) (edge.Health, edge.GroupHealth) {
	h := func() edge.Health { return edge.Health(rng.Intn(3)) }
	return h(), edge.GroupHealth{Acc: h(), Gyro: h(), Euler: h()}
}

// TestSupervisorMovesOneStepAtATime drives the state machine with
// arbitrary health sequences and asserts the core property: the tier
// never jumps, in either direction, by more than one per sample, and
// never leaves [minTier, TierThreshold].
func TestSupervisorMovesOneStepAtATime(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, minTier := range []Tier{TierPrimary, TierFallback, TierThreshold} {
		s := supervisor{tier: minTier, minTier: minTier, promoteHold: 5}
		prev := s.tier
		for i := 0; i < 20000; i++ {
			overall, g := randHealth(rng)
			got := s.step(overall, g)
			if diff := int(got) - int(prev); diff < -1 || diff > 1 {
				t.Fatalf("minTier %v, step %d: tier jumped %v -> %v", minTier, i, prev, got)
			}
			if got < minTier || got > TierThreshold {
				t.Fatalf("minTier %v: tier %v out of range", minTier, got)
			}
			prev = got
		}
	}
}

// TestSupervisorDemotionIsImmediate pins the deadline-critical
// direction: the sample on which a tier's stay requirement fails is
// the sample the supervisor leaves it.
func TestSupervisorDemotionIsImmediate(t *testing.T) {
	s := supervisor{tier: TierPrimary, minTier: TierPrimary, promoteHold: 40}
	healthy := edge.GroupHealth{}
	if got := s.step(edge.HealthHealthy, healthy); got != TierPrimary {
		t.Fatalf("healthy sample moved the tier to %v", got)
	}
	faultedGyro := edge.GroupHealth{Gyro: edge.HealthFaulted, Euler: edge.HealthFaulted}
	if got := s.step(edge.HealthFaulted, faultedGyro); got != TierFallback {
		t.Fatalf("faulted sample left the tier at %v", got)
	}
	// Accelerometer dies too: one more step down, to the floor.
	allDead := edge.GroupHealth{Acc: edge.HealthFaulted, Gyro: edge.HealthFaulted, Euler: edge.HealthFaulted}
	if got := s.step(edge.HealthFaulted, allDead); got != TierThreshold {
		t.Fatalf("dead accelerometer left the tier at %v", got)
	}
	if got := s.step(edge.HealthFaulted, allDead); got != TierThreshold {
		t.Fatalf("floor is not absorbing: %v", got)
	}
}

// TestSupervisorPromotionRequiresHold pins the hysteresis: promotion
// happens only after promoteHold consecutive samples meeting the
// better tier's entry requirement, and any lapse restarts the count.
func TestSupervisorPromotionRequiresHold(t *testing.T) {
	const hold = 10
	s := supervisor{tier: TierFallback, minTier: TierPrimary, promoteHold: hold}
	healthy := edge.GroupHealth{}
	degraded := edge.GroupHealth{Gyro: edge.HealthDegraded}
	for i := 0; i < hold-1; i++ {
		if got := s.step(edge.HealthHealthy, healthy); got != TierFallback {
			t.Fatalf("promoted after only %d healthy samples", i+1)
		}
	}
	// One degraded sample restarts the run (but must not demote:
	// Degraded satisfies the stay requirement).
	if got := s.step(edge.HealthDegraded, degraded); got != TierFallback {
		t.Fatalf("degraded sample moved the tier to %v", got)
	}
	for i := 0; i < hold-1; i++ {
		if got := s.step(edge.HealthHealthy, healthy); got != TierFallback {
			t.Fatalf("promoted after only %d healthy samples post-lapse", i+1)
		}
	}
	if got := s.step(edge.HealthHealthy, healthy); got != TierPrimary {
		t.Fatalf("still at %v after %d consecutive healthy samples", got, hold)
	}
}

// TestSupervisorNoOscillationUnderFlappingFault is the hysteresis
// property end to end: a fault that flaps faster than the hold window
// produces exactly one demotion and zero further transitions.
func TestSupervisorNoOscillationUnderFlappingFault(t *testing.T) {
	const hold = 40
	s := supervisor{tier: TierPrimary, minTier: TierPrimary, promoteHold: hold}
	healthy := edge.GroupHealth{}
	faulted := edge.GroupHealth{Gyro: edge.HealthFaulted, Euler: edge.HealthFaulted}
	transitions := 0
	prev := s.tier
	// Flap with a period well under the hold window.
	for i := 0; i < 4000; i++ {
		var got Tier
		if i/10%2 == 0 {
			got = s.step(edge.HealthFaulted, faulted)
		} else {
			got = s.step(edge.HealthHealthy, healthy)
		}
		if got != prev {
			transitions++
			prev = got
		}
	}
	if transitions != 1 {
		t.Fatalf("flapping fault caused %d tier transitions, want exactly 1 (the initial demotion)", transitions)
	}
	if prev != TierFallback {
		t.Fatalf("parked at %v, want %v", prev, TierFallback)
	}
}

// TestSupervisorBudgetFloorHolds: the supervisor never promotes past
// minTier no matter how healthy the stream is.
func TestSupervisorBudgetFloorHolds(t *testing.T) {
	s := supervisor{tier: TierFallback, minTier: TierFallback, promoteHold: 3}
	healthy := edge.GroupHealth{}
	for i := 0; i < 100; i++ {
		if got := s.step(edge.HealthHealthy, healthy); got != TierFallback {
			t.Fatalf("promoted past the budget floor to %v", got)
		}
	}
}
