// Package cascade layers a supervised detector cascade over the
// streaming edge pipeline so that sensor failure degrades the detector
// tier by tier instead of blinding it. The base pipeline fails closed:
// when its health ring trips HealthFaulted it stops evaluating, and a
// fall during the outage is missed — the most expensive outcome for a
// pre-impact airbag. The cascade keeps a decision flowing:
//
//	tier 0 — the primary three-branch CNN (paper §III-B), used while
//	         every channel group is trustworthy;
//	tier 1 — a reduced-input CNN reading only the accelerometer
//	         columns (model.KindCNNAccel), used while the gyro or the
//	         fused Euler attitude is quarantined or stuck;
//	tier 2 — a deterministic accel-magnitude + vertical-velocity
//	         threshold detector that needs no window, no filters and
//	         no model, and therefore always runs.
//
// A supervisor state machine moves between tiers one step at a time:
// demotion is immediate when the current tier's health requirement
// fails, promotion requires the better tier's requirements to hold for
// a full hysteresis window, and a per-sample cycle budget against the
// Cortex-M7 device model caps how ambitious a tier the supervisor may
// ever select. Push is allocation-free at steady state in every tier
// and fully deterministic.
package cascade

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/edge"
	"repro/internal/fault"
	"repro/internal/imu"
	"repro/internal/model"
	"repro/internal/tensor"
)

// Tier identifies one cascade level; lower is more capable.
type Tier int

const (
	// TierPrimary is the full three-branch CNN.
	TierPrimary Tier = iota
	// TierFallback is the accelerometer-branch-only CNN.
	TierFallback
	// TierThreshold is the streaming threshold floor; it always runs.
	TierThreshold
	// NumTiers is the tier count.
	NumTiers
)

func (t Tier) String() string {
	switch t {
	case TierPrimary:
		return "primary-cnn"
	case TierFallback:
		return "accel-cnn"
	case TierThreshold:
		return "threshold"
	default:
		return "tier(?)"
	}
}

// Config sizes the cascade. The streaming geometry mirrors
// edge.DetectorConfig; the cost fields feed the supervisor's
// per-sample cycle budget.
type Config struct {
	// WindowMS and Overlap mirror the training segmentation.
	WindowMS int
	Overlap  float64
	// Threshold is the trigger probability, with the edge sentinel
	// convention: 0 selects edge.DefaultThreshold, negative values
	// select a literal 0.
	Threshold float64
	// FixedPoint selects the Q16.16 pre-filter.
	FixedPoint bool
	// FullScaleG / FullScaleDPS are the sensor clamp ranges (0 = the
	// edge defaults, ±16 g and ±2000 deg/s).
	FullScaleG   float64
	FullScaleDPS float64
	// Device is the deployment target for the cycle budget; the zero
	// value selects edge.STM32F722().
	Device edge.Device
	// PrimaryCost and FallbackCost are the modeled inference costs of
	// the tier-0 and tier-1 classifiers (edge.ModelCost). A zero cost
	// models a free classifier, so callers who want budget enforcement
	// must supply them.
	PrimaryCost, FallbackCost edge.Cost
	// PromoteHoldSamples is the hysteresis: how many consecutive
	// samples the better tier's requirements must hold before the
	// supervisor promotes. Default: one full window.
	PromoteHoldSamples int
}

// CascadeOf is the supervised three-tier detector at scalar width S.
// Only the streaming pipeline and its attached scorers run at S; the
// supervisor state machine, the cycle-budget model and the threshold
// floor are width-independent (the floor integrates raw float64
// samples — it must not inherit the model tier's rounding). Cascade
// (= CascadeOf[float64]) is the reference instantiation.
type CascadeOf[S tensor.Scalar] struct {
	det *edge.DetectorOf[S]
	//fallvet:derived immutable tier-0 model reference, bound at construction; snapshots carry detector and cascade state, not weights
	primary   model.Classifier
	fallback  model.Classifier
	threshold float64

	t2  tier2
	sup supervisor

	// ceiling is an externally-imposed cap on tier capability: the
	// supervisor's choice is clamped to max(choice, ceiling). A serving
	// runtime's latency breaker raises it when wall-clock decision
	// latency approaches the airbag budget — the health-driven state
	// machine knows nothing about host scheduling. TierPrimary (the
	// zero value) imposes nothing.
	ceiling Tier

	samples   int // pushes seen (real + missing)
	sinceEval int // pushes since the last emitted decision

	//fallvet:derived modeled worst-case cycles per sample, fixed by New from the device model and classifier costs
	perSample [NumTiers]float64
	//fallvet:derived cycles available per sample period, fixed by New from the device model
	budget    float64
	tierEvals [NumTiers]int

	// snapScratch stages the snapshot payload between checkpoints so
	// AppendSnapshot allocates nothing once it has grown to size.
	snapScratch []byte
}

// Cascade is the float64 reference cascade — the exact pre-generic
// behaviour, and the width all evaluation and training tooling uses.
type Cascade = CascadeOf[float64]

// New builds a cascade around the primary classifier. fallback may be
// nil, in which case tier 1 falls through to the threshold floor.
func New(primary, fallback model.Classifier, cfg Config) (*Cascade, error) {
	return NewOf[float64](primary, fallback, cfg)
}

// NewOf builds the cascade at scalar width S; see DESIGN.md §14 for
// the precision model. The float32 instantiation requires both CNN
// tiers to be streamable (edge.NewDetectorOf lowers their weights at
// attach time); a fallback the float32 streamer cannot compile keeps
// scoring in batch form through an exact widening, like any other
// unattached classifier.
func NewOf[S tensor.Scalar](primary, fallback model.Classifier, cfg Config) (*CascadeOf[S], error) {
	if primary == nil {
		return nil, fmt.Errorf("cascade: nil primary classifier")
	}
	det, err := edge.NewDetectorOf[S](primary, edge.DetectorConfig{
		WindowMS:     cfg.WindowMS,
		Overlap:      cfg.Overlap,
		Threshold:    cfg.Threshold,
		FixedPoint:   cfg.FixedPoint,
		FullScaleG:   cfg.FullScaleG,
		FullScaleDPS: cfg.FullScaleDPS,
	})
	if err != nil {
		return nil, err
	}
	thr := cfg.Threshold
	switch {
	case thr == 0:
		thr = edge.DefaultThreshold
	case thr < 0:
		thr = 0
	}
	dev := cfg.Device
	if dev.Name == "" {
		dev = edge.STM32F722()
	}
	c := &CascadeOf[S]{
		det:       det,
		primary:   primary,
		fallback:  fallback,
		threshold: thr,
		t2:        newTier2(),
		budget:    dev.ClockHz / dataset.SampleRate,
	}
	if fallback != nil {
		// Best-effort: a fallback the streamer cannot cache (MLP,
		// recurrent) simply keeps scoring in batch form via
		// ScoreWindow, bit-identically. The primary is attached by
		// NewDetector itself.
		det.AttachStream(fallback)
	}
	c.perSample[TierPrimary] = dev.FusionCyclesPerSample + inferenceCycles(dev, cfg.PrimaryCost)
	c.perSample[TierFallback] = dev.FusionCyclesPerSample + inferenceCycles(dev, cfg.FallbackCost)
	c.perSample[TierThreshold] = dev.FusionCyclesPerSample + tier2Cycles
	minTier := TierThreshold
	for t := TierPrimary; t < TierThreshold; t++ {
		if c.perSample[t] <= c.budget {
			minTier = t
			break
		}
	}
	if minTier == TierFallback && fallback == nil {
		minTier = TierThreshold
	}
	hold := cfg.PromoteHoldSamples
	if hold <= 0 {
		hold = det.Window
	}
	c.sup = supervisor{tier: minTier, minTier: minTier, promoteHold: hold}
	return c, nil
}

// Reset clears all cascade state: the pipeline, the threshold floor,
// the supervisor and the tier counters. The tier ceiling survives — it
// is operator input about the host, not stream state.
func (c *CascadeOf[S]) Reset() {
	c.det.Reset()
	c.t2.reset()
	c.sup.reset()
	c.samples = 0
	c.sinceEval = 0
	for i := range c.tierEvals {
		c.tierEvals[i] = 0
	}
}

// Detector exposes the underlying streaming pipeline (health, stats,
// window geometry). The cascade owns its ingestion — do not Push into
// the returned detector directly.
func (c *CascadeOf[S]) Detector() *edge.DetectorOf[S] { return c.det }

// SupervisorTier reports the tier the supervisor currently selects,
// before the ceiling clamp.
func (c *CascadeOf[S]) SupervisorTier() Tier { return c.sup.tier }

// SetTierCeiling caps how capable a tier the cascade may decide with:
// decisions use max(supervisor tier, ceiling). Out-of-range values are
// clamped. SetTierCeiling(TierPrimary) removes the cap.
func (c *CascadeOf[S]) SetTierCeiling(t Tier) {
	if t < TierPrimary {
		t = TierPrimary
	}
	if t > TierThreshold {
		t = TierThreshold
	}
	c.ceiling = t
}

// TierCeiling reports the current externally-imposed tier cap.
func (c *CascadeOf[S]) TierCeiling() Tier { return c.ceiling }

// MinTier reports the most capable tier the cycle budget permits.
func (c *CascadeOf[S]) MinTier() Tier { return c.sup.minTier }

// TierEvals reports how many decisions each tier has produced since
// the last Reset.
func (c *CascadeOf[S]) TierEvals() [NumTiers]int { return c.tierEvals }

// BudgetCycles is the cycle budget of one sample period on the
// configured device.
func (c *CascadeOf[S]) BudgetCycles() float64 { return c.budget }

// PerSampleCycles is the modeled worst-case per-sample cost (fusion +
// inference) of running the given tier.
func (c *CascadeOf[S]) PerSampleCycles(t Tier) float64 {
	if t < 0 || t >= NumTiers {
		return 0
	}
	return c.perSample[t]
}

// WorstCaseCycles is the modeled worst-case per-sample cost over every
// tier the supervisor can select — the number that must stay under
// BudgetCycles for the 10 ms sample period to hold.
func (c *CascadeOf[S]) WorstCaseCycles() float64 {
	worst := 0.0
	for t := c.sup.minTier; t < NumTiers; t++ {
		if c.perSample[t] > worst {
			worst = c.perSample[t]
		}
	}
	return worst
}

// Decision is one Push outcome. Exactly like the base pipeline, most
// pushes fall between stride boundaries and carry Evaluated=false —
// the guarantee is that decisions keep flowing at stride cadence: once
// the stream is Step samples old, every run of Step consecutive pushes
// contains at least one Evaluated decision, whatever the sensor does.
type Decision struct {
	// Evaluated is true when this push produced a decision.
	Evaluated bool
	// Tier is the tier that produced the decision (valid when
	// Evaluated). It can be worse than SupervisorTier when the
	// preferred tier's window is not scorable this instant, never
	// better.
	Tier Tier
	// Probability is the deciding tier's output when Evaluated.
	Probability float64
	// Triggered is true when the probability crossed the threshold.
	Triggered bool
	// SupervisorTier is the effective tier after this sample: the
	// supervisor's health-driven choice, clamped by any external tier
	// ceiling (SetTierCeiling).
	SupervisorTier Tier
	// Health is the overall pipeline state; Groups the per-channel-
	// group breakdown driving the supervisor.
	Health edge.Health
	Groups edge.GroupHealth
	// Quarantined and Clamped mirror the base pipeline flags.
	Quarantined bool
	Clamped     bool
}

// Push ingests one raw sample and always advances the cascade: the
// threshold floor updates, the pipeline ingests (quarantine, clamp,
// filter, per-group health), the supervisor steps at most one tier,
// and at decision cadence the best currently-scorable tier at or below
// the supervisor's choice produces the decision.
//
//fallvet:hotpath
func (c *CascadeOf[S]) Push(acc, gyro imu.Vec3) Decision {
	p2 := c.t2.push(acc)
	r := c.det.Ingest(acc, gyro)
	return c.decide(r, p2)
}

// PushMissing accounts for n samples the sensor failed to deliver.
// The returned Decision reflects the last missing sample.
//
//fallvet:hotpath
func (c *CascadeOf[S]) PushMissing(n int) Decision {
	var d Decision
	d.Health = c.det.Health()
	d.Groups = c.det.GroupHealth()
	d.SupervisorTier = c.sup.tier
	if c.ceiling > d.SupervisorTier {
		d.SupervisorTier = c.ceiling
	}
	for i := 0; i < n; i++ {
		p2 := c.t2.missing()
		r := c.det.IngestMissing(1)
		d = c.decide(r, p2)
	}
	return d
}

// decide runs the supervisor and, at decision cadence, scores the best
// available tier. p2 is the threshold floor's current probability —
// computed every sample, so it is always live, window or no window.
//
//fallvet:hotpath
func (c *CascadeOf[S]) decide(r edge.Result, p2 float64) Decision {
	c.samples++
	c.sinceEval++
	g := c.det.GroupHealth()
	supTier := c.sup.step(r.Health, g)
	if c.ceiling > supTier {
		// The host-imposed ceiling caps capability; the supervisor's
		// own state machine keeps stepping underneath it, so lifting
		// the ceiling returns to wherever health says the cascade
		// belongs.
		supTier = c.ceiling
	}
	d := Decision{
		SupervisorTier: supTier,
		Health:         r.Health,
		Groups:         g,
		Quarantined:    r.Quarantined,
		Clamped:        r.Clamped,
	}
	evalTier := NumTiers // sentinel: no decision this push
	if c.det.StrideReady() {
		evalTier = supTier
		for evalTier < TierThreshold && !c.tierScorable(evalTier, r.Health, g) {
			evalTier++
		}
	} else if c.sinceEval >= c.det.Step && c.samples >= c.det.Step {
		// Decision-guarantee backstop: stride boundaries are counted in
		// ingested samples, and a long outage (dead accelerometer, bus
		// stall) stops ingestion entirely — the base pipeline would
		// simply never evaluate again. The threshold floor needs no
		// window, so it keeps the decision cadence alive.
		evalTier = TierThreshold
	}
	if evalTier == NumTiers {
		return d
	}
	var p float64
	ok := true
	switch evalTier {
	case TierPrimary:
		p, ok = c.det.ScoreWindow(c.primary)
	case TierFallback:
		p, ok = c.det.ScoreWindow(c.fallback)
	case TierThreshold:
		p = p2
	}
	d.Evaluated = true
	d.Tier = evalTier
	d.Probability = p
	d.Triggered = ok && p >= c.threshold
	c.tierEvals[evalTier]++
	c.sinceEval = 0
	return d
}

// tierScorable reports whether a model tier can honestly score the
// current ring buffer: the window must be fresh (no unpaid warm-up)
// and the faults present must be ones the tier does not escape anyway.
// The conditions mirror supervisor.stayOK — a quarantined-but-present
// accelerometer (stuck axis, drifting baseline) does not unscore the
// CNN tiers, because no tier in the cascade escapes the accelerometer;
// real data loss (overall ring faulted) unscores both model tiers.
//
//fallvet:hotpath
func (c *CascadeOf[S]) tierScorable(t Tier, overall edge.Health, g edge.GroupHealth) bool {
	switch t {
	case TierPrimary:
		return c.det.WindowFresh() && overall != edge.HealthFaulted &&
			g.Gyro != edge.HealthFaulted
	case TierFallback:
		return c.fallback != nil && c.det.WindowFresh() &&
			(g.Acc != edge.HealthFaulted || overall != edge.HealthFaulted)
	case TierThreshold:
		return true
	}
	return true // tiers are clamped to [TierPrimary, TierThreshold]
}

// tier2Cycles is the modeled per-sample cost of the threshold floor: a
// magnitude, a compare, an integrator update and a logistic — noise
// next to sensor fusion, but accounted so the budget math is honest.
const tier2Cycles = 64

// inferenceCycles converts a modeled inference cost to cycles on dev.
func inferenceCycles(dev edge.Device, c edge.Cost) float64 {
	return float64(c.MACs)*dev.CyclesPerMAC +
		float64(c.Elems)*dev.CyclesPerElem +
		float64(c.Layers)*dev.LayerOverheadCycles
}

// tier2 is the streaming threshold floor: the de Sousa-style free-fall
// + vertical-velocity test of model.Threshold (KindThresholdAcc),
// restated causally so it needs no window. It consumes the raw
// accelerometer sample before filters or normalisation — it must keep
// working when the ring buffer cannot be trusted at all.
type tier2 struct {
	//fallvet:derived threshold-floor parameter, fixed at construction (model.NewThreshold nominal); only run/vel are stream state
	lowG float64
	//fallvet:derived threshold-floor parameter, fixed at construction (model.NewThreshold nominal); only run/vel are stream state
	minRun int
	//fallvet:derived threshold-floor parameter, fixed at construction (model.NewThreshold nominal); only run/vel are stream state
	velThresh float64

	run int     // consecutive sub-lowG samples so far
	vel float64 // integrated vertical-velocity estimate, m/s
}

func newTier2() tier2 {
	// model.NewThreshold(KindThresholdAcc) nominal parameters.
	return tier2{lowG: 0.6, minRun: 3, velThresh: 0.7}
}

func (t *tier2) reset() {
	t.run = 0
	t.vel = 0
}

//fallvet:hotpath
func finiteAcc(v imu.Vec3) bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// push ingests one raw accelerometer sample (g) and returns the
// current probability.
//
//fallvet:hotpath
func (t *tier2) push(acc imu.Vec3) float64 {
	if !finiteAcc(acc) {
		return t.missing()
	}
	mag := math.Sqrt(acc.X*acc.X + acc.Y*acc.Y + acc.Z*acc.Z)
	if mag < t.lowG {
		t.run++
	} else {
		t.run = 0
	}
	// Free fall accumulates downward speed at (1−|a|)·g₀; re-support
	// (|a| ≥ 1 g) drains the integrator, exactly as model.Threshold
	// computes it per window.
	t.vel += (1 - mag) * imu.StandardGravity / dataset.SampleRate
	if t.vel < 0 || math.IsNaN(t.vel) {
		t.vel = 0
	}
	return t.score()
}

// missing handles a sample the sensor failed to deliver: no free-fall
// evidence can be claimed for it, so the run resets and the integrator
// holds. A dead accelerometer therefore converges to probability < 0.5
// — conservative by construction, the floor cannot false-fire off
// absence of data.
//
//fallvet:hotpath
func (t *tier2) missing() float64 {
	t.run = 0
	return t.score()
}

//fallvet:hotpath
func (t *tier2) score() float64 {
	freefall := float64(t.run-t.minRun) + 0.5
	second := (t.vel - t.velThresh) * 4
	margin := math.Min(freefall, second)
	return 1 / (1 + math.Exp(-margin))
}

// TrialSim is the outcome of replaying one trial through the cascade,
// mirroring edge.TrialSim with per-tier decision accounting.
type TrialSim struct {
	Triggered     bool
	TriggerSample int
	LeadTimeMS    float64
	InTime        bool
	FalseAlarm    bool
	// TriggerTier is the tier whose decision fired (valid when
	// Triggered).
	TriggerTier Tier
	// TierEvals counts decisions per tier up to the trigger (or trial
	// end).
	TierEvals [NumTiers]int
}

// Simulate replays a clean trial; see SimulateFaulty.
func (c *CascadeOf[S]) Simulate(t *dataset.Trial) TrialSim {
	return c.SimulateFaulty(t, nil)
}

// SimulateFaulty replays a trial through the cascade with a fault
// injector between the recorded sensor and the pipeline, exactly as
// edge.Detector.SimulateFaulty does: drops become missing samples,
// repeats are pushed twice, corruption is pushed as-is. The replay
// stops at the first trigger.
func (c *CascadeOf[S]) SimulateFaulty(t *dataset.Trial, inj fault.Injector) TrialSim {
	c.Reset()
	if inj != nil {
		inj.Reset()
	}
	sim := TrialSim{TriggerSample: -1}
	for i, s := range t.Samples {
		var d Decision
		if inj == nil {
			d = c.Push(s.Acc, s.Gyro)
		} else {
			cs, eff := inj.Apply(s)
			switch eff {
			case fault.Drop:
				d = c.PushMissing(1)
			case fault.Repeat:
				c.Push(cs.Acc, cs.Gyro)
				d = c.Push(cs.Acc, cs.Gyro)
			case fault.Pass:
				d = c.Push(cs.Acc, cs.Gyro)
			}
		}
		if d.Triggered && sim.TriggerSample < 0 {
			sim.Triggered = true
			sim.TriggerSample = i
			sim.TriggerTier = d.Tier
			if !t.IsFall() {
				sim.FalseAlarm = true
			}
			break
		}
	}
	sim.TierEvals = c.tierEvals
	if t.IsFall() && sim.Triggered {
		sim.LeadTimeMS = float64(t.Impact-sim.TriggerSample) * 1000 / dataset.SampleRate
		sim.InTime = sim.LeadTimeMS >= dataset.AirbagInflationMS
	}
	return sim
}

// Step exposes the decision cadence in samples.
func (c *CascadeOf[S]) Step() int { return c.det.Step }

// Window exposes the window length in samples.
func (c *CascadeOf[S]) Window() int { return c.det.Window }
