package cascade

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/edge"
	"repro/internal/imu"
	"repro/internal/model"
)

// testCfg is the standard geometry used throughout: 400 ms windows at
// 50 % overlap (Window 40, Step 20 at 100 Hz).
var testCfg = Config{WindowMS: 400, Overlap: 0.5}

func newTestCascade(t *testing.T, cfg Config) *Cascade {
	t.Helper()
	primary, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		t.Fatal(err)
	}
	fallback, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(primary, fallback, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// quiet returns a gently varying upright sample (≈1 g, small rates)
// that never trips stuck detection or the threshold floor.
func quiet(i int) (imu.Vec3, imu.Vec3) {
	ph := float64(i) * 0.13
	return imu.Vec3{X: 0.05 * math.Sin(ph), Z: 1 + 0.02*math.Cos(ph)},
		imu.Vec3{X: 3 * math.Sin(ph), Y: 2 * math.Cos(ph)}
}

func TestCascadeHealthyStaysPrimary(t *testing.T) {
	c := newTestCascade(t, testCfg)
	evals := 0
	for i := 0; i < 400; i++ {
		acc, gyro := quiet(i)
		d := c.Push(acc, gyro)
		if d.SupervisorTier != TierPrimary {
			t.Fatalf("sample %d: supervisor at %v on a healthy stream", i, d.SupervisorTier)
		}
		if d.Evaluated {
			evals++
			if i >= c.Window() && d.Tier != TierPrimary {
				t.Fatalf("sample %d: decision from %v on a healthy stream", i, d.Tier)
			}
		}
	}
	if evals == 0 {
		t.Fatal("no decisions on a healthy stream")
	}
	te := c.TierEvals()
	if te[TierFallback] != 0 {
		t.Fatalf("fallback evaluated %d times on a healthy stream", te[TierFallback])
	}
}

func TestCascadeGyroDeathDemotesToFallbackAndRecovers(t *testing.T) {
	c := newTestCascade(t, testCfg)
	for i := 0; i < 200; i++ {
		acc, gyro := quiet(i)
		c.Push(acc, gyro)
	}
	if c.SupervisorTier() != TierPrimary {
		t.Fatalf("warm-up ended at %v", c.SupervisorTier())
	}
	// Gyro dies. The supervisor must leave tier 0 once the gyro group
	// faults, and decisions must keep flowing from the fallback.
	bad := imu.Vec3{X: math.NaN(), Y: math.NaN(), Z: math.NaN()}
	sawFallback := false
	for i := 200; i < 500; i++ {
		acc, _ := quiet(i)
		d := c.Push(acc, bad)
		if d.Evaluated && d.Tier == TierFallback {
			sawFallback = true
		}
		if d.Evaluated && d.Tier == TierPrimary && i > 220 {
			t.Fatalf("sample %d: primary still deciding with a dead gyro", i)
		}
	}
	if !sawFallback {
		t.Fatal("fallback never produced a decision under a dead gyro")
	}
	if got := c.SupervisorTier(); got != TierFallback {
		t.Fatalf("supervisor at %v under a gyro-only fault, want %v", got, TierFallback)
	}
	// Gyro recovers: promotion back to primary requires a full
	// hysteresis window of clean samples.
	recoveredAt := -1
	for i := 500; i < 1200; i++ {
		acc, gyro := quiet(i)
		c.Push(acc, gyro)
		if c.SupervisorTier() == TierPrimary {
			recoveredAt = i
			break
		}
	}
	if recoveredAt < 0 {
		t.Fatal("supervisor never promoted back after gyro recovery")
	}
	if recoveredAt < 500+c.Window() {
		t.Fatalf("promoted after only %d samples, want ≥ the %d-sample hysteresis window",
			recoveredAt-500, c.Window())
	}
}

func TestCascadeDeadAccStillDecides(t *testing.T) {
	c := newTestCascade(t, testCfg)
	for i := 0; i < 100; i++ {
		acc, gyro := quiet(i)
		c.Push(acc, gyro)
	}
	// Total sensor loss: every subsequent sample is quarantined. The
	// base pipeline stops ingesting entirely — the cascade must keep
	// the decision cadence alive from the threshold floor.
	bad := imu.Vec3{X: math.NaN(), Y: math.NaN(), Z: math.NaN()}
	evals, run := 0, 0
	for i := 0; i < 300; i++ {
		d := c.Push(bad, bad)
		if d.Evaluated {
			evals++
			run = 0
			if d.Tier != TierThreshold {
				t.Fatalf("tier %v decided off a fully dead sensor", d.Tier)
			}
			if d.Triggered {
				t.Fatal("threshold floor triggered on absence of data")
			}
		} else if run++; run > c.Step() {
			t.Fatalf("no decision for %d consecutive pushes during total sensor loss", run)
		}
	}
	if evals == 0 {
		t.Fatal("no decisions during total sensor loss")
	}
	if got := c.SupervisorTier(); got != TierThreshold {
		t.Fatalf("supervisor at %v under total sensor loss", got)
	}
}

func TestCascadeMissingSamplesKeepDecisionCadence(t *testing.T) {
	c := newTestCascade(t, testCfg)
	for i := 0; i < 100; i++ {
		acc, gyro := quiet(i)
		c.Push(acc, gyro)
	}
	run := 0
	sawEval := false
	for i := 0; i < 10; i++ {
		// Long alternating outage: bursts far beyond the bridge limit.
		for j := 0; j < 15; j++ {
			d := c.PushMissing(1)
			if d.Evaluated {
				sawEval, run = true, 0
			} else if run++; run > c.Step() {
				t.Fatalf("no decision for %d pushes across a missing-sample outage", run)
			}
		}
		for j := 0; j < 7; j++ {
			acc, gyro := quiet(i*22 + j)
			d := c.Push(acc, gyro)
			if d.Evaluated {
				sawEval, run = true, 0
			} else if run++; run > c.Step() {
				t.Fatalf("no decision for %d pushes across a flapping outage", run)
			}
		}
	}
	if !sawEval {
		t.Fatal("no decisions at all during the outage pattern")
	}
}

func TestCascadeBudgetCapsTier(t *testing.T) {
	dev := edge.STM32F722()
	budget := dev.ClockHz / 100          // cycles per 10 ms sample period
	huge := edge.Cost{MACs: int(budget)} // MACs alone ≫ budget at 8 cyc/MAC

	cfg := testCfg
	cfg.PrimaryCost = huge
	c := newTestCascade(t, cfg)
	if c.MinTier() != TierFallback {
		t.Fatalf("MinTier = %v with an over-budget primary, want %v", c.MinTier(), TierFallback)
	}
	for i := 0; i < 400; i++ {
		acc, gyro := quiet(i)
		d := c.Push(acc, gyro)
		if d.SupervisorTier < TierFallback {
			t.Fatal("supervisor selected a tier the cycle budget forbids")
		}
		if d.Evaluated && d.Tier < TierFallback {
			t.Fatal("decision came from a tier the cycle budget forbids")
		}
	}

	cfg.FallbackCost = huge
	c2 := newTestCascade(t, cfg)
	if c2.MinTier() != TierThreshold {
		t.Fatalf("MinTier = %v with both models over budget", c2.MinTier())
	}
	if c2.WorstCaseCycles() > c2.BudgetCycles() {
		t.Fatalf("worst-case %g cycles exceeds the %g-cycle budget",
			c2.WorstCaseCycles(), c2.BudgetCycles())
	}
}

func TestCascadeWithinBudgetByDefault(t *testing.T) {
	// The acceptance criterion: with the real model costs, the
	// supervisor's worst-case per-sample cycles stay under the 10 ms @
	// 216 MHz sample budget.
	rng := rand.New(rand.NewSource(1))
	primary, err := model.New(model.KindCNN, model.Config{WindowSamples: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	fallback, err := model.New(model.KindCNNAccel, model.Config{WindowSamples: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := edge.ModelCost(primary.Net, []int{40, imu.NumChannels})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := edge.ModelCost(fallback.Net, []int{40, imu.NumChannels})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg
	cfg.PrimaryCost, cfg.FallbackCost = pc, fc
	c, err := New(primary, fallback, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.MinTier() != TierPrimary {
		t.Fatalf("paper CNN does not fit the sample budget: MinTier %v", c.MinTier())
	}
	if c.WorstCaseCycles() > c.BudgetCycles() {
		t.Fatalf("worst-case %g cycles exceeds the %g-cycle budget",
			c.WorstCaseCycles(), c.BudgetCycles())
	}
	if c.PerSampleCycles(TierFallback) >= c.PerSampleCycles(TierPrimary) {
		t.Fatal("fallback modeled as expensive as the primary")
	}
}

func TestCascadeNilFallbackFallsThrough(t *testing.T) {
	primary, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(primary, nil, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		acc, gyro := quiet(i)
		c.Push(acc, gyro)
	}
	bad := imu.Vec3{X: math.NaN(), Y: math.NaN(), Z: math.NaN()}
	for i := 100; i < 400; i++ {
		acc, _ := quiet(i)
		d := c.Push(acc, bad)
		if d.Evaluated && d.Tier == TierFallback {
			t.Fatal("nil fallback produced a decision")
		}
	}
}

func TestCascadeResetClearsState(t *testing.T) {
	c := newTestCascade(t, testCfg)
	bad := imu.Vec3{X: math.NaN()}
	for i := 0; i < 300; i++ {
		c.Push(bad, bad)
	}
	c.Reset()
	if c.SupervisorTier() != c.MinTier() {
		t.Fatal("Reset did not restore the supervisor tier")
	}
	if te := c.TierEvals(); te != ([NumTiers]int{}) {
		t.Fatalf("Reset left tier counters %v", te)
	}
	for i := 0; i < 400; i++ {
		acc, gyro := quiet(i)
		d := c.Push(acc, gyro)
		if d.Evaluated && i >= c.Window() && d.Tier != TierPrimary {
			t.Fatalf("post-Reset decision from %v", d.Tier)
		}
	}
}

func TestTierString(t *testing.T) {
	if TierPrimary.String() == "" || TierFallback.String() == "" ||
		TierThreshold.String() == "" || Tier(9).String() == "" {
		t.Fatal("tier names")
	}
}
