package cascade

import (
	"math"
	"testing"

	"repro/internal/imu"
	"repro/internal/model"
)

// FuzzCascadePush drives the cascade with an arbitrary byte-script of
// hostile sensor behaviour and asserts the decision guarantee: the
// cascade never panics, probabilities stay finite in [0,1], the
// supervisor moves one tier per sample at most, and once the stream is
// Step samples old no run of Step consecutive pushes passes without an
// Evaluated decision — whatever the sensor does.
func FuzzCascadePush(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(make([]byte, 256))
	flap := make([]byte, 300)
	for i := range flap {
		flap[i] = byte(i % 3) // missing / NaN acc / NaN gyro round-robin
	}
	f.Add(flap)
	f.Fuzz(func(t *testing.T, data []byte) {
		primary, err := model.NewThreshold(model.KindThresholdAcc)
		if err != nil {
			t.Fatal(err)
		}
		fallback, err := model.NewThreshold(model.KindThresholdAcc)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(primary, fallback, Config{WindowMS: 200, Overlap: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		nan := math.NaN()
		prevTier := c.SupervisorTier()
		pushes, sinceEval := 0, 0
		check := func(d Decision) {
			pushes++
			if d.Evaluated {
				sinceEval = 0
				if math.IsNaN(d.Probability) || d.Probability < 0 || d.Probability > 1 {
					t.Fatalf("probability %v outside [0,1]", d.Probability)
				}
				if d.Tier < TierPrimary || d.Tier > TierThreshold {
					t.Fatalf("decision from tier %v", d.Tier)
				}
				if d.Tier < d.SupervisorTier {
					t.Fatalf("decision tier %v better than supervisor tier %v", d.Tier, d.SupervisorTier)
				}
			} else if sinceEval++; pushes > c.Step() && sinceEval >= c.Step() {
				t.Fatalf("no decision for %d consecutive pushes (step %d)", sinceEval, c.Step())
			}
			if diff := int(d.SupervisorTier) - int(prevTier); diff < -1 || diff > 1 {
				t.Fatalf("supervisor jumped %v -> %v", prevTier, d.SupervisorTier)
			}
			prevTier = d.SupervisorTier
		}
		// Replay the script three times so faults land both before and
		// after the window first fills.
		for rep := 0; rep < 3; rep++ {
			for i, b := range data {
				v := float64(b)/16 - 8 // [-8, 8): in and out of range
				ph := float64(i) * 0.3
				acc := imu.Vec3{X: 0.1 * math.Sin(ph), Z: 1 + v/100}
				gyro := imu.Vec3{Y: 10 * math.Cos(ph)}
				switch b % 8 {
				case 0:
					check(c.PushMissing(1))
					continue
				case 1:
					acc = imu.Vec3{X: nan, Y: nan, Z: nan}
				case 2:
					gyro = imu.Vec3{X: nan, Y: math.Inf(1), Z: nan}
				case 3:
					acc = imu.Vec3{X: v * 1e307, Y: -v * 1e307, Z: v}
					gyro = imu.Vec3{X: v * 1e8}
				case 4:
					acc, gyro = imu.Vec3{Z: 1}, imu.Vec3{} // frozen pair
				}
				check(c.Push(acc, gyro))
			}
		}
	})
}
