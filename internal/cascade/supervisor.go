package cascade

import "repro/internal/edge"

// supervisor is the tier-selection state machine. Two rules give the
// cascade its shape:
//
//   - Demotion is immediate and single-step: the moment the current
//     tier's stay requirement fails, the supervisor moves one tier
//     down. If the next tier's requirement also fails, the following
//     sample demotes again — at 100 Hz the floor is two samples away
//     from anywhere, well inside the 150 ms airbag deadline.
//   - Promotion is hysteretic and single-step: the better tier's
//     entry requirement (strictly Healthy, not merely non-Faulted)
//     must hold for promoteHold consecutive samples. A flapping fault
//     that keeps any group short of Healthy therefore parks the
//     supervisor at the degraded tier instead of oscillating.
//
// minTier caps promotion: it is the most capable tier whose modeled
// per-sample cycle cost fits the device's sample period, fixed at
// construction. The supervisor can never select a tier that would blow
// the 10 ms budget, so demotion-for-deadline happens before the first
// deadline could be missed, not after.
type supervisor struct {
	tier        Tier
	minTier     Tier
	promoteHold int
	healthyRun  int
}

func (s *supervisor) reset() {
	s.tier = s.minTier
	s.healthyRun = 0
}

// step advances the state machine by one sample and returns the
// selected tier. It moves at most one tier per call, in either
// direction.
//
//fallvet:hotpath
func (s *supervisor) step(overall edge.Health, g edge.GroupHealth) Tier {
	if !stayOK(s.tier, overall, g) {
		if s.tier < TierThreshold {
			s.tier++
		}
		s.healthyRun = 0
		return s.tier
	}
	if s.tier > s.minTier && enterOK(s.tier-1, overall, g) {
		s.healthyRun++
		if s.healthyRun >= s.promoteHold {
			s.tier--
			s.healthyRun = 0
		}
	} else {
		s.healthyRun = 0
	}
	return s.tier
}

// stayOK is the requirement to remain at a tier: conservative but not
// paranoid — Degraded channels keep their tier (a bridged two-sample
// gap must not demote the primary model mid-fall), Faulted ones lose
// it, and a demotion must actually reduce exposure to the fault:
//
//   - The primary tier is lost to gyro-side faults and to real data
//     loss (the overall ring trips on missing/quarantined samples) —
//     the accel-only fallback escapes both. It is NOT lost to a
//     corrupted-but-present accelerometer (a latched axis, a drifting
//     baseline): every lower tier reads the same accelerometer, so
//     demoting would only discard the still-live gyro columns.
//   - The fallback tier is lost only to real data loss. The threshold
//     floor integrates the same raw accelerometer, so an acc-group
//     quarantine it cannot escape keeps the CNN; but the floor is the
//     only tier that fails conservative on *absent* data (its
//     integrator drains, it cannot false-fire), so a stream that has
//     actually stopped delivering samples belongs to it.
//
//fallvet:hotpath
func stayOK(t Tier, overall edge.Health, g edge.GroupHealth) bool {
	switch t {
	case TierPrimary:
		return overall != edge.HealthFaulted && g.Gyro != edge.HealthFaulted
	case TierFallback:
		return g.Acc != edge.HealthFaulted || overall != edge.HealthFaulted
	case TierThreshold:
		return true
	}
	return true // tiers are clamped to [TierPrimary, TierThreshold]
}

// enterOK is the requirement to be promoted into a tier: every channel
// group the tier reads must be fully Healthy. The gap between enterOK
// and stayOK is the hysteresis band.
//
//fallvet:hotpath
func enterOK(t Tier, overall edge.Health, g edge.GroupHealth) bool {
	switch t {
	case TierPrimary:
		return overall == edge.HealthHealthy && g.Worst() == edge.HealthHealthy
	case TierFallback:
		return g.Acc == edge.HealthHealthy
	case TierThreshold:
		return true
	}
	return true // tiers are clamped to [TierPrimary, TierThreshold]
}
