package cascade

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/imu"
	"repro/internal/model"
)

// newCNNCascade builds the deployment configuration: real paper CNN as
// tier 0, accel-only CNN as tier 1.
func newCNNCascade(t testing.TB) *Cascade {
	rng := rand.New(rand.NewSource(7))
	primary, err := model.New(model.KindCNN, model.Config{WindowSamples: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	fallback, err := model.New(model.KindCNNAccel, model.Config{WindowSamples: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(primary, fallback, Config{WindowMS: 400, Overlap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCascadePushAllocationFree asserts the real-time contract at
// every tier: once the ring and the model scratch are warm, a full
// stride of pushes — including the evaluation — never touches the
// allocator, no matter which tier is deciding.
func TestCascadePushAllocationFree(t *testing.T) {
	nan := math.NaN()
	badAcc := imu.Vec3{X: nan, Y: nan, Z: nan}
	badGyro := imu.Vec3{X: nan, Y: nan, Z: nan}
	cases := []struct {
		name string
		tier Tier
		push func(c *Cascade, i int) Decision
	}{
		{"tier0-primary", TierPrimary, func(c *Cascade, i int) Decision {
			acc, gyro := quiet(i)
			return c.Push(acc, gyro)
		}},
		{"tier1-accel-fallback", TierFallback, func(c *Cascade, i int) Decision {
			acc, _ := quiet(i)
			return c.Push(acc, badGyro)
		}},
		{"tier2-threshold-floor", TierThreshold, func(c *Cascade, i int) Decision {
			return c.Push(badAcc, badGyro)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newCNNCascade(t)
			n := 0
			// Clean warm-up first (fills the window, sizes both models'
			// scratch via one evaluation each), then the fault regime
			// until the supervisor settles on the tier under test.
			for i := 0; i < 3*c.Window(); i++ {
				acc, gyro := quiet(n)
				c.Push(acc, gyro)
				n++
			}
			// Warm the fallback's scratch explicitly: its first Forward
			// grows per-layer buffers once.
			c.Detector().ScoreWindow(c.fallback)
			for i := 0; i < 4*c.Window(); i++ {
				tc.push(c, n)
				n++
			}
			if got := c.SupervisorTier(); got != tc.tier {
				t.Fatalf("supervisor settled at %v, want %v", got, tc.tier)
			}
			if allocs := testing.AllocsPerRun(100, func() {
				for i := 0; i < c.Step(); i++ {
					tc.push(c, n)
					n++
				}
			}); allocs != 0 {
				t.Errorf("%s: Push allocates %.1f objects per stride at steady state, want 0",
					tc.name, allocs)
			}
		})
	}
}

// TestCascadePushMissingAllocationFree covers the outage path: the
// threshold-floor backstop that keeps decisions flowing during a long
// gap must be allocation-free too.
func TestCascadePushMissingAllocationFree(t *testing.T) {
	c := newCNNCascade(t)
	for i := 0; i < 3*c.Window(); i++ {
		acc, gyro := quiet(i)
		c.Push(acc, gyro)
	}
	for i := 0; i < 4*c.Window(); i++ {
		c.PushMissing(1)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < c.Step(); i++ {
			c.PushMissing(1)
		}
	}); allocs != 0 {
		t.Errorf("PushMissing allocates %.1f objects per stride, want 0", allocs)
	}
}
