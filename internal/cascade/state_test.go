package cascade

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/imu"
)

// pushAt replays one deterministic mixed-stress sample into c: mostly
// quiet wear, with periodic NaN bursts, gyro dropouts, missing gaps and
// clipped spikes so every branch of the pipeline state machine carries
// non-trivial state into a snapshot.
func pushAt(c *Cascade, i int) Decision {
	switch {
	case i%97 == 45:
		return c.PushMissing(1)
	case i%89 == 30:
		return c.Push(imu.Vec3{X: math.NaN()}, imu.Vec3{})
	case i%83 == 20:
		acc, _ := quiet(i)
		return c.Push(acc, imu.Vec3{Y: math.Inf(1)})
	case i%79 == 10:
		return c.Push(imu.Vec3{Z: 30}, imu.Vec3{X: 4000})
	default:
		acc, gyro := quiet(i)
		return c.Push(acc, gyro)
	}
}

func decisionsEqual(a, b Decision) bool { return a == b }

// TestSnapshotRoundTripBitIdentical is the snapshot contract: a cascade
// restored from a snapshot and a cascade that never stopped produce
// identical decisions for every subsequent sample, and re-snapshotting
// both at any later point yields state-equal images.
func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	for _, fixed := range []bool{false, true} {
		cfg := testCfg
		cfg.FixedPoint = fixed
		ref := newTestCascade(t, cfg)
		for i := 0; i < 333; i++ {
			pushAt(ref, i)
		}
		img, err := ref.SnapshotBytes()
		if err != nil {
			t.Fatal(err)
		}

		restored := newTestCascade(t, cfg)
		if err := restored.Restore(bytes.NewReader(img)); err != nil {
			t.Fatalf("fixed=%v: %v", fixed, err)
		}
		for i := 333; i < 1000; i++ {
			da := pushAt(ref, i)
			db := pushAt(restored, i)
			if !decisionsEqual(da, db) {
				t.Fatalf("fixed=%v: decisions diverge at sample %d:\n ref      %+v\n restored %+v", fixed, i, da, db)
			}
		}
		if ref.Detector().Stats() != restored.Detector().Stats() {
			t.Fatalf("fixed=%v: fault counters diverged:\n ref      %+v\n restored %+v",
				fixed, ref.Detector().Stats(), restored.Detector().Stats())
		}
		a, err := ref.SnapshotBytes()
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.SnapshotBytes()
		if err != nil {
			t.Fatal(err)
		}
		eq, err := SnapshotEqual(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("fixed=%v: post-continuation snapshots differ", fixed)
		}
	}
}

// fallSample synthesises the tail of a backward fall: free fall (near
// zero g, fast rotation) long enough for the threshold tiers' low-g run
// and velocity integrator to arm, then an impact spike.
func fallSample(k int) (imu.Vec3, imu.Vec3) {
	if k < 45 {
		return imu.Vec3{Z: 0.04}, imu.Vec3{X: 280, Y: 120}
	}
	return imu.Vec3{Z: 5.5}, imu.Vec3{X: 40}
}

// TestSnapshotMidFallSameTrigger kills a session in the middle of a
// fall and resumes it from the snapshot: the restored cascade must
// trigger on the same sample with the same probability and tier as the
// uninterrupted reference — the lead time the airbag sees is identical.
func TestSnapshotMidFallSameTrigger(t *testing.T) {
	ref := newTestCascade(t, testCfg)
	const quietLen, snapAt = 300, 315 // snapshot 15 samples into the fall
	for i := 0; i < quietLen; i++ {
		acc, gyro := quiet(i)
		ref.Push(acc, gyro)
	}
	var img []byte
	trigAt, trigRef := -1, Decision{}
	for k := 0; quietLen+k < 600; k++ {
		if quietLen+k == snapAt {
			var err error
			img, err = ref.SnapshotBytes()
			if err != nil {
				t.Fatal(err)
			}
		}
		d := ref.Push(fallSample(k))
		if d.Triggered {
			trigAt, trigRef = quietLen+k, d
			break
		}
	}
	if trigAt < 0 {
		t.Fatal("reference cascade never triggered on the synthetic fall")
	}
	if trigAt < snapAt {
		t.Fatalf("fall triggered at %d, before the %d-sample snapshot point — fixture broken", trigAt, snapAt)
	}

	restored := newTestCascade(t, testCfg)
	if err := restored.RestoreFresh(bytes.NewReader(img)); err != nil {
		t.Fatal(err)
	}
	for i := snapAt; i <= trigAt; i++ {
		d := restored.Push(fallSample(i - quietLen))
		if d.Triggered != (i == trigAt) {
			t.Fatalf("restored cascade trigger state at sample %d: %v, want trigger exactly at %d",
				i, d.Triggered, trigAt)
		}
		if i == trigAt && !decisionsEqual(d, trigRef) {
			t.Fatalf("restored trigger decision differs:\n ref      %+v\n restored %+v", trigRef, d)
		}
	}
}

// TestSnapshotCeilingSurvives: the tier ceiling is part of the snapshot
// and survives both Restore and Reset — it encodes host pressure, which
// does not go away because a stream restarted.
func TestSnapshotCeilingSurvives(t *testing.T) {
	c := newTestCascade(t, testCfg)
	c.SetTierCeiling(TierFallback)
	for i := 0; i < 100; i++ {
		acc, gyro := quiet(i)
		d := c.Push(acc, gyro)
		if d.SupervisorTier < TierFallback {
			t.Fatalf("sample %d: effective tier %v under a %v ceiling", i, d.SupervisorTier, TierFallback)
		}
	}
	if c.SupervisorTier() != TierPrimary {
		t.Fatalf("raw supervisor tier %v, want %v (ceiling must not leak into the state machine)",
			c.SupervisorTier(), TierPrimary)
	}
	img, err := c.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	c2 := newTestCascade(t, testCfg)
	if err := c2.Restore(bytes.NewReader(img)); err != nil {
		t.Fatal(err)
	}
	if c2.TierCeiling() != TierFallback {
		t.Fatalf("restored ceiling %v, want %v", c2.TierCeiling(), TierFallback)
	}
	c2.Reset()
	if c2.TierCeiling() != TierFallback {
		t.Fatalf("Reset cleared the ceiling")
	}
	c2.SetTierCeiling(TierPrimary)
	if c2.TierCeiling() != TierPrimary {
		t.Fatal("ceiling not removable")
	}
}

// TestRestoreRejectsMismatchAndCorruption: a snapshot only ever applies
// to a configuration-identical cascade, and any byte damage is caught
// (by the envelope digest) before any state is interpreted.
func TestRestoreRejectsMismatchAndCorruption(t *testing.T) {
	c := newTestCascade(t, testCfg)
	for i := 0; i < 200; i++ {
		pushAt(c, i)
	}
	img, err := c.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}

	otherGeom := newTestCascade(t, Config{WindowMS: 600, Overlap: 0.5})
	if err := otherGeom.Restore(bytes.NewReader(img)); err == nil {
		t.Fatal("restore accepted a snapshot with a different window geometry")
	}
	otherThr := newTestCascade(t, Config{WindowMS: 400, Overlap: 0.5, Threshold: 0.9})
	if err := otherThr.Restore(bytes.NewReader(img)); err == nil {
		t.Fatal("restore accepted a snapshot with a different threshold")
	}
	otherArith := newTestCascade(t, Config{WindowMS: 400, Overlap: 0.5, FixedPoint: true})
	if err := otherArith.Restore(bytes.NewReader(img)); err == nil {
		t.Fatal("restore accepted a float snapshot into a fixed-point pipeline")
	}

	for _, n := range []int{1, len(img) / 2, len(img) - 1} {
		bad := append([]byte(nil), img...)
		bad[n] ^= 0x40
		fresh := newTestCascade(t, testCfg)
		if err := fresh.Restore(bytes.NewReader(bad)); err == nil {
			t.Fatalf("restore accepted a snapshot with byte %d flipped", n)
		}
	}
	for _, n := range []int{0, 8, len(img) - 9} {
		fresh := newTestCascade(t, testCfg)
		if err := fresh.Restore(bytes.NewReader(img[:n])); err == nil {
			t.Fatalf("restore accepted a snapshot truncated to %d bytes", n)
		}
	}

	// RestoreFresh after a failure leaves a cold but usable cascade.
	fresh := newTestCascade(t, testCfg)
	fresh.SetTierCeiling(TierFallback)
	if err := fresh.RestoreFresh(bytes.NewReader(img[:16])); err == nil {
		t.Fatal("RestoreFresh accepted a truncated snapshot")
	}
	if fresh.TierCeiling() != TierFallback {
		t.Fatal("failed RestoreFresh dropped the tier ceiling")
	}
	for i := 0; i < 100; i++ {
		acc, gyro := quiet(i)
		fresh.Push(acc, gyro)
	}
}

// TestSnapshotMidMotionCNNStreamsBitIdentical kills a CNN cascade at
// an off-stride sample in the middle of violent motion and restores
// the snapshot into a freshly built cascade: every subsequent decision
// must match the uninterrupted reference bit-for-bit, and the two
// must re-snapshot to state-equal images. This is the crash-replay
// guarantee specifically for the incremental inference engine: the
// conv/pool rings are not serialised — they are rebuilt from the ring
// buffer on restore — so any drift between cache and ring shows up
// here as a probability-bit divergence.
func TestSnapshotMidMotionCNNStreamsBitIdentical(t *testing.T) {
	ref := newCNNCascade(t)
	const quietLen, snapAt, total = 300, 315, 600 // 315: mid-window, off stride
	push := func(c *Cascade, i int) Decision {
		if i < quietLen {
			acc, gyro := quiet(i)
			return c.Push(acc, gyro)
		}
		return c.Push(fallSample(i - quietLen))
	}
	var img []byte
	for i := 0; i < snapAt; i++ {
		push(ref, i)
	}
	img, err := ref.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}

	restored := newCNNCascade(t)
	if err := restored.RestoreFresh(bytes.NewReader(img)); err != nil {
		t.Fatal(err)
	}
	evaluated := 0
	for i := snapAt; i < total; i++ {
		da := push(ref, i)
		db := push(restored, i)
		if da.Evaluated {
			evaluated++
		}
		if !decisionsEqual(da, db) {
			t.Fatalf("decisions diverge at sample %d:\n ref      %+v\n restored %+v", i, da, db)
		}
		if math.Float64bits(da.Probability) != math.Float64bits(db.Probability) {
			t.Fatalf("probability bits diverge at sample %d: %x vs %x",
				i, math.Float64bits(da.Probability), math.Float64bits(db.Probability))
		}
	}
	if evaluated == 0 {
		t.Fatal("fixture broken: no evaluations after the snapshot point")
	}
	a, err := ref.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	eq, err := SnapshotEqual(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("post-continuation snapshots differ")
	}
}
