package cascade

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/tensor"
)

func newTestCascadeOf[S tensor.Scalar](t *testing.T, cfg Config) *CascadeOf[S] {
	t.Helper()
	primary, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		t.Fatal(err)
	}
	fallback, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewOf[S](primary, fallback, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSnapshotKillRestoreBothWidths kills a mid-fall session at each
// compiled width and resumes it from the snapshot: the restored cascade
// must trigger on the same sample with the same decision as the
// uninterrupted reference. At float64 this re-pins the pre-generic
// contract; at float32 it proves the lowered state image (ring and
// caches serialized as exactly-widened float64 words) is lossless.
func TestSnapshotKillRestoreBothWidths(t *testing.T) {
	t.Run("f64", func(t *testing.T) { snapshotKillRestoreAt[float64](t) })
	t.Run("f32", func(t *testing.T) { snapshotKillRestoreAt[float32](t) })
}

func snapshotKillRestoreAt[S tensor.Scalar](t *testing.T) {
	ref := newTestCascadeOf[S](t, testCfg)
	const quietLen, snapAt = 300, 315
	for i := 0; i < quietLen; i++ {
		acc, gyro := quiet(i)
		ref.Push(acc, gyro)
	}
	var img []byte
	trigAt, trigRef := -1, Decision{}
	for k := 0; quietLen+k < 600; k++ {
		if quietLen+k == snapAt {
			var err error
			img, err = ref.SnapshotBytes()
			if err != nil {
				t.Fatal(err)
			}
		}
		d := ref.Push(fallSample(k))
		if d.Triggered {
			trigAt, trigRef = quietLen+k, d
			break
		}
	}
	if trigAt < 0 {
		t.Fatal("reference cascade never triggered on the synthetic fall")
	}
	if trigAt < snapAt {
		t.Fatalf("fall triggered at %d, before the %d-sample snapshot point — fixture broken", trigAt, snapAt)
	}

	restored := newTestCascadeOf[S](t, testCfg)
	if err := restored.RestoreFresh(bytes.NewReader(img)); err != nil {
		t.Fatal(err)
	}
	for i := snapAt; i <= trigAt; i++ {
		d := restored.Push(fallSample(i - quietLen))
		if d.Triggered != (i == trigAt) {
			t.Fatalf("restored cascade trigger state at sample %d: %v, want trigger exactly at %d",
				i, d.Triggered, trigAt)
		}
		if i == trigAt && d != trigRef {
			t.Fatalf("restored trigger decision differs:\n ref      %+v\n restored %+v", trigRef, d)
		}
	}
}

// TestSnapshotContinuationBothWidths: a restored cascade and one that
// never stopped stay decision-identical over a long mixed-stress tail,
// and re-snapshotting both yields state-equal images — at both widths.
func TestSnapshotContinuationBothWidths(t *testing.T) {
	t.Run("f64", func(t *testing.T) { snapshotContinuationAt[float64](t) })
	t.Run("f32", func(t *testing.T) { snapshotContinuationAt[float32](t) })
}

func snapshotContinuationAt[S tensor.Scalar](t *testing.T) {
	push := func(c *CascadeOf[S], i int) Decision {
		if i%97 == 45 {
			return c.PushMissing(1)
		}
		acc, gyro := quiet(i)
		return c.Push(acc, gyro)
	}
	ref := newTestCascadeOf[S](t, testCfg)
	for i := 0; i < 333; i++ {
		push(ref, i)
	}
	img, err := ref.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	restored := newTestCascadeOf[S](t, testCfg)
	if err := restored.Restore(bytes.NewReader(img)); err != nil {
		t.Fatal(err)
	}
	for i := 333; i < 1000; i++ {
		if da, db := push(ref, i), push(restored, i); da != db {
			t.Fatalf("decisions diverge at sample %d:\n ref      %+v\n restored %+v", i, da, db)
		}
	}
	a, err := ref.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	eq, err := SnapshotEqual(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("post-continuation snapshots differ")
	}
}

// TestSnapshotWidthMismatchRejected: a snapshot taken at one compiled
// width must never restore into a pipeline of the other — the error
// names both widths.
func TestSnapshotWidthMismatchRejected(t *testing.T) {
	c64 := newTestCascadeOf[float64](t, testCfg)
	c32 := newTestCascadeOf[float32](t, testCfg)
	for i := 0; i < 100; i++ {
		acc, gyro := quiet(i)
		c64.Push(acc, gyro)
		c32.Push(acc, gyro)
	}
	img64, err := c64.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	img32, err := c32.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	err = c32.Restore(bytes.NewReader(img64))
	if err == nil {
		t.Fatal("f32 cascade restored an f64 snapshot")
	}
	if !strings.Contains(err.Error(), "f64") || !strings.Contains(err.Error(), "f32") {
		t.Fatalf("width-mismatch error does not name both widths: %v", err)
	}
	if err := c64.Restore(bytes.NewReader(img32)); err == nil {
		t.Fatal("f64 cascade restored an f32 snapshot")
	}
}
