package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/imu"
)

func TestSegmentConfigValidate(t *testing.T) {
	good := SegmentConfig{WindowMS: 400, Overlap: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.WindowSamples() != 40 {
		t.Fatalf("400 ms = %d samples", good.WindowSamples())
	}
	bad := []SegmentConfig{
		{WindowMS: 5, Overlap: 0},
		{WindowMS: 400, Overlap: -0.1},
		{WindowMS: 400, Overlap: 1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v validated", c)
		}
	}
}

func TestExtractSegmentsADLAllNegative(t *testing.T) {
	tr := mkTrial(1, 6, 500, false)
	segs, err := ExtractSegments(&tr, SegmentConfig{WindowMS: 400, Overlap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	for _, s := range segs {
		if s.Y != 0 {
			t.Fatal("ADL produced a positive segment")
		}
		if s.X.Dim(0) != 40 || s.X.Dim(1) != imu.NumChannels {
			t.Fatalf("segment shape %v", s.X.Shape())
		}
		if s.Subject != 1 || s.Task != 6 {
			t.Fatal("provenance lost")
		}
	}
	// Maximal count: (500-40)/20 + 1 = 24.
	if len(segs) != 24 {
		t.Fatalf("got %d segments, want 24", len(segs))
	}
}

func TestExtractSegmentsFallLabels(t *testing.T) {
	// Fall with onset 250, impact 300 → truncated end 285.
	tr := mkTrial(1, 30, 600, true)
	tr.FallOnset = 250
	tr.Impact = 300
	segs, err := ExtractSegments(&tr, SegmentConfig{WindowMS: 200, Overlap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	pos, neg := CountLabels(segs)
	if pos == 0 {
		t.Fatal("no positive segments for a 350 ms usable falling phase")
	}
	if neg == 0 {
		t.Fatal("no negative segments")
	}
	for _, s := range segs {
		end := s.Start + 20
		// Windows reaching past truncEnd=285 into the impact region
		// must have been dropped.
		if end > 285 && s.Start < 330 {
			t.Fatalf("segment at %d overlaps the excluded pre-impact zone", s.Start)
		}
		if s.Y == 1 {
			// A positive window ends inside the usable falling phase
			// with at least 80 ms of falling data.
			if end <= 250 || end > 285 {
				t.Fatalf("positive segment ends at %d outside (250, 285]", end)
			}
			if ov := overlapLen(s.Start, end, 250, 285); ov < 8 {
				t.Fatalf("positive segment at %d has only %d falling samples", s.Start, ov)
			}
		}
	}
}

func TestExtractSegmentsShortFall(t *testing.T) {
	// Falling phase shorter than the window: onset 200, impact 230
	// (300 ms), truncated end 215 — only 150 ms usable inside 400 ms
	// windows. With 75 % overlap (step 10) a window ending at 210
	// carries 100 ms ≥ 80 ms of falling tail and must be positive.
	tr := mkTrial(1, 21, 600, true)
	tr.FallOnset = 200
	tr.Impact = 230
	segs, err := ExtractSegments(&tr, SegmentConfig{WindowMS: 400, Overlap: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	pos, _ := CountLabels(segs)
	if pos == 0 {
		t.Fatal("short fall produced no positive segments")
	}
}

func TestExtractSegmentsUltraShortFall(t *testing.T) {
	// Fall shorter than the inflation window: nothing usable remains;
	// the trial must still segment (negatives away from the impact).
	tr := mkTrial(1, 21, 600, true)
	tr.FallOnset = 300
	tr.Impact = 310
	segs, err := ExtractSegments(&tr, SegmentConfig{WindowMS: 200, Overlap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	pos, neg := CountLabels(segs)
	if pos != 0 {
		t.Fatal("ultra-short fall produced positives")
	}
	if neg == 0 {
		t.Fatal("no negatives survived")
	}
}

func TestExtractSegmentsDataMatchesSource(t *testing.T) {
	tr := mkTrial(1, 6, 100, false)
	x := make([]float64, 100)
	for i := range x {
		x[i] = float64(i)
	}
	tr.SetChannel(imu.AccY, x)
	segs, err := ExtractSegments(&tr, SegmentConfig{WindowMS: 200, Overlap: 0})
	if err != nil {
		t.Fatal(err)
	}
	s := segs[1] // starts at 20
	if s.Start != 20 {
		t.Fatalf("second window starts at %d", s.Start)
	}
	if got := s.X.At(5, imu.AccY); got != 25 {
		t.Fatalf("segment datum = %g, want 25", got)
	}
}

func TestExtractAllAndLabelStats(t *testing.T) {
	d := &Dataset{Trials: []Trial{
		mkTrial(1, 6, 800, false),
		mkTrial(1, 30, 800, true),
		mkTrial(2, 6, 800, false),
	}}
	segs, err := d.ExtractAll(SegmentConfig{WindowMS: 400, Overlap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	pos, neg := CountLabels(segs)
	if pos == 0 || neg == 0 {
		t.Fatalf("labels: %d pos, %d neg", pos, neg)
	}
	if pos >= neg {
		t.Fatal("positives should be the minority class")
	}
}

// Property: no surviving segment ever overlaps the exclusion zone, and
// labels obey the overlap rule, for random annotations.
func TestExtractSegmentsInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 300 + rng.Intn(500)
		tr := mkTrial(1, 30, n, false)
		tr.FallOnset = 50 + rng.Intn(n/2)
		tr.Impact = tr.FallOnset + 20 + rng.Intn(80)
		if tr.Impact >= n {
			return true
		}
		winMS := []int{100, 200, 300, 400}[rng.Intn(4)]
		ov := []float64{0, 0.25, 0.5, 0.75}[rng.Intn(4)]
		segs, err := ExtractSegments(&tr, SegmentConfig{WindowMS: winMS, Overlap: ov})
		if err != nil {
			return false
		}
		w := winMS / 10
		truncEnd := tr.TruncatedFallEnd()
		exclHi := tr.Impact + impactExclusionSamples
		for _, s := range segs {
			end := s.Start + w
			if end > truncEnd && s.Start < exclHi {
				return false // survived the exclusion zone
			}
			if s.Y == 1 {
				if end <= tr.FallOnset || end > truncEnd {
					return false // positive window not ending in the fall
				}
				if overlapLen(s.Start, end, tr.FallOnset, truncEnd) == 0 {
					return false // positive without any fall content
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowTensorNormalisation(t *testing.T) {
	// Segments must carry the fixed per-channel normalisation: a
	// 200 deg/s gyro reading becomes 1.0, a 90° Euler angle 1.0,
	// accelerations pass through.
	tr := mkTrial(1, 6, 50, false)
	for i := range tr.Samples {
		tr.Samples[i] = imu.Sample{
			Acc:   imu.Vec3{X: 0.5, Z: 1},
			Gyro:  imu.Vec3{Y: 200},
			Euler: imu.Vec3{X: 90},
		}
	}
	segs, err := ExtractSegments(&tr, SegmentConfig{WindowMS: 200, Overlap: 0})
	if err != nil {
		t.Fatal(err)
	}
	s := segs[0]
	if got := s.X.At(3, imu.AccX); got != 0.5 {
		t.Fatalf("acc scaled: %g", got)
	}
	if got := s.X.At(3, imu.GyroY); got != 1.0 {
		t.Fatalf("gyro not normalised: %g", got)
	}
	if got := s.X.At(3, imu.EulerPitch); got != 1.0 {
		t.Fatalf("euler not normalised: %g", got)
	}
}

func TestWindowYawIsRelative(t *testing.T) {
	// A constant yaw offset (accumulated drift) must vanish from the
	// extracted window; only within-window rotation remains.
	tr := mkTrial(1, 6, 50, false)
	for i := range tr.Samples {
		tr.Samples[i].Euler = imu.Vec3{Z: 500 + float64(i)} // huge drift + 1°/sample slope
	}
	segs, err := ExtractSegments(&tr, SegmentConfig{WindowMS: 200, Overlap: 0})
	if err != nil {
		t.Fatal(err)
	}
	s := segs[1] // starts at sample 20
	if got := s.X.At(0, imu.EulerYaw); got != 0 {
		t.Fatalf("window yaw[0] = %g, want 0", got)
	}
	// Sample 5 of the window: yaw grew by 5° → 5/90 normalised.
	if got := s.X.At(5, imu.EulerYaw); got != 5.0/90 {
		t.Fatalf("relative yaw = %g, want %g", got, 5.0/90)
	}
}
