package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/imu"
)

// csvHeader is the column layout of the interchange format: one row
// per sample with trial metadata repeated, which keeps the format
// flat, greppable and loadable without a side-car index.
var csvHeader = []string{
	"subject", "task", "trial", "source", "fall_onset", "impact", "sample",
	"acc_x", "acc_y", "acc_z", "gyro_x", "gyro_y", "gyro_z",
	"pitch", "roll", "yaw",
}

// WriteCSV writes the dataset in the flat per-sample CSV format.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	row := make([]string, len(csvHeader))
	for i := range d.Trials {
		t := &d.Trials[i]
		row[0] = strconv.Itoa(t.Subject)
		row[1] = strconv.Itoa(t.Task)
		row[2] = strconv.Itoa(t.Index)
		row[3] = strconv.Itoa(int(t.Source))
		row[4] = strconv.Itoa(t.FallOnset)
		row[5] = strconv.Itoa(t.Impact)
		for n, s := range t.Samples {
			row[6] = strconv.Itoa(n)
			f := s.Features()
			for c := 0; c < imu.NumChannels; c++ {
				row[7+c] = strconv.FormatFloat(f[c], 'g', 9, 64)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset previously written by WriteCSV. Rows must
// be grouped by trial and ordered by sample index, as WriteCSV emits
// them.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if len(head) != len(csvHeader) {
		return nil, fmt.Errorf("dataset: CSV has %d columns, want %d", len(head), len(csvHeader))
	}

	d := &Dataset{}
	var cur *Trial
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
		line++
		ints := make([]int, 7)
		for i := 0; i < 7; i++ {
			v, err := strconv.Atoi(rec[i])
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d col %s: %w", line, csvHeader[i], err)
			}
			ints[i] = v
		}
		var f [imu.NumChannels]float64
		for c := 0; c < imu.NumChannels; c++ {
			v, err := strconv.ParseFloat(rec[7+c], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d col %s: %w", line, csvHeader[7+c], err)
			}
			f[c] = v
		}
		newTrial := cur == nil || cur.Subject != ints[0] || cur.Task != ints[1] ||
			cur.Index != ints[2] || ints[6] == 0
		if newTrial {
			d.Trials = append(d.Trials, Trial{
				Subject:   ints[0],
				Task:      ints[1],
				Index:     ints[2],
				Source:    Source(ints[3]),
				FallOnset: ints[4],
				Impact:    ints[5],
			})
			cur = &d.Trials[len(d.Trials)-1]
		}
		if ints[6] != len(cur.Samples) {
			return nil, fmt.Errorf("dataset: CSV line %d: sample index %d, want %d",
				line, ints[6], len(cur.Samples))
		}
		cur.Samples = append(cur.Samples, imu.FromFeatures(f))
	}
	for i := range d.Trials {
		if err := d.Trials[i].Validate(); err != nil {
			return nil, err
		}
	}
	return d, nil
}
