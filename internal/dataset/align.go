package dataset

import (
	"math"

	"repro/internal/imu"
)

// KFallFrameRotation is the fixed re-orientation applied to KFall
// trials to bring their sensor frame into the self-collected
// convention (paper §IV-A: "a rotation matrix computed through
// Rodrigues' rotation formula"). In this reproduction the KFall-style
// generator mounts its virtual sensor rotated 90° about the X axis,
// so alignment is the inverse rotation; the function is exported so
// the synthesiser and the aligner provably use the same convention.
func KFallFrameRotation() imu.Mat3 {
	return imu.Rodrigues(imu.Vec3{X: 1}, math.Pi/2)
}

// Standardize converts a trial in place to the merged-dataset
// convention: accelerations in g, angular rates in deg/s, the
// worksite sensor frame, and Euler angles recomputed by the on-edge
// sensor fusion (orientations are frame-relative, so they must be
// re-derived after rotation). Worksite trials only get their Euler
// channels refreshed, which is a no-op semantically since they were
// produced by the same fusion.
func Standardize(t *Trial) {
	if t.Source == SourceKFall {
		inv := KFallFrameRotation().Transpose()
		for i := range t.Samples {
			s := t.Samples[i]
			// KFall ships m/s²; convert to g first.
			s.Acc = s.Acc.Scale(1 / imu.StandardGravity)
			t.Samples[i] = inv.Rotate(s)
		}
		t.Source = SourceWorksite // now indistinguishable by convention
	}
	fusion := imu.MustNewFusion(SampleRate, 0.5)
	fusion.Annotate(t.Samples)
}

// StandardizeAll aligns every trial of the dataset in place.
func (d *Dataset) StandardizeAll() {
	for i := range d.Trials {
		Standardize(&d.Trials[i])
	}
}
