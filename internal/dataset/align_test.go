package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/imu"
)

func TestStandardizeKFallRoundTrip(t *testing.T) {
	// Build a canonical worksite trial, disguise it as KFall raw data
	// (m/s², rotated frame), then Standardize must recover the
	// original inertial channels.
	orig := mkTrial(101, 6, 200, false)
	x := make([]float64, 200)
	for i := range x {
		x[i] = 0.1 * math.Sin(float64(i)/10)
	}
	orig.SetChannel(imu.AccX, x)
	orig.SetChannel(imu.GyroZ, x)

	disguised := orig
	disguised.Samples = append([]imu.Sample(nil), orig.Samples...)
	rot := KFallFrameRotation()
	for i := range disguised.Samples {
		s := disguised.Samples[i]
		s.Acc = s.Acc.Scale(imu.StandardGravity)
		disguised.Samples[i] = rot.Rotate(s)
	}
	disguised.Source = SourceKFall

	Standardize(&disguised)
	if disguised.Source != SourceWorksite {
		t.Fatal("source not normalised")
	}
	for i := range orig.Samples {
		a, b := orig.Samples[i].Acc, disguised.Samples[i].Acc
		if math.Abs(a.X-b.X) > 1e-9 || math.Abs(a.Y-b.Y) > 1e-9 || math.Abs(a.Z-b.Z) > 1e-9 {
			t.Fatalf("acc not recovered at %d: %v vs %v", i, a, b)
		}
		g, h := orig.Samples[i].Gyro, disguised.Samples[i].Gyro
		if math.Abs(g.X-h.X) > 1e-9 || math.Abs(g.Y-h.Y) > 1e-9 || math.Abs(g.Z-h.Z) > 1e-9 {
			t.Fatalf("gyro not recovered at %d", i)
		}
	}
}

func TestStandardizeComputesEuler(t *testing.T) {
	// A trial lying on the back (gravity on +X): after fusion the
	// pitch must be strongly negative (≈ −90°) per the fusion
	// convention pitch = atan2(−ax, √(ay²+az²)).
	tr := mkTrial(1, 17, 300, false)
	for i := range tr.Samples {
		tr.Samples[i].Acc = imu.Vec3{X: 1}
	}
	Standardize(&tr)
	e := tr.Samples[250].Euler
	if math.Abs(e.X+90) > 3 {
		t.Fatalf("supine pitch = %g, want ≈ −90", e.X)
	}
}

func TestStandardizeAllIdempotentOnWorksite(t *testing.T) {
	tr := mkTrial(1, 1, 100, false)
	d := &Dataset{Trials: []Trial{tr}}
	d.StandardizeAll()
	first := append([]imu.Sample(nil), d.Trials[0].Samples...)
	d.StandardizeAll()
	for i := range first {
		if first[i] != d.Trials[0].Samples[i] {
			t.Fatal("StandardizeAll not idempotent on aligned data")
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := &Dataset{Trials: []Trial{
		mkTrial(1, 6, 50, false),
		mkTrial(2, 30, 120, true),
	}}
	d.Trials[0].Samples[3].Gyro = imu.Vec3{X: 1.25, Y: -3.5, Z: 0.001}
	d.Trials[1].Source = SourceKFall

	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Trials) != 2 {
		t.Fatalf("read %d trials", len(got.Trials))
	}
	for i := range d.Trials {
		a, b := &d.Trials[i], &got.Trials[i]
		if a.Subject != b.Subject || a.Task != b.Task || a.Source != b.Source ||
			a.FallOnset != b.FallOnset || a.Impact != b.Impact {
			t.Fatalf("trial %d metadata differs: %+v vs %+v", i, a, b)
		}
		if len(a.Samples) != len(b.Samples) {
			t.Fatalf("trial %d sample count differs", i)
		}
		for j := range a.Samples {
			fa, fb := a.Samples[j].Features(), b.Samples[j].Features()
			for c := range fa {
				if math.Abs(fa[c]-fb[c]) > 1e-9 {
					t.Fatalf("trial %d sample %d ch %d differs", i, j, c)
				}
			}
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",                                      // no header
		"a,b\n",                                 // wrong column count
		strings.Repeat("x,", 15) + "x\n1,2,3\n", // bad row
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadCSVRejectsBrokenSampleOrder(t *testing.T) {
	d := &Dataset{Trials: []Trial{mkTrial(1, 6, 3, false)}}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt a sample index (2nd data row's "sample" column from 1 to 7).
	s := buf.String()
	lines := strings.Split(s, "\n")
	f := strings.Split(lines[2], ",")
	f[6] = "7"
	lines[2] = strings.Join(f, ",")
	if _, err := ReadCSV(strings.NewReader(strings.Join(lines, "\n"))); err == nil {
		t.Fatal("broken sample ordering accepted")
	}
}
