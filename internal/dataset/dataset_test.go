package dataset

import (
	"math"
	"testing"

	"repro/internal/imu"
)

// mkTrial builds a trial of n constant samples.
func mkTrial(subject, task int, n int, fall bool) Trial {
	t := Trial{
		Subject:   subject,
		Task:      task,
		Index:     0,
		Source:    SourceWorksite,
		FallOnset: -1,
		Impact:    -1,
	}
	for i := 0; i < n; i++ {
		t.Samples = append(t.Samples, imu.Sample{Acc: imu.Vec3{Z: 1}})
	}
	if fall {
		t.FallOnset = n / 2
		t.Impact = n/2 + 50
	}
	return t
}

func TestTrialIsFallAndTruncation(t *testing.T) {
	adl := mkTrial(1, 6, 500, false)
	if adl.IsFall() {
		t.Fatal("ADL marked as fall")
	}
	if adl.TruncatedFallEnd() != -1 {
		t.Fatal("ADL has truncated end")
	}
	fall := mkTrial(1, 30, 500, true)
	if !fall.IsFall() {
		t.Fatal("fall not marked")
	}
	// Impact at 300, inflation 150 ms = 15 samples → 285.
	if got := fall.TruncatedFallEnd(); got != 285 {
		t.Fatalf("TruncatedFallEnd = %d, want 285", got)
	}
}

func TestTruncatedFallEndDegenerate(t *testing.T) {
	tr := mkTrial(1, 21, 400, true)
	tr.FallOnset = 200
	tr.Impact = 210 // 100 ms fall, shorter than the inflation window
	if got := tr.TruncatedFallEnd(); got != 200 {
		t.Fatalf("degenerate TruncatedFallEnd = %d, want onset 200", got)
	}
}

func TestTrialValidate(t *testing.T) {
	ok := mkTrial(1, 30, 300, true)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	empty := Trial{FallOnset: -1, Impact: -1}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty trial validated")
	}
	bad := mkTrial(1, 30, 100, true)
	bad.Impact = 200
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range impact validated")
	}
	inconsistent := mkTrial(1, 6, 100, false)
	inconsistent.FallOnset = 10
	if err := inconsistent.Validate(); err == nil {
		t.Fatal("half-annotated trial validated")
	}
}

func TestChannelRoundTrip(t *testing.T) {
	tr := mkTrial(1, 6, 10, false)
	x := make([]float64, 10)
	for i := range x {
		x[i] = float64(i) * 0.5
	}
	tr.SetChannel(imu.GyroY, x)
	got := tr.Channel(imu.GyroY)
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("channel round trip differs at %d", i)
		}
	}
	// Other channels untouched.
	if tr.Samples[3].Acc.Z != 1 {
		t.Fatal("SetChannel leaked into other channels")
	}
}

func TestSetChannelLengthPanics(t *testing.T) {
	tr := mkTrial(1, 6, 10, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.SetChannel(0, make([]float64, 5))
}

func TestDatasetSubjectsAndFilter(t *testing.T) {
	d := &Dataset{Trials: []Trial{
		mkTrial(3, 6, 100, false),
		mkTrial(1, 30, 300, true),
		mkTrial(3, 30, 300, true),
		mkTrial(2, 6, 100, false),
	}}
	subs := d.Subjects()
	if len(subs) != 3 || subs[0] != 1 || subs[2] != 3 {
		t.Fatalf("Subjects = %v", subs)
	}
	f := d.FilterSubjects([]int{3})
	if len(f.Trials) != 2 {
		t.Fatalf("filter kept %d trials", len(f.Trials))
	}
	falls, adls := d.Counts()
	if falls != 2 || adls != 2 {
		t.Fatalf("Counts = %d, %d", falls, adls)
	}
}

func TestDatasetMergeAndStats(t *testing.T) {
	a := &Dataset{Trials: []Trial{mkTrial(1, 6, 100, false)}}
	b := &Dataset{Trials: []Trial{mkTrial(2, 30, 300, true)}}
	a.Merge(b)
	st := a.ComputeStats()
	if st.Trials != 2 || st.Falls != 1 || st.ADLs != 1 || st.Subjects != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Samples != 400 {
		t.Fatalf("samples = %d", st.Samples)
	}
	if math.Abs(st.FallDurationMeanMS-500) > 1e-9 {
		t.Fatalf("fall duration = %g ms, want 500", st.FallDurationMeanMS)
	}
}

func TestLowPassSmoothsNoise(t *testing.T) {
	tr := mkTrial(1, 1, 400, false)
	// Inject alternating ±0.5 noise on acc X (a 50 Hz square wave).
	x := make([]float64, 400)
	for i := range x {
		if i%2 == 0 {
			x[i] = 0.5
		} else {
			x[i] = -0.5
		}
	}
	tr.SetChannel(imu.AccX, x)
	d := &Dataset{Trials: []Trial{tr}}
	d.LowPass()
	out := d.Trials[0].Channel(imu.AccX)
	for i := 50; i < 350; i++ {
		if math.Abs(out[i]) > 0.02 {
			t.Fatalf("50 Hz noise survived LowPass at %d: %g", i, out[i])
		}
	}
	// The steady Z channel must be preserved.
	z := d.Trials[0].Channel(imu.AccZ)
	if math.Abs(z[200]-1) > 0.01 {
		t.Fatalf("LowPass distorted constant channel: %g", z[200])
	}
}

func TestSourceString(t *testing.T) {
	if SourceWorksite.String() != "worksite" || SourceKFall.String() != "kfall" {
		t.Fatal("source names")
	}
	if Source(9).String() == "" {
		t.Fatal("unknown source unnamed")
	}
}

func TestAirbagConstants(t *testing.T) {
	if AirbagInflationSamples != 15 {
		t.Fatalf("150 ms at 100 Hz must be 15 samples, got %d", AirbagInflationSamples)
	}
}
