package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func seqSubjects(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i + 1
	}
	return s
}

func TestKFoldPaperConfiguration(t *testing.T) {
	// 61 subjects, k=5, 4 validation subjects — the paper's setup.
	rng := rand.New(rand.NewSource(1))
	folds, err := KFoldSubjects(seqSubjects(61), 5, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("got %d folds", len(folds))
	}
	testCount := map[int]int{}
	for i, f := range folds {
		if !f.Disjoint() {
			t.Fatalf("fold %d not subject-disjoint", i)
		}
		if len(f.Validation) != 4 {
			t.Fatalf("fold %d has %d validation subjects", i, len(f.Validation))
		}
		if len(f.Test) < 12 || len(f.Test) > 13 {
			t.Fatalf("fold %d test size %d, want 12–13", i, len(f.Test))
		}
		if got := len(f.Train) + len(f.Validation) + len(f.Test); got != 61 {
			t.Fatalf("fold %d covers %d subjects", i, got)
		}
		for _, s := range f.Test {
			testCount[s]++
		}
	}
	// Every subject is tested exactly once across the 5 folds.
	for s := 1; s <= 61; s++ {
		if testCount[s] != 1 {
			t.Fatalf("subject %d tested %d times", s, testCount[s])
		}
	}
}

func TestKFoldErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := KFoldSubjects(seqSubjects(10), 1, 2, rng); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := KFoldSubjects(seqSubjects(3), 5, 0, rng); err == nil {
		t.Error("3 subjects into 5 folds accepted")
	}
	if _, err := KFoldSubjects(seqSubjects(10), 5, -1, rng); err == nil {
		t.Error("negative nVal accepted")
	}
	if _, err := KFoldSubjects(seqSubjects(10), 5, 8, rng); err == nil {
		t.Error("validation swallowing all training accepted")
	}
}

func TestKFoldDeterminism(t *testing.T) {
	a, _ := KFoldSubjects(seqSubjects(20), 4, 2, rand.New(rand.NewSource(7)))
	b, _ := KFoldSubjects(seqSubjects(20), 4, 2, rand.New(rand.NewSource(7)))
	for i := range a {
		for j := range a[i].Test {
			if a[i].Test[j] != b[i].Test[j] {
				t.Fatal("same seed produced different folds")
			}
		}
	}
}

func TestSplitSegments(t *testing.T) {
	segs := []Segment{
		{Subject: 1}, {Subject: 2}, {Subject: 3}, {Subject: 4}, {Subject: 1},
	}
	f := Fold{Train: []int{1}, Validation: []int{2}, Test: []int{3}}
	tr, va, te := f.SplitSegments(segs)
	if len(tr) != 2 || len(va) != 1 || len(te) != 1 {
		t.Fatalf("split sizes %d/%d/%d", len(tr), len(va), len(te))
	}
	// Subject 4 is in no role and must be dropped.
	total := len(tr) + len(va) + len(te)
	if total != 4 {
		t.Fatalf("total %d, want 4", total)
	}
}

// Property: folds partition the subjects — every subject appears in
// exactly one role per fold and in the test role exactly once overall.
func TestKFoldPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(80)
		k := 2 + rng.Intn(5)
		nVal := rng.Intn(3)
		folds, err := KFoldSubjects(seqSubjects(n), k, nVal, rng)
		if err != nil {
			return true // invalid combination, fine
		}
		tested := map[int]int{}
		for _, fd := range folds {
			if !fd.Disjoint() {
				return false
			}
			if len(fd.Train)+len(fd.Validation)+len(fd.Test) != n {
				return false
			}
			for _, s := range fd.Test {
				tested[s]++
			}
		}
		for s := 1; s <= n; s++ {
			if tested[s] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
