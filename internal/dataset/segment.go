package dataset

import (
	"fmt"

	"repro/internal/dsp"
	"repro/internal/imu"
	"repro/internal/tensor"
)

// Segment is one fixed-length window of 9-channel data, labelled
// falling (1) or non-falling (0), with provenance for event-level
// analysis.
type Segment struct {
	X *tensor.Tensor // [n × 9]
	Y int            // 1 = falling, 0 = activity

	Subject int
	Task    int
	TrialIx int
	Start   int // window start sample within the trial
}

// SegmentConfig controls window extraction and labelling.
type SegmentConfig struct {
	// WindowMS is the segment duration in milliseconds (paper: 100–400).
	WindowMS int
	// Overlap is the fractional overlap between consecutive windows
	// (paper: 0, 0.25, 0.5, 0.75).
	Overlap float64
	// MinFallMS is the minimum duration of falling-phase data that
	// must be present at the tail of a window for the positive label.
	// Zero selects the default of 80 ms.
	MinFallMS int
}

// WindowSamples returns the window length in samples at SampleRate.
func (c SegmentConfig) WindowSamples() int { return c.WindowMS * SampleRate / 1000 }

func (c SegmentConfig) minFallSamples() int {
	ms := c.MinFallMS
	if ms <= 0 {
		ms = 80
	}
	return ms * SampleRate / 1000
}

// Validate checks the configuration.
func (c SegmentConfig) Validate() error {
	if c.WindowMS < 10 {
		return fmt.Errorf("dataset: window %d ms too short", c.WindowMS)
	}
	if c.WindowSamples() < 2 {
		return fmt.Errorf("dataset: window %d ms is under 2 samples at %d Hz", c.WindowMS, SampleRate)
	}
	if c.Overlap < 0 || c.Overlap >= 1 {
		return fmt.Errorf("dataset: overlap %g outside [0,1)", c.Overlap)
	}
	return nil
}

// ExtractSegments segments one trial according to the config.
//
// Labelling models the streaming detector: a window whose *end* lies
// inside the truncated falling phase [FallOnset, TruncatedFallEnd]
// and which carries at least MinFallMS of falling data at its tail is
// a positive — that is the moment a real-time detector would need to
// fire. Windows that contain any of the final AirbagInflationMS of
// the fall or the impact transient are excluded entirely (the paper
// removes the last 150 ms: a trigger there is too late, so neither
// class may learn from those samples). Windows entirely in the
// pre-fall or post-fall phases are negatives.
func ExtractSegments(t *Trial, cfg SegmentConfig) ([]Segment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := cfg.WindowSamples()
	wins, err := dsp.SlidingWindows(len(t.Samples), n, cfg.Overlap)
	if err != nil {
		return nil, err
	}

	var segs []Segment
	for _, w := range wins {
		label := 0
		if t.IsFall() {
			truncEnd := t.TruncatedFallEnd()
			exclHi := t.Impact + impactExclusionSamples
			// Windows reaching past the usable falling phase but into
			// the excluded tail / impact transient are dropped.
			if w.End() > truncEnd && w.Start < exclHi {
				continue
			}
			fallLen := truncEnd - t.FallOnset
			if fallLen > 0 && w.End() > t.FallOnset && w.End() <= truncEnd {
				need := min(cfg.minFallSamples(), fallLen)
				if overlapLen(w.Start, w.End(), t.FallOnset, truncEnd) >= need {
					label = 1
				}
			}
		}
		seg := Segment{
			X:       windowTensor(t, w.Start, n),
			Y:       label,
			Subject: t.Subject,
			Task:    t.Task,
			TrialIx: t.Index,
			Start:   w.Start,
		}
		segs = append(segs, seg)
	}
	return segs, nil
}

func overlapLen(aLo, aHi, bLo, bHi int) int {
	lo, hi := max(aLo, bLo), min(aHi, bHi)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

func windowTensor(t *Trial, start, n int) *tensor.Tensor {
	x := tensor.New(n, imu.NumChannels)
	d := x.Data()
	// Yaw is gyro-integrated with no absolute reference, so it drifts
	// without bound over long wear; the window-relative yaw (rotation
	// since the window start) is the drift-free feature the detector
	// actually needs. Pitch/roll are gravity-anchored and stay
	// absolute.
	yaw0 := t.Samples[start].Features()[imu.EulerYaw]
	for i := 0; i < n; i++ {
		f := t.Samples[start+i].Features()
		f[imu.EulerYaw] -= yaw0
		for c := 0; c < imu.NumChannels; c++ {
			// Fixed per-channel normalisation keeps the g-scale
			// accelerations and the O(100) deg/s rates commensurate.
			d[i*imu.NumChannels+c] = f[c] / imu.ChannelScale(c)
		}
	}
	return x
}

// ExtractAll segments every trial of the dataset.
func (d *Dataset) ExtractAll(cfg SegmentConfig) ([]Segment, error) {
	var all []Segment
	for i := range d.Trials {
		segs, err := ExtractSegments(&d.Trials[i], cfg)
		if err != nil {
			return nil, err
		}
		all = append(all, segs...)
	}
	return all, nil
}

// CountLabels tallies positives and negatives in a segment set.
func CountLabels(segs []Segment) (pos, neg int) {
	for i := range segs {
		if segs[i].Y == 1 {
			pos++
		} else {
			neg++
		}
	}
	return pos, neg
}
