// Package dataset provides the containers and transformations between
// raw IMU trials and the labelled fixed-size segments the models
// train on: trial records with frame-accurate fall annotations, the
// paper's 150 ms pre-impact truncation, unit/orientation alignment of
// heterogeneous sources (KFall vs the self-collected dataset),
// low-pass filtering, sliding-window segmentation with label
// assignment, CSV interchange and subject-independent k-fold splits.
package dataset

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dsp"
	"repro/internal/imu"
)

// Source identifies which acquisition campaign a trial belongs to.
// The two sources differ in units and sensor orientation and must be
// aligned before merging (paper §IV-A).
type Source int

const (
	// SourceWorksite is the self-collected Protechto dataset: 29
	// subjects, accelerations in g, native sensor frame.
	SourceWorksite Source = iota
	// SourceKFall is the KFall-style dataset: 32 subjects,
	// accelerations in m/s², sensor frame rotated w.r.t. ours.
	SourceKFall
)

func (s Source) String() string {
	switch s {
	case SourceWorksite:
		return "worksite"
	case SourceKFall:
		return "kfall"
	default:
		return fmt.Sprintf("source(%d)", int(s))
	}
}

// SampleRate is the common acquisition rate in Hz (both datasets run
// at 100 Hz).
const SampleRate = 100

// AirbagInflationMS is the airbag's inflation time: the last
// AirbagInflationMS milliseconds of every falling phase are useless
// for triggering and are removed from the data (paper §III-C, §V).
const AirbagInflationMS = 150

// AirbagInflationSamples is the same deadline in samples at SampleRate.
const AirbagInflationSamples = AirbagInflationMS * SampleRate / 1000

// impactExclusionSamples extends the excluded region slightly past the
// impact instant so that no segment straddles the impact spike itself.
const impactExclusionSamples = 30

// Trial is one recorded activity execution by one subject, with
// frame-accurate fall annotations when the task ends in a fall.
type Trial struct {
	Subject int    // global subject id (unique across sources)
	Task    int    // Table II task id, 1–44
	Index   int    // trial repetition number
	Source  Source // acquisition campaign

	Samples []imu.Sample

	// FallOnset is the sample index at which recovery becomes
	// impossible (start of the falling phase); Impact is the sample
	// index of ground contact. Both are −1 for ADL trials.
	FallOnset int
	Impact    int
}

// IsFall reports whether the trial contains an annotated fall.
func (t *Trial) IsFall() bool { return t.FallOnset >= 0 && t.Impact > t.FallOnset }

// TruncatedFallEnd returns the exclusive end of the usable falling
// phase: Impact minus the airbag inflation window. Segments beyond
// this point cannot trigger the airbag in time and are excluded.
func (t *Trial) TruncatedFallEnd() int {
	if !t.IsFall() {
		return -1
	}
	end := t.Impact - AirbagInflationSamples
	if end < t.FallOnset {
		end = t.FallOnset // degenerate ultra-short fall
	}
	return end
}

// Validate performs structural checks on the trial.
func (t *Trial) Validate() error {
	if len(t.Samples) == 0 {
		return fmt.Errorf("dataset: trial s%d t%d has no samples", t.Subject, t.Task)
	}
	if t.IsFall() {
		if t.FallOnset >= len(t.Samples) || t.Impact > len(t.Samples) {
			return fmt.Errorf("dataset: trial s%d t%d fall annotation [%d,%d) outside %d samples",
				t.Subject, t.Task, t.FallOnset, t.Impact, len(t.Samples))
		}
	} else if t.FallOnset != -1 || t.Impact != -1 {
		return fmt.Errorf("dataset: trial s%d t%d has inconsistent fall annotation (%d,%d)",
			t.Subject, t.Task, t.FallOnset, t.Impact)
	}
	return nil
}

// Channel extracts one feature channel as a contiguous signal.
func (t *Trial) Channel(c int) []float64 {
	out := make([]float64, len(t.Samples))
	for i, s := range t.Samples {
		out[i] = s.Features()[c]
	}
	return out
}

// SetChannel overwrites one feature channel from a signal of matching
// length.
func (t *Trial) SetChannel(c int, x []float64) {
	if len(x) != len(t.Samples) {
		panic(fmt.Sprintf("dataset: SetChannel length %d != %d", len(x), len(t.Samples)))
	}
	for i := range t.Samples {
		f := t.Samples[i].Features()
		f[c] = x[i]
		t.Samples[i] = imu.FromFeatures(f)
	}
}

// Dataset is a collection of trials from one or both sources.
type Dataset struct {
	Trials []Trial
}

// Subjects returns the sorted distinct subject ids present.
func (d *Dataset) Subjects() []int {
	seen := map[int]bool{}
	for i := range d.Trials {
		seen[d.Trials[i].Subject] = true
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// FilterSubjects returns a shallow dataset containing only trials from
// the given subjects.
func (d *Dataset) FilterSubjects(subjects []int) *Dataset {
	want := map[int]bool{}
	for _, s := range subjects {
		want[s] = true
	}
	out := &Dataset{}
	for i := range d.Trials {
		if want[d.Trials[i].Subject] {
			out.Trials = append(out.Trials, d.Trials[i])
		}
	}
	return out
}

// Merge appends all trials of o.
func (d *Dataset) Merge(o *Dataset) {
	d.Trials = append(d.Trials, o.Trials...)
}

// Counts returns the number of fall and ADL trials.
func (d *Dataset) Counts() (falls, adls int) {
	for i := range d.Trials {
		if d.Trials[i].IsFall() {
			falls++
		} else {
			adls++
		}
	}
	return falls, adls
}

// Stats summarises the dataset for reporting.
type Stats struct {
	Trials, Falls, ADLs  int
	Subjects             int
	Samples              int
	FallDurationMeanMS   float64
	FallDurationShortest float64 // ms
}

// ComputeStats walks the dataset once and summarises it.
func (d *Dataset) ComputeStats() Stats {
	st := Stats{Trials: len(d.Trials), Subjects: len(d.Subjects())}
	durSum, durN := 0.0, 0
	shortest := math.Inf(1)
	for i := range d.Trials {
		t := &d.Trials[i]
		st.Samples += len(t.Samples)
		if t.IsFall() {
			st.Falls++
			ms := float64(t.Impact-t.FallOnset) * 1000 / SampleRate
			durSum += ms
			durN++
			if ms < shortest {
				shortest = ms
			}
		} else {
			st.ADLs++
		}
	}
	if durN > 0 {
		st.FallDurationMeanMS = durSum / float64(durN)
		st.FallDurationShortest = shortest
	}
	return st
}

// LowPass applies the paper's pre-processing filter (4th-order
// Butterworth, cutoff 5 Hz) zero-phase to every channel of every
// trial, in place.
func (d *Dataset) LowPass() {
	f := dsp.MustButterworth(4, 5, SampleRate)
	for i := range d.Trials {
		t := &d.Trials[i]
		for c := 0; c < imu.NumChannels; c++ {
			t.SetChannel(c, f.FiltFilt(t.Channel(c)))
		}
	}
}
