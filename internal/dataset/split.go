package dataset

import (
	"fmt"
	"math/rand"
)

// Fold is one split of a subject-independent k-fold cross-validation:
// disjoint subject sets for training, validation (early stopping) and
// testing. No subject appears in more than one role (paper §III-C).
type Fold struct {
	Train      []int
	Validation []int
	Test       []int
}

// KFoldSubjects partitions the subject ids into k folds. In each
// round one fold is the test set, nVal subjects drawn from the
// remaining folds form the validation set, and the rest train. The
// paper uses k = 5 and nVal = 4 over 61 subjects.
func KFoldSubjects(subjects []int, k, nVal int, rng *rand.Rand) ([]Fold, error) {
	if k < 2 {
		return nil, fmt.Errorf("dataset: k-fold needs k ≥ 2, got %d", k)
	}
	if len(subjects) < k {
		return nil, fmt.Errorf("dataset: %d subjects cannot fill %d folds", len(subjects), k)
	}
	if nVal < 0 {
		return nil, fmt.Errorf("dataset: negative validation count %d", nVal)
	}
	shuffled := make([]int, len(subjects))
	copy(shuffled, subjects)
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})

	// Distribute subjects round-robin into k groups.
	groups := make([][]int, k)
	for i, s := range shuffled {
		groups[i%k] = append(groups[i%k], s)
	}

	folds := make([]Fold, 0, k)
	for i := 0; i < k; i++ {
		var rest []int
		for j := 0; j < k; j++ {
			if j != i {
				rest = append(rest, groups[j]...)
			}
		}
		if nVal >= len(rest) {
			return nil, fmt.Errorf("dataset: validation size %d leaves no training subjects", nVal)
		}
		// Draw validation subjects deterministically from the head of
		// a reshuffle of the remainder.
		restCopy := make([]int, len(rest))
		copy(restCopy, rest)
		rng.Shuffle(len(restCopy), func(a, b int) {
			restCopy[a], restCopy[b] = restCopy[b], restCopy[a]
		})
		fold := Fold{
			Test:       append([]int(nil), groups[i]...),
			Validation: append([]int(nil), restCopy[:nVal]...),
			Train:      append([]int(nil), restCopy[nVal:]...),
		}
		folds = append(folds, fold)
	}
	return folds, nil
}

// Disjoint reports whether the fold's three subject sets are pairwise
// disjoint (the subject-independence guarantee).
func (f *Fold) Disjoint() bool {
	seen := map[int]int{}
	for _, s := range f.Train {
		seen[s]++
	}
	for _, s := range f.Validation {
		seen[s]++
	}
	for _, s := range f.Test {
		seen[s]++
	}
	for _, c := range seen {
		if c > 1 {
			return false
		}
	}
	return true
}

// SplitSegments partitions segments by the fold's subject sets.
// Segments from subjects in none of the sets are dropped.
func (f *Fold) SplitSegments(segs []Segment) (train, val, test []Segment) {
	role := map[int]int{}
	for _, s := range f.Train {
		role[s] = 1
	}
	for _, s := range f.Validation {
		role[s] = 2
	}
	for _, s := range f.Test {
		role[s] = 3
	}
	for i := range segs {
		switch role[segs[i].Subject] {
		case 1:
			train = append(train, segs[i])
		case 2:
			val = append(val, segs[i])
		case 3:
			test = append(test, segs[i])
		}
	}
	return train, val, test
}
