package quant

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// qtensor is a quantized activation: int8 data with a symmetric scale.
type qtensor struct {
	data  []int8
	shape []int
	scale float64
}

func (q *qtensor) len() int { return len(q.data) }

// reuseQ returns scratch when its buffer and rank already match the
// requested shape (rewriting dims and scale in place) and a fresh
// qtensor otherwise. Mirrors tensor.Reuse: ops own their returned
// activation, valid until the op's next forward call.
//
//fallvet:hotpath
func reuseQ(scratch *qtensor, scale float64, shape ...int) *qtensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if scratch == nil || len(scratch.data) != n || len(scratch.shape) != len(shape) {
		// Cold: only until the caller's shapes stabilise.
		//fallvet:ignore hotpath first-call warm-up allocation (alloc_test proves steady state)
		s := make([]int, len(shape))
		copy(s, shape)
		//fallvet:ignore hotpath first-call warm-up allocation (alloc_test proves steady state)
		return &qtensor{data: make([]int8, n), shape: s, scale: scale}
	}
	copy(scratch.shape, shape)
	scratch.scale = scale
	return scratch
}

// qop is one integer-inference operation. Ops hold reusable output
// scratch, so a QNetwork must not run from multiple goroutines.
type qop interface {
	name() string
	forward(x *qtensor) *qtensor
	flashBytes() int
}

// requant maps an int32 accumulator at scale (sIn·sW) to the output
// int8 scale.
//
//fallvet:hotpath
func requant(acc int32, m float64) int8 {
	q := math.RoundToEven(float64(acc) * m)
	if q > qmax {
		q = qmax
	}
	if q < -qmax-1 {
		q = -qmax - 1
	}
	return int8(q)
}

// qdense is an integer fully connected layer.
type qdense struct {
	in, out  int
	w        []int8  // [out × in]
	bias     []int32 // at scale sIn·sW
	m        float64 // sIn·sW / sOut
	outScale float64
	scratch  *qtensor
}

func newQDense(d *nn.Dense, sIn, sOut float64) *qdense {
	q := &qdense{
		in: d.In, out: d.Out,
		w:        make([]int8, d.Weight.W.Len()),
		bias:     make([]int32, d.Out),
		outScale: sOut,
	}
	sw := scaleFor(d.Weight.W.AbsMax())
	quantizeTo(q.w, d.Weight.W.Data(), sw)
	for i, b := range d.Bias.W.Data() {
		q.bias[i] = int32(math.RoundToEven(b / (sIn * sw)))
	}
	q.m = sIn * sw / sOut
	return q
}

func (q *qdense) name() string { return fmt.Sprintf("qdense(%d→%d)", q.in, q.out) }

func (q *qdense) flashBytes() int { return len(q.w) + 4*len(q.bias) + 4 /* multiplier */ }

//fallvet:hotpath
func (q *qdense) forward(x *qtensor) *qtensor {
	out := reuseQ(q.scratch, q.outScale, q.out)
	q.scratch = out
	matVecRequant(out.data, x.data, q.w, q.bias, q.out, q.in, q.m)
	return out
}

// qconv1d is an integer valid-padding 1-D convolution.
type qconv1d struct {
	inCh, filters, kernel int
	w                     []int8
	bias                  []int32
	m                     float64
	outScale              float64
	scratch               *qtensor
}

func newQConv1D(c *nn.Conv1D, sIn, sOut float64) *qconv1d {
	q := &qconv1d{
		inCh: c.InCh, filters: c.Filters, kernel: c.Kernel,
		w:        make([]int8, c.Weight.W.Len()),
		bias:     make([]int32, c.Filters),
		outScale: sOut,
	}
	sw := scaleFor(c.Weight.W.AbsMax())
	quantizeTo(q.w, c.Weight.W.Data(), sw)
	for i, b := range c.Bias.W.Data() {
		q.bias[i] = int32(math.RoundToEven(b / (sIn * sw)))
	}
	q.m = sIn * sw / sOut
	return q
}

func (q *qconv1d) name() string {
	return fmt.Sprintf("qconv1d(%dch,%df,k%d)", q.inCh, q.filters, q.kernel)
}

func (q *qconv1d) flashBytes() int { return len(q.w) + 4*len(q.bias) + 4 }

//fallvet:hotpath
func (q *qconv1d) forward(x *qtensor) *qtensor {
	T := x.shape[0]
	outT := T - q.kernel + 1
	out := reuseQ(q.scratch, q.outScale, outT, q.filters)
	q.scratch = out
	kc := q.kernel * q.inCh
	for t := 0; t < outT; t++ {
		window := x.data[t*q.inCh : t*q.inCh+kc]
		orow := out.data[t*q.filters : (t+1)*q.filters]
		matVecRequant(orow, window, q.w, q.bias, q.filters, kc, q.m)
	}
	return out
}

// qrelu clamps negatives (zero point is 0 under symmetric quantization).
type qrelu struct{ scratch *qtensor }

func (*qrelu) name() string    { return "qrelu" }
func (*qrelu) flashBytes() int { return 0 }

//fallvet:hotpath
func (q *qrelu) forward(x *qtensor) *qtensor {
	out := reuseQ(q.scratch, x.scale, x.shape...)
	q.scratch = out
	for i, v := range x.data {
		if v > 0 {
			out.data[i] = v
		} else {
			out.data[i] = 0
		}
	}
	return out
}

// qmaxpool pools the time axis.
type qmaxpool struct {
	pool    int
	scratch *qtensor
}

func (q *qmaxpool) name() string    { return fmt.Sprintf("qmaxpool(%d)", q.pool) }
func (q *qmaxpool) flashBytes() int { return 0 }

//fallvet:hotpath
func (q *qmaxpool) forward(x *qtensor) *qtensor {
	T, C := x.shape[0], x.shape[1]
	outT := (T + q.pool - 1) / q.pool
	out := reuseQ(q.scratch, x.scale, outT, C)
	q.scratch = out
	for ot := 0; ot < outT; ot++ {
		lo := ot * q.pool
		hi := min(lo+q.pool, T)
		for c := 0; c < C; c++ {
			best := x.data[lo*C+c]
			for t := lo + 1; t < hi; t++ {
				if v := x.data[t*C+c]; v > best {
					best = v
				}
			}
			out.data[ot*C+c] = best
		}
	}
	return out
}

// qflatten reshapes to 1-D. Its output is a cached header viewing the
// input's buffer — no copy.
type qflatten struct{ view *qtensor }

func (*qflatten) name() string    { return "qflatten" }
func (*qflatten) flashBytes() int { return 0 }

//fallvet:hotpath
func (q *qflatten) forward(x *qtensor) *qtensor {
	if q.view == nil {
		//fallvet:ignore hotpath one-time view-header initialisation (alloc_test proves steady state)
		q.view = &qtensor{shape: []int{0}}
	}
	q.view.data = x.data
	q.view.shape[0] = len(x.data)
	q.view.scale = x.scale
	return q.view
}

// qrescale requantizes to a different scale (used to unify branch
// output scales before concatenation).
type qrescale struct {
	m, outScale float64
	scratch     *qtensor
}

func (*qrescale) name() string    { return "qrescale" }
func (*qrescale) flashBytes() int { return 4 }

//fallvet:hotpath
func (q *qrescale) forward(x *qtensor) *qtensor {
	out := reuseQ(q.scratch, q.outScale, x.shape...)
	q.scratch = out
	for i, v := range x.data {
		out.data[i] = requant(int32(v), q.m)
	}
	return out
}

// qbranch mirrors nn.Branch: column split, per-branch op chains,
// requantization to a shared scale, concatenation.
type qbranch struct {
	cols     [][2]int
	stacks   [][]qop
	inCh     int
	outScale float64

	ins     []*qtensor // per-branch column-slice scratch
	parts   []*qtensor // per-branch stack outputs, gathered per call
	scratch *qtensor   // concatenated output
}

func (q *qbranch) name() string { return fmt.Sprintf("qbranch(×%d)", len(q.stacks)) }

func (q *qbranch) flashBytes() int {
	n := 0
	for _, st := range q.stacks {
		for _, op := range st {
			n += op.flashBytes()
		}
	}
	return n
}

//fallvet:hotpath
func (q *qbranch) forward(x *qtensor) *qtensor {
	T := x.shape[0]
	if q.ins == nil {
		//fallvet:ignore hotpath one-time scratch-table initialisation (alloc_test proves steady state)
		q.ins = make([]*qtensor, len(q.stacks))
		//fallvet:ignore hotpath one-time scratch-table initialisation (alloc_test proves steady state)
		q.parts = make([]*qtensor, len(q.stacks))
	}
	total := 0
	for bi, st := range q.stacks {
		lo, hi := q.cols[bi][0], q.cols[bi][1]
		w := hi - lo
		h := reuseQ(q.ins[bi], x.scale, T, w)
		q.ins[bi] = h
		for t := 0; t < T; t++ {
			copy(h.data[t*w:(t+1)*w], x.data[t*q.inCh+lo:t*q.inCh+hi])
		}
		for _, op := range st {
			h = op.forward(h)
		}
		q.parts[bi] = h
		total += len(h.data)
	}
	out := reuseQ(q.scratch, q.outScale, total)
	q.scratch = out
	off := 0
	for _, p := range q.parts {
		copy(out.data[off:], p.data)
		off += len(p.data)
	}
	return out
}
