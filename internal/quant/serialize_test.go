package quant

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
)

// savedImage builds a valid serialized CNN image for the chaos tests.
func savedImage(t testing.TB) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	m, err := model.New(model.KindCNN, model.Config{WindowSamples: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Calibrate(m.Net, randomWindows(4, 20, rng))
	if err != nil {
		t.Fatal(err)
	}
	qn, err := Build(m.Net, c, []int{20, 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := qn.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Chaos: every single truncation of a model image must be rejected
// with an error — never a panic, never a loaded network.
func TestLoadRejectsEveryTruncation(t *testing.T) {
	raw := savedImage(t)
	for n := 0; n < len(raw); n++ {
		if qn, err := Load(bytes.NewReader(raw[:n])); err == nil || qn != nil {
			t.Fatalf("truncation to %d/%d bytes loaded (err=%v)", n, len(raw), err)
		}
	}
}

// Chaos: a single bit flip anywhere in the image must be rejected —
// the SHA-256 trailer guarantees it for the payload, the structural
// checks for the envelope fields. The envelope header and the digest
// trailer are swept exhaustively; payload bytes are sampled with a
// prime stride to keep the suite fast (the digest makes every payload
// position equivalent).
func TestLoadRejectsAnyBitFlip(t *testing.T) {
	raw := savedImage(t)
	check := func(i int) {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), raw...)
			mut[i] ^= 1 << bit
			if qn, err := Load(bytes.NewReader(mut)); err == nil || qn != nil {
				t.Fatalf("bit flip at byte %d bit %d loaded (err=%v)", i, bit, err)
			}
		}
	}
	head := 128
	if head > len(raw) {
		head = len(raw)
	}
	for i := 0; i < head; i++ {
		check(i)
	}
	for i := len(raw) - 40; i < len(raw); i++ {
		if i >= head {
			check(i)
		}
	}
	for i := head; i < len(raw)-40; i += 101 {
		check(i)
	}
}

func TestLoadRejectsWrongKind(t *testing.T) {
	// An nn float-weight artifact must not load as a quantized image.
	rng := rand.New(rand.NewSource(3))
	m, err := model.New(model.KindMLP, model.Config{WindowSamples: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("float-weight artifact loaded as a quantized image")
	}
}

func TestValidateOpBounds(t *testing.T) {
	cases := []struct {
		name string
		op   savedOp
	}{
		{"dense zero in", savedOp{Kind: "dense", A: 0, B: 4}},
		{"dense negative out", savedOp{Kind: "dense", A: 4, B: -1}},
		{"dense oversized", savedOp{Kind: "dense", A: maxOpDim + 1, B: 1}},
		{"dense weight mismatch", savedOp{Kind: "dense", A: 4, B: 2, W: make([]int8, 7), Bias: make([]int32, 2)}},
		{"dense bias mismatch", savedOp{Kind: "dense", A: 4, B: 2, W: make([]int8, 8), Bias: make([]int32, 3)}},
		{"dense NaN multiplier", savedOp{Kind: "dense", A: 1, B: 1, W: make([]int8, 1), Bias: make([]int32, 1), M: math.NaN(), Scale: 1}},
		{"conv weight mismatch", savedOp{Kind: "conv1d", A: 3, B: 2, C: 5, W: make([]int8, 29), Bias: make([]int32, 2)}},
		{"conv Inf scale", savedOp{Kind: "conv1d", A: 1, B: 1, C: 1, W: make([]int8, 1), Bias: make([]int32, 1), M: 1, Scale: math.Inf(1)}},
		{"maxpool zero", savedOp{Kind: "maxpool", A: 0}},
		{"rescale NaN", savedOp{Kind: "rescale", M: math.NaN(), Scale: 1}},
		{"unknown kind", savedOp{Kind: "quantum"}},
		{"branch no stacks", savedOp{Kind: "branch", A: 9, Scale: 1}},
		{"branch cols mismatch", savedOp{Kind: "branch", A: 9, Scale: 1,
			Stacks: [][]savedOp{{{Kind: "relu"}}}, Cols: [][2]int{{0, 3}, {3, 6}}}},
		{"branch cols out of range", savedOp{Kind: "branch", A: 9, Scale: 1,
			Stacks: [][]savedOp{{{Kind: "relu"}}}, Cols: [][2]int{{3, 12}}}},
		{"branch cols inverted", savedOp{Kind: "branch", A: 9, Scale: 1,
			Stacks: [][]savedOp{{{Kind: "relu"}}}, Cols: [][2]int{{5, 5}}}},
	}
	for _, tc := range cases {
		op := tc.op
		if err := validateOp(&op, 0); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// A hostile dense op whose dimension product overflows int64 math
	// must be caught by the per-dimension bound, not allocate.
	huge := savedOp{Kind: "dense", A: 1 << 40, B: 1 << 40}
	if err := validateOp(&huge, 0); err == nil {
		t.Error("overflowing dense dims accepted")
	}
}

func TestValidateSavedQNetBounds(t *testing.T) {
	ok := savedQNet{InShape: []int{20, 9}, InScale: 0.1, Ops: []savedOp{{Kind: "relu"}}}
	if err := validateSavedQNet(&ok); err != nil {
		t.Fatalf("valid image rejected: %v", err)
	}
	bad := []savedQNet{
		{InShape: nil, InScale: 0.1, Ops: []savedOp{{Kind: "relu"}}},
		{InShape: []int{20, 0}, InScale: 0.1, Ops: []savedOp{{Kind: "relu"}}},
		{InShape: []int{20, 9}, InScale: math.NaN(), Ops: []savedOp{{Kind: "relu"}}},
		{InShape: []int{20, 9}, InScale: -0.5, Ops: []savedOp{{Kind: "relu"}}},
		{InShape: []int{20, 9}, InScale: 0.1, Ops: nil},
		{InShape: []int{20, 9}, InScale: 0.1, RAMBytes: -1, Ops: []savedOp{{Kind: "relu"}}},
		{InShape: []int{1 << 12, 1 << 12}, InScale: 0.1, Ops: []savedOp{{Kind: "relu"}}},
	}
	for i := range bad {
		if err := validateSavedQNet(&bad[i]); err == nil {
			t.Errorf("bad image %d accepted", i)
		}
	}
}

func TestBranchNestingDepthBounded(t *testing.T) {
	op := savedOp{Kind: "relu"}
	for i := 0; i < maxNesting+1; i++ {
		op = savedOp{Kind: "branch", A: 9, Scale: 1,
			Stacks: [][]savedOp{{op}}, Cols: [][2]int{{0, 3}}}
	}
	if err := validateOp(&op, 0); err == nil {
		t.Fatal("over-deep branch nesting accepted")
	}
}
