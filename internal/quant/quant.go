// Package quant implements post-training 8-bit quantization of the
// paper's CNN (§III-D) together with a pure integer inference engine
// of the kind that runs on the STM32F722: weights and activations are
// stored as int8 with per-tensor symmetric scales, accumulation is
// int32, and each layer requantizes its output with a single
// float-free-equivalent multiplier. Model size and RAM use are
// accounted exactly, feeding the on-edge analysis (§IV-C).
//
// Symmetric (zero-point-free) quantization is used for both weights
// and activations; this is the scheme CMSIS-NN favours on Cortex-M
// and keeps the integer kernels free of zero-point cross terms.
package quant

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// qmax is the symmetric int8 clip level.
const qmax = 127

// scaleFor returns the symmetric scale mapping absmax to the int8
// range; a zero absmax yields a harmless unit scale.
func scaleFor(absmax float64) float64 {
	if absmax <= 0 {
		return 1
	}
	return absmax / qmax
}

// quantizeTo maps a float slice at either scalar width to int8 at the
// given scale. Rounding always happens in float64 — float32 inputs are
// widened exactly first — so the float64 instantiation is bit-identical
// to the pre-generic code and the float32 one differs only by the
// input's own rounding, never by the quantizer's.
//
//fallvet:hotpath
func quantizeTo[S tensor.Scalar](dst []int8, src []S, scale float64) {
	for i, v := range src {
		q := math.RoundToEven(float64(v) / scale)
		if q > qmax {
			q = qmax
		}
		if q < -qmax-1 {
			q = -qmax - 1
		}
		dst[i] = int8(q)
	}
}

// DequantizeInto expands int8 values back to scalar width S at the
// given scale, growing dst as needed and returning it. The product is
// computed in float64 and rounded once to S, so both widths see the
// nearest representable value of the same real quantity.
func DequantizeInto[S tensor.Scalar](dst []S, src []int8, scale float64) []S {
	if cap(dst) < len(src) {
		dst = make([]S, len(src))
	}
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = S(float64(v) * scale)
	}
	return dst
}

// Calibration holds the ordered per-activation absolute maxima
// recorded by running the float network over representative data. The
// order is the deterministic activation walk used by both Calibrate
// and Build.
type Calibration struct {
	absmax []float64
}

// observer appends/updates range statistics in walk order.
type observer struct {
	cal *Calibration
	i   int
}

func (o *observer) record(x *tensor.Tensor) {
	if o.i == len(o.cal.absmax) {
		o.cal.absmax = append(o.cal.absmax, 0)
	}
	if m := x.AbsMax(); m > o.cal.absmax[o.i] {
		o.cal.absmax[o.i] = m
	}
	o.i++
}

// reader replays recorded ranges in the same order.
type reader struct {
	cal *Calibration
	i   int
}

func (r *reader) next() float64 {
	if r.i >= len(r.cal.absmax) {
		panic("quant: calibration walk order mismatch")
	}
	v := r.cal.absmax[r.i]
	r.i++
	return v
}

// walk runs one sample through the float layers, recording every
// activation (input first, then each layer/stack output) in the
// deterministic order Build replays.
func walk(layers []nn.Layer, x *tensor.Tensor, o *observer) (*tensor.Tensor, error) {
	o.record(x)
	for _, l := range layers {
		switch ll := l.(type) {
		case *nn.Branch:
			parts := make([]*tensor.Tensor, len(ll.Stacks))
			for bi, stack := range ll.Stacks {
				h := sliceCols(x, ll.Cols[bi][0], ll.Cols[bi][1])
				for _, sl := range stack {
					h = sl.Forward(h, false)
					o.record(h)
				}
				parts[bi] = h.Reshape(h.Len())
			}
			x = tensor.Concat1D(parts...)
			o.record(x)
		case *nn.Dense, *nn.Conv1D, *nn.ReLU, *nn.MaxPool1D, *nn.Flatten, *nn.Sigmoid:
			x = l.Forward(x, false)
			o.record(x)
		default:
			return nil, fmt.Errorf("quant: unsupported layer %s", l.Name())
		}
	}
	return x, nil
}

func sliceCols(x *tensor.Tensor, lo, hi int) *tensor.Tensor {
	T, C := x.Dim(0), x.Dim(1)
	out := tensor.New(T, hi-lo)
	xd, od := x.Data(), out.Data()
	w := hi - lo
	for t := 0; t < T; t++ {
		copy(od[t*w:(t+1)*w], xd[t*C+lo:t*C+hi])
	}
	return out
}

// Calibrate runs the calibration set through the float network,
// collecting activation ranges.
func Calibrate(net *nn.Network, samples []*tensor.Tensor) (*Calibration, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("quant: empty calibration set")
	}
	cal := &Calibration{}
	for _, s := range samples {
		o := &observer{cal: cal}
		if _, err := walk(net.Layers, s, o); err != nil {
			return nil, err
		}
	}
	return cal, nil
}
