package quant

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// QNetwork is a fully quantized network: int8 tensors end to end,
// with one float dequantization before the closing sigmoid (on the
// MCU that last step is a 256-entry lookup table).
//
// A QNetwork is not safe for concurrent use: every op reuses its own
// activation scratch between calls, exactly like the target firmware's
// static activation arena. Give each goroutine its own instance.
type QNetwork struct {
	ops        []qop
	inShape    []int
	inScale    float64
	hasSigmoid bool
	ramBytes   int
	in         *qtensor // input-quantization scratch
}

// Build quantizes a trained float network using calibration ranges.
// Supported layers: Dense, Conv1D, ReLU, MaxPool1D, Flatten, Branch
// and a trailing Sigmoid — the deployable model families (the CNN and
// MLP; the recurrent baselines are not deployed in the paper either).
func Build(net *nn.Network, cal *Calibration, inShape []int) (*QNetwork, error) {
	r := &reader{cal: cal}
	q := &QNetwork{inShape: append([]int(nil), inShape...)}
	q.inScale = scaleFor(r.next())
	cur := q.inScale

	for li, l := range net.Layers {
		switch ll := l.(type) {
		case *nn.Dense:
			sOut := scaleFor(r.next())
			q.ops = append(q.ops, newQDense(ll, cur, sOut))
			cur = sOut
		case *nn.Conv1D:
			sOut := scaleFor(r.next())
			q.ops = append(q.ops, newQConv1D(ll, cur, sOut))
			cur = sOut
		case *nn.ReLU:
			r.next() // range recorded but scale is preserved
			q.ops = append(q.ops, &qrelu{})
		case *nn.MaxPool1D:
			r.next()
			q.ops = append(q.ops, &qmaxpool{pool: ll.Pool})
		case *nn.Flatten:
			r.next()
			q.ops = append(q.ops, &qflatten{})
		case *nn.Sigmoid:
			r.next()
			if li != len(net.Layers)-1 {
				return nil, fmt.Errorf("quant: sigmoid only supported as the final layer")
			}
			q.hasSigmoid = true
		case *nn.Branch:
			qb := &qbranch{cols: ll.Cols, inCh: inShape[1]}
			branchScales := make([]float64, len(ll.Stacks))
			for bi, stack := range ll.Stacks {
				bCur := cur
				var ops []qop
				for _, sl := range stack {
					switch sll := sl.(type) {
					case *nn.Conv1D:
						sOut := scaleFor(r.next())
						ops = append(ops, newQConv1D(sll, bCur, sOut))
						bCur = sOut
					case *nn.Dense:
						sOut := scaleFor(r.next())
						ops = append(ops, newQDense(sll, bCur, sOut))
						bCur = sOut
					case *nn.ReLU:
						r.next()
						ops = append(ops, &qrelu{})
					case *nn.MaxPool1D:
						r.next()
						ops = append(ops, &qmaxpool{pool: sll.Pool})
					case *nn.Flatten:
						r.next()
						ops = append(ops, &qflatten{})
					default:
						return nil, fmt.Errorf("quant: unsupported branch layer %s", sl.Name())
					}
				}
				qb.stacks = append(qb.stacks, ops)
				branchScales[bi] = bCur
			}
			sCat := scaleFor(r.next())
			// Requantize each branch to the shared concat scale.
			for bi := range qb.stacks {
				qb.stacks[bi] = append(qb.stacks[bi],
					&qrescale{m: branchScales[bi] / sCat, outScale: sCat})
			}
			qb.outScale = sCat
			q.ops = append(q.ops, qb)
			cur = sCat
		default:
			return nil, fmt.Errorf("quant: unsupported layer %s", l.Name())
		}
	}

	// Dry run to size the activation RAM: the largest concurrent
	// (input, output) activation pair, in bytes (int8 each).
	x := &qtensor{data: make([]int8, prod(inShape)), shape: q.inShape, scale: q.inScale}
	for _, op := range q.ops {
		y := op.forward(x)
		if n := x.len() + y.len(); n > q.ramBytes {
			q.ramBytes = n
		}
		x = y
	}
	return q, nil
}

func prod(s []int) int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Predict quantizes the input window, runs integer inference and
// returns the fall probability. Steady-state calls are allocation-free:
// the input quantization and every op reuse their scratch buffers.
//
//fallvet:hotpath
func (q *QNetwork) Predict(x *tensor.Tensor) float64 {
	return PredictOf(q, x)
}

// PredictOf is Predict over a window at either scalar width: the input
// quantizer reads S directly (no widen pass, no scratch), and from the
// first int8 activation on the integer pipeline is width-free, so both
// instantiations run the very same integer arithmetic. Methods cannot
// be generic, hence the package-level spelling.
//
//fallvet:hotpath
func PredictOf[S tensor.Scalar](q *QNetwork, x *tensor.Of[S]) float64 {
	in := reuseQ(q.in, q.inScale, x.Shape()...)
	q.in = in
	quantizeTo(in.data, x.Data(), q.inScale)
	cur := in
	for _, op := range q.ops {
		cur = op.forward(cur)
	}
	out := float64(cur.data[0]) * cur.scale
	if q.hasSigmoid {
		out = 1 / (1 + math.Exp(-out))
	}
	return out
}

// FlashBytes returns the model's storage footprint: int8 weights,
// int32 biases and the per-op requantization multipliers, plus the
// input scale.
func (q *QNetwork) FlashBytes() int {
	n := 4
	for _, op := range q.ops {
		n += op.flashBytes()
	}
	return n
}

// RAMBytes returns the peak activation memory (input + output of the
// widest op) in bytes.
func (q *QNetwork) RAMBytes() int { return q.ramBytes }

// OpNames lists the quantized pipeline for reporting.
func (q *QNetwork) OpNames() []string {
	var names []string
	for _, op := range q.ops {
		names = append(names, op.name())
	}
	return names
}
