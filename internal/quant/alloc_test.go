package quant

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

// TestQuantizedPredictAllocationFree asserts the deployment contract:
// after the first call warms the per-op scratch (the analogue of the
// firmware's static activation arena), QNetwork.Predict never touches
// the allocator — for the full branch CNN as well as the MLP.
func TestQuantizedPredictAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		kind model.Kind
		T    int
	}{
		{model.KindCNN, 40},
		{model.KindMLP, 20},
	} {
		m, err := model.New(tc.kind, model.Config{WindowSamples: tc.T}, rng)
		if err != nil {
			t.Fatal(err)
		}
		cal := randomWindows(30, tc.T, rng)
		c, err := Calibrate(m.Net, cal)
		if err != nil {
			t.Fatal(err)
		}
		qn, err := Build(m.Net, c, []int{tc.T, 9})
		if err != nil {
			t.Fatal(err)
		}
		x := cal[0]
		qn.Predict(x) // warm up scratch
		if allocs := testing.AllocsPerRun(200, func() { qn.Predict(x) }); allocs != 0 {
			t.Errorf("%v: QNetwork.Predict allocates %.1f objects/op at steady state, want 0", tc.kind, allocs)
		}
	}
}
