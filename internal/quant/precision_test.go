package quant

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/tensor"
)

// PredictOf at float64 must be the method bit for bit, and at float32
// it must agree to within the int8 grid: a single-precision input can
// shift a sample by at most one quantization code, never more.
func TestPredictOfWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, err := model.New(model.KindMLP, model.Config{WindowSamples: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Calibrate(m.Net, randomWindows(50, 20, rng))
	if err != nil {
		t.Fatal(err)
	}
	qn, err := Build(m.Net, c, []int{20, 9})
	if err != nil {
		t.Fatal(err)
	}
	x32 := tensor.NewOf[float32](20, 9)
	maxGap := 0.0
	for _, x := range randomWindows(100, 20, rng) {
		p := qn.Predict(x)
		if got := PredictOf(qn, x); got != p {
			t.Fatalf("PredictOf[float64] %v != Predict %v", got, p)
		}
		tensor.Lower(x32, x)
		if d := math.Abs(PredictOf(qn, x32) - p); d > maxGap {
			maxGap = d
		}
	}
	if maxGap > 0.05 {
		t.Fatalf("f32 vs f64 quantized probability gap %.4f too large", maxGap)
	}
}

func TestDequantizeInto(t *testing.T) {
	src := []int8{-128, -1, 0, 1, 127}
	f64 := DequantizeInto[float64](nil, src, 0.5)
	f32 := DequantizeInto[float32](nil, src, 0.5)
	for i, v := range src {
		want := float64(v) * 0.5
		if f64[i] != want {
			t.Fatalf("f64[%d] = %v, want %v", i, f64[i], want)
		}
		if f32[i] != float32(want) {
			t.Fatalf("f32[%d] = %v, want %v", i, f32[i], float32(want))
		}
	}
	// Reuse path: a big-enough dst is kept, not reallocated.
	buf := make([]float64, 8)
	out := DequantizeInto(buf, src, 2)
	if &out[0] != &buf[0] || len(out) != len(src) {
		t.Fatal("DequantizeInto did not reuse dst")
	}
}
