package quant

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"repro/internal/artifact"
)

// Wire format: a flat op list with a type tag per op — the repository
// equivalent of shipping a .tflite flatbuffer to the device. On disk
// the gob payload rides inside the verified envelope of package
// artifact: magic, format version, model kind, input shape and a
// SHA-256 digest over the whole image. The digest is verified before
// the payload reaches the gob decoder, and every op is bounds-checked
// before the network is assembled, so a truncated, bit-flipped or
// hostile image fails loudly — it can never load into a detector that
// silently misfires.

// ArtifactKind tags quantized model images in the artifact envelope.
const ArtifactKind = "qnet-int8"

// Validation bounds for a decoded image. The paper's CNN is ~67 KiB
// with layers of at most a few thousand units; these caps leave two
// orders of magnitude of headroom while keeping a corrupt size field
// from driving a huge allocation or an integer-overflowing product.
const (
	maxOpDim    = 1 << 20 // any single op dimension (in, out, channels, kernel, pool)
	maxOps      = 4096    // ops per network, branches included
	maxBranch   = 64      // stacks per branch
	maxNesting  = 4       // branch-in-branch depth
	maxRAMBytes = 1 << 30 // declared activation RAM
)

type savedOp struct {
	Kind string
	// Dimensions, reused per kind.
	A, B, C int
	// Data payloads.
	W     []int8
	Bias  []int32
	M     float64
	Scale float64
	// Branch nesting.
	Cols   [][2]int
	Stacks [][]savedOp
}

type savedQNet struct {
	InShape    []int
	InScale    float64
	HasSigmoid bool
	RAMBytes   int
	Ops        []savedOp
}

func saveOp(op qop) (savedOp, error) {
	switch o := op.(type) {
	case *qdense:
		return savedOp{Kind: "dense", A: o.in, B: o.out, W: o.w, Bias: o.bias, M: o.m, Scale: o.outScale}, nil
	case *qconv1d:
		return savedOp{Kind: "conv1d", A: o.inCh, B: o.filters, C: o.kernel, W: o.w, Bias: o.bias, M: o.m, Scale: o.outScale}, nil
	case *qrelu:
		return savedOp{Kind: "relu"}, nil
	case *qmaxpool:
		return savedOp{Kind: "maxpool", A: o.pool}, nil
	case *qflatten:
		return savedOp{Kind: "flatten"}, nil
	case *qrescale:
		return savedOp{Kind: "rescale", M: o.m, Scale: o.outScale}, nil
	case *qbranch:
		s := savedOp{Kind: "branch", A: o.inCh, Scale: o.outScale, Cols: o.cols}
		for _, stack := range o.stacks {
			var ss []savedOp
			for _, sub := range stack {
				so, err := saveOp(sub)
				if err != nil {
					return savedOp{}, err
				}
				ss = append(ss, so)
			}
			s.Stacks = append(s.Stacks, ss)
		}
		return s, nil
	default:
		return savedOp{}, fmt.Errorf("quant: cannot serialise op %s", op.name())
	}
}

// finite rejects NaN and ±Inf requantization factors — a corrupt
// multiplier would silently wash out every activation downstream.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// checkDim bounds one op dimension.
func checkDim(what string, v int) error {
	if v <= 0 || v > maxOpDim {
		return fmt.Errorf("quant: %s %d outside (0, %d]", what, v, maxOpDim)
	}
	return nil
}

// validateOp bounds-checks one decoded op — every dimension, every
// payload length against the product of its dimensions (computed in
// int64 so a hostile pair cannot overflow int), and every scale factor
// — before any op struct is built. depth tracks branch nesting.
func validateOp(s *savedOp, depth int) error {
	switch s.Kind {
	case "dense":
		if err := checkDim("dense in", s.A); err != nil {
			return err
		}
		if err := checkDim("dense out", s.B); err != nil {
			return err
		}
		if want := int64(s.A) * int64(s.B); int64(len(s.W)) != want {
			return fmt.Errorf("quant: dense %d→%d wants %d weights, image has %d", s.A, s.B, want, len(s.W))
		}
		if len(s.Bias) != s.B {
			return fmt.Errorf("quant: dense %d→%d wants %d biases, image has %d", s.A, s.B, s.B, len(s.Bias))
		}
		if !finite(s.M) || !finite(s.Scale) {
			return fmt.Errorf("quant: dense has non-finite multiplier/scale")
		}
	case "conv1d":
		if err := checkDim("conv1d channels", s.A); err != nil {
			return err
		}
		if err := checkDim("conv1d filters", s.B); err != nil {
			return err
		}
		if err := checkDim("conv1d kernel", s.C); err != nil {
			return err
		}
		if want := int64(s.B) * int64(s.C) * int64(s.A); int64(len(s.W)) != want {
			return fmt.Errorf("quant: conv1d(%dch,%df,k%d) wants %d weights, image has %d",
				s.A, s.B, s.C, want, len(s.W))
		}
		if len(s.Bias) != s.B {
			return fmt.Errorf("quant: conv1d wants %d biases, image has %d", s.B, len(s.Bias))
		}
		if !finite(s.M) || !finite(s.Scale) {
			return fmt.Errorf("quant: conv1d has non-finite multiplier/scale")
		}
	case "relu", "flatten":
		// No payload.
	case "maxpool":
		if err := checkDim("maxpool window", s.A); err != nil {
			return err
		}
	case "rescale":
		if !finite(s.M) || !finite(s.Scale) {
			return fmt.Errorf("quant: rescale has non-finite multiplier/scale")
		}
	case "branch":
		if depth >= maxNesting {
			return fmt.Errorf("quant: branch nesting deeper than %d", maxNesting)
		}
		if err := checkDim("branch channels", s.A); err != nil {
			return err
		}
		if !finite(s.Scale) {
			return fmt.Errorf("quant: branch has non-finite output scale")
		}
		if len(s.Stacks) == 0 || len(s.Stacks) > maxBranch {
			return fmt.Errorf("quant: branch has %d stacks (want 1..%d)", len(s.Stacks), maxBranch)
		}
		if len(s.Cols) != len(s.Stacks) {
			return fmt.Errorf("quant: branch has %d column ranges for %d stacks", len(s.Cols), len(s.Stacks))
		}
		for i, c := range s.Cols {
			lo, hi := c[0], c[1]
			if lo < 0 || hi <= lo || hi > s.A {
				return fmt.Errorf("quant: branch column range %d [%d,%d) outside [0,%d)", i, lo, hi, s.A)
			}
		}
		for _, ss := range s.Stacks {
			if len(ss) > maxOps {
				return fmt.Errorf("quant: branch stack of %d ops exceeds %d", len(ss), maxOps)
			}
			for i := range ss {
				if err := validateOp(&ss[i], depth+1); err != nil {
					return err
				}
			}
		}
	default:
		return fmt.Errorf("quant: unknown op kind %q", s.Kind)
	}
	return nil
}

// validateSavedQNet checks the whole decoded image before assembly.
func validateSavedQNet(s *savedQNet) error {
	if len(s.InShape) == 0 || len(s.InShape) > 4 {
		return fmt.Errorf("quant: input rank %d outside [1,4]", len(s.InShape))
	}
	n := int64(1)
	for _, d := range s.InShape {
		if d <= 0 || d > maxOpDim {
			return fmt.Errorf("quant: input dimension %d outside (0, %d]", d, maxOpDim)
		}
		n *= int64(d)
		if n > maxOpDim {
			return fmt.Errorf("quant: input of %d elements too large", n)
		}
	}
	if !finite(s.InScale) || s.InScale <= 0 {
		return fmt.Errorf("quant: input scale %g invalid", s.InScale)
	}
	if s.RAMBytes < 0 || s.RAMBytes > maxRAMBytes {
		return fmt.Errorf("quant: declared RAM %d outside [0, %d]", s.RAMBytes, maxRAMBytes)
	}
	if len(s.Ops) == 0 || len(s.Ops) > maxOps {
		return fmt.Errorf("quant: image has %d ops (want 1..%d)", len(s.Ops), maxOps)
	}
	for i := range s.Ops {
		if err := validateOp(&s.Ops[i], 0); err != nil {
			return err
		}
	}
	return nil
}

func loadOp(s savedOp) (qop, error) {
	switch s.Kind {
	case "dense":
		return &qdense{in: s.A, out: s.B, w: s.W, bias: s.Bias, m: s.M, outScale: s.Scale}, nil
	case "conv1d":
		return &qconv1d{inCh: s.A, filters: s.B, kernel: s.C, w: s.W, bias: s.Bias, m: s.M, outScale: s.Scale}, nil
	case "relu":
		return &qrelu{}, nil
	case "maxpool":
		return &qmaxpool{pool: s.A}, nil
	case "flatten":
		return &qflatten{}, nil
	case "rescale":
		return &qrescale{m: s.M, outScale: s.Scale}, nil
	case "branch":
		b := &qbranch{inCh: s.A, outScale: s.Scale, cols: s.Cols}
		for _, ss := range s.Stacks {
			var stack []qop
			for _, so := range ss {
				op, err := loadOp(so)
				if err != nil {
					return nil, err
				}
				stack = append(stack, op)
			}
			b.stacks = append(b.stacks, stack)
		}
		return b, nil
	default:
		return nil, fmt.Errorf("quant: unknown op kind %q", s.Kind)
	}
}

// Save serialises the quantized network — the deployable model image —
// in the verified artifact envelope (magic, version, kind, input
// shape, SHA-256 digest).
func (q *QNetwork) Save(w io.Writer) error {
	s := savedQNet{
		InShape:    q.inShape,
		InScale:    q.inScale,
		HasSigmoid: q.hasSigmoid,
		RAMBytes:   q.ramBytes,
	}
	for _, op := range q.ops {
		so, err := saveOp(op)
		if err != nil {
			return err
		}
		s.Ops = append(s.Ops, so)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&s); err != nil {
		return fmt.Errorf("quant: encoding model: %w", err)
	}
	return artifact.Write(w, ArtifactKind, q.inShape, payload.Bytes())
}

// Load reads a quantized network saved by Save. The envelope's digest,
// version and kind are verified before the payload is decoded, and
// every op's shapes and payload sizes are bounds-checked before the
// network is assembled — a corrupt image yields a diagnosable error,
// never a panic, an over-allocation or a silently-wrong network.
func Load(r io.Reader) (*QNetwork, error) {
	h, payload, err := artifact.Read(r)
	if err != nil {
		return nil, fmt.Errorf("quant: %w", err)
	}
	if err := artifact.CheckKind(h, ArtifactKind); err != nil {
		return nil, fmt.Errorf("quant: %w", err)
	}
	var s savedQNet
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&s); err != nil {
		return nil, fmt.Errorf("quant: decoding model: %w", err)
	}
	if err := validateSavedQNet(&s); err != nil {
		return nil, err
	}
	if !shapeEqual(h.Shape, s.InShape) {
		return nil, fmt.Errorf("quant: envelope shape %v disagrees with payload shape %v", h.Shape, s.InShape)
	}
	q := &QNetwork{
		inShape:    s.InShape,
		inScale:    s.InScale,
		hasSigmoid: s.HasSigmoid,
		ramBytes:   s.RAMBytes,
	}
	for _, so := range s.Ops {
		op, err := loadOp(so)
		if err != nil {
			return nil, err
		}
		q.ops = append(q.ops, op)
	}
	return q, nil
}

func shapeEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
