package quant

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Wire format: a flat op list with a type tag per op — the repository
// equivalent of shipping a .tflite flatbuffer to the device.

type savedOp struct {
	Kind string
	// Dimensions, reused per kind.
	A, B, C int
	// Data payloads.
	W     []int8
	Bias  []int32
	M     float64
	Scale float64
	// Branch nesting.
	Cols   [][2]int
	Stacks [][]savedOp
}

type savedQNet struct {
	InShape    []int
	InScale    float64
	HasSigmoid bool
	RAMBytes   int
	Ops        []savedOp
}

func saveOp(op qop) (savedOp, error) {
	switch o := op.(type) {
	case *qdense:
		return savedOp{Kind: "dense", A: o.in, B: o.out, W: o.w, Bias: o.bias, M: o.m, Scale: o.outScale}, nil
	case *qconv1d:
		return savedOp{Kind: "conv1d", A: o.inCh, B: o.filters, C: o.kernel, W: o.w, Bias: o.bias, M: o.m, Scale: o.outScale}, nil
	case qrelu:
		return savedOp{Kind: "relu"}, nil
	case qmaxpool:
		return savedOp{Kind: "maxpool", A: o.pool}, nil
	case qflatten:
		return savedOp{Kind: "flatten"}, nil
	case qrescale:
		return savedOp{Kind: "rescale", M: o.m, Scale: o.outScale}, nil
	case *qbranch:
		s := savedOp{Kind: "branch", A: o.inCh, Scale: o.outScale, Cols: o.cols}
		for _, stack := range o.stacks {
			var ss []savedOp
			for _, sub := range stack {
				so, err := saveOp(sub)
				if err != nil {
					return savedOp{}, err
				}
				ss = append(ss, so)
			}
			s.Stacks = append(s.Stacks, ss)
		}
		return s, nil
	default:
		return savedOp{}, fmt.Errorf("quant: cannot serialise op %s", op.name())
	}
}

func loadOp(s savedOp) (qop, error) {
	switch s.Kind {
	case "dense":
		return &qdense{in: s.A, out: s.B, w: s.W, bias: s.Bias, m: s.M, outScale: s.Scale}, nil
	case "conv1d":
		return &qconv1d{inCh: s.A, filters: s.B, kernel: s.C, w: s.W, bias: s.Bias, m: s.M, outScale: s.Scale}, nil
	case "relu":
		return qrelu{}, nil
	case "maxpool":
		return qmaxpool{pool: s.A}, nil
	case "flatten":
		return qflatten{}, nil
	case "rescale":
		return qrescale{m: s.M, outScale: s.Scale}, nil
	case "branch":
		b := &qbranch{inCh: s.A, outScale: s.Scale, cols: s.Cols}
		for _, ss := range s.Stacks {
			var stack []qop
			for _, so := range ss {
				op, err := loadOp(so)
				if err != nil {
					return nil, err
				}
				stack = append(stack, op)
			}
			b.stacks = append(b.stacks, stack)
		}
		return b, nil
	default:
		return nil, fmt.Errorf("quant: unknown op kind %q", s.Kind)
	}
}

// Save serialises the quantized network — the deployable model image.
func (q *QNetwork) Save(w io.Writer) error {
	s := savedQNet{
		InShape:    q.inShape,
		InScale:    q.inScale,
		HasSigmoid: q.hasSigmoid,
		RAMBytes:   q.ramBytes,
	}
	for _, op := range q.ops {
		so, err := saveOp(op)
		if err != nil {
			return err
		}
		s.Ops = append(s.Ops, so)
	}
	return gob.NewEncoder(w).Encode(&s)
}

// Load reads a quantized network saved by Save.
func Load(r io.Reader) (*QNetwork, error) {
	var s savedQNet
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("quant: decoding model: %w", err)
	}
	q := &QNetwork{
		inShape:    s.InShape,
		inScale:    s.InScale,
		hasSigmoid: s.HasSigmoid,
		ramBytes:   s.RAMBytes,
	}
	for _, so := range s.Ops {
		op, err := loadOp(so)
		if err != nil {
			return nil, err
		}
		q.ops = append(q.ops, op)
	}
	return q, nil
}
