package quant

// matVecRequant is the int8 twin of nn's matVecBias: four int32
// accumulators advance together over one streamed read of x, breaking
// the add-latency chain that serialises the one-accumulator form, then
// each lane is requantized to the output scale. Integer adds are
// exact, so blocking cannot change results — the order is kept
// identical to the scalar loop anyway so the two forms are literally
// the same computation per output.
//
//fallvet:hotpath
func matVecRequant(dst []int8, x, w []int8, bias []int32, rows, cols int, m float64) {
	xv := x[:cols]
	o := 0
	for ; o+4 <= rows; o += 4 {
		r0 := w[(o+0)*cols : (o+1)*cols]
		r1 := w[(o+1)*cols : (o+2)*cols]
		r2 := w[(o+2)*cols : (o+3)*cols]
		r3 := w[(o+3)*cols : (o+4)*cols]
		a0, a1, a2, a3 := bias[o], bias[o+1], bias[o+2], bias[o+3]
		for i, v := range xv {
			xi := int32(v)
			a0 += int32(r0[i]) * xi
			a1 += int32(r1[i]) * xi
			a2 += int32(r2[i]) * xi
			a3 += int32(r3[i]) * xi
		}
		dst[o] = requant(a0, m)
		dst[o+1] = requant(a1, m)
		dst[o+2] = requant(a2, m)
		dst[o+3] = requant(a3, m)
	}
	for ; o < rows; o++ {
		row := w[o*cols : (o+1)*cols]
		acc := bias[o]
		for i, v := range xv {
			acc += int32(row[i]) * int32(v)
		}
		dst[o] = requant(acc, m)
	}
}
