package quant

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func randomWindows(n, T int, rng *rand.Rand) []*tensor.Tensor {
	out := make([]*tensor.Tensor, n)
	for i := range out {
		x := tensor.New(T, 9)
		for j := range x.Data() {
			x.Data()[j] = rng.NormFloat64()
		}
		out[i] = x
	}
	return out
}

func TestQuantizeHelpers(t *testing.T) {
	if scaleFor(0) != 1 {
		t.Fatal("zero absmax scale")
	}
	if s := scaleFor(127); math.Abs(s-1) > 1e-12 {
		t.Fatalf("scaleFor(127) = %g", s)
	}
	dst := make([]int8, 3)
	quantizeTo(dst, []float64{127, -128, 200}, 1)
	if dst[0] != 127 || dst[1] != -128 || dst[2] != 127 {
		t.Fatalf("quantizeTo clamping: %v", dst)
	}
}

func TestCalibrateEmptySet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, _ := model.New(model.KindMLP, model.Config{WindowSamples: 20}, rng)
	if _, err := Calibrate(m.Net, nil); err == nil {
		t.Fatal("empty calibration set accepted")
	}
}

func TestQuantizedMLPMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := model.New(model.KindMLP, model.Config{WindowSamples: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cal := randomWindows(50, 20, rng)
	c, err := Calibrate(m.Net, cal)
	if err != nil {
		t.Fatal(err)
	}
	qn, err := Build(m.Net, c, []int{20, 9})
	if err != nil {
		t.Fatal(err)
	}
	test := randomWindows(200, 20, rng)
	maxErr := 0.0
	for _, x := range test {
		d := math.Abs(m.Net.Predict(x) - qn.Predict(x))
		if d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 0.08 {
		t.Fatalf("max |float − int8| probability gap %.4f too large", maxErr)
	}
}

func TestQuantizedCNNMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := model.New(model.KindCNN, model.Config{WindowSamples: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cal := randomWindows(50, 40, rng)
	c, err := Calibrate(m.Net, cal)
	if err != nil {
		t.Fatal(err)
	}
	qn, err := Build(m.Net, c, []int{40, 9})
	if err != nil {
		t.Fatal(err)
	}
	test := randomWindows(200, 40, rng)
	agree := 0
	maxErr := 0.0
	for _, x := range test {
		pf, pq := m.Net.Predict(x), qn.Predict(x)
		if (pf >= 0.5) == (pq >= 0.5) {
			agree++
		}
		if d := math.Abs(pf - pq); d > maxErr {
			maxErr = d
		}
	}
	if agree < 190 {
		t.Fatalf("only %d/200 threshold agreements (maxErr %.4f)", agree, maxErr)
	}
	if maxErr > 0.15 {
		t.Fatalf("max probability gap %.4f", maxErr)
	}
}

func TestQuantizedCNNFootprint(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, _ := model.New(model.KindCNN, model.Config{WindowSamples: 40}, rng)
	c, err := Calibrate(m.Net, randomWindows(10, 40, rng))
	if err != nil {
		t.Fatal(err)
	}
	qn, err := Build(m.Net, c, []int{40, 9})
	if err != nil {
		t.Fatal(err)
	}
	flash := qn.FlashBytes()
	// The int8 model must be close to the parameter count in bytes
	// (weights 1 B each + biases 4 B) and fit the STM32F722's 256 KiB.
	params := m.Net.ParamCount()
	if flash < params || flash > params+8192 {
		t.Fatalf("flash %d B vs %d params", flash, params)
	}
	if flash > 256*1024 {
		t.Fatalf("model does not fit flash: %d B", flash)
	}
	if qn.RAMBytes() <= 0 || qn.RAMBytes() > 256*1024 {
		t.Fatalf("RAM %d B", qn.RAMBytes())
	}
	// Quantization must shrink the model ~8× versus float64 storage
	// (and ~4× versus float32).
	if flash*4 > params*8 {
		t.Fatalf("flash %d not ≈ 1 byte/param", flash)
	}
	if len(qn.OpNames()) == 0 {
		t.Fatal("no ops")
	}
}

func TestBuildRejectsRecurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, _ := model.New(model.KindLSTM, model.Config{WindowSamples: 20}, rng)
	if _, err := Calibrate(m.Net, randomWindows(2, 20, rng)); err == nil {
		t.Fatal("LSTM calibration should be unsupported")
	}
}

func TestQuantizedDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, _ := model.New(model.KindCNN, model.Config{WindowSamples: 20}, rng)
	c, _ := Calibrate(m.Net, randomWindows(5, 20, rng))
	qn, err := Build(m.Net, c, []int{20, 9})
	if err != nil {
		t.Fatal(err)
	}
	x := randomWindows(1, 20, rng)[0]
	if qn.Predict(x) != qn.Predict(x) {
		t.Fatal("non-deterministic quantized inference")
	}
}

func TestRequantClamps(t *testing.T) {
	if requant(1<<20, 1) != 127 {
		t.Fatal("overflow not clamped")
	}
	if requant(-(1<<20), 1) != -128 {
		t.Fatal("underflow not clamped")
	}
	if requant(100, 0.5) != 50 {
		t.Fatal("requant arithmetic")
	}
}

func TestQNetworkSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, _ := model.New(model.KindCNN, model.Config{WindowSamples: 20}, rng)
	c, err := Calibrate(m.Net, randomWindows(5, 20, rng))
	if err != nil {
		t.Fatal(err)
	}
	qn, err := Build(m.Net, c, []int{20, 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := qn.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.FlashBytes() != qn.FlashBytes() || loaded.RAMBytes() != qn.RAMBytes() {
		t.Fatal("footprint changed through serialization")
	}
	for i := 0; i < 20; i++ {
		x := randomWindows(1, 20, rng)[0]
		if qn.Predict(x) != loaded.Predict(x) {
			t.Fatal("loaded quantized model predicts differently")
		}
	}
}

func TestQNetworkLoadGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestBuildWalkOrderMismatchPanics(t *testing.T) {
	// A calibration captured on one architecture cannot build another:
	// the reader runs out of recorded ranges.
	rng := rand.New(rand.NewSource(8))
	small, _ := model.New(model.KindMLP, model.Config{WindowSamples: 10}, rng)
	big, _ := model.New(model.KindCNN, model.Config{WindowSamples: 40}, rng)
	cal, err := Calibrate(small.Net, randomWindows(2, 10, rng))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched calibration accepted")
		}
	}()
	_, _ = Build(big.Net, cal, []int{40, 9})
}

func TestBuildRejectsMidSigmoid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := nn.NewNetwork(
		nn.NewFlatten(),
		nn.NewDense(9*4, 4, rng),
		nn.NewSigmoid(), // mid-network sigmoid: unsupported
		nn.NewDense(4, 1, rng),
	)
	cal, err := Calibrate(net, randomWindows(2, 4, rng))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(net, cal, []int{4, 9}); err == nil {
		t.Fatal("mid-network sigmoid accepted")
	}
}

func TestCalibrateRejectsBranchWithRecurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := nn.NewNetwork(
		nn.NewBranch(
			[][2]int{{0, 3}},
			[][]nn.Layer{{nn.NewLSTM(3, 2, rng)}},
		),
		nn.NewDense(2, 1, rng),
		nn.NewSigmoid(),
	)
	// The walk itself rejects the unsupported branch layer... via
	// Forward it runs, but Build must reject it.
	cal, err := Calibrate(net, randomWindows(2, 6, rng))
	if err != nil {
		t.Fatal(err) // walk treats branch stacks generically
	}
	if _, err := Build(net, cal, []int{6, 9}); err == nil {
		t.Fatal("recurrent branch layer quantized")
	}
}

// Property: symmetric int8 round trip errs by at most half a step for
// in-range values.
func TestQuantizationErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(64)
		src := make([]float64, n)
		absmax := 0.0
		for i := range src {
			src[i] = rng.NormFloat64() * 3
			if a := math.Abs(src[i]); a > absmax {
				absmax = a
			}
		}
		scale := scaleFor(absmax)
		dst := make([]int8, n)
		quantizeTo(dst, src, scale)
		for i := range src {
			if math.Abs(float64(dst[i])*scale-src[i]) > scale/2+1e-12 {
				t.Fatalf("round-trip error beyond half step at %d", i)
			}
		}
	}
}
