package quant

import (
	"bytes"
	"testing"

	"repro/internal/tensor"
)

// FuzzQuantLoad asserts the model-image loader's hard invariants for
// arbitrary bytes: Load never panics, never allocates beyond the
// artifact size cap, and returns either an error or a network whose
// integer inference runs to completion. The corpus seeds a genuine
// saved CNN image plus structured mutations of it (truncations, bit
// flips, length-field edits), so the fuzzer starts on both sides of
// the validity boundary.
func FuzzQuantLoad(f *testing.F) {
	raw := savedImage(f)
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add(raw[:37])
	f.Add([]byte{})
	f.Add([]byte("FDMA"))
	flip := append([]byte(nil), raw...)
	flip[len(flip)/3] ^= 0x10
	f.Add(flip)
	// Hostile payload-length field.
	big := append([]byte(nil), raw...)
	for i := 0; i < 4 && 20+i < len(big); i++ {
		big[20+i] = 0xFF
	}
	f.Add(big)

	f.Fuzz(func(t *testing.T, data []byte) {
		qn, err := Load(bytes.NewReader(data))
		if err != nil {
			if qn != nil {
				t.Fatal("Load returned both a network and an error")
			}
			return
		}
		// Only a digest-valid image reaches here; it must be fully
		// usable: footprint accounting and integer inference on a
		// correctly shaped window must run without panicking.
		_ = qn.FlashBytes()
		_ = qn.RAMBytes()
		_ = qn.OpNames()
		x := tensor.New(qn.inShape...)
		p := qn.Predict(x)
		if p != p {
			t.Fatalf("loaded network predicts NaN on a zero window")
		}
	})
}
