package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearInterpExactAtSamples(t *testing.T) {
	x := []float64{3, -1, 4, 1, 5}
	for i, v := range x {
		if got := LinearInterp(x, float64(i)); got != v {
			t.Fatalf("interp at %d = %g, want %g", i, got, v)
		}
	}
}

func TestLinearInterpMidpoints(t *testing.T) {
	x := []float64{0, 10}
	if got := LinearInterp(x, 0.5); got != 5 {
		t.Fatalf("midpoint = %g, want 5", got)
	}
	if got := LinearInterp(x, 0.25); got != 2.5 {
		t.Fatalf("quarter = %g, want 2.5", got)
	}
}

func TestLinearInterpClamps(t *testing.T) {
	x := []float64{2, 4}
	if LinearInterp(x, -5) != 2 || LinearInterp(x, 99) != 4 {
		t.Fatal("out-of-domain not clamped")
	}
	if LinearInterp(nil, 0.5) != 0 {
		t.Fatal("empty signal should interp to 0")
	}
}

func TestResampleIdentityLength(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := Resample(x, 5)
	for i := range x {
		if math.Abs(y[i]-x[i]) > 1e-12 {
			t.Fatalf("identity resample differs at %d: %g", i, y[i])
		}
	}
}

func TestResampleEndpointsPreserved(t *testing.T) {
	x := []float64{7, 1, 2, 9}
	for _, m := range []int{2, 3, 7, 50} {
		y := Resample(x, m)
		if y[0] != 7 || y[len(y)-1] != 9 {
			t.Fatalf("m=%d: endpoints %g, %g", m, y[0], y[len(y)-1])
		}
	}
}

func TestResampleDegenerate(t *testing.T) {
	if Resample([]float64{1, 2}, 0) != nil {
		t.Fatal("m=0 should be nil")
	}
	if y := Resample([]float64{4, 8}, 1); len(y) != 1 || y[0] != 4 {
		t.Fatalf("m=1: %v", y)
	}
	if y := Resample(nil, 3); len(y) != 3 {
		t.Fatal("empty input should still give m zeros")
	}
}

// Property: resampling a linear ramp yields a linear ramp (linear
// interpolation reproduces degree-1 polynomials exactly).
func TestResampleLinearExactness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		m := 2 + rng.Intn(100)
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x := make([]float64, n)
		for i := range x {
			x[i] = a + b*float64(i)
		}
		y := Resample(x, m)
		scale := float64(n-1) / float64(m-1)
		for i := range y {
			want := a + b*float64(i)*scale
			if math.Abs(y[i]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: interpolated values stay within the convex hull of the
// input (no overshoot — important so warping cannot invent impact
// spikes that were not in the signal).
func TestResampleBoundedness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		x := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range x {
			x[i] = rng.NormFloat64()
			lo = math.Min(lo, x[i])
			hi = math.Max(hi, x[i])
		}
		for _, v := range Resample(x, 3*n) {
			if v < lo-1e-12 || v > hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyWarpIdentityPath(t *testing.T) {
	x := []float64{5, 6, 7, 8}
	path := WarpPath{0, 1, 2, 3}
	y := ApplyWarp(x, path)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("identity warp differs at %d", i)
		}
	}
}

func TestSmoothCurveConstant(t *testing.T) {
	y := SmoothCurve([]float64{2, 2, 2}, 17)
	for _, v := range y {
		if math.Abs(v-2) > 1e-12 {
			t.Fatalf("constant knots gave %g", v)
		}
	}
}

func TestSmoothCurveHitsKnots(t *testing.T) {
	knots := []float64{0, 1, -1}
	n := 21
	y := SmoothCurve(knots, n)
	if math.Abs(y[0]-0) > 1e-9 || math.Abs(y[10]-1) > 1e-9 || math.Abs(y[20]+1) > 1e-9 {
		t.Fatalf("knot values not hit: %g %g %g", y[0], y[10], y[20])
	}
}

func TestSmoothCurveDegenerate(t *testing.T) {
	if SmoothCurve([]float64{1}, 0) != nil {
		t.Fatal("n=0 should be nil")
	}
	y := SmoothCurve([]float64{3}, 4)
	for _, v := range y {
		if v != 3 {
			t.Fatal("single knot should be constant")
		}
	}
	y = SmoothCurve(nil, 4)
	for _, v := range y {
		if v != 0 {
			t.Fatal("no knots should be zero")
		}
	}
}

func TestMagnitude(t *testing.T) {
	m := Magnitude([]float64{3, 0}, []float64{4, 0}, []float64{0, 2})
	if m[0] != 5 || m[1] != 2 {
		t.Fatalf("Magnitude = %v", m)
	}
}

func TestMeanStd(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if Mean(x) != 2.5 {
		t.Fatalf("Mean = %g", Mean(x))
	}
	want := math.Sqrt(1.25)
	if math.Abs(Std(x)-want) > 1e-12 {
		t.Fatalf("Std = %g, want %g", Std(x), want)
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty stats should be 0")
	}
}
