package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestButterworthDesignErrors(t *testing.T) {
	cases := []struct {
		order  int
		fc, fs float64
	}{
		{0, 5, 100},
		{3, 5, 100},  // odd order
		{-2, 5, 100}, // negative
		{4, 0, 100},  // zero cutoff
		{4, 50, 100}, // at Nyquist
		{4, 60, 100}, // above Nyquist
		{4, 5, 0},    // zero fs
	}
	for _, c := range cases {
		if _, err := Butterworth(c.order, c.fc, c.fs); err == nil {
			t.Errorf("Butterworth(%d, %g, %g): want error", c.order, c.fc, c.fs)
		}
	}
}

func TestMustButterworthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustButterworth(3, 5, 100)
}

// The paper's filter: 4th order, 5 Hz cutoff at 100 Hz sampling.
func paperFilter(t *testing.T) *Filter {
	t.Helper()
	f, err := Butterworth(4, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestButterworthDCGainIsUnity(t *testing.T) {
	f := paperFilter(t)
	if g := f.FrequencyResponse(0, 100); math.Abs(g-1) > 1e-9 {
		t.Fatalf("DC gain = %g, want 1", g)
	}
}

func TestButterworthCutoffIsMinus3dB(t *testing.T) {
	f := paperFilter(t)
	g := f.FrequencyResponse(5, 100)
	want := 1 / math.Sqrt2
	if math.Abs(g-want) > 1e-6 {
		t.Fatalf("gain at fc = %g, want %g (-3 dB)", g, want)
	}
}

func TestButterworthMonotonicRolloff(t *testing.T) {
	// A Butterworth magnitude response is maximally flat and strictly
	// decreasing with frequency.
	f := paperFilter(t)
	prev := f.FrequencyResponse(0.1, 100)
	for fr := 1.0; fr < 50; fr += 1.0 {
		g := f.FrequencyResponse(fr, 100)
		if g >= prev+1e-12 {
			t.Fatalf("response not monotone at %g Hz: %g >= %g", fr, g, prev)
		}
		prev = g
	}
	// 4th order ⇒ ~ -80 dB/decade; at 50 Hz (one decade above fc) the
	// gain must be tiny.
	if g := f.FrequencyResponse(45, 100); g > 1e-3 {
		t.Fatalf("stopband gain %g too high", g)
	}
}

func TestFilterPassesDCSignal(t *testing.T) {
	f := paperFilter(t)
	x := make([]float64, 400)
	for i := range x {
		x[i] = 2.5
	}
	y := f.Apply(x)
	// After the transient the output settles at the input level.
	if math.Abs(y[len(y)-1]-2.5) > 1e-6 {
		t.Fatalf("steady state = %g, want 2.5", y[len(y)-1])
	}
}

func TestFilterAttenuatesHighFrequency(t *testing.T) {
	f := paperFilter(t)
	// 25 Hz tone at fs=100 Hz is far above the 5 Hz cutoff.
	x := make([]float64, 500)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 25 * float64(i) / 100)
	}
	y := f.Apply(x)
	var maxTail float64
	for _, v := range y[300:] {
		if a := math.Abs(v); a > maxTail {
			maxTail = a
		}
	}
	if maxTail > 0.01 {
		t.Fatalf("25 Hz tone leaked: tail amplitude %g", maxTail)
	}
}

func TestFilterPreservesLowFrequency(t *testing.T) {
	f := paperFilter(t)
	// 1 Hz tone sits well inside the passband.
	x := make([]float64, 1000)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 1 * float64(i) / 100)
	}
	y := f.Apply(x)
	var maxTail float64
	for _, v := range y[500:] {
		if a := math.Abs(v); a > maxTail {
			maxTail = a
		}
	}
	if maxTail < 0.95 || maxTail > 1.05 {
		t.Fatalf("1 Hz amplitude after filtering = %g, want ≈1", maxTail)
	}
}

func TestProcessMatchesApply(t *testing.T) {
	f := paperFilter(t)
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 128)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := f.Apply(x)
	f.Reset()
	for i, v := range x {
		got := f.Process(v)
		if math.Abs(got-want[i]) > 1e-12 {
			t.Fatalf("streaming sample %d = %g, batch = %g", i, got, want[i])
		}
	}
}

func TestResetClearsState(t *testing.T) {
	f := paperFilter(t)
	for i := 0; i < 50; i++ {
		f.Process(1)
	}
	f.Reset()
	// After reset the first output must equal the zero-state response.
	first := f.Process(1)
	g := MustButterworth(4, 5, 100)
	if want := g.Process(1); math.Abs(first-want) > 1e-15 {
		t.Fatalf("post-reset output %g != fresh filter %g", first, want)
	}
}

func TestApplyDoesNotDisturbStreamingState(t *testing.T) {
	f := paperFilter(t)
	f.Process(1)
	f.Process(2)
	s1 := f.Process(3)

	g := paperFilter(t)
	g.Process(1)
	g.Process(2)
	g.Apply([]float64{9, 9, 9, 9}) // must not change g's state
	s2 := g.Process(3)
	if math.Abs(s1-s2) > 1e-15 {
		t.Fatalf("Apply leaked state: %g vs %g", s1, s2)
	}
}

func TestFiltFiltZeroPhase(t *testing.T) {
	f := paperFilter(t)
	// A slow tone should come through FiltFilt with no delay: the
	// cross-correlation peak between input and output is at lag 0.
	n := 600
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 1.0 * float64(i) / 100)
	}
	y := f.FiltFilt(x)
	bestLag, bestC := 0, math.Inf(-1)
	for lag := -5; lag <= 5; lag++ {
		c := 0.0
		for i := 100; i < n-100; i++ {
			c += x[i] * y[i+lag]
		}
		if c > bestC {
			bestC, bestLag = c, lag
		}
	}
	if bestLag != 0 {
		t.Fatalf("FiltFilt phase lag = %d samples, want 0", bestLag)
	}
}

func TestFiltFiltConstantSignal(t *testing.T) {
	f := paperFilter(t)
	x := make([]float64, 100)
	for i := range x {
		x[i] = -1.75
	}
	y := f.FiltFilt(x)
	for i, v := range y {
		if math.Abs(v+1.75) > 1e-6 {
			t.Fatalf("FiltFilt distorted a constant at %d: %g", i, v)
		}
	}
}

func TestFiltFiltEdgeCases(t *testing.T) {
	f := paperFilter(t)
	if y := f.FiltFilt(nil); y != nil {
		t.Fatal("FiltFilt(nil) should be nil")
	}
	if y := f.FiltFilt([]float64{3}); len(y) != 1 {
		t.Fatalf("FiltFilt single sample: len %d", len(y))
	}
	// Short signals (shorter than the usual padding) must not panic.
	y := f.FiltFilt([]float64{1, 2, 3})
	if len(y) != 3 {
		t.Fatalf("FiltFilt short: len %d", len(y))
	}
}

// Property: the filter is linear — F(a·x + b·y) == a·F(x) + b·F(y).
func TestFilterLinearityProperty(t *testing.T) {
	f := paperFilter(t)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32 + rng.Intn(64)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		a, b := rng.NormFloat64(), rng.NormFloat64()
		mix := make([]float64, n)
		for i := range mix {
			mix[i] = a*x[i] + b*y[i]
		}
		fx, fy, fm := f.Apply(x), f.Apply(y), f.Apply(mix)
		for i := range fm {
			if math.Abs(fm[i]-(a*fx[i]+b*fy[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: filter output is bounded for bounded input (BIBO stability).
func TestFilterStabilityProperty(t *testing.T) {
	f := paperFilter(t)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 2000)
		for i := range x {
			x[i] = 2*rng.Float64() - 1 // bounded in [-1, 1]
		}
		for _, v := range f.Apply(x) {
			if math.Abs(v) > 10 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderReported(t *testing.T) {
	if o := MustButterworth(4, 5, 100).Order(); o != 4 {
		t.Fatalf("Order = %d, want 4", o)
	}
	if o := MustButterworth(6, 5, 100).Order(); o != 6 {
		t.Fatalf("Order = %d, want 6", o)
	}
}

func TestPrimeEliminatesStartupTransient(t *testing.T) {
	f := paperFilter(t)
	f.Prime(2.5)
	for i := 0; i < 200; i++ {
		if y := f.Process(2.5); math.Abs(y-2.5) > 1e-9 {
			t.Fatalf("primed filter transient at %d: %g", i, y)
		}
	}
	// Contrast: an unprimed filter starts far from the input level.
	g := paperFilter(t)
	if y := g.Process(2.5); math.Abs(y-2.5) < 0.1 {
		t.Fatal("unprimed filter unexpectedly settled instantly")
	}
}
