package dsp

import "fmt"

// Window describes one sliding-window segment by its sample range
// [Start, Start+Length) in the source signal.
type Window struct {
	Start  int
	Length int
}

// End returns the exclusive end index of the window.
func (w Window) End() int { return w.Start + w.Length }

// SlidingWindows computes the windows of the given length over a
// signal of n samples with the given overlap fraction in [0, 1).
// The paper segments 100 Hz data into 100–400 ms windows with 0–75 %
// overlap; a 400 ms window at 50 % overlap is length 40, step 20.
func SlidingWindows(n, length int, overlap float64) ([]Window, error) {
	if length <= 0 {
		return nil, fmt.Errorf("dsp: window length must be positive, got %d", length)
	}
	if overlap < 0 || overlap >= 1 {
		return nil, fmt.Errorf("dsp: overlap %g must be in [0, 1)", overlap)
	}
	step := length - int(float64(length)*overlap+0.5)
	if step < 1 {
		step = 1
	}
	var ws []Window
	for s := 0; s+length <= n; s += step {
		ws = append(ws, Window{Start: s, Length: length})
	}
	return ws, nil
}

// Step returns the hop size implied by a window length and overlap
// fraction, matching SlidingWindows.
func Step(length int, overlap float64) int {
	step := length - int(float64(length)*overlap+0.5)
	if step < 1 {
		step = 1
	}
	return step
}

// Overlaps reports whether the window intersects the sample interval
// [lo, hi) .
func (w Window) Overlaps(lo, hi int) bool {
	return w.Start < hi && w.End() > lo
}

// Within reports whether the window lies entirely inside [lo, hi).
func (w Window) Within(lo, hi int) bool {
	return w.Start >= lo && w.End() <= hi
}
