package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT computes the in-place radix-2 Cooley–Tukey transform of x,
// whose length must be a power of two. It returns the same slice.
func FFT(x []complex128) ([]complex128, error) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		m := n >> 1
		for m >= 1 && j&m != 0 {
			j ^= m
			m >>= 1
		}
		j |= m
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := cmplx.Exp(complex(0, -2*math.Pi/float64(size)))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= step
			}
		}
	}
	return x, nil
}

// nextPow2 returns the smallest power of two ≥ n (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// PSD estimates the one-sided power spectral density of x (sampled at
// fs Hz) by Welch's method: Hann-windowed segments of segLen samples
// (rounded up to a power of two) with 50 % overlap, averaged. It
// returns the frequency axis and the density; len = nfft/2+1.
func PSD(x []float64, fs float64, segLen int) (freqs, psd []float64, err error) {
	if len(x) == 0 {
		return nil, nil, fmt.Errorf("dsp: PSD of empty signal")
	}
	if fs <= 0 {
		return nil, nil, fmt.Errorf("dsp: PSD needs positive sample rate")
	}
	if segLen <= 1 || segLen > len(x) {
		segLen = min(len(x), 256)
	}
	nfft := nextPow2(segLen)
	step := segLen / 2
	if step < 1 {
		step = 1
	}

	window := make([]float64, segLen)
	winPow := 0.0
	for i := range window {
		window[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(segLen-1)))
		winPow += window[i] * window[i]
	}

	acc := make([]float64, nfft/2+1)
	segments := 0
	buf := make([]complex128, nfft)
	for start := 0; start+segLen <= len(x); start += step {
		for i := range buf {
			buf[i] = 0
		}
		for i := 0; i < segLen; i++ {
			buf[i] = complex(x[start+i]*window[i], 0)
		}
		if _, err := FFT(buf); err != nil {
			return nil, nil, err
		}
		for k := 0; k <= nfft/2; k++ {
			p := real(buf[k])*real(buf[k]) + imag(buf[k])*imag(buf[k])
			acc[k] += p
		}
		segments++
	}
	if segments == 0 {
		return nil, nil, fmt.Errorf("dsp: signal shorter than one segment")
	}

	freqs = make([]float64, nfft/2+1)
	psd = make([]float64, nfft/2+1)
	norm := 1 / (fs * winPow * float64(segments))
	for k := range psd {
		freqs[k] = float64(k) * fs / float64(nfft)
		psd[k] = acc[k] * norm
		if k != 0 && k != nfft/2 {
			psd[k] *= 2 // one-sided
		}
	}
	return freqs, psd, nil
}

// DominantFrequency returns the frequency of the largest PSD peak of
// x above minHz — the gait-cadence estimator used to validate the
// locomotion generator.
func DominantFrequency(x []float64, fs, minHz float64) (float64, error) {
	freqs, psd, err := PSD(x, fs, 256)
	if err != nil {
		return 0, err
	}
	best, bestP := 0.0, -1.0
	for k := range freqs {
		if freqs[k] < minHz {
			continue
		}
		if psd[k] > bestP {
			bestP, best = psd[k], freqs[k]
		}
	}
	return best, nil
}
