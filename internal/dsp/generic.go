package dsp

import "repro/internal/tensor"

// FilterOf adapts a Filter to a sample stream of scalar type S while
// keeping every accumulator at float64. IIR feedback state is the one
// place reduced precision genuinely compounds: a biquad's z1/z2 feed
// back into themselves every sample, so rounding them to float32 would
// accumulate error over an unbounded stream instead of per-operation.
// The deployment-width pipeline therefore converts samples at the
// boundary — S in, S out — and runs the recurrence itself in double
// precision, exactly as fixed-point firmware keeps a wider accumulator
// than its sample format. At S=float64 both conversions are identities
// and Process is bit-identical to calling the wrapped Filter directly.
type FilterOf[S tensor.Scalar] struct {
	// F is the wrapped float64 cascade; snapshot codecs reach through
	// it for AppendState/StateLen/SetState, which stay float64 (the
	// accumulators are float64 regardless of S).
	F *Filter
}

// WrapFilter adapts f to sample width S. The wrapper shares f's state:
// processing through the wrapper and the filter interleave per-sample.
func WrapFilter[S tensor.Scalar](f *Filter) *FilterOf[S] {
	return &FilterOf[S]{F: f}
}

// Process filters one sample at width S through the float64 cascade.
//
//fallvet:hotpath
func (w *FilterOf[S]) Process(x S) S { return S(w.F.Process(float64(x))) }

// Prime initialises the cascade to the steady-state response for a
// constant input at width S.
//
//fallvet:hotpath
func (w *FilterOf[S]) Prime(x0 S) { w.F.Prime(float64(x0)) }

// Reset clears the cascade state.
func (w *FilterOf[S]) Reset() { w.F.Reset() }
