package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 3, 6, 100} {
		if _, err := FFT(make([]complex128, n)); err == nil {
			t.Errorf("length %d accepted", n)
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	// δ[0] transforms to an all-ones spectrum.
	x := make([]complex128, 8)
	x[0] = 1
	y, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range y {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse bin %d = %v", k, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A unit tone at bin 3 puts n/2 in bins 3 and n−3.
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*3*float64(i)/float64(n)), 0)
	}
	y, _ := FFT(x)
	for k := range y {
		want := 0.0
		if k == 3 || k == n-3 {
			want = float64(n) / 2
		}
		if math.Abs(cmplx.Abs(y[k])-want) > 1e-9 {
			t.Fatalf("bin %d magnitude %g, want %g", k, cmplx.Abs(y[k]), want)
		}
	}
}

// Property: Parseval — Σ|x|² == (1/n)·Σ|X|².
func TestFFTParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (3 + rng.Intn(5))
		x := make([]complex128, n)
		tsum := 0.0
		for i := range x {
			re, im := rng.NormFloat64(), rng.NormFloat64()
			x[i] = complex(re, im)
			tsum += re*re + im*im
		}
		y, err := FFT(x)
		if err != nil {
			return false
		}
		fsum := 0.0
		for _, v := range y {
			fsum += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(tsum-fsum/float64(n)) < 1e-6*math.Max(1, tsum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPSDFindsTone(t *testing.T) {
	fs := 100.0
	x := make([]float64, 2000)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*7*float64(i)/fs) + 0.1*math.Sin(2*math.Pi*30*float64(i)/fs)
	}
	freqs, psd, err := PSD(x, fs, 256)
	if err != nil {
		t.Fatal(err)
	}
	best, bestP := 0.0, -1.0
	for k := range freqs {
		if psd[k] > bestP {
			bestP, best = psd[k], freqs[k]
		}
	}
	if math.Abs(best-7) > 0.5 {
		t.Fatalf("dominant frequency %g, want 7", best)
	}
}

func TestPSDErrors(t *testing.T) {
	if _, _, err := PSD(nil, 100, 64); err == nil {
		t.Error("empty signal accepted")
	}
	if _, _, err := PSD(make([]float64, 100), 0, 64); err == nil {
		t.Error("zero fs accepted")
	}
}

func TestDominantFrequencyGait(t *testing.T) {
	// 1.8 Hz bobbing on a 1 g baseline: the estimator must find the
	// cadence, not DC.
	fs := 100.0
	x := make([]float64, 3000)
	for i := range x {
		x[i] = 1 + 0.15*math.Sin(2*math.Pi*1.8*float64(i)/fs)
	}
	got, err := DominantFrequency(x, fs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.8) > 0.25 {
		t.Fatalf("cadence %g, want ≈1.8", got)
	}
}
