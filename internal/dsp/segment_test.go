package dsp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSlidingWindowsPaperConfigs(t *testing.T) {
	// The paper's Table III configurations at 100 Hz.
	cases := []struct {
		name     string
		n, len   int
		overlap  float64
		wantStep int
	}{
		{"200ms/50%", 1000, 20, 0.5, 10},
		{"300ms/50%", 1000, 30, 0.5, 15},
		{"400ms/50%", 1000, 40, 0.5, 20},
		{"400ms/0%", 1000, 40, 0.0, 40},
		{"400ms/75%", 1000, 40, 0.75, 10},
		{"100ms/25%", 1000, 10, 0.25, 7}, // 10 - round(2.5) = 7
	}
	for _, c := range cases {
		ws, err := SlidingWindows(c.n, c.len, c.overlap)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(ws) < 2 {
			t.Fatalf("%s: too few windows", c.name)
		}
		if got := ws[1].Start - ws[0].Start; got != c.wantStep {
			t.Errorf("%s: step = %d, want %d", c.name, got, c.wantStep)
		}
		if got := Step(c.len, c.overlap); got != c.wantStep {
			t.Errorf("%s: Step() = %d, want %d", c.name, got, c.wantStep)
		}
		last := ws[len(ws)-1]
		if last.End() > c.n {
			t.Errorf("%s: window overruns signal: end %d > %d", c.name, last.End(), c.n)
		}
	}
}

func TestSlidingWindowsErrors(t *testing.T) {
	if _, err := SlidingWindows(100, 0, 0.5); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := SlidingWindows(100, 10, -0.1); err == nil {
		t.Error("negative overlap accepted")
	}
	if _, err := SlidingWindows(100, 10, 1.0); err == nil {
		t.Error("overlap 1.0 accepted")
	}
}

func TestSlidingWindowsShortSignal(t *testing.T) {
	ws, err := SlidingWindows(5, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 0 {
		t.Fatalf("signal shorter than window should yield no windows, got %d", len(ws))
	}
	ws, _ = SlidingWindows(10, 10, 0.5)
	if len(ws) != 1 {
		t.Fatalf("exact-length signal should yield 1 window, got %d", len(ws))
	}
}

func TestWindowPredicates(t *testing.T) {
	w := Window{Start: 10, Length: 20} // covers [10, 30)
	if !w.Overlaps(25, 40) || !w.Overlaps(0, 11) || !w.Overlaps(15, 16) {
		t.Error("Overlaps false negative")
	}
	if w.Overlaps(30, 40) || w.Overlaps(0, 10) {
		t.Error("Overlaps false positive at boundaries")
	}
	if !w.Within(10, 30) || !w.Within(0, 100) {
		t.Error("Within false negative")
	}
	if w.Within(11, 30) || w.Within(10, 29) {
		t.Error("Within false positive")
	}
}

// Property: windows tile the signal with the declared step, never
// overrun it, and consecutive windows overlap by ≈ overlap·length.
func TestSlidingWindowsInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(1000)
		length := 5 + rng.Intn(60)
		overlap := float64(rng.Intn(4)) * 0.25
		ws, err := SlidingWindows(n, length, overlap)
		if err != nil {
			return false
		}
		step := Step(length, overlap)
		for i, w := range ws {
			if w.Length != length || w.End() > n || w.Start != i*step {
				return false
			}
		}
		// Maximality: one more window would overrun.
		if len(ws) > 0 {
			if next := ws[len(ws)-1].Start + step; next+length <= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
