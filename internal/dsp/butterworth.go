// Package dsp implements the signal-processing substrate used by the
// pre-impact fall-detection pipeline: Butterworth low-pass filter
// design (the paper's 4th-order 5 Hz filter), zero-phase and streaming
// filtering, sliding-window segmentation and interpolation primitives
// used by the time-warping augmentations.
package dsp

import (
	"fmt"
	"math"
)

// Biquad is one second-order IIR section in direct form II transposed.
//
//	y[n] = b0*x[n] + b1*x[n-1] + b2*x[n-2] - a1*y[n-1] - a2*y[n-2]
//
// with a0 normalised to 1.
type Biquad struct {
	//fallvet:derived filter design coefficients, fixed by the designer; AppendState serialises only the z1/z2 state
	B0, B1, B2 float64
	//fallvet:derived filter design coefficients, fixed by the designer; AppendState serialises only the z1/z2 state
	A1, A2 float64
	z1, z2 float64 // DF2T state
}

// Process filters one sample and advances the section's state.
//
//fallvet:hotpath
func (q *Biquad) Process(x float64) float64 {
	y := q.B0*x + q.z1
	q.z1 = q.B1*x - q.A1*y + q.z2
	q.z2 = q.B2*x - q.A2*y
	return y
}

// Reset clears the filter state.
func (q *Biquad) Reset() { q.z1, q.z2 = 0, 0 }

// clone returns a state-free copy of the coefficients.
func (q *Biquad) clone() Biquad {
	return Biquad{B0: q.B0, B1: q.B1, B2: q.B2, A1: q.A1, A2: q.A2}
}

// warm sets the section state to its steady-state response to a
// constant input x, so that a constant signal passes without a
// startup transient. It returns the steady-state output.
func (q *Biquad) warm(x float64) float64 {
	g := (q.B0 + q.B1 + q.B2) / (1 + q.A1 + q.A2) // DC gain
	y := g * x
	q.z2 = q.B2*x - q.A2*y
	q.z1 = (q.B1+q.B2)*x - (q.A1+q.A2)*y
	return y
}

// Filter is a cascade of biquad sections, i.e. an even-order IIR filter.
type Filter struct {
	sections []Biquad
}

// Butterworth designs an order-n Butterworth low-pass filter with
// cutoff frequency fc (Hz) for sample rate fs (Hz), using the analog
// prototype and a pre-warped bilinear transform. The order must be a
// positive even number (the paper uses order 4).
func Butterworth(order int, fc, fs float64) (*Filter, error) {
	if order <= 0 || order%2 != 0 {
		return nil, fmt.Errorf("dsp: Butterworth order must be positive and even, got %d", order)
	}
	if fc <= 0 || fs <= 0 || fc >= fs/2 {
		return nil, fmt.Errorf("dsp: cutoff %g Hz must lie in (0, fs/2=%g)", fc, fs/2)
	}
	// Pre-warped analog cutoff so the digital filter's -3 dB point
	// lands exactly at fc after the bilinear transform.
	k := 2 * fs
	wc := k * math.Tan(math.Pi*fc/fs)

	f := &Filter{sections: make([]Biquad, 0, order/2)}
	for i := 0; i < order/2; i++ {
		// Analog section: H(s) = wc² / (s² + 2ζ·wc·s + wc²) with the
		// Butterworth damping 2ζ = 2·sin((2i+1)π/(2n)).
		twoZeta := 2 * math.Sin(float64(2*i+1)*math.Pi/float64(2*order))
		a1s := twoZeta * wc

		d0 := k*k + a1s*k + wc*wc
		d1 := 2*wc*wc - 2*k*k
		d2 := k*k - a1s*k + wc*wc
		f.sections = append(f.sections, Biquad{
			B0: wc * wc / d0,
			B1: 2 * wc * wc / d0,
			B2: wc * wc / d0,
			A1: d1 / d0,
			A2: d2 / d0,
		})
	}
	return f, nil
}

// MustButterworth is Butterworth but panics on a design error. It is
// intended for static configurations known to be valid.
func MustButterworth(order int, fc, fs float64) *Filter {
	f, err := Butterworth(order, fc, fs)
	if err != nil {
		panic(err)
	}
	return f
}

// Order returns the filter order (2 × number of sections).
func (f *Filter) Order() int { return 2 * len(f.sections) }

// Sections returns state-free copies of the cascade's biquad
// coefficients, for consumers that re-implement the cascade in
// another arithmetic (e.g. the fixed-point edge filter).
func (f *Filter) Sections() []Biquad {
	out := make([]Biquad, len(f.sections))
	for i := range f.sections {
		out[i] = f.sections[i].clone()
	}
	return out
}

// Reset clears all section states.
func (f *Filter) Reset() {
	for i := range f.sections {
		f.sections[i].Reset()
	}
}

// AppendState appends the streaming state of every section (z1, z2 in
// cascade order) to dst and returns the extended slice. Together with
// SetState it lets a serving layer snapshot a live filter and resume
// it bit-identically after a crash — the filter warm-up is part of the
// pipeline's warm-up, and losing it costs a full re-prime.
func (f *Filter) AppendState(dst []float64) []float64 {
	for i := range f.sections {
		dst = append(dst, f.sections[i].z1, f.sections[i].z2)
	}
	return dst
}

// StateLen is the number of float64 values AppendState appends.
func (f *Filter) StateLen() int { return 2 * len(f.sections) }

// SetState restores streaming state captured by AppendState. The
// slice length must match StateLen exactly.
func (f *Filter) SetState(st []float64) error {
	if len(st) != f.StateLen() {
		return fmt.Errorf("dsp: filter state holds %d values, want %d", len(st), f.StateLen())
	}
	for i := range f.sections {
		f.sections[i].z1 = st[2*i]
		f.sections[i].z2 = st[2*i+1]
	}
	return nil
}

// Prime initialises the streaming state to the steady-state response
// for a constant input x0, eliminating the startup transient. Edge
// firmware calls this with the first sensor reading; without it the
// output ramps up from zero, which a fall detector would mistake for
// free fall.
//
//fallvet:hotpath
func (f *Filter) Prime(x0 float64) {
	v := x0
	for i := range f.sections {
		v = f.sections[i].warm(v)
	}
}

// Process filters one sample through the whole cascade, advancing the
// internal state. Use this form for streaming (on-edge) operation.
//
//fallvet:hotpath
func (f *Filter) Process(x float64) float64 {
	for i := range f.sections {
		x = f.sections[i].Process(x)
	}
	return x
}

// Apply filters the signal causally into a new slice, starting from a
// zero state. The receiver's streaming state is not disturbed.
func (f *Filter) Apply(x []float64) []float64 {
	return f.apply(x, false)
}

func (f *Filter) apply(x []float64, warm bool) []float64 {
	secs := make([]Biquad, len(f.sections))
	for i := range f.sections {
		secs[i] = f.sections[i].clone()
	}
	if warm && len(x) > 0 {
		// Initialise each section at its steady-state response to the
		// first sample (scipy's lfilter_zi): a constant signal then
		// passes with no startup transient, which FiltFilt relies on.
		v := x[0]
		for i := range secs {
			v = secs[i].warm(v)
		}
	}
	y := make([]float64, len(x))
	for n, v := range x {
		for i := range secs {
			v = secs[i].Process(v)
		}
		y[n] = v
	}
	return y
}

// FiltFilt applies the filter forward and backward, giving zero-phase
// output (the offline pre-processing path: no group delay shifts the
// fall onset labels). The signal edges are extended by odd reflection
// to suppress startup transients, mirroring common practice.
func (f *Filter) FiltFilt(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	// Edge padding length: 3× order is the usual heuristic.
	pad := 3 * f.Order()
	if pad >= n {
		pad = n - 1
	}
	ext := make([]float64, pad+n+pad)
	// Odd reflection about the first/last sample.
	for i := 0; i < pad; i++ {
		ext[i] = 2*x[0] - x[pad-i]
		ext[pad+n+i] = 2*x[n-1] - x[n-2-i]
	}
	copy(ext[pad:], x)

	fw := f.apply(ext, true)
	reverse(fw)
	bw := f.apply(fw, true)
	reverse(bw)

	y := make([]float64, n)
	copy(y, bw[pad:pad+n])
	return y
}

func reverse(x []float64) {
	for i, j := 0, len(x)-1; i < j; i, j = i+1, j-1 {
		x[i], x[j] = x[j], x[i]
	}
}

// FrequencyResponse returns |H(e^{jω})| of the cascade at frequency
// fHz for sample rate fs. Useful for verifying the design (-3 dB at fc).
func (f *Filter) FrequencyResponse(fHz, fs float64) float64 {
	w := 2 * math.Pi * fHz / fs
	re, im := math.Cos(w), -math.Sin(w) // z⁻¹ = e^{-jω}
	// z⁻² components.
	re2, im2 := re*re-im*im, 2*re*im

	mag := 1.0
	for _, s := range f.sections {
		nr := s.B0 + s.B1*re + s.B2*re2
		ni := s.B1*im + s.B2*im2
		dr := 1 + s.A1*re + s.A2*re2
		di := s.A1*im + s.A2*im2
		mag *= math.Hypot(nr, ni) / math.Hypot(dr, di)
	}
	return mag
}
