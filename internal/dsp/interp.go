package dsp

import "math"

// LinearInterp evaluates a piecewise-linear signal x (sampled at
// integer instants 0..len(x)-1) at a fractional position t, clamping
// outside the domain.
func LinearInterp(x []float64, t float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	if t <= 0 {
		return x[0]
	}
	if t >= float64(n-1) {
		return x[n-1]
	}
	i := int(t)
	f := t - float64(i)
	return x[i]*(1-f) + x[i+1]*f
}

// Resample resamples x to m points by linear interpolation over the
// whole duration. Resample(x, len(x)) returns a copy of x.
func Resample(x []float64, m int) []float64 {
	if m <= 0 {
		return nil
	}
	y := make([]float64, m)
	if len(x) == 0 {
		return y
	}
	if m == 1 {
		y[0] = x[0]
		return y
	}
	scale := float64(len(x)-1) / float64(m-1)
	for i := range y {
		y[i] = LinearInterp(x, float64(i)*scale)
	}
	return y
}

// WarpPath is a monotonically increasing mapping from output sample
// index to (fractional) input sample index, used by the time-warping
// augmentation. Path[i] gives the source position of output sample i.
type WarpPath []float64

// ApplyWarp resamples x along the warp path.
func ApplyWarp(x []float64, path WarpPath) []float64 {
	y := make([]float64, len(path))
	for i, t := range path {
		y[i] = LinearInterp(x, t)
	}
	return y
}

// SmoothCurve builds a smooth length-n curve through the given knot
// values (placed uniformly across [0, n-1]) using cosine interpolation.
// It is the generator for random warp speed profiles.
func SmoothCurve(knots []float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	y := make([]float64, n)
	if len(knots) == 0 {
		return y
	}
	if len(knots) == 1 {
		for i := range y {
			y[i] = knots[0]
		}
		return y
	}
	seg := float64(n-1) / float64(len(knots)-1)
	for i := range y {
		t := float64(i) / seg
		k := int(t)
		if k >= len(knots)-1 {
			y[i] = knots[len(knots)-1]
			continue
		}
		f := t - float64(k)
		// Cosine easing keeps the curve C¹-smooth at the knots.
		f = (1 - math.Cos(f*math.Pi)) / 2
		y[i] = knots[k]*(1-f) + knots[k+1]*f
	}
	return y
}

// Magnitude returns the Euclidean norm √(x²+y²+z²) per sample of the
// three component signals, which must have equal lengths. The signal
// vector magnitude of the accelerometer is the core quantity of the
// threshold-based baselines.
func Magnitude(x, y, z []float64) []float64 {
	m := make([]float64, len(x))
	for i := range x {
		m[i] = math.Sqrt(x[i]*x[i] + y[i]*y[i] + z[i]*z[i])
	}
	return m
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Std returns the population standard deviation of x.
func Std(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	mu := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}
