package model

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/imu"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestKindString(t *testing.T) {
	if KindCNN.String() != "CNN (Proposed)" || KindConvLSTM.String() != "ConvLSTM2D" {
		t.Fatal("kind names")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind unnamed")
	}
	if len(DeepKinds()) != 4 {
		t.Fatal("DeepKinds")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(KindCNN, Config{WindowSamples: 2}, rng); err == nil {
		t.Fatal("window shorter than kernel accepted")
	}
	if _, err := New(KindThresholdAcc, Config{WindowSamples: 40}, rng); err == nil {
		t.Fatal("threshold kind accepted by New")
	}
}

func TestCNNArchitectureMatchesPaper(t *testing.T) {
	// §III-B: input [n × 9] split into three [n × 3] branches, each
	// conv + maxpool, concatenated, then Dense(64) → Dense(32) →
	// Dense(1, sigmoid).
	rng := rand.New(rand.NewSource(2))
	for _, T := range []int{20, 30, 40} {
		m, err := New(KindCNN, Config{WindowSamples: T}, rng)
		if err != nil {
			t.Fatal(err)
		}
		x := tensor.New(T, imu.NumChannels)
		p := m.Score(x)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("T=%d: score %g outside [0,1]", T, p)
		}
		// Architecture shape walk must succeed.
		shape := []int{T, imu.NumChannels}
		for _, l := range m.Net.Layers {
			var err error
			shape, err = l.OutShape(shape)
			if err != nil {
				t.Fatalf("T=%d %s: %v", T, l.Name(), err)
			}
		}
		if shape[0] != 1 {
			t.Fatalf("T=%d: output shape %v", T, shape)
		}
	}
}

func TestCNNSizeNearPaper(t *testing.T) {
	// The paper's int8 model is 67.03 KiB; one byte per parameter
	// puts our parameter count in the same regime (tens of KiB, and
	// far under the 256 KiB flash).
	rng := rand.New(rand.NewSource(3))
	m, _ := New(KindCNN, Config{WindowSamples: 40}, rng)
	params := m.Net.ParamCount()
	if params < 30_000 || params > 120_000 {
		t.Fatalf("CNN has %d params; expected a few tens of thousands", params)
	}
}

func TestModelsAreSmallerThanNaiveMLPOnRawInput(t *testing.T) {
	// The branch design shares nothing across motion features; its
	// conv front end must use far fewer parameters than a dense layer
	// over the raw 360-value input would at equal width.
	rng := rand.New(rand.NewSource(4))
	cnn, _ := New(KindCNN, Config{WindowSamples: 40}, rng)
	convParams := 0
	for _, p := range cnn.Net.Layers[0].Params() {
		convParams += p.W.Len()
	}
	if convParams >= 40*9*64 {
		t.Fatalf("branch front end has %d params, not lightweight", convParams)
	}
}

func TestOutputBiasInitialisation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, err := New(KindCNN, Config{WindowSamples: 40, PosCount: 36, TotalCount: 1000}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Find the output dense bias.
	var out *nn.Dense
	for i := len(m.Net.Layers) - 1; i >= 0; i-- {
		if d, ok := m.Net.Layers[i].(*nn.Dense); ok {
			out = d
			break
		}
	}
	want := math.Log(0.036 / (1 - 0.036))
	if got := out.Bias.W.Data()[0]; math.Abs(got-want) > 1e-12 {
		t.Fatalf("output bias %g, want %g", got, want)
	}
}

func TestAllDeepKindsForwardAndTrain(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	mkSet := func(n int) []nn.Example {
		out := make([]nn.Example, n)
		for i := range out {
			x := tensor.New(20, imu.NumChannels)
			y := i % 2
			for j := range x.Data() {
				x.Data()[j] = rng.NormFloat64()
				if y == 1 {
					x.Data()[j] *= 0.2 // separable-ish
				}
			}
			out[i] = nn.Example{X: x, Y: y}
		}
		return out
	}
	train, val := mkSet(40), mkSet(10)
	for _, kind := range DeepKinds() {
		m, err := New(kind, Config{WindowSamples: 20}, rng)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := m.Fit(train, val, nn.TrainConfig{Epochs: 2, Patience: 2, BatchSize: 8}, rng); err != nil {
			t.Fatalf("%v: Fit: %v", kind, err)
		}
		p := m.Score(train[0].X)
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("%v: score %g", kind, p)
		}
		if m.Kind() != kind || m.Name() == "" {
			t.Fatalf("%v: identity", kind)
		}
	}
}

func freefallWindow(T int) *tensor.Tensor {
	x := tensor.New(T, imu.NumChannels)
	for i := 0; i < T; i++ {
		// Second half in free fall with rotation.
		if i < T/2 {
			x.Set(1, i, imu.AccZ)
		} else {
			x.Set(0.15, i, imu.AccZ)
			x.Set(200, i, imu.GyroY)
		}
	}
	return x
}

func quietWindow(T int) *tensor.Tensor {
	x := tensor.New(T, imu.NumChannels)
	for i := 0; i < T; i++ {
		x.Set(1, i, imu.AccZ)
	}
	return x
}

func TestThresholdDetectorsSeparateFreeFall(t *testing.T) {
	for _, kind := range []Kind{KindThresholdAcc, KindThresholdGyro} {
		th, err := NewThreshold(kind)
		if err != nil {
			t.Fatal(err)
		}
		fall := th.Score(freefallWindow(40))
		quiet := th.Score(quietWindow(40))
		if fall < 0.5 {
			t.Errorf("%v: free-fall window scored %g < 0.5", kind, fall)
		}
		if quiet >= 0.5 {
			t.Errorf("%v: quiet window scored %g ≥ 0.5", kind, quiet)
		}
		if th.Name() == "" {
			t.Error("unnamed threshold")
		}
	}
}

func TestNewThresholdRejectsDeepKinds(t *testing.T) {
	if _, err := NewThreshold(KindCNN); err == nil {
		t.Fatal("CNN accepted as threshold kind")
	}
}

func TestThresholdFitCalibrates(t *testing.T) {
	th, _ := NewThreshold(KindThresholdAcc)
	var train []nn.Example
	for i := 0; i < 20; i++ {
		train = append(train, nn.Example{X: freefallWindow(40), Y: 1})
		train = append(train, nn.Example{X: quietWindow(40), Y: 0})
	}
	if err := th.Fit(train, nil, nn.TrainConfig{}, nil); err != nil {
		t.Fatal(err)
	}
	// After calibration the detector must separate the training data
	// perfectly (it is trivially separable).
	var c nn.Confusion
	for _, e := range train {
		c.Add(th.Score(e.X), e.Y)
	}
	if c.F1() < 0.99 {
		t.Fatalf("post-fit F1 %.2f on separable data", c.F1())
	}
	if err := th.Fit(nil, nil, nn.TrainConfig{}, nil); err == nil {
		t.Fatal("empty fit accepted")
	}
}

func TestThresholdVelocityIntegrator(t *testing.T) {
	// Sustained free fall accumulates vertical velocity; a brief dip
	// does not. The acc-variant must score the long fall higher.
	th, _ := NewThreshold(KindThresholdAcc)
	long := tensor.New(60, imu.NumChannels)
	short := tensor.New(60, imu.NumChannels)
	for i := 0; i < 60; i++ {
		long.Set(1, i, imu.AccZ)
		short.Set(1, i, imu.AccZ)
	}
	for i := 20; i < 60; i++ { // 400 ms of free fall
		long.Set(0.05, i, imu.AccZ)
	}
	for i := 20; i < 24; i++ { // 40 ms dip
		short.Set(0.05, i, imu.AccZ)
	}
	if th.Score(long) <= th.Score(short) {
		t.Fatalf("long fall %g ≤ brief dip %g", th.Score(long), th.Score(short))
	}
}

func TestAccelFallbackIgnoresGyroAndEulerColumns(t *testing.T) {
	// The cascade's tier-1 model reads the full [T × 9] window but must
	// route only the accelerometer columns: under a gyro-only fault the
	// other six columns hold reconstructions, and the fallback's score
	// has to be independent of them.
	rng := rand.New(rand.NewSource(3))
	const T = 40
	m, err := New(KindCNNAccel, Config{WindowSamples: T}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(T, imu.NumChannels)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	p0 := m.Score(x)
	if p0 < 0 || p0 > 1 || math.IsNaN(p0) {
		t.Fatalf("score %g outside [0,1]", p0)
	}
	// Scramble every non-accelerometer column.
	for t0 := 0; t0 < T; t0++ {
		for c := imu.GyroX; c <= imu.EulerYaw; c++ {
			x.Data()[t0*imu.NumChannels+c] = 1e3 * rng.NormFloat64()
		}
	}
	if p1 := m.Score(x); p1 != p0 {
		t.Fatalf("score moved %g -> %g when only gyro/Euler columns changed", p0, p1)
	}
	// Perturbing an accelerometer column must move the score.
	x.Data()[5*imu.NumChannels+imu.AccZ] += 3
	if p2 := m.Score(x); p2 == p0 {
		t.Fatal("score insensitive to accelerometer input")
	}
}

func TestAccelFallbackTrainsAndClones(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const T = 20
	m, err := New(KindCNNAccel, Config{WindowSamples: T, PosCount: 2, TotalCount: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(y int, seed int64) nn.Example {
		r := rand.New(rand.NewSource(seed))
		x := tensor.New(T, imu.NumChannels)
		for i := range x.Data() {
			x.Data()[i] = r.NormFloat64()
			if y == 1 {
				x.Data()[i] -= 1.5
			}
		}
		return nn.Example{X: x, Y: y}
	}
	var train, val []nn.Example
	for i := int64(0); i < 24; i++ {
		train = append(train, mk(int(i%2), i))
	}
	for i := int64(100); i < 108; i++ {
		val = append(val, mk(int(i%2), i))
	}
	if err := m.Fit(train, val, nn.TrainConfig{Epochs: 3, BatchSize: 8}, rng); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	x := mk(1, 999).X
	if c.Score(x) != m.Score(x) {
		t.Fatal("clone scores diverge from original")
	}
}
