// Package model defines the paper's proposed lightweight three-branch
// CNN and every comparison model of the evaluation: the MLP, LSTM and
// ConvLSTM2D deep baselines of Table III and the threshold-algorithm
// baselines of the related work (Table I context). All models share
// the Classifier interface so the evaluation harness treats them
// uniformly.
package model

import (
	"fmt"
	"math/rand"

	"repro/internal/imu"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Classifier scores one [T × 9] window with a falling probability.
type Classifier interface {
	Name() string
	Score(x *tensor.Tensor) float64
}

// Trainable is a classifier that learns from labelled segments.
type Trainable interface {
	Classifier
	Fit(train, val []nn.Example, cfg nn.TrainConfig, rng *rand.Rand) error
}

// Kind selects one of the evaluated model families.
type Kind int

// The model families of Table III plus the threshold baselines.
const (
	KindCNN Kind = iota
	KindMLP
	KindLSTM
	KindConvLSTM
	KindThresholdAcc  // de Sousa et al. 2021-style: |a| + vertical velocity
	KindThresholdGyro // Jung et al. 2020-style: |a| + angular rate
	// KindCNNBiGRU reproduces the strongest Table I reference (Kiran
	// et al. 2024): a convolutional front end feeding a bidirectional
	// GRU. Accurate but too heavy for the paper's deployment target.
	KindCNNBiGRU
	// KindDistilled is the PreFallKD-style student (Chi et al. 2023):
	// a halved CNN trained with knowledge distillation from a full
	// CNN teacher (see Distill).
	KindDistilled
	// KindCNNAccel is the accelerometer-branch-only fallback: the
	// proposed CNN with the gyro and Euler branches removed. It reads
	// the same [T × 9] window but only routes the accelerometer columns
	// through its single branch, so a detector cascade can keep a
	// trained model in play when the gyroscope (and hence the fused
	// attitude) is quarantined or stuck.
	KindCNNAccel
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCNN:
		return "CNN (Proposed)"
	case KindMLP:
		return "MLP"
	case KindLSTM:
		return "LSTM"
	case KindConvLSTM:
		return "ConvLSTM2D"
	case KindThresholdAcc:
		return "Threshold (acc+vel)"
	case KindThresholdGyro:
		return "Threshold (acc+gyro)"
	case KindCNNBiGRU:
		return "CNN-BiGRU"
	case KindDistilled:
		return "Distilled CNN (KD)"
	case KindCNNAccel:
		return "CNN (accel-only fallback)"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// DeepKinds are the four Table III families.
func DeepKinds() []Kind { return []Kind{KindMLP, KindLSTM, KindConvLSTM, KindCNN} }

// Config sizes a model for a given window.
type Config struct {
	// WindowSamples is T, the rows of the input matrix.
	WindowSamples int
	// PosCount/TotalCount, when set, initialise the output bias to
	// the class prior (paper equations 1–2).
	PosCount, TotalCount int
}

// CNNFilters and friends fix the architecture hyper-parameters; they
// are exported so the quantization and edge-cost analyses can reason
// about them.
const (
	CNNFilters   = 16
	CNNKernel    = 5
	CNNPool      = 2
	CNNDense1    = 64
	CNNDense2    = 32
	LSTMHidden   = 32
	LSTMDense    = 16
	ConvLSTMFilt = 8
	ConvLSTMKern = 3
	MLPDense1    = 64
	MLPDense2    = 32
	BiGRUHidden  = 24
	// Distilled-student widths: roughly half the teacher CNN.
	KDFilters = 8
	KDDense1  = 32
	KDDense2  = 16
)

// NetModel wraps an nn.Network as a Trainable classifier.
type NetModel struct {
	kind Kind
	Net  *nn.Network
	cfg  Config
}

// New builds a fresh model of the given kind. Threshold kinds are
// constructed by NewThreshold instead.
func New(kind Kind, cfg Config, rng *rand.Rand) (*NetModel, error) {
	if cfg.WindowSamples < CNNKernel {
		return nil, fmt.Errorf("model: window of %d samples too short", cfg.WindowSamples)
	}
	T := cfg.WindowSamples
	var net *nn.Network
	switch kind {
	case KindCNN:
		net = buildCNN(T, rng)
	case KindMLP:
		net = nn.NewNetwork(
			nn.NewFlatten(),
			nn.NewDense(T*imu.NumChannels, MLPDense1, rng),
			nn.NewReLU(),
			nn.NewDense(MLPDense1, MLPDense2, rng),
			nn.NewReLU(),
			nn.NewDense(MLPDense2, 1, rng),
			nn.NewSigmoid(),
		)
	case KindLSTM:
		net = nn.NewNetwork(
			nn.NewLSTM(imu.NumChannels, LSTMHidden, rng),
			nn.NewDense(LSTMHidden, LSTMDense, rng),
			nn.NewReLU(),
			nn.NewDense(LSTMDense, 1, rng),
			nn.NewSigmoid(),
		)
	case KindConvLSTM:
		net = nn.NewNetwork(
			nn.NewConvLSTM(imu.NumChannels, ConvLSTMFilt, ConvLSTMKern, rng),
			nn.NewDense(imu.NumChannels*ConvLSTMFilt, CNNDense2, rng),
			nn.NewReLU(),
			nn.NewDense(CNNDense2, 1, rng),
			nn.NewSigmoid(),
		)
	case KindCNNBiGRU:
		net = nn.NewNetwork(
			nn.NewBiGRU(imu.NumChannels, BiGRUHidden, rng),
			nn.NewDense(2*BiGRUHidden, CNNDense2, rng),
			nn.NewReLU(),
			nn.NewDense(CNNDense2, 1, rng),
			nn.NewSigmoid(),
		)
	case KindDistilled:
		net = buildDistilledCNN(T, rng)
	case KindCNNAccel:
		net = buildAccelCNN(T, rng)
	case KindThresholdAcc, KindThresholdGyro:
		return nil, fmt.Errorf("model: %v is built by NewThreshold, not New", kind)
	default:
		return nil, fmt.Errorf("model: %v is not a network model", kind)
	}
	m := &NetModel{kind: kind, Net: net, cfg: cfg}
	if cfg.PosCount > 0 && cfg.TotalCount > cfg.PosCount {
		m.SetOutputBias(cfg.PosCount, cfg.TotalCount)
	}
	return m, nil
}

// buildCNN assembles the paper's architecture (§III-B): the [T × 9]
// input splits into three [T × 3] motion-feature matrices
// (accelerometer, gyroscope, Euler angles); each passes through a
// convolutional layer and a max-pooling layer; the concatenated
// branch outputs feed Dense(64, ReLU) → Dense(32, ReLU) → Dense(1,
// sigmoid).
func buildCNN(T int, rng *rand.Rand) *nn.Network {
	branch := func() []nn.Layer {
		return []nn.Layer{
			nn.NewConv1D(3, CNNFilters, CNNKernel, rng),
			nn.NewReLU(),
			nn.NewMaxPool1D(CNNPool),
		}
	}
	convOut := T - CNNKernel + 1
	poolOut := (convOut + CNNPool - 1) / CNNPool
	concat := 3 * poolOut * CNNFilters
	return nn.NewNetwork(
		nn.NewBranch(
			[][2]int{{imu.AccX, imu.AccZ + 1}, {imu.GyroX, imu.GyroZ + 1}, {imu.EulerPitch, imu.EulerYaw + 1}},
			[][]nn.Layer{branch(), branch(), branch()},
		),
		nn.NewDense(concat, CNNDense1, rng),
		nn.NewReLU(),
		nn.NewDense(CNNDense1, CNNDense2, rng),
		nn.NewReLU(),
		nn.NewDense(CNNDense2, 1, rng),
		nn.NewSigmoid(),
	)
}

// buildAccelCNN assembles the cascade's tier-1 fallback: the proposed
// architecture cut down to its accelerometer branch. The input is
// still the full [T × 9] window — the branch layer slices out columns
// AccX..AccZ — so the fallback scores the exact tensor the streaming
// ring buffer already assembles, and the dense head keeps the paper's
// 64→32→1 shape (a third of the concatenated features, roughly a
// third of the inference cycles).
func buildAccelCNN(T int, rng *rand.Rand) *nn.Network {
	convOut := T - CNNKernel + 1
	poolOut := (convOut + CNNPool - 1) / CNNPool
	concat := poolOut * CNNFilters
	return nn.NewNetwork(
		nn.NewBranch(
			[][2]int{{imu.AccX, imu.AccZ + 1}},
			[][]nn.Layer{{
				nn.NewConv1D(3, CNNFilters, CNNKernel, rng),
				nn.NewReLU(),
				nn.NewMaxPool1D(CNNPool),
			}},
		),
		nn.NewDense(concat, CNNDense1, rng),
		nn.NewReLU(),
		nn.NewDense(CNNDense1, CNNDense2, rng),
		nn.NewReLU(),
		nn.NewDense(CNNDense2, 1, rng),
		nn.NewSigmoid(),
	)
}

// Name implements Classifier.
func (m *NetModel) Name() string { return m.kind.String() }

// Kind returns the model family.
func (m *NetModel) Kind() Kind { return m.kind }

// Score implements Classifier.
//
//fallvet:hotpath
func (m *NetModel) Score(x *tensor.Tensor) float64 { return m.Net.Predict(x) }

// Fit implements Trainable. With cfg.Workers > 1 the trainer shards
// each mini-batch across per-worker replicas built by Replicate;
// results are bit-identical to serial training.
func (m *NetModel) Fit(train, val []nn.Example, cfg nn.TrainConfig, rng *rand.Rand) error {
	tr := nn.NewTrainer(m.Net, nn.NewAdam(1e-3), cfg, rng)
	tr.Replicate = m.Replicate
	_, err := tr.Fit(train, val)
	return err
}

// Replicate builds a structurally identical network for a data-parallel
// training or evaluation worker. The replica's random initialisation is
// irrelevant: the trainer overwrites replica weights from the master on
// every sync.
func (m *NetModel) Replicate() *nn.Network {
	r, err := New(m.kind, m.cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		// New succeeded for this exact (kind, cfg) when m was built.
		panic(fmt.Sprintf("model: replicating %v: %v", m.kind, err))
	}
	return r.Net
}

// Clone returns an independent model with identical weights. A
// Network's layer scratch makes it single-goroutine by contract, so
// concurrent scoring (parallel folds, robustness sweeps) gives each
// goroutine its own clone.
func (m *NetModel) Clone() *NetModel {
	c := &NetModel{kind: m.kind, Net: m.Replicate(), cfg: m.cfg}
	c.Net.Restore(m.Net.Snapshot())
	return c
}

// SetOutputBias applies the paper's output-bias initialisation
// (equations 1–2) to the final dense layer.
func (m *NetModel) SetOutputBias(pos, total int) {
	b := nn.InitialBias(pos, total)
	// The output dense layer is the one before the closing sigmoid.
	for i := len(m.Net.Layers) - 1; i >= 0; i-- {
		if d, ok := m.Net.Layers[i].(*nn.Dense); ok {
			d.Bias.W.Data()[0] = b
			return
		}
	}
}
