package model

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/imu"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Threshold is a classical pre-impact detector in the style of the
// related work's threshold algorithms: it inspects a handful of
// physical quantities in the window instead of learned features.
// Score maps the detector's decision margin through a logistic so it
// composes with the probability-based evaluation harness.
//
// Two variants are provided (paper Table I context):
//
//   - KindThresholdAcc — de Sousa et al. 2021 [10]: free-fall test on
//     the acceleration magnitude plus an estimated vertical velocity.
//   - KindThresholdGyro — Jung et al. 2020 [11]: acceleration
//     magnitude combined with the angular-rate magnitude.
//
// Fit calibrates the magnitude threshold on training data by a small
// grid search maximising F1, which is more than the original papers
// do (fixed thresholds) but gives the baselines their best shot.
type Threshold struct {
	kind Kind

	// LowG is the free-fall magnitude threshold in g.
	LowG float64
	// MinRun is the number of consecutive sub-threshold samples
	// required (debouncing, ~30 ms as in [10]).
	MinRun int
	// VelThresh is the vertical-velocity threshold in m/s (acc variant).
	VelThresh float64
	// GyroThresh is the angular-rate threshold in deg/s (gyro variant).
	GyroThresh float64
}

// NewThreshold returns a threshold detector of the given kind with
// the literature's nominal parameters.
func NewThreshold(kind Kind) (*Threshold, error) {
	//fallvet:ignore exhaustive deliberately partial constructor: every network kind is rejected below with a descriptive error
	switch kind {
	case KindThresholdAcc:
		return &Threshold{kind: kind, LowG: 0.6, MinRun: 3, VelThresh: 0.7}, nil
	case KindThresholdGyro:
		return &Threshold{kind: kind, LowG: 0.65, MinRun: 3, GyroThresh: 80}, nil
	default:
		return nil, fmt.Errorf("model: %v is not a threshold kind", kind)
	}
}

// Name implements Classifier.
func (th *Threshold) Name() string { return th.kind.String() }

// features extracts (longest sub-LowG run, peak vertical velocity,
// peak angular rate) from a [T × 9] window. Windows arrive with the
// per-channel normalisation of dataset.ExtractSegments applied, so
// channels are rescaled back to physical units first — the thresholds
// are physical quantities.
func (th *Threshold) features(x *tensor.Tensor) (run int, vel, gyro float64) {
	T := x.Dim(0)
	dt := 1.0 / dataset.SampleRate
	gs := imu.ChannelScale(imu.GyroX)
	v := 0.0
	cur := 0
	for t := 0; t < T; t++ {
		ax, ay, az := x.At(t, imu.AccX), x.At(t, imu.AccY), x.At(t, imu.AccZ)
		mag := math.Sqrt(ax*ax + ay*ay + az*az)
		if mag < th.LowG {
			cur++
			if cur > run {
				run = cur
			}
		} else {
			cur = 0
		}
		// Vertical velocity estimate: integrate the deficit between
		// the measured specific force and 1 g (free fall accumulates
		// downward speed at (1−|a|)·g₀).
		v += (1 - mag) * imu.StandardGravity * dt
		if v < 0 {
			v = 0 // re-support resets the integrator
		}
		if v > vel {
			vel = v
		}
		gx, gy, gz := gs*x.At(t, imu.GyroX), gs*x.At(t, imu.GyroY), gs*x.At(t, imu.GyroZ)
		if m := math.Sqrt(gx*gx + gy*gy + gz*gz); m > gyro {
			gyro = m
		}
	}
	return run, vel, gyro
}

// Score implements Classifier: a soft margin in [0, 1] where ≥ 0.5
// means the window trips the detector.
func (th *Threshold) Score(x *tensor.Tensor) float64 {
	run, vel, gyro := th.features(x)
	freefall := float64(run-th.MinRun) + 0.5 // ≥ 0.5 when run ≥ MinRun
	// th.kind is constructor-limited to the two threshold kinds.
	second := (gyro - th.GyroThresh) / 40
	if th.kind == KindThresholdAcc {
		second = (vel - th.VelThresh) * 4
	}
	// Both conditions must hold; take the weaker margin.
	margin := math.Min(freefall, second)
	return 1 / (1 + math.Exp(-margin))
}

// Fit implements Trainable: a grid search over LowG (and the second
// threshold) maximising F1 on the training windows.
func (th *Threshold) Fit(train, val []nn.Example, _ nn.TrainConfig, _ *rand.Rand) error {
	if len(train) == 0 {
		return fmt.Errorf("model: empty training set")
	}
	set := train
	if len(val) > 0 {
		set = append(append([]nn.Example(nil), train...), val...)
	}
	bestF1 := -1.0
	bestLow, bestSecond := th.LowG, th.secondary()
	for _, low := range []float64{0.4, 0.5, 0.6, 0.7, 0.8} {
		for _, sec := range th.secondaryGrid() {
			th.LowG = low
			th.setSecondary(sec)
			var c nn.Confusion
			for _, e := range set {
				c.Add(th.Score(e.X), e.Y)
			}
			if f1 := c.F1(); f1 > bestF1 {
				bestF1, bestLow, bestSecond = f1, low, sec
			}
		}
	}
	th.LowG = bestLow
	th.setSecondary(bestSecond)
	return nil
}

func (th *Threshold) secondary() float64 {
	if th.kind == KindThresholdAcc {
		return th.VelThresh
	}
	return th.GyroThresh
}

func (th *Threshold) setSecondary(v float64) {
	if th.kind == KindThresholdAcc {
		th.VelThresh = v
	} else {
		th.GyroThresh = v
	}
}

func (th *Threshold) secondaryGrid() []float64 {
	if th.kind == KindThresholdAcc {
		return []float64{0.3, 0.5, 0.7, 1.0, 1.4}
	}
	return []float64{40, 60, 80, 120, 160}
}
