package model

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/imu"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// buildDistilledCNN assembles the PreFallKD-style student: the same
// three-branch topology as the proposed CNN at roughly half the
// width, intended to be trained by Distill against a full teacher.
func buildDistilledCNN(T int, rng *rand.Rand) *nn.Network {
	branch := func() []nn.Layer {
		return []nn.Layer{
			nn.NewConv1D(3, KDFilters, CNNKernel, rng),
			nn.NewReLU(),
			nn.NewMaxPool1D(CNNPool),
		}
	}
	convOut := T - CNNKernel + 1
	poolOut := (convOut + CNNPool - 1) / CNNPool
	concat := 3 * poolOut * KDFilters
	return nn.NewNetwork(
		nn.NewBranch(
			[][2]int{{imu.AccX, imu.AccZ + 1}, {imu.GyroX, imu.GyroZ + 1}, {imu.EulerPitch, imu.EulerYaw + 1}},
			[][]nn.Layer{branch(), branch(), branch()},
		),
		nn.NewDense(concat, KDDense1, rng),
		nn.NewReLU(),
		nn.NewDense(KDDense1, KDDense2, rng),
		nn.NewReLU(),
		nn.NewDense(KDDense2, 1, rng),
		nn.NewSigmoid(),
	)
}

// DistillConfig parameterises knowledge distillation.
type DistillConfig struct {
	// Alpha weights the hard-label loss; (1−Alpha) weights the
	// teacher-matching loss (default 0.5).
	Alpha float64
	// Temperature softens the teacher's logits (default 2).
	Temperature float64
	// Train carries epochs/patience/batch.
	Train nn.TrainConfig
}

func (c DistillConfig) withDefaults() DistillConfig {
	if c.Alpha <= 0 {
		c.Alpha = 0.5
	}
	if c.Temperature <= 0 {
		c.Temperature = 2
	}
	return c
}

// Distill trains the student on the combined hard-label and
// soft-teacher objective (the PreFallKD recipe adapted to the binary
// sigmoid output):
//
//	L = α·BCE(p, y) + (1−α)·BCE(p, q_T)
//
// where q_T = σ(logit(q)/T) is the temperature-softened teacher
// probability. Early stopping monitors the hard validation loss and
// restores the best weights, like the main trainer.
func Distill(teacher Classifier, student *NetModel, train, val []nn.Example, cfg DistillConfig, rng *rand.Rand) error {
	if len(train) == 0 {
		return fmt.Errorf("model: empty distillation training set")
	}
	cfg = cfg.withDefaults()
	tc := cfg.Train
	if tc.Epochs <= 0 {
		tc.Epochs = 200
	}
	if tc.Patience <= 0 {
		tc.Patience = 20
	}
	if tc.BatchSize <= 0 {
		tc.BatchSize = 32
	}
	pos := 0
	for _, e := range train {
		pos += e.Y
	}
	w0, w1 := nn.BalancedWeights(len(train)-pos, pos)
	if tc.ClassWeights[0] != 0 || tc.ClassWeights[1] != 0 {
		w0, w1 = tc.ClassWeights[0], tc.ClassWeights[1]
	}
	hard := nn.NewWeightedBCE(w0, w1)

	// Pre-compute softened teacher targets once.
	soft := make([]float64, len(train))
	for i, e := range train {
		q := clampProb(teacher.Score(e.X))
		logit := math.Log(q / (1 - q))
		soft[i] = 1 / (1 + math.Exp(-logit/cfg.Temperature))
	}

	net := student.Net
	opt := nn.NewAdam(1e-3)
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}
	best := net.Snapshot()
	bestVal := math.Inf(1)
	sinceBest := 0
	valLoss := func() float64 {
		if len(val) == 0 {
			return 0
		}
		s := 0.0
		for _, e := range val {
			s += hard.Loss(net.Predict(e.X), e.Y)
		}
		return s / float64(len(val))
	}

	for epoch := 0; epoch < tc.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += tc.BatchSize {
			end := min(start+tc.BatchSize, len(order))
			net.ZeroGrad()
			for _, ix := range order[start:end] {
				e := train[ix]
				p := clampProb(net.Forward(e.X, true).Data()[0])
				// Combined gradient ∂L/∂p.
				gHard := hard.Grad(p, e.Y).Data()[0]
				q := soft[ix]
				gSoft := (p - q) / (p * (1 - p)) // BCE with soft target
				g := cfg.Alpha*gHard + (1-cfg.Alpha)*gSoft
				net.Backward(tensor.FromSlice([]float64{g}, 1))
			}
			opt.Step(net.Params(), 1/float64(end-start))
		}
		vl := valLoss()
		if vl < bestVal-1e-9 {
			bestVal = vl
			best = net.Snapshot()
			sinceBest = 0
		} else if sinceBest++; sinceBest >= tc.Patience {
			break
		}
	}
	net.Restore(best)
	return nil
}

func clampProb(p float64) float64 {
	const e = 1e-7
	return math.Min(1-e, math.Max(e, p))
}
